// The data-parallel stages must produce bit-identical results with and
// without a worker pool, at any thread count.
#include <gtest/gtest.h>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(51, 30));
  return result;
}

class ParallelAnalysisP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelAnalysisP, MatchingIdenticalToSerial) {
  const auto filtered = filter::run_filter_pipeline(data().ras, {});
  const auto serial = core::match_interruptions(filtered, data().jobs, {});

  par::ThreadPool pool(GetParam());
  core::MatchConfig config;
  config.pool = &pool;
  const auto parallel = core::match_interruptions(filtered, data().jobs, config);

  ASSERT_EQ(serial.interruptions.size(), parallel.interruptions.size());
  for (std::size_t i = 0; i < serial.interruptions.size(); ++i) {
    EXPECT_EQ(serial.interruptions[i].group, parallel.interruptions[i].group);
    EXPECT_EQ(serial.interruptions[i].job, parallel.interruptions[i].job);
  }
  EXPECT_EQ(serial.jobs_by_group, parallel.jobs_by_group);
  EXPECT_EQ(serial.group_by_job, parallel.group_by_job);
}

TEST_P(ParallelAnalysisP, CausalityMiningIdenticalToSerial) {
  const auto events = data().ras.fatal_events();
  auto groups =
      filter::temporal_filter(events, filter::singleton_groups(events.size()), {});
  groups = filter::spatial_filter(events, std::move(groups), {});

  const auto serial = filter::mine_causal_pairs(events, groups, {});

  par::ThreadPool pool(GetParam());
  filter::CausalityFilterConfig config;
  config.pool = &pool;
  const auto parallel = filter::mine_causal_pairs(events, groups, config);

  EXPECT_EQ(serial, parallel);
}

TEST_P(ParallelAnalysisP, FullPipelineIdenticalToSerial) {
  const auto serial = core::run_coanalysis(data().ras, data().jobs, {});

  par::ThreadPool pool(GetParam());
  const auto parallel = core::run_coanalysis(data().ras, data().jobs, {},
                                             Context().with_pool(&pool));

  EXPECT_EQ(serial.filtered.groups.size(), parallel.filtered.groups.size());
  EXPECT_EQ(serial.matches.interruptions.size(), parallel.matches.interruptions.size());
  EXPECT_EQ(serial.system_interruptions, parallel.system_interruptions);
  EXPECT_EQ(serial.application_interruptions, parallel.application_interruptions);
  EXPECT_EQ(serial.job_filter.removed_count(), parallel.job_filter.removed_count());
  EXPECT_DOUBLE_EQ(serial.fatal_before_jobfilter.weibull.shape(),
                   parallel.fatal_before_jobfilter.weibull.shape());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelAnalysisP, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace coral
