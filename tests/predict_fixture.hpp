#pragma once

// Labeled ground-truth corpus for the prediction subsystem: a hand-built
// event stream whose precursor -> FATAL chains (and their counts) are known
// by construction, so the expected rule set can be written down instead of
// re-derived from the miner under test. Shared by the miner unit tests and
// the predictor end-to-end tests in test_predict.cpp.
//
// The timeline uses six fatal codes A..F (the catalog's first six fatal
// ids) in 3-hour slots, so with the fixture's 1-hour mining window every
// chain instance is isolated from its neighbors:
//
//   slots  0..7   A @ mp3   then B @ mp3  10 min later   (the midplane rule)
//   slots  8..9   A @ mp3   then D @ mp3  30 min later   (below min_support)
//   slots  0..5   C @ mp10  then D @ mp50 20 min later, offset +90 min
//                                                        (the machine rule)
//   slots 10..19  F @ mp20; in the first 4, D @ mp60 40 min later
//                                                        (fails confidence)
//   slots 20..24  E @ mp70 alone                          (pure noise)
//
// Occurrence counts: A=10, B=8, C=6, D=12, E=5, F=10. The only pairs that
// clear support >= 3 AND their scope's confidence floor are:
//   A -> B  same-midplane  support 8 / 10  (0.80 >= 0.35 midplane floor)
//   C -> D  machine-wide   support 6 / 6   (1.00 >= 0.70 machine floor)
// A -> D has support 2 (< 3); F -> D has machine confidence 0.40 (< 0.70,
// and never same-midplane, so the lower midplane floor never applies).

#include <algorithm>
#include <vector>

#include "coral/bgp/location.hpp"
#include "coral/core/characterization.hpp"
#include "coral/core/identification.hpp"
#include "coral/predict/miner.hpp"
#include "coral/predict/rules.hpp"
#include "coral/ras/catalog.hpp"
#include "coral/ras/log.hpp"

namespace coral::testing {

/// The six fixture codes, resolved against a catalog.
struct ChainCodes {
  ras::ErrcodeId a, b, c, d, e, f;
};

inline ChainCodes chain_codes(const ras::Catalog& cat = ras::default_catalog()) {
  const auto ids = cat.fatal_ids();
  return {ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]};
}

/// Mining thresholds the expected rule set is computed for.
inline predict::MinerConfig chain_miner_config() {
  predict::MinerConfig config;
  config.window = kUsecPerHour;
  config.min_support = 3;
  config.min_confidence = 0.7;
  config.min_confidence_mid = 0.35;
  return config;
}

namespace detail {

struct ChainEvent {
  TimePoint time;
  ras::ErrcodeId code;
  int midplane;
};

inline std::vector<ChainEvent> chain_events(const ras::Catalog& cat) {
  const ChainCodes codes = chain_codes(cat);
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  const auto slot = [&](int k) { return base + static_cast<Usec>(k) * 3 * kUsecPerHour; };
  std::vector<ChainEvent> ev;
  for (int k = 0; k < 8; ++k) {
    ev.push_back({slot(k), codes.a, 3});
    ev.push_back({slot(k) + 10 * kUsecPerMin, codes.b, 3});
  }
  for (int k = 8; k < 10; ++k) {
    ev.push_back({slot(k), codes.a, 3});
    ev.push_back({slot(k) + 30 * kUsecPerMin, codes.d, 3});
  }
  for (int k = 0; k < 6; ++k) {
    ev.push_back({slot(k) + 90 * kUsecPerMin, codes.c, 10});
    ev.push_back({slot(k) + 110 * kUsecPerMin, codes.d, 50});
  }
  for (int k = 10; k < 20; ++k) {
    ev.push_back({slot(k), codes.f, 20});
    if (k < 14) ev.push_back({slot(k) + 40 * kUsecPerMin, codes.d, 60});
  }
  for (int k = 20; k < 25; ++k) ev.push_back({slot(k), codes.e, 70});
  std::sort(ev.begin(), ev.end(),
            [](const ChainEvent& x, const ChainEvent& y) { return x.time < y.time; });
  return ev;
}

}  // namespace detail

/// The corpus as hand-built filtered-group columns (what the miner walks).
inline core::CharColumns chain_columns(const ras::Catalog& cat = ras::default_catalog()) {
  core::CharColumns cols;
  for (const auto& ev : detail::chain_events(cat)) {
    cols.group_time.push_back(ev.time);
    cols.group_code.push_back(ev.code);
    cols.group_loc.push_back(bgp::Location::midplane(ev.midplane).packed());
  }
  return cols;
}

/// The corpus as a finalized RAS log (for predictor replay / session feeds).
inline ras::RasLog chain_ras_log(const ras::Catalog& cat = ras::default_catalog()) {
  std::vector<ras::RasEvent> events;
  std::uint32_t serial = 0;
  for (const auto& ev : detail::chain_events(cat)) {
    ras::RasEvent e;
    e.event_time = ev.time;
    e.location = bgp::Location::midplane(ev.midplane);
    e.errcode = ev.code;
    e.severity = ras::Severity::Fatal;
    e.serial = serial++;
    events.push_back(e);
  }
  return ras::RasLog(std::move(events), cat);
}

/// Identification verdicts labeling the two chain targets (B, D) as
/// interruption-related — what restrict_targets keys on.
inline core::IdentificationResult chain_identification(
    const ras::Catalog& cat = ras::default_catalog()) {
  const ChainCodes codes = chain_codes(cat);
  core::IdentificationResult id;
  id.verdicts[codes.b] = core::ErrcodeVerdict::InterruptionRelated;
  id.verdicts[codes.d] = core::ErrcodeVerdict::InterruptionRelated;
  id.verdicts[codes.e] = core::ErrcodeVerdict::NonFatalToJobs;
  return id;
}

/// The rule set the miner must recover from the corpus, in the miner's
/// deterministic (precursor, target) order.
inline predict::RuleTable chain_expected_rules(
    const ras::Catalog& cat = ras::default_catalog()) {
  const ChainCodes codes = chain_codes(cat);
  predict::RuleTable table;
  table.rules.push_back({codes.a, codes.b, predict::RuleScope::Midplane, kUsecPerHour,
                         /*support=*/8, /*precursor_count=*/10});
  table.rules.push_back({codes.c, codes.d, predict::RuleScope::Machine, kUsecPerHour,
                         /*support=*/6, /*precursor_count=*/6});
  return table;
}

/// Predictor truth for chain_ras_log under chain_expected_rules: every A
/// fires the midplane rule (10 alarms at mp3), every C the machine rule
/// (6 alarms); 8 of the A-alarms are hit by B, all 6 C-alarms by D.
struct ChainPredictorTruth {
  std::size_t issued = 16;
  std::size_t hits = 14;
  std::size_t suppressed = 0;
  std::size_t midplane_alarms = 10;  ///< at midplane 3
};

}  // namespace coral::testing
