#include <gtest/gtest.h>

#include "coral/common/error.hpp"
#include "coral/filter/neuralgas.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

using stats::NeuralGas;
using stats::NeuralGasConfig;

std::vector<std::vector<double>> two_blobs(std::size_t n_per, Rng& rng) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n_per; ++i) {
    points.push_back({rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)});
    points.push_back({rng.normal(5.0, 0.1), rng.normal(5.0, 0.1)});
  }
  return points;
}

TEST(NeuralGas, SeparatesTwoBlobs) {
  Rng rng(1);
  const auto points = two_blobs(200, rng);
  NeuralGasConfig config;
  config.units = 2;
  const NeuralGas ng = NeuralGas::train(points, config);
  // The two units land near the blob centers.
  const auto assignment = ng.assign(points);
  std::size_t unit_of_first = assignment[0];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool first_blob = points[i][0] < 2.5;
    EXPECT_EQ(assignment[i] == unit_of_first, first_blob) << i;
  }
}

TEST(NeuralGas, MoreUnitsLowerQuantizationError) {
  Rng rng(2);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 600; ++i) points.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  NeuralGasConfig small;
  small.units = 2;
  NeuralGasConfig large;
  large.units = 32;
  const double qe_small = NeuralGas::train(points, small).quantization_error(points);
  const double qe_large = NeuralGas::train(points, large).quantization_error(points);
  EXPECT_LT(qe_large, qe_small * 0.5);
}

TEST(NeuralGas, DeterministicInSeed) {
  Rng rng(3);
  const auto points = two_blobs(100, rng);
  const NeuralGas a = NeuralGas::train(points, {});
  const NeuralGas b = NeuralGas::train(points, {});
  ASSERT_EQ(a.units().size(), b.units().size());
  for (std::size_t u = 0; u < a.units().size(); ++u) {
    for (std::size_t d = 0; d < a.units()[u].size(); ++d) {
      EXPECT_DOUBLE_EQ(a.units()[u][d], b.units()[u][d]);
    }
  }
}

TEST(NeuralGas, RejectsDegenerateInput) {
  EXPECT_THROW(NeuralGas::train(std::vector<std::vector<double>>{}, {}), InvalidArgument);
  const std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(NeuralGas::train(ragged, {}), InvalidArgument);
}

TEST(NeuralGas, FewerPointsThanUnitsWorks) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}, {2.0}};
  NeuralGasConfig config;
  config.units = 64;
  const NeuralGas ng = NeuralGas::train(points, config);
  EXPECT_EQ(ng.units().size(), 3u);
  EXPECT_LT(ng.quantization_error(points), 1.0);
}

TEST(NeuralGasFilter, GroupsPartitionTheInput) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(121, 14));
  const auto events = data.ras.fatal_events();
  const auto groups = filter::neural_gas_filter(events, {});
  std::vector<int> seen(events.size(), 0);
  for (const auto& g : groups) {
    EXPECT_EQ(g.members.front(), g.rep);
    for (std::size_t m : g.members) seen[m] += 1;
  }
  for (int n : seen) EXPECT_EQ(n, 1);
}

TEST(NeuralGasFilter, CompressesStormsSubstantially) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(122, 14));
  const auto events = data.ras.fatal_events();
  const auto groups = filter::neural_gas_filter(events, {});
  EXPECT_LT(groups.size(), events.size() / 5);
  // Within the same order of magnitude as the ground-truth fault count.
  EXPECT_LT(groups.size(), data.truth.faults.size() * 10);
  EXPECT_GT(groups.size() * 10, data.truth.faults.size());
}

TEST(NeuralGasFilter, ChainGapSplitsDistantRecords) {
  // Two bursts of the same code/location, a week apart: even if they land
  // in the same cluster they must split at the chain gap.
  std::vector<ras::RasEvent> events;
  const auto code = *ras::Catalog::instance().find(ras::codes::kRasStormFatal);
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 10; ++i) {
      ras::RasEvent ev;
      ev.errcode = code;
      ev.severity = ras::Severity::Fatal;
      ev.event_time = TimePoint::from_calendar(2009, 3, 1 + burst * 7) +
                      static_cast<Usec>(i) * 10 * kUsecPerSec;
      ev.location = bgp::Location::parse("R00-M0-N00-J04");
      events.push_back(ev);
    }
  }
  const auto groups = filter::neural_gas_filter(events, {});
  EXPECT_GE(groups.size(), 2u);
  EXPECT_LE(groups.size(), 4u);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_LE(events[groups[i - 1].rep].event_time, events[groups[i].rep].event_time);
  }
}

TEST(NeuralGasFilter, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(filter::neural_gas_filter({}, {}).empty());
}

}  // namespace
}  // namespace coral
