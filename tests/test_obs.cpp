// coral::obs — trace spans, counters, histograms and the three exporters.
//
// The Chrome trace export is validated with a real (minimal) JSON parser:
// the acceptance bar is "loads in chrome://tracing", and the first gate for
// that is being well-formed JSON with the trace_event structure.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <string>
#include <thread>

#include "coral/common/parallel.hpp"
#include "coral/context.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/obs/obs.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

// ---- a minimal JSON well-formedness checker --------------------------------
// Recursive descent over the full grammar (objects, arrays, strings with
// escapes, numbers, literals). Returns false on any syntax error or trailing
// garbage.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    while (digit()) {}
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit()) {}
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit()) {}
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool digit() {
    if (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool valid_json(std::string_view text) { return JsonChecker(text).valid(); }

TEST(JsonChecker, AcceptsAndRejectsTheBasics) {
  EXPECT_TRUE(valid_json(R"({"a": [1, 2.5, -3e2], "b": "x\ny", "c": null})"));
  EXPECT_FALSE(valid_json(R"({"a": })"));
  EXPECT_FALSE(valid_json(R"([1, 2)"));
  EXPECT_FALSE(valid_json(R"({"a": 1} trailing)"));
  EXPECT_FALSE(valid_json(R"({"unterminated)"));
}

// ---- counters / histograms -------------------------------------------------

TEST(ObsCounter, AccumulatesAcrossThreads) {
  obs::Collector c;
  obs::Counter& n = c.counter("n");
  std::thread a([&n] { for (int i = 0; i < 1000; ++i) n.add(1); });
  std::thread b([&n] { for (int i = 0; i < 1000; ++i) n.add(2); });
  a.join();
  b.join();
  EXPECT_EQ(c.snapshot().counter_value("n"), 3000u);
  // The handle is stable: a second lookup is the same object.
  EXPECT_EQ(&c.counter("n"), &n);
}

TEST(ObsHistogram, PowerOfTwoBuckets) {
  EXPECT_EQ(obs::histogram_bucket(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1.0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1.5), 1u);
  EXPECT_EQ(obs::histogram_bucket(2.0), 1u);
  EXPECT_EQ(obs::histogram_bucket(2.1), 2u);
  EXPECT_EQ(obs::histogram_bucket(1024.0), 10u);
  EXPECT_EQ(obs::histogram_bucket(1e30), obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bound(0), 1.0);
  EXPECT_EQ(obs::histogram_bound(10), 1024.0);
  EXPECT_TRUE(std::isinf(obs::histogram_bound(obs::kHistogramBuckets - 1)));
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  obs::Collector c;
  c.record_value("h", 3.0);
  c.record_value("h", 100.0);
  c.record_value("h", 0.5);
  const obs::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramRecord& h = snap.histograms[0];
  EXPECT_EQ(h.name, "h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 103.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_EQ(h.buckets[obs::histogram_bucket(3.0)], 1u);
}

// ---- spans -----------------------------------------------------------------

TEST(ObsSpan, NestsParentChildOnOneThread) {
  obs::Collector c;
  {
    obs::Span outer(&c, "outer");
    {
      obs::Span inner(&c, "inner");
      inner.counts(10, 5);
    }
  }
  const obs::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  // The child closed first, so it appears in open order; find by name.
  const auto& outer = snap.spans[0].name == "outer" ? snap.spans[0] : snap.spans[1];
  const auto& inner = snap.spans[0].name == "inner" ? snap.spans[0] : snap.spans[1];
  EXPECT_EQ(outer.parent, -1);
  ASSERT_GE(inner.parent, 0);
  EXPECT_EQ(snap.spans[static_cast<std::size_t>(inner.parent)].name, "outer");
  EXPECT_EQ(inner.in, 10u);
  EXPECT_EQ(inner.out, 5u);
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_GE(inner.start_us, outer.start_us);
}

TEST(ObsSpan, NullCollectorIsInertAndMacrosSkipArguments) {
  obs::Span span(nullptr, "noop");
  span.counts(1, 2);
  span.end();

  int evaluations = 0;
  const auto count_side_effect = [&evaluations] {
    ++evaluations;
    return std::uint64_t{1};
  };
  obs::Collector* null_obs = nullptr;
  CORAL_OBS_COUNT(null_obs, "x", count_side_effect());
  CORAL_OBS_VALUE(null_obs, "x", static_cast<double>(count_side_effect()));
  EXPECT_EQ(evaluations, 0);

  obs::Collector c;
  CORAL_OBS_COUNT(&c, "x", count_side_effect());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(c.snapshot().counter_value("x"), 1u);
}

TEST(ObsSpan, OpenSpansAreExcludedFromSnapshots) {
  obs::Collector c;
  obs::Span open(&c, "still-open");
  {
    obs::Span done(&c, "done");
  }
  const obs::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "done");
  // The finished child's parent slot (the open span) is not exported, so the
  // remap must drop the dangling reference rather than leave a bad index.
  EXPECT_EQ(snap.spans[0].parent, -1);
  open.end();
  EXPECT_EQ(c.snapshot().spans.size(), 2u);
}

TEST(ObsSpan, DistinctThreadsGetDistinctTids) {
  obs::Collector c;
  { obs::Span main_span(&c, "main"); }
  std::thread t([&c] { obs::Span worker_span(&c, "worker"); });
  t.join();
  const obs::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_NE(snap.spans[0].tid, snap.spans[1].tid);
}

// ---- the legacy InstrumentationSink bridge ---------------------------------

TEST(ObsBridge, StageTimerSamplesBecomeSpansAndHistograms) {
  obs::Collector c;
  InstrumentationSink* sink = &c;  // what Context::with_obs hands to layers
  {
    StageTimer timer(sink, "bridged.stage");
    timer.counts(100, 42);
  }
  const obs::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "bridged.stage");
  EXPECT_EQ(snap.spans[0].in, 100u);
  EXPECT_EQ(snap.spans[0].out, 42u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(ObsBridge, DurationFreeSamplesBecomeCounters) {
  obs::Collector c;
  // The shape IngestReport::report_malformed emits: zero wall time, the
  // tally in `in`, nothing in `out`.
  c.record({"ingest.malformed", 0.0, 7, 0});
  c.record({"ingest.malformed", 0.0, 3, 0});
  const obs::Snapshot snap = c.snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(snap.counter_value("ingest.malformed"), 10u);
}

TEST(ObsBridge, ContextWithObsSetsBothRoutes) {
  obs::Collector c;
  Context ctx;
  ctx.with_obs(&c);
  EXPECT_EQ(ctx.obs(), &c);
  EXPECT_EQ(ctx.sink(), static_cast<InstrumentationSink*>(&c));
  EXPECT_EQ(obs::as_collector(ctx.sink()), &c);
}

// ---- thread-pool telemetry -------------------------------------------------

TEST(ObsPool, CountsTasksAndLatencies) {
  obs::Collector c;
  par::ThreadPool pool(2);
  pool.set_obs(&c);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  pool.set_obs(nullptr);  // detach before the snapshot: no races, no new samples
  EXPECT_EQ(ran.load(), 16);
  const obs::Snapshot snap = c.snapshot();
  EXPECT_EQ(snap.counter_value("pool.tasks"), 16u);
  bool saw_depth = false, saw_wait = false, saw_run = false;
  for (const obs::HistogramRecord& h : snap.histograms) {
    if (h.name == "pool.queue_depth") saw_depth = h.count == 16;
    if (h.name == "pool.task_wait_ms") saw_wait = h.count == 16;
    if (h.name == "pool.task_run_ms") saw_run = h.count == 16;
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_run);
}

// ---- exporters -------------------------------------------------------------

obs::Collector& populated_collector() {
  static obs::Collector col;  // Collector is pinned (non-movable): fill in place
  static const bool init = [] {
    {
      obs::Span outer(&col, "stage.outer");
      obs::Span inner(&col, "stage.inner");
      inner.counts(8, 4);
    }
    col.add_counter("records.read", 1234);
    col.record_value("block.ms", 1.5);
    col.record_value("block.ms", 700.0);
    return true;
  }();
  (void)init;
  return col;
}

TEST(ObsExport, ChromeTraceIsValidTraceEventJson) {
  const std::string trace = obs::chrome_trace_json(populated_collector().snapshot());
  EXPECT_TRUE(valid_json(trace)) << trace;
  // The two structural markers chrome://tracing requires: the traceEvents
  // array and complete ("X") events with ts/dur/pid/tid.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\": "), std::string::npos);
  EXPECT_NE(trace.find("\"dur\": "), std::string::npos);
  // Counters ride along as "C" samples.
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(trace.find("records.read"), std::string::npos);
}

TEST(ObsExport, ChromeTraceEscapesHostileNames) {
  obs::Collector c;
  { obs::Span span(&c, "quote\"back\\slash\nnewline"); }
  const std::string trace = obs::chrome_trace_json(c.snapshot());
  EXPECT_TRUE(valid_json(trace)) << trace;
}

TEST(ObsExport, PrometheusTextHasRequiredShape) {
  const std::string text = obs::prometheus_text(populated_collector().snapshot());
  EXPECT_NE(text.find("# TYPE coral_records_read_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("coral_records_read_total 1234\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE coral_block_ms histogram\n"), std::string::npos);
  // Cumulative buckets must end in a +Inf sample equal to _count.
  EXPECT_NE(text.find("coral_block_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("coral_block_ms_count 2\n"), std::string::npos);
  // 1.5 lands in bucket (1,2]: the le="2" cumulative count includes it.
  EXPECT_NE(text.find("coral_block_ms_bucket{le=\"2\"} 1\n"), std::string::npos);
}

TEST(ObsExport, SnapshotJsonIsValid) {
  const std::string json = obs::snapshot_json(populated_collector().snapshot());
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---- end to end through the real pipeline ----------------------------------

TEST(ObsEndToEnd, CoanalysisProducesATraceAcrossLayers) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(11, 10));
  obs::Collector c;
  par::ThreadPool pool(2);
  pool.set_obs(&c);
  Context ctx;
  ctx.with_pool(&pool).with_obs(&c);

  core::CoAnalysisConfig config;
  config.execution.engine = core::Engine::Streaming;
  config.execution.shards = 4;
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs, config, ctx);
  pool.set_obs(nullptr);
  EXPECT_GT(r.filtered.groups.size(), 0u);

  const obs::Snapshot snap = c.snapshot();
  // Legacy StageTimer stages arrive via the bridge...
  EXPECT_GT(snap.total_ms("filter.coalesce"), 0.0);
  EXPECT_GT(snap.total_ms("filter.match"), 0.0);
  // ...and the new per-shard spans via obs proper.
  std::size_t phase1_spans = 0;
  for (const obs::SpanRecord& s : snap.spans) {
    if (s.name == "stream.shard.phase1") ++phase1_spans;
  }
  EXPECT_EQ(phase1_spans, r.shards_used);

  const std::string trace = obs::chrome_trace_json(snap);
  EXPECT_TRUE(valid_json(trace));

  // Batch engine: the filter/match layers report through their configs.
  obs::Collector batch;
  Context bctx;
  bctx.with_obs(&batch);
  config.execution.engine = core::Engine::Batch;
  const auto rb = core::run_coanalysis(data.ras, data.jobs, config, bctx);
  EXPECT_EQ(rb.matches.interruptions.size(), r.matches.interruptions.size());
  const obs::Snapshot bs = batch.snapshot();
  EXPECT_GT(bs.total_ms("filter.temporal"), 0.0);
  EXPECT_GT(bs.total_ms("match.phase1"), 0.0);
  EXPECT_GT(bs.counter_value("match.candidates_scanned"), 0u);
  EXPECT_TRUE(valid_json(obs::chrome_trace_json(bs)));
}


// ---- bounded span ring + labeled multi-tenant export -----------------------

TEST(ObsRing, EvictsClosedSpansBeyondCapacityFifo) {
  obs::Collector c;
  c.set_span_capacity(4);
  for (int i = 0; i < 10; ++i) {
    obs::Span s(&c, i % 2 == 0 ? "even" : "odd");
  }
  const obs::Snapshot snap = c.snapshot();
  EXPECT_EQ(snap.spans.size(), 4u);
  EXPECT_EQ(snap.spans_dropped, 6u);
  EXPECT_EQ(c.spans_dropped(), 6u);
  // The survivors are the newest four, in order: odd, even, odd, even.
  EXPECT_EQ(snap.spans[0].name, "even");
  EXPECT_EQ(snap.spans[3].name, "odd");
}

TEST(ObsRing, OpenFrontSpanPinsTheRing) {
  obs::Collector c;
  c.set_span_capacity(2);
  {
    obs::Span outer(&c, "outer");  // open: its live handle pins the front
    for (int i = 0; i < 8; ++i) {
      obs::Span child(&c, "child");
    }
    // Eviction stops at the oldest open span, so nothing was dropped even
    // though the ring is 4x over capacity.
    EXPECT_EQ(c.spans_dropped(), 0u);
    EXPECT_EQ(c.snapshot().spans.size(), 8u);  // the closed children
  }
  // Once the pin closes, the next record resumes eviction down to capacity.
  {
    obs::Span after(&c, "after");
  }
  EXPECT_GT(c.spans_dropped(), 0u);
  const obs::Snapshot snap = c.snapshot();
  ASSERT_LE(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans.back().name, "after");
}

TEST(ObsRing, EvictedParentRemapsToRoot) {
  obs::Collector c;
  c.set_span_capacity(3);
  {
    obs::Span parent(&c, "parent");
  }
  // Push the closed parent out of the ring.
  for (int i = 0; i < 6; ++i) {
    obs::Span filler(&c, "filler");
  }
  for (const auto& s : c.snapshot().spans) {
    EXPECT_EQ(s.parent, -1) << s.name;  // nothing may point at evicted slots
  }
}

TEST(ObsRing, UnboundedByDefault) {
  obs::Collector c;
  for (int i = 0; i < 1000; ++i) {
    obs::Span s(&c, "s");
  }
  EXPECT_EQ(c.snapshot().spans.size(), 1000u);
  EXPECT_EQ(c.spans_dropped(), 0u);
}

TEST(ObsExport, LabeledPrometheusMatchesUnlabeledWhenLabelsEmpty) {
  obs::Collector c;
  CORAL_OBS_COUNT(&c, "events.seen", 42);
  c.record_value("batch.ms", 3.5);
  const obs::Snapshot snap = c.snapshot();
  EXPECT_EQ(obs::prometheus_text(snap), obs::prometheus_text(snap, ""));
}

TEST(ObsExport, MultiTenantExpositionEmitsEachFamilyOnce) {
  obs::Collector a, b;
  CORAL_OBS_COUNT(&a, "session.bytes.accepted", 100);
  CORAL_OBS_COUNT(&b, "session.bytes.accepted", 250);
  const std::string text = obs::prometheus_text(
      {{"tenant=\"alpha\"", a.snapshot()}, {"tenant=\"beta\"", b.snapshot()}});
  const std::string type_line =
      "# TYPE coral_session_bytes_accepted_total counter";
  EXPECT_EQ(text.find(type_line), text.rfind(type_line)) << text;
  EXPECT_NE(
      text.find("coral_session_bytes_accepted_total{tenant=\"alpha\"} 100"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("coral_session_bytes_accepted_total{tenant=\"beta\"} 250"),
      std::string::npos);
}

TEST(ObsExport, SpansDroppedSurfacesInSnapshot) {
  obs::Collector c;
  c.set_span_capacity(1);
  for (int i = 0; i < 3; ++i) {
    obs::Span s(&c, "x");
  }
  EXPECT_EQ(c.snapshot().spans_dropped, 2u);
}

}  // namespace
}  // namespace coral
