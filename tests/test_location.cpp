#include "coral/bgp/location.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "coral/bgp/partition.hpp"
#include "coral/common/error.hpp"

namespace coral::bgp {
namespace {

TEST(Location, ParseRack) {
  const Location loc = Location::parse("R04");
  EXPECT_EQ(loc.kind(), LocationKind::Rack);
  EXPECT_EQ(loc.rack_index(), 4);
  EXPECT_FALSE(loc.midplane_id().has_value());
  EXPECT_EQ(loc.to_string(), "R04");
}

TEST(Location, ParseMidplane) {
  const Location loc = Location::parse("R04-M1");
  EXPECT_EQ(loc.kind(), LocationKind::Midplane);
  EXPECT_EQ(*loc.midplane_id(), 9);
  EXPECT_EQ(loc.to_string(), "R04-M1");
}

TEST(Location, ParseCards) {
  EXPECT_EQ(Location::parse("R00-M0-N08").kind(), LocationKind::NodeCard);
  EXPECT_EQ(Location::parse("R00-M0-N08-J12").kind(), LocationKind::ComputeCard);
  EXPECT_EQ(Location::parse("R00-M0-S").kind(), LocationKind::ServiceCard);
  EXPECT_EQ(Location::parse("R00-M0-L3").kind(), LocationKind::LinkCard);
  EXPECT_EQ(Location::parse("R00-M0-N08-I01").kind(), LocationKind::IoNode);
}

TEST(Location, RoundTripAllKinds) {
  for (const char* s : {"R39", "R39-M1", "R12-M0-N15", "R12-M0-N15-J35", "R12-M1-S",
                        "R12-M1-L0", "R12-M0-N00-I00"}) {
    EXPECT_EQ(Location::parse(s).to_string(), s) << s;
  }
}

TEST(Location, ParseRejectsInvalid) {
  EXPECT_THROW(Location::parse(""), ParseError);
  EXPECT_THROW(Location::parse("R40"), ParseError);
  EXPECT_THROW(Location::parse("R04-M2"), ParseError);
  EXPECT_THROW(Location::parse("R04-M0-N16"), ParseError);
  EXPECT_THROW(Location::parse("R04-M0-N00-J03"), ParseError);
  EXPECT_THROW(Location::parse("R04-M0-N00-J36"), ParseError);
  EXPECT_THROW(Location::parse("R04-M0-L4"), ParseError);
  EXPECT_THROW(Location::parse("R04-S"), ParseError);
  EXPECT_THROW(Location::parse("X04"), ParseError);
  EXPECT_THROW(Location::parse("R04-M0-N00-J12-X"), ParseError);
  EXPECT_THROW(Location::parse("R0a"), ParseError);
}

TEST(Location, Containment) {
  const Location rack = Location::parse("R04");
  const Location mid = Location::parse("R04-M0");
  const Location card = Location::parse("R04-M0-N08");
  const Location cc = Location::parse("R04-M0-N08-J12");
  EXPECT_TRUE(cc.is_within(card));
  EXPECT_TRUE(cc.is_within(mid));
  EXPECT_TRUE(cc.is_within(rack));
  EXPECT_TRUE(mid.is_within(rack));
  EXPECT_FALSE(mid.is_within(cc));
  EXPECT_FALSE(Location::parse("R04-M1").is_within(mid));
  EXPECT_FALSE(Location::parse("R05-M0").is_within(rack));
  EXPECT_TRUE(mid.is_within(mid));
}

TEST(Location, TouchesMidplane) {
  EXPECT_TRUE(Location::parse("R04").touches_midplane(8));
  EXPECT_TRUE(Location::parse("R04").touches_midplane(9));
  EXPECT_FALSE(Location::parse("R04").touches_midplane(10));
  EXPECT_TRUE(Location::parse("R04-M1-N03-J11").touches_midplane(9));
  EXPECT_FALSE(Location::parse("R04-M1-N03-J11").touches_midplane(8));
}

TEST(Location, ParseStringViewSubrangeOfCsvRow) {
  // The ingest paths hand parse() an unterminated slice of a CSV line; it
  // must behave exactly like the owned-string overload.
  const std::string row = "R12-M0-N15-J35,FATAL,rest-of-row";
  const std::string_view field = std::string_view(row).substr(0, 14);
  EXPECT_EQ(Location::parse(field).to_string(), "R12-M0-N15-J35");
  EXPECT_EQ(Location::parse(field).packed(), Location::parse(std::string(field)).packed());
}

TEST(Location, ParseStringViewRejectsInvalid) {
  EXPECT_THROW(Location::parse(std::string_view{}), ParseError);
  EXPECT_THROW(Location::parse(std::string_view("R04-M2")), ParseError);
  const std::string row = "R04-M0-N00-J03|";
  EXPECT_THROW(Location::parse(std::string_view(row).substr(0, 14)), ParseError);
}

TEST(Partition, ParseStringViewSubrangeOfCsvRow) {
  const std::string row = "R08-R11,1234,exe";
  const Partition p = Partition::parse(std::string_view(row).substr(0, 7));
  EXPECT_EQ(p, Partition::parse("R08-R11"));
  EXPECT_THROW(Partition::parse(std::string_view("R11-R10")), ParseError);
  EXPECT_THROW(Partition::parse(std::string_view{}), ParseError);
}

TEST(Partition, LegalSizesMatchTableVI) {
  EXPECT_EQ(Partition::legal_sizes(), (std::vector<int>{1, 2, 4, 8, 16, 32, 48, 64, 80}));
}

TEST(Partition, NamesRoundTrip) {
  EXPECT_EQ(Partition(9, 1).name(), "R04-M1");
  EXPECT_EQ(Partition(8, 2).name(), "R04");
  EXPECT_EQ(Partition(16, 4).name(), "R08-R09");
  EXPECT_EQ(Partition(0, 80).name(), "R00-R39");
  for (int size : Partition::legal_sizes()) {
    for (const Partition& p : Partition::all_of_size(size)) {
      EXPECT_EQ(Partition::parse(p.name()), p) << p.name();
    }
  }
}

TEST(Partition, ParseJobLogStyle) {
  const Partition p = Partition::parse("R10-R11");
  EXPECT_EQ(p.first_midplane(), 20);
  EXPECT_EQ(p.midplane_count(), 4);
}

TEST(Partition, RejectsIllegal) {
  EXPECT_THROW(Partition(1, 2), InvalidArgument);    // not rack-aligned
  EXPECT_THROW(Partition(2, 3), InvalidArgument);    // odd size >1
  EXPECT_THROW(Partition(0, 6), InvalidArgument);    // 3 racks is not legal
  EXPECT_THROW(Partition(2, 4), InvalidArgument);    // 2-rack not 2-rack aligned
  EXPECT_THROW(Partition(79, 2), InvalidArgument);   // straddles machine end
  EXPECT_THROW(Partition(16, 80), InvalidArgument);  // beyond machine
  EXPECT_THROW(Partition::parse("R11-R10"), ParseError);
  EXPECT_THROW(Partition::parse("R00-M0-N04"), ParseError);
}

TEST(Partition, CountsOfEachSize) {
  EXPECT_EQ(Partition::all_of_size(1).size(), 80u);
  EXPECT_EQ(Partition::all_of_size(2).size(), 40u);
  EXPECT_EQ(Partition::all_of_size(4).size(), 20u);
  EXPECT_EQ(Partition::all_of_size(8).size(), 10u);
  EXPECT_EQ(Partition::all_of_size(16).size(), 5u);
  EXPECT_EQ(Partition::all_of_size(32).size(), 2u);  // 16 racks at rack 0,16 (32 doesn't fit)
  EXPECT_EQ(Partition::all_of_size(48).size(), 3u);  // 24 racks at rack 0,8,16
  EXPECT_EQ(Partition::all_of_size(64).size(), 2u);  // 32 racks at rack 0,8
  EXPECT_EQ(Partition::all_of_size(80).size(), 1u);
}

TEST(Partition, OverlapAndCoverage) {
  const Partition a(0, 4);   // R00-R01
  const Partition b(4, 4);   // R02-R03
  const Partition c(0, 16);  // R00-R07
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
  EXPECT_TRUE(a.covers(Location::parse("R01-M1-N00")));
  EXPECT_FALSE(a.covers(Location::parse("R02-M0")));
  EXPECT_TRUE(c.covers(Location::parse("R07")));
}

class PartitionSizeP : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSizeP, PartitionsTileWithoutOverlapWhenAligned) {
  const auto parts = Partition::all_of_size(GetParam());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      if (GetParam() <= 16) {
        EXPECT_FALSE(parts[i].overlaps(parts[j]));
      }
    }
    EXPECT_EQ(parts[i].midplanes().size(), static_cast<std::size_t>(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PartitionSizeP,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 48, 64, 80));

}  // namespace
}  // namespace coral::bgp
