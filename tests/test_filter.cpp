#include <gtest/gtest.h>

#include "coral/fault/storm.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::filter {
namespace {

using ras::Catalog;
using ras::RasEvent;

RasEvent make_event(const char* code, double t_sec, const char* where) {
  RasEvent ev;
  ev.errcode = *Catalog::instance().find(code);
  ev.severity = ras::Severity::Fatal;
  ev.event_time = TimePoint::from_calendar(2009, 3, 1) +
                  static_cast<Usec>(t_sec * kUsecPerSec);
  ev.location = bgp::Location::parse(where);
  return ev;
}

std::vector<RasEvent> sorted(std::vector<RasEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const RasEvent& a, const RasEvent& b) { return a.event_time < b.event_time; });
  return events;
}

TEST(Groups, SingletonsAndMerge) {
  auto groups = singleton_groups(3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[1].rep, 1u);
  EXPECT_EQ(groups[1].members, std::vector<std::size_t>{1});
  merge_groups(groups[0], std::move(groups[2]));
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0, 2}));
}

TEST(Groups, CompressionRatio) {
  EXPECT_NEAR(compression_ratio(33370, 549), 0.9835, 0.0001);  // the paper's headline
  EXPECT_DOUBLE_EQ(compression_ratio(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(compression_ratio(10, 10), 0.0);
}

TEST(Temporal, MergesSameCodeSameLocationWithinThreshold) {
  const auto events = sorted({
      make_event(ras::codes::kRasStormFatal, 0, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 100, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 250, "R00-M0-N00-J04"),
  });
  const auto groups = temporal_filter(events, singleton_groups(3), {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 3u);
  EXPECT_EQ(groups[0].rep, 0u);
}

TEST(Temporal, WindowRenewsAlongChains) {
  // 0, 250, 500, 750: each within 300 s of the previous -> one group, even
  // though 750 is far from 0.
  const auto events = sorted({
      make_event(ras::codes::kRasStormFatal, 0, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 250, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 500, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 750, "R00-M0-N00-J04"),
  });
  EXPECT_EQ(temporal_filter(events, singleton_groups(4), {}).size(), 1u);
}

TEST(Temporal, DistinctLocationOrCodeNotMerged) {
  const auto events = sorted({
      make_event(ras::codes::kRasStormFatal, 0, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 10, "R00-M0-N00-J05"),  // other card
      make_event(ras::codes::kDdrController, 20, "R00-M0-N00-J04"),  // other code
  });
  EXPECT_EQ(temporal_filter(events, singleton_groups(3), {}).size(), 3u);
}

TEST(Temporal, BeyondThresholdStartsNewGroup) {
  const auto events = sorted({
      make_event(ras::codes::kRasStormFatal, 0, "R00-M0-N00-J04"),
      make_event(ras::codes::kRasStormFatal, 301, "R00-M0-N00-J04"),
  });
  EXPECT_EQ(temporal_filter(events, singleton_groups(2), {}).size(), 2u);
}

TEST(Spatial, MergesSameCodeAcrossLocations) {
  const auto events = sorted({
      make_event("_bgp_err_kernel_panic", 0, "R00-M0-N00-J04"),
      make_event("_bgp_err_kernel_panic", 50, "R07-M1-N09-J21"),
      make_event("_bgp_err_kernel_panic", 120, "R13-M0-N02-J30"),
  });
  const auto groups = spatial_filter(events, singleton_groups(3), {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 3u);
}

TEST(Spatial, DifferentCodesNotMerged) {
  const auto events = sorted({
      make_event("_bgp_err_kernel_panic", 0, "R00-M0-N00-J04"),
      make_event("_bgp_err_l2_array_fatal", 10, "R07-M1-N09-J21"),
  });
  EXPECT_EQ(spatial_filter(events, singleton_groups(2), {}).size(), 2u);
}

TEST(Causality, MinesFrequentPairs) {
  std::vector<RasEvent> events;
  // 6 co-occurrences of storm->panic, 30 s apart each time, days apart.
  for (int i = 0; i < 6; ++i) {
    events.push_back(
        make_event(ras::codes::kRasStormFatal, i * 86400.0, "R00-M0-N00-J04"));
    events.push_back(
        make_event("_bgp_err_kernel_panic", i * 86400.0 + 30, "R00-M0-N00-J04"));
  }
  events = sorted(events);
  const auto groups = singleton_groups(events.size());
  CausalityFilterConfig config;
  config.min_support = 5;
  const auto pairs = mine_causal_pairs(events, groups, config);
  ASSERT_EQ(pairs.size(), 1u);
  const auto filtered = causality_filter(events, singleton_groups(events.size()), pairs,
                                         config);
  EXPECT_EQ(filtered.size(), 6u);  // each pair merged into one event
}

TEST(Causality, InfrequentPairsIgnored) {
  std::vector<RasEvent> events;
  for (int i = 0; i < 3; ++i) {
    events.push_back(
        make_event(ras::codes::kRasStormFatal, i * 86400.0, "R00-M0-N00-J04"));
    events.push_back(
        make_event("_bgp_err_kernel_panic", i * 86400.0 + 30, "R00-M0-N00-J04"));
  }
  events = sorted(events);
  CausalityFilterConfig config;
  config.min_support = 5;
  EXPECT_TRUE(mine_causal_pairs(events, singleton_groups(events.size()), config).empty());
}

TEST(Causality, PairsOutsideWindowNotCounted) {
  std::vector<RasEvent> events;
  for (int i = 0; i < 8; ++i) {
    events.push_back(
        make_event(ras::codes::kRasStormFatal, i * 86400.0, "R00-M0-N00-J04"));
    events.push_back(
        make_event("_bgp_err_kernel_panic", i * 86400.0 + 500, "R00-M0-N00-J04"));
  }
  events = sorted(events);
  CausalityFilterConfig config;  // window 120 s
  config.min_support = 5;
  EXPECT_TRUE(mine_causal_pairs(events, singleton_groups(events.size()), config).empty());
}

TEST(Pipeline, GroupsPartitionTheInput) {
  const auto data = synth::generate(synth::small_scenario(21, 10));
  const auto result = run_filter_pipeline(data.ras, {});
  std::vector<int> seen(result.fatal_events.size(), 0);
  for (const auto& g : result.groups) {
    EXPECT_EQ(g.members.front(), g.rep);
    for (std::size_t m : g.members) {
      ASSERT_LT(m, seen.size());
      seen[m] += 1;
    }
  }
  for (int n : seen) EXPECT_EQ(n, 1);  // every record in exactly one group
}

TEST(Pipeline, GroupsOrderedByRepTime) {
  const auto data = synth::generate(synth::small_scenario(22, 10));
  const auto result = run_filter_pipeline(data.ras, {});
  for (std::size_t i = 1; i < result.groups.size(); ++i) {
    EXPECT_LE(result.fatal_events[result.groups[i - 1].rep].event_time,
              result.fatal_events[result.groups[i].rep].event_time);
  }
}

TEST(Pipeline, RepIsEarliestMember) {
  const auto data = synth::generate(synth::small_scenario(23, 10));
  const auto result = run_filter_pipeline(data.ras, {});
  for (const auto& g : result.groups) {
    for (std::size_t m : g.members) {
      EXPECT_LE(result.fatal_events[g.rep].event_time,
                result.fatal_events[m].event_time);
    }
  }
}

TEST(Pipeline, CompressionIsStrongOnSyntheticStorms) {
  const auto data = synth::generate(synth::small_scenario(24, 14));
  const auto result = run_filter_pipeline(data.ras, {});
  // The paper compresses 33,370 -> 549 (98.35%); storms dominate here too.
  EXPECT_GT(result.total_compression(), 0.90);
  // And the recovered event count should be near the generator's truth.
  const double truth = static_cast<double>(data.truth.faults.size());
  EXPECT_NEAR(static_cast<double>(result.groups.size()) / truth, 1.0, 0.30);
}

TEST(Pipeline, StagesAreMonotoneNonIncreasing) {
  const auto data = synth::generate(synth::small_scenario(25, 10));
  const auto result = run_filter_pipeline(data.ras, {});
  for (const auto& s : result.stages) {
    EXPECT_LE(s.output, s.input) << s.name;
  }
  ASSERT_GE(result.stages.size(), 4u);
  EXPECT_EQ(result.stages.back().output, result.groups.size());
}

TEST(Pipeline, CausalityCanBeDisabled) {
  const auto data = synth::generate(synth::small_scenario(26, 10));
  FilterPipelineConfig config;
  config.enable_causality = false;
  const auto result = run_filter_pipeline(data.ras, config);
  EXPECT_EQ(result.stages.size(), 3u);
  EXPECT_TRUE(result.causal_pairs.empty());
}

TEST(Pipeline, MinesGroundTruthCascadePairs) {
  const auto data = synth::generate(synth::small_scenario(27, 60));
  const auto result = run_filter_pipeline(data.ras, {});
  // The miner must discover pairs from the data alone, and every mined pair
  // must be one of the storm model's built-in cascade couplings (no
  // spurious pairs at the default support level).
  ASSERT_FALSE(result.causal_pairs.empty());
  for (const auto& [a, b] : result.causal_pairs) {
    const bool truth = fault::StormModel::cascade_partner(a) == b ||
                       fault::StormModel::cascade_partner(b) == a;
    EXPECT_TRUE(truth) << Catalog::instance().info(a).name << " <-> "
                       << Catalog::instance().info(b).name;
  }
}

TEST(Pipeline, IdempotentThresholdZero) {
  const auto data = synth::generate(synth::small_scenario(28, 7));
  FilterPipelineConfig config;
  config.temporal.threshold = 0;
  config.spatial.threshold = 0;
  config.enable_causality = false;
  const auto result = run_filter_pipeline(data.ras, config);
  // Zero thresholds merge only identical-timestamp records; output stays
  // close to the input count.
  EXPECT_GT(result.groups.size(), result.fatal_events.size() * 9 / 10);
}

}  // namespace
}  // namespace coral::filter
