#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "corrupt.hpp"

#include "coral/common/error.hpp"
#include "coral/common/ingest.hpp"
#include "coral/common/instrument.hpp"
#include "coral/context.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/joblog/log.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/ras/log.hpp"
#include "coral/synth/scenario.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

// ---------------------------------------------------------------------------
// Fixtures: constructed logs with exactly known contents, so accounting
// assertions can be exact.

ras::RasLog make_ras_log(std::size_t n) {
  const ras::Catalog& cat = ras::default_catalog();
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  std::vector<ras::RasEvent> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    ras::RasEvent& ev = events[i];
    ev.event_time = base + static_cast<Usec>(i) * kUsecPerMin;
    ev.location = bgp::Location::midplane(static_cast<int>(i % 80));
    ev.errcode = i % 2 == 0 ? cat.fatal_ids()[i % cat.fatal_ids().size()]
                            : cat.nonfatal_ids()[i % cat.nonfatal_ids().size()];
    ev.severity = i % 2 == 0 ? ras::Severity::Fatal : ras::Severity::Info;
    ev.serial = static_cast<std::uint32_t>(i);
    events[i] = ev;
  }
  return ras::RasLog(std::move(events), cat);
}

joblog::JobLog make_job_log(std::size_t n) {
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  joblog::JobLog log;
  for (std::size_t i = 0; i < n; ++i) {
    joblog::JobRecord j;
    j.job_id = static_cast<std::int64_t>(1000 + i);
    j.exec_id = log.intern_exec("/bin/app" + std::to_string(i % 7));
    j.user_id = log.intern_user("user" + std::to_string(i % 5));
    j.project_id = log.intern_project("proj" + std::to_string(i % 3));
    j.start_time = base + static_cast<Usec>(i) * 10 * kUsecPerMin;
    j.queue_time = j.start_time - 5 * kUsecPerMin;
    j.end_time = j.start_time + 30 * kUsecPerMin;
    j.partition = bgp::Partition(static_cast<int>(i % 40) * 2, 2);
    j.exit_code = i % 4 == 0 ? 137 : 0;
    log.append(j);
  }
  log.finalize();
  return log;
}

std::string ras_csv(const ras::RasLog& log) {
  std::ostringstream out;
  log.write_csv(out);
  return out.str();
}

std::string job_csv(const joblog::JobLog& log) {
  std::ostringstream out;
  log.write_csv(out);
  return out.str();
}

std::string a_fatal_errcode() {
  const ras::Catalog& cat = ras::default_catalog();
  return cat.info(cat.fatal_ids()[0]).name;
}

// Byte offsets of every framed block in a binary log image.
std::vector<std::size_t> block_offsets(const std::string& bytes) {
  std::vector<std::size_t> offs;
  for (std::size_t p = bytes.find("CBLK"); p != std::string::npos;
       p = bytes.find("CBLK", p + 1)) {
    offs.push_back(p);
  }
  return offs;
}

// ---------------------------------------------------------------------------
// IngestReport mechanics.

TEST(IngestReport, CountsAndSummary) {
  IngestReport rep;
  EXPECT_TRUE(rep.clean());
  rep.add_ok(10);
  rep.add_malformed(IngestReason::RowWidth, 123, "1,2,3", "expected 10 fields");
  rep.add_malformed(IngestReason::RowWidth, 456, "4,5", "expected 10 fields");
  rep.add_malformed(IngestReason::BadTimestamp, 789, "row", "bad ts");
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.records_ok(), 10u);
  EXPECT_EQ(rep.malformed(IngestReason::RowWidth), 2u);
  EXPECT_EQ(rep.malformed(IngestReason::BadTimestamp), 1u);
  EXPECT_EQ(rep.total_malformed(), 3u);
  EXPECT_EQ(rep.records_seen(), 13u);
  EXPECT_EQ(rep.summary(), "10 ok, 3 malformed (row_width: 2, bad_timestamp: 1)");
  ASSERT_EQ(rep.samples().size(), 3u);
  EXPECT_EQ(rep.samples()[0].byte_offset, 123u);
  EXPECT_EQ(rep.samples()[0].snippet, "1,2,3");
}

TEST(IngestReport, MergeFoldsCountsAndSamples) {
  IngestReport a, b;
  a.add_ok(2);
  a.add_malformed(IngestReason::BadNumber, 1, "x", "d");
  b.add_ok(3);
  b.add_malformed(IngestReason::BadNumber, 2, "y", "d");
  b.add_malformed_bulk(IngestReason::BinaryFrame, 64);
  a.merge(b);
  EXPECT_EQ(a.records_ok(), 5u);
  EXPECT_EQ(a.malformed(IngestReason::BadNumber), 2u);
  EXPECT_EQ(a.malformed(IngestReason::BinaryFrame), 64u);
  EXPECT_EQ(a.samples().size(), 2u);
}

TEST(IngestReport, ReportsMalformedCountersToSink) {
  IngestReport rep;
  rep.add_ok(5);
  rep.add_malformed(IngestReason::BadSeverity, 0, "", "d");
  RecordingSink sink;
  rep.report_malformed(&sink, "ingest.test");
  const auto samples = sink.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].stage, "ingest.test.malformed.bad_severity");
  EXPECT_EQ(samples[0].in, 1u);
}

// ---------------------------------------------------------------------------
// Lenient CSV ingest: inject K malformed rows, demand exactly K rejections
// with the right reasons, and survivors identical to the clean log.

TEST(RasCsvLenient, ExactMalformedAccounting) {
  const std::size_t n = 50;
  const ras::RasLog clean = make_ras_log(n);
  std::string csv = ras_csv(clean);

  const std::string code = a_fatal_errcode();
  const std::string ts = "2009-01-05-15.08.12.285324";
  // One row per reason; earlier fields valid so the target field decides.
  csv += "1,2,3\n";                                                       // RowWidth
  csv += "xx,m,c,s," + code + ",FATAL," + ts + ",R00-M0,7,m\n";           // BadNumber
  csv += "1,m,c,s,NOT_A_REAL_CODE,FATAL," + ts + ",R00-M0,7,m\n";         // UnknownErrcode
  csv += "1,m,c,s," + code + ",SUPERBAD," + ts + ",R00-M0,7,m\n";         // BadSeverity
  csv += "1,m,c,s," + code + ",FATAL,2026-02-31-00.00.00,R00-M0,7,m\n";   // BadTimestamp
  csv += "1,m,c,s," + code + ",FATAL," + ts + ",Z99-??,7,m\n";            // BadLocation
  csv += "1,m,c,s," + code + ",FATAL," + ts + ",R00-M0,notanint,m\n";     // BadNumber

  std::istringstream in(csv);
  IngestReport rep;
  const ras::RasLog parsed =
      ras::RasLog::read_csv(in, ras::default_catalog(), ParseMode::Lenient, &rep);

  EXPECT_EQ(rep.records_ok(), n);
  EXPECT_EQ(rep.total_malformed(), 7u);
  EXPECT_EQ(rep.malformed(IngestReason::RowWidth), 1u);
  EXPECT_EQ(rep.malformed(IngestReason::BadNumber), 2u);
  EXPECT_EQ(rep.malformed(IngestReason::UnknownErrcode), 1u);
  EXPECT_EQ(rep.malformed(IngestReason::BadSeverity), 1u);
  EXPECT_EQ(rep.malformed(IngestReason::BadTimestamp), 1u);
  EXPECT_EQ(rep.malformed(IngestReason::BadLocation), 1u);

  // Survivors are exactly the clean log.
  ASSERT_EQ(parsed.size(), clean.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].event_time, clean[i].event_time);
    EXPECT_EQ(parsed[i].errcode, clean[i].errcode);
    EXPECT_EQ(parsed[i].location, clean[i].location);
  }

  // Samples carry usable forensics.
  ASSERT_FALSE(rep.samples().empty());
  EXPECT_GT(rep.samples()[0].byte_offset, 0u);
  EXPECT_FALSE(rep.samples()[0].detail.empty());
}

TEST(JobCsvLenient, ExactMalformedAccounting) {
  const std::size_t n = 40;
  const joblog::JobLog clean = make_job_log(n);
  std::string csv = job_csv(clean);

  csv += "1,2,3\n";                                                        // RowWidth
  csv += "xx,/b,a,p,1.0,2.0,3.0,R00-M0,0\n";                               // BadNumber
  csv += "1,/b,a,p,notatime,2.0,3.0,R00-M0,0\n";                           // BadTimestamp
  csv += "1,/b,a,p,1.0,2.0,1e99,R00-M0,0\n";                               // BadTimestamp (range)
  csv += "1,/b,a,p,1.0,2.0,3.0,Z99,0\n";                                   // BadLocation
  csv += "1,/b,a,p,1.0,2.0,3.0,R00-M0,notanint\n";                         // BadNumber
  csv += "1,/b,a,p,1.0,500.0,3.0,R00-M0,0\n";                              // BadRecord (end<start)

  std::istringstream in(csv);
  IngestReport rep;
  const joblog::JobLog parsed =
      joblog::JobLog::read_csv(in, ParseMode::Lenient, &rep);

  EXPECT_EQ(rep.records_ok(), n);
  EXPECT_EQ(rep.total_malformed(), 7u);
  EXPECT_EQ(rep.malformed(IngestReason::RowWidth), 1u);
  EXPECT_EQ(rep.malformed(IngestReason::BadNumber), 2u);
  EXPECT_EQ(rep.malformed(IngestReason::BadTimestamp), 2u);
  EXPECT_EQ(rep.malformed(IngestReason::BadLocation), 1u);
  EXPECT_EQ(rep.malformed(IngestReason::BadRecord), 1u);

  ASSERT_EQ(parsed.size(), clean.size());
  // Rejected rows must leave no stray entries in the string tables.
  EXPECT_EQ(parsed.exec_files(), clean.exec_files());
  EXPECT_EQ(parsed.users(), clean.users());
  EXPECT_EQ(parsed.projects(), clean.projects());
}

TEST(CsvStrict, StillThrowsOnFirstDefect) {
  std::string csv = ras_csv(make_ras_log(5));
  csv += "1,2,3\n";
  std::istringstream in(csv);
  EXPECT_THROW(ras::RasLog::read_csv(in), ParseError);

  std::string jcsv = job_csv(make_job_log(5));
  jcsv += "xx,/b,a,p,1.0,2.0,3.0,R00-M0,0\n";
  std::istringstream jin(jcsv);
  EXPECT_THROW(joblog::JobLog::read_csv(jin), ParseError);
}

// Downstream results from lenient-mode survivors must equal the clean run:
// Table I summaries and the matching/co-analysis headline counts.
TEST(LenientIngest, SurvivorsReproduceCleanAnalysis) {
  const synth::SynthResult& data = [] () -> const synth::SynthResult& {
    static const synth::SynthResult r = synth::generate(synth::small_scenario(77, 8));
    return r;
  }();

  std::string rcsv = ras_csv(data.ras);
  std::string jcsv = job_csv(data.jobs);
  const std::string code = a_fatal_errcode();
  rcsv += "1,m,c,s," + code + ",FATAL,2026-02-31-00.00.00,R00-M0,7,m\n";
  rcsv += "1,2,3\n";
  jcsv += "1,/b,a,p,1.0,500.0,3.0,R00-M0,0\n";
  jcsv += "garbage line that is not a record\n";

  RecordingSink sink;
  const Context ctx = Context().with_sink(&sink);
  std::istringstream rin(rcsv), jin(jcsv);
  const core::IngestedLogs logs =
      core::ingest_csv_logs(rin, jin, ParseMode::Lenient, ctx);

  EXPECT_FALSE(logs.clean());
  EXPECT_EQ(logs.ras_report.total_malformed(), 2u);
  EXPECT_EQ(logs.jobs_report.total_malformed(), 2u);
  EXPECT_EQ(logs.ras_report.records_ok(), data.ras.size());
  EXPECT_EQ(logs.jobs_report.records_ok(), data.jobs.size());

  // Table I material.
  const ras::RasLogSummary rs = logs.ras.summary();
  const ras::RasLogSummary rs_clean = data.ras.summary();
  EXPECT_EQ(rs.total_records, rs_clean.total_records);
  EXPECT_EQ(rs.fatal_records, rs_clean.fatal_records);
  EXPECT_EQ(rs.fatal_errcode_types, rs_clean.fatal_errcode_types);
  EXPECT_EQ(logs.jobs.summary().total_jobs, data.jobs.summary().total_jobs);
  EXPECT_EQ(logs.jobs.summary().distinct_jobs, data.jobs.summary().distinct_jobs);

  // Filtering + matching headline counts.
  const core::CoAnalysisResult clean = core::run_coanalysis(data.ras, data.jobs);
  const core::CoAnalysisResult survived = core::run_coanalysis(logs.ras, logs.jobs);
  EXPECT_EQ(survived.filtered.groups.size(), clean.filtered.groups.size());
  EXPECT_EQ(survived.matches.interruptions.size(), clean.matches.interruptions.size());
  EXPECT_EQ(survived.system_interruptions, clean.system_interruptions);
  EXPECT_EQ(survived.application_interruptions, clean.application_interruptions);

  // Ingest health reached the instrumentation sink.
  bool saw_stage = false, saw_counter = false;
  for (const StageSample& s : sink.samples()) {
    if (s.stage == "ingest.ras_csv") {
      saw_stage = true;
      EXPECT_EQ(s.in, data.ras.size() + 2);
      EXPECT_EQ(s.out, data.ras.size());
    }
    if (s.stage == "ingest.ras_csv.malformed.bad_timestamp") saw_counter = true;
  }
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_counter);
}

// ---------------------------------------------------------------------------
// Binary v2: framed blocks, CRC, redundancy, exact loss accounting.

TEST(RasBinaryLenient, DroppedRecordBlockIsCountedExactly) {
  const std::size_t n = 1000;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log);
  std::string bytes = buf.str();

  const std::vector<std::size_t> offs = block_offsets(bytes);
  ASSERT_GE(offs.size(), 4u);  // dict, dict copy, >= 2 record blocks
  // Corrupt one payload byte of the first record block (dict copies are
  // blocks 0 and 1): its CRC fails and exactly 64 records drop.
  bytes[offs[2] + 12] = static_cast<char>(bytes[offs[2] + 12] ^ 0xFF);

  std::istringstream in(bytes);
  IngestReport rep;
  const ras::RasLog parsed = ras::read_binary(in, ras::default_catalog(),
                                              ParseMode::Lenient, &rep);
  EXPECT_EQ(parsed.size(), n - 64);
  EXPECT_EQ(rep.records_ok(), n - 64);
  EXPECT_EQ(rep.malformed(IngestReason::BinaryFrame), 64u);
  EXPECT_EQ(rep.records_seen(), n);
  EXPECT_FALSE(rep.samples().empty());
}

TEST(RasBinaryLenient, DictionaryRedundancySurvivesOneCopy) {
  const std::size_t n = 300;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log);
  std::string bytes = buf.str();

  const std::vector<std::size_t> offs = block_offsets(bytes);
  ASSERT_GE(offs.size(), 3u);
  bytes[offs[0] + 12] = static_cast<char>(bytes[offs[0] + 12] ^ 0xFF);

  std::istringstream in(bytes);
  IngestReport rep;
  const ras::RasLog parsed = ras::read_binary(in, ras::default_catalog(),
                                              ParseMode::Lenient, &rep);
  // The second dictionary copy carries the load: nothing is lost.
  EXPECT_EQ(parsed.size(), n);
  EXPECT_EQ(rep.records_ok(), n);
  EXPECT_EQ(rep.total_malformed(), 0u);
  EXPECT_FALSE(rep.samples().empty());  // the dropped frame is still reported
}

TEST(JobBinaryLenient, TruncationRecoversPrefixAndCountsTheRest) {
  const std::size_t n = 500;
  const joblog::JobLog log = make_job_log(n);
  std::stringstream buf;
  joblog::write_binary(buf, log);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() * 3 / 5);

  std::istringstream in(bytes);
  IngestReport rep;
  const joblog::JobLog parsed = joblog::read_binary(in, ParseMode::Lenient, &rep);
  EXPECT_GT(parsed.size(), 0u);
  EXPECT_LT(parsed.size(), n);
  EXPECT_EQ(rep.records_ok(), parsed.size());
  EXPECT_EQ(rep.malformed(IngestReason::BinaryFrame), n - parsed.size());
  EXPECT_EQ(rep.records_seen(), n);
}

TEST(BinaryStrict, ErrorsCarryByteOffsets) {
  const ras::RasLog log = make_ras_log(200);
  std::stringstream buf;
  ras::write_binary(buf, log);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 10);  // cut inside the final block
  std::istringstream in(bytes);
  try {
    ras::read_binary(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos) << e.what();
  }
}

TEST(BinaryStrict, CountMismatchDetected) {
  // Deleting one whole record block leaves every remaining frame intact;
  // only the dictionary's total count exposes the loss.
  const std::size_t n = 1000;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log);
  std::string bytes = buf.str();
  const std::vector<std::size_t> offs = block_offsets(bytes);
  ASSERT_GE(offs.size(), 4u);
  bytes.erase(offs[2], offs[3] - offs[2]);

  std::istringstream in(bytes);
  EXPECT_THROW(ras::read_binary(in), ParseError);

  // Lenient mode books the same loss as BinaryFrame records.
  std::istringstream in2(bytes);
  IngestReport rep;
  const ras::RasLog parsed =
      ras::read_binary(in2, ras::default_catalog(), ParseMode::Lenient, &rep);
  EXPECT_EQ(parsed.size(), n - 64);
  EXPECT_EQ(rep.malformed(IngestReason::BinaryFrame), 64u);
}

// ---------------------------------------------------------------------------
// Corpus fuzz-smoke: every corruption class over both logs and both
// serializations. Lenient ingest must never throw, never hang, and keep its
// accounting invariants; these are the tests scripts/ci.sh runs under
// ASan/UBSan in the fuzz-smoke stage.

void expect_lenient_ras_csv_survives(const std::string& csv, std::uint64_t seed) {
  std::istringstream in(csv);
  IngestReport rep;
  ras::RasLog parsed;
  ASSERT_NO_THROW(parsed = ras::RasLog::read_csv(in, ras::default_catalog(),
                                                 ParseMode::Lenient, &rep))
      << "seed " << seed;
  EXPECT_EQ(rep.records_ok(), parsed.size()) << "seed " << seed;
}

void expect_lenient_job_csv_survives(const std::string& csv, std::uint64_t seed) {
  std::istringstream in(csv);
  IngestReport rep;
  joblog::JobLog parsed;
  ASSERT_NO_THROW(parsed = joblog::JobLog::read_csv(in, ParseMode::Lenient, &rep))
      << "seed " << seed;
  EXPECT_EQ(rep.records_ok(), parsed.size()) << "seed " << seed;
}

// Corrupt only past the header line: a destroyed header is untrustworthy-
// schema territory, which even lenient mode refuses by design.
std::string corrupt_body(const std::string& csv, Rng& rng, int flips) {
  const std::size_t head_end = csv.find('\n') + 1;
  return csv.substr(0, head_end) +
         testing::flip_bits(csv.substr(head_end), rng, flips);
}

TEST(FuzzSmokeCsv, RasCorpus) {
  const std::string csv = ras_csv(make_ras_log(200));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    expect_lenient_ras_csv_survives(corrupt_body(csv, rng, 8), seed);
    expect_lenient_ras_csv_survives(testing::truncate_bytes(csv, rng, 0.3), seed);
    expect_lenient_ras_csv_survives(testing::mangle_csv_fields(csv, rng, 5), seed);
    expect_lenient_ras_csv_survives(testing::duplicate_csv_rows(csv, rng, 3), seed);
    expect_lenient_ras_csv_survives(testing::insert_garbage_rows(csv, rng, 4), seed);
    expect_lenient_ras_csv_survives(testing::unbalance_csv_quote(csv, rng), seed);
  }
}

TEST(FuzzSmokeCsv, JobCorpus) {
  const std::string csv = job_csv(make_job_log(150));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    expect_lenient_job_csv_survives(corrupt_body(csv, rng, 8), seed);
    expect_lenient_job_csv_survives(testing::truncate_bytes(csv, rng, 0.3), seed);
    expect_lenient_job_csv_survives(testing::mangle_csv_fields(csv, rng, 5), seed);
    expect_lenient_job_csv_survives(testing::duplicate_csv_rows(csv, rng, 3), seed);
    expect_lenient_job_csv_survives(testing::insert_garbage_rows(csv, rng, 4), seed);
    expect_lenient_job_csv_survives(testing::unbalance_csv_quote(csv, rng), seed);
  }
}

TEST(FuzzSmokeCsv, RecoversAtLeast99PercentOfIntactRows) {
  const std::size_t n = 2000;
  const std::string csv = ras_csv(make_ras_log(n));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const std::string bad = corrupt_body(csv, rng, 3);
    std::istringstream in(bad);
    IngestReport rep;
    const ras::RasLog parsed = ras::RasLog::read_csv(in, ras::default_catalog(),
                                                     ParseMode::Lenient, &rep);
    EXPECT_GE(parsed.size(), n * 99 / 100) << "seed " << seed << ": " << rep.summary();
  }
}

TEST(FuzzSmokeBinary, RasCorpus) {
  const std::size_t n = 600;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log);
  const std::string bytes = buf.str();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    for (const std::string& bad :
         {testing::flip_bits(bytes, rng, 6), testing::truncate_bytes(bytes, rng, 0.3),
          testing::flip_bits(testing::truncate_bytes(bytes, rng, 0.5), rng, 3)}) {
      std::istringstream in(bad);
      IngestReport rep;
      ras::RasLog parsed;
      ASSERT_NO_THROW(parsed = ras::read_binary(in, ras::default_catalog(),
                                                ParseMode::Lenient, &rep))
          << "seed " << seed;
      EXPECT_EQ(rep.records_ok(), parsed.size()) << "seed " << seed;
      EXPECT_LE(parsed.size(), n) << "seed " << seed;
    }
  }
}

TEST(FuzzSmokeBinary, JobCorpus) {
  const std::size_t n = 400;
  const joblog::JobLog log = make_job_log(n);
  std::stringstream buf;
  joblog::write_binary(buf, log);
  const std::string bytes = buf.str();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    for (const std::string& bad :
         {testing::flip_bits(bytes, rng, 6), testing::truncate_bytes(bytes, rng, 0.3),
          testing::flip_bits(testing::truncate_bytes(bytes, rng, 0.5), rng, 3)}) {
      std::istringstream in(bad);
      IngestReport rep;
      joblog::JobLog parsed;
      ASSERT_NO_THROW(parsed = joblog::read_binary(in, ParseMode::Lenient, &rep))
          << "seed " << seed;
      EXPECT_EQ(rep.records_ok(), parsed.size()) << "seed " << seed;
      EXPECT_LE(parsed.size(), n) << "seed " << seed;
    }
  }
}

TEST(FuzzSmokeBinary, RecoversAtLeast99PercentAfterBitFlips) {
  // 64-record blocks: one flip costs at most one block, so two flips on a
  // 13k-record log stay under the 1% loss budget.
  const std::size_t n = 13000;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log);
  const std::string bytes = buf.str();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const std::string bad = testing::flip_bits(bytes, rng, 2);
    std::istringstream in(bad);
    IngestReport rep;
    const ras::RasLog parsed =
        ras::read_binary(in, ras::default_catalog(), ParseMode::Lenient, &rep);
    EXPECT_GE(parsed.size(), n * 99 / 100) << "seed " << seed << ": " << rep.summary();
    EXPECT_EQ(rep.records_seen(), n) << "seed " << seed;
  }
}

// -- v3 columnar store: the same corruption classes plus v3-only structure
// -- (compressed column bodies, zone maps) with and without a predicate.
// -- Lenient ingest must never throw; without a predicate ok == appended
// -- exactly, and with one ok may exceed appended because valid records the
// -- exact filter rejects still count as ok.

TEST(FuzzSmokeV3, RasCorpus) {
  const std::size_t n = 600;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log, {});
  const std::string bytes = buf.str();
  bin::ReadPredicate pred;
  pred.time_begin = TimePoint::from_calendar(2009, 1, 5) + 2 * kUsecPerHour;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    for (const std::string& bad :
         {testing::flip_bits(bytes, rng, 6), testing::truncate_bytes(bytes, rng, 0.3),
          testing::flip_block_payload(bytes, rng, 'C', 3),
          testing::flip_block_payload(bytes, rng, 'S', 2),
          testing::lie_in_zone_map(bytes, rng)}) {
      for (const bool filtered : {false, true}) {
        std::istringstream in(bad);
        IngestReport rep;
        ras::ReadOptions opts;
        opts.mode = ParseMode::Lenient;
        opts.report = &rep;
        if (filtered) opts.predicate = pred;
        ras::RasLog parsed;
        ASSERT_NO_THROW(parsed = ras::read_binary(in, ras::default_catalog(), opts))
            << "seed " << seed;
        if (filtered) {
          EXPECT_GE(rep.records_ok(), parsed.size()) << "seed " << seed;
        } else {
          EXPECT_EQ(rep.records_ok(), parsed.size()) << "seed " << seed;
        }
        EXPECT_LE(parsed.size(), n) << "seed " << seed;
      }
    }
  }
}

TEST(FuzzSmokeV3, JobCorpus) {
  const std::size_t n = 400;
  const joblog::JobLog log = make_job_log(n);
  std::stringstream buf;
  joblog::write_binary(buf, log, {});
  const std::string bytes = buf.str();
  bin::ReadPredicate pred;
  pred.time_begin = TimePoint::from_calendar(2009, 1, 5) + 2 * kUsecPerHour;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    for (const std::string& bad :
         {testing::flip_bits(bytes, rng, 6), testing::truncate_bytes(bytes, rng, 0.3),
          testing::flip_block_payload(bytes, rng, 'C', 3),
          testing::lie_in_zone_map(bytes, rng)}) {
      for (const bool filtered : {false, true}) {
        std::istringstream in(bad);
        IngestReport rep;
        joblog::ReadOptions opts;
        opts.mode = ParseMode::Lenient;
        opts.report = &rep;
        if (filtered) opts.predicate = pred;
        joblog::JobLog parsed;
        ASSERT_NO_THROW(parsed = joblog::read_binary(in, opts)) << "seed " << seed;
        EXPECT_LE(parsed.size(), n) << "seed " << seed;
      }
    }
  }
}

TEST(FuzzSmokeV3, DamagedColumnBlockIsCountedExactly) {
  // One stale-CRC 'C' frame in an otherwise intact v3 file: the framing
  // layer drops exactly that block and the top-up charges exactly its
  // declared records to BinaryFrame.
  const std::size_t n = 640;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log, {});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const std::string bad = testing::flip_block_payload(buf.str(), rng, 'C', 1);
    std::istringstream in(bad);
    IngestReport rep;
    const ras::RasLog parsed =
        ras::read_binary(in, ras::default_catalog(), ParseMode::Lenient, &rep);
    EXPECT_EQ(parsed.size(), n - 64) << "seed " << seed;
    EXPECT_EQ(rep.malformed(IngestReason::BinaryFrame), 64u) << "seed " << seed;
    EXPECT_EQ(rep.records_seen(), n) << "seed " << seed;
  }
}

TEST(FuzzSmokeV3, ZoneMapLiesNeverBreakAccounting) {
  // A zone map that lies (repaired CRC) may cost a pushdown read records,
  // but the ledger stays exact: nothing is double-counted or lost twice.
  const std::size_t n = 640;
  const ras::RasLog log = make_ras_log(n);
  std::stringstream buf;
  ras::write_binary(buf, log, {});
  bin::ReadPredicate pred;
  pred.time_begin = TimePoint::from_calendar(2009, 1, 5);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const std::string bad = testing::lie_in_zone_map(buf.str(), rng);
    std::istringstream in(bad);
    IngestReport rep;
    ras::ReadOptions opts;
    opts.mode = ParseMode::Lenient;
    opts.report = &rep;
    opts.predicate = pred;
    ras::RasLog parsed;
    ASSERT_NO_THROW(parsed = ras::read_binary(in, ras::default_catalog(), opts))
        << "seed " << seed;
    EXPECT_EQ(rep.total_malformed(), 0u) << "seed " << seed;
    EXPECT_LE(parsed.size(), n) << "seed " << seed;
  }
}

TEST(IngestCsvLogs, StrictCleanPairIsClean) {
  const ras::RasLog ras_log = make_ras_log(30);
  const joblog::JobLog jobs = make_job_log(20);
  std::istringstream rin(ras_csv(ras_log)), jin(job_csv(jobs));
  const core::IngestedLogs logs = core::ingest_csv_logs(rin, jin);
  EXPECT_TRUE(logs.clean());
  EXPECT_EQ(logs.ras.size(), ras_log.size());
  EXPECT_EQ(logs.jobs.size(), jobs.size());
  EXPECT_EQ(logs.ras_report.records_ok(), ras_log.size());
}

}  // namespace
}  // namespace coral
