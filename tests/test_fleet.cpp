#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corrupt.hpp"

#include "coral/common/error.hpp"
#include "coral/fleet/client.hpp"
#include "coral/fleet/daemon.hpp"
#include "coral/fleet/fingerprint.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/machine/model.hpp"
#include "coral/ras/binary_io.hpp"

namespace coral {
namespace {

// ---------------------------------------------------------------------------
// Fixtures (the constructed logs test_session.cpp uses, kept machine-legal
// for both bgp and bgq: midplanes 0..71 and power-of-two partitions).

ras::RasLog make_ras_log(std::size_t n) {
  const ras::Catalog& cat = ras::default_catalog();
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  std::vector<ras::RasEvent> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    ras::RasEvent& ev = events[i];
    ev.event_time = base + static_cast<Usec>(i) * kUsecPerMin;
    ev.location = bgp::Location::midplane(static_cast<int>(i % 72));
    ev.errcode = i % 2 == 0 ? cat.fatal_ids()[i % cat.fatal_ids().size()]
                            : cat.nonfatal_ids()[i % cat.nonfatal_ids().size()];
    ev.severity = i % 2 == 0 ? ras::Severity::Fatal : ras::Severity::Info;
    ev.serial = static_cast<std::uint32_t>(i);
  }
  return ras::RasLog(std::move(events), cat);
}

joblog::JobLog make_job_log(std::size_t n) {
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  joblog::JobLog log;
  for (std::size_t i = 0; i < n; ++i) {
    joblog::JobRecord j;
    j.job_id = static_cast<std::int64_t>(1000 + i);
    j.exec_id = log.intern_exec("/bin/app" + std::to_string(i % 7));
    j.user_id = log.intern_user("user" + std::to_string(i % 5));
    j.project_id = log.intern_project("proj" + std::to_string(i % 3));
    j.start_time = base + static_cast<Usec>(i) * 10 * kUsecPerMin;
    j.queue_time = j.start_time - 5 * kUsecPerMin;
    j.end_time = j.start_time + 30 * kUsecPerMin;
    j.partition = bgp::Partition(static_cast<int>(i % 36) * 2, 2);
    j.exit_code = i % 4 == 0 ? 137 : 0;
    log.append(j);
  }
  log.finalize();
  return log;
}

std::string ras_bytes(const ras::RasLog& log) {
  std::stringstream buf;
  ras::write_binary(buf, log);
  return buf.str();
}

std::string job_bytes(const joblog::JobLog& log) {
  std::stringstream buf;
  joblog::write_binary(buf, log);
  return buf.str();
}

std::string offline_result_fp(const std::string& ras_image,
                              const std::string& job_image, ParseMode mode,
                              const machine::MachineModel& machine) {
  std::istringstream ras_in(ras_image), job_in(job_image);
  const ras::RasLog ras_log = ras::read_binary(
      ras_in, ras::default_catalog(), mode, nullptr, nullptr, nullptr, machine);
  const joblog::JobLog job_log =
      joblog::read_binary(job_in, mode, nullptr, nullptr, machine);
  Context ctx;
  ctx.with_machine(machine);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fleet::result_fingerprint(
                    core::run_coanalysis(ras_log, job_log, {}, ctx))));
  return buf;
}

/// A daemon bound to ephemeral localhost ports, stopped at scope exit.
struct DaemonFixture {
  fleet::Daemon daemon;
  explicit DaemonFixture(fleet::DaemonConfig cfg = {}) : daemon(std::move(cfg)) {
    daemon.start();
  }
  ~DaemonFixture() { daemon.stop(); }
  int port() const { return daemon.wire_port(); }
};

// ---------------------------------------------------------------------------
// Wire protocol plumbing.

TEST(FleetWire, HandshakeRoundTrips) {
  const fleet::Handshake hs{"tenant-1", "bgq", ParseMode::Strict, true};
  const std::string msg = fleet::encode_handshake(hs);
  fleet::MessageReader reader;
  reader.push(msg);
  std::string got;
  ASSERT_TRUE(reader.next(got));
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0], fleet::kMsgHello);
  const fleet::Handshake back =
      fleet::decode_handshake(std::string_view(got).substr(1));
  EXPECT_EQ(back.tenant, hs.tenant);
  EXPECT_EQ(back.machine, hs.machine);
  EXPECT_EQ(back.mode, hs.mode);
  EXPECT_EQ(back.shed_overflow, hs.shed_overflow);
}

TEST(FleetWire, MessageReaderReassemblesByteAtATime) {
  const std::string wire = fleet::encode_message(fleet::kMsgRasData, "payload!") +
                           fleet::encode_message(fleet::kMsgFlush, "");
  fleet::MessageReader reader;
  std::vector<std::string> got;
  std::string msg;
  for (const char c : wire) {
    reader.push(std::string_view(&c, 1));
    while (reader.next(msg)) got.push_back(msg);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::string(1, fleet::kMsgRasData) + "payload!");
  EXPECT_EQ(got[1], std::string(1, fleet::kMsgFlush));
}

TEST(FleetWire, DamagedFrameIsProtocolError) {
  std::string wire = fleet::encode_message(fleet::kMsgRasData, "payload!");
  wire[bin::kBlockHeaderBytes + 3] ^= 0x40;  // corrupt the payload -> CRC fails
  fleet::MessageReader reader;
  std::string msg;
  reader.push(wire);
  EXPECT_THROW((void)reader.next(msg), ParseError);
}

TEST(FleetWire, RejectsBadTenantNames) {
  EXPECT_TRUE(fleet::valid_tenant_name("prod-bgp_01.anl"));
  EXPECT_FALSE(fleet::valid_tenant_name(""));
  EXPECT_FALSE(fleet::valid_tenant_name("has space"));
  EXPECT_FALSE(fleet::valid_tenant_name("quote\"label"));
  EXPECT_FALSE(fleet::valid_tenant_name(std::string(65, 'a')));
  EXPECT_THROW(
      (void)fleet::decode_handshake("\x05\x00no\"no\x03\x00""bgp\x00\x00"),
      ParseError);
}

// ---------------------------------------------------------------------------
// Daemon end-to-end: tenants, parity, liveness.

TEST(FleetDaemon, TwoConcurrentTenantsOnDifferentMachinesReachParity) {
  DaemonFixture fx;
  struct Feed {
    const char* tenant;
    const char* machine_name;
    const machine::MachineModel* machine;
    std::string ras_image, job_image;
    fleet::ReplyFields reply;
  };
  Feed feeds[2] = {
      {"intrepid", "bgp", &machine::bgp_model(),
       ras_bytes(make_ras_log(800)), job_bytes(make_job_log(300)), {}},
      {"mira", "bgq", &machine::bgq_model(),
       ras_bytes(make_ras_log(500)), job_bytes(make_job_log(200)), {}},
  };
  std::thread feeders[2];
  for (int i = 0; i < 2; ++i) {
    feeders[i] = std::thread([&fx, &feeds, i] {
      Feed& f = feeds[i];
      fleet::WireClient client("127.0.0.1", fx.port());
      client.handshake({f.tenant, f.machine_name, ParseMode::Strict, false});
      // Small chunks force many interleaved wire messages across tenants.
      client.send_data(stream::Source::Ras, f.ras_image, 3000);
      client.send_data(stream::Source::Jobs, f.job_image, 3000);
      f.reply = client.finalize();
    });
  }
  for (std::thread& t : feeders) t.join();
  for (Feed& f : feeds) {
    EXPECT_EQ(f.reply.at("result_fp"),
              offline_result_fp(f.ras_image, f.job_image, ParseMode::Strict,
                                *f.machine))
        << f.tenant;
    EXPECT_EQ(f.reply.at("ras_records"),
              std::to_string(f.machine == &machine::bgp_model() ? 800 : 500))
        << f.tenant;
  }
  // Both tenants visible, finalized, on their own machines.
  const auto tenants = fx.daemon.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  for (const auto& t : tenants) EXPECT_TRUE(t.stats.finalized) << t.name;
}

TEST(FleetDaemon, MidRunMetricsAreLiveAndLabeled) {
  DaemonFixture fx;
  const std::string ras_image = ras_bytes(make_ras_log(600));
  const std::string job_image = job_bytes(make_job_log(200));
  fleet::WireClient client("127.0.0.1", fx.port());
  client.handshake({"livetenant", "bgp", ParseMode::Lenient, false});
  client.send_data(stream::Source::Ras, ras_image, 8192);
  const fleet::ReplyFields live = client.flush();
  // Mid-run: decoded but not finalized — the liveness acceptance gate.
  EXPECT_EQ(live.at("ras_records"), "600");
  EXPECT_EQ(live.at("finalized"), "0");
  const std::string mid = fx.daemon.metrics_text();
  EXPECT_NE(mid.find("coral_session_ras_records{tenant=\"livetenant\"} 600"),
            std::string::npos)
      << mid;
  EXPECT_NE(mid.find("coral_session_finalized{tenant=\"livetenant\"} 0"),
            std::string::npos);
  EXPECT_NE(mid.find("coral_session_bytes_accepted_total{tenant=\"livetenant\"}"),
            std::string::npos);
  client.send_data(stream::Source::Jobs, job_image, 8192);
  (void)client.finalize();
  const std::string done = fx.daemon.metrics_text();
  EXPECT_NE(done.find("coral_session_finalized{tenant=\"livetenant\"} 1"),
            std::string::npos);
}

TEST(FleetDaemon, MetricsEndpointServesHttp) {
  DaemonFixture fx;
  {
    fleet::WireClient client("127.0.0.1", fx.port());
    client.handshake({"scraped", "bgp", ParseMode::Lenient, false});
    client.send_data(stream::Source::Ras, ras_bytes(make_ras_log(64)));
    (void)client.flush();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(fx.daemon.metrics_port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string req = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(resp.rfind("HTTP/1.1 200 OK", 0), 0u) << resp.substr(0, 80);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("coral_session_ras_records{tenant=\"scraped\"} 64"),
            std::string::npos);
}

TEST(FleetDaemon, HandshakeRejectsUnknownMachine) {
  DaemonFixture fx;
  fleet::WireClient client("127.0.0.1", fx.port());
  try {
    client.handshake({"ghost", "craycle-9000", ParseMode::Lenient, false});
    FAIL() << "handshake should have been rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown machine model"),
              std::string::npos)
        << e.what();
  }
}

TEST(FleetDaemon, HandshakeRejectsMachineConflictForExistingTenant) {
  DaemonFixture fx;
  fleet::WireClient first("127.0.0.1", fx.port());
  first.handshake({"claimed", "bgp", ParseMode::Lenient, false});
  fleet::WireClient second("127.0.0.1", fx.port());
  EXPECT_THROW(second.handshake({"claimed", "bgq", ParseMode::Lenient, false}),
               Error);
  // Agreeing on machine + mode re-attaches instead.
  fleet::WireClient third("127.0.0.1", fx.port());
  EXPECT_NO_THROW(third.handshake({"claimed", "bgp", ParseMode::Lenient, false}));
}

TEST(FleetDaemon, RuntimeRegisteredModelIsUsableAtConnectTime) {
  machine::Topology topo;
  topo.name = "minibg";
  topo.description = "4-rack test machine";
  topo.racks = 4;
  const machine::DataModel model(topo);
  ASSERT_TRUE(machine::register_model(model));
  {
    DaemonFixture fx;
    fleet::WireClient client("127.0.0.1", fx.port());
    // The model arrived at runtime, after the daemon was built: exactly the
    // connect-time registration path the fleet design calls for.
    EXPECT_NO_THROW(client.handshake({"mini", "minibg", ParseMode::Lenient, false}));
    const auto tenants = fx.daemon.tenants();
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_EQ(tenants[0].machine, "minibg");
  }
  EXPECT_TRUE(machine::unregister_model("minibg"));
}

TEST(FleetDaemon, GarbageBytesOnSocketGetErrorReply) {
  DaemonFixture fx;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(fx.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string junk = "this is not a CBLK frame at all, not even close";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  // The daemon replies with one Error frame, then hangs up.
  fleet::MessageReader reader;
  std::string msg;
  char buf[4096];
  ssize_t n;
  bool got_error = false;
  while (!got_error && (n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    reader.push(std::string_view(buf, static_cast<std::size_t>(n)));
    while (reader.next(msg)) {
      if (!msg.empty() && msg[0] == fleet::kMsgError) got_error = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(got_error);
}

// ---------------------------------------------------------------------------
// FuzzSmokeWire: the corrupt-frame corpus replayed over the socket path —
// scripts/ci.sh runs these under ASan/UBSan. The invariant: damage inside
// the *log payload* costs exactly what it costs offline (at most one block
// of records per damaged stretch, with identical IngestReport accounting),
// because transport framing and payload damage are separate layers.

void expect_wire_parity_on_damaged_logs(const std::string& ras_bad,
                                        const std::string& job_bad,
                                        std::uint64_t seed) {
  std::istringstream ras_in(ras_bad), job_in(job_bad);
  IngestReport want_ras, want_jobs;
  const ras::RasLog off_ras = ras::read_binary(ras_in, ras::default_catalog(),
                                               ParseMode::Lenient, &want_ras);
  const joblog::JobLog off_jobs =
      joblog::read_binary(job_in, ParseMode::Lenient, &want_jobs);

  DaemonFixture fx;
  fleet::WireClient client("127.0.0.1", fx.port());
  client.handshake({"fuzz", "bgp", ParseMode::Lenient, false});
  Rng rng(seed);
  // Ship the damaged images in small random chunks so wire-message
  // boundaries land inside damaged stretches too.
  for (std::string_view rest : {std::string_view(ras_bad), std::string_view(job_bad)}) {
    const auto src = rest.data() == ras_bad.data() ? stream::Source::Ras
                                                   : stream::Source::Jobs;
    while (!rest.empty()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.uniform_index(2000), rest.size());
      client.send_data(src, rest.substr(0, n), n);
      rest.remove_prefix(n);
    }
  }
  const fleet::ReplyFields reply = client.finalize();
  EXPECT_EQ(reply.at("ras_records"), std::to_string(off_ras.size())) << "seed " << seed;
  EXPECT_EQ(reply.at("job_records"), std::to_string(off_jobs.size())) << "seed " << seed;
  EXPECT_EQ(reply.at("ras_malformed"), std::to_string(want_ras.total_malformed()))
      << "seed " << seed;
  EXPECT_EQ(reply.at("job_malformed"), std::to_string(want_jobs.total_malformed()))
      << "seed " << seed;
}

TEST(FuzzSmokeWire, CorruptLogCorpusOverSocketMatchesOfflineAccounting) {
  const std::string ras_clean = ras_bytes(make_ras_log(900));
  const std::string job_clean = job_bytes(make_job_log(400));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    expect_wire_parity_on_damaged_logs(testing::flip_bits(ras_clean, rng, 5),
                                       testing::flip_bits(job_clean, rng, 3), seed);
    expect_wire_parity_on_damaged_logs(
        testing::truncate_bytes(ras_clean, rng, 0.3),
        testing::flip_bits(testing::truncate_bytes(job_clean, rng, 0.5), rng, 2),
        seed + 100);
  }
}

TEST(FuzzSmokeWire, ShedsAtMostOneBlockPerDamagedFrame) {
  // Surgical damage: corrupt exactly k frames; the lenient decode must lose
  // at most k blocks' worth of records (64 per block), each stretch one
  // BinaryFrame sample, with the loss top-up making the ledger exact.
  const std::size_t n = 1280;  // 20 record blocks
  const std::string clean = ras_bytes(make_ras_log(n));
  for (int k = 1; k <= 3; ++k) {
    std::string bad = clean;
    std::vector<std::size_t> offs;
    for (std::size_t p = bad.find("CBLK"); p != std::string::npos;
         p = bad.find("CBLK", p + 1)) {
      offs.push_back(p);
    }
    ASSERT_GT(offs.size(), static_cast<std::size_t>(4 * k));
    for (int i = 0; i < k; ++i) {
      // Damage payload bytes of distinct record frames (skip the header
      // and dictionary block at offs[0]/offs[1]).
      bad[offs[static_cast<std::size_t>(2 + 5 * i)] + bin::kBlockHeaderBytes + 7] ^= 0x10;
    }
    DaemonFixture fx;
    fleet::WireClient client("127.0.0.1", fx.port());
    client.handshake({"surgical", "bgp", ParseMode::Lenient, false});
    client.send_data(stream::Source::Ras, bad, 4096);
    client.send_data(stream::Source::Jobs, job_bytes(make_job_log(64)), 4096);
    const fleet::ReplyFields reply = client.finalize();
    const auto records = std::stoull(reply.at("ras_records"));
    const auto malformed = std::stoull(reply.at("ras_malformed"));
    EXPECT_GE(records, n - 64 * static_cast<std::size_t>(k)) << "k=" << k;
    EXPECT_EQ(records + malformed, n) << "k=" << k;
  }
}

}  // namespace
}  // namespace coral
