// End-to-end validation: run the full co-analysis on a medium-scale
// synthetic scenario and assert the *shape* of every paper observation.
// These are the reproduction's acceptance tests: absolute numbers differ
// from the paper (different substrate), but directions, orderings and
// rough magnitudes must hold.
#include <gtest/gtest.h>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::core {
namespace {

struct Fixture {
  synth::SynthResult data;
  CoAnalysisResult r;
};

// 120 days at small-scenario density: large enough for stable statistics,
// ~1s to build.
const Fixture& fx() {
  static const Fixture f = [] {
    Fixture out;
    out.data = synth::generate(synth::small_scenario(41, 120));
    out.r = run_coanalysis(out.data.ras, out.data.jobs);
    return out;
  }();
  return f;
}

TEST(Observations, Obs1_SomeFatalCodesNeverImpactJobs) {
  const auto& r = fx().r;
  EXPECT_GE(r.identification.count(ErrcodeVerdict::NonFatalToJobs), 1);
  EXPECT_LE(r.identification.count(ErrcodeVerdict::NonFatalToJobs), 4);
  EXPECT_GT(r.identification.nonfatal_event_fraction, 0.05);
  EXPECT_LT(r.identification.nonfatal_event_fraction, 0.40);
}

TEST(Observations, Obs2_CauseSeparationFindsBothKinds) {
  const auto& r = fx().r;
  EXPECT_GE(r.classification.application_type_count(), 4);
  EXPECT_LE(r.classification.application_type_count(), 14);
  EXPECT_GT(r.classification.system_type_count(),
            r.classification.application_type_count() * 4);
  EXPECT_GT(r.classification.application_event_fraction, 0.04);
  EXPECT_LT(r.classification.application_event_fraction, 0.45);
}

TEST(Observations, Obs3_JobRelatedRedundancyIsNotNegligible) {
  const auto& r = fx().r;
  const double removed = static_cast<double>(r.job_filter.removed_count()) /
                         static_cast<double>(r.filtered.groups.size());
  EXPECT_GT(removed, 0.03);  // paper: 13.1%
  EXPECT_LT(removed, 0.40);
  EXPECT_GT(r.propagation.same_partition_fraction(), 0.35);  // paper: 57.4%
}

TEST(Observations, Obs4_WeibullFitsWithShapeBelowOne) {
  const auto& r = fx().r;
  EXPECT_TRUE(r.fatal_before_jobfilter.lrt.weibull_preferred);
  EXPECT_TRUE(r.fatal_after_jobfilter.lrt.weibull_preferred);
  EXPECT_LT(r.fatal_before_jobfilter.weibull.shape(), 1.0);
  EXPECT_LT(r.fatal_after_jobfilter.weibull.shape(), 1.0);
  // Removing job-related redundancy lengthens the fitted MTBF.
  EXPECT_GT(r.fatal_after_jobfilter.weibull.mean(),
            r.fatal_before_jobfilter.weibull.mean());
}

TEST(Observations, Obs5_FailuresFollowWideJobsNotWorkload) {
  const auto& r = fx().r;
  double fatal_region = 0, fatal_total = 0, work_region = 0, work_total = 0;
  for (int m = 0; m < bgp::Topology::kMidplanes; ++m) {
    const auto i = static_cast<std::size_t>(m);
    fatal_total += r.fatal_events_per_midplane[i];
    work_total += r.workload_per_midplane[i];
    if (m >= 32 && m < 64) {
      fatal_region += r.fatal_events_per_midplane[i];
      work_region += r.workload_per_midplane[i];
    }
  }
  const double fatal_share = fatal_region / fatal_total;
  const double work_share = work_region / work_total;
  // The wide-job region is 40% of the machine: it must be over-represented
  // in failures relative to its workload share.
  EXPECT_GT(fatal_share, work_share);
  EXPECT_GT(fatal_share, 0.30);
}

TEST(Observations, Obs6_InterruptionsAreRareButBursty) {
  const auto& [data, r] = fx();
  const double rate = static_cast<double>(r.interruption_count()) /
                      static_cast<double>(data.jobs.size());
  EXPECT_LT(rate, 0.08);  // rare (paper: 0.45% of jobs)
  // Bursty: the busiest day holds several interruptions even though most
  // days have none.
  int max_day = 0, active = 0;
  for (int n : r.interruptions_per_day) {
    max_day = std::max(max_day, n);
    active += n > 0 ? 1 : 0;
  }
  EXPECT_GE(max_day, 3);
  EXPECT_LT(active, static_cast<int>(r.interruptions_per_day.size()));
}

TEST(Observations, Obs7_InterruptionRateBelowFailureRate) {
  const auto& r = fx().r;
  EXPECT_GT(r.interruptions_system.weibull.mean(),
            1.2 * r.fatal_before_jobfilter.weibull.mean());
  EXPECT_GT(r.identification.idle_event_fraction, 0.25);  // paper: 45.45%
  EXPECT_LT(r.identification.idle_event_fraction, 0.70);
}

TEST(Observations, Obs8_SpatialPropagationRareAndFsBound) {
  const auto& r = fx().r;
  EXPECT_LT(r.propagation.propagating_event_fraction, 0.15);  // paper: 7.22%
  const ras::Catalog& cat = ras::Catalog::instance();
  std::size_t fs = 0;
  for (auto code : r.propagation.propagating_codes) {
    fs += cat.info(code).propagates ? 1 : 0;
  }
  if (!r.propagation.propagating_codes.empty()) {
    EXPECT_GE(2 * fs, r.propagation.propagating_codes.size());
  }
}

TEST(Observations, Obs9_HistoryPredictsVulnerability) {
  const auto& r = fx().r;
  const auto& sys = r.vulnerability.resubmission[0];
  // Conditional failure probability after one failure is far above the
  // base rate (paper: tens of percent vs <1%).
  ASSERT_GT(sys.by_k[0].resubmissions, 10u);
  EXPECT_GT(sys.by_k[0].probability(), 0.05);
  // And it grows (or at least does not collapse) with more history.
  if (sys.by_k[1].resubmissions >= 5) {
    EXPECT_GT(sys.by_k[1].probability(), sys.by_k[0].probability() * 0.8);
  }
}

TEST(Observations, Obs10_SizeBeatsExecutionTime) {
  const auto& r = fx().r;
  const auto& ranked = r.vulnerability.features[0].ranked;
  std::size_t size_pos = 99, time_pos = 99;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].name == "size") size_pos = i;
    if (ranked[i].name == "execution time") time_pos = i;
  }
  EXPECT_LT(size_pos, time_pos);
  EXPECT_LE(size_pos, 2u);  // size is a top feature

  // Table VI shape: wide rows fail proportionally more than narrow rows.
  const auto& grid = r.vulnerability.grid;
  EXPECT_GT(grid.row_sums[5].proportion() + grid.row_sums[7].proportion(),
            2.0 * grid.row_sums[0].proportion());
}

TEST(Observations, Obs11_ApplicationErrorsStrikeEarly) {
  const auto& r = fx().r;
  if (r.application_interruptions < 20) GTEST_SKIP();
  EXPECT_GT(r.vulnerability.app_interruptions_within_hour, 0.50);  // paper: 74.5%
  // The paper found zero; tolerate a small classifier-noise share (system
  // codes mislabeled application whose victims were wide long jobs).
  EXPECT_LE(static_cast<double>(r.vulnerability.app_interruptions_wide_long),
            0.05 * static_cast<double>(r.application_interruptions));
}

TEST(Observations, Obs12_SuspiciousUsersCoverMuchButFailLittle) {
  const auto& [data, r] = fx();
  const auto& f = r.vulnerability.features[0];
  EXPECT_GT(f.suspicious_user_coverage, 0.3);  // paper: 53.25% for 16 users
  // Even the most suspicious users fail on a small share of their jobs.
  std::map<int, std::size_t> jobs_per_user, fails_per_user;
  for (std::size_t j = 0; j < data.jobs.size(); ++j) {
    jobs_per_user[data.jobs[j].user_id] += 1;
    if (r.matches.group_by_job[j]) fails_per_user[data.jobs[j].user_id] += 1;
  }
  for (int u : f.suspicious_users) {
    if (jobs_per_user[u] < 50) continue;
    const double frac = static_cast<double>(fails_per_user[u]) /
                        static_cast<double>(jobs_per_user[u]);
    EXPECT_LT(frac, 0.35) << "user " << u;
  }
}

TEST(Observations, FilterCompressionNearPaperRatio) {
  const auto& r = fx().r;
  EXPECT_GT(r.filtered.total_compression(), 0.93);  // paper: 98.35%
}

}  // namespace
}  // namespace coral::core
