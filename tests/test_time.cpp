#include "coral/common/time.hpp"

#include <gtest/gtest.h>

#include "coral/common/error.hpp"

namespace coral {
namespace {

TEST(Time, EpochIsZero) {
  EXPECT_EQ(TimePoint::from_calendar(1970, 1, 1).usec(), 0);
}

TEST(Time, KnownCalendarPoints) {
  // 2009-01-05 00:00:00 UTC == 1231113600 (paper log start date).
  EXPECT_EQ(TimePoint::from_calendar(2009, 1, 5).usec(), 1231113600LL * kUsecPerSec);
  // 2009-08-31 00:00:00 UTC == 1251676800 (paper log end date).
  EXPECT_EQ(TimePoint::from_calendar(2009, 8, 31).usec(), 1251676800LL * kUsecPerSec);
}

TEST(Time, ParseRasRoundTrip) {
  const std::string s = "2008-04-14-15.08.12.285324";
  const TimePoint t = TimePoint::parse_ras(s);
  EXPECT_EQ(t.to_ras_string(), s);
}

TEST(Time, ParseRasWithoutFraction) {
  const TimePoint t = TimePoint::parse_ras("2009-01-05-00.00.00");
  EXPECT_EQ(t, TimePoint::from_calendar(2009, 1, 5));
}

TEST(Time, ParseRasShortFraction) {
  const TimePoint t = TimePoint::parse_ras("2009-01-05-00.00.00.5");
  EXPECT_EQ(t.usec() % kUsecPerSec, 500000);
}

TEST(Time, ParseRasRejectsMalformed) {
  EXPECT_THROW(TimePoint::parse_ras(""), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-01-05"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009/01/05-00.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-13-05-00.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-01-05-25.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-01-05-00.00.00.1234567"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-01-0a-00.00.00"), ParseError);
}

TEST(Time, UnixSecondsRoundTrip) {
  const TimePoint t = TimePoint::from_unix_seconds(1209618043.1);
  EXPECT_NEAR(t.unix_seconds(), 1209618043.1, 1e-6);
}

TEST(Time, DaysSince) {
  const TimePoint origin = TimePoint::from_calendar(2009, 1, 5);
  EXPECT_EQ((origin + 1).days_since(origin), 0);
  EXPECT_EQ((origin + kUsecPerDay).days_since(origin), 1);
  EXPECT_EQ((origin + 236 * kUsecPerDay + kUsecPerHour).days_since(origin), 236);
  EXPECT_EQ((origin - 1).days_since(origin), -1);
}

TEST(Time, CalendarDecomposition) {
  const TimePoint t = TimePoint::from_calendar(2009, 8, 31, 23, 59, 59, 999999);
  const CalendarTime c = to_calendar(t);
  EXPECT_EQ(c.year, 2009);
  EXPECT_EQ(c.month, 8);
  EXPECT_EQ(c.day, 31);
  EXPECT_EQ(c.hour, 23);
  EXPECT_EQ(c.minute, 59);
  EXPECT_EQ(c.second, 59);
  EXPECT_EQ(c.usec, 999999);
}

TEST(Time, LeapYearHandling) {
  const TimePoint t = TimePoint::from_calendar(2008, 2, 29);
  const CalendarTime c = to_calendar(t);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 29);
  EXPECT_EQ(to_calendar(t + kUsecPerDay).month, 3);
}

TEST(Time, ImpossibleCalendarDatesRejected) {
  // These used to normalize silently (2026-02-31 wrapped to 2026-03-03);
  // the civil round-trip check now rejects them at the parser.
  EXPECT_THROW(TimePoint::parse_ras("2026-02-31-00.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-04-31-12.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-06-31-12.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-09-31-12.00.00"), ParseError);
  EXPECT_THROW(TimePoint::parse_ras("2009-11-31-12.00.00"), ParseError);
  EXPECT_THROW(TimePoint::from_calendar(2026, 2, 31), InvalidArgument);
  EXPECT_THROW(TimePoint::from_calendar(2009, 4, 31), InvalidArgument);
  // Month lengths that do exist parse fine.
  EXPECT_NO_THROW(TimePoint::parse_ras("2009-01-31-23.59.59"));
  EXPECT_NO_THROW(TimePoint::parse_ras("2009-04-30-23.59.59"));
}

TEST(Time, LeapYearDatesValidated) {
  // Divisible-by-4 leap year.
  EXPECT_NO_THROW(TimePoint::parse_ras("2008-02-29-00.00.00"));
  // Non-leap year.
  EXPECT_THROW(TimePoint::parse_ras("2009-02-29-00.00.00"), ParseError);
  EXPECT_THROW(TimePoint::from_calendar(2009, 2, 29), InvalidArgument);
  // Century rules: 2000 is a leap year, 1900 is not.
  EXPECT_NO_THROW(TimePoint::parse_ras("2000-02-29-00.00.00"));
  EXPECT_THROW(TimePoint::parse_ras("1900-02-29-00.00.00"), ParseError);
  // February 30 never exists.
  EXPECT_THROW(TimePoint::parse_ras("2008-02-30-00.00.00"), ParseError);
}

TEST(Time, DisplayString) {
  EXPECT_EQ(TimePoint::from_calendar(2009, 1, 5, 1, 2, 3).to_display_string(),
            "2009-01-05 01:02:03");
}

class TimeRoundTripP : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimeRoundTripP, RasStringRoundTripsExactly) {
  const TimePoint t(GetParam());
  EXPECT_EQ(TimePoint::parse_ras(t.to_ras_string()), t);
}

INSTANTIATE_TEST_SUITE_P(
    SampledUsecs, TimeRoundTripP,
    ::testing::Values(0LL, 1LL, 999999LL, 1231113600000000LL, 1251676799999999LL,
                      1234567890123456LL, 4102444800000000LL /* 2100-01-01 */));

}  // namespace
}  // namespace coral
