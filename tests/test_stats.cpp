#include <gtest/gtest.h>

#include <cmath>

#include "coral/common/error.hpp"
#include "coral/common/rng.hpp"
#include "coral/stats/correlation.hpp"
#include "coral/stats/descriptive.hpp"
#include "coral/stats/distributions.hpp"
#include "coral/stats/ecdf.hpp"
#include "coral/stats/histogram.hpp"
#include "coral/stats/infogain.hpp"
#include "coral/stats/special.hpp"

namespace coral::stats {
namespace {

TEST(Special, GammaPQComplement) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // Chi2(1) CDF at 3.841 ~ 0.95 (the classic 5% critical value).
  EXPECT_NEAR(chi2_sf(3.841, 1.0), 0.05, 1e-3);
  // Chi2(2) survival is exp(-x/2).
  EXPECT_NEAR(chi2_sf(4.0, 2.0), std::exp(-2.0), 1e-12);
}

TEST(Special, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(chi2_sf(-1.0, 3.0), 1.0);
  EXPECT_THROW(gamma_p(-1.0, 1.0), InvalidArgument);
}

TEST(Descriptive, MeanVarianceQuantiles) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_THROW(mean(std::vector<double>{}), InvalidArgument);
}

TEST(Descriptive, Summary) {
  const std::vector<double> xs = {4, 1, 3, 2};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(Exponential, PdfCdfQuantileConsistency) {
  const Exponential e(100.0);
  EXPECT_NEAR(e.cdf(e.quantile(0.7)), 0.7, 1e-12);
  EXPECT_NEAR(e.pdf(0.0), 1.0 / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_THROW(Exponential(0.0), InvalidArgument);
}

TEST(Exponential, MleRecoversMean) {
  Rng rng(42);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.exponential(250.0);
  const Exponential fit = Exponential::fit_mle(xs);
  EXPECT_NEAR(fit.mean(), 250.0, 8.0);
}

TEST(Weibull, AnalyticMomentsMatchFormulas) {
  const Weibull w(2.0, 100.0);
  // Gamma(1.5) = sqrt(pi)/2.
  EXPECT_NEAR(w.mean(), 100.0 * std::sqrt(M_PI) / 2.0, 1e-9);
  const Weibull w1(1.0, 100.0);
  EXPECT_NEAR(w1.mean(), 100.0, 1e-9);
  EXPECT_NEAR(w1.variance(), 10000.0, 1e-6);
}

TEST(Weibull, CdfQuantileRoundTrip) {
  const Weibull w(0.5, 8000.0);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-10);
  }
}

TEST(Weibull, DecreasingHazardWhenShapeBelowOne) {
  const Weibull w(0.4, 1000.0);
  EXPECT_GT(w.hazard(10.0), w.hazard(100.0));
  EXPECT_GT(w.hazard(100.0), w.hazard(1000.0));
  const Weibull w2(2.0, 1000.0);
  EXPECT_LT(w2.hazard(10.0), w2.hazard(100.0));
}

struct WeibullCase {
  double shape;
  double scale;
};

class WeibullMleP : public ::testing::TestWithParam<WeibullCase> {};

TEST_P(WeibullMleP, RecoversParameters) {
  const auto [shape, scale] = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 7919 + scale));
  std::vector<double> xs(30000);
  for (double& x : xs) x = rng.weibull(shape, scale);
  const Weibull fit = Weibull::fit_mle(xs);
  EXPECT_NEAR(fit.shape() / shape, 1.0, 0.05) << "shape " << shape;
  EXPECT_NEAR(fit.scale() / scale, 1.0, 0.07) << "scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, WeibullMleP,
    ::testing::Values(WeibullCase{0.35, 23075.0},  // Table V system failures
                      WeibullCase{0.39, 8116.7},   // Table IV before filtering
                      WeibullCase{0.57, 68465.9},  // Table IV after filtering
                      WeibullCase{0.30, 23801.7},  // Table V application errors
                      WeibullCase{1.0, 100.0}, WeibullCase{2.5, 10.0}));

TEST(Lrt, PrefersWeibullForWeibullData) {
  Rng rng(11);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.weibull(0.4, 8000.0);
  const LrtResult r = likelihood_ratio_test(xs);
  EXPECT_TRUE(r.weibull_preferred);
  EXPECT_GT(r.ll_weibull, r.ll_exponential);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Lrt, DoesNotPreferWeibullForExponentialData) {
  Rng rng(12);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.exponential(500.0);
  const LrtResult r = likelihood_ratio_test(xs);
  // Under the null the statistic is chi2(1); p should not be tiny.
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(Ks, SmallerForTrueModel) {
  Rng rng(13);
  std::vector<double> xs(4000);
  for (double& x : xs) x = rng.weibull(0.5, 1000.0);
  std::sort(xs.begin(), xs.end());
  const Weibull w = Weibull::fit_mle(xs);
  const Exponential e = Exponential::fit_mle(xs);
  EXPECT_LT(ks_distance(xs, w), ks_distance(xs, e));
}

TEST(Ecdf, BasicProperties) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 2.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(99.0), 1.0);
  EXPECT_EQ(cdf.size(), 4u);
}

TEST(Ecdf, PointsAreMonotone) {
  Rng rng(14);
  std::vector<double> xs(1000);
  for (double& x : xs) x = rng.uniform(0, 100);
  const EmpiricalCdf cdf(xs);
  const auto pts = cdf.points(32);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Pearson, PerfectAndAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  const std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
}

TEST(Pearson, EventTimeCorrelation) {
  // Two event streams firing in the same windows correlate strongly.
  std::vector<TimePoint> a, b, c;
  const TimePoint t0(0);
  for (int i = 0; i < 10; ++i) {
    a.push_back(t0 + i * 2 * kUsecPerHour);
    b.push_back(t0 + i * 2 * kUsecPerHour + kUsecPerMin);
    c.push_back(t0 + (i * 2 + 1) * kUsecPerHour);
  }
  const TimePoint end = t0 + 20 * kUsecPerHour;
  const double r_ab = event_time_correlation(a, b, t0, end, kUsecPerHour);
  const double r_ac = event_time_correlation(a, c, t0, end, kUsecPerHour);
  EXPECT_GT(r_ab, 0.9);
  EXPECT_LT(r_ac, 0.0);
}

TEST(InfoGain, PerfectPredictorGetsFullGain) {
  FeatureColumn f{"perfect", {0, 0, 1, 1}};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  const GainScore s = gain_ratio(f, labels);
  EXPECT_NEAR(s.info_gain, 1.0, 1e-12);  // H(class)=1 bit, fully explained
  EXPECT_NEAR(s.gain_ratio, 1.0, 1e-12);
}

TEST(InfoGain, UselessPredictorGetsZero) {
  FeatureColumn f{"useless", {0, 1, 0, 1}};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  const GainScore s = gain_ratio(f, labels);
  EXPECT_NEAR(s.info_gain, 0.0, 1e-12);
}

TEST(InfoGain, RankOrdersByGainRatio) {
  const std::vector<FeatureColumn> features = {
      {"useless", {0, 1, 0, 1}},
      {"perfect", {0, 0, 1, 1}},
      {"partial", {0, 0, 0, 1}},
  };
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  const auto ranked = rank_features(features, labels);
  EXPECT_EQ(ranked[0].name, "perfect");
  EXPECT_EQ(ranked.back().name, "useless");
}

TEST(Entropy, KnownValues) {
  const std::size_t even[] = {5, 5};
  EXPECT_NEAR(entropy(even), 1.0, 1e-12);
  const std::size_t pure[] = {10, 0};
  EXPECT_NEAR(entropy(pure), 0.0, 1e-12);
  const std::size_t empty[] = {0, 0};
  EXPECT_NEAR(entropy(empty), 0.0, 1e-12);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(29.0);
  h.add(30.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, AsciiRendersEveryBin) {
  Histogram h({0.0, 1.0, 2.0});
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

}  // namespace
}  // namespace coral::stats
