// Explicit coverage of the rare branch arms in the matching kernel
// (core/matching.cpp) and the filter pipeline driver (filter/pipeline.cpp):
// rack-location footprint expansion, whole-machine footprint saturation,
// inverted-interval job records, first-group-wins tie-breaking, the
// causality-disabled path, and the obs-attached spans/counters. These arms
// are easy to miss from scenario-level suites because calibrated logs rarely
// produce rack-level fatal locations or corrupt job intervals.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coral/bgp/topology.hpp"
#include "coral/common/error.hpp"
#include "coral/core/matching.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/catalog.hpp"

namespace coral::core {
namespace {

const TimePoint kBase = TimePoint::from_calendar(2009, 3, 1);

ras::RasEvent fatal_at(double t_sec, bgp::Location loc) {
  ras::RasEvent ev;
  ev.errcode = *ras::Catalog::instance().find(ras::codes::kRasStormFatal);
  ev.severity = ras::Severity::Fatal;
  ev.event_time = kBase + static_cast<Usec>(t_sec * kUsecPerSec);
  ev.location = loc;
  return ev;
}

/// A hand-built pipeline result: every event is a member of one group, so a
/// test controls the exact member sequence the footprint loop walks.
filter::FilterPipelineResult one_group(std::vector<ras::RasEvent> events) {
  filter::FilterPipelineResult r;
  filter::EventGroup g;
  for (std::size_t i = 0; i < events.size(); ++i) g.members.push_back(i);
  r.fatal_events = std::move(events);
  r.groups.push_back(std::move(g));
  return r;
}

joblog::JobRecord job_on(std::int64_t id, double start_sec, double end_sec,
                         bgp::MidplaneId first, int midplanes = 1) {
  joblog::JobRecord j;
  j.job_id = id;
  j.start_time = kBase + static_cast<Usec>(start_sec * kUsecPerSec);
  j.end_time = kBase + static_cast<Usec>(end_sec * kUsecPerSec);
  j.partition = bgp::Partition(first, midplanes);
  return j;
}

joblog::JobLog make_jobs(std::vector<joblog::JobRecord> records) {
  joblog::JobLog jobs;
  const joblog::ExecId exec = jobs.intern_exec("/bin/app");
  const joblog::UserId user = jobs.intern_user("u0");
  const joblog::ProjectId project = jobs.intern_project("p0");
  for (joblog::JobRecord& j : records) {
    j.exec_id = exec;
    j.user_id = user;
    j.project_id = project;
    jobs.append(j);
  }
  jobs.finalize();
  return jobs;
}

std::vector<std::int64_t> matched_ids(const MatchResult& result,
                                      const joblog::JobLog& jobs) {
  std::vector<std::int64_t> ids;
  for (const Interruption& i : result.interruptions) ids.push_back(jobs[i.job].job_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(MatchBranches, RackLocationExpandsToEveryMidplaneOfTheRack) {
  // A rack-level fatal location (R03, midplanes 6 and 7) must match jobs on
  // either midplane of that rack and nothing in the neighbouring rack.
  const auto filtered = one_group({fatal_at(1000, bgp::Location::rack(3))});
  const auto jobs = make_jobs({
      job_on(1, 0, 1010, bgp::MidplaneId(6)),
      job_on(2, 0, 1020, bgp::MidplaneId(7)),
      job_on(3, 0, 1030, bgp::MidplaneId(8)),  // rack 4: outside the footprint
  });
  const MatchResult result = match_interruptions(filtered, jobs);
  EXPECT_EQ(matched_ids(result, jobs), (std::vector<std::int64_t>{1, 2}));
}

TEST(MatchBranches, FootprintSaturatesAtWholeMachineAndStopsTheMemberScan) {
  // Rack-level records over every rack reach the whole machine; the member
  // after saturation must be skipped by the early break, not re-touched.
  std::vector<ras::RasEvent> events;
  for (int r = 0; r < bgp::Topology::kRacks; ++r)
    events.push_back(fatal_at(1000, bgp::Location::rack(r)));
  events.push_back(fatal_at(1000, bgp::Location::midplane(0)));  // post-saturation
  const auto filtered = one_group(std::move(events));
  const auto jobs = make_jobs({
      job_on(1, 0, 1010, bgp::MidplaneId(0)),
      job_on(2, 0, 1020, bgp::MidplaneId(39)),
      job_on(3, 0, 1030, bgp::MidplaneId(bgp::Topology::kMidplanes - 1)),
  });
  const MatchResult result = match_interruptions(filtered, jobs);
  EXPECT_EQ(matched_ids(result, jobs), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(MatchBranches, DuplicateMemberLocationsTouchEachMidplaneOnce) {
  // Three members on the same midplane: the touched[] early return keeps the
  // footprint at one bucket and the job is matched exactly once.
  const auto filtered = one_group({fatal_at(1000, bgp::Location::midplane(5)),
                                   fatal_at(1001, bgp::Location::midplane(5)),
                                   fatal_at(1002, bgp::Location::midplane(5))});
  const auto jobs = make_jobs({job_on(1, 0, 1010, bgp::MidplaneId(5))});
  const MatchResult result = match_interruptions(filtered, jobs);
  ASSERT_EQ(result.interruptions.size(), 1u);
  EXPECT_EQ(result.jobs_by_group[0], std::vector<std::size_t>{0});
}

TEST(MatchBranches, InvertedIntervalsAreRejectedAtAppendTime) {
  // The matcher's end-slice walk takes every job ending inside [lo, hi]
  // without re-checking start times. That is sound only because the JobLog
  // refuses inverted intervals at the door — pin the invariant the hot loop
  // leans on.
  EXPECT_THROW(make_jobs({job_on(2, 5000, 1020, bgp::MidplaneId(2))}),
               coral::InvalidArgument);
  // Zero-duration jobs are legal and match like any other in-window end.
  const auto filtered = one_group({fatal_at(1000, bgp::Location::midplane(2))});
  const auto jobs = make_jobs({job_on(1, 1010, 1010, bgp::MidplaneId(2))});
  const MatchResult result = match_interruptions(filtered, jobs);
  EXPECT_EQ(matched_ids(result, jobs), std::vector<std::int64_t>{1});
}

TEST(MatchBranches, FirstGroupClaimsAJobMatchedByTwoGroups) {
  // Two singleton groups both cover the job's partition within the window;
  // phase 2 assigns the job to the earlier group only, and the candidate
  // lists still record both.
  filter::FilterPipelineResult filtered;
  filtered.fatal_events = {fatal_at(1000, bgp::Location::midplane(0)),
                           fatal_at(1005, bgp::Location::midplane(0))};
  filtered.groups = {{0, {0}}, {1, {1}}};
  const auto jobs = make_jobs({job_on(7, 0, 1010, bgp::MidplaneId(0))});
  const MatchResult result = match_interruptions(filtered, jobs);
  EXPECT_EQ(result.jobs_by_group[0], std::vector<std::size_t>{0});
  EXPECT_EQ(result.jobs_by_group[1], std::vector<std::size_t>{0});
  ASSERT_EQ(result.interruptions.size(), 1u);
  EXPECT_EQ(result.interruptions[0].group, 0u);
  ASSERT_TRUE(result.group_by_job[0].has_value());
  EXPECT_EQ(*result.group_by_job[0], 0u);
}

TEST(MatchBranches, ObsAttachedEmitsPhaseSpansAndScanCounters) {
  const auto filtered = one_group({fatal_at(1000, bgp::Location::midplane(1))});
  const auto jobs = make_jobs({job_on(1, 0, 1010, bgp::MidplaneId(1)),
                               job_on(2, 0, 1500, bgp::MidplaneId(1))});
  obs::Collector collector;
  MatchConfig config;
  config.obs = &collector;
  const MatchResult result = match_interruptions(filtered, jobs, config);
  ASSERT_EQ(result.interruptions.size(), 1u);

  const obs::Snapshot snap = collector.snapshot();
  auto has_span = [&](const char* name) {
    return std::any_of(snap.spans.begin(), snap.spans.end(),
                       [&](const obs::SpanRecord& s) { return s.name == name; });
  };
  EXPECT_TRUE(has_span("match.phase1"));
  EXPECT_TRUE(has_span("match.phase2"));
  // One in-window candidate scanned per job ending inside [lo, hi]; job 2
  // ends outside, so exactly one scan and one match.
  EXPECT_EQ(snap.counter_value("match.candidates_scanned"), 1u);
  EXPECT_EQ(snap.counter_value("match.jobs_matched"), 1u);
}

TEST(FilterPipelineBranches, CausalityDisabledSkipsTheStage) {
  ras::RasLog log({fatal_at(0, bgp::Location::midplane(0)),
                   fatal_at(4000, bgp::Location::midplane(1))});
  filter::FilterPipelineConfig config;
  config.enable_causality = false;
  const filter::FilterPipelineResult result = filter::run_filter_pipeline(log, config);
  ASSERT_EQ(result.stages.size(), 3u);  // raw, temporal, spatial — no causality
  EXPECT_EQ(result.stages[0].name, "raw FATAL records");
  EXPECT_EQ(result.stages[2].name, "spatial");
  EXPECT_TRUE(result.causal_pairs.empty());
}

TEST(FilterPipelineBranches, ObsAttachedEmitsStageSpansAndCompressionCounters) {
  ras::RasLog log({fatal_at(0, bgp::Location::midplane(0)),
                   fatal_at(10, bgp::Location::midplane(0)),
                   fatal_at(4000, bgp::Location::midplane(1))});
  obs::Collector collector;
  filter::FilterPipelineConfig config;
  config.obs = &collector;
  const filter::FilterPipelineResult result = filter::run_filter_pipeline(log, config);
  ASSERT_EQ(result.stages.size(), 4u);

  const obs::Snapshot snap = collector.snapshot();
  std::vector<std::string> names;
  for (const obs::SpanRecord& s : snap.spans) names.push_back(s.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "filter.temporal"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "filter.spatial"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "filter.causality"), names.end());
  EXPECT_EQ(snap.counter_value("filter.groups_out"), result.groups.size());
  // The causal-pairs counter exists even when no pair clears min-support.
  EXPECT_EQ(snap.counter_value("filter.causal_pairs"), result.causal_pairs.size());
}

}  // namespace
}  // namespace coral::core
