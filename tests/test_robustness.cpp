// Hardening tests: degenerate scenarios, fuzzed parsers, extreme configs.
#include <gtest/gtest.h>

#include "coral/common/error.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

TEST(Robustness, ZeroFaultScenarioProducesCleanLogs) {
  synth::ScenarioConfig config = synth::small_scenario(141, 7);
  config.faults.interrupting_rate_per_day = 0;
  config.faults.persistent_rate_per_day = 0;
  config.faults.idle_rate_per_day = 0;
  config.faults.benign_rate_per_day = 0;
  config.workload.buggy_app_prob = 0;
  const synth::SynthResult data = synth::generate(config);

  EXPECT_TRUE(data.truth.faults.empty());
  EXPECT_TRUE(data.truth.interruptions.empty());
  EXPECT_EQ(data.ras.summary().fatal_records, 0u);
  EXPECT_GT(data.jobs.size(), 100u);  // the machine still runs jobs
  for (const auto& job : data.jobs) EXPECT_EQ(job.exit_code, 0);

  // The analysis degrades gracefully on a clean log.
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);
  EXPECT_TRUE(r.filtered.groups.empty());
  EXPECT_EQ(r.interruption_count(), 0u);
  EXPECT_TRUE(r.interruptions_per_day.size() <= 8u);
}

TEST(Robustness, ExtremeFaultRateStillTerminates) {
  synth::ScenarioConfig config = synth::small_scenario(142, 3);
  config.faults.interrupting_rate_per_day = 40;
  config.faults.persistent_rate_per_day = 5;
  config.faults.idle_rate_per_day = 40;
  config.faults.benign_rate_per_day = 20;
  const synth::SynthResult data = synth::generate(config);
  EXPECT_GT(data.truth.faults.size(), 100u);
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);
  EXPECT_GT(r.filtered.groups.size(), 20u);
  // Bookkeeping still consistent under stress.
  EXPECT_EQ(r.system_interruptions + r.application_interruptions, r.interruption_count());
}

TEST(Robustness, OneDayScenario) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(143, 1));
  EXPECT_GT(data.jobs.size(), 10u);
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);
  EXPECT_LE(r.interruptions_per_day.size(), 2u);
}

TEST(Robustness, AllBuggyWorkload) {
  synth::ScenarioConfig config = synth::small_scenario(144, 5);
  config.workload.buggy_app_prob = 1.0;
  config.workload.bug_difficulty_min = 0.9;
  config.workload.bug_difficulty_max = 0.95;
  const synth::SynthResult data = synth::generate(config);
  // Most interruptions are application errors now.
  std::size_t app = 0;
  for (const auto& in : data.truth.interruptions) {
    app += ras::Catalog::instance().info(in.code).nature ==
                   ras::FaultNature::ApplicationError
               ? 1
               : 0;
  }
  EXPECT_GT(app * 2, data.truth.interruptions.size());
  EXPECT_GT(app, 50u);
}

TEST(Robustness, LocationParserFuzz) {
  // Random strings must either parse to something that round-trips, or
  // throw ParseError — never crash or mangle.
  Rng rng(145);
  const std::string alphabet = "RML0123456789-NJSIX";
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const auto len = rng.uniform_index(12);
    for (std::size_t c = 0; c < len; ++c) {
      s += alphabet[rng.uniform_index(alphabet.size())];
    }
    try {
      const bgp::Location loc = bgp::Location::parse(s);
      const bgp::Location again = bgp::Location::parse(loc.to_string());
      EXPECT_EQ(loc, again) << s;
    } catch (const ParseError&) {
      // fine
    }
  }
}

TEST(Robustness, PartitionParserFuzz) {
  Rng rng(146);
  const std::string alphabet = "RM0123456789-";
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const auto len = rng.uniform_index(10);
    for (std::size_t c = 0; c < len; ++c) {
      s += alphabet[rng.uniform_index(alphabet.size())];
    }
    try {
      const bgp::Partition p = bgp::Partition::parse(s);
      EXPECT_EQ(bgp::Partition::parse(p.name()), p) << s;
    } catch (const ParseError&) {
      // fine
    }
  }
}

TEST(Robustness, RasCsvFuzzedRowsRejected) {
  // Mutate a valid CSV by truncating rows; the parser must throw, not crash.
  const synth::SynthResult data = synth::generate(synth::small_scenario(147, 2));
  std::ostringstream out;
  data.ras.write_csv(out);
  const std::string csv = out.str();
  Rng rng(148);
  for (int i = 0; i < 20; ++i) {
    std::string cut = csv.substr(0, csv.size() / 2 + rng.uniform_index(csv.size() / 4));
    std::istringstream in(cut);
    try {
      const auto log = ras::RasLog::read_csv(in);
      EXPECT_LE(log.size(), data.ras.size());  // prefix parse is acceptable
    } catch (const ParseError&) {
      // fine
    }
  }
}

TEST(Robustness, MatchingWindowZero) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(149, 7));
  core::CoAnalysisConfig config;
  config.matching.window = 0;
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs, config);
  // Zero window still matches the exact-time kills the generator produces.
  EXPECT_GE(r.interruption_count(), 0u);
}

}  // namespace
}  // namespace coral
