#include <gtest/gtest.h>

#include <map>
#include <set>

#include "coral/synth/intrepid.hpp"

namespace coral::synth {
namespace {

using ras::Catalog;
using ras::FaultNature;

const SynthResult& small_result() {
  static const SynthResult result = generate(small_scenario(7));
  return result;
}

TEST(Workload, AppTableHasRequestedShape) {
  WorkloadConfig config;
  config.distinct_apps = 500;
  config.target_submissions = 3000;
  Rng rng(1);
  const Workload w =
      generate_workload(config, TimePoint::from_calendar(2009, 1, 5), 30, rng);
  EXPECT_EQ(w.apps.size(), 500u);
  for (const App& app : w.apps) {
    EXPECT_GT(app.base_runtime, 0);
    EXPECT_TRUE(std::count(kJobSizes.begin(), kJobSizes.end(), app.size_midplanes));
    if (app.buggy) {
      EXPECT_LT(app.size_midplanes, config.buggy_max_size);
      EXPECT_GE(app.bug_difficulty, config.bug_difficulty_min);
      EXPECT_LE(app.bug_difficulty, config.bug_difficulty_max);
      EXPECT_EQ(Catalog::instance().info(app.bug_code).nature,
                FaultNature::ApplicationError);
    }
  }
}

TEST(Workload, ScheduleSortedAndWithinHorizon) {
  WorkloadConfig config;
  config.distinct_apps = 400;
  config.target_submissions = 2500;
  Rng rng(2);
  const TimePoint start = TimePoint::from_calendar(2009, 1, 5);
  const Workload w = generate_workload(config, start, 30, rng);
  const TimePoint end = start + 30 * kUsecPerDay;
  ASSERT_FALSE(w.schedule.empty());
  for (std::size_t i = 0; i < w.schedule.size(); ++i) {
    EXPECT_GE(w.schedule[i].arrival, start);
    EXPECT_LT(w.schedule[i].arrival, end);
    if (i) {
      EXPECT_GE(w.schedule[i].arrival, w.schedule[i - 1].arrival);
    }
  }
}

TEST(Workload, MultiSubmitFractionRoughlyMatches) {
  WorkloadConfig config;
  config.distinct_apps = 2000;
  config.target_submissions = 14000;
  Rng rng(3);
  const Workload w =
      generate_workload(config, TimePoint::from_calendar(2009, 1, 5), 237, rng);
  std::map<std::int32_t, int> counts;
  for (const Submission& s : w.schedule) counts[s.app] += 1;
  int multi = 0;
  for (const auto& [app, n] : counts) multi += n > 1 ? 1 : 0;
  const double frac = static_cast<double>(multi) / static_cast<double>(counts.size());
  EXPECT_NEAR(frac, config.multi_submit_prob, 0.08);
}

TEST(Workload, BugManifestMostlyUnderOneHour) {
  WorkloadConfig config;
  Rng rng(4);
  int early = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (sample_bug_manifest(config, rng) < kUsecPerHour) ++early;
  }
  EXPECT_GT(static_cast<double>(early) / n, 0.80);
}

TEST(Simulation, DeterministicAcrossRuns) {
  const SynthResult a = generate(small_scenario(99, 7));
  const SynthResult b = generate(small_scenario(99, 7));
  ASSERT_EQ(a.ras.size(), b.ras.size());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.ras.size(); i += 97) {
    EXPECT_EQ(a.ras[i].event_time, b.ras[i].event_time);
    EXPECT_EQ(a.ras[i].errcode, b.ras[i].errcode);
    EXPECT_EQ(a.ras[i].location, b.ras[i].location);
  }
  for (std::size_t i = 0; i < a.jobs.size(); i += 31) {
    EXPECT_EQ(a.jobs[i].job_id, b.jobs[i].job_id);
    EXPECT_EQ(a.jobs[i].start_time, b.jobs[i].start_time);
    EXPECT_EQ(a.jobs[i].partition, b.jobs[i].partition);
  }
  EXPECT_EQ(a.truth.faults.size(), b.truth.faults.size());
  EXPECT_EQ(a.truth.interruptions.size(), b.truth.interruptions.size());
}

TEST(Simulation, DifferentSeedsDiffer) {
  const SynthResult a = generate(small_scenario(1, 7));
  const SynthResult b = generate(small_scenario(2, 7));
  EXPECT_NE(a.ras.size(), b.ras.size());
}

TEST(Simulation, NoOverlappingJobsOnAnyMidplane) {
  const SynthResult& r = small_result();
  // Sweep per midplane: intervals must not overlap.
  std::array<std::vector<std::pair<TimePoint, TimePoint>>, bgp::Topology::kMidplanes>
      intervals;
  for (const auto& job : r.jobs) {
    for (bgp::MidplaneId m : job.partition.midplanes()) {
      intervals[static_cast<std::size_t>(m)].push_back({job.start_time, job.end_time});
    }
  }
  for (auto& v : intervals) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_LE(v[i - 1].second, v[i].first) << "overlapping allocation";
    }
  }
}

TEST(Simulation, JobTimesAreOrdered) {
  const SynthResult& r = small_result();
  const ScenarioConfig config = small_scenario(7);
  for (const auto& job : r.jobs) {
    EXPECT_LE(job.queue_time, job.start_time);
    EXPECT_LT(job.start_time, job.end_time);
    EXPECT_GE(job.queue_time, config.start - kUsecPerDay);
    EXPECT_LE(job.end_time, config.end());
  }
}

TEST(Simulation, RasLogSortedWithSequentialRecids) {
  const SynthResult& r = small_result();
  for (std::size_t i = 0; i < r.ras.size(); ++i) {
    EXPECT_EQ(r.ras[i].recid, static_cast<std::int64_t>(i + 1));
    if (i) {
      EXPECT_LE(r.ras[i - 1].event_time, r.ras[i].event_time);
    }
  }
}

TEST(Simulation, RecordTagsAlignWithLog) {
  const SynthResult& r = small_result();
  ASSERT_EQ(r.truth.record_tags.size(), r.ras.size());
  for (std::size_t i = 0; i < r.ras.size(); ++i) {
    const std::int32_t tag = r.truth.record_tags[i];
    if (tag < 0) continue;  // noise
    ASSERT_LT(static_cast<std::size_t>(tag), r.truth.faults.size());
    const FaultInstanceTruth& fault = r.truth.faults[static_cast<std::size_t>(tag)];
    // Tagged records carry either the fault's code or its cascade partner,
    // and fire within the storm horizon of the manifestation.
    const Usec gap = r.ras[i].event_time - fault.time;
    EXPECT_GE(gap, 0);
    EXPECT_LT(gap, 30 * kUsecPerMin);
  }
}

TEST(Simulation, TaggedRecordsAreFatalNoiseIsNot) {
  const SynthResult& r = small_result();
  for (std::size_t i = 0; i < r.ras.size(); ++i) {
    if (r.truth.record_tags[i] >= 0) {
      EXPECT_EQ(r.ras[i].severity, ras::Severity::Fatal);
    } else {
      EXPECT_NE(r.ras[i].severity, ras::Severity::Fatal);
    }
  }
}

TEST(Simulation, InterruptionsReferenceRealJobsAndFaults) {
  const SynthResult& r = small_result();
  std::set<std::int64_t> job_ids;
  for (const auto& job : r.jobs) job_ids.insert(job.job_id);
  for (const auto& in : r.truth.interruptions) {
    EXPECT_TRUE(job_ids.count(in.job_id));
    ASSERT_GE(in.fault_instance, 0);
    ASSERT_LT(static_cast<std::size_t>(in.fault_instance), r.truth.faults.size());
  }
}

TEST(Simulation, InterruptedJobsEndAtInterruptionTime) {
  const SynthResult& r = small_result();
  std::map<std::int64_t, const joblog::JobRecord*> by_id;
  for (const auto& job : r.jobs) by_id[job.job_id] = &job;
  for (const auto& in : r.truth.interruptions) {
    const auto it = by_id.find(in.job_id);
    ASSERT_NE(it, by_id.end());
    EXPECT_NEAR(static_cast<double>(it->second->end_time - in.time), 0.0,
                static_cast<double>(2 * kUsecPerSec));
  }
}

TEST(Simulation, IdleBiasCodesNeverInterrupt) {
  const SynthResult& r = small_result();
  const Catalog& cat = Catalog::instance();
  for (const auto& in : r.truth.interruptions) {
    EXPECT_FALSE(cat.info(in.code).idle_bias) << cat.info(in.code).name;
    EXPECT_EQ(cat.info(in.code).impact, ras::JobImpact::Interrupting);
  }
}

TEST(Simulation, RedundantFaultsPointToOriginals) {
  const SynthResult& r = small_result();
  for (const auto& f : r.truth.faults) {
    if (f.redundant_of < 0) continue;
    ASSERT_LT(static_cast<std::size_t>(f.redundant_of), r.truth.faults.size());
    const auto& orig = r.truth.faults[static_cast<std::size_t>(f.redundant_of)];
    EXPECT_EQ(orig.code, f.code);
    EXPECT_EQ(orig.location, f.location);
    EXPECT_LT(orig.time, f.time);
    EXPECT_LT(orig.redundant_of, 0);  // originals are not themselves redundant
  }
}

TEST(Simulation, NoiseDisabledMeansOnlyFatalRecords) {
  ScenarioConfig config = small_scenario(13, 7);
  config.noise.enabled = false;
  const SynthResult r = generate(config);
  for (const auto& ev : r.ras) {
    EXPECT_EQ(ev.severity, ras::Severity::Fatal);
  }
}

TEST(Simulation, WideJobsLandInReservedRegion) {
  const SynthResult& r = small_result();
  std::size_t wide = 0, in_region = 0;
  for (const auto& job : r.jobs) {
    if (job.size_midplanes() != 32) continue;
    ++wide;
    if (job.partition.first_midplane() == 32) ++in_region;
  }
  if (wide >= 5) {
    EXPECT_GT(static_cast<double>(in_region) / static_cast<double>(wide), 0.5);
  }
}

TEST(Scenario, IntrepidPresetMatchesPaperConstants) {
  const ScenarioConfig config = intrepid_scenario(42);
  EXPECT_EQ(config.days, 237);
  EXPECT_EQ(config.start, TimePoint::from_calendar(2009, 1, 5));
  EXPECT_EQ(config.workload.distinct_apps, 9664u);
  EXPECT_EQ(config.workload.users, 236);
  EXPECT_EQ(config.workload.projects, 91);
  EXPECT_NEAR(config.workload.multi_submit_prob, 0.574, 1e-9);
}

}  // namespace
}  // namespace coral::synth
