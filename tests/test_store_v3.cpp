// Differential and pushdown suite for the v3 columnar log store: v2 and v3
// must decode to byte-identical logs on every machine / seed / mode, and a
// predicate read must equal a full read plus the same filter while decoding
// strictly fewer blocks.

#include <gtest/gtest.h>

#include <sstream>

#include "coral/common/error.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/joblog/binary_stream.hpp"
#include "coral/machine/model.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/ras/binary_stream.hpp"
#include "coral/ras/catalog.hpp"
#include "coral/synth/intrepid.hpp"
#include "coral/synth/packs.hpp"

namespace coral {
namespace {

void expect_ras_equal(const ras::RasLog& a, const ras::RasLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].recid, b[i].recid) << "at " << i;
    ASSERT_EQ(a[i].event_time, b[i].event_time) << "at " << i;
    ASSERT_EQ(a[i].location, b[i].location) << "at " << i;
    ASSERT_EQ(a[i].errcode, b[i].errcode) << "at " << i;
    ASSERT_EQ(a[i].severity, b[i].severity) << "at " << i;
    ASSERT_EQ(a[i].serial, b[i].serial) << "at " << i;
  }
  // The adopting constructor's fatal gather must match the finalize walk.
  const auto& fa = a.fatal_columns();
  const auto& fb = b.fatal_columns();
  ASSERT_EQ(fa.log_index, fb.log_index);
  ASSERT_EQ(fa.event_time, fb.event_time);
  ASSERT_EQ(fa.errcode, fb.errcode);
  ASSERT_EQ(fa.loc_key, fb.loc_key);
}

void expect_jobs_equal(const joblog::JobLog& a, const joblog::JobLog& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.exec_files(), b.exec_files());
  ASSERT_EQ(a.users(), b.users());
  ASSERT_EQ(a.projects(), b.projects());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].job_id, b[i].job_id) << "at " << i;
    ASSERT_EQ(a[i].exec_id, b[i].exec_id) << "at " << i;
    ASSERT_EQ(a[i].user_id, b[i].user_id) << "at " << i;
    ASSERT_EQ(a[i].project_id, b[i].project_id) << "at " << i;
    ASSERT_EQ(a[i].queue_time, b[i].queue_time) << "at " << i;
    ASSERT_EQ(a[i].start_time, b[i].start_time) << "at " << i;
    ASSERT_EQ(a[i].end_time, b[i].end_time) << "at " << i;
    ASSERT_EQ(a[i].partition, b[i].partition) << "at " << i;
    ASSERT_EQ(a[i].exit_code, b[i].exit_code) << "at " << i;
  }
}

struct Fixture {
  synth::SynthResult data;
  std::string ras_v2, ras_v3, job_v2, job_v3;
};

Fixture make_fixture(const synth::ScenarioConfig& cfg) {
  Fixture f{synth::generate(cfg), {}, {}, {}, {}};
  std::ostringstream r2, r3, j2, j3;
  ras::write_binary(r2, f.data.ras, {.version = 2});
  ras::write_binary(r3, f.data.ras, {});
  joblog::write_binary(j2, f.data.jobs, {.version = 2});
  joblog::write_binary(j3, f.data.jobs, {});
  f.ras_v2 = std::move(r2).str();
  f.ras_v3 = std::move(r3).str();
  f.job_v2 = std::move(j2).str();
  f.job_v3 = std::move(j3).str();
  return f;
}

const Fixture& small_fixture() {
  static const Fixture f = make_fixture(synth::small_scenario(111, 10));
  return f;
}

void check_differential(const Fixture& f, ParseMode mode) {
  const machine::MachineModel& machine = f.data.ras.machine();
  ras::ReadOptions ro;
  ro.mode = mode;
  ro.machine = &machine;
  std::istringstream r2(f.ras_v2), r3(f.ras_v3);
  const ras::RasLog a = ras::read_binary(r2, f.data.ras.catalog(), ro);
  std::istringstream r3b(f.ras_v3);
  const ras::RasLog b = ras::read_binary(r3b, f.data.ras.catalog(), ro);
  expect_ras_equal(ras::read_binary(r3, f.data.ras.catalog(), ro), a);
  expect_ras_equal(b, a);

  joblog::ReadOptions jo;
  jo.mode = mode;
  jo.machine = &machine;
  std::istringstream j2(f.job_v2), j3(f.job_v3);
  expect_jobs_equal(joblog::read_binary(j3, jo), joblog::read_binary(j2, jo));
}

TEST(StoreV3, HeaderDeclaresVersion3) {
  const Fixture& f = small_fixture();
  ASSERT_GE(f.ras_v3.size(), 8u);
  EXPECT_EQ(f.ras_v3.substr(0, 4), "CRAS");
  EXPECT_EQ(f.ras_v3[4], 3);
  EXPECT_EQ(f.job_v3.substr(0, 4), "CJOB");
  EXPECT_EQ(f.job_v3[4], 3);
}

TEST(StoreV3, CompressesBothLogs) {
  const Fixture& f = small_fixture();
  EXPECT_LT(f.ras_v3.size(), f.ras_v2.size());
  EXPECT_LT(f.job_v3.size(), f.job_v2.size());
}

TEST(StoreV3, DifferentialStrict) { check_differential(small_fixture(), ParseMode::Strict); }

TEST(StoreV3, DifferentialLenient) {
  check_differential(small_fixture(), ParseMode::Lenient);
}

TEST(StoreV3, DifferentialAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 97ull}) {
    check_differential(make_fixture(synth::small_scenario(seed, 6)), ParseMode::Strict);
  }
}

TEST(StoreV3, DifferentialOnBgq) {
  synth::ScenarioConfig cfg = synth::base_scenario(machine::bgq_model(), 5, 5);
  check_differential(make_fixture(cfg), ParseMode::Strict);
}

TEST(StoreV3, UncompressedRoundTrips) {
  const Fixture& f = small_fixture();
  std::ostringstream raw;
  ras::write_binary(raw, f.data.ras, {.compress = false});
  std::istringstream in(raw.str());
  expect_ras_equal(ras::read_binary(in, f.data.ras.catalog(), {}), f.data.ras);
  EXPECT_GE(raw.str().size(), f.ras_v3.size());
}

TEST(StoreV3, V3ReadAssignsSequentialRecids) {
  const Fixture& f = small_fixture();
  std::istringstream in(f.ras_v3);
  const ras::RasLog log = ras::read_binary(in, f.data.ras.catalog(), {});
  for (std::size_t i = 0; i < log.size(); ++i) {
    ASSERT_EQ(log[i].recid, static_cast<std::int64_t>(i + 1));
  }
}

TEST(StoreV3, RasPushdownEqualsFullReadPlusFilter) {
  const Fixture& f = small_fixture();
  const synth::ScenarioConfig cfg = synth::small_scenario(111, 10);
  bin::ReadPredicate pred;
  pred.time_begin = cfg.start + 2 * kUsecPerDay;
  pred.time_end = cfg.start + 5 * kUsecPerDay;

  obs::Collector col;
  ras::ReadOptions po;
  po.predicate = pred;
  po.sink = &col;
  std::istringstream in(f.ras_v3);
  const ras::RasLog got = ras::read_binary(in, f.data.ras.catalog(), po);

  std::vector<ras::RasEvent> want;
  for (std::size_t i = 0; i < f.data.ras.size(); ++i) {
    const auto& e = f.data.ras[i];
    if (e.event_time >= *pred.time_begin && e.event_time < *pred.time_end) {
      want.push_back(e);
    }
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].event_time, want[i].event_time);
    ASSERT_EQ(got[i].errcode, want[i].errcode);
    ASSERT_EQ(got[i].location, want[i].location);
    ASSERT_EQ(got[i].serial, want[i].serial);
  }

  const auto snap = col.snapshot();
  const auto total = snap.counter_value("ingest.ras_binary.blocks_total");
  const auto decoded = snap.counter_value("ingest.ras_binary.blocks_decoded");
  const auto skipped = snap.counter_value("ingest.ras_binary.blocks_skipped");
  EXPECT_EQ(total, decoded + skipped);
  EXPECT_GT(skipped, 0u);
  // A 3-day window of a 10-day file must not decode most of the blocks.
  EXPECT_LT(decoded * 2, total);
}

TEST(StoreV3, JobPushdownEqualsFullReadPlusFilter) {
  const Fixture& f = small_fixture();
  const synth::ScenarioConfig cfg = synth::small_scenario(111, 10);
  bin::ReadPredicate pred;
  pred.time_begin = cfg.start + 2 * kUsecPerDay;
  pred.time_end = cfg.start + 5 * kUsecPerDay;
  for (int m = 0; m < 4; ++m) pred.midplanes.push_back(m);

  obs::Collector col;
  joblog::ReadOptions po;
  po.predicate = pred;
  po.sink = &col;
  std::istringstream in(f.job_v3);
  const joblog::JobLog got = joblog::read_binary(in, po);

  std::size_t want = 0;
  for (std::size_t i = 0; i < f.data.jobs.size(); ++i) {
    const auto& j = f.data.jobs[i];
    const bool time_ok =
        j.end_time >= *pred.time_begin && j.start_time < *pred.time_end;
    const int first = j.partition.first_midplane();
    const int count = j.partition.midplane_count();
    const bool mid_ok = first < 4 && first + count > 0;
    if (time_ok && mid_ok) ++want;
  }
  EXPECT_EQ(got.size(), want);

  const auto snap = col.snapshot();
  EXPECT_EQ(snap.counter_value("ingest.job_binary.blocks_total"),
            snap.counter_value("ingest.job_binary.blocks_decoded") +
                snap.counter_value("ingest.job_binary.blocks_skipped"));
  EXPECT_GT(snap.counter_value("ingest.job_binary.blocks_skipped"), 0u);
}

TEST(StoreV3, PushdownAccountingIsQueryIndependent) {
  const Fixture& f = small_fixture();
  const synth::ScenarioConfig cfg = synth::small_scenario(111, 10);
  bin::ReadPredicate pred;
  pred.time_begin = cfg.start + 2 * kUsecPerDay;
  pred.time_end = cfg.start + 3 * kUsecPerDay;

  // Strict mode: zone-skipped blocks still feed the declared-total check,
  // so a predicate read of an intact file passes it.
  {
    ras::ReadOptions po;
    po.predicate = pred;
    std::istringstream in(f.ras_v3);
    EXPECT_NO_THROW((void)ras::read_binary(in, f.data.ras.catalog(), po));
  }
  // Lenient mode: the damage ledger is the file's, not the query's — an
  // intact file shows zero malformed regardless of how much was skipped.
  {
    IngestReport rep;
    ras::ReadOptions po;
    po.mode = ParseMode::Lenient;
    po.report = &rep;
    po.predicate = pred;
    std::istringstream in(f.ras_v3);
    (void)ras::read_binary(in, f.data.ras.catalog(), po);
    EXPECT_EQ(rep.total_malformed(), 0u);
    EXPECT_LE(rep.records_ok(), f.data.ras.size());
  }
}

TEST(StoreV3, V2FilePushdownStillExact) {
  const Fixture& f = small_fixture();
  const synth::ScenarioConfig cfg = synth::small_scenario(111, 10);
  bin::ReadPredicate pred;
  pred.time_begin = cfg.start + 2 * kUsecPerDay;
  pred.time_end = cfg.start + 5 * kUsecPerDay;

  ras::ReadOptions po;
  po.predicate = pred;
  std::istringstream v2(f.ras_v2), v3(f.ras_v3);
  const ras::RasLog a = ras::read_binary(v2, f.data.ras.catalog(), po);
  const ras::RasLog b = ras::read_binary(v3, f.data.ras.catalog(), po);
  expect_ras_equal(a, b);
}

TEST(StoreV3, StreamDecoderMatchesFileReader) {
  // Feed the framed v3 bytes through the incremental decoder exactly as the
  // fleet session does; the result must equal the one-shot reader's.
  const Fixture& f = small_fixture();
  std::istringstream file(f.ras_v3);
  const ras::RasLog want = ras::read_binary(file, f.data.ras.catalog(), {});

  std::istringstream in(f.ras_v3.substr(8));
  IngestReport frames;
  bin::BlockReader blocks(in, ParseMode::Strict, &frames, "binary RAS log");
  ras::RasStreamDecoder dec(f.data.ras.catalog(), ParseMode::Strict,
                            machine::bgp_model());
  std::string payload;
  while (blocks.next(payload)) {
    dec.on_payload(payload, blocks.block_offset() + bin::kBlockHeaderBytes);
  }
  IngestReport rep;
  const ras::RasLog got = dec.finish(rep, frames);
  expect_ras_equal(got, want);
  EXPECT_TRUE(dec.meta().has_value());
  EXPECT_EQ(dec.meta()->schema, ras::kRasSchemaV3);
}

TEST(StoreV3, JobStreamDecoderMatchesFileReader) {
  const Fixture& f = small_fixture();
  std::istringstream file(f.job_v3);
  const joblog::JobLog want = joblog::read_binary(file, {});

  std::istringstream in(f.job_v3.substr(8));
  IngestReport frames;
  bin::BlockReader blocks(in, ParseMode::Strict, &frames, "binary job log");
  joblog::JobStreamDecoder dec(ParseMode::Strict, machine::bgp_model());
  std::string payload;
  while (blocks.next(payload)) {
    dec.on_payload(payload, blocks.block_offset() + bin::kBlockHeaderBytes);
  }
  IngestReport rep;
  const joblog::JobLog got = dec.finish(rep, frames);
  expect_jobs_equal(got, want);
  EXPECT_TRUE(dec.meta().has_value());
  EXPECT_EQ(dec.meta()->schema, joblog::kJobSchemaV3);
}

TEST(StoreV3, StrictRejectsWrongMachineMeta) {
  const Fixture& f = small_fixture();
  ras::ReadOptions ro;
  ro.machine = &machine::bgq_model();
  std::istringstream in(f.ras_v3);
  EXPECT_THROW(ras::read_binary(in, f.data.ras.catalog(), ro), ParseError);

  joblog::ReadOptions jo;
  jo.machine = &machine::bgq_model();
  std::istringstream jn(f.job_v3);
  EXPECT_THROW(joblog::read_binary(jn, jo), Error);
}

TEST(StoreV3, SegmentFootersPresent) {
  // Small segment size -> several footers; the reader must still round-trip.
  const Fixture& f = small_fixture();
  std::ostringstream out;
  ras::write_binary(out, f.data.ras, {.blocks_per_segment = 4});
  const std::string bytes = out.str();
  std::size_t footers = 0;
  std::istringstream in(bytes.substr(8));
  bin::BlockReader blocks(in, ParseMode::Strict, nullptr, "binary RAS log");
  std::string payload;
  while (blocks.next(payload)) {
    if (!payload.empty() && payload[0] == ras::kRasSegmentTag) ++footers;
  }
  EXPECT_GT(footers, 1u);
  std::istringstream rd(bytes);
  expect_ras_equal(ras::read_binary(rd, f.data.ras.catalog(), {}), f.data.ras);
}

}  // namespace
}  // namespace coral
