#include <gtest/gtest.h>

#include <sstream>

#include "coral/common/error.hpp"
#include "coral/joblog/log.hpp"

namespace coral::joblog {
namespace {

JobRecord make_job(JobLog& log, std::int64_t id, const char* exec, const char* user,
                   const char* project, double start_s, double end_s, const char* part) {
  JobRecord j;
  j.job_id = id;
  j.exec_id = log.intern_exec(exec);
  j.user_id = log.intern_user(user);
  j.project_id = log.intern_project(project);
  j.queue_time = TimePoint::from_unix_seconds(start_s - 100);
  j.start_time = TimePoint::from_unix_seconds(start_s);
  j.end_time = TimePoint::from_unix_seconds(end_s);
  j.partition = bgp::Partition::parse(part);
  return j;
}

TEST(JobLog, InternDeduplicates) {
  JobLog log;
  const ExecId a = log.intern_exec("/home/u/app1");
  const ExecId b = log.intern_exec("/home/u/app2");
  const ExecId a2 = log.intern_exec("/home/u/app1");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(log.exec_files().size(), 2u);
}

TEST(JobLog, SummaryCountsDistinctAndResubmitted) {
  JobLog log;
  log.append(make_job(log, 1, "appA", "u1", "p1", 1000, 2000, "R00-M0"));
  log.append(make_job(log, 2, "appA", "u1", "p1", 3000, 4000, "R00-M0"));
  log.append(make_job(log, 3, "appB", "u2", "p1", 1000, 5000, "R01"));
  log.finalize();
  const JobLogSummary s = log.summary();
  EXPECT_EQ(s.total_jobs, 3u);
  EXPECT_EQ(s.distinct_jobs, 2u);
  EXPECT_EQ(s.resubmitted_jobs, 1u);
  EXPECT_EQ(s.users, 2u);
  EXPECT_EQ(s.projects, 1u);
}

TEST(JobLog, ByEndTimeOrdersTerminationsWithIndexTieBreak) {
  JobLog log;
  log.append(make_job(log, 1, "appA", "u1", "p1", 1000, 5000, "R00-M0"));
  log.append(make_job(log, 2, "appB", "u1", "p1", 2000, 3000, "R00-M0"));
  log.append(make_job(log, 3, "appC", "u1", "p1", 2500, 3000, "R01"));  // end tie with job 2
  log.finalize();

  // Jobs are start-sorted, so indices 0..2 are ids 1..3; terminations come
  // end-sorted with ties broken by index.
  const std::vector<std::size_t>& by_end = log.by_end_time();
  ASSERT_EQ(by_end.size(), 3u);
  EXPECT_EQ(log[by_end[0]].job_id, 2);
  EXPECT_EQ(log[by_end[1]].job_id, 3);
  EXPECT_EQ(log[by_end[2]].job_id, 1);
  for (std::size_t i = 1; i < by_end.size(); ++i) {
    EXPECT_LE(log[by_end[i - 1]].end_time, log[by_end[i]].end_time);
  }
}

TEST(JobLog, RunningAtLocationMatching) {
  JobLog log;
  log.append(make_job(log, 1, "appA", "u1", "p1", 1000, 2000, "R00-M0"));
  log.append(make_job(log, 2, "appB", "u1", "p1", 1500, 3000, "R01"));
  log.append(make_job(log, 3, "appC", "u1", "p1", 2500, 4000, "R00-M0"));
  log.finalize();

  const auto at_1600_r00m0 =
      log.running_at(TimePoint::from_unix_seconds(1600), bgp::Location::parse("R00-M0-N03"));
  ASSERT_EQ(at_1600_r00m0.size(), 1u);
  EXPECT_EQ(log[at_1600_r00m0[0]].job_id, 1);

  const auto at_1600_r01 =
      log.running_at(TimePoint::from_unix_seconds(1600), bgp::Location::parse("R01-M1"));
  ASSERT_EQ(at_1600_r01.size(), 1u);
  EXPECT_EQ(log[at_1600_r01[0]].job_id, 2);

  // End time is exclusive: at t=2000 job 1 has exited.
  const auto at_2000 =
      log.running_at(TimePoint::from_unix_seconds(2000), bgp::Location::parse("R00-M0"));
  EXPECT_TRUE(at_2000.empty());

  // No job covers R05.
  EXPECT_TRUE(
      log.running_at(TimePoint::from_unix_seconds(1600), bgp::Location::parse("R05-M0"))
          .empty());
}

TEST(JobLog, RunningAtPartitionOverlap) {
  JobLog log;
  log.append(make_job(log, 1, "appA", "u1", "p1", 1000, 2000, "R00-R01"));
  log.finalize();
  EXPECT_EQ(
      log.running_at(TimePoint::from_unix_seconds(1500), bgp::Partition::parse("R01")).size(),
      1u);
  EXPECT_TRUE(
      log.running_at(TimePoint::from_unix_seconds(1500), bgp::Partition::parse("R02"))
          .empty());
}

TEST(JobLog, OverlappingWindow) {
  JobLog log;
  log.append(make_job(log, 1, "a", "u", "p", 1000, 2000, "R00-M0"));
  log.append(make_job(log, 2, "b", "u", "p", 3000, 4000, "R00-M0"));
  log.finalize();
  EXPECT_EQ(log.overlapping(TimePoint::from_unix_seconds(500),
                            TimePoint::from_unix_seconds(1500))
                .size(),
            1u);
  EXPECT_EQ(log.overlapping(TimePoint::from_unix_seconds(0),
                            TimePoint::from_unix_seconds(9000))
                .size(),
            2u);
  EXPECT_TRUE(log.overlapping(TimePoint::from_unix_seconds(2000),
                              TimePoint::from_unix_seconds(3000))
                  .empty());
}

TEST(JobLog, CsvRoundTrip) {
  JobLog log;
  log.append(make_job(log, 8935, "/gpfs/apps/flash,2", "alice", "astro", 1209618043.1,
                      1209621636.96, "R10-R11"));
  log.append(make_job(log, 8936, "/gpfs/apps/qmc", "bob", "chem", 1209620000, 1209630000,
                      "R00-M0"));
  log.finalize();

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const JobLog parsed = JobLog::read_csv(in);

  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].job_id, 8935);
  EXPECT_EQ(parsed.exec_files()[static_cast<std::size_t>(parsed[0].exec_id)],
            "/gpfs/apps/flash,2");
  EXPECT_EQ(parsed[0].partition.name(), "R10-R11");
  EXPECT_NEAR(parsed[0].start_time.unix_seconds(), 1209618043.1, 0.01);
  EXPECT_EQ(parsed[1].size_midplanes(), 1);
}

TEST(JobLog, AppendValidatesTimes) {
  JobLog log;
  JobRecord j = make_job(log, 1, "a", "u", "p", 2000, 1000, "R00-M0");
  EXPECT_THROW(log.append(j), InvalidArgument);
}

TEST(JobRecord, DerivedAccessors) {
  JobLog log;
  const JobRecord j = make_job(log, 1, "a", "u", "p", 1000, 4600, "R08-R11");
  EXPECT_EQ(j.runtime(), 3600 * kUsecPerSec);
  EXPECT_EQ(j.size_midplanes(), 8);
  EXPECT_TRUE(j.running_at(TimePoint::from_unix_seconds(1000)));
  EXPECT_TRUE(j.running_at(TimePoint::from_unix_seconds(4599)));
  EXPECT_FALSE(j.running_at(TimePoint::from_unix_seconds(4600)));
  EXPECT_FALSE(j.running_at(TimePoint::from_unix_seconds(999)));
}

}  // namespace
}  // namespace coral::joblog
