#include <gtest/gtest.h>

#include "coral/common/strings.hpp"
#include "coral/core/markdown.hpp"
#include "coral/joblog/anonymize.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

struct Fixture {
  synth::SynthResult data;
  core::CoAnalysisResult r;
};

const Fixture& fx() {
  static const Fixture f = [] {
    Fixture out;
    out.data = synth::generate(synth::small_scenario(131, 30));
    out.r = core::run_coanalysis(out.data.ras, out.data.jobs);
    return out;
  }();
  return f;
}

TEST(Markdown, ContainsAllSections) {
  const std::string md = core::render_markdown_report(fx().r, fx().data.ras.summary(),
                                                      fx().data.jobs.summary());
  for (const char* heading :
       {"# CORAL co-analysis report", "## Input logs", "## Filtering pipeline",
        "## Interarrival fits", "## Interruption census", "## Vulnerability grid",
        "## Observations"}) {
    EXPECT_NE(md.find(heading), std::string::npos) << heading;
  }
  // Tables look like tables.
  EXPECT_NE(md.find("| stage | input | output | compression |"), std::string::npos);
  EXPECT_NE(md.find("Observation  1"), std::string::npos);
  EXPECT_NE(md.find("Observation 12"), std::string::npos);
}

TEST(Markdown, NumbersMatchResult) {
  const std::string md = core::render_markdown_report(fx().r, fx().data.ras.summary(),
                                                      fx().data.jobs.summary());
  EXPECT_NE(md.find(strformat("%zu interruptions", fx().r.interruption_count())),
            std::string::npos);
  EXPECT_NE(md.find(strformat("shape | scale | mean")), std::string::npos);
}

TEST(Anonymize, ScrubsIdentitiesKeepsStructure) {
  const joblog::JobLog& original = fx().data.jobs;
  const joblog::JobLog anon = joblog::anonymize(original);
  ASSERT_EQ(anon.size(), original.size());

  // Identity strings are pseudonyms now.
  for (const std::string& s : anon.users()) {
    EXPECT_EQ(s.rfind("user_", 0), 0u) << s;
  }
  for (const std::string& s : anon.exec_files()) {
    EXPECT_EQ(s.rfind("app_", 0), 0u) << s;
  }
  for (const std::string& s : anon.projects()) {
    EXPECT_EQ(s.rfind("project_", 0), 0u) << s;
  }
  // Table sizes preserved (bijection).
  EXPECT_EQ(anon.users().size(), original.summary().users);
  EXPECT_EQ(anon.summary().distinct_jobs, original.summary().distinct_jobs);
  EXPECT_EQ(anon.summary().resubmitted_jobs, original.summary().resubmitted_jobs);

  // Everything the analysis consumes is untouched.
  for (std::size_t i = 0; i < anon.size(); ++i) {
    EXPECT_EQ(anon[i].job_id, original[i].job_id);
    EXPECT_EQ(anon[i].start_time, original[i].start_time);
    EXPECT_EQ(anon[i].end_time, original[i].end_time);
    EXPECT_EQ(anon[i].partition, original[i].partition);
    EXPECT_EQ(anon[i].exit_code, original[i].exit_code);
  }
}

TEST(Anonymize, AnalysisInvariant) {
  const joblog::JobLog anon = joblog::anonymize(fx().data.jobs);
  const core::CoAnalysisResult r2 = core::run_coanalysis(fx().data.ras, anon);
  EXPECT_EQ(r2.interruption_count(), fx().r.interruption_count());
  EXPECT_EQ(r2.system_interruptions, fx().r.system_interruptions);
  EXPECT_EQ(r2.job_filter.removed_count(), fx().r.job_filter.removed_count());
  EXPECT_EQ(r2.distinct_interrupted_jobs, fx().r.distinct_interrupted_jobs);
}

TEST(Anonymize, StableAcrossRuns) {
  const joblog::JobLog a = joblog::anonymize(fx().data.jobs);
  const joblog::JobLog b = joblog::anonymize(fx().data.jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].exec_id, b[i].exec_id);
    EXPECT_EQ(a[i].user_id, b[i].user_id);
  }
  EXPECT_EQ(a.exec_files(), b.exec_files());
}

}  // namespace
}  // namespace coral
