// Cross-module integration: CSV round-trips feeding the analysis pipeline,
// and pipeline stability under serialization (the analysis of a re-parsed
// log pair must equal the analysis of the in-memory pair).
#include <gtest/gtest.h>

#include <sstream>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

TEST(Integration, CsvRoundTripPreservesAnalysis) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(33, 14));

  std::stringstream ras_csv, job_csv;
  data.ras.write_csv(ras_csv);
  data.jobs.write_csv(job_csv);
  const ras::RasLog ras2 = ras::RasLog::read_csv(ras_csv);
  const joblog::JobLog jobs2 = joblog::JobLog::read_csv(job_csv);

  ASSERT_EQ(ras2.size(), data.ras.size());
  ASSERT_EQ(jobs2.size(), data.jobs.size());

  const core::CoAnalysisResult a = core::run_coanalysis(data.ras, data.jobs);
  const core::CoAnalysisResult b = core::run_coanalysis(ras2, jobs2);

  EXPECT_EQ(a.filtered.groups.size(), b.filtered.groups.size());
  EXPECT_EQ(a.matches.interruptions.size(), b.matches.interruptions.size());
  EXPECT_EQ(a.job_filter.removed_count(), b.job_filter.removed_count());
  EXPECT_EQ(a.system_interruptions, b.system_interruptions);
  EXPECT_EQ(a.application_interruptions, b.application_interruptions);
  EXPECT_EQ(a.classification.system_type_count(), b.classification.system_type_count());
  EXPECT_NEAR(a.fatal_before_jobfilter.weibull.shape(),
              b.fatal_before_jobfilter.weibull.shape(), 1e-6);
}

TEST(Integration, JobCsvPreservesIdentityTables) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(34, 7));
  std::stringstream csv;
  data.jobs.write_csv(csv);
  const joblog::JobLog parsed = joblog::JobLog::read_csv(csv);
  const auto s1 = data.jobs.summary();
  const auto s2 = parsed.summary();
  EXPECT_EQ(s1.total_jobs, s2.total_jobs);
  EXPECT_EQ(s1.distinct_jobs, s2.distinct_jobs);
  EXPECT_EQ(s1.resubmitted_jobs, s2.resubmitted_jobs);
  EXPECT_EQ(s1.users, s2.users);
  EXPECT_EQ(s1.projects, s2.projects);
}

TEST(Integration, RasCsvPreservesSummary) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(35, 7));
  std::stringstream csv;
  data.ras.write_csv(csv);
  const ras::RasLog parsed = ras::RasLog::read_csv(csv);
  const auto s1 = data.ras.summary();
  const auto s2 = parsed.summary();
  EXPECT_EQ(s1.total_records, s2.total_records);
  EXPECT_EQ(s1.fatal_records, s2.fatal_records);
  EXPECT_EQ(s1.fatal_errcode_types, s2.fatal_errcode_types);
  EXPECT_EQ(s1.by_severity, s2.by_severity);
}

TEST(Integration, AnalysisConfigKnobsPropagate) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(36, 14));
  core::CoAnalysisConfig strict;
  strict.matching.window = 10 * kUsecPerSec;
  core::CoAnalysisConfig loose;
  loose.matching.window = 600 * kUsecPerSec;
  const auto a = core::run_coanalysis(data.ras, data.jobs, strict);
  const auto b = core::run_coanalysis(data.ras, data.jobs, loose);
  // A wider matching window can only find more (or equal) interruptions.
  EXPECT_LE(a.matches.interruptions.size(), b.matches.interruptions.size());
}

TEST(Integration, EmptyishLogsDoNotCrash) {
  // A log pair with no FATAL records at all.
  ras::RasLog ras;
  {
    ras::RasEvent ev;
    ev.errcode = *ras::Catalog::instance().find("ecc_correctable");
    ev.severity = ras::Severity::Warning;
    ev.event_time = TimePoint::from_calendar(2009, 1, 6);
    ev.location = bgp::Location::parse("R00-M0-N00-J04");
    ras.append(ev);
    ras.finalize();
  }
  joblog::JobLog jobs;
  {
    joblog::JobRecord j;
    j.exec_id = jobs.intern_exec("app");
    j.user_id = jobs.intern_user("u");
    j.project_id = jobs.intern_project("p");
    j.queue_time = TimePoint::from_calendar(2009, 1, 6);
    j.start_time = j.queue_time + kUsecPerMin;
    j.end_time = j.start_time + kUsecPerHour;
    j.partition = bgp::Partition::parse("R00-M0");
    jobs.append(j);
    jobs.finalize();
  }
  const auto r = core::run_coanalysis(ras, jobs);
  EXPECT_TRUE(r.filtered.groups.empty());
  EXPECT_TRUE(r.matches.interruptions.empty());
  EXPECT_EQ(r.interruption_count(), 0u);
}

}  // namespace
}  // namespace coral
