#include <gtest/gtest.h>

#include <sstream>

#include "coral/bgp/location.hpp"
#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/ras/catalog.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(111, 10));
  return result;
}

TEST(RasBinary, RoundTripsExactly) {
  std::stringstream buf;
  ras::write_binary(buf, data().ras);
  const ras::RasLog parsed = ras::read_binary(buf);
  ASSERT_EQ(parsed.size(), data().ras.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].event_time, data().ras[i].event_time);
    EXPECT_EQ(parsed[i].location, data().ras[i].location);
    EXPECT_EQ(parsed[i].errcode, data().ras[i].errcode);
    EXPECT_EQ(parsed[i].severity, data().ras[i].severity);
    EXPECT_EQ(parsed[i].serial, data().ras[i].serial);
    EXPECT_EQ(parsed[i].recid, data().ras[i].recid);
  }
}

TEST(RasBinary, MuchSmallerThanCsv) {
  std::stringstream bin, csv;
  ras::write_binary(bin, data().ras);
  data().ras.write_csv(csv);
  EXPECT_LT(bin.str().size() * 3, csv.str().size());
}

TEST(RasBinary, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(ras::read_binary(empty), ParseError);
  std::stringstream junk("not a log at all, definitely");
  EXPECT_THROW(ras::read_binary(junk), ParseError);
  // Truncated: valid prefix, cut in the middle of the records.
  std::stringstream buf;
  ras::write_binary(buf, data().ras);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(ras::read_binary(cut), ParseError);
}

TEST(JobBinary, RoundTripsExactly) {
  std::stringstream buf;
  joblog::write_binary(buf, data().jobs);
  const joblog::JobLog parsed = joblog::read_binary(buf);
  ASSERT_EQ(parsed.size(), data().jobs.size());
  EXPECT_EQ(parsed.exec_files(), data().jobs.exec_files());
  EXPECT_EQ(parsed.users(), data().jobs.users());
  EXPECT_EQ(parsed.projects(), data().jobs.projects());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].job_id, data().jobs[i].job_id);
    EXPECT_EQ(parsed[i].exec_id, data().jobs[i].exec_id);
    EXPECT_EQ(parsed[i].queue_time, data().jobs[i].queue_time);
    EXPECT_EQ(parsed[i].start_time, data().jobs[i].start_time);
    EXPECT_EQ(parsed[i].end_time, data().jobs[i].end_time);
    EXPECT_EQ(parsed[i].partition, data().jobs[i].partition);
    EXPECT_EQ(parsed[i].exit_code, data().jobs[i].exit_code);
  }
}

TEST(JobBinary, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(joblog::read_binary(empty), ParseError);
  std::stringstream wrong;
  ras::write_binary(wrong, data().ras);  // a RAS file is not a job file
  EXPECT_THROW(joblog::read_binary(wrong), ParseError);
}

namespace golden {

void put_bytes(std::string& s, const void* p, std::size_t n) {
  s.append(static_cast<const char*>(p), n);
}
template <typename T>
void put(std::string& s, T v) {
  put_bytes(s, &v, sizeof v);
}
void put_str(std::string& s, const std::string& v) {
  put<std::uint16_t>(s, static_cast<std::uint16_t>(v.size()));
  s += v;
}
std::string frame(const std::string& payload) {
  std::string out("CBLK");
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(out, bin::crc32(payload.data(), payload.size()));
  return out + payload;
}

}  // namespace golden

// The v2 byte layout, assembled independently from its documented schema.
// Guards against accidental format drift (field reorder, width change,
// nondeterministic struct padding) that a round-trip test cannot see.
TEST(RasBinary, GoldenByteLayout) {
  const ras::Catalog tiny({ras::ErrcodeInfo{.name = "ALPHA"},
                           ras::ErrcodeInfo{.name = "BETA"}});
  std::vector<ras::RasEvent> events(2);
  events[0].event_time = TimePoint(1000000);
  events[0].location = bgp::Location::rack(3);
  events[0].errcode = 1;
  events[0].severity = ras::Severity::Fatal;
  events[0].serial = 7;
  events[1].event_time = TimePoint(2000000);
  events[1].location = bgp::Location::midplane(5);
  events[1].errcode = 0;
  events[1].severity = ras::Severity::Info;
  events[1].serial = 9;
  const ras::RasLog log(std::move(events), tiny);

  std::stringstream buf1, buf2;
  ras::write_binary(buf1, log);
  ras::write_binary(buf2, log);
  // Deterministic output, including the struct padding bytes.
  EXPECT_EQ(buf1.str(), buf2.str());

  using golden::frame;
  using golden::put;
  using golden::put_str;
  std::string expect("CRAS");
  put<std::uint32_t>(expect, 2);  // format version

  std::string dict;
  put<char>(dict, 'D');
  put<std::uint32_t>(dict, 2);  // catalog size
  put_str(dict, "ALPHA");
  put_str(dict, "BETA");
  put<std::uint64_t>(dict, 2);  // total record count
  expect += frame(dict) + frame(dict);  // written twice for redundancy

  std::string recs;
  put<char>(recs, 'R');
  put<std::uint32_t>(recs, 2);  // records in this block
  for (std::size_t i = 0; i < log.size(); ++i) {
    put<std::int64_t>(recs, log[i].event_time.usec());
    put<std::uint32_t>(recs, log[i].location.packed());
    put<std::uint32_t>(recs, static_cast<std::uint32_t>(log[i].errcode));
    put<std::uint32_t>(recs, log[i].serial);
    put<std::uint8_t>(recs, static_cast<std::uint8_t>(log[i].severity));
    recs.append(3, '\0');  // pad bytes are zeroed, never uninitialized
  }
  expect += frame(recs);

  EXPECT_EQ(buf1.str(), expect);
}

TEST(Binary, AnalysisIdenticalAfterBinaryRoundTrip) {
  std::stringstream rbuf, jbuf;
  ras::write_binary(rbuf, data().ras);
  joblog::write_binary(jbuf, data().jobs);
  const ras::RasLog ras2 = ras::read_binary(rbuf);
  const joblog::JobLog jobs2 = joblog::read_binary(jbuf);
  const auto a = core::run_coanalysis(data().ras, data().jobs);
  const auto b = core::run_coanalysis(ras2, jobs2);
  EXPECT_EQ(a.filtered.groups.size(), b.filtered.groups.size());
  EXPECT_EQ(a.matches.interruptions.size(), b.matches.interruptions.size());
  EXPECT_EQ(a.system_interruptions, b.system_interruptions);
}

}  // namespace
}  // namespace coral
