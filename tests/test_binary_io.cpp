#include <gtest/gtest.h>

#include <sstream>

#include "coral/common/error.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(111, 10));
  return result;
}

TEST(RasBinary, RoundTripsExactly) {
  std::stringstream buf;
  ras::write_binary(buf, data().ras);
  const ras::RasLog parsed = ras::read_binary(buf);
  ASSERT_EQ(parsed.size(), data().ras.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].event_time, data().ras[i].event_time);
    EXPECT_EQ(parsed[i].location, data().ras[i].location);
    EXPECT_EQ(parsed[i].errcode, data().ras[i].errcode);
    EXPECT_EQ(parsed[i].severity, data().ras[i].severity);
    EXPECT_EQ(parsed[i].serial, data().ras[i].serial);
    EXPECT_EQ(parsed[i].recid, data().ras[i].recid);
  }
}

TEST(RasBinary, MuchSmallerThanCsv) {
  std::stringstream bin, csv;
  ras::write_binary(bin, data().ras);
  data().ras.write_csv(csv);
  EXPECT_LT(bin.str().size() * 3, csv.str().size());
}

TEST(RasBinary, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(ras::read_binary(empty), ParseError);
  std::stringstream junk("not a log at all, definitely");
  EXPECT_THROW(ras::read_binary(junk), ParseError);
  // Truncated: valid prefix, cut in the middle of the records.
  std::stringstream buf;
  ras::write_binary(buf, data().ras);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(ras::read_binary(cut), ParseError);
}

TEST(JobBinary, RoundTripsExactly) {
  std::stringstream buf;
  joblog::write_binary(buf, data().jobs);
  const joblog::JobLog parsed = joblog::read_binary(buf);
  ASSERT_EQ(parsed.size(), data().jobs.size());
  EXPECT_EQ(parsed.exec_files(), data().jobs.exec_files());
  EXPECT_EQ(parsed.users(), data().jobs.users());
  EXPECT_EQ(parsed.projects(), data().jobs.projects());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].job_id, data().jobs[i].job_id);
    EXPECT_EQ(parsed[i].exec_id, data().jobs[i].exec_id);
    EXPECT_EQ(parsed[i].queue_time, data().jobs[i].queue_time);
    EXPECT_EQ(parsed[i].start_time, data().jobs[i].start_time);
    EXPECT_EQ(parsed[i].end_time, data().jobs[i].end_time);
    EXPECT_EQ(parsed[i].partition, data().jobs[i].partition);
    EXPECT_EQ(parsed[i].exit_code, data().jobs[i].exit_code);
  }
}

TEST(JobBinary, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(joblog::read_binary(empty), ParseError);
  std::stringstream wrong;
  ras::write_binary(wrong, data().ras);  // a RAS file is not a job file
  EXPECT_THROW(joblog::read_binary(wrong), ParseError);
}

TEST(Binary, AnalysisIdenticalAfterBinaryRoundTrip) {
  std::stringstream rbuf, jbuf;
  ras::write_binary(rbuf, data().ras);
  joblog::write_binary(jbuf, data().jobs);
  const ras::RasLog ras2 = ras::read_binary(rbuf);
  const joblog::JobLog jobs2 = joblog::read_binary(jbuf);
  const auto a = core::run_coanalysis(data().ras, data().jobs);
  const auto b = core::run_coanalysis(ras2, jobs2);
  EXPECT_EQ(a.filtered.groups.size(), b.filtered.groups.size());
  EXPECT_EQ(a.matches.interruptions.size(), b.matches.interruptions.size());
  EXPECT_EQ(a.system_interruptions, b.system_interruptions);
}

}  // namespace
}  // namespace coral
