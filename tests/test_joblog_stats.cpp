#include <gtest/gtest.h>

#include "coral/common/error.hpp"
#include "coral/joblog/stats.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::joblog {
namespace {

JobLog two_job_log() {
  JobLog log;
  const TimePoint t0 = TimePoint::from_calendar(2009, 4, 1);
  JobRecord a;
  a.job_id = 1;
  a.exec_id = log.intern_exec("a");
  a.user_id = log.intern_user("u1");
  a.project_id = log.intern_project("p1");
  a.queue_time = t0 - 100 * kUsecPerSec;
  a.start_time = t0;
  a.end_time = a.start_time + kUsecPerHour;
  a.partition = bgp::Partition::parse("R00-M0");
  log.append(a);
  JobRecord b = a;
  b.job_id = 2;
  b.exec_id = log.intern_exec("b");
  b.user_id = log.intern_user("u2");
  b.queue_time = t0 - 300 * kUsecPerSec;
  b.start_time = t0;
  b.end_time = b.start_time + 2 * kUsecPerHour;
  b.partition = bgp::Partition::parse("R16-R31");  // 32 midplanes
  log.append(b);
  log.finalize();
  return log;
}

TEST(WorkloadStats, PerMidplaneAccounting) {
  const JobLog log = two_job_log();
  const WorkloadStats s = workload_stats(log);
  EXPECT_DOUBLE_EQ(s.midplane_busy_sec[0], 3600.0);
  EXPECT_DOUBLE_EQ(s.midplane_busy_sec[1], 0.0);
  EXPECT_DOUBLE_EQ(s.midplane_busy_sec[32], 7200.0);  // R16-M0 is midplane 32
  EXPECT_DOUBLE_EQ(s.midplane_busy_sec[63], 7200.0);  // R31-M1 is midplane 63
  EXPECT_EQ(s.jobs_per_size[0], 1u);
  EXPECT_EQ(s.jobs_per_size[5], 1u);
}

TEST(WorkloadStats, WideJobSeparatedOut) {
  const JobLog log = two_job_log();
  const WorkloadStats s = workload_stats(log);
  double wide_total = 0, busy_total = 0;
  for (std::size_t m = 0; m < s.midplane_wide_sec.size(); ++m) {
    wide_total += s.midplane_wide_sec[m];
    busy_total += s.midplane_busy_sec[m];
  }
  EXPECT_DOUBLE_EQ(wide_total, 32 * 7200.0);
  EXPECT_DOUBLE_EQ(busy_total, 3600.0 + 32 * 7200.0);
}

TEST(WorkloadStats, UtilizationAndWait) {
  const JobLog log = two_job_log();
  const WorkloadStats s = workload_stats(log);
  // Wall clock spans from the common start to job-b end.
  const double wall = 2 * 3600.0;
  EXPECT_NEAR(s.utilization, (3600.0 + 32 * 7200.0) / (wall * 80), 1e-9);
  EXPECT_NEAR(s.mean_wait_sec, (100.0 + 300.0) / 2, 1e-9);
}

TEST(WorkloadStats, EmptyLogIsZero) {
  const WorkloadStats s = workload_stats(JobLog{});
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);
  EXPECT_EQ(s.jobs_per_size[0], 0u);
}

TEST(PartyStats, AggregatesByUserAndProject) {
  const JobLog log = two_job_log();
  const auto by_user = stats_by_user(log);
  ASSERT_EQ(by_user.size(), 2u);
  EXPECT_EQ(by_user.at(0).jobs, 1u);
  EXPECT_DOUBLE_EQ(by_user.at(0).node_seconds, 3600.0);
  EXPECT_DOUBLE_EQ(by_user.at(1).node_seconds, 32 * 7200.0);
  const auto by_project = stats_by_project(log);
  ASSERT_EQ(by_project.size(), 1u);
  EXPECT_EQ(by_project.at(0).jobs, 2u);
}

TEST(UtilizationTimeline, StepFunctionShape) {
  const JobLog log = two_job_log();
  const TimePoint t0 = TimePoint::from_calendar(2009, 4, 1);
  const auto timeline =
      utilization_timeline(log, t0, t0 + 4 * kUsecPerHour, 30 * kUsecPerMin);
  ASSERT_EQ(timeline.size(), 8u);
  // First hour: both jobs running -> 33/80 midplanes.
  EXPECT_NEAR(timeline[0], 33.0 / 80.0, 1e-9);
  EXPECT_NEAR(timeline[1], 33.0 / 80.0, 1e-9);
  // Second hour: only the wide job remains.
  EXPECT_NEAR(timeline[2], 32.0 / 80.0, 1e-9);
  EXPECT_NEAR(timeline[3], 32.0 / 80.0, 1e-9);
  // Afterwards: idle.
  EXPECT_NEAR(timeline[4], 0.0, 1e-9);
  EXPECT_NEAR(timeline[6], 0.0, 1e-9);
  EXPECT_THROW(utilization_timeline(log, t0, t0, kUsecPerHour), InvalidArgument);
}

TEST(UtilizationTimeline, MatchesSyntheticScenario) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(81, 7));
  const synth::ScenarioConfig config = synth::small_scenario(81, 7);
  const auto timeline =
      utilization_timeline(data.jobs, config.start, config.end(), kUsecPerHour);
  EXPECT_EQ(timeline.size(), 7u * 24u);
  for (double u : timeline) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  const WorkloadStats s = workload_stats(data.jobs);
  EXPECT_GT(s.utilization, 0.05);
  EXPECT_LT(s.utilization, 0.95);
}

}  // namespace
}  // namespace coral::joblog
