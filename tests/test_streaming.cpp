// The streaming engine must be *indistinguishable* from the batch engine:
// identical groups, stage stats, causal pairs, interruption lists,
// classification counts and fitted distributions — single-shard and sharded.
#include <gtest/gtest.h>

#include <algorithm>

#include "coral/core/pipeline.hpp"
#include "coral/stream/coanalysis.hpp"
#include "coral/stream/filter_stages.hpp"
#include "coral/stream/shard.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(51, 30));
  return result;
}

core::CoAnalysisConfig engine_config(core::Engine engine, int shards = 1) {
  core::CoAnalysisConfig config;
  config.execution.engine = engine;
  config.execution.shards = shards;
  return config;
}

void expect_identical(const core::CoAnalysisResult& a, const core::CoAnalysisResult& b) {
  // Filtered groups: same representatives, same member lists, same order.
  ASSERT_EQ(a.filtered.groups.size(), b.filtered.groups.size());
  for (std::size_t i = 0; i < a.filtered.groups.size(); ++i) {
    EXPECT_EQ(a.filtered.groups[i].rep, b.filtered.groups[i].rep) << "group " << i;
    EXPECT_EQ(a.filtered.groups[i].members, b.filtered.groups[i].members) << "group " << i;
  }
  EXPECT_EQ(a.filtered.causal_pairs, b.filtered.causal_pairs);
  ASSERT_EQ(a.filtered.stages.size(), b.filtered.stages.size());
  for (std::size_t i = 0; i < a.filtered.stages.size(); ++i) {
    EXPECT_EQ(a.filtered.stages[i].name, b.filtered.stages[i].name);
    EXPECT_EQ(a.filtered.stages[i].input, b.filtered.stages[i].input);
    EXPECT_EQ(a.filtered.stages[i].output, b.filtered.stages[i].output);
  }

  // Matching: identical interruption list and both index maps.
  ASSERT_EQ(a.matches.interruptions.size(), b.matches.interruptions.size());
  for (std::size_t i = 0; i < a.matches.interruptions.size(); ++i) {
    EXPECT_EQ(a.matches.interruptions[i].group, b.matches.interruptions[i].group);
    EXPECT_EQ(a.matches.interruptions[i].job, b.matches.interruptions[i].job);
    EXPECT_EQ(a.matches.interruptions[i].time, b.matches.interruptions[i].time);
  }
  EXPECT_EQ(a.matches.jobs_by_group, b.matches.jobs_by_group);
  EXPECT_EQ(a.matches.group_by_job, b.matches.group_by_job);

  // Downstream classification and filtering.
  EXPECT_EQ(a.identification.verdicts, b.identification.verdicts);
  EXPECT_EQ(a.classification.system_type_count(), b.classification.system_type_count());
  EXPECT_EQ(a.classification.application_type_count(),
            b.classification.application_type_count());
  EXPECT_EQ(a.classification.application_event_fraction,
            b.classification.application_event_fraction);
  EXPECT_EQ(a.job_filter.kept, b.job_filter.kept);
  EXPECT_EQ(a.job_filter.redundant_to, b.job_filter.redundant_to);

  // Census + fitted distributions, compared *exactly* (byte-identity).
  EXPECT_EQ(a.system_interruptions, b.system_interruptions);
  EXPECT_EQ(a.application_interruptions, b.application_interruptions);
  EXPECT_EQ(a.distinct_interrupted_jobs, b.distinct_interrupted_jobs);
  EXPECT_EQ(a.fatal_before_jobfilter.samples_sec, b.fatal_before_jobfilter.samples_sec);
  EXPECT_EQ(a.fatal_before_jobfilter.weibull.shape(),
            b.fatal_before_jobfilter.weibull.shape());
  EXPECT_EQ(a.fatal_before_jobfilter.weibull.scale(),
            b.fatal_before_jobfilter.weibull.scale());
  EXPECT_EQ(a.fatal_after_jobfilter.weibull.shape(),
            b.fatal_after_jobfilter.weibull.shape());
  EXPECT_EQ(a.interruptions_system.weibull.shape(), b.interruptions_system.weibull.shape());
  EXPECT_EQ(a.interruptions_system.exponential.rate(),
            b.interruptions_system.exponential.rate());
  EXPECT_EQ(a.interruptions_application.weibull.scale(),
            b.interruptions_application.weibull.scale());

  // Fig. 4 / Fig. 5 series.
  EXPECT_EQ(a.interruptions_per_day, b.interruptions_per_day);
  EXPECT_EQ(a.fatal_events_per_midplane, b.fatal_events_per_midplane);
  EXPECT_EQ(a.workload_per_midplane, b.workload_per_midplane);
  EXPECT_EQ(a.wide_workload_per_midplane, b.wide_workload_per_midplane);
}

TEST(StreamingEngine, SingleShardIdenticalToBatch) {
  const auto batch =
      core::run_coanalysis(data().ras, data().jobs, engine_config(core::Engine::Batch));
  const auto streaming =
      core::run_coanalysis(data().ras, data().jobs, engine_config(core::Engine::Streaming));
  EXPECT_EQ(streaming.engine_used, core::Engine::Streaming);
  EXPECT_EQ(streaming.shards_used, 1u);
  expect_identical(batch, streaming);
}

TEST(StreamingEngine, FourShardsIdenticalToBatch) {
  const auto batch =
      core::run_coanalysis(data().ras, data().jobs, engine_config(core::Engine::Batch));
  par::ThreadPool pool(4);
  const auto sharded =
      core::run_coanalysis(data().ras, data().jobs, engine_config(core::Engine::Streaming, 4),
                           Context().with_pool(&pool));
  EXPECT_GE(sharded.shards_used, 2u);  // a month of gaps: cuts must exist
  EXPECT_LE(sharded.shards_used, 4u);
  expect_identical(batch, sharded);
}

TEST(StreamingEngine, ShardedWithoutPoolStillIdentical) {
  const auto batch =
      core::run_coanalysis(data().ras, data().jobs, engine_config(core::Engine::Batch));
  const auto sharded = core::run_coanalysis(data().ras, data().jobs,
                                            engine_config(core::Engine::Streaming, 3));
  expect_identical(batch, sharded);
}

TEST(StreamingEngine, DefaultConfigUsesStreaming) {
  const auto r = core::run_coanalysis(data().ras, data().jobs);
  EXPECT_EQ(r.engine_used, core::Engine::Streaming);
}

TEST(StreamingEngine, PeakStateBoundedByWindowsNotLogLength) {
  const auto r = core::run_coanalysis(data().ras, data().jobs);
  EXPECT_GT(r.peak_stage_state, 0u);
  // The windowed working set must be far below the record count: the whole
  // point of the streaming stages. (Batch holds all n groups at once.)
  EXPECT_LT(r.peak_stage_state, r.filtered.fatal_events.size() / 2);
}

TEST(StreamingFrontEnd, MatchesBatchFilterAndMatcherDirectly) {
  const auto filtered = filter::run_filter_pipeline(data().ras, {});
  const auto matches = core::match_interruptions(filtered, data().jobs, {});

  stream::FrontEndConfig config;
  const auto front = stream::run_streaming_frontend(data().ras, data().jobs, config);

  ASSERT_EQ(front.filtered.groups.size(), filtered.groups.size());
  for (std::size_t i = 0; i < filtered.groups.size(); ++i) {
    EXPECT_EQ(front.filtered.groups[i].rep, filtered.groups[i].rep);
    EXPECT_EQ(front.filtered.groups[i].members, filtered.groups[i].members);
  }
  EXPECT_EQ(front.filtered.causal_pairs, filtered.causal_pairs);
  EXPECT_EQ(front.matches.jobs_by_group, matches.jobs_by_group);
  EXPECT_EQ(front.matches.group_by_job, matches.group_by_job);
  ASSERT_EQ(front.matches.interruptions.size(), matches.interruptions.size());
  for (std::size_t i = 0; i < matches.interruptions.size(); ++i) {
    EXPECT_EQ(front.matches.interruptions[i].group, matches.interruptions[i].group);
    EXPECT_EQ(front.matches.interruptions[i].job, matches.interruptions[i].job);
  }
}

// Randomized differential: ~20 seeded scenario/workload/storm/sharding
// combinations, each requiring the streaming engine to be byte-identical to
// batch. The combinations sweep the axes that have historically produced
// engine divergence: storm burst shape (group sizes near window edges),
// causality on/off (three- vs four-stage pipeline), shard count (boundary
// handling) and pool width (merge determinism under real concurrency).
TEST(StreamingEngine, RandomizedDifferentialAgainstBatch) {
  constexpr int kCombos = 20;
  for (int i = 0; i < kCombos; ++i) {
    SCOPED_TRACE("combo " + std::to_string(i));

    synth::ScenarioConfig scenario =
        synth::small_scenario(/*seed=*/1000 + static_cast<std::uint64_t>(i) * 7,
                              /*days=*/6 + (i % 4) * 3);
    // Storm shape: quiet logs, the calibrated default, and record blizzards.
    scenario.storm.temporal_extra_mean = 1.0 + (i % 3) * 7.0;
    scenario.storm.spatial_nodes_mean = 4.0 + (i % 5) * 12.0;
    scenario.storm.cascade_prob = 0.1 * (i % 7);
    scenario.storm.idle_extra_mean = 2.0 + (i % 4) * 6.0;
    // Workload density: sparse through busy machines.
    scenario.workload.target_submissions = 400 + (i % 6) * 300;

    const synth::SynthResult run = synth::generate(scenario);
    if (run.ras.summary().fatal_records == 0) continue;  // nothing to diverge on

    core::CoAnalysisConfig config = engine_config(core::Engine::Batch);
    config.filters.enable_causality = i % 3 != 2;
    const auto batch = core::run_coanalysis(run.ras, run.jobs, config);

    config.execution.engine = core::Engine::Streaming;
    config.execution.shards = 1 + (i % 5);
    par::ThreadPool pool(1 + static_cast<std::size_t>(i % 4));
    const auto streaming =
        core::run_coanalysis(run.ras, run.jobs, config, Context().with_pool(&pool));

    EXPECT_EQ(streaming.engine_used, core::Engine::Streaming);
    expect_identical(batch, streaming);
    if (HasFatalFailure()) break;  // one combo's dump is enough
  }
}

TEST(ShardPlan, CutsOnlyInsideQuiesceGaps) {
  // Events in three bursts with two large gaps; quiesce smaller than the
  // gaps, so both midpoints are candidates.
  std::vector<TimePoint> times;
  for (int burst = 0; burst < 3; ++burst) {
    const TimePoint base(burst * 10'000'000);
    for (int i = 0; i < 5; ++i) times.push_back(base + i * 100);
  }
  const auto plan = stream::plan_shards(times, 3, /*quiesce=*/1'000'000);
  ASSERT_EQ(plan.cuts.size(), 2u);
  EXPECT_TRUE(std::is_sorted(plan.cuts.begin(), plan.cuts.end()));
  for (const TimePoint cut : plan.cuts) {
    // Every record is at least half a quiesce gap away from any cut.
    for (const TimePoint t : times) {
      EXPECT_GE(t < cut ? cut - t : t - cut, 500'000);
    }
  }
  EXPECT_EQ(plan.shard_of(times.front()), 0u);
  EXPECT_EQ(plan.shard_of(times.back()), 2u);
}

TEST(ShardPlan, NoQualifyingGapMeansOneShard) {
  std::vector<TimePoint> times;
  for (int i = 0; i < 100; ++i) times.push_back(TimePoint(i * 1000));
  const auto plan = stream::plan_shards(times, 8, /*quiesce=*/1'000'000);
  EXPECT_TRUE(plan.cuts.empty());
  EXPECT_EQ(plan.shard_count(), 1u);
}

TEST(ShardPlan, QuiesceGapCoversEveryWindow) {
  const Usec q = stream::quiesce_gap(300, 500, 120, 1000);
  EXPECT_GE(q, 300);
  EXPECT_GE(q, 500);
  EXPECT_GE(q, 120);
  // A qualifying gap is *strictly* larger than q, so its floored half-gap
  // still exceeds the match window.
  EXPECT_GT((q + 1) / 2, 1000);
}

}  // namespace
}  // namespace coral
