#include "coral/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "coral/common/error.hpp"
#include "coral/stats/descriptive.hpp"

namespace coral {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) any_diff |= (a2.next() != c.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(7);
  Rng child = a.split();
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) any_diff |= (a.next() != child.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(2);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) seen[rng.uniform_index(7)] += 1;
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(4);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.exponential(100.0);
  EXPECT_NEAR(stats::mean(xs), 100.0, 3.0);
}

TEST(Rng, WeibullShape1IsExponential) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.weibull(1.0, 50.0);
  EXPECT_NEAR(stats::mean(xs), 50.0, 2.0);
}

TEST(Rng, WeibullMeanMatchesGammaFormula) {
  Rng rng(6);
  const double shape = 0.5, scale = 100.0;
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.weibull(shape, scale);
  // mean = scale * Gamma(1 + 1/shape) = 100 * Gamma(3) = 200.
  EXPECT_NEAR(stats::mean(xs), 200.0, 12.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(stats::mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stats::stddev(xs), 2.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(8);
  double sum_small = 0, sum_large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_small += static_cast<double>(rng.poisson(3.5));
  for (int i = 0; i < n; ++i) sum_large += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum_small / n, 3.5, 0.1);
  EXPECT_NEAR(sum_large / n, 200.0, 1.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(10);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.categorical(weights)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, ZipfIsMonotonicallySkewed) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.zipf(5, 1.0)] += 1;
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_LT(counts[i], counts[i - 1]);
}

TEST(DiscreteSampler, MatchesCategorical) {
  Rng rng(12);
  const std::vector<double> weights = {2.0, 1.0, 1.0, 4.0};
  const DiscreteSampler sampler(weights);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 16000; ++i) counts[static_cast<int>(sampler.sample(rng))] += 1;
  EXPECT_NEAR(counts[0] / 4000.0, 1.0, 0.15);
  EXPECT_NEAR(counts[3] / 8000.0, 1.0, 0.15);
}

TEST(DiscreteSampler, RejectsDegenerateWeights) {
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{zero}, InvalidArgument);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(DiscreteSampler{negative}, InvalidArgument);
}

class RngDistributionP : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RngDistributionP, WeibullSampleMeanMatchesAnalyticMean) {
  const auto [shape, scale] = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 1000 + scale));
  std::vector<double> xs(40000);
  for (double& x : xs) x = rng.weibull(shape, scale);
  const double analytic = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(stats::mean(xs) / analytic, 1.0, 0.08) << "shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(ShapeScaleGrid, RngDistributionP,
                         ::testing::Values(std::pair{0.4, 100.0}, std::pair{0.6, 10.0},
                                           std::pair{1.0, 1.0}, std::pair{1.5, 500.0},
                                           std::pair{3.0, 42.0}));

}  // namespace
}  // namespace coral
