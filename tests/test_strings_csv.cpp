#include <gtest/gtest.h>

#include <sstream>

#include "coral/common/csv.hpp"
#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("xyz", ','), (std::vector<std::string>{"xyz"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int(" 13 "), 13);
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("4x"), ParseError);
  EXPECT_THROW(parse_int("-"), ParseError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("1209618043.1"), 1209618043.1);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.2.3"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Csv, WriterQuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(Csv, RoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> row1 = {"a", "b,c", "d\"e", ""};
  const std::vector<std::string> row2 = {"1", "2", "3", "line\nbreak"};
  w.write_row(row1);
  w.write_row(row2);

  std::istringstream in(out.str());
  CsvReader r(in);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, row1);
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, row2);
  EXPECT_FALSE(r.read_row(got));
}

TEST(Csv, ReaderHandlesCrLf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader r(in);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseCsvLine) {
  EXPECT_EQ(parse_csv_line("a,\"b,c\",d"), (std::vector<std::string>{"a", "b,c", "d"}));
  EXPECT_THROW(parse_csv_line("\"unterminated"), ParseError);
}

TEST(Csv, UnterminatedQuoteThrows) {
  std::istringstream in("\"abc");
  CsvReader r(in);
  std::vector<std::string> got;
  EXPECT_THROW(r.read_row(got), ParseError);
}

}  // namespace
}  // namespace coral
