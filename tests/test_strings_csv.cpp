#include <gtest/gtest.h>

#include <sstream>

#include "coral/common/csv.hpp"
#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("xyz", ','), (std::vector<std::string>{"xyz"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int(" 13 "), 13);
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("4x"), ParseError);
  EXPECT_THROW(parse_int("-"), ParseError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("1209618043.1"), 1209618043.1);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.2.3"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Csv, WriterQuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(Csv, RoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> row1 = {"a", "b,c", "d\"e", ""};
  const std::vector<std::string> row2 = {"1", "2", "3", "line\nbreak"};
  w.write_row(row1);
  w.write_row(row2);

  std::istringstream in(out.str());
  CsvReader r(in);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, row1);
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, row2);
  EXPECT_FALSE(r.read_row(got));
}

TEST(Csv, ReaderHandlesCrLf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader r(in);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseCsvLine) {
  EXPECT_EQ(parse_csv_line("a,\"b,c\",d"), (std::vector<std::string>{"a", "b,c", "d"}));
  EXPECT_THROW(parse_csv_line("\"unterminated"), ParseError);
}

TEST(Csv, UnterminatedQuoteThrows) {
  std::istringstream in("\"abc");
  CsvReader r(in);
  std::vector<std::string> got;
  EXPECT_THROW(r.read_row(got), ParseError);
}

TEST(Csv, StrayAfterClosingQuoteStrictThrows) {
  // "ab"x, — characters between the closing quote and the separator used to
  // be silently misparsed; strict mode now rejects them outright.
  EXPECT_THROW(parse_csv_line("\"ab\"x,c"), ParseError);
  std::istringstream in("\"ab\"x,c\n");
  CsvReader r(in);
  std::vector<std::string> got;
  EXPECT_THROW(r.read_row(got), ParseError);
}

TEST(Csv, StrayAfterClosingQuoteLenientRecovers) {
  EXPECT_EQ(parse_csv_line("\"ab\"x,c", ',', ParseMode::Lenient),
            (std::vector<std::string>{"ab", "c"}));
  std::istringstream in("\"ab\"xyz,c\nnext,row\n");
  CsvReader r(in, ',', ParseMode::Lenient);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"ab", "c"}));
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"next", "row"}));
  EXPECT_FALSE(r.read_row(got));
}

// CsvReader::read_row and parse_csv_line run the same splitter, so a row
// written by CsvWriter must read back identically through both.
TEST(Csv, ReaderAndParseLineAgreeOnWriterOutput) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote", ""},
      {"\"leading", "trailing\"", "a\"\"b", "  spaced  "},
      {"", "", ""},
      {"semi;colon", "tab\there", "dot."},
  };
  for (const auto& row : rows) {
    std::ostringstream out;
    CsvWriter w(out);
    w.write_row(row);
    std::string line = out.str();
    line.pop_back();  // trailing '\n'

    EXPECT_EQ(parse_csv_line(line), row) << line;
    EXPECT_EQ(parse_csv_line(line, ',', ParseMode::Lenient), row) << line;

    std::istringstream in(out.str());
    CsvReader strict(in);
    std::vector<std::string> got;
    ASSERT_TRUE(strict.read_row(got));
    EXPECT_EQ(got, row) << line;

    std::istringstream in2(out.str());
    CsvReader lenient(in2, ',', ParseMode::Lenient);
    ASSERT_TRUE(lenient.read_row(got));
    EXPECT_EQ(got, row) << line;
  }
}

TEST(Csv, LenientResynchronizesAfterUnbalancedQuote) {
  // A stray quote opens a field that swallows the rest of the file in naive
  // readers; the lenient reader must lose at most the damaged line.
  std::istringstream in("good,row\n\"damaged,row\nalso,good\nlast,one\n");
  IngestReport report;
  CsvReader r(in, ',', ParseMode::Lenient, &report);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"good", "row"}));
  ASSERT_TRUE(r.read_row(got));  // the damaged line, parsed alone
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"also", "good"}));
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"last", "one"}));
  EXPECT_FALSE(r.read_row(got));
  EXPECT_EQ(report.malformed(IngestReason::CsvStructure), 1u);
  EXPECT_FALSE(report.samples().empty());
}

TEST(Csv, LenientQuotedNewlinesStillJoin) {
  // Balanced quoted newlines are data, not damage — lenient mode must not
  // split them.
  std::istringstream in("a,\"multi\nline\nfield\"\nb,c\n");
  IngestReport report;
  CsvReader r(in, ',', ParseMode::Lenient, &report);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"a", "multi\nline\nfield"}));
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(got, (std::vector<std::string>{"b", "c"}));
  EXPECT_FALSE(r.read_row(got));
  EXPECT_TRUE(report.clean());
}

TEST(Csv, RowOffsetsTrackTheStream) {
  std::istringstream in("aa,bb\ncc,dd\n");
  CsvReader r(in);
  std::vector<std::string> got;
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(r.row_offset(), 0u);
  ASSERT_TRUE(r.read_row(got));
  EXPECT_EQ(r.row_offset(), 6u);
}

}  // namespace
}  // namespace coral
