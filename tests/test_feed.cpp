#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <vector>

#include "coral/core/feed.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::core {
namespace {

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(71, 7));
  return result;
}

TEST(EventFeed, DeliversEverythingInTimeOrder) {
  EventFeed feed(data().ras, data().jobs);
  std::size_t starts = 0, ends = 0, records = 0;
  TimePoint last(std::numeric_limits<Usec>::min());
  const auto check_time = [&last](TimePoint t) {
    EXPECT_GE(t, last);
    last = t;
  };
  feed.on_job_start([&](TimePoint t, const EventFeed::JobStart&) {
    check_time(t);
    ++starts;
  });
  feed.on_job_end([&](TimePoint t, const EventFeed::JobEnd&) {
    check_time(t);
    ++ends;
  });
  feed.on_ras([&](TimePoint t, const EventFeed::RasRecord&) {
    check_time(t);
    ++records;
  });
  const std::size_t delivered = feed.replay();
  EXPECT_EQ(starts, data().jobs.size());
  EXPECT_EQ(ends, data().jobs.size());
  EXPECT_EQ(records, data().ras.size());
  EXPECT_EQ(delivered, starts + ends + records);
}

TEST(EventFeed, SeverityFilterApplies) {
  EventFeed feed(data().ras, data().jobs);
  std::size_t fatals = 0;
  feed.on_ras(
      [&](TimePoint, const EventFeed::RasRecord& r) {
        EXPECT_EQ(r.event->severity, ras::Severity::Fatal);
        ++fatals;
      },
      ras::Severity::Fatal);
  feed.replay();
  EXPECT_EQ(fatals, data().ras.summary().fatal_records);
}

TEST(EventFeed, WindowedReplay) {
  const TimePoint begin = synth::small_scenario(71, 7).start + 2 * kUsecPerDay;
  const TimePoint end = begin + kUsecPerDay;
  EventFeed feed(data().ras, data().jobs);
  std::size_t n = 0;
  feed.on_ras([&](TimePoint t, const EventFeed::RasRecord&) {
    EXPECT_GE(t, begin);
    EXPECT_LT(t, end);
    ++n;
  });
  feed.replay(begin, end);
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, data().ras.size());
}

TEST(EventFeed, OccupancyTrackingSeesKillsWhileJobRuns) {
  // A consumer that tracks running jobs must observe every FATAL record of
  // an interrupting event while the killed job is still in its running set:
  // the tie-break orders job starts < RAS records < job ends.
  EventFeed feed(data().ras, data().jobs);
  std::set<std::int64_t> running;
  std::size_t fatal_during_jobs = 0, fatal_total = 0;
  feed.on_job_start([&](TimePoint, const EventFeed::JobStart& e) {
    running.insert(e.job->job_id);
  });
  feed.on_job_end([&](TimePoint, const EventFeed::JobEnd& e) {
    running.erase(e.job->job_id);
  });
  feed.on_ras(
      [&](TimePoint, const EventFeed::RasRecord&) {
        ++fatal_total;
        if (!running.empty()) ++fatal_during_jobs;
      },
      ras::Severity::Fatal);
  feed.replay();
  EXPECT_GT(fatal_total, 0u);
  EXPECT_GT(fatal_during_jobs, 0u);
}

TEST(EventFeed, WindowedReplayPinsTieBreakOrder) {
  // The documented tie-break at a shared timestamp is: job starts, then RAS
  // records, then job ends. Build a pair where every RAS record collides
  // with a job transition and pin the exact delivery sequence.
  const TimePoint t0(1000), t1(3000), t2(5000);

  ras::RasLog ras_log;
  for (const TimePoint t : {t0, t1, t2}) {
    ras::RasEvent ev;
    ev.event_time = t;
    ev.location = bgp::Location::parse("R04-M0");
    ev.severity = ras::Severity::Fatal;
    ras_log.append(ev);
  }
  ras_log.finalize();

  joblog::JobLog jobs;
  joblog::JobRecord a;
  a.job_id = 1;
  a.exec_id = jobs.intern_exec("/bin/app");
  a.user_id = jobs.intern_user("user0");
  a.project_id = jobs.intern_project("proj0");
  a.queue_time = t0;
  a.start_time = t0;
  a.end_time = t1;
  a.partition = bgp::Partition::parse("R04-M0");
  joblog::JobRecord b = a;
  b.job_id = 2;
  b.start_time = t1;
  b.end_time = t2;
  jobs.append(a);
  jobs.append(b);
  jobs.finalize();

  std::vector<std::string> order;
  EventFeed feed(ras_log, jobs);
  feed.on_job_start([&](TimePoint, const EventFeed::JobStart& e) {
    order.push_back("start" + std::to_string(e.job->job_id));
  });
  feed.on_job_end([&](TimePoint, const EventFeed::JobEnd& e) {
    order.push_back("end" + std::to_string(e.job->job_id));
  });
  feed.on_ras([&](TimePoint t, const EventFeed::RasRecord&) {
    order.push_back("ras@" + std::to_string(t - t0));
  });

  const std::vector<std::string> expected{
      "start1", "ras@0", "start2", "ras@2000", "end1", "ras@4000", "end2"};
  feed.replay(t0, t2 + 1);
  EXPECT_EQ(order, expected);

  // The whole-pair replay applies the same tie-break.
  order.clear();
  feed.replay();
  EXPECT_EQ(order, expected);
}

TEST(EventFeed, NoHandlersIsEmptyReplay) {
  EventFeed feed(data().ras, data().jobs);
  EXPECT_EQ(feed.replay(), 0u);
}

}  // namespace
}  // namespace coral::core
