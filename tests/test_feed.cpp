#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "coral/core/feed.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::core {
namespace {

const synth::SynthResult& data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(71, 7));
  return result;
}

TEST(EventFeed, DeliversEverythingInTimeOrder) {
  EventFeed feed(data().ras, data().jobs);
  std::size_t starts = 0, ends = 0, records = 0;
  TimePoint last(std::numeric_limits<Usec>::min());
  const auto check_time = [&last](TimePoint t) {
    EXPECT_GE(t, last);
    last = t;
  };
  feed.on_job_start([&](TimePoint t, const EventFeed::JobStart&) {
    check_time(t);
    ++starts;
  });
  feed.on_job_end([&](TimePoint t, const EventFeed::JobEnd&) {
    check_time(t);
    ++ends;
  });
  feed.on_ras([&](TimePoint t, const EventFeed::RasRecord&) {
    check_time(t);
    ++records;
  });
  const std::size_t delivered = feed.replay();
  EXPECT_EQ(starts, data().jobs.size());
  EXPECT_EQ(ends, data().jobs.size());
  EXPECT_EQ(records, data().ras.size());
  EXPECT_EQ(delivered, starts + ends + records);
}

TEST(EventFeed, SeverityFilterApplies) {
  EventFeed feed(data().ras, data().jobs);
  std::size_t fatals = 0;
  feed.on_ras(
      [&](TimePoint, const EventFeed::RasRecord& r) {
        EXPECT_EQ(r.event->severity, ras::Severity::Fatal);
        ++fatals;
      },
      ras::Severity::Fatal);
  feed.replay();
  EXPECT_EQ(fatals, data().ras.summary().fatal_records);
}

TEST(EventFeed, WindowedReplay) {
  const TimePoint begin = synth::small_scenario(71, 7).start + 2 * kUsecPerDay;
  const TimePoint end = begin + kUsecPerDay;
  EventFeed feed(data().ras, data().jobs);
  std::size_t n = 0;
  feed.on_ras([&](TimePoint t, const EventFeed::RasRecord&) {
    EXPECT_GE(t, begin);
    EXPECT_LT(t, end);
    ++n;
  });
  feed.replay(begin, end);
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, data().ras.size());
}

TEST(EventFeed, OccupancyTrackingSeesKillsWhileJobRuns) {
  // A consumer that tracks running jobs must observe every FATAL record of
  // an interrupting event while the killed job is still in its running set:
  // the tie-break orders job starts < RAS records < job ends.
  EventFeed feed(data().ras, data().jobs);
  std::set<std::int64_t> running;
  std::size_t fatal_during_jobs = 0, fatal_total = 0;
  feed.on_job_start([&](TimePoint, const EventFeed::JobStart& e) {
    running.insert(e.job->job_id);
  });
  feed.on_job_end([&](TimePoint, const EventFeed::JobEnd& e) {
    running.erase(e.job->job_id);
  });
  feed.on_ras(
      [&](TimePoint, const EventFeed::RasRecord&) {
        ++fatal_total;
        if (!running.empty()) ++fatal_during_jobs;
      },
      ras::Severity::Fatal);
  feed.replay();
  EXPECT_GT(fatal_total, 0u);
  EXPECT_GT(fatal_during_jobs, 0u);
}

TEST(EventFeed, NoHandlersIsEmptyReplay) {
  EventFeed feed(data().ras, data().jobs);
  EXPECT_EQ(feed.replay(), 0u);
}

}  // namespace
}  // namespace coral::core
