// The machine layer: the MachineModel interface, the BG/P reference model's
// byte-identity with the pre-MachineModel pipeline, the BG/Q model's own
// grammar and partition algebra, and the calibrated scenario packs running
// end to end on a non-BG/P machine.
#include <gtest/gtest.h>

#include <sstream>

#include "coral/common/error.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/machine/model.hpp"
#include "coral/synth/intrepid.hpp"
#include "coral/synth/packs.hpp"

namespace coral {
namespace {

using machine::MachineModel;

// ---- registry --------------------------------------------------------------

TEST(MachineRegistry, BuiltinModels) {
  EXPECT_EQ(machine::find_model("bgp"), &machine::bgp_model());
  EXPECT_EQ(machine::find_model("bgq"), &machine::bgq_model());
  EXPECT_EQ(machine::find_model("bgl"), nullptr);
  ASSERT_GE(machine::all_models().size(), 2u);
  EXPECT_EQ(machine::all_models().front(), &machine::bgp_model());
}

TEST(MachineRegistry, TopologyDimensions) {
  const MachineModel& bgp = machine::bgp_model();
  EXPECT_EQ(bgp.midplane_count(), 80);
  EXPECT_EQ(bgp.codec().midplanes_per_rack, 2);
  EXPECT_EQ(bgp.topology().jslot_base, 4);

  const MachineModel& bgq = machine::bgq_model();
  EXPECT_EQ(bgq.midplane_count(), 96);
  EXPECT_EQ(bgq.codec().midplanes_per_rack, 2);
  EXPECT_EQ(bgq.topology().jslot_base, 0);
  EXPECT_EQ(bgq.topology().cores_per_node, 16);
}

// ---- BG/P byte-identity ----------------------------------------------------
//
// The refactor's contract: every BG/P analysis routed through BgpModel is
// byte-identical to the pre-MachineModel code. These fingerprints were
// captured from the tree *before* the machine layer existed — the CSV hashes
// pin every record field of a full synth run, the analysis numbers pin the
// whole co-analysis pipeline behind it.

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(MachineDifferential, BgpSynthFingerprint) {
  const auto data = synth::generate(synth::small_scenario(7, 21));
  EXPECT_EQ(data.ras.size(), 33671u);
  EXPECT_EQ(data.jobs.size(), 3897u);
  EXPECT_EQ(&data.ras.machine(), &machine::bgp_model());
  EXPECT_EQ(&data.jobs.machine(), &machine::bgp_model());

  std::ostringstream ras_csv, job_csv;
  data.ras.write_csv(ras_csv);
  data.jobs.write_csv(job_csv);
  EXPECT_EQ(fnv1a(ras_csv.str()), 0xb3cbd154e8d7ababull);
  EXPECT_EQ(fnv1a(job_csv.str()), 0xa24abca3c60bf504ull);
}

TEST(MachineDifferential, BgpCoanalysisFingerprint) {
  const auto data = synth::generate(synth::small_scenario(7, 21));
  const auto r = core::run_coanalysis(data.ras, data.jobs);
  EXPECT_EQ(&r.machine(), &machine::bgp_model());

  EXPECT_EQ(r.filtered.groups.size(), 352u);
  EXPECT_EQ(r.matches.interruptions.size(), 110u);
  EXPECT_EQ(r.system_interruptions, 46u);
  EXPECT_EQ(r.application_interruptions, 64u);
  EXPECT_EQ(r.distinct_interrupted_jobs, 49u);

  ASSERT_EQ(r.fatal_events_per_midplane.size(), 80u);
  ASSERT_EQ(r.workload_per_midplane.size(), 80u);
  ASSERT_EQ(r.wide_workload_per_midplane.size(), 80u);
  double fsum = 0, wsum = 0, wwsum = 0;
  for (const double v : r.fatal_events_per_midplane) fsum += v;
  for (const double v : r.workload_per_midplane) wsum += v;
  for (const double v : r.wide_workload_per_midplane) wwsum += v;
  EXPECT_DOUBLE_EQ(r.fatal_events_per_midplane[0], 3.5);
  EXPECT_DOUBLE_EQ(fsum, 352.0);
  EXPECT_DOUBLE_EQ(wsum, 42060371.04479102);
  EXPECT_DOUBLE_EQ(wwsum, 6191108.3181119924);

  EXPECT_DOUBLE_EQ(r.fatal_before_jobfilter.weibull.shape(), 0.52944889812294071);
  EXPECT_DOUBLE_EQ(r.fatal_after_jobfilter.weibull.shape(), 0.52667415655712879);
}

TEST(MachineDifferential, BgpModelDelegatesToBgpGrammar) {
  const MachineModel& m = machine::bgp_model();
  const auto loc = m.parse_location("R04-M0-N08-J12");
  EXPECT_EQ(loc, bgp::Location::parse("R04-M0-N08-J12"));
  EXPECT_EQ(m.location_string(loc), "R04-M0-N08-J12");
  EXPECT_EQ(m.location_from_packed(loc.packed()), loc);

  EXPECT_EQ(m.legal_partition_sizes(), bgp::Partition::legal_sizes());
  for (const int size : m.legal_partition_sizes()) {
    EXPECT_EQ(m.partitions_of_size(size), bgp::Partition::all_of_size(size));
  }
  EXPECT_EQ(m.parse_partition("R08-R11"), bgp::Partition::parse("R08-R11"));
  EXPECT_EQ(m.partition_name(bgp::Partition(16, 8)), "R08-R11");
}

// ---- BG/Q grammar and algebra ----------------------------------------------

TEST(BgqModel, LocationGrammar) {
  const MachineModel& m = machine::bgq_model();

  // BG/Q numbers compute cards J00..J31 (BG/P: J04..J35) and has 48 racks.
  const auto loc = m.parse_location("R47-M1-N15-J00");
  EXPECT_EQ(loc.rack_index(), 47);
  EXPECT_EQ(loc.midplane_id(), 95);
  EXPECT_EQ(m.location_string(loc), "R47-M1-N15-J00");
  EXPECT_EQ(m.location_from_packed(loc.packed()), loc);

  EXPECT_THROW(m.parse_location("R48-M0"), ParseError);   // only 48 racks
  EXPECT_THROW(m.parse_location("R00-M0-N08-J35"), ParseError);  // J ends at 31
  EXPECT_THROW(machine::bgp_model().parse_location("R00-M0-N08-J00"),
               ParseError);  // and BG/P starts at J04

  EXPECT_EQ(m.location_string(m.midplane_location(95)), "R47-M1");
  EXPECT_EQ(m.midplane_location(94).midplane_id(), 94);
}

TEST(BgqModel, LocationOnMidplaneStaysOnMidplane) {
  const MachineModel& m = machine::bgq_model();
  Rng rng(99);
  for (const auto kind : {bgp::LocationKind::Midplane, bgp::LocationKind::NodeCard,
                          bgp::LocationKind::ComputeCard, bgp::LocationKind::IoNode}) {
    for (const machine::MidplaneId mid : {0, 81, 95}) {
      const auto loc = m.location_on_midplane(kind, mid, rng);
      EXPECT_EQ(loc.midplane_id(), mid);
      // Round-trips through the machine's own grammar and codec.
      EXPECT_EQ(m.parse_location(m.location_string(loc)), loc);
      EXPECT_EQ(m.location_from_packed(loc.packed()), loc);
    }
  }
}

TEST(BgqModel, PartitionAlgebra) {
  const MachineModel& m = machine::bgq_model();
  const std::vector<int> expected_sizes = {1, 2, 4, 8, 16, 32, 64, 96};
  EXPECT_EQ(m.legal_partition_sizes(), expected_sizes);

  EXPECT_EQ(m.partitions_of_size(1).size(), 96u);
  EXPECT_EQ(m.partitions_of_size(2).size(), 48u);
  EXPECT_EQ(m.partitions_of_size(32).size(), 3u);   // 16-rack blocks align to 16
  EXPECT_EQ(m.partitions_of_size(64).size(), 2u);   // racks 0-31 and 16-47
  EXPECT_EQ(m.partitions_of_size(96).size(), 1u);   // the full machine
  EXPECT_TRUE(m.partitions_of_size(48).empty());    // BG/P's 24-rack size is illegal

  EXPECT_TRUE(m.is_legal_partition(80, 16));
  EXPECT_FALSE(m.is_legal_partition(81, 2));  // racks start on even midplanes

  const auto part = m.parse_partition("R16-R47");
  EXPECT_EQ(part.first_midplane(), 32);
  EXPECT_EQ(part.midplane_count(), 64);
  EXPECT_EQ(m.partition_name(part), "R16-R47");
  EXPECT_EQ(m.partition_name(m.parse_partition("R47-M1")), "R47-M1");
  EXPECT_THROW(m.parse_partition("R08-R31"), ParseError);  // 24 racks: illegal here
}

TEST(BgqModel, PlacementZonesTileTheMachine) {
  for (const MachineModel* m : machine::all_models()) {
    const machine::PlacementZones z = m->placement_zones();
    // head + small + wide + tail partition [0, N) without gaps or overlap.
    EXPECT_EQ(z.head_first, 0) << m->name();
    EXPECT_EQ(z.small_first, z.head_first + z.head_count) << m->name();
    EXPECT_EQ(z.wide_first, z.small_first + z.small_count) << m->name();
    EXPECT_EQ(z.tail_first, z.wide_first + z.wide_count) << m->name();
    EXPECT_EQ(z.tail_first + z.tail_count, m->midplane_count()) << m->name();
    EXPECT_GE(z.wide_threshold, 1) << m->name();
  }
}

// ---- scenario packs --------------------------------------------------------

TEST(ScenarioPacks, Registry) {
  ASSERT_EQ(synth::scenario_packs().size(), 5u);
  for (const char* name : {"failure_storm", "maintenance_window",
                           "correlated_cascade", "resubmission_burst",
                           "multi_year_drift"}) {
    EXPECT_NE(synth::find_pack(name), nullptr) << name;
  }
  EXPECT_EQ(synth::find_pack("quiet_month"), nullptr);
  EXPECT_THROW(synth::pack_scenario(machine::bgq_model(), "quiet_month"),
               InvalidArgument);
}

TEST(ScenarioPacks, BaseScenarioRescalesToMachine) {
  const auto bgp = synth::base_scenario(machine::bgp_model(), 42, 21);
  const auto bgq = synth::base_scenario(machine::bgq_model(), 42, 21);

  // On the reference machine the remap is the identity.
  const synth::ScenarioConfig plain = synth::small_scenario(42, 21);
  EXPECT_EQ(bgp.workload.job_sizes, plain.workload.job_sizes);
  EXPECT_DOUBLE_EQ(bgp.faults.interrupting_rate_per_day,
                   plain.faults.interrupting_rate_per_day);

  // BG/Q: the ladder is the machine's own, every size legal there, and the
  // per-day rates scale with the midplane count.
  EXPECT_EQ(bgq.workload.job_sizes, machine::bgq_model().legal_partition_sizes());
  ASSERT_EQ(bgq.workload.size_weights.size(), bgq.workload.job_sizes.size());
  ASSERT_EQ(bgq.workload.runtime_weights.size(), bgq.workload.job_sizes.size());
  EXPECT_DOUBLE_EQ(bgq.faults.interrupting_rate_per_day,
                   plain.faults.interrupting_rate_per_day * 96.0 / 80.0);
}

TEST(ScenarioPacks, ApplyPackIsDeclarative) {
  auto config = synth::base_scenario(machine::bgq_model(), 42, 21);
  const double base_rate = config.faults.interrupting_rate_per_day;
  synth::apply_pack(config, *synth::find_pack("failure_storm"));
  EXPECT_DOUBLE_EQ(config.faults.interrupting_rate_per_day, base_rate * 4.0);
  EXPECT_DOUBLE_EQ(config.storm.cascade_prob, 0.55);
  EXPECT_FALSE(config.maintenance.enabled);

  auto drift = synth::pack_scenario(machine::bgq_model(), "multi_year_drift", 42, 21);
  EXPECT_DOUBLE_EQ(drift.faults.rate_drift_per_year, 0.5);
  EXPECT_EQ(drift.days, 730);

  auto mw = synth::pack_scenario(machine::bgq_model(), "maintenance_window", 42, 21);
  EXPECT_TRUE(mw.maintenance.enabled);
  EXPECT_EQ(mw.days, 21);  // no pack override: keeps the base horizon
}

// ---- BG/Q end to end -------------------------------------------------------
//
// The second machine runs the *full* co-analysis pipeline on its own
// scenario packs: synth on BgqModel, ingest-free columnar path, filtering,
// matching, per-midplane series sized 96. Goldens committed from seed 11 /
// 14 days; ±2% relative like the BG/P paper goldens.

struct BgqRun {
  synth::SynthResult data;
  core::CoAnalysisResult result;
};

BgqRun run_bgq_pack(const char* pack) {
  BgqRun run;
  synth::ScenarioConfig config =
      synth::pack_scenario(machine::bgq_model(), pack, 11, 14);
  config.days = 14;  // shrink the long-horizon packs to test scale
  run.data = synth::generate(config);
  run.result = core::run_coanalysis(run.data.ras, run.data.jobs);
  return run;
}

TEST(BgqEndToEnd, FailureStormPack) {
  const BgqRun run = run_bgq_pack("failure_storm");
  EXPECT_EQ(&run.data.ras.machine(), &machine::bgq_model());
  EXPECT_EQ(&run.result.machine(), &machine::bgq_model());

  EXPECT_NEAR(static_cast<double>(run.data.ras.size()), 39119.0, 39119.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(run.data.jobs.size()), 2150.0, 2150.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(run.result.filtered.groups.size()), 515.0,
              515.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(run.result.matches.interruptions.size()), 118.0,
              118.0 * 0.05);

  // Per-midplane series are machine-sized, and every location in the log
  // parses under the BG/Q grammar (would throw above rack 39 on BG/P).
  EXPECT_EQ(run.result.fatal_events_per_midplane.size(), 96u);
  bool beyond_bgp = false;
  for (const auto& ev : run.data.ras) {
    if (ev.location.rack_index() >= 40) beyond_bgp = true;
  }
  EXPECT_TRUE(beyond_bgp);
}

TEST(BgqEndToEnd, MaintenanceWindowPack) {
  const BgqRun run = run_bgq_pack("maintenance_window");
  EXPECT_NEAR(static_cast<double>(run.data.ras.size()), 15391.0, 15391.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(run.data.jobs.size()), 2085.0, 2085.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(run.result.filtered.groups.size()), 93.0,
              93.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(run.result.matches.interruptions.size()), 34.0,
              34.0 * 0.15);

  // The drain actually drains: no job starts inside any window.
  const synth::ScenarioConfig config =
      synth::pack_scenario(machine::bgq_model(), "maintenance_window", 11, 14);
  std::size_t inside = 0;
  for (const auto& job : run.data.jobs) {
    if (job.start_time < config.maintenance.first) continue;
    if ((job.start_time - config.maintenance.first) % config.maintenance.period <
        config.maintenance.duration) {
      ++inside;
    }
  }
  EXPECT_EQ(inside, 0u);
}

TEST(BgqEndToEnd, DeterministicAcrossRuns) {
  const BgqRun a = run_bgq_pack("correlated_cascade");
  const BgqRun b = run_bgq_pack("correlated_cascade");
  ASSERT_EQ(a.data.ras.size(), b.data.ras.size());
  for (std::size_t i = 0; i < a.data.ras.size(); ++i) {
    ASSERT_EQ(a.data.ras[i].event_time, b.data.ras[i].event_time);
    ASSERT_EQ(a.data.ras[i].errcode, b.data.ras[i].errcode);
    ASSERT_EQ(a.data.ras[i].location.packed(), b.data.ras[i].location.packed());
  }
  EXPECT_EQ(a.result.filtered.groups.size(), b.result.filtered.groups.size());
}


// ---- runtime model registry + data-defined models ---------------------------

TEST(ModelRegistry, RegisterFindUnregisterRoundTrip) {
  machine::Topology topo;
  topo.name = "testbg";
  topo.description = "registry test machine";
  topo.racks = 2;
  const machine::DataModel model(topo);
  EXPECT_EQ(machine::find_model("testbg"), nullptr);
  ASSERT_TRUE(machine::register_model(model));
  EXPECT_EQ(machine::find_model("testbg"), &model);
  // all_models: builtins first, then the registration.
  const auto all = machine::all_models();
  ASSERT_GE(all.size(), 3u);
  EXPECT_EQ(all.front(), &machine::bgp_model());
  EXPECT_EQ(all.back(), &model);
  EXPECT_TRUE(machine::unregister_model("testbg"));
  EXPECT_EQ(machine::find_model("testbg"), nullptr);
  EXPECT_FALSE(machine::unregister_model("testbg"));
}

TEST(ModelRegistry, RejectsDuplicateAndBuiltinNames) {
  machine::Topology topo;
  topo.name = "bgp";  // collides with a builtin
  const machine::DataModel impostor(topo);
  EXPECT_FALSE(machine::register_model(impostor));
  EXPECT_EQ(machine::find_model("bgp"), &machine::bgp_model());

  machine::Topology t2;
  t2.name = "dupe";
  const machine::DataModel first(t2), second(t2);
  ASSERT_TRUE(machine::register_model(first));
  EXPECT_FALSE(machine::register_model(second));
  EXPECT_EQ(machine::find_model("dupe"), &first);
  EXPECT_TRUE(machine::unregister_model("dupe"));
}

TEST(ModelRegistry, DataModelOwnsItsStrings) {
  const machine::MachineModel* found = nullptr;
  {
    std::string name = "ephemeral";
    machine::Topology topo;
    topo.name = name.c_str();  // transient storage, as in a parsed handshake
    topo.racks = 1;
    static const machine::DataModel model(topo);
    name.assign("clobbered");  // DataModel must have copied, not aliased
    ASSERT_TRUE(machine::register_model(model));
    found = machine::find_model("ephemeral");
    EXPECT_EQ(found, &model);
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(std::string_view(found->topology().name), "ephemeral");
  EXPECT_TRUE(machine::unregister_model("ephemeral"));
}

TEST(ModelRegistry, DataModelPartitionLadderIsPowerOfTwo) {
  machine::Topology topo;
  topo.name = "ladder";
  topo.racks = 3;  // 6 midplanes -> ladder 1,2,4 + full machine 6
  const machine::DataModel model(topo);
  const std::vector<int> want = {1, 2, 4, 6};
  EXPECT_EQ(model.legal_partition_sizes(), want);
  EXPECT_TRUE(model.is_legal_partition(0, 2));
  EXPECT_TRUE(model.is_legal_partition(4, 2));
  EXPECT_FALSE(model.is_legal_partition(1, 2));   // misaligned
  EXPECT_FALSE(model.is_legal_partition(0, 3));   // not a power of two
  EXPECT_TRUE(model.is_legal_partition(0, 6));    // full machine
  EXPECT_FALSE(model.is_legal_partition(2, 6));   // full machine starts at 0
}

}  // namespace
}  // namespace coral
