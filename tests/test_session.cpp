#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corrupt.hpp"

#include "coral/common/error.hpp"
#include "coral/context.hpp"
#include "coral/fleet/fingerprint.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/stream/session.hpp"

namespace coral {
namespace {

// ---------------------------------------------------------------------------
// Fixtures: exact-content logs serialized to binary-v2 bytes, so parity
// assertions can compare the session's decode against the offline readers
// byte for byte.

ras::RasLog make_ras_log(std::size_t n) {
  const ras::Catalog& cat = ras::default_catalog();
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  std::vector<ras::RasEvent> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    ras::RasEvent& ev = events[i];
    ev.event_time = base + static_cast<Usec>(i) * kUsecPerMin;
    ev.location = bgp::Location::midplane(static_cast<int>(i % 80));
    ev.errcode = i % 2 == 0 ? cat.fatal_ids()[i % cat.fatal_ids().size()]
                            : cat.nonfatal_ids()[i % cat.nonfatal_ids().size()];
    ev.severity = i % 2 == 0 ? ras::Severity::Fatal : ras::Severity::Info;
    ev.serial = static_cast<std::uint32_t>(i);
  }
  return ras::RasLog(std::move(events), cat);
}

joblog::JobLog make_job_log(std::size_t n) {
  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  joblog::JobLog log;
  for (std::size_t i = 0; i < n; ++i) {
    joblog::JobRecord j;
    j.job_id = static_cast<std::int64_t>(1000 + i);
    j.exec_id = log.intern_exec("/bin/app" + std::to_string(i % 7));
    j.user_id = log.intern_user("user" + std::to_string(i % 5));
    j.project_id = log.intern_project("proj" + std::to_string(i % 3));
    j.start_time = base + static_cast<Usec>(i) * 10 * kUsecPerMin;
    j.queue_time = j.start_time - 5 * kUsecPerMin;
    j.end_time = j.start_time + 30 * kUsecPerMin;
    j.partition = bgp::Partition(static_cast<int>(i % 40) * 2, 2);
    j.exit_code = i % 4 == 0 ? 137 : 0;
    log.append(j);
  }
  log.finalize();
  return log;
}

std::string ras_bytes(const ras::RasLog& log) {
  std::stringstream buf;
  ras::write_binary(buf, log);
  return buf.str();
}

std::string job_bytes(const joblog::JobLog& log) {
  std::stringstream buf;
  joblog::write_binary(buf, log);
  return buf.str();
}

/// What the offline batch engine says about one (possibly damaged) byte
/// pair: the ground truth every session run must reproduce exactly.
struct Offline {
  ras::RasLog ras;
  joblog::JobLog jobs;
  IngestReport ras_rep, job_rep;
  std::uint64_t result_fp = 0;
  std::uint64_t log_fp = 0;
};

Offline offline_run(const std::string& ras_image, const std::string& job_image,
                    ParseMode mode) {
  Offline off;
  std::istringstream ras_in(ras_image), job_in(job_image);
  off.ras = ras::read_binary(ras_in, ras::default_catalog(), mode, &off.ras_rep);
  off.jobs = joblog::read_binary(job_in, mode, &off.job_rep);
  off.log_fp = fleet::log_fingerprint(off.ras, off.jobs);
  off.result_fp =
      fleet::result_fingerprint(core::run_coanalysis(off.ras, off.jobs));
  return off;
}

/// Feed both byte images through a session in a seed-derived random
/// interleaving: random chunk sizes, random source order, occasional pumps.
stream::SessionResult session_run(const std::string& ras_image,
                                  const std::string& job_image, ParseMode mode,
                                  std::uint64_t seed) {
  stream::SessionConfig cfg;
  cfg.mode = mode;
  stream::Session session("t" + std::to_string(seed), cfg, Context{});
  Rng rng(seed);
  std::string_view feeds[2] = {ras_image, job_image};
  while (!feeds[0].empty() || !feeds[1].empty()) {
    const std::size_t pick =
        feeds[0].empty() ? 1 : (feeds[1].empty() ? 0 : rng.uniform_index(2));
    std::string_view& rest = feeds[pick];
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_index(4096), rest.size());
    const auto src = pick == 0 ? stream::Source::Ras : stream::Source::Jobs;
    EXPECT_EQ(session.feed(src, rest.substr(0, n)), stream::Admission::Accepted)
        << "seed " << seed;
    rest.remove_prefix(n);
    if (rng.uniform_index(4) == 0) session.pump();
  }
  return session.finalize();
}

void expect_reports_equal(const IngestReport& got, const IngestReport& want,
                          std::uint64_t seed) {
  EXPECT_EQ(got.records_ok(), want.records_ok()) << "seed " << seed;
  EXPECT_EQ(got.total_malformed(), want.total_malformed()) << "seed " << seed;
  for (int r = 0; r < static_cast<int>(kIngestReasonCount); ++r) {
    const auto reason = static_cast<IngestReason>(r);
    EXPECT_EQ(got.malformed(reason), want.malformed(reason))
        << "seed " << seed << " reason " << r;
  }
}

// ---------------------------------------------------------------------------
// The parity pin: any interleaving of feeds must be byte-identical to the
// offline batch engine on the same logs.

TEST(SessionParity, RandomInterleavingsMatchOfflineEngine) {
  const std::string ras_image = ras_bytes(make_ras_log(700));
  const std::string job_image = job_bytes(make_job_log(300));
  const Offline off = offline_run(ras_image, job_image, ParseMode::Strict);
  ASSERT_EQ(off.ras.size(), 700u);
  ASSERT_EQ(off.jobs.size(), 300u);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    stream::SessionResult got;
    ASSERT_NO_FATAL_FAILURE(
        got = session_run(ras_image, job_image, ParseMode::Strict, seed));
    EXPECT_EQ(fleet::log_fingerprint(got.ras, got.jobs), off.log_fp)
        << "seed " << seed;
    EXPECT_EQ(fleet::result_fingerprint(got.analysis), off.result_fp)
        << "seed " << seed;
    expect_reports_equal(got.ras_report, off.ras_rep, seed);
    expect_reports_equal(got.jobs_report, off.job_rep, seed);
  }
}

TEST(SessionParity, LenientCorruptionAccountingMatchesOffline) {
  const std::string ras_clean = ras_bytes(make_ras_log(900));
  const std::string job_clean = job_bytes(make_job_log(400));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng corrupt_rng(seed);
    const std::string ras_bad = testing::flip_bits(ras_clean, corrupt_rng, 5);
    const std::string job_bad =
        testing::flip_bits(testing::truncate_bytes(job_clean, corrupt_rng, 0.4),
                           corrupt_rng, 2);
    const Offline off = offline_run(ras_bad, job_bad, ParseMode::Lenient);
    stream::SessionResult got;
    ASSERT_NO_FATAL_FAILURE(
        got = session_run(ras_bad, job_bad, ParseMode::Lenient, 100 + seed));
    EXPECT_EQ(fleet::log_fingerprint(got.ras, got.jobs), off.log_fp)
        << "seed " << seed;
    EXPECT_EQ(fleet::result_fingerprint(got.analysis), off.result_fp)
        << "seed " << seed;
    expect_reports_equal(got.ras_report, off.ras_rep, seed);
    expect_reports_equal(got.jobs_report, off.job_rep, seed);
  }
}

TEST(SessionParity, ConcurrentFeedersWithBackgroundPumping) {
  const std::string ras_image = ras_bytes(make_ras_log(1200));
  const std::string job_image = job_bytes(make_job_log(500));
  const Offline off = offline_run(ras_image, job_image, ParseMode::Strict);
  stream::SessionConfig cfg;
  cfg.mode = ParseMode::Strict;
  stream::Session session("concurrent", cfg, Context{});
  auto feeder = [&session](stream::Source src, const std::string& image,
                           std::uint64_t seed) {
    Rng rng(seed);
    std::string_view rest = image;
    while (!rest.empty()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.uniform_index(2048), rest.size());
      while (session.feed(src, rest.substr(0, n)) != stream::Admission::Accepted) {
        session.pump();
      }
      rest.remove_prefix(n);
    }
  };
  std::thread ras_thread(feeder, stream::Source::Ras, std::cref(ras_image), 11);
  std::thread job_thread(feeder, stream::Source::Jobs, std::cref(job_image), 22);
  // A third participant pumps and snapshots while the feeders run — the
  // live-counter path the /metrics scraper exercises in production.
  std::thread pumper([&session] {
    for (int i = 0; i < 50; ++i) {
      session.pump();
      (void)session.snapshot();
    }
  });
  ras_thread.join();
  job_thread.join();
  pumper.join();
  const stream::SessionResult got = session.finalize();
  EXPECT_EQ(fleet::log_fingerprint(got.ras, got.jobs), off.log_fp);
  EXPECT_EQ(fleet::result_fingerprint(got.analysis), off.result_fp);
}

// ---------------------------------------------------------------------------
// Admission control: quotas, rejection, shedding — with exact accounting.

TEST(SessionAdmission, RejectsOverQuotaUntilPumped) {
  stream::SessionConfig cfg;
  cfg.queue_bytes = 1024;
  stream::Session session("quota", cfg, Context{});
  const std::string chunk(800, 'x');
  EXPECT_EQ(session.feed(stream::Source::Ras, chunk), stream::Admission::Accepted);
  EXPECT_EQ(session.feed(stream::Source::Ras, chunk), stream::Admission::Rejected);
  stream::SessionStats s = session.snapshot();
  EXPECT_EQ(s.bytes_accepted, 800u);
  EXPECT_EQ(s.backlog_bytes, 800u);
  session.pump();
  // Lenient garbage is held as a potential partial frame, not consumed —
  // but it left the queue, so the quota admits the next chunk.
  EXPECT_EQ(session.feed(stream::Source::Ras, chunk), stream::Admission::Accepted);
  EXPECT_EQ(session.snapshot().bytes_accepted, 1600u);
}

TEST(SessionAdmission, OversizedChunkAdmittedOnEmptyBacklog) {
  stream::SessionConfig cfg;
  cfg.queue_bytes = 64;
  stream::Session session("oversized", cfg, Context{});
  // Larger than the whole quota, but the backlog is empty: admitting it is
  // the only way a lossless feeder of big chunks can ever make progress.
  EXPECT_EQ(session.feed(stream::Source::Jobs, std::string(1000, 'y')),
            stream::Admission::Accepted);
  EXPECT_EQ(session.feed(stream::Source::Jobs, "more"),
            stream::Admission::Rejected);
}

TEST(SessionAdmission, ShedPolicyCountsExactly) {
  obs::Collector obs;
  stream::SessionConfig cfg;
  cfg.queue_bytes = 1024;
  cfg.overflow = stream::SessionConfig::Overflow::Shed;
  Context ctx;
  ctx.with_obs(&obs);
  stream::Session session("shed", cfg, ctx);
  ASSERT_EQ(session.feed(stream::Source::Ras, std::string(1000, 'a')),
            stream::Admission::Accepted);
  EXPECT_EQ(session.feed(stream::Source::Ras, std::string(300, 'b')),
            stream::Admission::Shed);
  EXPECT_EQ(session.feed(stream::Source::Ras, std::string(50, 'c')),
            stream::Admission::Shed);
  const stream::SessionStats s = session.snapshot();
  EXPECT_EQ(s.bytes_accepted, 1000u);
  EXPECT_EQ(s.bytes_shed, 350u);
  EXPECT_EQ(s.chunks_shed, 2u);
  // The obs counters tell the same story.
  const obs::Snapshot snap = obs.snapshot();
  EXPECT_EQ(snap.counter_value("session.bytes.accepted"), 1000u);
  EXPECT_EQ(snap.counter_value("session.bytes.shed"), 350u);
}

// ---------------------------------------------------------------------------
// Lifecycle edges.

TEST(SessionLifecycle, FeedAfterFinalizeIsRejected) {
  stream::Session session("done", {}, Context{});
  const std::string ras_image = ras_bytes(make_ras_log(64));
  ASSERT_EQ(session.feed(stream::Source::Ras, ras_image), stream::Admission::Accepted);
  ASSERT_EQ(session.feed(stream::Source::Jobs, job_bytes(make_job_log(32))),
            stream::Admission::Accepted);
  (void)session.finalize();
  EXPECT_EQ(session.feed(stream::Source::Ras, ras_image), stream::Admission::Rejected);
  EXPECT_TRUE(session.snapshot().finalized);
}

TEST(SessionLifecycle, DoubleFinalizeThrows) {
  stream::Session session("twice", {}, Context{});
  ASSERT_EQ(session.feed(stream::Source::Ras, ras_bytes(make_ras_log(64))),
            stream::Admission::Accepted);
  ASSERT_EQ(session.feed(stream::Source::Jobs, job_bytes(make_job_log(32))),
            stream::Admission::Accepted);
  (void)session.finalize();
  EXPECT_THROW((void)session.finalize(), InvalidArgument);
}

TEST(SessionLifecycle, StrictModeBadMagicThrowsOnPump) {
  stream::SessionConfig cfg;
  cfg.mode = ParseMode::Strict;
  stream::Session session("strict", cfg, Context{});
  ASSERT_EQ(session.feed(stream::Source::Ras, "NOTALOGX and then some"),
            stream::Admission::Accepted);
  EXPECT_THROW(session.pump(), ParseError);
}

TEST(SessionLifecycle, StrictModeTruncatedHeaderThrowsAtFinalize) {
  stream::SessionConfig cfg;
  cfg.mode = ParseMode::Strict;
  stream::Session session("stub", cfg, Context{});
  ASSERT_EQ(session.feed(stream::Source::Jobs, "CJ"), stream::Admission::Accepted);
  session.pump();  // 2 bytes: not enough to judge the header yet
  EXPECT_THROW((void)session.finalize(), ParseError);
}

TEST(SessionLifecycle, SnapshotTracksLiveProgress) {
  stream::Session session("live", {}, Context{});
  const std::string image = ras_bytes(make_ras_log(256));
  const std::string jobs_image = job_bytes(make_job_log(64));
  ASSERT_EQ(session.feed(stream::Source::Ras, image), stream::Admission::Accepted);
  stream::SessionStats before = session.snapshot();
  EXPECT_EQ(before.backlog_bytes, image.size());
  EXPECT_EQ(before.ras_records, 0u);
  EXPECT_FALSE(before.finalized);
  session.flush();
  stream::SessionStats after = session.snapshot();
  EXPECT_EQ(after.backlog_bytes, 0u);
  EXPECT_EQ(after.ras_records, 256u);
  EXPECT_EQ(after.bytes_decoded, image.size());
  ASSERT_EQ(session.feed(stream::Source::Jobs, jobs_image), stream::Admission::Accepted);
  const stream::SessionResult r = session.finalize();
  EXPECT_EQ(r.ras.size(), 256u);
  EXPECT_EQ(r.jobs.size(), 64u);
  EXPECT_TRUE(session.snapshot().finalized);
}

TEST(SessionLifecycle, EmptySessionPropagatesEngineEmptyInputError) {
  // Parity cuts both ways: the offline engine refuses an empty job log
  // (there is nothing to rank vulnerability over), so an empty session's
  // finalize surfaces the same error instead of inventing a result.
  stream::Session session("empty", {}, Context{});
  EXPECT_THROW((void)session.finalize(), InvalidArgument);
}

}  // namespace
}  // namespace coral
