// Tests for the adaptive-threshold filter baseline and the bootstrap CIs.
#include <gtest/gtest.h>

#include "coral/common/error.hpp"
#include "coral/filter/adaptive.hpp"
#include "coral/stats/bootstrap.hpp"
#include "coral/stats/descriptive.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

using filter::AdaptiveFilterConfig;
using filter::AdaptiveThresholds;
using ras::Catalog;
using ras::RasEvent;

RasEvent make_event(const char* code, double t_sec, const char* where) {
  RasEvent ev;
  ev.errcode = *Catalog::instance().find(code);
  ev.severity = ras::Severity::Fatal;
  ev.event_time =
      TimePoint::from_calendar(2009, 3, 1) + static_cast<Usec>(t_sec * kUsecPerSec);
  ev.location = bgp::Location::parse(where);
  return ev;
}

TEST(AdaptiveFilter, LearnsKneeFromBimodalGaps) {
  // Storm gaps ~20 s, independent-event gaps ~1 day: the knee is obvious.
  std::vector<RasEvent> events;
  for (int burst = 0; burst < 6; ++burst) {
    const double t0 = burst * 86400.0;
    for (int i = 0; i < 5; ++i) {
      events.push_back(
          make_event(ras::codes::kRasStormFatal, t0 + i * 20.0, "R00-M0-N00-J04"));
    }
  }
  const auto thresholds = filter::learn_adaptive_thresholds(events, {});
  const auto code = *Catalog::instance().find(ras::codes::kRasStormFatal);
  ASSERT_TRUE(thresholds.by_code.count(code));
  const double t_sec =
      static_cast<double>(thresholds.by_code.at(code)) / static_cast<double>(kUsecPerSec);
  EXPECT_GT(t_sec, 20.0);    // above the storm gap
  EXPECT_LT(t_sec, 7200.0);  // clamped well below the day gap
}

TEST(AdaptiveFilter, FallsBackWithTooFewSamples) {
  std::vector<RasEvent> events = {
      make_event(ras::codes::kDdrController, 0, "R00-M0-N04"),
      make_event(ras::codes::kDdrController, 100, "R00-M0-N04"),
  };
  AdaptiveFilterConfig config;
  config.min_samples = 8;
  const auto thresholds = filter::learn_adaptive_thresholds(events, config);
  EXPECT_TRUE(thresholds.by_code.empty());
  EXPECT_EQ(thresholds.threshold_for(events[0].errcode), config.fallback);
}

TEST(AdaptiveFilter, FiltersLikeConstantOnLearnedCode) {
  std::vector<RasEvent> events;
  for (int burst = 0; burst < 6; ++burst) {
    const double t0 = burst * 86400.0;
    for (int i = 0; i < 5; ++i) {
      events.push_back(
          make_event(ras::codes::kRasStormFatal, t0 + i * 20.0, "R00-M0-N00-J04"));
    }
  }
  const auto thresholds = filter::learn_adaptive_thresholds(events, {});
  const auto groups = filter::adaptive_temporal_filter(
      events, filter::singleton_groups(events.size()), thresholds);
  EXPECT_EQ(groups.size(), 6u);  // one group per burst
}

TEST(AdaptiveFilter, EndToEndOnSyntheticLog) {
  const synth::SynthResult data = synth::generate(synth::small_scenario(91, 21));
  const auto events = data.ras.fatal_events();
  const auto thresholds = filter::learn_adaptive_thresholds(events, {});
  EXPECT_GT(thresholds.by_code.size(), 3u);  // storms produce clear knees
  const auto adaptive = filter::adaptive_temporal_filter(
      events, filter::singleton_groups(events.size()), thresholds);
  const auto constant =
      filter::temporal_filter(events, filter::singleton_groups(events.size()), {});
  // The two temporal filters should land in the same ballpark.
  const double ratio =
      static_cast<double>(adaptive.size()) / static_cast<double>(constant.size());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Bootstrap, MeanCiCoversTruth) {
  Rng rng(5);
  std::vector<double> xs(500);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  const auto ci = stats::bootstrap_ci(
      xs, [](std::span<const double> s) { return stats::mean(s); }, {});
  EXPECT_NEAR(ci.point, 10.0, 0.4);
  EXPECT_TRUE(ci.contains(ci.point));
  EXPECT_LT(ci.lo, ci.hi);
  EXPECT_TRUE(ci.contains(10.0));
  // Interval width ~ 2*1.96*sigma/sqrt(n) ~ 0.35.
  EXPECT_LT(ci.hi - ci.lo, 0.8);
}

TEST(Bootstrap, DeterministicInSeed) {
  Rng rng(6);
  std::vector<double> xs(100);
  for (double& x : xs) x = rng.exponential(5.0);
  const auto a = stats::bootstrap_ci(
      xs, [](std::span<const double> s) { return stats::mean(s); }, {});
  const auto b = stats::bootstrap_ci(
      xs, [](std::span<const double> s) { return stats::mean(s); }, {});
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, WeibullShapeCiCoversTruth) {
  Rng rng(7);
  std::vector<double> xs(800);
  for (double& x : xs) x = rng.weibull(0.5, 1000.0);
  const auto ci = stats::bootstrap_weibull_shape(xs);
  EXPECT_TRUE(ci.contains(0.5)) << "[" << ci.lo << ", " << ci.hi << "]";
  EXPECT_LT(ci.hi, 1.0);  // shape < 1 with confidence: the Table IV claim
}

TEST(Bootstrap, RejectsDegenerateInputs) {
  const std::vector<double> xs = {1.0, 2.0};
  stats::BootstrapConfig bad;
  bad.resamples = 3;
  EXPECT_THROW(stats::bootstrap_ci(
                   xs, [](std::span<const double> s) { return stats::mean(s); }, bad),
               InvalidArgument);
  EXPECT_THROW(stats::bootstrap_ci(std::vector<double>{},
                                   [](std::span<const double>) { return 0.0; }, {}),
               InvalidArgument);
}

}  // namespace
}  // namespace coral
