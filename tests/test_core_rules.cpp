// Deterministic rule tests for the co-analysis core: hand-built log pairs
// exercising matching (§IV), identification (§IV-A), classification (§IV-B)
// and job-related filtering (§IV-C).
#include <gtest/gtest.h>

#include "coral/core/pipeline.hpp"

namespace coral::core {
namespace {

using filter::FilterPipelineResult;
using ras::Catalog;

const TimePoint kT0 = TimePoint::from_calendar(2009, 3, 1);

TimePoint at_hours(double h) { return kT0 + static_cast<Usec>(h * kUsecPerHour); }

/// Tiny scenario builder: accumulates jobs and fatal records, then runs any
/// subset of the pipeline.
struct Scenario {
  joblog::JobLog jobs;
  ras::RasLog ras;

  std::int64_t next_id = 1;

  std::int64_t job(const char* exec, double start_h, double end_h, const char* part,
                   const char* user = "u1") {
    joblog::JobRecord j;
    j.job_id = next_id++;
    j.exec_id = jobs.intern_exec(exec);
    j.user_id = jobs.intern_user(user);
    j.project_id = jobs.intern_project("p1");
    j.queue_time = at_hours(start_h - 0.05);
    j.start_time = at_hours(start_h);
    j.end_time = at_hours(end_h);
    j.partition = bgp::Partition::parse(part);
    jobs.append(j);
    return j.job_id;
  }

  void fatal(const char* code, double t_h, const char* where) {
    ras::RasEvent ev;
    ev.errcode = *Catalog::instance().find(code);
    ev.severity = ras::Severity::Fatal;
    ev.event_time = at_hours(t_h);
    ev.location = bgp::Location::parse(where);
    ras.append(ev);
  }

  CoAnalysisResult run(CoAnalysisConfig config = {}) {
    jobs.finalize();
    ras.finalize();
    return run_coanalysis(ras, jobs, config);
  }
};

TEST(Matching, MatchesJobEndingAtEventOnCoveredLocation) {
  Scenario s;
  const auto id = s.job("app", 0.0, 2.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.0, "R00-M0-N03-J08");
  const auto r = s.run();
  ASSERT_EQ(r.matches.interruptions.size(), 1u);
  EXPECT_EQ(s.jobs[r.matches.interruptions[0].job].job_id, id);
}

TEST(Matching, IgnoresEventsOutsideWindow) {
  Scenario s;
  s.job("app", 0.0, 2.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.5, "R00-M0-N03-J08");  // 30 min after end
  const auto r = s.run();
  EXPECT_TRUE(r.matches.interruptions.empty());
}

TEST(Matching, IgnoresEventsAtOtherLocations) {
  Scenario s;
  s.job("app", 0.0, 2.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.0, "R05-M1-N03-J08");
  const auto r = s.run();
  EXPECT_TRUE(r.matches.interruptions.empty());
}

TEST(Matching, RackLevelEventMatchesJobOnEitherMidplane) {
  Scenario s;
  s.job("app", 0.0, 2.0, "R00-M1");
  s.fatal("mc_palomino_fatal_00", 2.0, "R00");  // rack-level location
  const auto r = s.run();
  EXPECT_EQ(r.matches.interruptions.size(), 1u);
}

TEST(Matching, OneEventCanInterruptMultipleJobs) {
  Scenario s;
  s.job("app1", 0.0, 2.0, "R00-M0");
  s.job("app2", 0.5, 2.001, "R10-M0");
  // Two records of the same propagating code within the spatial window form
  // one group with members at both locations.
  s.fatal(ras::codes::kCiodHungProxy, 2.0, "R00-M0-N01-I00");
  s.fatal(ras::codes::kCiodHungProxy, 2.001, "R10-M0-N01-I00");
  const auto r = s.run();
  ASSERT_EQ(r.filtered.groups.size(), 1u);
  EXPECT_EQ(r.matches.jobs_by_group[0].size(), 2u);
  EXPECT_EQ(r.matches.interruptions.size(), 2u);
}

TEST(Matching, JobMatchedToAtMostOneGroup) {
  Scenario s;
  s.job("app", 0.0, 2.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.0, "R00-M0-N03-J08");
  s.fatal(ras::codes::kDdrController, 2.0, "R00-M0-N04");
  const auto r = s.run();
  ASSERT_EQ(r.filtered.groups.size(), 2u);
  EXPECT_EQ(r.matches.interruptions.size(), 1u);  // one job, one interruption
}

TEST(Identification, CasesClassifiedPerEvent) {
  Scenario s;
  s.job("killed", 0.0, 2.0, "R00-M0");
  s.job("survivor", 3.0, 8.0, "R01-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.0, "R00-M0-N03-J08");   // case 1
  s.fatal(ras::codes::kBulkPowerFatal, 5.0, "R01");             // case 3
  s.fatal("diags_lattice_fail_00", 5.0, "R30-M0-N02");          // case 2
  const auto r = s.run();
  ASSERT_EQ(r.identification.event_cases.size(), 3u);
  EXPECT_EQ(r.identification.event_cases[0], EventCase::InterruptsJob);
  EXPECT_EQ(r.identification.event_cases[1], EventCase::JobSurvives);
  EXPECT_EQ(r.identification.event_cases[2], EventCase::NoJobAtLocation);
}

TEST(Identification, VerdictRules) {
  Scenario s;
  // Code A: case 1 + case 2 -> interruption-related.
  s.job("k1", 0.0, 2.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.0, "R00-M0-N03-J08");
  s.fatal(ras::codes::kRasStormFatal, 50.0, "R30-M0-N03-J08");  // idle location
  // Code B: case 3 only -> non-fatal to jobs.
  s.job("s1", 10.0, 14.0, "R01-M0");
  s.fatal(ras::codes::kTorusFatalSum, 12.0, "R01-M0-N00-J04");
  // Code C: case 2 only -> undetermined.
  s.fatal("diags_lattice_fail_01", 60.0, "R31-M0-N02");
  const auto r = s.run();
  EXPECT_EQ(r.identification.verdicts.at(*Catalog::instance().find(ras::codes::kRasStormFatal)),
            ErrcodeVerdict::InterruptionRelated);
  EXPECT_EQ(r.identification.verdicts.at(*Catalog::instance().find(ras::codes::kTorusFatalSum)),
            ErrcodeVerdict::NonFatalToJobs);
  EXPECT_EQ(r.identification.verdicts.at(*Catalog::instance().find("diags_lattice_fail_01")),
            ErrcodeVerdict::Undetermined);
}

TEST(Identification, ConflictingCasesAreUndetermined) {
  Scenario s;
  // Same code interrupts one job and spares another: both case 1 and case 3.
  s.job("k1", 0.0, 2.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 2.0, "R00-M0-N03-J08");
  s.job("s1", 10.0, 14.0, "R01-M0");
  s.fatal(ras::codes::kRasStormFatal, 12.0, "R01-M0-N00-J04");
  const auto r = s.run();
  EXPECT_EQ(r.identification.verdicts.at(*Catalog::instance().find(ras::codes::kRasStormFatal)),
            ErrcodeVerdict::Undetermined);
}

TEST(Classification, NeverWithJobIsSystem) {
  Scenario s;
  s.fatal("diags_lattice_fail_02", 5.0, "R30-M0-N02");
  s.job("unrelated", 0.0, 1.0, "R00-M0");
  const auto r = s.run();
  const auto& cc =
      r.classification.by_code.at(*Catalog::instance().find("diags_lattice_fail_02"));
  EXPECT_EQ(cc.cause, Cause::SystemFailure);
  EXPECT_EQ(cc.rule, CauseRule::NeverWithJob);
}

TEST(Classification, RepeatSameLocationIsSystem) {
  Scenario s;
  // Two different executables killed at the same fault location.
  s.job("alpha", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 1.0, "R00-M0-N04");
  s.job("beta", 2.0, 3.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 3.0, "R00-M0-N04");
  const auto r = s.run();
  const auto& cc =
      r.classification.by_code.at(*Catalog::instance().find(ras::codes::kDdrController));
  EXPECT_EQ(cc.cause, Cause::SystemFailure);
  EXPECT_EQ(cc.rule, CauseRule::RepeatSameLocation);
}

TEST(Classification, FollowsResubmissionIsApplication) {
  Scenario s;
  CoAnalysisConfig config;
  config.classification.min_follow_evidence = 1;
  // The Fig. 2 pattern.
  s.job("buggy", 0.0, 1.0, "R00-M0");
  s.fatal("_bgp_err_out_of_memory", 1.0, "R00-M0-N03-J08");
  s.job("innocent", 1.5, 4.0, "R00-M0");  // survives on the old nodes
  s.job("buggy", 2.0, 3.0, "R01-M0");     // resubmitted elsewhere, dies again
  s.fatal("_bgp_err_out_of_memory", 3.0, "R01-M0-N05-J11");
  const auto r = s.run(config);
  const auto& cc =
      r.classification.by_code.at(*Catalog::instance().find("_bgp_err_out_of_memory"));
  EXPECT_EQ(cc.cause, Cause::ApplicationError);
  EXPECT_EQ(cc.rule, CauseRule::FollowsResubmission);
}

TEST(Classification, NoSurvivorMeansNotFollowsResubmission) {
  Scenario s;
  CoAnalysisConfig config;
  config.classification.min_follow_evidence = 1;
  // Same exec dies twice at different locations but nothing ever ran on the
  // first partition again -> cannot rule out bad nodes; falls to fallback.
  s.job("buggy", 0.0, 1.0, "R00-M0");
  s.fatal("_bgp_err_out_of_memory", 1.0, "R00-M0-N03-J08");
  s.job("buggy", 2.0, 3.0, "R01-M0");
  s.fatal("_bgp_err_out_of_memory", 3.0, "R01-M0-N05-J11");
  const auto r = s.run(config);
  const auto& cc =
      r.classification.by_code.at(*Catalog::instance().find("_bgp_err_out_of_memory"));
  EXPECT_NE(cc.rule, CauseRule::FollowsResubmission);
}

TEST(Classification, ResubmissionGapTooLargeIsNotFollowing) {
  Scenario s;
  CoAnalysisConfig config;
  config.classification.min_follow_evidence = 1;
  s.job("buggy", 0.0, 1.0, "R00-M0");
  s.fatal("_bgp_err_out_of_memory", 1.0, "R00-M0-N03-J08");
  s.job("innocent", 1.5, 4.0, "R00-M0");
  s.job("buggy", 200.0, 201.0, "R01-M0");  // > follow_gap (3 days) later
  s.fatal("_bgp_err_out_of_memory", 201.0, "R01-M0-N05-J11");
  const auto r = s.run(config);
  const auto& cc =
      r.classification.by_code.at(*Catalog::instance().find("_bgp_err_out_of_memory"));
  EXPECT_NE(cc.rule, CauseRule::FollowsResubmission);
}

TEST(JobFilter, RemovesSystemRedundancyAtSameLocation) {
  Scenario s;
  // Persistent fault at one location kills three different jobs in a row;
  // nothing healthy runs there in between.
  s.job("a", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 1.0, "R00-M0-N04");
  s.job("b", 2.0, 2.5, "R00-M0");
  s.fatal(ras::codes::kDdrController, 2.5, "R00-M0-N04");
  s.job("c", 3.0, 3.5, "R00-M0");
  s.fatal(ras::codes::kDdrController, 3.5, "R00-M0-N04");
  const auto r = s.run();
  ASSERT_EQ(r.filtered.groups.size(), 3u);
  EXPECT_EQ(r.job_filter.removed_count(), 2u);  // 2nd and 3rd are redundant
  EXPECT_EQ(r.job_filter.kept.size(), 1u);
  // Transitivity: both point back to the first group (directly or via it).
  for (const auto& [removed, anchor] : r.job_filter.redundant_to) {
    EXPECT_EQ(anchor, 0u);
    (void)removed;
  }
}

TEST(JobFilter, SurvivorInBetweenBreaksRedundancy) {
  Scenario s;
  s.job("a", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 1.0, "R00-M0-N04");
  s.job("healthy", 2.0, 3.0, "R00-M0");  // completes fine on the same nodes
  s.job("b", 4.0, 4.5, "R00-M0");
  s.fatal(ras::codes::kDdrController, 4.5, "R00-M0-N04");
  const auto r = s.run();
  EXPECT_EQ(r.job_filter.removed_count(), 0u);  // repaired in between
}

TEST(JobFilter, AppErrorRedundancyFollowsExecFile) {
  Scenario s;
  CoAnalysisConfig config;
  config.classification.min_follow_evidence = 1;
  // Buggy exec killed at two different locations; a survivor ran on the
  // first partition (so the code is classified application), and the second
  // kill of the same exec is job-related redundancy.
  s.job("buggy", 0.0, 1.0, "R00-M0");
  s.fatal("_bgp_err_out_of_memory", 1.0, "R00-M0-N03-J08");
  s.job("innocent", 1.5, 4.0, "R00-M0");
  s.job("buggy", 2.0, 3.0, "R01-M0");
  s.fatal("_bgp_err_out_of_memory", 3.0, "R01-M0-N05-J11");
  const auto r = s.run(config);
  EXPECT_EQ(r.job_filter.removed_count(), 1u);
}

TEST(JobFilter, DifferentLocationsSystemNotRedundant) {
  Scenario s;
  s.job("a", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 1.0, "R00-M0-N04");
  s.job("b", 2.0, 2.5, "R20-M1");
  s.fatal(ras::codes::kDdrController, 2.5, "R20-M1-N09");
  const auto r = s.run();
  EXPECT_EQ(r.job_filter.removed_count(), 0u);  // two independent faults
}

TEST(JobFilter, HorizonLimitsChains) {
  Scenario s;
  CoAnalysisConfig config;
  config.job_filter.horizon = 1 * kUsecPerDay;
  s.job("a", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 1.0, "R00-M0-N04");
  s.job("b", 100.0, 100.5, "R00-M0");  // 4 days later
  s.fatal(ras::codes::kDdrController, 100.5, "R00-M0-N04");
  const auto r = s.run(config);
  EXPECT_EQ(r.job_filter.removed_count(), 0u);
}

TEST(Propagation, DisjointVictimsCountAsSpatialPropagation) {
  Scenario s;
  s.job("app1", 0.0, 2.0, "R00-M0");
  s.job("app2", 0.5, 2.001, "R10-M0");
  s.fatal(ras::codes::kScriptError, 2.0, "R00-M0-N01-I00");
  s.fatal(ras::codes::kScriptError, 2.001, "R10-M0-N01-I00");
  const auto r = s.run();
  ASSERT_EQ(r.propagation.propagating_groups.size(), 1u);
  EXPECT_EQ(r.propagation.propagating_codes.size(), 1u);
  EXPECT_TRUE(r.propagation.propagating_codes.count(
      *Catalog::instance().find(ras::codes::kScriptError)));
}

TEST(Propagation, SameLocationChainIsNotSpatial) {
  Scenario s;
  s.job("a", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kDdrController, 1.0, "R00-M0-N04");
  s.job("b", 2.0, 2.5, "R00-M0");
  s.fatal(ras::codes::kDdrController, 2.5, "R00-M0-N04");
  const auto r = s.run();
  EXPECT_TRUE(r.propagation.propagating_groups.empty());
}

TEST(Propagation, SamePartitionResubmissionsCounted) {
  Scenario s;
  s.job("app", 0.0, 1.0, "R00-M0");
  s.fatal(ras::codes::kRasStormFatal, 1.0, "R00-M0-N03-J08");
  s.job("app", 2.0, 5.0, "R00-M0");  // resubmitted to the same partition
  const auto r = s.run();
  EXPECT_EQ(r.propagation.resubmissions_after_interruption, 1u);
  EXPECT_EQ(r.propagation.resubmissions_same_partition, 1u);
  EXPECT_DOUBLE_EQ(r.propagation.same_partition_fraction(), 1.0);
}

}  // namespace
}  // namespace coral::core
