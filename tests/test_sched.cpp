#include <gtest/gtest.h>

#include "coral/common/error.hpp"
#include "coral/sched/policy.hpp"
#include "coral/sched/pool.hpp"

namespace coral::sched {
namespace {

using bgp::Partition;

TEST(PartitionPool, AcquireReleaseRoundTrip) {
  PartitionPool pool;
  const Partition p = Partition::parse("R00");
  EXPECT_TRUE(pool.is_free(p));
  pool.acquire(p);
  EXPECT_FALSE(pool.is_free(p));
  EXPECT_TRUE(pool.midplane_busy(0));
  EXPECT_TRUE(pool.midplane_busy(1));
  EXPECT_FALSE(pool.midplane_busy(2));
  pool.release(p);
  EXPECT_TRUE(pool.is_free(p));
  EXPECT_EQ(pool.busy_count(), 0u);
}

TEST(PartitionPool, DoubleAcquireThrows) {
  PartitionPool pool;
  pool.acquire(Partition::parse("R00-M0"));
  EXPECT_THROW(pool.acquire(Partition::parse("R00-M0")), InvalidArgument);
  // Overlapping partition also fails.
  EXPECT_THROW(pool.acquire(Partition::parse("R00")), InvalidArgument);
}

TEST(PartitionPool, ReleaseFreeThrows) {
  PartitionPool pool;
  EXPECT_THROW(pool.release(Partition::parse("R00-M0")), InvalidArgument);
}

TEST(PartitionPool, ForceAcquireIsIdempotent) {
  PartitionPool pool;
  pool.acquire(Partition::parse("R00-M0"));
  pool.force_acquire(Partition::parse("R00"));  // overlaps the busy midplane
  EXPECT_EQ(pool.busy_count(), 2u);
  pool.release(Partition::parse("R00"));
  EXPECT_EQ(pool.busy_count(), 0u);
}

TEST(PartitionPool, FreePartitionsShrinkUnderLoad) {
  PartitionPool pool;
  EXPECT_EQ(pool.free_partitions(80).size(), 1u);
  pool.acquire(Partition::parse("R20-M0"));
  EXPECT_TRUE(pool.free_partitions(80).empty());
  EXPECT_EQ(pool.free_partitions(1).size(), 79u);
}

TEST(Policy, ShortNarrowJobsPreferMidplanes0And1) {
  SchedulerConfig config;
  const Usec short_rt = 100 * kUsecPerSec;
  EXPECT_LT(placement_rank(config, Partition(0, 1), short_rt),
            placement_rank(config, Partition(70, 1), short_rt));
  EXPECT_LT(placement_rank(config, Partition(70, 1), short_rt),
            placement_rank(config, Partition(40, 1), short_rt));
}

TEST(Policy, LongNarrowJobsPreferHighMidplanes) {
  SchedulerConfig config;
  const Usec long_rt = 8000 * kUsecPerSec;
  EXPECT_LT(placement_rank(config, Partition(70, 1), long_rt),
            placement_rank(config, Partition(0, 1), long_rt));
  EXPECT_LT(placement_rank(config, Partition(0, 1), long_rt),
            placement_rank(config, Partition(40, 1), long_rt));
}

TEST(Policy, WideJobsPreferReservedRegion) {
  SchedulerConfig config;
  const auto p32 = Partition::all_of_size(32);
  ASSERT_EQ(p32.size(), 2u);
  // The partition inside midplanes 32..63 ranks ahead of midplanes 0..31.
  EXPECT_LT(placement_rank(config, p32[1], kUsecPerHour),
            placement_rank(config, p32[0], kUsecPerHour));
}

TEST(Policy, MidSizeJobsAvoidWideRegion) {
  SchedulerConfig config;
  EXPECT_LT(placement_rank(config, Partition(8, 4), kUsecPerHour),
            placement_rank(config, Partition(40, 4), kUsecPerHour));
}

TEST(Policy, ChoosesFreePartitionOfRequestedSize) {
  SchedulerConfig config;
  PartitionPool pool;
  Rng rng(1);
  const auto part = choose_partition(config, pool, 4, kUsecPerHour, std::nullopt, rng);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->midplane_count(), 4);
}

TEST(Policy, ReturnsNulloptWhenNothingFits) {
  SchedulerConfig config;
  PartitionPool pool;
  pool.acquire(bgp::Partition(0, 80));
  Rng rng(1);
  EXPECT_FALSE(choose_partition(config, pool, 1, kUsecPerHour, std::nullopt, rng));
}

TEST(Policy, ResubmissionAffinityReusesPreviousPartition) {
  SchedulerConfig config;
  config.resubmit_same_partition_prob = 1.0;
  PartitionPool pool;
  Rng rng(2);
  const Partition prev = Partition::parse("R17");
  const auto part = choose_partition(config, pool, 2, kUsecPerHour, prev, rng);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(*part, prev);
}

TEST(Policy, AffinityIgnoredWhenPreviousBusy) {
  SchedulerConfig config;
  config.resubmit_same_partition_prob = 1.0;
  PartitionPool pool;
  const Partition prev = Partition::parse("R17");
  pool.acquire(prev);
  Rng rng(3);
  const auto part = choose_partition(config, pool, 2, kUsecPerHour, prev, rng);
  ASSERT_TRUE(part.has_value());
  EXPECT_NE(*part, prev);
}

TEST(Policy, AffinityIgnoredOnSizeChange) {
  SchedulerConfig config;
  config.resubmit_same_partition_prob = 1.0;
  PartitionPool pool;
  Rng rng(4);
  const Partition prev = Partition::parse("R17");
  const auto part = choose_partition(config, pool, 4, kUsecPerHour, prev, rng);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->midplane_count(), 4);
}

class PolicyAllSizesP : public ::testing::TestWithParam<int> {};

TEST_P(PolicyAllSizesP, AlwaysPlacesOnEmptyMachine) {
  SchedulerConfig config;
  PartitionPool pool;
  Rng rng(5);
  const auto part =
      choose_partition(config, pool, GetParam(), kUsecPerHour, std::nullopt, rng);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->midplane_count(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PolicyAllSizesP,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 48, 64, 80));

}  // namespace
}  // namespace coral::sched
