// Equality pins for the columnar hot path: the SoA fatal view against the
// AoS records, the per-midplane interval index against brute-force job
// scans, the flat-vector group matcher against the historical std::set
// collection, and the sliced CRC32 / parallel binary reader against their
// sequential references.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/parallel.hpp"
#include "coral/common/rng.hpp"
#include "coral/core/matching.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/joblog/log.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/ras/log.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

const synth::SynthResult& scenario() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(42));
  return result;
}

// ---------------------------------------------------------------------------
// FatalColumns: the SoA view must agree with the AoS records index for index.

void expect_columns_match_events(const ras::RasLog& log) {
  const ras::FatalColumns& cols = log.fatal_columns();
  const std::vector<ras::RasEvent> fatal = log.fatal_events();
  ASSERT_EQ(cols.size(), fatal.size());
  ASSERT_EQ(cols.errcode.size(), cols.size());
  ASSERT_EQ(cols.loc_key.size(), cols.size());
  ASSERT_EQ(cols.log_index.size(), cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols.event_time[i], fatal[i].event_time) << "row " << i;
    EXPECT_EQ(cols.errcode[i], fatal[i].errcode) << "row " << i;
    EXPECT_EQ(cols.loc_key[i], fatal[i].location.packed()) << "row " << i;
    // log_index maps back into the full log, and the packed key round-trips.
    const ras::RasEvent& owner = log[cols.log_index[i]];
    EXPECT_EQ(owner.severity, ras::Severity::Fatal);
    EXPECT_EQ(owner.event_time, fatal[i].event_time);
    EXPECT_EQ(bgp::Location::from_packed(cols.loc_key[i]), owner.location);
  }
}

TEST(FatalColumns, MatchesAosViewOnScenarioLog) {
  expect_columns_match_events(scenario().ras);
}

TEST(FatalColumns, OutOfOrderAppendsAreSortedConsistently) {
  const ras::Catalog& cat = ras::default_catalog();
  const TimePoint base = TimePoint::from_calendar(2009, 3, 1);
  ras::RasLog log;
  // Appends arrive shuffled in time and mixed in severity; finalize() owns
  // the sort, and the columns must mirror whatever order it settles on.
  for (std::size_t i = 0; i < 500; ++i) {
    ras::RasEvent ev;
    ev.event_time = base + static_cast<Usec>((i * 7919) % 500) * kUsecPerMin;
    ev.location = i % 3 == 0 ? bgp::Location::rack(static_cast<int>(i % 40))
                             : bgp::Location::node_card(static_cast<int>(i % 80),
                                                        static_cast<int>(i % 16));
    ev.errcode = i % 2 == 0 ? cat.fatal_ids()[i % cat.fatal_ids().size()]
                            : cat.nonfatal_ids()[i % cat.nonfatal_ids().size()];
    ev.severity = i % 2 == 0 ? ras::Severity::Fatal : ras::Severity::Warning;
    ev.serial = static_cast<std::uint32_t>(i);
    log.append(ev);
  }
  log.finalize();
  expect_columns_match_events(log);
}

TEST(FatalColumns, ConsistentAfterLenientIngestDrops) {
  std::stringstream buf;
  ras::write_binary(buf, scenario().ras);
  std::string bytes = buf.str();
  // Corrupt a payload byte in the third record block: its frame drops in
  // lenient mode, and the surviving log's columns must still mirror it.
  std::size_t p = bytes.find("CBLK");
  for (int skip = 0; skip < 4; ++skip) p = bytes.find("CBLK", p + 1);
  ASSERT_NE(p, std::string::npos);
  bytes[p + 20] = static_cast<char>(bytes[p + 20] ^ 0xFF);

  std::istringstream in(bytes);
  IngestReport rep;
  const ras::RasLog parsed =
      ras::read_binary(in, ras::default_catalog(), ParseMode::Lenient, &rep);
  ASSERT_LT(parsed.size(), scenario().ras.size());
  EXPECT_GT(rep.malformed(IngestReason::BinaryFrame), 0u);
  expect_columns_match_events(parsed);
}

// ---------------------------------------------------------------------------
// JobLog::overlapping against the all-jobs reference scan, including the
// boundary shapes the binary-searched slice must not get wrong.

std::vector<std::size_t> overlapping_reference(const joblog::JobLog& jobs,
                                               TimePoint begin, TimePoint end) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].start_time < end && jobs[i].end_time > begin) out.push_back(i);
  }
  return out;
}

TEST(Overlapping, EmptyLog) {
  joblog::JobLog empty;
  empty.finalize();
  EXPECT_TRUE(empty.overlapping(TimePoint(0), TimePoint(1'000'000)).empty());
}

TEST(Overlapping, DegenerateBeginEqualsEnd) {
  const joblog::JobLog& jobs = scenario().jobs;
  ASSERT_FALSE(jobs.empty());
  // A zero-width window [t, t): jobs straddling t still qualify under the
  // start < end, end > begin predicate, exactly as the linear scan had it.
  const TimePoint t = jobs[jobs.size() / 2].start_time + kUsecPerMin;
  EXPECT_EQ(jobs.overlapping(t, t), overlapping_reference(jobs, t, t));
}

TEST(Overlapping, AllJobsOverlap) {
  const joblog::JobLog& jobs = scenario().jobs;
  TimePoint lo = jobs[0].start_time;
  TimePoint hi = jobs[0].end_time;
  for (const joblog::JobRecord& j : jobs) {
    if (j.start_time < lo) lo = j.start_time;
    if (j.end_time > hi) hi = j.end_time;
  }
  const auto all = jobs.overlapping(lo - kUsecPerMin, hi + kUsecPerMin);
  ASSERT_EQ(all.size(), jobs.size());
  EXPECT_EQ(all, overlapping_reference(jobs, lo - kUsecPerMin, hi + kUsecPerMin));
}

TEST(Overlapping, SampledWindowsMatchReference) {
  const joblog::JobLog& jobs = scenario().jobs;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const joblog::JobRecord& a = jobs[rng.uniform_index(jobs.size())];
    const joblog::JobRecord& b = jobs[rng.uniform_index(jobs.size())];
    const TimePoint begin = std::min(a.start_time, b.end_time);
    const TimePoint end = std::max(a.start_time, b.end_time);
    EXPECT_EQ(jobs.overlapping(begin, end), overlapping_reference(jobs, begin, end));
  }
}

// ---------------------------------------------------------------------------
// IntervalIndex-backed running_at against the covers() scan it replaced.

std::vector<std::size_t> running_at_reference(const joblog::JobLog& jobs, TimePoint t,
                                              const bgp::Location& loc) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].start_time <= t && jobs[i].end_time > t && jobs[i].partition.covers(loc)) {
      out.push_back(i);
    }
  }
  return out;
}

TEST(IntervalIndex, RunningAtMatchesReferenceOnScenario) {
  const joblog::JobLog& jobs = scenario().jobs;
  const ras::FatalColumns& cols = scenario().ras.fatal_columns();
  ASSERT_FALSE(cols.empty());
  // Query at real event (time, location) pairs — including rack-level
  // locations, whose two-bucket merge path is easy to get wrong.
  const std::size_t step = std::max<std::size_t>(1, cols.size() / 200);
  for (std::size_t i = 0; i < cols.size(); i += step) {
    const bgp::Location loc = bgp::Location::from_packed(cols.loc_key[i]);
    EXPECT_EQ(jobs.running_at(cols.event_time[i], loc),
              running_at_reference(jobs, cols.event_time[i], loc))
        << "event row " << i << " at " << loc.to_string();
  }
}

// ---------------------------------------------------------------------------
// Boundary semantics, pinned with hand-placed jobs. Jobs occupy the
// half-open interval [start, end): a job *is* running at its start instant
// and is *not* running at its end instant, and the overlap predicate is
// start < window_end && end > window_begin. Every indexed query must agree
// with the brute-force references above at exactly these edges.

joblog::JobLog boundary_log() {
  joblog::JobLog jobs;
  const auto exec = jobs.intern_exec("/bin/toy");
  const auto user = jobs.intern_user("user000");
  const auto project = jobs.intern_project("project00");
  const auto add = [&](std::int64_t id, Usec start, Usec end, bgp::MidplaneId m,
                       int count) {
    joblog::JobRecord rec;
    rec.job_id = id;
    rec.exec_id = exec;
    rec.user_id = user;
    rec.project_id = project;
    rec.queue_time = TimePoint(start);
    rec.start_time = TimePoint(start);
    rec.end_time = TimePoint(end);
    rec.partition = bgp::Partition(m, count);
    jobs.append(rec);
  };
  add(1, 1000, 2000, 0, 1);  // the job whose edges the queries probe
  add(2, 2000, 3000, 0, 1);  // back-to-back successor on the same midplane
  add(3, 1500, 1500, 0, 1);  // zero-duration: never running anywhere
  add(4, 1000, 2000, 1, 1);  // same times, the rack's other midplane
  add(5, 500, 5000, 2, 2);   // wide partition spanning midplanes 2-3
  jobs.finalize();
  return jobs;
}

TEST(IntervalIndexBoundary, RunningAtJobEdges) {
  const joblog::JobLog jobs = boundary_log();
  const bgp::Location m0 = bgp::Location::midplane(0);

  // At the exact start instant the job is running; one tick before, not.
  EXPECT_EQ(jobs.running_at(TimePoint(1000), m0),
            running_at_reference(jobs, TimePoint(1000), m0));
  EXPECT_EQ(jobs.running_at(TimePoint(1000), m0), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(jobs.running_at(TimePoint(999), m0).empty());

  // At the exact end instant the job has stopped — and its back-to-back
  // successor on the same midplane has started: a handoff, never an overlap.
  EXPECT_EQ(jobs.running_at(TimePoint(2000), m0),
            running_at_reference(jobs, TimePoint(2000), m0));
  EXPECT_EQ(jobs.running_at(TimePoint(2000), m0), (std::vector<std::size_t>{4}));

  // A zero-duration job is running at no instant, not even its own start.
  const auto at_1500 = jobs.running_at(TimePoint(1500), m0);
  EXPECT_EQ(at_1500, running_at_reference(jobs, TimePoint(1500), m0));
  EXPECT_EQ(at_1500, (std::vector<std::size_t>{1}));
}

TEST(IntervalIndexBoundary, RunningAtRackMergesBothMidplanes) {
  const joblog::JobLog jobs = boundary_log();
  const bgp::Location rack0 = bgp::Location::rack(0);
  // Jobs 1 (midplane 0) and 4 (midplane 1) both run at t=1500 under rack 0;
  // the two-bucket merge must return them once each, index-sorted.
  EXPECT_EQ(jobs.running_at(TimePoint(1500), rack0),
            running_at_reference(jobs, TimePoint(1500), rack0));
  EXPECT_EQ(jobs.running_at(TimePoint(1500), rack0), (std::vector<std::size_t>{1, 2}));
  // A wide partition's job appears once even though it fills two buckets.
  const bgp::Location rack1 = bgp::Location::rack(1);
  EXPECT_EQ(jobs.running_at(TimePoint(1500), rack1), (std::vector<std::size_t>{0}));
}

TEST(OverlappingBoundary, WindowEdgesAreHalfOpen) {
  const joblog::JobLog jobs = boundary_log();

  // Job 1 ends exactly at the window's begin: excluded (end > begin fails).
  EXPECT_EQ(jobs.overlapping(TimePoint(2000), TimePoint(2500)),
            overlapping_reference(jobs, TimePoint(2000), TimePoint(2500)));
  for (const std::size_t i : jobs.overlapping(TimePoint(2000), TimePoint(2500))) {
    EXPECT_NE(jobs[i].job_id, 1);
  }

  // Job 2 starts exactly at the window's end: excluded (start < end fails).
  EXPECT_EQ(jobs.overlapping(TimePoint(500), TimePoint(2000)),
            overlapping_reference(jobs, TimePoint(500), TimePoint(2000)));
  for (const std::size_t i : jobs.overlapping(TimePoint(500), TimePoint(2000))) {
    EXPECT_NE(jobs[i].job_id, 2);
  }

  // A zero-duration job strictly inside the window *does* overlap it (its
  // [1500, 1500) interval intersects [1000, 2000) under the strict
  // inequalities) even though it is never running — the one place the two
  // predicates deliberately disagree.
  const auto wide = jobs.overlapping(TimePoint(1000), TimePoint(2000));
  EXPECT_EQ(wide, overlapping_reference(jobs, TimePoint(1000), TimePoint(2000)));
  bool saw_zero_duration = false;
  for (const std::size_t i : wide) saw_zero_duration |= jobs[i].job_id == 3;
  EXPECT_TRUE(saw_zero_duration);
}

TEST(OverlappingBoundary, RandomizedEdgeAlignedWindows) {
  const joblog::JobLog& jobs = scenario().jobs;
  Rng rng(13);
  // Windows whose edges are *exactly* job start/end times — the alignment a
  // uniform sampler almost never produces and binary searches get wrong.
  for (int i = 0; i < 100; ++i) {
    const joblog::JobRecord& a = jobs[rng.uniform_index(jobs.size())];
    const joblog::JobRecord& b = jobs[rng.uniform_index(jobs.size())];
    const TimePoint edges[2] = {rng.bernoulli(0.5) ? a.start_time : a.end_time,
                                rng.bernoulli(0.5) ? b.start_time : b.end_time};
    const TimePoint begin = std::min(edges[0], edges[1]);
    const TimePoint end = std::max(edges[0], edges[1]);
    EXPECT_EQ(jobs.overlapping(begin, end), overlapping_reference(jobs, begin, end))
        << "window [" << begin.usec() << ", " << end.usec() << ")";
    const bgp::Location loc = bgp::Location::midplane(
        static_cast<bgp::MidplaneId>(rng.uniform_index(bgp::Topology::kMidplanes)));
    EXPECT_EQ(jobs.running_at(begin, loc), running_at_reference(jobs, begin, loc));
    EXPECT_EQ(jobs.running_at(end, loc), running_at_reference(jobs, end, loc));
  }
}

// ---------------------------------------------------------------------------
// match_interruptions against the std::set-collecting reference matcher.

core::MatchResult match_reference(const filter::FilterPipelineResult& filtered,
                                  const joblog::JobLog& jobs, Usec window) {
  core::MatchResult result;
  result.jobs_by_group.resize(filtered.groups.size());
  result.group_by_job.assign(jobs.size(), std::nullopt);
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    const filter::EventGroup& group = filtered.groups[g];
    const TimePoint rep_time = filtered.fatal_events[group.rep].event_time;
    const TimePoint lo = rep_time - window;
    const TimePoint hi = rep_time + window;
    std::set<std::size_t> matched;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (jobs[j].end_time < lo || jobs[j].end_time > hi) continue;
      if (jobs[j].start_time > hi) continue;
      for (const std::size_t member : group.members) {
        if (jobs[j].partition.covers(filtered.fatal_events[member].location)) {
          matched.insert(j);
          break;
        }
      }
    }
    result.jobs_by_group[g].assign(matched.begin(), matched.end());
  }
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    for (std::size_t job_idx : result.jobs_by_group[g]) {
      if (!result.group_by_job[job_idx]) {
        result.group_by_job[job_idx] = g;
        result.interruptions.push_back({g, job_idx, jobs[job_idx].end_time});
      }
    }
  }
  std::sort(result.interruptions.begin(), result.interruptions.end(),
            [](const core::Interruption& a, const core::Interruption& b) {
              return a.time < b.time;
            });
  return result;
}

TEST(MatchInterruptions, EqualsSetBasedReferenceOnScenario) {
  const filter::FilterPipelineResult filtered =
      filter::run_filter_pipeline(scenario().ras, {});
  ASSERT_FALSE(filtered.groups.empty());
  const core::MatchConfig config;
  const core::MatchResult fast =
      core::match_interruptions(filtered, scenario().jobs, config);
  const core::MatchResult ref = match_reference(filtered, scenario().jobs, config.window);

  ASSERT_EQ(fast.jobs_by_group.size(), ref.jobs_by_group.size());
  for (std::size_t g = 0; g < fast.jobs_by_group.size(); ++g) {
    EXPECT_EQ(fast.jobs_by_group[g], ref.jobs_by_group[g]) << "group " << g;
  }
  EXPECT_EQ(fast.group_by_job, ref.group_by_job);
  ASSERT_EQ(fast.interruptions.size(), ref.interruptions.size());
  for (std::size_t i = 0; i < fast.interruptions.size(); ++i) {
    EXPECT_EQ(fast.interruptions[i].group, ref.interruptions[i].group);
    EXPECT_EQ(fast.interruptions[i].job, ref.interruptions[i].job);
    EXPECT_EQ(fast.interruptions[i].time, ref.interruptions[i].time);
  }
}

// ---------------------------------------------------------------------------
// CRC32: slicing-by-8 against known vectors and a bytewise reference.

std::uint32_t crc32_bytewise(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(bin::crc32("", 0), 0x00000000u);
  EXPECT_EQ(bin::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(bin::crc32("a", 1), 0xE8B7BE43u);
  const std::string quick = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(bin::crc32(quick.data(), quick.size()), 0x414FA339u);
}

TEST(Crc32, MatchesBytewiseReferenceAcrossLengthsAndAlignments) {
  Rng rng(11);
  std::string data(4096, '\0');
  for (char& c : data) c = static_cast<char>(rng.uniform_index(256));
  // Lengths around the 8-byte slicing boundary and odd start offsets
  // exercise both the sliced body and the bytewise tail.
  for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                            std::size_t{9}, std::size_t{63}, std::size_t{64},
                            std::size_t{1000}, std::size_t{4000}}) {
      ASSERT_LE(offset + len, data.size());
      EXPECT_EQ(bin::crc32(data.data() + offset, len),
                crc32_bytewise(data.data() + offset, len))
          << "offset " << offset << " len " << len;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel binary read: identical events, accounting and errors.

void expect_logs_equal(const ras::RasLog& a, const ras::RasLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].event_time, b[i].event_time) << "record " << i;
    EXPECT_EQ(a[i].errcode, b[i].errcode) << "record " << i;
    EXPECT_EQ(a[i].location, b[i].location) << "record " << i;
    EXPECT_EQ(a[i].serial, b[i].serial) << "record " << i;
    EXPECT_EQ(a[i].severity, b[i].severity) << "record " << i;
  }
}

void expect_reports_equal(const IngestReport& a, const IngestReport& b) {
  EXPECT_EQ(a.records_ok(), b.records_ok());
  EXPECT_EQ(a.total_malformed(), b.total_malformed());
  for (std::size_t r = 0; r < kIngestReasonCount; ++r) {
    EXPECT_EQ(a.malformed(static_cast<IngestReason>(r)),
              b.malformed(static_cast<IngestReason>(r)))
        << to_string(static_cast<IngestReason>(r));
  }
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].reason, b.samples()[i].reason);
    EXPECT_EQ(a.samples()[i].byte_offset, b.samples()[i].byte_offset);
    EXPECT_EQ(a.samples()[i].detail, b.samples()[i].detail);
  }
}

std::string scenario_ras_bytes() {
  std::stringstream buf;
  ras::write_binary(buf, scenario().ras);
  return buf.str();
}

TEST(ParallelBinaryRead, CleanFileMatchesSequential) {
  const std::string bytes = scenario_ras_bytes();
  par::ThreadPool pool(4);

  std::istringstream seq_in(bytes);
  IngestReport seq_rep;
  const ras::RasLog seq = ras::read_binary(seq_in, ras::default_catalog(),
                                           ParseMode::Strict, &seq_rep);
  std::istringstream par_in(bytes);
  IngestReport par_rep;
  const ras::RasLog par = ras::read_binary(par_in, ras::default_catalog(),
                                           ParseMode::Strict, &par_rep, nullptr, &pool);
  expect_logs_equal(seq, par);
  expect_reports_equal(seq_rep, par_rep);
  EXPECT_EQ(par.size(), scenario().ras.size());
}

TEST(ParallelBinaryRead, DamagedFileMatchesSequentialInLenientMode) {
  par::ThreadPool pool(4);
  Rng rng(23);
  for (int round = 0; round < 8; ++round) {
    std::string bytes = scenario_ras_bytes();
    // Flip a few bits anywhere — headers, payloads, the dictionary.
    for (int f = 0; f < 3; ++f) {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] = static_cast<char>(bytes[at] ^ (1 << rng.uniform_index(8)));
    }
    std::istringstream seq_in(bytes);
    IngestReport seq_rep;
    const ras::RasLog seq = ras::read_binary(seq_in, ras::default_catalog(),
                                             ParseMode::Lenient, &seq_rep);
    std::istringstream par_in(bytes);
    IngestReport par_rep;
    const ras::RasLog par = ras::read_binary(par_in, ras::default_catalog(),
                                             ParseMode::Lenient, &par_rep, nullptr, &pool);
    expect_logs_equal(seq, par);
    expect_reports_equal(seq_rep, par_rep);
  }
}

TEST(ParallelBinaryRead, StrictErrorsMatchSequentialByteForByte) {
  par::ThreadPool pool(4);
  std::string bytes = scenario_ras_bytes();
  // Corrupt one payload byte deep in the record stream: the strict error
  // must be the same CRC message, same offset, from both readers.
  std::size_t p = bytes.find("CBLK");
  for (int skip = 0; skip < 10; ++skip) p = bytes.find("CBLK", p + 1);
  ASSERT_NE(p, std::string::npos);
  bytes[p + 16] = static_cast<char>(bytes[p + 16] ^ 0x55);

  std::string seq_what;
  std::string par_what;
  try {
    std::istringstream in(bytes);
    ras::read_binary(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    seq_what = e.what();
  }
  try {
    std::istringstream in(bytes);
    ras::read_binary(in, ras::default_catalog(), ParseMode::Strict, nullptr, nullptr,
                     &pool);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    par_what = e.what();
  }
  EXPECT_EQ(seq_what, par_what);
  EXPECT_NE(seq_what.find("CRC mismatch"), std::string::npos) << seq_what;
}

TEST(ParallelBinaryRead, TruncatedFileMatchesSequential) {
  par::ThreadPool pool(4);
  std::string bytes = scenario_ras_bytes();
  bytes.resize(bytes.size() * 2 / 3);  // cut mid-block

  std::istringstream seq_in(bytes);
  IngestReport seq_rep;
  const ras::RasLog seq = ras::read_binary(seq_in, ras::default_catalog(),
                                           ParseMode::Lenient, &seq_rep);
  std::istringstream par_in(bytes);
  IngestReport par_rep;
  const ras::RasLog par = ras::read_binary(par_in, ras::default_catalog(),
                                           ParseMode::Lenient, &par_rep, nullptr, &pool);
  expect_logs_equal(seq, par);
  expect_reports_equal(seq_rep, par_rep);
  EXPECT_GT(seq_rep.malformed(IngestReason::BinaryFrame), 0u);
}

}  // namespace
}  // namespace coral
