// Prediction subsystem suite: rule-miner ground truth, RuleTable
// serialization hardening, online/offline predictor parity, determinism
// across worker pools and engines, and the evaluation floors the CI
// prediction stage gates on.
//
// The labeled corpus lives in predict_fixture.hpp: every chain count is
// known by construction, so the expected rule set and predictor tallies are
// written down there rather than re-derived from the code under test.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "corrupt.hpp"
#include "predict_fixture.hpp"

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/parallel.hpp"
#include "coral/common/rng.hpp"
#include "coral/context.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/obs/obs.hpp"
#include "coral/predict/evaluate.hpp"
#include "coral/predict/miner.hpp"
#include "coral/predict/predictor.hpp"
#include "coral/predict/rules.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/stream/session.hpp"
#include "coral/synth/packs.hpp"
#include "coral/synth/scenario.hpp"

namespace coral {
namespace {

// ---------------------------------------------------------------------------
// Miner vs the labeled corpus.

TEST(PredictMiner, RecoversExpectedRulesFromChainCorpus) {
  const ras::Catalog& cat = ras::default_catalog();
  const predict::RuleTable got =
      predict::mine_rules(testing::chain_columns(cat), testing::chain_identification(cat),
                          cat, testing::chain_miner_config());
  EXPECT_EQ(got, testing::chain_expected_rules(cat));
}

TEST(PredictMiner, RestrictTargetsDropsUnlabeledTargets) {
  const ras::Catalog& cat = ras::default_catalog();
  const testing::ChainCodes codes = testing::chain_codes(cat);
  core::IdentificationResult id = testing::chain_identification(cat);
  id.verdicts.erase(codes.b);  // B no longer interruption-related
  const predict::RuleTable got = predict::mine_rules(
      testing::chain_columns(cat), id, cat, testing::chain_miner_config());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.rules[0], testing::chain_expected_rules(cat).rules[1]);  // C -> D
}

TEST(PredictMiner, RestrictTargetsOffMinesSamePairsOnThisCorpus) {
  // With the verdict gate off, the corpus still yields exactly the two
  // qualifying pairs: A->D is below min_support and F->D below the machine
  // confidence floor, labeled or not.
  const ras::Catalog& cat = ras::default_catalog();
  predict::MinerConfig config = testing::chain_miner_config();
  config.restrict_targets = false;
  const predict::RuleTable got = predict::mine_rules(
      testing::chain_columns(cat), core::IdentificationResult{}, cat, config);
  EXPECT_EQ(got, testing::chain_expected_rules(cat));
}

TEST(PredictMiner, ConfidenceFloorGatesMachineRules) {
  // F -> D co-occurs 4 times over 10 F occurrences: invisible at the 0.7
  // machine floor, mined as a machine rule the moment the floor drops to
  // its 0.4 confidence (never midplane-scoped — F and D share no midplane).
  const ras::Catalog& cat = ras::default_catalog();
  const testing::ChainCodes codes = testing::chain_codes(cat);
  predict::MinerConfig config = testing::chain_miner_config();
  config.min_confidence = 0.4;
  const predict::RuleTable got = predict::mine_rules(
      testing::chain_columns(cat), testing::chain_identification(cat), cat, config);
  ASSERT_EQ(got.size(), 3u);
  const predict::Rule fd{codes.f, codes.d, predict::RuleScope::Machine, kUsecPerHour,
                         /*support=*/4, /*precursor_count=*/10};
  EXPECT_EQ(got.rules[2], fd);
  EXPECT_DOUBLE_EQ(got.rules[2].confidence(), 0.4);
}

TEST(PredictMiner, MaxRulesKeepsHighestSupportInMinerOrder) {
  const ras::Catalog& cat = ras::default_catalog();
  predict::MinerConfig config = testing::chain_miner_config();
  config.max_rules = 1;
  const predict::RuleTable got = predict::mine_rules(
      testing::chain_columns(cat), testing::chain_identification(cat), cat, config);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.rules[0], testing::chain_expected_rules(cat).rules[0]);  // support 8
}

// ---------------------------------------------------------------------------
// RuleTable serialization: round trips and hardening.

TEST(PredictRules, SerializeRoundTripsExpectedRules) {
  const predict::RuleTable table = testing::chain_expected_rules();
  EXPECT_EQ(predict::RuleTable::deserialize(table.serialize()), table);
  EXPECT_EQ(predict::RuleTable::deserialize(predict::RuleTable{}.serialize()),
            predict::RuleTable{});
}

TEST(PredictRules, SerializeRoundTripsRandomTables) {
  const ras::Catalog& cat = ras::default_catalog();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    predict::RuleTable table;
    const std::size_t n = rng.uniform_index(64);
    for (std::size_t i = 0; i < n; ++i) {
      predict::Rule r;
      r.precursor = static_cast<ras::ErrcodeId>(rng.uniform_index(cat.size()));
      r.target = static_cast<ras::ErrcodeId>(rng.uniform_index(cat.size()));
      r.scope = rng.uniform_index(2) == 0 ? predict::RuleScope::Midplane
                                          : predict::RuleScope::Machine;
      r.window = 1 + static_cast<Usec>(rng.uniform_index(48)) * kUsecPerHour;
      r.precursor_count = 1 + static_cast<std::uint32_t>(rng.uniform_index(1000000));
      r.support = static_cast<std::uint32_t>(
          rng.uniform_index(static_cast<std::size_t>(r.precursor_count) + 1));
      table.rules.push_back(r);
    }
    EXPECT_EQ(predict::RuleTable::deserialize(table.serialize(), cat), table)
        << "seed " << seed;
  }
}

/// Rewrite `count` bytes of the CBLK payload at `payload_offset` and repair
/// the frame CRC, so the damage reaches the validation layer instead of
/// being caught by framing.
std::string patch_payload(std::string bytes, std::size_t payload_offset,
                          const void* data, std::size_t count) {
  const std::size_t frame = 8;  // after the "CRUL" file header
  std::uint32_t size = 0;
  std::memcpy(&size, bytes.data() + frame + sizeof bin::kBlockMagic, sizeof size);
  std::memcpy(bytes.data() + frame + bin::kBlockHeaderBytes + payload_offset, data, count);
  const std::uint32_t crc = bin::crc32(bytes.data() + frame + bin::kBlockHeaderBytes, size);
  std::memcpy(bytes.data() + frame + sizeof bin::kBlockMagic + sizeof size, &crc,
              sizeof crc);
  return bytes;
}

TEST(PredictRules, DeserializeRejectsCraftedFieldDamage) {
  const ras::Catalog& cat = ras::default_catalog();
  const std::string good = testing::chain_expected_rules(cat).serialize();
  const auto expect_rejected = [&](const std::string& bytes, const char* what) {
    EXPECT_THROW((void)predict::RuleTable::deserialize(bytes, cat), ParseError) << what;
  };

  std::string bad = good;
  bad[0] ^= 0x40;
  expect_rejected(bad, "wrong file magic");
  bad = good;
  bad[4] = 9;
  expect_rejected(bad, "unknown version");
  expect_rejected(good.substr(0, good.size() - 1), "truncated frame");
  expect_rejected(good.substr(0, 7), "truncated header");
  expect_rejected(good + "junk", "trailing garbage");
  expect_rejected("", "empty input");

  // Payload damage with a repaired CRC: the strict field validation, not
  // the framing layer, must catch each of these. Payload layout:
  // 'T' | u32 count | count x 25-byte rules.
  const auto rule_at = [](std::size_t i, std::size_t field) { return 5 + i * 25 + field; };
  const char tag = 'X';
  expect_rejected(patch_payload(good, 0, &tag, 1), "wrong payload tag");
  const std::uint32_t big_count = 3;
  expect_rejected(patch_payload(good, 1, &big_count, 4), "count beyond payload");
  const std::uint8_t bad_scope = 7;
  expect_rejected(patch_payload(good, rule_at(0, 8), &bad_scope, 1), "invalid scope");
  const std::int64_t zero_window = 0;
  expect_rejected(patch_payload(good, rule_at(0, 9), &zero_window, 8), "zero window");
  const std::int32_t out_of_range = static_cast<std::int32_t>(cat.size());
  expect_rejected(patch_payload(good, rule_at(0, 0), &out_of_range, 4),
                  "precursor beyond catalog");
  const std::int32_t negative = -1;
  expect_rejected(patch_payload(good, rule_at(1, 4), &negative, 4), "negative target");
  const std::uint32_t eleven = 11;
  expect_rejected(patch_payload(good, rule_at(0, 17), &eleven, 4),
                  "support > precursor_count");
  const std::uint32_t zero = 0;
  std::string no_count = patch_payload(good, rule_at(1, 17), &zero, 4);
  expect_rejected(patch_payload(no_count, rule_at(1, 21), &zero, 4),
                  "zero precursor_count");
}

TEST(FuzzSmokeRuleTable, CorruptedTablesRejectCleanlyOrStayValid) {
  const ras::Catalog& cat = ras::default_catalog();
  const std::string good = testing::chain_expected_rules(cat).serialize();
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    Rng rng(seed);
    std::string bytes = good;
    switch (rng.uniform_index(4)) {
      case 0: bytes = testing::truncate_bytes(bytes, rng, 0.1); break;
      case 1: bytes = testing::flip_bits(bytes, rng, 1 + static_cast<int>(rng.uniform_index(4))); break;
      case 2: bytes.insert(rng.uniform_index(bytes.size()), "\x00\xff garbage \x7f", 4); break;
      default: bytes = testing::flip_bits(testing::truncate_bytes(bytes, rng, 0.3), rng, 2); break;
    }
    try {
      const predict::RuleTable table = predict::RuleTable::deserialize(bytes, cat);
      // Survivors must be fully valid: a damaged byte stream may only parse
      // when the damage was semantically neutral.
      for (const predict::Rule& r : table.rules) {
        EXPECT_GE(r.precursor, 0) << "seed " << seed;
        EXPECT_LT(static_cast<std::size_t>(r.precursor), cat.size()) << "seed " << seed;
        EXPECT_GE(r.target, 0) << "seed " << seed;
        EXPECT_LT(static_cast<std::size_t>(r.target), cat.size()) << "seed " << seed;
        EXPECT_GT(r.window, 0) << "seed " << seed;
        EXPECT_GT(r.precursor_count, 0u) << "seed " << seed;
        EXPECT_LE(r.support, r.precursor_count) << "seed " << seed;
      }
    } catch (const ParseError&) {
      // The designed outcome for damaged bytes.
    }
  }
}

// ---------------------------------------------------------------------------
// Predictor vs the labeled corpus.

TEST(PredictPredictor, ChainCorpusEndToEnd) {
  const ras::Catalog& cat = ras::default_catalog();
  const ras::RasLog log = testing::chain_ras_log(cat);
  const predict::RuleTable table = testing::chain_expected_rules(cat);
  const testing::ChainPredictorTruth truth;

  obs::Collector obs;
  predict::Predictor predictor(table, log.machine(), &obs);
  for (const ras::RasEvent& ev : log.events()) predictor.on_record(ev);

  EXPECT_EQ(predictor.issued(), truth.issued);
  EXPECT_EQ(predictor.hits(), truth.hits);
  EXPECT_EQ(predictor.suppressed(), truth.suppressed);
  std::size_t at_mp3 = 0;
  for (const predict::Prediction& p : predictor.predictions()) {
    if (p.midplane == 3) ++at_mp3;
    EXPECT_EQ(p.expires, p.issued + kUsecPerHour);
  }
  EXPECT_EQ(at_mp3, truth.midplane_alarms);

  // Offline replay is the same state machine by construction.
  EXPECT_EQ(predict::replay(table, log), predictor.predictions());

  // The obs counters tell the same story.
  const obs::Snapshot snap = obs.snapshot();
  EXPECT_EQ(snap.counter_value("predict.issued"), truth.issued);
  EXPECT_EQ(snap.counter_value("predict.hits"), truth.hits);
}

TEST(PredictPredictor, RefiringInsideWindowSuppressesUntilExpiry) {
  const ras::Catalog& cat = ras::default_catalog();
  const testing::ChainCodes codes = testing::chain_codes(cat);
  predict::RuleTable table;
  table.rules.push_back({codes.a, codes.b, predict::RuleScope::Midplane, kUsecPerHour,
                         /*support=*/3, /*precursor_count=*/3});

  const TimePoint base = TimePoint::from_calendar(2009, 1, 5);
  const auto precursor_at = [&](TimePoint t) {
    ras::RasEvent e;
    e.event_time = t;
    e.location = bgp::Location::midplane(3);
    e.errcode = codes.a;
    e.severity = ras::Severity::Fatal;
    return e;
  };
  predict::Predictor predictor(table, machine::bgp_model());
  predictor.on_record(precursor_at(base));
  predictor.on_record(precursor_at(base + 5 * kUsecPerMin));  // inside window
  EXPECT_EQ(predictor.issued(), 1u);
  EXPECT_EQ(predictor.suppressed(), 1u);
  predictor.on_record(precursor_at(base + 2 * kUsecPerHour));  // expired
  EXPECT_EQ(predictor.issued(), 2u);
}

TEST(PredictPredictor, RackPrecursorFansOutToItsMidplanes) {
  const ras::Catalog& cat = ras::default_catalog();
  const testing::ChainCodes codes = testing::chain_codes(cat);
  predict::RuleTable table;
  table.rules.push_back({codes.a, codes.b, predict::RuleScope::Midplane, kUsecPerHour,
                         /*support=*/3, /*precursor_count=*/3});
  const machine::MachineModel& machine = machine::bgp_model();
  ras::RasEvent e;
  e.event_time = TimePoint::from_calendar(2009, 1, 5);
  e.location = bgp::Location::rack(2);
  e.errcode = codes.a;
  e.severity = ras::Severity::Fatal;
  predict::Predictor predictor(table, machine);
  predictor.on_record(e);
  const machine::LocCodec& codec = machine.codec();
  ASSERT_EQ(predictor.predictions().size(),
            static_cast<std::size_t>(codec.midplanes_per_rack));
  const machine::MidplaneId first = codec.rack_first_midplane(e.location.packed());
  for (int m = 0; m < codec.midplanes_per_rack; ++m) {
    EXPECT_EQ(predictor.predictions()[static_cast<std::size_t>(m)].midplane, first + m);
  }
}

// ---------------------------------------------------------------------------
// Online/offline differential: the streaming session's predictions must be
// byte-identical to offline replay for any chunking and source interleaving
// (the test_session.cpp parity pattern, applied to the prediction tap).

std::string ras_bytes(const ras::RasLog& log) {
  std::stringstream buf;
  ras::write_binary(buf, log);
  return buf.str();
}

std::string job_bytes(const joblog::JobLog& log) {
  std::stringstream buf;
  joblog::write_binary(buf, log);
  return buf.str();
}

stream::SessionResult session_run(const predict::RuleTable& rules,
                                  const std::string& ras_image,
                                  const std::string& job_image, std::uint64_t seed) {
  stream::SessionConfig cfg;
  cfg.rules = &rules;
  stream::Session session("p" + std::to_string(seed), cfg, Context{});
  Rng rng(seed);
  std::string_view feeds[2] = {ras_image, job_image};
  while (!feeds[0].empty() || !feeds[1].empty()) {
    const std::size_t pick =
        feeds[0].empty() ? 1 : (feeds[1].empty() ? 0 : rng.uniform_index(2));
    std::string_view& rest = feeds[pick];
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_index(4096), rest.size());
    const auto src = pick == 0 ? stream::Source::Ras : stream::Source::Jobs;
    EXPECT_EQ(session.feed(src, rest.substr(0, n)), stream::Admission::Accepted)
        << "seed " << seed;
    rest.remove_prefix(n);
    if (rng.uniform_index(4) == 0) session.pump();
  }
  return session.finalize();
}

TEST(PredictSessionParity, OnlinePredictionsMatchOfflineReplay) {
  // A real injector log, dense enough that rules fire constantly.
  synth::ScenarioConfig scenario =
      synth::pack_scenario(machine::bgp_model(), "correlated_cascade", 7, 3);
  const synth::SynthResult synth = synth::generate(scenario);
  const core::CoAnalysisResult analysis = core::run_coanalysis(synth.ras, synth.jobs);
  const predict::RuleTable table = predict::mine_rules(analysis, synth.jobs);
  ASSERT_FALSE(table.empty());

  const std::vector<predict::Prediction> offline = predict::replay(table, synth.ras);
  ASSERT_FALSE(offline.empty());

  const std::string ras_image = ras_bytes(synth.ras);
  const std::string job_image = job_bytes(synth.jobs);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    stream::SessionResult got;
    ASSERT_NO_FATAL_FAILURE(got = session_run(table, ras_image, job_image, seed));
    EXPECT_EQ(got.predictions, offline) << "seed " << seed;
  }
}

TEST(PredictSessionParity, SessionWithoutRulesPredictsNothing) {
  const ras::RasLog log = testing::chain_ras_log();
  stream::Session session("none", {}, Context{});
  ASSERT_EQ(session.feed(stream::Source::Ras, ras_bytes(log)),
            stream::Admission::Accepted);
  ASSERT_EQ(session.feed(stream::Source::Jobs, job_bytes([] {
              joblog::JobLog jobs;
              joblog::JobRecord j;
              j.job_id = 1;
              j.exec_id = jobs.intern_exec("/bin/app");
              j.user_id = jobs.intern_user("user");
              j.project_id = jobs.intern_project("proj");
              j.queue_time = TimePoint::from_calendar(2009, 1, 5);
              j.start_time = j.queue_time + kUsecPerMin;
              j.end_time = j.start_time + kUsecPerHour;
              j.partition = bgp::Partition(0, 2);
              jobs.append(j);
              jobs.finalize();
              return jobs;
            }())),
            stream::Admission::Accepted);
  const stream::SessionResult result = session.finalize();
  EXPECT_TRUE(result.predictions.empty());
}

// ---------------------------------------------------------------------------
// Determinism: mined rules and evaluation metrics are exact-equal whatever
// the worker pool or front-end engine (the test_characterization.cpp
// contract, extended to the prediction stages).

TEST(PredictDeterminism, MinerExactAcrossThreadPools) {
  const ras::Catalog& cat = ras::default_catalog();
  const core::CharColumns cols = testing::chain_columns(cat);
  const core::IdentificationResult id = testing::chain_identification(cat);
  const predict::MinerConfig config = testing::chain_miner_config();
  const predict::RuleTable serial = predict::mine_rules(cols, id, cat, config, nullptr);
  for (const std::size_t threads : {2u, 8u}) {
    par::ThreadPool pool(threads);
    EXPECT_EQ(predict::mine_rules(cols, id, cat, config, &pool), serial)
        << threads << " threads";
  }
}

TEST(PredictDeterminism, MinerExactAcrossEnginesAndPools) {
  synth::ScenarioConfig scenario =
      synth::pack_scenario(machine::bgp_model(), "correlated_cascade", 11, 3);
  const synth::SynthResult synth = synth::generate(scenario);

  core::CoAnalysisConfig batch_cfg;
  batch_cfg.execution.engine = core::Engine::Batch;
  const predict::RuleTable batch = predict::mine_rules(
      core::run_coanalysis(synth.ras, synth.jobs, batch_cfg), synth.jobs);
  ASSERT_FALSE(batch.empty());

  core::CoAnalysisConfig stream_cfg;
  stream_cfg.execution.engine = core::Engine::Streaming;
  stream_cfg.execution.shards = 3;
  par::ThreadPool pool(4);
  Context ctx;
  ctx.with_pool(&pool);
  const predict::RuleTable streamed = predict::mine_rules(
      core::run_coanalysis(synth.ras, synth.jobs, stream_cfg, ctx), synth.jobs, {}, ctx);
  EXPECT_EQ(streamed, batch);
}

TEST(PredictDeterminism, PolicyComparisonExactAcrossThreadPools) {
  const synth::ScenarioConfig scenario = predict::eval_scenario(3, 7);
  const predict::PolicyComparison serial = predict::compare_policies(scenario);
  for (const std::size_t threads : {2u, 8u}) {
    par::ThreadPool pool(threads);
    Context ctx;
    ctx.with_pool(&pool);
    const predict::PolicyComparison got = predict::compare_policies(scenario, {}, ctx);
    EXPECT_EQ(got.rules, serial.rules) << threads << " threads";
    EXPECT_EQ(got.eval, serial.eval) << threads << " threads";
    EXPECT_EQ(got.baseline_lost_node_hours, serial.baseline_lost_node_hours);
    EXPECT_EQ(got.advised_lost_node_hours, serial.advised_lost_node_hours);
    EXPECT_EQ(got.baseline_interruptions, serial.baseline_interruptions);
    EXPECT_EQ(got.advised_interruptions, serial.advised_interruptions);
  }
}

// ---------------------------------------------------------------------------
// The evaluation floors on the seeded scenario — the same invariants the CI
// prediction stage gates through example_predict_eval, pinned here so a
// plain ctest run cannot miss a regression.

TEST(PredictEvaluation, SeededScenarioClearsFloors) {
  const predict::PolicyComparison cmp =
      predict::compare_policies(predict::eval_scenario(42, 21));
  EXPECT_GE(cmp.eval.precision(), 0.7);
  EXPECT_GE(cmp.eval.recall(), 0.5);
  EXPECT_GT(cmp.eval.mean_lead_minutes, 0.0);
  EXPECT_GT(cmp.eval.events_total, 100u);  // the scenario is dense enough to mean something
}

TEST(PredictEvaluation, FaultAwarePlacementSavesNodeHours) {
  const predict::PolicyComparison cmp =
      predict::compare_policies(predict::eval_scenario(42, 21));
  EXPECT_GT(cmp.saved_node_hours(), 0.0);
  // The advisor's real lever: keeping jobs off predicted-bad midplanes
  // prevents the persistent-fault re-hit chain, cutting system
  // interruptions by well over half on the seeded scenario.
  EXPECT_LT(cmp.advised_interruptions, cmp.baseline_interruptions / 2);
}

}  // namespace
}  // namespace coral
