#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"
#include "coral/ras/catalog.hpp"
#include "coral/ras/log.hpp"

namespace coral::ras {
namespace {

TEST(Types, SeverityRoundTrip) {
  for (Severity s : {Severity::Info, Severity::Warning, Severity::Error, Severity::Fatal}) {
    EXPECT_EQ(parse_severity(to_string(s)), s);
  }
  EXPECT_THROW(parse_severity("fatal"), ParseError);
}

TEST(Types, ComponentRoundTrip) {
  for (Component c : {Component::Application, Component::Kernel, Component::Mc,
                      Component::Mmcs, Component::BareMetal, Component::Card,
                      Component::Diags}) {
    EXPECT_EQ(parse_component(to_string(c)), c);
  }
  EXPECT_THROW(parse_component("KERN"), ParseError);
}

TEST(Catalog, HasExactly82FatalErrcodes) {
  const Catalog& c = Catalog::instance();
  EXPECT_EQ(c.fatal_count(), 82);  // §III-B: 82 ERRCODE types at FATAL severity
}

TEST(Catalog, CompositionMatchesPaper) {
  const Catalog& c = Catalog::instance();
  EXPECT_EQ(c.application_error_count(), 8);  // Observation 2
  EXPECT_EQ(c.benign_count(), 2);             // §IV-A

  int persistent = 0, idle = 0, propagating = 0;
  std::set<Component> fatal_components;
  for (ErrcodeId id : c.fatal_ids()) {
    const ErrcodeInfo& info = c.info(id);
    persistent += info.persistent ? 1 : 0;
    idle += info.idle_bias ? 1 : 0;
    propagating += info.propagates ? 1 : 0;
    fatal_components.insert(info.component);
  }
  EXPECT_EQ(persistent, 4);   // §IV-B: four repair-needed system types
  EXPECT_EQ(idle, 49);        // §IV-A: undetermined codes
  EXPECT_EQ(propagating, 2);  // §VI-C: bg_code_script_error + CiodHungProxy
  EXPECT_EQ(fatal_components.size(), 6u);  // six components report FATALs
  EXPECT_EQ(fatal_components.count(Component::Application), 0u);
}

TEST(Catalog, SystemTypesCountIs72) {
  // 23 interrupting system codes + 49 idle-biased = 72 (Observation 2).
  const Catalog& c = Catalog::instance();
  int system_types = 0;
  for (ErrcodeId id : c.fatal_ids()) {
    const ErrcodeInfo& info = c.info(id);
    if (info.nature == FaultNature::SystemFailure && info.impact == JobImpact::Interrupting) {
      ++system_types;
    }
  }
  EXPECT_EQ(system_types, 72);
}

TEST(Catalog, WellKnownCodesExist) {
  const Catalog& c = Catalog::instance();
  for (const char* name :
       {codes::kBulkPowerFatal, codes::kTorusFatalSum, codes::kRasStormFatal,
        codes::kCiodHungProxy, codes::kScriptError, codes::kDdrController, codes::kFsConfig,
        codes::kLinkCardError, "DetectedClockCardErrors"}) {
    EXPECT_TRUE(c.find(name).has_value()) << name;
  }
  EXPECT_FALSE(c.find("no_such_code").has_value());

  const ErrcodeInfo& bulk = c.info(*c.find(codes::kBulkPowerFatal));
  EXPECT_EQ(bulk.impact, JobImpact::Benign);
  const ErrcodeInfo& storm = c.info(*c.find(codes::kRasStormFatal));
  EXPECT_TRUE(storm.persistent);
  EXPECT_EQ(storm.nature, FaultNature::SystemFailure);
  const ErrcodeInfo& proxy = c.info(*c.find(codes::kCiodHungProxy));
  EXPECT_EQ(proxy.nature, FaultNature::ApplicationError);
  EXPECT_TRUE(proxy.propagates);
}

TEST(Catalog, NamesAndMsgIdsAreUnique) {
  const Catalog& c = Catalog::instance();
  std::set<std::string> names, msg_ids;
  for (const auto& e : c.all()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate errcode " << e.name;
    EXPECT_TRUE(msg_ids.insert(e.msg_id).second) << "duplicate msg_id " << e.msg_id;
    EXPECT_GT(e.weight, 0.0) << e.name;
    EXPECT_FALSE(e.message.empty()) << e.name;
  }
}

RasEvent make_event(const char* code, const char* when, const char* where) {
  RasEvent ev;
  ev.errcode = *Catalog::instance().find(code);
  ev.severity = Catalog::instance().info(ev.errcode).severity;
  ev.event_time = TimePoint::parse_ras(when);
  ev.location = bgp::Location::parse(where);
  ev.serial = 12345;
  return ev;
}

TEST(RasLog, FinalizeSortsAndAssignsRecids) {
  RasLog log;
  log.append(make_event(codes::kRasStormFatal, "2009-01-06-00.00.00", "R01-M0-N00-J04"));
  log.append(make_event(codes::kBulkPowerFatal, "2009-01-05-00.00.00", "R01"));
  log.finalize();
  EXPECT_EQ(log[0].recid, 1);
  EXPECT_EQ(log[1].recid, 2);
  EXPECT_LE(log[0].event_time, log[1].event_time);
  EXPECT_EQ(log[0].info(log.catalog()).name, codes::kBulkPowerFatal);
}

TEST(RasLog, SummaryCountsSeverities) {
  RasLog log;
  log.append(make_event(codes::kRasStormFatal, "2009-01-05-01.00.00", "R01-M0-N00-J04"));
  log.append(make_event(codes::kRasStormFatal, "2009-01-05-02.00.00", "R01-M0-N00-J05"));
  log.append(make_event("ecc_correctable", "2009-01-05-03.00.00", "R02-M1-N01-J06"));
  log.finalize();
  const RasLogSummary s = log.summary();
  EXPECT_EQ(s.total_records, 3u);
  EXPECT_EQ(s.fatal_records, 2u);
  EXPECT_EQ(s.fatal_errcode_types, 1u);
  EXPECT_EQ(s.by_severity.at(Severity::Warning), 1u);
  EXPECT_EQ(s.fatal_by_component.at(Component::Kernel), 2u);
}

TEST(RasLog, FatalIndicesMatchFatalEvents) {
  RasLog log;
  log.append(make_event(codes::kRasStormFatal, "2009-01-05-01.00.00", "R01-M0-N00-J04"));
  log.append(make_event("ecc_correctable", "2009-01-05-02.00.00", "R02-M1-N01-J06"));
  log.append(make_event(codes::kBulkPowerFatal, "2009-01-05-03.00.00", "R01"));
  log.append(make_event("ecc_correctable", "2009-01-05-04.00.00", "R02-M1-N01-J06"));
  log.finalize();

  const std::vector<std::size_t>& idx = log.fatal_indices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);

  // Gathering through the index reproduces the scan-based copy exactly.
  const std::vector<RasEvent> scanned = log.fatal_events();
  ASSERT_EQ(scanned.size(), idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(log[idx[i]].recid, scanned[i].recid);
    EXPECT_EQ(log[idx[i]].event_time, scanned[i].event_time);
  }

  // The index tracks re-finalization after further appends.
  log.append(make_event(codes::kRasStormFatal, "2009-01-05-00.30.00", "R01-M0-N00-J04"));
  log.finalize();
  EXPECT_EQ(log.fatal_indices().size(), 3u);
  EXPECT_EQ(log.fatal_indices()[0], 0u);  // new earliest fatal sorted to front
}

TEST(RasLog, RangeQueries) {
  RasLog log;
  for (int h = 0; h < 10; ++h) {
    log.append(make_event(codes::kRasStormFatal,
                          strformat("2009-01-05-%02d.00.00", h).c_str(), "R01-M0-N00-J04"));
  }
  log.finalize();
  const TimePoint t3 = TimePoint::from_calendar(2009, 1, 5, 3);
  const TimePoint t6 = TimePoint::from_calendar(2009, 1, 5, 6);
  EXPECT_EQ(log.lower_bound(t3), 3u);
  EXPECT_EQ(log.in_range(t3, t6).size(), 3u);
  EXPECT_EQ(log.in_range(TimePoint(0), t3).size(), 3u);
}

TEST(RasLog, CsvRoundTrip) {
  RasLog log;
  log.append(make_event(codes::kRasStormFatal, "2009-01-05-01.02.03.000004", "R01-M0-N00-J04"));
  log.append(make_event("ecc_correctable", "2009-01-05-02.00.00", "R02-M1-N01-J06"));
  log.finalize();

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const RasLog parsed = RasLog::read_csv(in);

  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed[i].errcode, log[i].errcode);
    EXPECT_EQ(parsed[i].event_time, log[i].event_time);
    EXPECT_EQ(parsed[i].location, log[i].location);
    EXPECT_EQ(parsed[i].severity, log[i].severity);
    EXPECT_EQ(parsed[i].serial, log[i].serial);
  }
}

TEST(RasLog, CsvRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(RasLog::read_csv(empty), ParseError);
  std::istringstream badheader("A,B,C\n");
  EXPECT_THROW(RasLog::read_csv(badheader), ParseError);
}

}  // namespace
}  // namespace coral::ras
