#include <gtest/gtest.h>

#include <map>
#include <set>

#include "coral/fault/process.hpp"
#include "coral/fault/storm.hpp"

namespace coral::fault {
namespace {

using ras::Catalog;
using ras::FaultNature;
using ras::JobImpact;

FaultConfig test_config() {
  FaultConfig c;
  c.interrupting_rate_per_day = 2.0;
  c.persistent_rate_per_day = 0.5;
  c.idle_rate_per_day = 2.0;
  c.benign_rate_per_day = 1.0;
  return c;
}

OccupancyView all_idle() {
  return {[](bgp::MidplaneId) { return false; }, [](bgp::MidplaneId) { return 0.0; }};
}

TEST(FaultProcess, IdleMachineStillGetsLocations) {
  SystemFaultProcess proc(test_config(), Rng(99));
  Trigger trig;
  trig.cls = TriggerClass::Interrupting;
  trig.code = Catalog::instance().fatal_ids()[10];
  const auto loc = proc.choose_location(trig, all_idle());
  ASSERT_TRUE(loc.has_value());  // base weight covers the idle machine
}

TEST(FaultProcess, TriggersAreTimeOrderedAndBounded) {
  SystemFaultProcess proc(test_config(), Rng(1));
  const TimePoint start = TimePoint::from_calendar(2009, 1, 5);
  const TimePoint end = start + 30 * kUsecPerDay;
  TimePoint prev = start;
  int count = 0;
  while (auto trig = proc.next(prev, end)) {
    EXPECT_GT(trig->time, prev);
    EXPECT_LT(trig->time, end);
    prev = trig->time;
    ++count;
  }
  // ~5.5 triggers/day nominal; clustering makes the effective rate higher.
  EXPECT_GT(count, 60);
  EXPECT_LT(count, 1200);
}

TEST(FaultProcess, TriggerCountScalesWithRate) {
  const TimePoint start = TimePoint::from_calendar(2009, 1, 5);
  const TimePoint end = start + 60 * kUsecPerDay;
  int counts[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    FaultConfig c = test_config();
    if (i == 1) {
      c.interrupting_rate_per_day *= 4;
      c.idle_rate_per_day *= 4;
      c.benign_rate_per_day *= 4;
      c.persistent_rate_per_day *= 4;
    }
    SystemFaultProcess proc(c, Rng(2));
    TimePoint t = start;
    while (auto trig = proc.next(t, end)) {
      t = trig->time;
      ++counts[i];
    }
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 4.0, 1.2);
}

TEST(FaultProcess, ClassesMatchCatalogGroundTruth) {
  SystemFaultProcess proc(test_config(), Rng(3));
  const TimePoint start = TimePoint::from_calendar(2009, 1, 5);
  const TimePoint end = start + 120 * kUsecPerDay;
  TimePoint t = start;
  const Catalog& cat = Catalog::instance();
  while (auto trig = proc.next(t, end)) {
    t = trig->time;
    const auto& info = cat.info(trig->code);
    EXPECT_NE(info.nature, FaultNature::ApplicationError) << info.name;
    switch (trig->cls) {
      case TriggerClass::Benign:
        EXPECT_EQ(info.impact, JobImpact::Benign);
        break;
      case TriggerClass::IdleHardware:
        EXPECT_TRUE(info.idle_bias);
        break;
      case TriggerClass::Persistent:
        EXPECT_TRUE(info.persistent);
        break;
      case TriggerClass::Interrupting:
        EXPECT_FALSE(info.persistent);
        EXPECT_FALSE(info.idle_bias);
        EXPECT_EQ(info.impact, JobImpact::Interrupting);
        break;
    }
  }
}

TEST(FaultProcess, IdleTriggersAvoidBusyMidplanes) {
  SystemFaultProcess proc(test_config(), Rng(4));
  // Midplanes 0..39 busy, 40..79 idle.
  const OccupancyView view{[](bgp::MidplaneId m) { return m < 40; },
                           [](bgp::MidplaneId) { return 0.0; }};
  const Catalog& cat = Catalog::instance();
  for (int i = 0; i < 200; ++i) {
    Trigger trig;
    trig.cls = TriggerClass::IdleHardware;
    // Pick any idle-biased code.
    for (auto id : cat.fatal_ids()) {
      if (cat.info(id).idle_bias) {
        trig.code = id;
        break;
      }
    }
    const auto loc = proc.choose_location(trig, view);
    ASSERT_TRUE(loc.has_value());
    const auto mid = loc->midplane_id();
    if (mid) {
      EXPECT_GE(*mid, 40);
    } else {
      EXPECT_GE(loc->rack_index(), 20);
    }
  }
}

TEST(FaultProcess, IdleTriggerDroppedOnFullMachine) {
  SystemFaultProcess proc(test_config(), Rng(5));
  const OccupancyView view{[](bgp::MidplaneId) { return true; },
                           [](bgp::MidplaneId) { return 0.0; }};
  Trigger trig;
  trig.cls = TriggerClass::IdleHardware;
  trig.code = Catalog::instance().fatal_ids()[0];
  for (auto id : Catalog::instance().fatal_ids()) {
    if (Catalog::instance().info(id).idle_bias) {
      trig.code = id;
      break;
    }
  }
  EXPECT_FALSE(proc.choose_location(trig, view).has_value());
}

TEST(FaultProcess, InterruptingTriggersPreferWideMidplanes) {
  FaultConfig config = test_config();
  config.wide_boost_per_hour = 5.0;
  SystemFaultProcess proc(config, Rng(6));
  // Midplanes 32..63 carry 10 hours of recent wide exposure; all busy.
  const OccupancyView view{
      [](bgp::MidplaneId) { return true; },
      [](bgp::MidplaneId m) { return m >= 32 && m < 64 ? 10.0 : 0.0; }};
  const Catalog& cat = Catalog::instance();
  Trigger trig;
  trig.cls = TriggerClass::Interrupting;
  for (auto id : cat.fatal_ids()) {
    const auto& info = cat.info(id);
    if (!info.idle_bias && !info.persistent && info.impact == JobImpact::Interrupting &&
        info.nature == FaultNature::SystemFailure) {
      trig.code = id;
      break;
    }
  }
  int in_region = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const auto loc = proc.choose_location(trig, view);
    ASSERT_TRUE(loc.has_value());
    const auto mid = loc->midplane_id();
    if (mid && *mid >= 32 && *mid < 64) ++in_region;
  }
  EXPECT_GT(in_region, n * 3 / 5);  // strongly biased toward the wide region
}

TEST(FaultProcess, RepairTimesPositiveAndCapped) {
  FaultConfig config = test_config();
  config.repair_mean_hours = 4.0;
  SystemFaultProcess proc(config, Rng(7));
  for (int i = 0; i < 1000; ++i) {
    const Usec r = proc.sample_repair_time();
    EXPECT_GT(r, 0);
    EXPECT_LE(r, static_cast<Usec>(2.5 * 4.0 * kUsecPerHour));
  }
}

TEST(Storm, PrimaryRecordAlwaysEmitted) {
  StormModel storm(StormConfig{});
  Rng rng(8);
  Manifestation m;
  m.time = TimePoint::from_calendar(2009, 2, 1);
  m.code = *Catalog::instance().find(ras::codes::kRasStormFatal);
  m.location = bgp::Location::parse("R05-M1-N03-J07");
  m.truth_tag = 42;
  std::vector<TaggedEvent> out;
  storm.expand(m, rng, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].event.event_time, m.time);
  EXPECT_EQ(out[0].event.location, m.location);
  EXPECT_EQ(out[0].event.errcode, m.code);
  for (const auto& te : out) EXPECT_EQ(te.truth_tag, 42);
}

TEST(Storm, JobHitFansOutAcrossPartition) {
  StormConfig config;
  config.spatial_nodes_mean = 20;
  StormModel storm(config);
  Rng rng(9);
  Manifestation m;
  m.time = TimePoint::from_calendar(2009, 2, 1);
  m.code = *Catalog::instance().find("_bgp_err_kernel_panic");
  m.location = bgp::Location::parse("R08-M0-N00-J04");
  m.job_partition = bgp::Partition::parse("R08-R11");
  m.truth_tag = 1;
  std::vector<TaggedEvent> out;
  storm.expand(m, rng, out);
  EXPECT_GT(out.size(), 10u);
  std::set<std::uint32_t> locations;
  for (const auto& te : out) {
    locations.insert(te.event.location.packed());
    // Every record lands within the job's partition footprint.
    const auto mid = te.event.location.midplane_id();
    ASSERT_TRUE(mid.has_value());
    EXPECT_TRUE(m.job_partition->contains(*mid));
  }
  EXPECT_GT(locations.size(), 5u);  // genuinely spread across nodes
}

TEST(Storm, RecordsStayWithinTemporalWindow) {
  StormConfig config;
  StormModel storm(config);
  Rng rng(10);
  Manifestation m;
  m.time = TimePoint::from_calendar(2009, 2, 1);
  m.code = *Catalog::instance().find("_bgp_err_l2_array_fatal");
  m.location = bgp::Location::parse("R01-M0-N01-J05");
  m.job_partition = bgp::Partition::parse("R01-M0");
  std::vector<TaggedEvent> out;
  storm.expand(m, rng, out);
  for (const auto& te : out) {
    EXPECT_GE(te.event.event_time, m.time);
    EXPECT_LE(te.event.event_time - m.time, 2 * config.temporal_window + 5 * kUsecPerSec);
  }
}

TEST(Storm, CascadePartnerTableIsConsistent) {
  const Catalog& cat = Catalog::instance();
  int pairs = 0;
  for (ras::ErrcodeId id : cat.fatal_ids()) {
    if (const auto partner = StormModel::cascade_partner(id)) {
      ++pairs;
      EXPECT_NE(*partner, id);
      EXPECT_EQ(cat.info(*partner).severity, ras::Severity::Fatal);
    }
  }
  EXPECT_GE(pairs, 4);
}

TEST(Storm, CascadeEmitsPartnerCode) {
  StormConfig config;
  config.cascade_prob = 1.0;
  StormModel storm(config);
  Rng rng(11);
  Manifestation m;
  m.time = TimePoint::from_calendar(2009, 2, 1);
  m.code = *Catalog::instance().find(ras::codes::kRasStormFatal);
  m.location = bgp::Location::parse("R02-M1-N09-J20");
  std::vector<TaggedEvent> out;
  storm.expand(m, rng, out);
  const auto partner = StormModel::cascade_partner(m.code);
  ASSERT_TRUE(partner.has_value());
  bool saw_partner = false;
  for (const auto& te : out) saw_partner |= te.event.errcode == *partner;
  EXPECT_TRUE(saw_partner);
}

TEST(Storm, IdleFaultEmitsNoPartitionFanout) {
  StormModel storm(StormConfig{});
  Rng rng(12);
  Manifestation m;
  m.time = TimePoint::from_calendar(2009, 2, 1);
  m.code = *Catalog::instance().find("diags_lattice_fail_00");
  m.location = bgp::Location::parse("R30-M1-N02");
  std::vector<TaggedEvent> out;
  storm.expand(m, rng, out);
  for (const auto& te : out) {
    EXPECT_EQ(te.event.location, m.location);  // no job partition -> no fan-out
  }
}

}  // namespace
}  // namespace coral::fault
