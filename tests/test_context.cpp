// coral::Context: explicit catalog / pool / sink / seed handles replacing
// the old process-global state. Covers heterogeneous catalog lookup, a
// three-errcode toy catalog driving the generator + analysis end to end,
// two concurrent analyses over distinct catalogs, stage instrumentation,
// the seed policy, and the deprecated CoAnalysisConfig::pool compatibility
// path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <thread>

#include "coral/context.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

using core::Cause;
using core::ErrcodeVerdict;

// ---- toy machine: three FATAL errcodes, no background codes --------------

ras::Catalog toy_catalog() {
  using bgp::LocationKind;
  using ras::Component;
  using ras::FaultNature;
  using ras::JobImpact;
  using ras::Severity;
  std::vector<ras::ErrcodeInfo> entries;
  // Midplane-granularity locations: repeated hits on one midplane are the
  // rule-2 (same-location) signature the classifier keys on.
  entries.push_back({"toy_sys_fatal", "TOY_0001", Component::Kernel, "toy",
                     Severity::Fatal, FaultNature::SystemFailure, JobImpact::Interrupting,
                     /*propagates=*/false, /*persistent=*/false, /*idle_bias=*/false,
                     LocationKind::Midplane, 3.0, "toy system failure"});
  entries.push_back({"toy_app_fatal", "TOY_0002", Component::Kernel, "toy",
                     Severity::Fatal, FaultNature::ApplicationError, JobImpact::Interrupting,
                     false, false, false, LocationKind::ComputeCard, 2.0,
                     "toy application error"});
  entries.push_back({"toy_benign_fatal", "TOY_0003", Component::Mmcs, "toy",
                     Severity::Fatal, FaultNature::SystemFailure, JobImpact::Benign,
                     false, false, false, LocationKind::Midplane, 1.0,
                     "toy benign fatal"});
  return ras::Catalog(std::move(entries));
}

synth::ScenarioConfig toy_scenario(std::uint64_t seed) {
  synth::ScenarioConfig config = synth::small_scenario(seed, 30);
  config.noise.enabled = false;  // the toy catalog has no non-fatal codes
  // Boost the rates so 30 days yield enough observations of every code for
  // the identification and classification rules to reach verdicts.
  config.faults.interrupting_rate_per_day = 2.0;
  config.faults.benign_rate_per_day = 2.5;
  config.faults.persistent_rate_per_day = 0.0;
  config.faults.idle_rate_per_day = 0.0;
  config.workload.buggy_app_prob = 0.05;
  // Short campaigns: a popular app's routine submissions being killed twice
  // in quick succession by independent system faults would mimic the Fig.-2
  // resubmission pattern.
  config.workload.multi_submit_prob = 0.25;
  config.workload.extra_submits_mean = 2.0;
  // With a single interrupting system code, a resubmitted job re-killed by
  // the *next* system fault reproduces the follows-the-executable pattern
  // by construction (on Intrepid, 72 system codes make a same-code re-kill
  // vanishingly rare). Toy users simply do not resubmit after system
  // failures, so that signature stays exclusive to the buggy app.
  config.resubmit.prob_after_system = 0.0;
  return config;
}

const synth::SynthResult& intrepid_data() {
  static const synth::SynthResult result = synth::generate(synth::small_scenario(51, 21));
  return result;
}

// Field-wise comparison of two analysis runs (byte-identity contract).
void expect_same(const core::CoAnalysisResult& a, const core::CoAnalysisResult& b) {
  ASSERT_EQ(a.filtered.groups.size(), b.filtered.groups.size());
  for (std::size_t i = 0; i < a.filtered.groups.size(); ++i) {
    EXPECT_EQ(a.filtered.groups[i].rep, b.filtered.groups[i].rep) << "group " << i;
    EXPECT_EQ(a.filtered.groups[i].members, b.filtered.groups[i].members) << "group " << i;
  }
  ASSERT_EQ(a.matches.interruptions.size(), b.matches.interruptions.size());
  for (std::size_t i = 0; i < a.matches.interruptions.size(); ++i) {
    EXPECT_EQ(a.matches.interruptions[i].group, b.matches.interruptions[i].group);
    EXPECT_EQ(a.matches.interruptions[i].job, b.matches.interruptions[i].job);
    EXPECT_EQ(a.matches.interruptions[i].time, b.matches.interruptions[i].time);
  }
  EXPECT_EQ(a.identification.verdicts, b.identification.verdicts);
  EXPECT_EQ(a.classification.system_type_count(), b.classification.system_type_count());
  EXPECT_EQ(a.classification.application_type_count(),
            b.classification.application_type_count());
  EXPECT_EQ(a.job_filter.kept, b.job_filter.kept);
  EXPECT_EQ(a.system_interruptions, b.system_interruptions);
  EXPECT_EQ(a.application_interruptions, b.application_interruptions);
}

// ---- Catalog::find ------------------------------------------------------

TEST(CatalogFind, HeterogeneousLookupFindsEveryEntry) {
  const ras::Catalog& catalog = ras::default_catalog();
  for (const ras::ErrcodeInfo& info : catalog.all()) {
    const std::string_view sv = info.name;  // no std::string construction
    const auto id = catalog.find(sv);
    ASSERT_TRUE(id.has_value()) << info.name;
    EXPECT_EQ(catalog.info(*id).name, info.name);
  }
  EXPECT_FALSE(catalog.find("no_such_errcode").has_value());
  EXPECT_FALSE(catalog.find(std::string_view{}).has_value());
}

TEST(CatalogFind, CustomCatalogLookup) {
  const ras::Catalog toy = toy_catalog();
  EXPECT_EQ(toy.size(), 3u);
  EXPECT_EQ(toy.fatal_count(), 3);
  EXPECT_TRUE(toy.nonfatal_ids().empty());
  const auto id = toy.find(std::string_view("toy_app_fatal"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(toy.info(*id).nature, ras::FaultNature::ApplicationError);
  EXPECT_FALSE(toy.find(ras::codes::kBulkPowerFatal).has_value());
}

// ---- toy catalog end to end ---------------------------------------------

TEST(ContextToyCatalog, GeneratorAndAnalysisRediscoverGroundTruth) {
  const ras::Catalog toy = toy_catalog();
  const Context ctx(toy);
  const synth::SynthResult data = synth::generate(toy_scenario(11), ctx);

  ASSERT_GT(data.ras.size(), 0u);
  EXPECT_EQ(&data.ras.catalog(), &toy);
  for (const ras::RasEvent& ev : data.ras) {
    ASSERT_GE(ev.errcode, 0);
    ASSERT_LT(ev.errcode, 3);
    EXPECT_EQ(ev.severity, ras::Severity::Fatal);  // no non-fatal codes exist
  }
  ASSERT_GT(data.truth.interruptions.size(), 0u);

  // One system code means every coincidental re-kill of a campaign app is
  // a same-code re-kill (Intrepid's 72 system codes dilute that); the
  // follows-the-executable guard has to be correspondingly stiffer. The
  // buggy app clears it by an order of magnitude.
  core::CoAnalysisConfig analysis;
  analysis.classification.min_follow_evidence = 8;
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs, analysis, ctx);
  ASSERT_GT(r.interruption_count(), 0u);

  const auto sys = *toy.find("toy_sys_fatal");
  const auto app = *toy.find("toy_app_fatal");
  const auto benign = *toy.find("toy_benign_fatal");

  // Identification (§IV-A) rediscovers the impact labels from the logs.
  ASSERT_TRUE(r.identification.verdicts.count(sys));
  EXPECT_EQ(r.identification.verdicts.at(sys), ErrcodeVerdict::InterruptionRelated);
  ASSERT_TRUE(r.identification.verdicts.count(app));
  EXPECT_EQ(r.identification.verdicts.at(app), ErrcodeVerdict::InterruptionRelated);
  ASSERT_TRUE(r.identification.verdicts.count(benign));
  EXPECT_EQ(r.identification.verdicts.at(benign), ErrcodeVerdict::NonFatalToJobs);

  // Classification (§IV-B) rediscovers the cause labels.
  ASSERT_TRUE(r.classification.by_code.count(sys));
  EXPECT_EQ(r.classification.cause_of(sys), Cause::SystemFailure);
  ASSERT_TRUE(r.classification.by_code.count(app));
  EXPECT_EQ(r.classification.cause_of(app), Cause::ApplicationError);
}

// ---- concurrent multi-catalog analyses ----------------------------------

TEST(ContextConcurrency, TwoCatalogsOnSeparateThreadsMatchSequentialRuns) {
  const ras::Catalog toy = toy_catalog();

  core::CoAnalysisConfig sharded;
  sharded.execution.shards = 3;

  // Sequential reference runs.
  const synth::SynthResult seq_intrepid = synth::generate(synth::small_scenario(51, 21));
  const auto seq_intrepid_r =
      core::run_coanalysis(seq_intrepid.ras, seq_intrepid.jobs, sharded);
  const synth::SynthResult seq_toy = synth::generate(toy_scenario(11), Context(toy));
  const auto seq_toy_r = core::run_coanalysis(seq_toy.ras, seq_toy.jobs, sharded);

  // The same generation + analysis, concurrently, each thread on its own
  // context (distinct catalog, own pool).
  core::CoAnalysisResult conc_intrepid_r, conc_toy_r;
  std::size_t conc_intrepid_ras = 0, conc_toy_ras = 0;
  std::thread intrepid_thread([&] {
    par::ThreadPool pool(2);
    const Context ctx = Context().with_pool(&pool);
    const synth::SynthResult data = synth::generate(synth::small_scenario(51, 21), ctx);
    conc_intrepid_ras = data.ras.size();
    conc_intrepid_r = core::run_coanalysis(data.ras, data.jobs, sharded, ctx);
  });
  std::thread toy_thread([&] {
    par::ThreadPool pool(2);
    const Context ctx = Context(toy).with_pool(&pool);
    const synth::SynthResult data = synth::generate(toy_scenario(11), ctx);
    conc_toy_ras = data.ras.size();
    conc_toy_r = core::run_coanalysis(data.ras, data.jobs, sharded, ctx);
  });
  intrepid_thread.join();
  toy_thread.join();

  EXPECT_EQ(conc_intrepid_ras, seq_intrepid.ras.size());
  EXPECT_EQ(conc_toy_ras, seq_toy.ras.size());
  expect_same(seq_intrepid_r, conc_intrepid_r);
  expect_same(seq_toy_r, conc_toy_r);
}

// ---- instrumentation ----------------------------------------------------

TEST(ContextInstrumentation, SinkRecordsStagesWithoutChangingResults) {
  const synth::SynthResult& data = intrepid_data();
  const auto plain = core::run_coanalysis(data.ras, data.jobs, {});

  RecordingSink sink;
  const auto instrumented =
      core::run_coanalysis(data.ras, data.jobs, {}, Context().with_sink(&sink));
  expect_same(plain, instrumented);

  const std::vector<StageSample> samples = sink.samples();
  const auto stage = [&samples](std::string_view name) -> const StageSample* {
    const auto it = std::find_if(samples.begin(), samples.end(),
                                 [name](const StageSample& s) { return s.stage == name; });
    return it == samples.end() ? nullptr : &*it;
  };
  // Streaming front-end stages plus the engine-independent back half.
  for (const char* name : {"ingest", "filter.coalesce", "filter.match", "merge",
                           "identification", "classification", "job_filter",
                           "propagation", "vulnerability"}) {
    EXPECT_NE(stage(name), nullptr) << name;
  }
  const StageSample* ingest = stage("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_EQ(ingest->in, data.ras.size());
  EXPECT_EQ(ingest->out, data.ras.summary().fatal_records);
  const StageSample* merge = stage("merge");
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->out, instrumented.matches.interruptions.size());

  const std::string json = sink.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"stage\": \"ingest\""), std::string::npos);
  EXPECT_GE(sink.total_ms("ingest"), 0.0);
}

TEST(ContextInstrumentation, BatchEngineReportsItsOwnStages) {
  const synth::SynthResult& data = intrepid_data();
  core::CoAnalysisConfig config;
  config.execution.engine = core::Engine::Batch;
  RecordingSink sink;
  const auto r = core::run_coanalysis(data.ras, data.jobs, config, Context().with_sink(&sink));
  EXPECT_EQ(r.engine_used, core::Engine::Batch);
  const auto samples = sink.samples();
  const auto has = [&samples](std::string_view name) {
    return std::any_of(samples.begin(), samples.end(),
                       [name](const StageSample& s) { return s.stage == name; });
  };
  EXPECT_TRUE(has("filter.batch"));
  EXPECT_TRUE(has("matching"));
  EXPECT_FALSE(has("ingest"));  // streaming-only stage
}

// ---- seed policy --------------------------------------------------------

TEST(ContextSeed, DefaultSeedReproducesPlainGeneration) {
  const auto base = synth::generate(synth::small_scenario(51, 7));
  const auto via_ctx = synth::generate(synth::small_scenario(51, 7), Context());
  ASSERT_EQ(base.ras.size(), via_ctx.ras.size());
  for (std::size_t i = 0; i < base.ras.size(); ++i) {
    ASSERT_EQ(base.ras[i].event_time, via_ctx.ras[i].event_time);
    ASSERT_EQ(base.ras[i].errcode, via_ctx.ras[i].errcode);
    ASSERT_EQ(base.ras[i].serial, via_ctx.ras[i].serial);
  }
}

TEST(ContextSeed, SeedOffsetDecorrelatesGeneration) {
  const auto base = synth::generate(synth::small_scenario(51, 7));
  const auto shifted = synth::generate(synth::small_scenario(51, 7), Context().with_seed(99));
  bool differs = base.ras.size() != shifted.ras.size();
  for (std::size_t i = 0; !differs && i < base.ras.size(); ++i) {
    differs = base.ras[i].event_time != shifted.ras[i].event_time ||
              base.ras[i].serial != shifted.ras[i].serial;
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(Context().with_seed(99).derive_seed(51), 51u ^ 99u);
  EXPECT_EQ(Context().derive_seed(51), 51u);
}

// ---- pool via Context ----------------------------------------------------

TEST(ContextPool, ContextPoolMatchesSerial) {
  const synth::SynthResult& data = intrepid_data();
  core::CoAnalysisConfig sharded;
  sharded.execution.shards = 2;
  const auto serial = core::run_coanalysis(data.ras, data.jobs, sharded);

  par::ThreadPool pool(2);
  const auto via_ctx = core::run_coanalysis(data.ras, data.jobs, sharded,
                                            Context().with_pool(&pool));
  expect_same(serial, via_ctx);
}

}  // namespace
}  // namespace coral
