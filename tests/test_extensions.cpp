// Tests for the §VII extension modules: failure-prediction replay and
// checkpoint-policy simulation.
#include <gtest/gtest.h>

#include "coral/common/error.hpp"
#include "coral/core/checkpoint.hpp"
#include "coral/core/prediction.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::core {
namespace {

struct Fixture {
  synth::SynthResult data;
  CoAnalysisResult r;
};

const Fixture& fx() {
  static const Fixture f = [] {
    Fixture out;
    out.data = synth::generate(synth::small_scenario(61, 60));
    out.r = run_coanalysis(out.data.ras, out.data.jobs);
    return out;
  }();
  return f;
}

TEST(Prediction, CountersAreConsistent) {
  const auto& [data, r] = fx();
  const auto outcome = evaluate_predictor(r, data.jobs, {});
  EXPECT_LE(outcome.true_alarms, outcome.alarms);
  EXPECT_LE(outcome.caught, outcome.total_interruptions);
  EXPECT_EQ(outcome.total_interruptions, r.interruption_count());
  EXPECT_GE(outcome.disturbed_node_hours, 0.0);
  EXPECT_LE(outcome.precision(), 1.0);
  EXPECT_LE(outcome.recall(), 1.0);
}

TEST(Prediction, PersistentFaultsMakeLocationAlarmsUseful) {
  const auto& [data, r] = fx();
  PredictorConfig config;
  config.horizon = 6 * kUsecPerHour;
  const auto outcome = evaluate_predictor(r, data.jobs, config);
  // Persistent-fault kill chains mean an alarm at the failed location does
  // predict future interruptions well above chance.
  EXPECT_GT(outcome.recall(), 0.10);
  EXPECT_GT(outcome.true_alarms, 0u);
}

TEST(Prediction, MachineWideAlarmsDisturbFarMoreWork) {
  const auto& [data, r] = fx();
  PredictorConfig local;
  PredictorConfig global;
  global.use_location = false;
  const auto a = evaluate_predictor(r, data.jobs, local);
  const auto b = evaluate_predictor(r, data.jobs, global);
  // Same alarms, but acting machine-wide touches much more healthy work —
  // the paper's argument for location-aware prediction (Obs. 7).
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_GT(b.disturbed_node_hours, 5.0 * a.disturbed_node_hours);
  // And machine-wide alarms cannot have lower recall.
  EXPECT_GE(b.recall(), a.recall());
}

TEST(Prediction, IdentificationFilterRemovesAlarms) {
  const auto& [data, r] = fx();
  PredictorConfig with;
  PredictorConfig without;
  without.use_identification = false;
  const auto a = evaluate_predictor(r, data.jobs, with);
  const auto b = evaluate_predictor(r, data.jobs, without);
  EXPECT_LT(a.alarms, b.alarms);  // benign codes dropped
}

TEST(Prediction, LongerHorizonCatchesMore) {
  const auto& [data, r] = fx();
  PredictorConfig short_h;
  short_h.horizon = kUsecPerHour;
  PredictorConfig long_h;
  long_h.horizon = 12 * kUsecPerHour;
  EXPECT_LE(evaluate_predictor(r, data.jobs, short_h).caught,
            evaluate_predictor(r, data.jobs, long_h).caught);
}

TEST(Checkpoint, YoungIntervalFormula) {
  // sqrt(2 * 300 s * 30000 s) = sqrt(1.8e7) ~ 4243 s.
  const Usec interval = young_interval(300 * kUsecPerSec, 30000.0);
  EXPECT_NEAR(static_cast<double>(interval) / kUsecPerSec, 4242.6, 1.0);
  EXPECT_THROW(young_interval(0, 100.0), InvalidArgument);
}

TEST(Checkpoint, NoCheckpointingLosesWholeRuns) {
  const auto& [data, r] = fx();
  CheckpointPlan plan;
  plan.mode = CheckpointMode::None;
  const auto outcome = simulate_checkpointing(r, data.jobs, plan);
  EXPECT_EQ(outcome.checkpoints, 0u);
  EXPECT_EQ(outcome.overhead_node_hours, 0.0);
  // Every interrupted job loses its entire runtime.
  double expect = 0;
  for (std::size_t j = 0; j < data.jobs.size(); ++j) {
    if (!r.matches.group_by_job[j]) continue;
    expect += data.jobs[j].size_midplanes() *
              static_cast<double>(data.jobs[j].runtime()) / kUsecPerHour;
  }
  EXPECT_NEAR(outcome.lost_node_hours, expect, 1e-6);
}

TEST(Checkpoint, FrequentCheckpointsTradeLossForOverhead) {
  const auto& [data, r] = fx();
  CheckpointPlan frequent;
  frequent.mode = CheckpointMode::FixedInterval;
  frequent.interval = 10 * kUsecPerMin;
  CheckpointPlan rare;
  rare.mode = CheckpointMode::FixedInterval;
  rare.interval = 12 * kUsecPerHour;
  const auto a = simulate_checkpointing(r, data.jobs, frequent);
  const auto b = simulate_checkpointing(r, data.jobs, rare);
  EXPECT_LT(a.lost_node_hours, b.lost_node_hours);
  EXPECT_GT(a.overhead_node_hours, b.overhead_node_hours);
}

TEST(Checkpoint, YoungBeatsNaiveExtremes) {
  const auto& [data, r] = fx();
  CheckpointPlan young;
  young.mode = CheckpointMode::YoungFromMtti;
  CheckpointPlan none;
  none.mode = CheckpointMode::None;
  CheckpointPlan manic;
  manic.mode = CheckpointMode::FixedInterval;
  manic.interval = 5 * kUsecPerMin;
  const auto w_young = simulate_checkpointing(r, data.jobs, young).total_waste();
  EXPECT_LT(w_young, simulate_checkpointing(r, data.jobs, none).total_waste());
  EXPECT_LT(w_young, simulate_checkpointing(r, data.jobs, manic).total_waste());
}

TEST(Checkpoint, SkipFirstHourReducesOverheadOnFlaggedJobs) {
  const auto& [data, r] = fx();
  CheckpointPlan young;
  young.mode = CheckpointMode::YoungFromMtti;
  CheckpointPlan skip;
  skip.mode = CheckpointMode::YoungSkipFirstHour;
  const auto a = simulate_checkpointing(r, data.jobs, young);
  const auto b = simulate_checkpointing(r, data.jobs, skip);
  if (b.skipped_first_hour_jobs == 0) GTEST_SKIP() << "no flagged executables";
  EXPECT_LE(b.checkpoints, a.checkpoints);
  EXPECT_LE(b.overhead_node_hours, a.overhead_node_hours);
}

}  // namespace
}  // namespace coral::core
