// Tests for the figure-data CSV exporters and the §V-B midplane-level fits.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "coral/common/csv.hpp"
#include "coral/common/error.hpp"
#include "coral/core/export.hpp"
#include "coral/core/midplane.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::core {
namespace {

struct Fixture {
  synth::SynthResult data;
  CoAnalysisResult r;
};

const Fixture& fx() {
  static const Fixture f = [] {
    Fixture out;
    out.data = synth::generate(synth::small_scenario(101, 45));
    out.r = run_coanalysis(out.data.ras, out.data.jobs);
    return out;
  }();
  return f;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(in);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader.read_row(row)) {
    if (row.size() == 1 && row[0].empty()) continue;
    rows.push_back(row);
  }
  return rows;
}

TEST(Export, CdfCsvIsMonotone) {
  std::ostringstream out;
  export_cdf_csv(out, fx().r.fatal_before_jobfilter);
  const auto rows = parse_csv(out.str());
  ASSERT_GT(rows.size(), 10u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"interarrival_s", "empirical", "weibull",
                                               "exponential"}));
  double prev_x = -1, prev_p = -1;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double x = std::stod(rows[i][0]);
    const double p = std::stod(rows[i][1]);
    EXPECT_GE(x, prev_x);
    EXPECT_GE(p, prev_p);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev_x = x;
    prev_p = p;
  }
  EXPECT_NEAR(std::stod(rows.back()[1]), 1.0, 1e-9);
}

TEST(Export, MidplaneCsvHas80Rows) {
  std::ostringstream out;
  export_midplane_csv(out, fx().r);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 81u);  // header + 80 midplanes
  EXPECT_EQ(rows[1][0], "R00-M0");
  EXPECT_EQ(rows[80][0], "R39-M1");
}

TEST(Export, DailyCsvSumsToInterruptions) {
  std::ostringstream out;
  export_daily_csv(out, fx().r);
  const auto rows = parse_csv(out.str());
  long total = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) total += std::stol(rows[i][1]);
  EXPECT_EQ(static_cast<std::size_t>(total), fx().r.interruption_count());
}

TEST(Export, GridCsvMatchesGrid) {
  std::ostringstream out;
  export_grid_csv(out, fx().r);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u + 9u * 4u);
  long total = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) total += std::stol(rows[i][3]);
  EXPECT_EQ(static_cast<std::size_t>(total), fx().r.vulnerability.grid.total.total);
}

TEST(Export, ResubmissionCsvHasSixRows) {
  std::ostringstream out;
  export_resubmission_csv(out, fx().r);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[1][0], "system");
  EXPECT_EQ(rows[4][0], "application");
}

TEST(Export, ExportAllWritesEightFiles) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "coral_export_test").string();
  std::filesystem::create_directories(dir);
  EXPECT_EQ(export_all(dir, fx().r), 8);
  for (const char* name :
       {"fig3a_fatal_cdf_before.csv", "fig4_midplanes.csv", "fig5_daily.csv",
        "fig7_resubmissions.csv", "table6_grid.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(Export, ExportAllThrowsOnBadDirectory) {
  EXPECT_THROW(export_all("/nonexistent/nope", fx().r), coral::Error);
}

TEST(MidplaneFits, FitsWhereDataSuffices) {
  const MidplaneFits fits = fit_midplane_interarrivals(fx().r.filtered);
  EXPECT_GT(fits.fitted_count, 5u);
  EXPECT_LE(fits.fitted_count, 80u);
  // §V-B: Weibull keeps winning at midplane level.
  EXPECT_GT(fits.weibull_preferred_fraction(), 0.6);
  for (const auto& fit : fits.fits) {
    if (!fit) continue;
    EXPECT_GE(fit->samples_sec.size() + 1, 12u);
    EXPECT_GT(fit->weibull.shape(), 0.0);
  }
}

TEST(MidplaneFits, MinEventsRespected) {
  MidplaneFitConfig config;
  config.min_events = 100000;  // absurd: nothing qualifies
  const MidplaneFits fits = fit_midplane_interarrivals(fx().r.filtered, config);
  EXPECT_EQ(fits.fitted_count, 0u);
}

}  // namespace
}  // namespace coral::core
