// Paper-fidelity golden tests: the reduced-scale analogues of Table I
// (log summary), Table IV (Weibull interarrival fits before/after
// filtering) and Fig. 7 (resubmission placement), run end to end through
// synth + co-analysis under plain ctest.
//
// Scale: small_scenario(seed 42, 60 days) — ~86k RAS records, ~13k jobs,
// ~0.7 s wall. The generator is fully seeded, so every number below is
// deterministic today; the tolerances exist to absorb *benign* future
// drift (fit-iteration tweaks, reordered accumulation) while still
// catching a broken filter stage or matching rule, which moves these
// statistics far outside any tolerance here.
//
// Tolerance policy, documented per assertion:
//   - committed-golden values (this exact seed/scale): ±2% relative, or
//     the stated absolute window for small-count statistics;
//   - paper-anchored ratios that are scale-invariant (filtering
//     compression, same-partition share, Weibull shape < 1): asserted
//     against the published value with a wider window, since the reduced
//     scenario only approximates Intrepid's 237-day census.
#include <gtest/gtest.h>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr int kDays = 60;

struct GoldenRun {
  synth::SynthResult data;
  core::CoAnalysisResult result;
};

const GoldenRun& golden_run() {
  static const GoldenRun run = [] {
    GoldenRun r;
    r.data = synth::generate(synth::small_scenario(kSeed, kDays));
    r.result = core::run_coanalysis(r.data.ras, r.data.jobs);
    return r;
  }();
  return run;
}

// ---- Table I analogue: log summary -----------------------------------------

TEST(PaperGolden, Table1LogSummary) {
  const GoldenRun& run = golden_run();
  const auto& summary = run.data.ras.summary();

  // Committed goldens for seed 42 / 60 days (±2% relative): the raw record
  // census is the product of every generator stage, so a drift here means
  // the workload, fault process, storm model or noise emitter changed.
  EXPECT_NEAR(static_cast<double>(run.data.ras.size()), 86239.0, 86239.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(summary.fatal_records), 26964.0, 26964.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(run.data.jobs.size()), 12770.0, 12770.0 * 0.02);

  // FATAL fraction, committed golden 31.27% (±1.5 pp absolute). The paper's
  // raw log sits at 1.6% (33,370 / 2,084,392) only because Intrepid's
  // non-fatal background noise dwarfs the fatal census; small_scenario
  // deliberately thins that noise ~10x to keep tier-1 fast, which raises
  // the fraction but leaves the fatal-side pipeline identical.
  const double fatal_fraction = static_cast<double>(summary.fatal_records) /
                                static_cast<double>(run.data.ras.size());
  EXPECT_NEAR(fatal_fraction, 0.3127, 0.015);
}

// ---- Table IV analogue: filtering compression + Weibull fits ---------------

TEST(PaperGolden, Table4FilteringCompression) {
  const core::CoAnalysisResult& r = golden_run().result;

  // Committed golden: 546 groups out of 26,964 fatal records (±2%).
  EXPECT_NEAR(static_cast<double>(r.filtered.groups.size()), 546.0, 546.0 * 0.02);

  // Scale-invariant paper anchor: temporal+spatial+causality filtering
  // compresses 98.35% on Intrepid (33,370 -> 549). The reduced scenario
  // must land within 1.5 pp of that, or a filter stage changed behaviour.
  EXPECT_NEAR(r.filtered.total_compression(), 0.9835, 0.015);
}

TEST(PaperGolden, Table4WeibullInterarrivals) {
  const core::CoAnalysisResult& r = golden_run().result;

  // Enough samples for the fits to be meaningful at this scale.
  EXPECT_GT(r.fatal_before_jobfilter.samples_sec.size(), 300u);
  EXPECT_GT(r.fatal_after_jobfilter.samples_sec.size(), 300u);

  // Paper anchor (Table IV / Obs. 4): fatal interarrivals are Weibull with
  // decreasing hazard — shape well below 1 — and the LRT prefers Weibull
  // over exponential, before *and* after job-related filtering.
  EXPECT_TRUE(r.fatal_before_jobfilter.lrt.weibull_preferred);
  EXPECT_TRUE(r.fatal_after_jobfilter.lrt.weibull_preferred);
  EXPECT_LT(r.fatal_before_jobfilter.weibull.shape(), 0.8);
  EXPECT_LT(r.fatal_after_jobfilter.weibull.shape(), 0.8);
  EXPECT_GT(r.fatal_before_jobfilter.weibull.shape(), 0.2);
  EXPECT_GT(r.fatal_after_jobfilter.weibull.shape(), 0.2);

  // Committed goldens (±0.05 absolute on the shape): 0.5408 before, 0.5283
  // after, with the Weibull KS distance beating the exponential's.
  EXPECT_NEAR(r.fatal_before_jobfilter.weibull.shape(), 0.5408, 0.05);
  EXPECT_NEAR(r.fatal_after_jobfilter.weibull.shape(), 0.5283, 0.05);
  EXPECT_LT(r.fatal_before_jobfilter.ks_weibull, r.fatal_before_jobfilter.ks_exponential);
  EXPECT_LT(r.fatal_after_jobfilter.ks_weibull, r.fatal_after_jobfilter.ks_exponential);
}

// ---- Fig. 7 analogue: resubmission placement -------------------------------

TEST(PaperGolden, Fig7ResubmissionStats) {
  const core::CoAnalysisResult& r = golden_run().result;

  // Committed goldens (±2% relative): the interruption census this scale
  // produces. 239 interruptions split 113 system / 126 application.
  EXPECT_NEAR(static_cast<double>(r.matches.interruptions.size()), 239.0, 239.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.system_interruptions), 113.0, 113.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(r.application_interruptions), 126.0, 126.0 * 0.05);

  // Enough resubmissions for the share to be a statistic, not noise.
  EXPECT_GT(r.propagation.resubmissions_after_interruption, 100u);

  // Paper anchor (§VI-C, Fig. 7 discussion): 57.44% of post-interruption
  // resubmissions land on the same partition. ±5 pp absolute: with ~230
  // resubmissions, one-sigma binomial noise alone is ~3 pp, and the
  // scheduler preset (resubmit_same_partition_prob = 0.80 minus blacklist
  // and availability losses) targets the published share, not an exact hit.
  EXPECT_NEAR(r.propagation.same_partition_fraction(), 0.5744, 0.05);
}

// ---- Nightly-scale golden: the full 237-day Intrepid scenario --------------
//
// The same three paper artifacts, but at the paper's own scale: the full
// intrepid_scenario census (~1.96M RAS records, ~66.5k jobs, ~7 s to
// generate). Committed goldens here are ±1% relative — half the reduced-
// scale window — because the full census averages away the small-sample
// noise that forces the wider tolerances above. Paper anchors get their
// honest gap stated inline. Runs under the `slow` label only.

const GoldenRun& full_run() {
  static const GoldenRun run = [] {
    GoldenRun r;
    r.data = synth::generate(synth::intrepid_scenario(42));
    r.result = core::run_coanalysis(r.data.ras, r.data.jobs);
    return r;
  }();
  return run;
}

TEST(PaperGoldenFull, Table1LogSummary) {
  const GoldenRun& run = full_run();
  const auto& summary = run.data.ras.summary();

  // Committed goldens, seed 42 / 237 days (±1%).
  EXPECT_NEAR(static_cast<double>(run.data.ras.size()), 1964902.0, 1964902.0 * 0.01);
  EXPECT_NEAR(static_cast<double>(summary.fatal_records), 38407.0, 38407.0 * 0.01);
  EXPECT_NEAR(static_cast<double>(run.data.jobs.size()), 66537.0, 66537.0 * 0.01);

  // Paper anchor: at full scale the FATAL fraction lands at 1.95%, finally
  // comparable to the paper's raw-log 1.6% (33,370 / 2,084,392) — the
  // reduced scenarios can't show this because they thin the noise floor.
  const double fatal_fraction = static_cast<double>(summary.fatal_records) /
                                static_cast<double>(run.data.ras.size());
  EXPECT_NEAR(fatal_fraction, 0.0195, 0.006);
}

TEST(PaperGoldenFull, Table4FilteringAndWeibull) {
  const core::CoAnalysisResult& r = full_run().result;

  // Committed goldens (±1%): 824 groups from 38,407 fatal records.
  EXPECT_NEAR(static_cast<double>(r.filtered.groups.size()), 824.0, 824.0 * 0.01);
  // Compression 97.85% vs the paper's 98.35% — within 1 pp at full scale.
  EXPECT_NEAR(r.filtered.total_compression(), 0.9785, 0.01);

  // Weibull fits on the full census: ±0.02 absolute on the shape (the
  // reduced-scale window is 0.05). Decreasing hazard before and after
  // job-related filtering, Weibull preferred by LRT and KS, as in Table IV.
  EXPECT_TRUE(r.fatal_before_jobfilter.lrt.weibull_preferred);
  EXPECT_TRUE(r.fatal_after_jobfilter.lrt.weibull_preferred);
  EXPECT_NEAR(r.fatal_before_jobfilter.weibull.shape(), 0.5249, 0.02);
  EXPECT_NEAR(r.fatal_after_jobfilter.weibull.shape(), 0.5313, 0.02);
  EXPECT_LT(r.fatal_before_jobfilter.ks_weibull, r.fatal_before_jobfilter.ks_exponential);
  EXPECT_LT(r.fatal_after_jobfilter.ks_weibull, r.fatal_after_jobfilter.ks_exponential);
}

TEST(PaperGoldenFull, Fig7Interruptions) {
  const core::CoAnalysisResult& r = full_run().result;

  // Committed goldens (±2% on the total, ±3% on the split): 312
  // interruptions, 186 system / 126 application. Paper: 308 = 206 + 102;
  // the total matches within 1.5%, the split leans more application-heavy
  // than Intrepid's (the bug model is calibrated to Obs. 11's size/time
  // profile, not to the exact 2:1 census split).
  EXPECT_NEAR(static_cast<double>(r.matches.interruptions.size()), 312.0, 312.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.system_interruptions), 186.0, 186.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(r.application_interruptions), 126.0, 126.0 * 0.03);

  // Committed golden 61.4% same-partition resubmissions over 303 resubmits
  // (±2 pp); the paper's 57.44% sits just outside the binomial noise at this
  // scale, so the anchor keeps the wider reduced-scale window.
  EXPECT_GT(r.propagation.resubmissions_after_interruption, 280u);
  EXPECT_NEAR(r.propagation.same_partition_fraction(), 0.6139, 0.02);
  EXPECT_NEAR(r.propagation.same_partition_fraction(), 0.5744, 0.06);
}

}  // namespace
}  // namespace coral
