// Differential suite for the columnar characterization stages.
//
// The four stages downstream of matching (classification, job-related
// filtering, propagation, vulnerability) were rewritten on flat columnar
// inputs (CharColumns). This file freezes the original map/set reference
// implementations verbatim and pins the rewrite against them: every
// statistic in the result structs must match EXPECT_DOUBLE_EQ /
// EXPECT_EQ-exactly — not approximately — across seeds, both engines, and
// the threaded path. (The paper-number goldens in test_paper_golden.cpp
// and test_core_analysis.cpp run through the same public entry points, so
// they exercise the columnar path too; this suite is the byte-identity
// proof that makes those goldens transferable.)
//
// Also holds the BG/Q size_row regression: a 96-midplane job is legal on
// BG/Q but off the BG/P Table VI ladder, and used to throw InvalidArgument
// mid-co-analysis. It must now bucket into the trailing grid row.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "coral/common/error.hpp"
#include "coral/core/jobfilter.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/machine/model.hpp"
#include "coral/stats/correlation.hpp"
#include "coral/synth/intrepid.hpp"
#include "coral/synth/packs.hpp"

namespace {

using namespace coral;

// ---------------------------------------------------------------------------
// Frozen pre-columnar reference implementations. Copied from the original
// row-at-a-time sources (std::map / std::set / nested scans); only renamed.
// Do not "improve" these — their value is that they are the old code.
namespace refimpl {

using namespace coral::core;

int ref_runtime_bucket(double seconds) {
  if (seconds < 400) return 0;
  if (seconds < 1600) return 1;
  if (seconds < 6400) return 2;
  return 3;
}

// The historical BG/P-only ladder. Throws off-ladder, which is the bug the
// production size_row no longer has; the differential scenarios are all
// BG/P, so the reference never hits the throw.
int ref_size_row(int midplanes) {
  switch (midplanes) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
    case 16: return 4;
    case 32: return 5;
    case 48: return 6;
    case 64: return 7;
    case 80: return 8;
    default: throw InvalidArgument("not a Table VI job size: " + std::to_string(midplanes));
  }
}

struct Obs {
  TimePoint time;
  std::size_t job = 0;
  joblog::ExecId exec = 0;
  bgp::Partition partition{0, 1};
  bgp::Location location;
};

ClassificationResult ref_classify(const filter::FilterPipelineResult& filtered,
                                  const MatchResult& matches,
                                  const IdentificationResult& identification,
                                  const joblog::JobLog& jobs,
                                  const ClassificationConfig& config = {}) {
  ClassificationResult result;

  std::map<ras::ErrcodeId, std::vector<Obs>> obs_by_code;
  for (const Interruption& in : matches.interruptions) {
    const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[in.group].rep];
    const joblog::JobRecord& job = jobs[in.job];
    obs_by_code[rep.errcode].push_back(
        {in.time, in.job, job.exec_id, job.partition, rep.location});
  }
  for (auto& [code, v] : obs_by_code) {
    std::sort(v.begin(), v.end(), [](const Obs& a, const Obs& b) { return a.time < b.time; });
  }

  std::vector<std::size_t> survivors;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!matches.group_by_job[j]) survivors.push_back(j);
  }

  for (const auto& [code, verdict] : identification.verdicts) {
    if (verdict == ErrcodeVerdict::Undetermined && obs_by_code.find(code) == obs_by_code.end()) {
      result.by_code[code] = {Cause::SystemFailure, CauseRule::NeverWithJob, 0};
      continue;
    }
    const auto oit = obs_by_code.find(code);
    if (oit == obs_by_code.end()) continue;
    const std::vector<Obs>& v = oit->second;

    bool same_location_repeat = false;
    for (std::size_t i = 0; i + 1 < v.size() && !same_location_repeat; ++i) {
      for (std::size_t k = i + 1; k < v.size(); ++k) {
        if (v[k].time - v[i].time > config.same_location_horizon) break;
        if (v[k].exec != v[i].exec && v[k].location == v[i].location) {
          same_location_repeat = true;
          break;
        }
      }
    }

    int follow_evidence = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool found_for_i = false;
      for (std::size_t k = i + 1; k < v.size() && !found_for_i; ++k) {
        if (v[k].time - v[i].time > config.follow_gap) break;
        if (v[k].exec != v[i].exec) continue;
        if (v[k].partition.overlaps(v[i].partition)) continue;
        for (std::size_t s : survivors) {
          const joblog::JobRecord& job = jobs[s];
          if (job.start_time <= v[i].time || job.start_time >= v[k].time) continue;
          if (job.partition.overlaps(v[i].partition)) {
            found_for_i = true;
            break;
          }
        }
      }
      if (found_for_i) ++follow_evidence;
    }
    const bool follows_exec = follow_evidence >= config.min_follow_evidence;

    if (follows_exec) {
      result.by_code[code] = {Cause::ApplicationError, CauseRule::FollowsResubmission, 0};
    } else if (same_location_repeat) {
      result.by_code[code] = {Cause::SystemFailure, CauseRule::RepeatSameLocation, 0};
    }
  }

  if (!filtered.fatal_events.empty()) {
    const TimePoint begin = filtered.fatal_events.front().event_time;
    const TimePoint end = filtered.fatal_events.back().event_time + 1;

    std::vector<TimePoint> sys_times, app_times;
    std::map<ras::ErrcodeId, std::vector<TimePoint>> code_times;
    for (const filter::EventGroup& g : filtered.groups) {
      const ras::RasEvent& rep = filtered.fatal_events[g.rep];
      code_times[rep.errcode].push_back(rep.event_time);
      const auto cit = result.by_code.find(rep.errcode);
      if (cit == result.by_code.end()) continue;
      (cit->second.cause == Cause::SystemFailure ? sys_times : app_times)
          .push_back(rep.event_time);
    }

    for (const auto& [code, verdict] : identification.verdicts) {
      (void)verdict;
      if (result.by_code.find(code) != result.by_code.end()) continue;
      const auto& times = code_times[code];
      double r_sys = 0, r_app = 0;
      if (!times.empty() && end - begin > config.correlation_window) {
        if (!sys_times.empty()) {
          r_sys = stats::event_time_correlation(times, sys_times, begin, end,
                                                config.correlation_window);
        }
        if (!app_times.empty()) {
          r_app = stats::event_time_correlation(times, app_times, begin, end,
                                                config.correlation_window);
        }
      }
      const Cause cause = r_app > r_sys ? Cause::ApplicationError : Cause::SystemFailure;
      result.by_code[code] = {cause, CauseRule::CorrelationFallback, std::max(r_sys, r_app)};
    }
  }

  if (!filtered.groups.empty()) {
    std::size_t app_events = 0;
    for (const filter::EventGroup& g : filtered.groups) {
      const ras::RasEvent& rep = filtered.fatal_events[g.rep];
      const auto cit = result.by_code.find(rep.errcode);
      if (cit != result.by_code.end() && cit->second.cause == Cause::ApplicationError) {
        ++app_events;
      }
    }
    result.application_event_fraction =
        static_cast<double>(app_events) / static_cast<double>(filtered.groups.size());
  }
  return result;
}

struct GroupObs {
  std::size_t group = 0;
  TimePoint time;
  bgp::Location location;
  std::vector<std::size_t> jobs;
};

JobFilterResult ref_jobfilter(const filter::FilterPipelineResult& filtered,
                              const MatchResult& matches,
                              const ClassificationResult& classification,
                              const joblog::JobLog& jobs,
                              const JobFilterConfig& config = {}) {
  JobFilterResult result;

  std::map<ras::ErrcodeId, std::vector<GroupObs>> by_code;
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    if (matches.jobs_by_group[g].empty()) continue;
    const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[g].rep];
    by_code[rep.errcode].push_back(
        {g, rep.event_time, rep.location, matches.jobs_by_group[g]});
  }

  std::vector<std::size_t> survivors;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!matches.group_by_job[j]) survivors.push_back(j);
  }

  const auto survivor_between = [&](const bgp::Location& where, TimePoint a, TimePoint b) {
    for (std::size_t s : survivors) {
      const joblog::JobRecord& job = jobs[s];
      if (job.start_time <= a || job.end_time >= b) continue;
      if (job.partition.covers(where)) return true;
    }
    return false;
  };

  std::set<std::size_t> redundant;
  for (auto& [code, v] : by_code) {
    std::sort(v.begin(), v.end(),
              [](const GroupObs& a, const GroupObs& b) { return a.time < b.time; });
    const bool app_error =
        classification.by_code.count(code) != 0 &&
        classification.by_code.at(code).cause == Cause::ApplicationError;

    for (std::size_t i = 1; i < v.size(); ++i) {
      for (std::size_t k = i; k-- > 0;) {
        if (v[i].time - v[k].time > config.horizon) break;
        if (redundant.count(v[k].group)) continue;
        bool is_redundant = false;
        if (app_error) {
          for (std::size_t ji : v[i].jobs) {
            for (std::size_t jk : v[k].jobs) {
              if (jobs[ji].exec_id == jobs[jk].exec_id) {
                is_redundant = true;
                break;
              }
            }
            if (is_redundant) break;
          }
        } else {
          if (v[i].location == v[k].location &&
              !survivor_between(v[k].location, v[k].time, v[i].time)) {
            is_redundant = true;
          }
        }
        if (is_redundant) {
          redundant.insert(v[i].group);
          result.redundant_to[v[i].group] = v[k].group;
          break;
        }
      }
    }
  }

  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    if (!redundant.count(g)) result.kept.push_back(g);
  }
  return result;
}

PropagationResult ref_propagation(const filter::FilterPipelineResult& filtered,
                                  const MatchResult& matches,
                                  const joblog::JobLog& jobs,
                                  const PropagationConfig& config = {}) {
  PropagationResult result;

  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    const auto& victims = matches.jobs_by_group[g];
    if (victims.size() < 2) continue;
    bool disjoint = false;
    for (std::size_t i = 0; i + 1 < victims.size() && !disjoint; ++i) {
      for (std::size_t k = i + 1; k < victims.size(); ++k) {
        if (!jobs[victims[i]].partition.overlaps(jobs[victims[k]].partition)) {
          disjoint = true;
          break;
        }
      }
    }
    if (disjoint) {
      result.propagating_groups.push_back(g);
      result.propagating_codes.insert(
          filtered.fatal_events[filtered.groups[g].rep].errcode);
    }
  }
  if (!filtered.groups.empty()) {
    result.propagating_event_fraction =
        static_cast<double>(result.propagating_groups.size()) /
        static_cast<double>(filtered.groups.size());
  }

  std::map<joblog::ExecId, std::vector<std::size_t>> runs;
  for (std::size_t j = 0; j < jobs.size(); ++j) runs[jobs[j].exec_id].push_back(j);
  for (auto& [exec, v] : runs) {
    std::sort(v.begin(), v.end(), [&jobs](std::size_t a, std::size_t b) {
      return jobs[a].start_time < jobs[b].start_time;
    });
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      if (!matches.group_by_job[v[i]]) continue;
      const joblog::JobRecord& prev = jobs[v[i]];
      const joblog::JobRecord& next = jobs[v[i + 1]];
      if (next.queue_time - prev.end_time > config.resubmit_gap) continue;
      result.resubmissions_after_interruption += 1;
      if (next.partition == prev.partition) result.resubmissions_same_partition += 1;
    }
  }
  return result;
}

std::optional<Category> ref_job_category(std::size_t job_idx,
                                         const filter::FilterPipelineResult& filtered,
                                         const MatchResult& matches,
                                         const ClassificationResult& classification) {
  const auto g = matches.group_by_job[job_idx];
  if (!g) return std::nullopt;
  const ras::ErrcodeId code = filtered.fatal_events[filtered.groups[*g].rep].errcode;
  const auto it = classification.by_code.find(code);
  if (it == classification.by_code.end()) return Category::SystemFailure;
  return it->second.cause == Cause::ApplicationError ? Category::ApplicationError
                                                     : Category::SystemFailure;
}

VulnerabilityResult ref_vulnerability(const filter::FilterPipelineResult& filtered,
                                      const MatchResult& matches,
                                      const ClassificationResult& classification,
                                      const joblog::JobLog& jobs,
                                      const VulnerabilityConfig& config = {}) {
  VulnerabilityResult result;

  std::vector<std::optional<Category>> category(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    category[j] = ref_job_category(j, filtered, matches, classification);
  }

  std::map<joblog::ExecId, std::vector<std::size_t>> runs;
  for (std::size_t j = 0; j < jobs.size(); ++j) runs[jobs[j].exec_id].push_back(j);
  std::size_t interruptions_after_k2 = 0, total_interruptions = 0;
  for (auto& [exec, v] : runs) {
    std::sort(v.begin(), v.end(), [&jobs](std::size_t a, std::size_t b) {
      return jobs[a].start_time < jobs[b].start_time;
    });
    int consec = 0;
    bool have_chain_cat = false;
    Category chain_cat = Category::SystemFailure;
    TimePoint last_end;
    for (std::size_t idx = 0; idx < v.size(); ++idx) {
      const std::size_t j = v[idx];
      const bool chained =
          idx > 0 && jobs[j].queue_time - last_end <= config.chain_gap;
      if (!chained) {
        consec = 0;
        have_chain_cat = false;
      }
      if (consec >= 1 && consec <= 3 && have_chain_cat) {
        auto& point =
            result.resubmission[static_cast<std::size_t>(chain_cat)].by_k[
                static_cast<std::size_t>(consec - 1)];
        point.resubmissions += 1;
        if (category[j]) point.interrupted += 1;
      }
      if (category[j]) {
        total_interruptions += 1;
        if (consec >= 2) interruptions_after_k2 += 1;
        consec += 1;
        if (!have_chain_cat) {
          have_chain_cat = true;
          chain_cat = *category[j];
        }
      } else {
        consec = 0;
        have_chain_cat = false;
      }
      last_end = jobs[j].end_time;
    }
  }
  const double uncovered =
      total_interruptions == 0
          ? 0.0
          : 1.0 - static_cast<double>(interruptions_after_k2) /
                      static_cast<double>(total_interruptions);
  result.resubmission[0].uncovered_at_k2 = uncovered;
  result.resubmission[1].uncovered_at_k2 = uncovered;

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (category[j] == Category::ApplicationError) continue;
    const int row = ref_size_row(jobs[j].size_midplanes());
    const int col = ref_runtime_bucket(static_cast<double>(jobs[j].runtime()) /
                                       static_cast<double>(kUsecPerSec));
    const bool interrupted = category[j] == Category::SystemFailure;
    auto bump = [interrupted](GridCell& cell) {
      cell.total += 1;
      if (interrupted) cell.interrupted += 1;
    };
    bump(result.grid.cells[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]);
    bump(result.grid.row_sums[static_cast<std::size_t>(row)]);
    bump(result.grid.col_sums[static_cast<std::size_t>(col)]);
    bump(result.grid.total);
  }

  std::size_t app_total = 0, app_early = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (category[j] != Category::ApplicationError) continue;
    ++app_total;
    const double runtime_sec =
        static_cast<double>(jobs[j].runtime()) / static_cast<double>(kUsecPerSec);
    if (runtime_sec < 3600) ++app_early;
    if (jobs[j].size_midplanes() > 32 && runtime_sec > 1000) {
      result.app_interruptions_wide_long += 1;
    }
  }
  result.app_interruptions_within_hour =
      app_total == 0 ? 0.0 : static_cast<double>(app_early) / static_cast<double>(app_total);

  const auto n_midplanes = static_cast<std::size_t>(jobs.machine().midplane_count());
  std::vector<std::size_t> fatal_per_mid(n_midplanes, 0);
  for (const filter::EventGroup& g : filtered.groups) {
    const auto mid = filtered.fatal_events[g.rep].location.midplane_id();
    if (mid) fatal_per_mid[static_cast<std::size_t>(*mid)] += 1;
  }
  std::vector<bgp::MidplaneId> mids(n_midplanes);
  for (std::size_t m = 0; m < n_midplanes; ++m) mids[m] = static_cast<bgp::MidplaneId>(m);
  std::sort(mids.begin(), mids.end(), [&fatal_per_mid](bgp::MidplaneId a, bgp::MidplaneId b) {
    return fatal_per_mid[static_cast<std::size_t>(a)] >
           fatal_per_mid[static_cast<std::size_t>(b)];
  });
  mids.resize(static_cast<std::size_t>(config.unreliable_midplane_count));
  std::vector<bool> unreliable(n_midplanes, false);
  for (bgp::MidplaneId m : mids) unreliable[static_cast<std::size_t>(m)] = true;

  for (Category cat : {Category::SystemFailure, Category::ApplicationError}) {
    FeatureRanking& ranking = result.features[static_cast<std::size_t>(cat)];
    ranking.unreliable_midplanes = mids;

    std::map<int, std::size_t> by_user, by_project;
    std::size_t cat_total = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (category[j] != cat) continue;
      ++cat_total;
      by_user[jobs[j].user_id] += 1;
      by_project[jobs[j].project_id] += 1;
    }
    const auto top_keys = [cat_total](const std::map<int, std::size_t>& counts, int n,
                                      double& coverage) {
      std::vector<std::pair<std::size_t, int>> v;
      for (const auto& [key, c] : counts) v.push_back({c, key});
      std::sort(v.rbegin(), v.rend());
      std::vector<int> keys;
      std::size_t covered = 0;
      for (int i = 0; i < n && i < static_cast<int>(v.size()); ++i) {
        keys.push_back(v[static_cast<std::size_t>(i)].second);
        covered += v[static_cast<std::size_t>(i)].first;
      }
      coverage = cat_total == 0 ? 0.0
                                : static_cast<double>(covered) /
                                      static_cast<double>(cat_total);
      return keys;
    };
    ranking.suspicious_users = top_keys(by_user, config.suspicious_user_count,
                                        ranking.suspicious_user_coverage);
    ranking.suspicious_projects = top_keys(by_project, config.suspicious_project_count,
                                           ranking.suspicious_project_coverage);
    std::set<int> susp_users(ranking.suspicious_users.begin(),
                             ranking.suspicious_users.end());
    std::set<int> susp_projects(ranking.suspicious_projects.begin(),
                                ranking.suspicious_projects.end());

    stats::FeatureColumn f_user{"user", {}}, f_project{"project", {}},
        f_size{"size", {}}, f_runtime{"execution time", {}}, f_location{"location", {}};
    std::vector<std::uint8_t> labels;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const joblog::JobRecord& job = jobs[j];
      f_user.values.push_back(susp_users.count(job.user_id) ? 1 : 0);
      f_project.values.push_back(susp_projects.count(job.project_id) ? 1 : 0);
      f_size.values.push_back(ref_size_row(job.size_midplanes()));
      f_runtime.values.push_back(ref_runtime_bucket(
          static_cast<double>(job.runtime()) / static_cast<double>(kUsecPerSec)));
      bool on_unreliable = false;
      for (bgp::MidplaneId m : job.partition.midplanes()) {
        if (unreliable[static_cast<std::size_t>(m)]) {
          on_unreliable = true;
          break;
        }
      }
      f_location.values.push_back(on_unreliable ? 1 : 0);
      labels.push_back(category[j] == cat ? 1 : 0);
    }
    const std::vector<stats::FeatureColumn> features = {f_user, f_project, f_size,
                                                        f_runtime, f_location};
    ranking.ranked = stats::rank_features(features, labels);
  }
  return result;
}

}  // namespace refimpl

// ---------------------------------------------------------------------------
// Exact-equality assertions over every statistic the result structs carry.

void expect_classification_eq(const core::ClassificationResult& want,
                              const core::ClassificationResult& got) {
  ASSERT_EQ(want.by_code.size(), got.by_code.size());
  for (const auto& [code, w] : want.by_code) {
    ASSERT_TRUE(got.by_code.count(code)) << "code " << code;
    const core::CodeCause& g = got.by_code.at(code);
    EXPECT_EQ(w.cause, g.cause) << "code " << code;
    EXPECT_EQ(w.rule, g.rule) << "code " << code;
    EXPECT_DOUBLE_EQ(w.correlation, g.correlation) << "code " << code;
  }
  EXPECT_DOUBLE_EQ(want.application_event_fraction, got.application_event_fraction);
}

void expect_jobfilter_eq(const core::JobFilterResult& want,
                         const core::JobFilterResult& got) {
  EXPECT_EQ(want.kept, got.kept);
  EXPECT_EQ(want.redundant_to, got.redundant_to);
}

void expect_propagation_eq(const core::PropagationResult& want,
                           const core::PropagationResult& got) {
  EXPECT_EQ(want.propagating_groups, got.propagating_groups);
  EXPECT_EQ(want.propagating_codes, got.propagating_codes);
  EXPECT_DOUBLE_EQ(want.propagating_event_fraction, got.propagating_event_fraction);
  EXPECT_EQ(want.resubmissions_after_interruption, got.resubmissions_after_interruption);
  EXPECT_EQ(want.resubmissions_same_partition, got.resubmissions_same_partition);
  EXPECT_DOUBLE_EQ(want.same_partition_fraction(), got.same_partition_fraction());
}

void expect_vulnerability_eq(const core::VulnerabilityResult& want,
                             const core::VulnerabilityResult& got) {
  for (std::size_t cat = 0; cat < 2; ++cat) {
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(want.resubmission[cat].by_k[k].resubmissions,
                got.resubmission[cat].by_k[k].resubmissions)
          << "cat " << cat << " k " << k;
      EXPECT_EQ(want.resubmission[cat].by_k[k].interrupted,
                got.resubmission[cat].by_k[k].interrupted)
          << "cat " << cat << " k " << k;
      EXPECT_DOUBLE_EQ(want.resubmission[cat].by_k[k].probability(),
                       got.resubmission[cat].by_k[k].probability())
          << "cat " << cat << " k " << k;
    }
    EXPECT_DOUBLE_EQ(want.resubmission[cat].uncovered_at_k2,
                     got.resubmission[cat].uncovered_at_k2);
  }

  for (std::size_t r = 0; r < 9; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(want.grid.cells[r][c].interrupted, got.grid.cells[r][c].interrupted)
          << "cell " << r << "," << c;
      EXPECT_EQ(want.grid.cells[r][c].total, got.grid.cells[r][c].total)
          << "cell " << r << "," << c;
      EXPECT_DOUBLE_EQ(want.grid.cells[r][c].proportion(),
                       got.grid.cells[r][c].proportion())
          << "cell " << r << "," << c;
    }
    EXPECT_EQ(want.grid.row_sums[r].interrupted, got.grid.row_sums[r].interrupted);
    EXPECT_EQ(want.grid.row_sums[r].total, got.grid.row_sums[r].total);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(want.grid.col_sums[c].interrupted, got.grid.col_sums[c].interrupted);
    EXPECT_EQ(want.grid.col_sums[c].total, got.grid.col_sums[c].total);
  }
  EXPECT_EQ(want.grid.total.interrupted, got.grid.total.interrupted);
  EXPECT_EQ(want.grid.total.total, got.grid.total.total);
  EXPECT_DOUBLE_EQ(want.grid.total.proportion(), got.grid.total.proportion());

  EXPECT_DOUBLE_EQ(want.app_interruptions_within_hour, got.app_interruptions_within_hour);
  EXPECT_EQ(want.app_interruptions_wide_long, got.app_interruptions_wide_long);

  for (std::size_t cat = 0; cat < 2; ++cat) {
    const core::FeatureRanking& w = want.features[cat];
    const core::FeatureRanking& g = got.features[cat];
    EXPECT_EQ(w.unreliable_midplanes, g.unreliable_midplanes) << "cat " << cat;
    EXPECT_EQ(w.suspicious_users, g.suspicious_users) << "cat " << cat;
    EXPECT_EQ(w.suspicious_projects, g.suspicious_projects) << "cat " << cat;
    EXPECT_DOUBLE_EQ(w.suspicious_user_coverage, g.suspicious_user_coverage);
    EXPECT_DOUBLE_EQ(w.suspicious_project_coverage, g.suspicious_project_coverage);
    ASSERT_EQ(w.ranked.size(), g.ranked.size());
    for (std::size_t i = 0; i < w.ranked.size(); ++i) {
      EXPECT_EQ(w.ranked[i].name, g.ranked[i].name) << "cat " << cat << " rank " << i;
      EXPECT_DOUBLE_EQ(w.ranked[i].info_gain, g.ranked[i].info_gain)
          << "cat " << cat << " feature " << w.ranked[i].name;
      EXPECT_DOUBLE_EQ(w.ranked[i].split_info, g.ranked[i].split_info)
          << "cat " << cat << " feature " << w.ranked[i].name;
      EXPECT_DOUBLE_EQ(w.ranked[i].gain_ratio, g.ranked[i].gain_ratio)
          << "cat " << cat << " feature " << w.ranked[i].name;
    }
  }
}

// ---------------------------------------------------------------------------

// Generation dominates these tests; cache per seed (generation is
// deterministic, and nothing mutates the logs).
const synth::SynthResult& scenario(std::uint64_t seed) {
  static std::map<std::uint64_t, synth::SynthResult> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    it = cache.emplace(seed, synth::generate(synth::small_scenario(seed, 60))).first;
  }
  return it->second;
}

core::CoAnalysisResult run_engine(std::uint64_t seed, core::Engine engine,
                                  par::ThreadPool* pool = nullptr) {
  const synth::SynthResult& data = scenario(seed);
  core::CoAnalysisConfig config;
  config.execution.engine = engine;
  Context ctx;
  if (pool != nullptr) ctx.with_pool(pool);
  return core::run_coanalysis(data.ras, data.jobs, config, ctx);
}

// Run every frozen reference stage on the engine's own filter/match output
// and require exact agreement with the columnar results it shipped.
void expect_matches_reference(std::uint64_t seed, const core::CoAnalysisResult& r) {
  const joblog::JobLog& jobs = scenario(seed).jobs;

  const core::ClassificationResult cls =
      refimpl::ref_classify(r.filtered, r.matches, r.identification, jobs);
  expect_classification_eq(cls, r.classification);

  expect_jobfilter_eq(refimpl::ref_jobfilter(r.filtered, r.matches, cls, jobs),
                      r.job_filter);
  expect_propagation_eq(refimpl::ref_propagation(r.filtered, r.matches, jobs),
                        r.propagation);
  expect_vulnerability_eq(refimpl::ref_vulnerability(r.filtered, r.matches, cls, jobs),
                          r.vulnerability);
}

TEST(CharacterizationDifferential, StreamingEngineAcrossSeeds) {
  for (const std::uint64_t seed : {3ull, 17ull, 29ull}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    expect_matches_reference(seed, run_engine(seed, core::Engine::Streaming));
  }
}

TEST(CharacterizationDifferential, BatchEngine) {
  expect_matches_reference(17, run_engine(17, core::Engine::Batch));
}

TEST(CharacterizationDifferential, ThreadedPathIsDeterministic) {
  // The columnar stages fan loops over the pool; the frozen references are
  // serial, so agreement here pins the parallel path to the serial answer.
  par::ThreadPool pool(4);
  expect_matches_reference(17, run_engine(17, core::Engine::Streaming, &pool));
}

TEST(CharacterizationDifferential, EnginesAgreeOnEveryStatistic) {
  const core::CoAnalysisResult streaming = run_engine(17, core::Engine::Streaming);
  const core::CoAnalysisResult batch = run_engine(17, core::Engine::Batch);
  expect_classification_eq(batch.classification, streaming.classification);
  expect_jobfilter_eq(batch.job_filter, streaming.job_filter);
  expect_propagation_eq(batch.propagation, streaming.propagation);
  expect_vulnerability_eq(batch.vulnerability, streaming.vulnerability);
}

// ---------------------------------------------------------------------------
// size_row regression: BG/Q's 96-midplane (full-machine) jobs are off the
// BG/P Table VI ladder. The calibrated BG/Q packs at their golden seeds
// happen never to draw one, which is how the old throwing size_row survived
// the end-to-end pack tests — so force the draw here.

TEST(BgqVulnerability, OffBgpLadderJobSizeCompletesEndToEnd) {
  synth::ScenarioConfig config = synth::base_scenario(machine::bgq_model(), 11, 7);
  config.workload.target_submissions = 1500;
  ASSERT_EQ(config.workload.job_sizes.back(), 96);
  config.workload.size_weights.back() = 1e5;  // make 96-midplane jobs dominant
  const synth::SynthResult data = synth::generate(config);

  bool has_full_machine = false;
  for (const joblog::JobRecord& job : data.jobs) {
    if (job.size_midplanes() == 96) has_full_machine = true;
  }
  ASSERT_TRUE(has_full_machine);

  // Previously threw InvalidArgument("not a Table VI job size: 96") inside
  // analyze_vulnerability; must now complete and bucket 96 into the last
  // row of the BG/Q ladder {1,2,4,8,16,32,64,96}.
  const core::CoAnalysisResult result = core::run_coanalysis(data.ras, data.jobs);
  EXPECT_EQ(core::size_row(96, machine::bgq_model()), 7);
  EXPECT_GT(result.vulnerability.grid.row_sums[7].total, 0u);
  EXPECT_EQ(result.vulnerability.grid.total.total,
            result.vulnerability.grid.row_sums[0].total +
                result.vulnerability.grid.row_sums[1].total +
                result.vulnerability.grid.row_sums[2].total +
                result.vulnerability.grid.row_sums[3].total +
                result.vulnerability.grid.row_sums[4].total +
                result.vulnerability.grid.row_sums[5].total +
                result.vulnerability.grid.row_sums[6].total +
                result.vulnerability.grid.row_sums[7].total +
                result.vulnerability.grid.row_sums[8].total);
}

}  // namespace
