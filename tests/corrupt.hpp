#pragma once

// Deterministic corruption harness for the hardened-ingest tests: every
// mutation is driven by a caller-seeded coral::Rng, so a failing corpus case
// reproduces from its seed alone. The mutators work on raw serialized bytes
// (CSV text or framed binary), exactly like damage in the wild: truncation
// at an arbitrary byte, flipped bits, mangled fields, duplicated rows and
// interleaved garbage.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/rng.hpp"

namespace coral::testing {

/// Cut the tail off: keep a uniform fraction in [min_keep, 1) of the bytes.
inline std::string truncate_bytes(const std::string& data, Rng& rng,
                                  double min_keep = 0.5) {
  if (data.empty()) return data;
  const auto keep = static_cast<std::size_t>(
      rng.uniform(min_keep, 1.0) * static_cast<double>(data.size()));
  return data.substr(0, std::max<std::size_t>(keep, 1));
}

/// Flip `flips` random bits anywhere in the buffer.
inline std::string flip_bits(const std::string& data, Rng& rng, int flips) {
  std::string out = data;
  for (int i = 0; i < flips && !out.empty(); ++i) {
    const std::size_t at = rng.uniform_index(out.size());
    out[at] = static_cast<char>(out[at] ^ (1 << rng.uniform_index(8)));
  }
  return out;
}

// -- Framed-binary mutators: operate on whole CBLK frames so a test can aim
// -- damage at one block kind (v3 compressed bodies, zone maps) instead of
// -- spraying bits and hoping one lands in the structure under test.

/// Byte offsets of every intact "CBLK" frame header after the 8-byte file
/// header (naive scan; mirrors how the lenient reader resynchronizes).
inline std::vector<std::size_t> frame_offsets(const std::string& data) {
  std::vector<std::size_t> at;
  std::size_t p = 8;
  while (p + bin::kBlockHeaderBytes <= data.size()) {
    if (std::memcmp(data.data() + p, bin::kBlockMagic, sizeof bin::kBlockMagic) != 0) {
      ++p;
      continue;
    }
    std::uint32_t size = 0;
    std::memcpy(&size, data.data() + p + sizeof bin::kBlockMagic, sizeof size);
    if (p + bin::kBlockHeaderBytes + size > data.size()) break;
    at.push_back(p);
    p += bin::kBlockHeaderBytes + size;
  }
  return at;
}

/// Offsets of frames whose payload starts with `tag` ('C' columnar blocks,
/// 'S' segment footers, ...).
inline std::vector<std::size_t> frames_with_tag(const std::string& data, char tag) {
  std::vector<std::size_t> out;
  for (const std::size_t p : frame_offsets(data)) {
    if (data[p + bin::kBlockHeaderBytes] == tag) out.push_back(p);
  }
  return out;
}

/// Flip `flips` bits inside the payload of one random `tag` frame. The CRC
/// is left stale, so the framing layer must drop exactly that block.
inline std::string flip_block_payload(const std::string& data, Rng& rng, char tag,
                                      int flips = 1) {
  const auto frames = frames_with_tag(data, tag);
  if (frames.empty()) return data;
  std::string out = data;
  const std::size_t p = frames[rng.uniform_index(frames.size())];
  std::uint32_t size = 0;
  std::memcpy(&size, out.data() + p + sizeof bin::kBlockMagic, sizeof size);
  for (int i = 0; i < flips && size > 0; ++i) {
    const std::size_t at = p + bin::kBlockHeaderBytes + rng.uniform_index(size);
    out[at] = static_cast<char>(out[at] ^ (1 << rng.uniform_index(8)));
  }
  return out;
}

/// Corrupt the 32-byte zone map of one random v3 'C' block and REPAIR the
/// frame CRC, so the lie survives framing and reaches the zone-skip logic:
/// a pushdown read may now wrongly skip (or wrongly decode) that block, and
/// the invariant under test is that accounting stays exact anyway.
inline std::string lie_in_zone_map(const std::string& data, Rng& rng) {
  const auto frames = frames_with_tag(data, 'C');
  if (frames.empty()) return data;
  std::string out = data;
  const std::size_t p = frames[rng.uniform_index(frames.size())];
  std::uint32_t size = 0;
  std::memcpy(&size, out.data() + p + sizeof bin::kBlockMagic, sizeof size);
  // Payload: tag | u32 count | 32-byte zone map | ...
  const std::size_t zone_at = p + bin::kBlockHeaderBytes + 1 + sizeof(std::uint32_t);
  constexpr std::size_t kZoneBytes = 32;
  if (zone_at + kZoneBytes > p + bin::kBlockHeaderBytes + size) return data;
  for (int i = 0; i < 4; ++i) {
    const std::size_t at = zone_at + rng.uniform_index(kZoneBytes);
    out[at] = static_cast<char>(out[at] ^ (1 << rng.uniform_index(8)));
  }
  const std::uint32_t crc = bin::crc32(out.data() + p + bin::kBlockHeaderBytes, size);
  std::memcpy(out.data() + p + sizeof bin::kBlockMagic + sizeof size, &crc, sizeof crc);
  return out;
}

// -- CSV-specific mutators: operate on physical lines so the damage modes
// -- are recognizable (and countable) at the record layer.

inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

inline std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Index of a random data line (line 0, the header, is never touched).
inline std::size_t pick_data_line(const std::vector<std::string>& lines, Rng& rng) {
  return 1 + rng.uniform_index(lines.size() - 1);
}

/// Mangle one field of `count` random data rows: the field's bytes are
/// replaced with text that parses as a string but not as the field's type.
inline std::string mangle_csv_fields(const std::string& csv, Rng& rng, int count) {
  std::vector<std::string> lines = split_lines(csv);
  if (lines.size() < 2) return csv;
  for (int i = 0; i < count; ++i) {
    std::string& line = lines[pick_data_line(lines, rng)];
    std::vector<std::size_t> commas;
    for (std::size_t p = 0; p < line.size(); ++p) {
      if (line[p] == ',') commas.push_back(p);
    }
    if (commas.empty()) continue;
    const std::size_t f = rng.uniform_index(commas.size());
    const std::size_t begin = f == 0 ? 0 : commas[f - 1] + 1;
    const std::size_t end = f < commas.size() ? commas[f] : line.size();
    line = line.substr(0, begin) + "?garbled?" + line.substr(end);
  }
  return join_lines(lines);
}

/// Duplicate `count` random data rows in place (adjacent duplicate).
inline std::string duplicate_csv_rows(const std::string& csv, Rng& rng, int count) {
  std::vector<std::string> lines = split_lines(csv);
  if (lines.size() < 2) return csv;
  for (int i = 0; i < count; ++i) {
    const std::size_t at = pick_data_line(lines, rng);
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), lines[at]);
  }
  return join_lines(lines);
}

/// Insert `count` lines of non-CSV garbage (wrong width, binary-ish bytes).
inline std::string insert_garbage_rows(const std::string& csv, Rng& rng, int count) {
  static const char* kGarbage[] = {
      "### log rotated here ###",
      "\x01\x02\x03 binary splatter \x7f\x10",
      "kernel panic - not syncing: attempted to kill init",
      "0,1,2",
  };
  std::vector<std::string> lines = split_lines(csv);
  if (lines.size() < 2) return csv;
  for (int i = 0; i < count; ++i) {
    const std::size_t at = pick_data_line(lines, rng);
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                 kGarbage[rng.uniform_index(std::size(kGarbage))]);
  }
  return join_lines(lines);
}

/// Drop a closing quote into one data row ("ab" -> "ab) so the row's quote
/// parity goes odd — the classic framing corruption a lenient reader must
/// contain to one line.
inline std::string unbalance_csv_quote(const std::string& csv, Rng& rng) {
  std::vector<std::string> lines = split_lines(csv);
  if (lines.size() < 2) return csv;
  std::string& line = lines[pick_data_line(lines, rng)];
  const std::size_t at = line.empty() ? 0 : rng.uniform_index(line.size());
  line.insert(at, 1, '"');
  return join_lines(lines);
}

}  // namespace coral::testing
