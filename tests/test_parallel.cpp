#include "coral/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "coral/common/error.hpp"

namespace coral::par {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // Pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ErrorLatchClearsAfterRethrow) {
  // wait_idle must clear the first-error latch before rethrowing: the error
  // belongs to the batch that raised it, and a later clean batch must not
  // re-report it.
  ThreadPool pool(2);
  pool.submit([] { throw Error("first batch boom"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
  // An error is delivered exactly once, even across consecutive waits.
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(
      n, 16,
      [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      &pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialFallbackWithoutPool) {
  std::vector<int> hits(100, 0);
  parallel_for_chunks(hits.size(), 1, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(0, 1, [&called](std::size_t, std::size_t) { called = true; }, &pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(3);
  const std::size_t n = 100000;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i % 17);
  std::vector<double> partial(64, 0.0);
  std::atomic<std::size_t> slot{0};
  parallel_for_chunks(
      n, 1024,
      [&](std::size_t begin, std::size_t end) {
        double local = 0;
        for (std::size_t i = begin; i < end; ++i) local += xs[i];
        partial[slot.fetch_add(1)] = local;
      },
      &pool);
  const double serial = std::accumulate(xs.begin(), xs.end(), 0.0);
  const double parallel = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(ParallelFor, MoveOnlyBodyUsesTemplatedOverload) {
  // A closure capturing a move-only value cannot be stored in std::function;
  // the templated overload runs it by reference instead of erasing it.
  ThreadPool pool(4);
  std::atomic<std::size_t> counter{0};
  auto token = std::make_unique<int>(7);
  parallel_for_chunks(
      5000, 16,
      [held = std::move(token), &counter](std::size_t begin, std::size_t end) {
        counter.fetch_add((end - begin) * static_cast<std::size_t>(*held) / 7);
      },
      &pool);
  EXPECT_EQ(counter.load(), 5000u);
}

TEST(ParallelFor, SmallRangeRunsAsOneChunkInline) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  parallel_for_chunks(
      8, 16,
      [&calls](std::size_t begin, std::size_t end) { calls.emplace_back(begin, end); },
      &pool);
  // n <= min_chunk: a single inline call, no pool round-trip.
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<std::size_t, std::size_t>{0, 8}));
}

TEST(ConfiguredThreads, ReadsCoralThreadsEnv) {
  ::setenv("CORAL_THREADS", "3", 1);
  EXPECT_EQ(configured_thread_count(), 3u);
  ::setenv("CORAL_THREADS", "16", 1);
  EXPECT_EQ(configured_thread_count(), 16u);
  ::unsetenv("CORAL_THREADS");
  EXPECT_EQ(configured_thread_count(), 0u);
}

TEST(ConfiguredThreads, RejectsNonPositiveOrGarbage) {
  for (const char* bad : {"0", "-2", "abc", "4x", "", " 2"}) {
    ::setenv("CORAL_THREADS", bad, 1);
    EXPECT_EQ(configured_thread_count(), 0u) << "CORAL_THREADS=" << bad;
  }
  ::unsetenv("CORAL_THREADS");
}

TEST(DefaultPool, IsUsable) {
  EXPECT_GE(default_pool().thread_count(), 1u);
  std::atomic<int> counter{0};
  default_pool().submit([&counter] { counter.fetch_add(1); });
  default_pool().wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace coral::par
