#include "coral/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "coral/common/error.hpp"

namespace coral::par {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // Pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(
      n, 16,
      [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      &pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialFallbackWithoutPool) {
  std::vector<int> hits(100, 0);
  parallel_for_chunks(hits.size(), 1, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(0, 1, [&called](std::size_t, std::size_t) { called = true; }, &pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(3);
  const std::size_t n = 100000;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i % 17);
  std::vector<double> partial(64, 0.0);
  std::atomic<std::size_t> slot{0};
  parallel_for_chunks(
      n, 1024,
      [&](std::size_t begin, std::size_t end) {
        double local = 0;
        for (std::size_t i = begin; i < end; ++i) local += xs[i];
        partial[slot.fetch_add(1)] = local;
      },
      &pool);
  const double serial = std::accumulate(xs.begin(), xs.end(), 0.0);
  const double parallel = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

}  // namespace
}  // namespace coral::par
