// Statistical tests of the co-analysis core against the generator's ground
// truth, on scaled-down scenarios. Tolerances are wide by design: the
// analysis sees only the logs, never the truth.
#include <gtest/gtest.h>

#include <set>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"
#include "coral/core/report.hpp"
#include "coral/machine/model.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::core {
namespace {

using ras::Catalog;
using ras::FaultNature;

struct Fixture {
  synth::SynthResult data;
  CoAnalysisResult result;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture out;
    out.data = synth::generate(synth::small_scenario(17, 60));
    out.result = run_coanalysis(out.data.ras, out.data.jobs);
    return out;
  }();
  return f;
}

TEST(Matching, RecallAndPrecisionAgainstTruth) {
  const auto& [data, result] = fixture();
  std::set<std::int64_t> truth_jobs;
  for (const auto& i : data.truth.interruptions) truth_jobs.insert(i.job_id);
  std::size_t hits = 0;
  for (const auto& in : result.matches.interruptions) {
    if (truth_jobs.count(data.jobs[in.job].job_id)) ++hits;
  }
  ASSERT_FALSE(truth_jobs.empty());
  const double recall = static_cast<double>(hits) / static_cast<double>(truth_jobs.size());
  const double precision =
      static_cast<double>(hits) / static_cast<double>(result.matches.interruptions.size());
  EXPECT_GT(recall, 0.90) << "matched " << hits << " of " << truth_jobs.size();
  EXPECT_GT(precision, 0.90);
}

TEST(Matching, InterruptionsSortedByTime) {
  const auto& r = fixture().result;
  for (std::size_t i = 1; i < r.matches.interruptions.size(); ++i) {
    EXPECT_LE(r.matches.interruptions[i - 1].time, r.matches.interruptions[i].time);
  }
}

TEST(Identification, BenignCodesRecovered) {
  const auto& r = fixture().result;
  // The two ground-truth benign codes must not be called
  // interruption-related.
  for (const char* name : {ras::codes::kBulkPowerFatal, ras::codes::kTorusFatalSum}) {
    const auto id = Catalog::instance().find(name);
    const auto it = r.identification.verdicts.find(*id);
    if (it == r.identification.verdicts.end()) continue;  // code never fired
    EXPECT_NE(it->second, ErrcodeVerdict::InterruptionRelated) << name;
  }
}

TEST(Identification, InterruptionRelatedCodesAreTrulyInterrupting) {
  const auto& r = fixture().result;
  const Catalog& cat = Catalog::instance();
  for (const auto& [code, verdict] : r.identification.verdicts) {
    if (verdict != ErrcodeVerdict::InterruptionRelated) continue;
    EXPECT_EQ(cat.info(code).impact, ras::JobImpact::Interrupting) << cat.info(code).name;
  }
}

TEST(Identification, UndeterminedCoversIdleBiasCodes) {
  const auto& r = fixture().result;
  const Catalog& cat = Catalog::instance();
  int idle_codes_seen = 0, idle_codes_undetermined = 0;
  for (const auto& [code, verdict] : r.identification.verdicts) {
    if (!cat.info(code).idle_bias) continue;
    ++idle_codes_seen;
    if (verdict == ErrcodeVerdict::Undetermined) ++idle_codes_undetermined;
  }
  ASSERT_GT(idle_codes_seen, 5);
  // Idle-biased codes never run under jobs, so the rule leaves almost all
  // of them undetermined (a few pick up coincidental matches: a job that
  // ended seconds before the fault still falls inside the match window).
  EXPECT_GE(static_cast<double>(idle_codes_undetermined),
            0.85 * static_cast<double>(idle_codes_seen));
}

TEST(Classification, AccuracyAgainstCatalogTruth) {
  const auto& r = fixture().result;
  const Catalog& cat = Catalog::instance();
  int correct = 0, total = 0;
  for (const auto& [code, cc] : r.classification.by_code) {
    const bool truth_app = cat.info(code).nature == FaultNature::ApplicationError;
    const bool got_app = cc.cause == Cause::ApplicationError;
    ++total;
    if (truth_app == got_app) ++correct;
  }
  ASSERT_GT(total, 40);
  EXPECT_GT(static_cast<double>(correct) / total, 0.85)
      << correct << " of " << total << " codes classified correctly";
}

TEST(Classification, NeverWithJobRuleOnlyFiresForSystemCodes) {
  const auto& r = fixture().result;
  const Catalog& cat = Catalog::instance();
  for (const auto& [code, cc] : r.classification.by_code) {
    if (cc.rule == CauseRule::NeverWithJob) {
      EXPECT_EQ(cat.info(code).nature, FaultNature::SystemFailure) << cat.info(code).name;
    }
  }
}

TEST(JobFilter, KeptPlusRemovedEqualsAll) {
  const auto& r = fixture().result;
  EXPECT_EQ(r.job_filter.kept.size() + r.job_filter.removed_count(),
            r.filtered.groups.size());
  // Removed groups reference kept (anchor) groups that precede them.
  for (const auto& [removed, anchor] : r.job_filter.redundant_to) {
    EXPECT_LT(anchor, removed);
  }
}

TEST(JobFilter, RemovesAShareOfRehits) {
  const auto& [data, result] = fixture();
  std::size_t truth_rehits = 0;
  for (const auto& f : data.truth.faults) truth_rehits += f.redundant_of >= 0 ? 1 : 0;
  if (truth_rehits < 5) GTEST_SKIP() << "not enough rehits in this scenario";
  // The job-related filter should find a majority of the re-manifestations.
  EXPECT_GT(static_cast<double>(result.job_filter.removed_count()),
            0.4 * static_cast<double>(truth_rehits));
}

TEST(Interarrival, SamplesAndFitsAreSane) {
  const auto& r = fixture().result;
  ASSERT_GE(r.fatal_before_jobfilter.samples_sec.size(), 10u);
  EXPECT_EQ(r.fatal_before_jobfilter.samples_sec.size() + 1, r.filtered.groups.size());
  EXPECT_GT(r.fatal_before_jobfilter.weibull.shape(), 0.0);
  EXPECT_LT(r.fatal_before_jobfilter.weibull.shape(), 1.1);  // clustered arrivals
  EXPECT_TRUE(r.fatal_before_jobfilter.lrt.weibull_preferred);
  // Job-filtering removes short-gap redundancy: shape must not decrease.
  EXPECT_GE(r.fatal_after_jobfilter.weibull.shape(),
            r.fatal_before_jobfilter.weibull.shape() - 0.05);
}

TEST(Interarrival, HelperFunctions) {
  const std::vector<TimePoint> times = {TimePoint(3 * kUsecPerSec), TimePoint(0),
                                        TimePoint(10 * kUsecPerSec)};
  const auto gaps = interarrival_seconds(times);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 3.0);
  EXPECT_DOUBLE_EQ(gaps[1], 7.0);
  EXPECT_THROW(interarrival_seconds(std::vector<TimePoint>{TimePoint(0)}), InvalidArgument);
}

TEST(Propagation, OnlySharedResourceCodesPropagate) {
  const auto& r = fixture().result;
  const Catalog& cat = Catalog::instance();
  std::size_t fs_codes = 0;
  for (ras::ErrcodeId code : r.propagation.propagating_codes) {
    if (cat.info(code).propagates) ++fs_codes;
  }
  // Most detected propagating codes are the true shared-FS codes (a stray
  // coincidence is tolerated).
  if (!r.propagation.propagating_codes.empty()) {
    EXPECT_GE(fs_codes * 2, r.propagation.propagating_codes.size());
  }
  EXPECT_LT(r.propagation.propagating_event_fraction, 0.2);  // rare (Obs. 8)
}

TEST(Propagation, SamePartitionFractionIsSubstantial) {
  const auto& r = fixture().result;
  ASSERT_GT(r.propagation.resubmissions_after_interruption, 10u);
  // The Intrepid scheduler model reuses the previous partition aggressively
  // (paper: 57.44%).
  EXPECT_GT(r.propagation.same_partition_fraction(), 0.35);
  EXPECT_LE(r.propagation.same_partition_fraction(), 1.0);
}

TEST(Vulnerability, GridTotalsAreConsistent) {
  const auto& [data, result] = fixture();
  const auto& grid = result.vulnerability.grid;
  std::size_t from_rows = 0, from_cols = 0;
  for (const auto& s : grid.row_sums) from_rows += s.total;
  for (const auto& s : grid.col_sums) from_cols += s.total;
  EXPECT_EQ(from_rows, grid.total.total);
  EXPECT_EQ(from_cols, grid.total.total);
  EXPECT_LE(grid.total.total, data.jobs.size());
  EXPECT_EQ(grid.total.interrupted, result.system_interruptions);
}

TEST(Vulnerability, WiderJobsAreMoreVulnerable) {
  const auto& r = fixture().result;
  const auto& grid = r.vulnerability.grid;
  // Compare narrow (1-2 midplanes) against wide (>= 16) aggregate rates.
  std::size_t narrow_i = grid.row_sums[0].interrupted + grid.row_sums[1].interrupted;
  std::size_t narrow_t = grid.row_sums[0].total + grid.row_sums[1].total;
  std::size_t wide_i = 0, wide_t = 0;
  for (int row = 4; row < 9; ++row) {
    wide_i += grid.row_sums[static_cast<std::size_t>(row)].interrupted;
    wide_t += grid.row_sums[static_cast<std::size_t>(row)].total;
  }
  ASSERT_GT(narrow_t, 0u);
  ASSERT_GT(wide_t, 0u);
  const double narrow_rate = static_cast<double>(narrow_i) / static_cast<double>(narrow_t);
  const double wide_rate = static_cast<double>(wide_i) / static_cast<double>(wide_t);
  EXPECT_GT(wide_rate, 2.0 * narrow_rate);  // Observation 10
}

TEST(Vulnerability, AppErrorsStrikeEarly) {
  const auto& r = fixture().result;
  if (r.application_interruptions < 20) GTEST_SKIP() << "too few app interruptions";
  EXPECT_GT(r.vulnerability.app_interruptions_within_hour, 0.5);  // Observation 11
  EXPECT_LE(r.vulnerability.app_interruptions_wide_long, 3u);
}

TEST(Vulnerability, ResubmissionStatsPopulated) {
  const auto& r = fixture().result;
  const auto& sys = r.vulnerability.resubmission[0];
  EXPECT_GT(sys.by_k[0].resubmissions, 0u);
  for (const auto& p : sys.by_k) {
    EXPECT_LE(p.interrupted, p.resubmissions);
  }
  EXPECT_GT(sys.uncovered_at_k2, 0.5);  // most interruptions lack k>=2 history
  EXPECT_LE(sys.uncovered_at_k2, 1.0);
}

TEST(Vulnerability, FeatureRankingContainsAllFiveFeatures) {
  const auto& r = fixture().result;
  for (int cat = 0; cat < 2; ++cat) {
    const auto& ranked = r.vulnerability.features[cat].ranked;
    ASSERT_EQ(ranked.size(), 5u);
    std::set<std::string> names;
    for (const auto& g : ranked) {
      names.insert(g.name);
      EXPECT_GE(g.info_gain, -1e-12);
    }
    EXPECT_EQ(names.size(), 5u);
  }
  // Size must outrank execution time for system interruptions (Obs. 10).
  const auto& sys = r.vulnerability.features[0].ranked;
  std::size_t size_pos = 99, time_pos = 99;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys[i].name == "size") size_pos = i;
    if (sys[i].name == "execution time") time_pos = i;
  }
  EXPECT_LT(size_pos, time_pos);
}

TEST(Vulnerability, BucketHelpers) {
  EXPECT_EQ(runtime_bucket(10), 0);
  EXPECT_EQ(runtime_bucket(399.9), 0);
  EXPECT_EQ(runtime_bucket(400), 1);
  EXPECT_EQ(runtime_bucket(1600), 2);
  EXPECT_EQ(runtime_bucket(6400), 3);
  EXPECT_EQ(runtime_bucket(1e6), 3);
  EXPECT_EQ(size_row(1), 0);
  EXPECT_EQ(size_row(80), 8);
  // Off-ladder sizes bucket into the next row up instead of throwing (they
  // can reach the analysis through non-BG/P machine models).
  EXPECT_EQ(size_row(3), 2);
  EXPECT_EQ(size_row(33), 6);
  EXPECT_EQ(size_row(81), 8);
  // Machine-derived rows: the BG/Q ladder {1,2,4,8,16,32,64,96}.
  EXPECT_EQ(size_row(96, machine::bgq_model()), 7);
  EXPECT_EQ(size_row(64, machine::bgq_model()), 6);
  EXPECT_EQ(size_row(48, machine::bgq_model()), 6);
}

TEST(Pipeline, DailySeriesSumsToInterruptions) {
  const auto& r = fixture().result;
  int total = 0;
  for (int n : r.interruptions_per_day) total += n;
  EXPECT_EQ(static_cast<std::size_t>(total), r.interruption_count());
}

TEST(Pipeline, WorkloadSeriesMatchesJobLog) {
  const auto& [data, result] = fixture();
  double total = 0;
  for (double w : result.workload_per_midplane) total += w;
  double expect = 0;
  for (const auto& job : data.jobs) {
    expect += static_cast<double>(job.runtime()) / kUsecPerSec *
              job.size_midplanes();
  }
  EXPECT_NEAR(total / expect, 1.0, 1e-9);
  // Wide workload is a subset of total workload, concentrated in 32..63.
  for (std::size_t m = 0; m < result.workload_per_midplane.size(); ++m) {
    EXPECT_LE(result.wide_workload_per_midplane[m],
              result.workload_per_midplane[m] + 1e-9);
  }
}

TEST(Pipeline, SystemPlusApplicationEqualsTotal) {
  const auto& r = fixture().result;
  EXPECT_EQ(r.system_interruptions + r.application_interruptions,
            r.interruption_count());
  EXPECT_LE(r.distinct_interrupted_jobs, r.interruption_count());
}

TEST(Report, RendersAllTwelveObservations) {
  const auto& [data, result] = fixture();
  const std::string report =
      render_observations(result, data.ras.summary(), data.jobs.summary());
  for (int i = 1; i <= 12; ++i) {
    EXPECT_NE(report.find(strformat("Observation %2d", i)), std::string::npos) << i;
  }
  EXPECT_NE(report.find("Census"), std::string::npos);

  const std::string stages = render_filter_stages(result);
  EXPECT_NE(stages.find("temporal"), std::string::npos);
  EXPECT_NE(stages.find("job-related"), std::string::npos);
}

}  // namespace
}  // namespace coral::core
