// coral_daemon: the resident fleet co-analysis service.
//
// Binds a wire port (CBLK-framed tenant protocol, see coral/fleet/wire.hpp)
// and a Prometheus /metrics port, then serves tenants until SIGINT/SIGTERM.
// Port 0 picks an ephemeral port; the bound ports are printed on one line so
// a harness (the CI smoke stage, the feeder example's README recipe) can
// scrape them from stdout:
//
//   coral_daemon listening wire=127.0.0.1:41317 metrics=127.0.0.1:38121
//
// Usage:
//   coral_daemon [--bind HOST] [--port N] [--metrics-port N]
//                [--threads N] [--queue-bytes N] [--span-capacity N]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "coral/fleet/daemon.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bind HOST] [--port N] [--metrics-port N]\n"
               "          [--threads N] [--queue-bytes N] [--span-capacity N]\n"
               "Port 0 (the default) binds an ephemeral port, printed at startup.\n",
               argv0);
  std::exit(2);
}

long long num_arg(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) usage(argv0);
  char* end = nullptr;
  const long long v = std::strtoll(argv[++i], &end, 10);
  if (end == nullptr || *end != '\0') usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  coral::fleet::DaemonConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--bind") == 0) {
      if (i + 1 >= argc) usage(argv[0]);
      cfg.bind = argv[++i];
    } else if (std::strcmp(arg, "--port") == 0) {
      cfg.wire_port = static_cast<int>(num_arg(argc, argv, i, argv[0]));
    } else if (std::strcmp(arg, "--metrics-port") == 0) {
      cfg.metrics_port = static_cast<int>(num_arg(argc, argv, i, argv[0]));
    } else if (std::strcmp(arg, "--threads") == 0) {
      cfg.pool_threads = static_cast<std::size_t>(num_arg(argc, argv, i, argv[0]));
    } else if (std::strcmp(arg, "--queue-bytes") == 0) {
      cfg.queue_bytes = static_cast<std::size_t>(num_arg(argc, argv, i, argv[0]));
    } else if (std::strcmp(arg, "--span-capacity") == 0) {
      cfg.span_capacity = static_cast<std::size_t>(num_arg(argc, argv, i, argv[0]));
    } else {
      usage(argv[0]);
    }
  }

  try {
    coral::fleet::Daemon daemon(cfg);
    daemon.start();
    std::printf("coral_daemon listening wire=%s:%d metrics=%s:%d\n",
                cfg.bind.c_str(), daemon.wire_port(), cfg.bind.c_str(),
                daemon.metrics_port());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    daemon.stop();
    for (const auto& t : daemon.tenants()) {
      std::printf("tenant %s machine=%s ras=%llu jobs=%llu finalized=%d\n",
                  t.name.c_str(), t.machine.c_str(),
                  static_cast<unsigned long long>(t.stats.ras_records),
                  static_cast<unsigned long long>(t.stats.job_records),
                  t.stats.finalized ? 1 : 0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coral_daemon: %s\n", e.what());
    return 1;
  }
  return 0;
}
