// coral_logtool: inspect, convert and verify binary RAS / job log stores.
//
//   coral_logtool info <file>                header, block census, sizes
//   coral_logtool convert <in> <out> [--v2|--v3] [--no-compress] [--lenient]
//   coral_logtool verify <a> <b> [--lenient] record-for-record equality
//   coral_logtool gen <ras-out> <jobs-out> [--v2|--v3]  small synthetic pair
//   coral_logtool mine <ras> <jobs> <rules-out>         mine correlation rules
//   coral_logtool predict <rules> <ras>                 replay rules over a log
//
// The log kind (RAS vs job) is auto-detected from the file magic; the
// machine model comes from a v3 'M' meta block when one is present
// (resolved through machine::find_model), else the reference BG/P.
// RAS errcode names resolve against the built-in Intrepid catalog.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/storev3.hpp"
#include "coral/fleet/fingerprint.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/joblog/binary_stream.hpp"
#include "coral/core/pipeline.hpp"
#include "coral/machine/model.hpp"
#include "coral/predict/evaluate.hpp"
#include "coral/predict/miner.hpp"
#include "coral/predict/predictor.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/ras/binary_stream.hpp"
#include "coral/ras/catalog.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

enum class Kind { Ras, Job };

struct FileInfo {
  Kind kind = Kind::Ras;
  std::uint32_t version = 0;
  std::string data;  ///< whole file
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: coral_logtool info <file>\n"
               "       coral_logtool convert <in> <out> [--v2|--v3] [--no-compress] "
               "[--lenient]\n"
               "       coral_logtool verify <a> <b> [--lenient]\n"
               "       coral_logtool gen <ras-out> <jobs-out> [--v2|--v3] "
               "[--no-compress]\n"
               "       coral_logtool mine <ras> <jobs> <rules-out> [--lenient]\n"
               "           [--window-hours=H] [--min-support=N] [--min-confidence=C]\n"
               "       coral_logtool predict <rules> <ras> [--lenient]\n");
  std::exit(2);
}

FileInfo load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  FileInfo f;
  f.data = std::move(buf).str();
  if (f.data.size() < 8) throw ParseError(path + ": too short for a log header");
  if (std::memcmp(f.data.data(), ras::kRasMagic, 4) == 0) {
    f.kind = Kind::Ras;
  } else if (std::memcmp(f.data.data(), joblog::kJobMagic, 4) == 0) {
    f.kind = Kind::Job;
  } else {
    throw ParseError(path + ": not a coral binary log (bad magic)");
  }
  std::memcpy(&f.version, f.data.data() + 4, sizeof f.version);
  return f;
}

/// Scan the framed region and pull the first v3 'M' meta, if any.
std::optional<bin::StoreMeta> peek_meta(const FileInfo& f) {
  std::istringstream in(f.data.substr(8));
  bin::BlockReader blocks(in, ParseMode::Lenient, nullptr, "binary log");
  std::string payload;
  while (blocks.next(payload)) {
    if (payload.empty()) continue;
    if (payload[0] != 'M') continue;
    bin::PayloadCursor cur(payload, 0, "binary log");
    cur.get<char>();
    return bin::parse_store_meta(cur);
  }
  return std::nullopt;
}

const machine::MachineModel& resolve_machine(const FileInfo& f) {
  if (const auto meta = peek_meta(f)) {
    if (const machine::MachineModel* m = machine::find_model(meta->machine)) return *m;
    std::fprintf(stderr, "warning: unknown machine '%s', using %s\n",
                 meta->machine.c_str(), std::string(machine::bgp_model().name()).c_str());
  }
  return machine::bgp_model();
}

struct Loaded {
  Kind kind;
  std::optional<ras::RasLog> ras;
  std::optional<joblog::JobLog> jobs;
};

Loaded read_log(const FileInfo& f, ParseMode mode) {
  Loaded out{f.kind, std::nullopt, std::nullopt};
  const machine::MachineModel& machine = resolve_machine(f);
  std::istringstream in(f.data);
  if (f.kind == Kind::Ras) {
    ras::ReadOptions opts;
    opts.mode = mode;
    opts.machine = &machine;
    out.ras = ras::read_binary(in, ras::Catalog::instance(), opts);
  } else {
    joblog::ReadOptions opts;
    opts.mode = mode;
    opts.machine = &machine;
    out.jobs = joblog::read_binary(in, opts);
  }
  return out;
}

int cmd_info(const std::string& path) {
  const FileInfo f = load(path);
  std::printf("file:      %s (%zu bytes)\n", path.c_str(), f.data.size());
  std::printf("kind:      %s log\n", f.kind == Kind::Ras ? "RAS" : "job");
  std::printf("version:   %u\n", f.version);
  if (const auto meta = peek_meta(f)) {
    std::printf("machine:   %s\n", meta->machine.c_str());
    std::printf("schema:    %s\n", meta->schema.c_str());
    std::printf("block:     %u records/block%s\n", meta->records_per_block,
                (meta->flags & bin::kStoreFlagCompressed) ? ", compressed" : "");
  }

  // Block census: one pass over the frames, counting payload tags.
  std::istringstream in(f.data.substr(8));
  bin::BlockReader blocks(in, ParseMode::Lenient, nullptr, "binary log");
  std::string payload;
  std::uint64_t frames = 0, records = 0, lz_blocks = 0, raw_blocks = 0;
  std::map<char, std::uint64_t> tags;
  std::optional<std::uint64_t> declared;
  while (blocks.next(payload)) {
    ++frames;
    if (payload.empty()) continue;
    const char tag = payload[0];
    ++tags[tag];
    try {
      bin::PayloadCursor cur(payload, 0, "binary log");
      cur.get<char>();
      if (tag == 'C') {
        const auto n = cur.get<std::uint32_t>();
        records += n;
        cur.take(bin::kZoneMapBytes);
        const auto codec = cur.get<std::uint8_t>();
        (codec == bin::kCodecLz ? lz_blocks : raw_blocks) += 1;
      } else if (tag == 'R') {
        records += cur.get<std::uint32_t>();
      } else if (tag == 'H' && !declared) {
        declared = cur.get<std::uint64_t>();
      } else if (tag == 'D' && !declared) {
        // RAS dictionary: names, then the declared total at the tail.
        const auto n = cur.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n; ++i) cur.take(cur.get<std::uint16_t>());
        declared = cur.get<std::uint64_t>();
      }
    } catch (const Error&) {
      // census only; a malformed payload still counts its tag
    }
  }
  std::printf("frames:    %llu\n", (unsigned long long)frames);
  std::string census;
  for (const auto& [tag, n] : tags) {
    census += census.empty() ? "" : ", ";
    census += "'";
    census += tag;
    census += "' x " + std::to_string(n);
  }
  std::printf("blocks:    %s\n", census.c_str());
  if (declared) std::printf("declared:  %llu records\n", (unsigned long long)*declared);
  std::printf("records:   %llu in record blocks\n", (unsigned long long)records);
  if (lz_blocks + raw_blocks > 0) {
    std::printf("codec:     %llu LZ blocks, %llu raw blocks\n",
                (unsigned long long)lz_blocks, (unsigned long long)raw_blocks);
    std::printf("bytes/rec: %.2f\n",
                records ? (double)f.data.size() / (double)records : 0.0);
  }
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path,
                std::uint32_t version, bool compress, ParseMode mode) {
  const FileInfo f = load(in_path);
  const Loaded log = read_log(f, mode);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open " + out_path + " for writing");
  if (log.kind == Kind::Ras) {
    ras::WriteOptions w;
    w.version = version;
    w.compress = compress;
    ras::write_binary(out, *log.ras, w);
  } else {
    joblog::WriteOptions w;
    w.version = version;
    w.compress = compress;
    joblog::write_binary(out, *log.jobs, w);
  }
  out.flush();
  if (!out) throw Error("short write to " + out_path);
  const auto out_size = static_cast<std::uint64_t>(out.tellp());
  std::printf("%s (v%u, %zu bytes) -> %s (v%u, %llu bytes), ratio %.2f\n",
              in_path.c_str(), f.version, f.data.size(), out_path.c_str(), version,
              (unsigned long long)out_size,
              out_size ? (double)f.data.size() / (double)out_size : 0.0);
  return 0;
}

int cmd_gen(const std::string& ras_path, const std::string& jobs_path,
            std::uint32_t version, bool compress) {
  // A small calibrated scenario — enough records to exercise every block
  // kind without slowing a CI smoke stage down.
  const synth::SynthResult data = synth::generate(synth::small_scenario(7, 5));
  std::ofstream ras_out(ras_path, std::ios::binary | std::ios::trunc);
  std::ofstream job_out(jobs_path, std::ios::binary | std::ios::trunc);
  if (!ras_out || !job_out) throw Error("cannot open output files");
  ras::WriteOptions rw;
  rw.version = version;
  rw.compress = compress;
  ras::write_binary(ras_out, data.ras, rw);
  joblog::WriteOptions jw;
  jw.version = version;
  jw.compress = compress;
  joblog::write_binary(job_out, data.jobs, jw);
  ras_out.flush();
  job_out.flush();
  if (!ras_out || !job_out) throw Error("short write generating logs");
  std::printf("%s: %zu RAS records (v%u)\n%s: %zu jobs (v%u)\n", ras_path.c_str(),
              data.ras.size(), version, jobs_path.c_str(), data.jobs.size(), version);
  return 0;
}

int cmd_verify(const std::string& a_path, const std::string& b_path, ParseMode mode) {
  const FileInfo fa = load(a_path);
  const FileInfo fb = load(b_path);
  if (fa.kind != fb.kind) {
    std::fprintf(stderr, "verify: %s is a %s log but %s is a %s log\n", a_path.c_str(),
                 fa.kind == Kind::Ras ? "RAS" : "job", b_path.c_str(),
                 fb.kind == Kind::Ras ? "RAS" : "job");
    return 1;
  }
  const Loaded a = read_log(fa, mode);
  const Loaded b = read_log(fb, mode);
  // log_fingerprint folds every record field of both logs in order; pad the
  // absent side with an empty log of the right shape.
  const ras::RasLog empty_ras({}, ras::Catalog::instance(), machine::bgp_model());
  const joblog::JobLog empty_jobs(machine::bgp_model());
  const std::uint64_t ha = fleet::log_fingerprint(a.ras ? *a.ras : empty_ras,
                                                  a.jobs ? *a.jobs : empty_jobs);
  const std::uint64_t hb = fleet::log_fingerprint(b.ras ? *b.ras : empty_ras,
                                                  b.jobs ? *b.jobs : empty_jobs);
  const std::uint64_t na = a.ras ? a.ras->size() : a.jobs->size();
  const std::uint64_t nb = b.ras ? b.ras->size() : b.jobs->size();
  std::printf("%s: %llu records, fingerprint %016llx\n", a_path.c_str(),
              (unsigned long long)na, (unsigned long long)ha);
  std::printf("%s: %llu records, fingerprint %016llx\n", b_path.c_str(),
              (unsigned long long)nb, (unsigned long long)hb);
  if (ha != hb || na != nb) {
    std::printf("verify: MISMATCH\n");
    return 1;
  }
  std::printf("verify: OK\n");
  return 0;
}

int cmd_mine(const std::string& ras_path, const std::string& jobs_path,
             const std::string& out_path, ParseMode mode,
             const predict::MinerConfig& miner) {
  const FileInfo fr = load(ras_path);
  const FileInfo fj = load(jobs_path);
  if (fr.kind != Kind::Ras) throw Error(ras_path + " is not a RAS log");
  if (fj.kind != Kind::Job) throw Error(jobs_path + " is not a job log");
  const Loaded ras = read_log(fr, mode);
  const Loaded jobs = read_log(fj, mode);
  Context ctx;
  ctx.with_machine(resolve_machine(fr));
  const core::CoAnalysisResult analysis =
      core::run_coanalysis(*ras.ras, *jobs.jobs, {}, ctx);
  const predict::RuleTable table =
      predict::mine_rules(analysis, *jobs.jobs, miner, ctx);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open " + out_path + " for writing");
  const std::string bytes = table.serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw Error("short write to " + out_path);
  std::printf("%s", predict::describe(table, ras::Catalog::instance()).c_str());
  std::printf("%zu rules -> %s (%zu bytes)\n", table.size(), out_path.c_str(),
              bytes.size());
  return 0;
}

int cmd_predict(const std::string& rules_path, const std::string& ras_path,
                ParseMode mode) {
  std::ifstream rin(rules_path, std::ios::binary);
  if (!rin) throw Error("cannot open " + rules_path);
  std::ostringstream rbuf;
  rbuf << rin.rdbuf();
  const predict::RuleTable table = predict::RuleTable::deserialize(std::move(rbuf).str());
  const FileInfo fr = load(ras_path);
  if (fr.kind != Kind::Ras) throw Error(ras_path + " is not a RAS log");
  const Loaded ras = read_log(fr, mode);
  const std::vector<predict::Prediction> preds = predict::replay(table, *ras.ras);
  // Replay again through a visible Predictor for the hit/suppress ledger
  // (replay() itself only returns the prediction list).
  predict::Predictor p(table, ras.ras->machine());
  for (const ras::RasEvent& ev : ras.ras->events()) p.on_record(ev);
  std::printf("rules:        %zu\n", table.size());
  std::printf("records:      %zu\n", ras.ras->size());
  std::printf("predictions:  %zu issued, %llu suppressed (in-window re-fires)\n",
              preds.size(), (unsigned long long)p.suppressed());
  std::printf("hits:         %llu predictions saw their target arrive in-window\n",
              (unsigned long long)p.hits());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) usage();
    const std::string cmd = args[0];
    ParseMode mode = ParseMode::Strict;
    std::uint32_t version = 3;
    bool compress = true;
    coral::predict::MinerConfig miner;
    std::vector<std::string> pos;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--lenient") {
        mode = ParseMode::Lenient;
      } else if (args[i] == "--v2") {
        version = 2;
      } else if (args[i] == "--v3") {
        version = 3;
      } else if (args[i] == "--no-compress") {
        compress = false;
      } else if (args[i].rfind("--window-hours=", 0) == 0) {
        miner.window = static_cast<coral::Usec>(
            std::stod(args[i].substr(15)) * coral::kUsecPerHour);
      } else if (args[i].rfind("--min-support=", 0) == 0) {
        miner.min_support = static_cast<std::uint32_t>(std::stoul(args[i].substr(14)));
      } else if (args[i].rfind("--min-confidence=", 0) == 0) {
        miner.min_confidence = std::stod(args[i].substr(17));
      } else if (!args[i].empty() && args[i][0] == '-') {
        usage();
      } else {
        pos.push_back(args[i]);
      }
    }
    if (cmd == "info" && pos.size() == 1) return cmd_info(pos[0]);
    if (cmd == "convert" && pos.size() == 2) {
      return cmd_convert(pos[0], pos[1], version, compress, mode);
    }
    if (cmd == "verify" && pos.size() == 2) return cmd_verify(pos[0], pos[1], mode);
    if (cmd == "gen" && pos.size() == 2) return cmd_gen(pos[0], pos[1], version, compress);
    if (cmd == "mine" && pos.size() == 3) {
      return cmd_mine(pos[0], pos[1], pos[2], mode, miner);
    }
    if (cmd == "predict" && pos.size() == 2) return cmd_predict(pos[0], pos[1], mode);
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coral_logtool: %s\n", e.what());
    return 1;
  }
}
