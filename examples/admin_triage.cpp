// Administrator triage: the paper's motivating use case. Classify every
// FATAL errcode observed in a log pair (interruption-related? system or
// application? propagating?), show the rule that produced each verdict, and
// list the locations that need attention — including a worked Fig.-2
// example of the application-error identification pattern.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

using namespace coral;

// A hand-built Fig. 2 scenario: job 1 (exec "bad_app") is interrupted by
// fatal code A on midplane R00-M0, resubmitted to R01-M0 and interrupted
// again; meanwhile job 2 runs fine on R00-M0. The classifier must call A an
// application error.
void figure2_demo() {
  std::printf("--- Fig. 2 worked example -------------------------------------\n");
  const ras::Catalog& cat = ras::Catalog::instance();
  const ras::ErrcodeId code = *cat.find("_bgp_err_invalid_mem_address");

  const TimePoint t0 = TimePoint::from_calendar(2009, 2, 1);
  joblog::JobLog jobs;
  const auto add_job = [&](std::int64_t id, const char* exec, double start_h, double end_h,
                           const char* part) {
    joblog::JobRecord j;
    j.job_id = id;
    j.exec_id = jobs.intern_exec(exec);
    j.user_id = jobs.intern_user("u1");
    j.project_id = jobs.intern_project("p1");
    j.queue_time = t0 + static_cast<Usec>((start_h - 0.1) * kUsecPerHour);
    j.start_time = t0 + static_cast<Usec>(start_h * kUsecPerHour);
    j.end_time = t0 + static_cast<Usec>(end_h * kUsecPerHour);
    j.partition = bgp::Partition::parse(part);
    jobs.append(j);
  };
  // Job 1 killed twice (on two different midplanes); job 2 and a later job
  // survive on the first midplane.
  add_job(1, "bad_app", 0.0, 1.0, "R00-M0");   // interrupted at t0+1h
  add_job(2, "good_app", 1.5, 4.0, "R00-M0");  // survives on the old nodes
  add_job(3, "bad_app", 2.0, 3.0, "R01-M0");   // resubmission, interrupted again
  add_job(4, "good_app2", 4.5, 6.0, "R00-M0"); // survives again
  jobs.finalize();

  ras::RasLog log;
  for (double hour : {1.0, 3.0}) {
    ras::RasEvent ev;
    ev.errcode = code;
    ev.severity = ras::Severity::Fatal;
    ev.event_time = t0 + static_cast<Usec>(hour * kUsecPerHour);
    ev.location = hour < 2 ? bgp::Location::parse("R00-M0-N03-J08")
                           : bgp::Location::parse("R01-M0-N07-J11");
    log.append(ev);
  }
  log.finalize();

  core::CoAnalysisConfig config;
  config.classification.min_follow_evidence = 1;  // one clean pattern suffices here
  const core::CoAnalysisResult r = core::run_coanalysis(log, jobs, config);
  const auto& verdict = r.classification.by_code.at(code);
  std::printf("code %s -> %s (rule: %s)\n\n", cat.info(code).name.c_str(),
              to_string(verdict.cause), to_string(verdict.rule));
}

}  // namespace

int main() {
  figure2_demo();

  std::printf("--- Full-log triage (30-day synthetic sample) -----------------\n");
  const synth::SynthResult data = synth::generate(synth::small_scenario(11, 30));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);
  const ras::Catalog& cat = ras::Catalog::instance();

  // Errcode dossier: verdicts + interruption counts.
  std::map<ras::ErrcodeId, int> interruptions_by_code;
  for (const core::Interruption& in : r.matches.interruptions) {
    const auto code = r.filtered.fatal_events[r.filtered.groups[in.group].rep].errcode;
    interruptions_by_code[code] += 1;
  }
  std::vector<std::pair<int, ras::ErrcodeId>> ranked;
  for (const auto& [code, n] : interruptions_by_code) ranked.push_back({n, code});
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("%-34s %-20s %-18s %s\n", "ERRCODE", "cause", "rule", "interruptions");
  for (const auto& [n, code] : ranked) {
    const auto& cc = r.classification.by_code.at(code);
    std::printf("%-34s %-20s %-18.18s %d%s\n", cat.info(code).name.c_str(),
                to_string(cc.cause), to_string(cc.rule), n,
                r.propagation.propagating_codes.count(code) ? "  [propagates]" : "");
  }

  // Locations needing attention: most fatal events per midplane.
  std::map<bgp::MidplaneId, int> per_mid;
  for (const auto& g : r.filtered.groups) {
    if (const auto mid = r.filtered.fatal_events[g.rep].location.midplane_id()) {
      per_mid[*mid] += 1;
    }
  }
  std::vector<std::pair<int, bgp::MidplaneId>> hot;
  for (const auto& [mid, n] : per_mid) hot.push_back({n, mid});
  std::sort(hot.rbegin(), hot.rend());
  std::printf("\nHottest midplanes (fatal events):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, hot.size()); ++i) {
    std::printf("  %-8s %d events\n",
                bgp::Location::midplane(hot[i].second).to_string().c_str(), hot[i].first);
  }

  std::printf("\nFATAL codes never seen to hurt a job (reduce their alert priority):\n");
  for (const auto& [code, verdict] : r.identification.verdicts) {
    if (verdict == core::ErrcodeVerdict::NonFatalToJobs) {
      std::printf("  %s\n", cat.info(code).name.c_str());
    }
  }
  return 0;
}
