// CLI: generate a synthetic Intrepid log pair and write it as CSV files —
// the stand-in for the public release the paper promises ("we will release
// these logs in public repositories").
//
//   $ ./example_generate_logs [seed] [days] [ras.csv] [jobs.csv]
//
// Defaults: seed 42, the full 237-day calibrated scenario, files in cwd.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "coral/synth/intrepid.hpp"

int main(int argc, char** argv) {
  using namespace coral;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int days = argc > 2 ? std::atoi(argv[2]) : 237;
  const char* ras_path = argc > 3 ? argv[3] : "intrepid_ras.csv";
  const char* jobs_path = argc > 4 ? argv[4] : "intrepid_jobs.csv";

  synth::ScenarioConfig config = synth::intrepid_scenario(seed);
  if (days != 237) {
    // Scale the workload with the horizon so the density stays calibrated.
    const double scale = static_cast<double>(days) / config.days;
    config.days = days;
    config.workload.target_submissions = static_cast<std::size_t>(
        static_cast<double>(config.workload.target_submissions) * scale);
    config.workload.distinct_apps = static_cast<std::size_t>(
        static_cast<double>(config.workload.distinct_apps) * scale) + 1;
  }

  std::printf("Generating %d days (seed %llu)...\n", days,
              static_cast<unsigned long long>(seed));
  const synth::SynthResult data = synth::generate(config);

  {
    std::ofstream out(ras_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", ras_path);
      return 1;
    }
    data.ras.write_csv(out);
  }
  {
    std::ofstream out(jobs_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", jobs_path);
      return 1;
    }
    data.jobs.write_csv(out);
  }
  std::printf("Wrote %zu RAS records to %s\n", data.ras.size(), ras_path);
  std::printf("Wrote %zu job records to %s\n", data.jobs.size(), jobs_path);
  std::printf("(%zu FATAL records; %zu ground-truth interruptions)\n",
              data.ras.summary().fatal_records, data.truth.interruptions.size());
  return 0;
}
