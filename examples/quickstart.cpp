// Quickstart: generate a synthetic BG/P log pair, run the full co-analysis,
// and print the essentials — the 60-second tour of the library.
//
//   $ ./example_quickstart [seed] [days]
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "coral/core/report.hpp"
#include "coral/synth/intrepid.hpp"

int main(int argc, char** argv) {
  using namespace coral;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const int days = argc > 2 ? std::atoi(argv[2]) : 30;

  // 1. Generate a log pair from the calibrated Intrepid model (scaled down).
  const synth::ScenarioConfig config = synth::small_scenario(seed, days);
  const synth::SynthResult data = synth::generate(config);
  std::printf("Generated %d days: %zu RAS records (%zu FATAL), %zu jobs\n\n", days,
              data.ras.size(), data.ras.summary().fatal_records, data.jobs.size());

  // 2. Show one record of each log, Table II / Table III style.
  if (!data.ras.empty()) {
    const ras::RasEvent& ev = data.ras[data.ras.size() / 2];
    const ras::ErrcodeInfo& info = ev.info(data.ras.catalog());
    std::printf("Example RAS record (Table II):\n");
    std::printf("  RECID        %lld\n", static_cast<long long>(ev.recid));
    std::printf("  MSG_ID       %s\n", info.msg_id.c_str());
    std::printf("  COMPONENT    %s\n", to_string(info.component));
    std::printf("  SUBCOMPONENT %s\n", info.subcomponent.c_str());
    std::printf("  ERRCODE      %s\n", info.name.c_str());
    std::printf("  SEVERITY     %s\n", to_string(ev.severity));
    std::printf("  EVENT_TIME   %s\n", ev.event_time.to_ras_string().c_str());
    std::printf("  LOCATION     %s\n", ev.location.to_string().c_str());
    std::printf("  MESSAGE      %s\n\n", info.message.c_str());
  }
  if (!data.jobs.empty()) {
    const joblog::JobRecord& job = data.jobs[data.jobs.size() / 2];
    std::printf("Example job record (Table III):\n");
    std::printf("  Job ID         %lld\n", static_cast<long long>(job.job_id));
    std::printf("  Execution File %s\n",
                data.jobs.exec_files()[static_cast<std::size_t>(job.exec_id)].c_str());
    std::printf("  Queuing Time   %.2f\n", job.queue_time.unix_seconds());
    std::printf("  Starting Time  %.2f\n", job.start_time.unix_seconds());
    std::printf("  End Time       %.2f\n", job.end_time.unix_seconds());
    std::printf("  Location       %s  (%d midplanes)\n\n", job.partition.name().c_str(),
                job.size_midplanes());
  }

  // 3. Logs serialize to CSV (and parse back) if you want files on disk.
  {
    std::ostringstream csv;
    data.jobs.write_csv(csv);
    std::printf("Job log CSV is %zu bytes; RAS log CSV works the same way.\n\n",
                csv.str().size());
  }

  // 4. Run the paper's methodology end to end.
  const core::CoAnalysisResult result = core::run_coanalysis(data.ras, data.jobs);
  std::fputs(core::render_filter_stages(result).c_str(), stdout);
  std::printf("\n%zu interruptions matched (%zu system, %zu application)\n\n",
              result.interruption_count(), result.system_interruptions,
              result.application_interruptions);
  std::fputs(
      core::render_observations(result, data.ras.summary(), data.jobs.summary()).c_str(),
      stdout);
  return 0;
}
