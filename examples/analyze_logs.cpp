// CLI: run the full co-analysis on a RAS/job CSV log pair (as produced by
// example_generate_logs, or hand-converted site logs in the same schema)
// and print the filter-stage table, the fitted distributions and the
// 12-observation report.
//
//   $ ./example_analyze_logs <ras.csv> <jobs.csv> [--markdown]
//                            [--trace <out.json>] [--metrics <out.prom>]
//
// --trace writes a Chrome trace_event JSON of the run (open it in
// chrome://tracing or https://ui.perfetto.dev); --metrics writes the same
// run's counters and histograms as Prometheus text exposition.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "coral/common/error.hpp"
#include "coral/context.hpp"
#include "coral/core/markdown.hpp"
#include "coral/core/report.hpp"
#include "coral/joblog/stats.hpp"
#include "coral/obs/obs.hpp"

namespace {

bool write_file(const char* path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  out << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coral;
  bool markdown = false;
  const char* trace_path = nullptr;
  const char* metrics_path = nullptr;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (npaths < 2 && argv[i][0] != '-') {
      paths[npaths++] = argv[i];
    } else {
      usage_error = true;
    }
  }
  if (npaths != 2 || usage_error) {
    std::fprintf(stderr,
                 "usage: %s <ras.csv> <jobs.csv> [--markdown] [--trace out.json] "
                 "[--metrics out.prom]\n",
                 argv[0]);
    std::fprintf(stderr, "(generate a pair with example_generate_logs)\n");
    return 2;
  }

  // One collector observes the whole run — ingest through co-analysis —
  // when either export was requested; otherwise the null default applies.
  obs::Collector collector;
  Context ctx;
  if (trace_path != nullptr || metrics_path != nullptr) ctx.with_obs(&collector);

  ras::RasLog ras;
  joblog::JobLog jobs;
  try {
    std::ifstream ras_in(paths[0]);
    if (!ras_in) {
      std::fprintf(stderr, "cannot open %s\n", paths[0]);
      return 1;
    }
    ras = ras::RasLog::read_csv(ras_in, ctx.catalog(), ParseMode::Strict, nullptr,
                                ctx.sink());
    std::ifstream jobs_in(paths[1]);
    if (!jobs_in) {
      std::fprintf(stderr, "cannot open %s\n", paths[1]);
      return 1;
    }
    jobs = joblog::JobLog::read_csv(jobs_in, ParseMode::Strict, nullptr, ctx.sink());
  } catch (const coral::Error& e) {
    std::fprintf(stderr, "parse failure: %s\n", e.what());
    return 1;
  }

  std::printf("Loaded %zu RAS records (%zu FATAL) and %zu jobs\n", ras.size(),
              ras.summary().fatal_records, jobs.size());
  const joblog::WorkloadStats ws = joblog::workload_stats(jobs);
  std::printf("Machine utilization %.1f%%, mean queue wait %.0f s\n\n",
              100.0 * ws.utilization, ws.mean_wait_sec);

  const core::CoAnalysisResult r = core::run_coanalysis(ras, jobs, {}, ctx);

  if (trace_path != nullptr || metrics_path != nullptr) {
    const obs::Snapshot snap = collector.snapshot();
    if (trace_path != nullptr) {
      if (!write_file(trace_path, obs::chrome_trace_json(snap))) return 1;
      std::fprintf(stderr, "trace written to %s (open in chrome://tracing)\n",
                   trace_path);
    }
    if (metrics_path != nullptr) {
      if (!write_file(metrics_path, obs::prometheus_text(snap))) return 1;
      std::fprintf(stderr, "metrics written to %s\n", metrics_path);
    }
  }

  if (markdown) {
    std::fputs(core::render_markdown_report(r, ras.summary(), jobs.summary()).c_str(),
               stdout);
    return 0;
  }
  std::fputs(core::render_filter_stages(r).c_str(), stdout);
  std::printf("\n%s\n%s\n%s\n%s\n\n",
              core::render_fit("fatal (before job-filter)", r.fatal_before_jobfilter)
                  .c_str(),
              core::render_fit("fatal (after job-filter)", r.fatal_after_jobfilter).c_str(),
              core::render_fit("interruptions (system)", r.interruptions_system).c_str(),
              core::render_fit("interruptions (application)", r.interruptions_application)
                  .c_str());
  std::fputs(core::render_observations(r, ras.summary(), jobs.summary()).c_str(), stdout);
  return 0;
}
