// CLI: run the full co-analysis on a RAS/job CSV log pair (as produced by
// example_generate_logs, or hand-converted site logs in the same schema)
// and print the filter-stage table, the fitted distributions and the
// 12-observation report.
//
//   $ ./example_analyze_logs <ras.csv> <jobs.csv> [--markdown]
#include <cstdio>
#include <cstring>
#include <fstream>

#include "coral/common/error.hpp"
#include "coral/core/markdown.hpp"
#include "coral/core/report.hpp"
#include "coral/joblog/stats.hpp"

int main(int argc, char** argv) {
  using namespace coral;
  const bool markdown = argc == 4 && std::strcmp(argv[3], "--markdown") == 0;
  if (argc != 3 && !markdown) {
    std::fprintf(stderr, "usage: %s <ras.csv> <jobs.csv> [--markdown]\n", argv[0]);
    std::fprintf(stderr, "(generate a pair with example_generate_logs)\n");
    return 2;
  }

  ras::RasLog ras;
  joblog::JobLog jobs;
  try {
    std::ifstream ras_in(argv[1]);
    if (!ras_in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    ras = ras::RasLog::read_csv(ras_in);
    std::ifstream jobs_in(argv[2]);
    if (!jobs_in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    jobs = joblog::JobLog::read_csv(jobs_in);
  } catch (const coral::Error& e) {
    std::fprintf(stderr, "parse failure: %s\n", e.what());
    return 1;
  }

  std::printf("Loaded %zu RAS records (%zu FATAL) and %zu jobs\n", ras.size(),
              ras.summary().fatal_records, jobs.size());
  const joblog::WorkloadStats ws = joblog::workload_stats(jobs);
  std::printf("Machine utilization %.1f%%, mean queue wait %.0f s\n\n",
              100.0 * ws.utilization, ws.mean_wait_sec);

  const core::CoAnalysisResult r = core::run_coanalysis(ras, jobs);
  if (markdown) {
    std::fputs(core::render_markdown_report(r, ras.summary(), jobs.summary()).c_str(),
               stdout);
    return 0;
  }
  std::fputs(core::render_filter_stages(r).c_str(), stdout);
  std::printf("\n%s\n%s\n%s\n%s\n\n",
              core::render_fit("fatal (before job-filter)", r.fatal_before_jobfilter)
                  .c_str(),
              core::render_fit("fatal (after job-filter)", r.fatal_after_jobfilter).c_str(),
              core::render_fit("interruptions (system)", r.interruptions_system).c_str(),
              core::render_fit("interruptions (application)", r.interruptions_application)
                  .c_str());
  std::fputs(core::render_observations(r, ras.summary(), jobs.summary()).c_str(), stdout);
  return 0;
}
