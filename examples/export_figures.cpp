// CLI: run the co-analysis and dump every figure's data series as CSV files
// ready for gnuplot/matplotlib — fig3a/b, fig4, fig5, fig6a/b, fig7 and
// table6.
//
//   $ ./example_export_figures [output-dir] [seed] [days]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "coral/core/export.hpp"
#include "coral/synth/intrepid.hpp"

int main(int argc, char** argv) {
  using namespace coral;
  const std::string dir = argc > 1 ? argv[1] : "figures";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const int days = argc > 3 ? std::atoi(argv[3]) : 237;

  std::filesystem::create_directories(dir);
  std::printf("Generating %d days (seed %llu) and running co-analysis...\n", days,
              static_cast<unsigned long long>(seed));
  const synth::SynthResult data =
      synth::generate(days == 237 ? synth::intrepid_scenario(seed)
                                  : synth::small_scenario(seed, days));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  const int written = core::export_all(dir, r);
  std::printf("Wrote %d CSV series into %s/:\n", written, dir.c_str());
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::printf("  %s (%ju bytes)\n", entry.path().filename().string().c_str(),
                static_cast<std::uintmax_t>(entry.file_size()));
  }
  std::printf("\nExample gnuplot one-liner for Fig. 3a:\n"
              "  gnuplot -e \"set datafile separator ','; set logscale x; "
              "plot '%s/fig3a_fatal_cdf_before.csv' every ::1 using 1:2 with steps, "
              "'' every ::1 using 1:3 with lines, '' every ::1 using 1:4 with lines\"\n",
              dir.c_str());
  return 0;
}
