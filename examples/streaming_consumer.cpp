// Live consumption of the merged RAS/job event stream (the CiFTS-style feed
// of SS VII) through the streaming stages: mine causal pairs in a warm-up
// window, then run the windowed filter -> matcher pipeline incrementally,
// alerting on each job interruption as soon as its match window closes —
// with state bounded by the windows, not the log.
//
//   $ ./example_streaming_consumer [seed] [days] [warmup_days]
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "coral/ras/catalog.hpp"
#include "coral/stream/filter_stages.hpp"
#include "coral/stream/matcher.hpp"
#include "coral/synth/intrepid.hpp"

int main(int argc, char** argv) {
  using namespace coral;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const int days = argc > 2 ? std::atoi(argv[2]) : 30;
  const int warmup_days = argc > 3 ? std::atoi(argv[3]) : days / 3;

  const synth::ScenarioConfig scenario = synth::small_scenario(seed, days);
  const synth::SynthResult data = synth::generate(scenario);
  std::printf("Generated %d days: %zu RAS records, %zu jobs\n", days, data.ras.size(),
              data.jobs.size());

  // --- Warm-up: mine causal errcode pairs over the first warmup_days. ---
  stream::GroupBuffer warmup_groups;
  stream::StreamingFilter::Options mine_options;
  mine_options.mine_pairs = true;
  stream::StreamingFilter mining_filter(mine_options, warmup_groups);
  stream::StageDriver warmup(data.ras, data.jobs);
  warmup.attach(mining_filter);
  warmup.replay(scenario.start, scenario.start + warmup_days * kUsecPerDay);
  warmup.flush();

  const filter::CausalityFilterConfig causality;
  const auto pairs =
      stream::PairMiner::accept(mining_filter.miner()->counts(), causality.min_support);
  std::printf("Warm-up (%d days): %zu groups seen, %zu causal pairs mined\n\n",
              warmup_days, warmup_groups.groups.size(), pairs.size());

  // --- Live pipeline: filter (using the mined pairs) into the matcher;
  // every resolved group with matched jobs becomes an alert. ---
  std::size_t alerts = 0, quiet_groups = 0;
  stream::StreamingMatcher matcher(
      120 * kUsecPerSec, [&](stream::StreamingMatcher::GroupMatch&& m) {
        if (m.jobs.empty()) {
          ++quiet_groups;  // fatal event, but it interrupted nothing
          return;
        }
        ++alerts;
        if (alerts <= 10) {
          std::printf("ALERT %s  %-28s %-10s killed %zu job(s):",
                      m.group.rep_time.to_ras_string().c_str(),
                      ras::Catalog::instance().info(m.group.errcode).name.c_str(),
                      bgp::Location::from_packed(m.group.rep_key).to_string().c_str(),
                      m.jobs.size());
          for (const std::size_t j : m.jobs) {
            std::printf(" %lld", static_cast<long long>(data.jobs[j].job_id));
          }
          std::printf("\n");
        }
      });

  stream::StreamingFilter::Options live_options;
  live_options.pairs = pairs;
  stream::StreamingFilter live_filter(live_options, matcher);
  stream::StageDriver live(data.ras, data.jobs);
  live.attach(live_filter);
  live.attach(matcher);

  // Deliver the stream one day at a time, as a daemon tailing the logs
  // would; one final catch-up window collects stragglers, then flush.
  for (int day = 0; day < days; ++day) {
    live.replay(scenario.start + day * kUsecPerDay,
                scenario.start + (day + 1) * kUsecPerDay);
  }
  live.replay(scenario.start + days * kUsecPerDay,
              TimePoint(std::numeric_limits<Usec>::max()));
  live.flush();

  if (alerts > 10) std::printf("... and %zu more alerts\n", alerts - 10);
  std::printf("\n%zu interruption alerts, %zu quiet fatal groups\n", alerts,
              quiet_groups);
  std::printf("peak buffered state: filter %zu groups, matcher %zu entries "
              "(vs %zu raw records)\n",
              live_filter.peak_buffered(), matcher.peak_buffered(), data.ras.size());
  return 0;
}
