// Fault-aware scheduling what-if: the paper's §VII recommendation is that
// the scheduler subscribe to failure information (event time, location,
// category, recovery status) so it stops re-assigning failed nodes. This
// example replays the job log against the co-analysis output and counts the
// interruptions a location-blacklist policy would have avoided.
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::small_scenario(3, 60));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  std::printf("Replay: would a blacklist of recently-failed locations have avoided "
              "each system interruption?\n\n");
  std::printf("%12s %10s %10s %12s\n", "blacklist_h", "avoidable", "of total", "jobs blocked");

  for (const double hours : {1.0, 4.0, 12.0, 24.0, 72.0}) {
    const Usec window = static_cast<Usec>(hours * kUsecPerHour);
    std::size_t avoidable = 0, total_system = 0;

    for (const core::Interruption& in : r.matches.interruptions) {
      const ras::RasEvent& rep = r.filtered.fatal_events[r.filtered.groups[in.group].rep];
      const auto cause = r.classification.by_code.find(rep.errcode);
      const bool is_system = cause == r.classification.by_code.end() ||
                             cause->second.cause == core::Cause::SystemFailure;
      if (!is_system) continue;
      ++total_system;
      // Avoidable iff an *earlier* filtered fatal event touched this job's
      // partition within the blacklist window before the job started.
      const joblog::JobRecord& job = data.jobs[in.job];
      for (const auto& g : r.filtered.groups) {
        const ras::RasEvent& ev = r.filtered.fatal_events[g.rep];
        if (ev.event_time >= job.start_time) break;  // groups are time-ordered
        if (job.start_time - ev.event_time > window) continue;
        if (job.partition.covers(ev.location)) {
          ++avoidable;
          break;
        }
      }
    }

    // Cost side: how many *successful* jobs would the blacklist have delayed?
    std::size_t blocked = 0;
    for (std::size_t j = 0; j < data.jobs.size(); ++j) {
      if (r.matches.group_by_job[j]) continue;  // only count healthy jobs
      const joblog::JobRecord& job = data.jobs[j];
      for (const auto& g : r.filtered.groups) {
        const ras::RasEvent& ev = r.filtered.fatal_events[g.rep];
        if (ev.event_time >= job.start_time) break;
        if (job.start_time - ev.event_time > window) continue;
        if (job.partition.covers(ev.location)) {
          ++blocked;
          break;
        }
      }
    }

    std::printf("%12.0f %10zu %10zu %12zu\n", hours, avoidable, total_system, blocked);
  }

  std::printf("\nReading: a short blacklist already catches the persistent-fault kill\n"
              "chains (the paper's temporal propagation, Obs. 8) at modest cost in\n"
              "delayed healthy jobs; long blacklists mostly add cost.\n");
  return 0;
}
