// Prediction evaluation gate: mine correlation rules from the seeded
// failure-storm scenario, replay them as an online predictor, score against
// the injector's ground truth, and re-run the scenario with the fault-aware
// placement advisor to price what prediction-driven avoidance saves.
//
// Exits nonzero when the quality floors are not met (precision >= 0.7,
// recall >= 0.5, positive mean lead time, positive saved node-hours), so CI
// can run it as a regression gate: any change that silently degrades the
// miner, the predictor or the advisor fails the build.
//
//   example_predict_eval [seed] [days]
#include <cstdio>
#include <cstdlib>

#include "coral/predict/evaluate.hpp"

int main(int argc, char** argv) {
  using namespace coral;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int days = argc > 2 ? std::atoi(argv[2]) : 21;

  const synth::ScenarioConfig scenario = predict::eval_scenario(seed, days);
  const predict::PolicyComparison cmp = predict::compare_policies(scenario);

  std::printf("scenario:         correlated_cascade seed=%llu days=%d\n",
              (unsigned long long)seed, days);
  std::printf("rules mined:      %zu\n", cmp.rules.size());
  std::printf("predictions:      %zu issued, %zu true\n", cmp.eval.predictions,
              cmp.eval.true_predictions);
  std::printf("precision:        %.3f\n", cmp.eval.precision());
  std::printf("recall:           %.3f  (%zu of %zu system interruptions)\n",
              cmp.eval.recall(), cmp.eval.events_caught, cmp.eval.events_total);
  std::printf("mean lead time:   %.1f min\n", cmp.eval.mean_lead_minutes);
  std::printf("interruptions:    %zu baseline, %zu advised\n",
              cmp.baseline_interruptions, cmp.advised_interruptions);
  std::printf("lost node-hours:  %.0f baseline, %.0f advised\n",
              cmp.baseline_lost_node_hours, cmp.advised_lost_node_hours);
  std::printf("saved node-hours: %.0f\n", cmp.saved_node_hours());

  bool ok = true;
  const auto gate = [&ok](const char* what, bool pass) {
    std::printf("%-18s %s\n", what, pass ? "PASS" : "FAIL");
    ok = ok && pass;
  };
  std::printf("\n");
  gate("precision >= 0.7:", cmp.eval.precision() >= 0.7);
  gate("recall >= 0.5:", cmp.eval.recall() >= 0.5);
  gate("lead time > 0:", cmp.eval.mean_lead_minutes > 0.0);
  gate("saved hours > 0:", cmp.saved_node_hours() > 0.0);
  return ok ? 0 : 1;
}
