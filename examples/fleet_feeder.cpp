// Two-tenant fleet feed: generate a BG/P and a BG/Q log pair, stream both
// to a coral_daemon over the wire protocol from concurrent feeder threads
// (socket-sized chunks, interleaved), scrape live stats mid-run, finalize,
// and verify parity: the daemon's result fingerprint must equal an offline
// read_binary + run_coanalysis over the exact same bytes.
//
//   $ ./example_fleet_feeder            # self-hosts a daemon in-process
//   $ ./example_fleet_feeder 41317      # feeds a coral_daemon on that port
//
//   $ ./coral_daemon &                  # prints "... wire=127.0.0.1:PORT ..."
//   $ ./example_fleet_feeder PORT

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "coral/core/pipeline.hpp"
#include "coral/fleet/client.hpp"
#include "coral/fleet/daemon.hpp"
#include "coral/fleet/fingerprint.hpp"
#include "coral/joblog/binary_io.hpp"
#include "coral/ras/binary_io.hpp"
#include "coral/synth/packs.hpp"

int main(int argc, char** argv) {
  using namespace coral;

  struct Feed {
    const char* tenant;
    const char* machine_name;
    const machine::MachineModel* machine;
    std::string ras_bytes, job_bytes;
    fleet::ReplyFields reply;
  };
  Feed feeds[2] = {{"intrepid", "bgp", &machine::bgp_model(), {}, {}, {}},
                   {"mira", "bgq", &machine::bgq_model(), {}, {}, {}}};

  // One calibrated scenario per machine, serialized to the binary-v2 bytes
  // a collector would ship (10 days keeps the example snappy).
  for (Feed& f : feeds) {
    synth::ScenarioConfig scenario = synth::base_scenario(*f.machine, 42, 10);
    Context ctx;
    ctx.with_machine(*f.machine);
    const synth::SynthResult data = synth::generate(scenario, ctx);
    std::ostringstream ras_out, job_out;
    ras::write_binary(ras_out, data.ras);
    joblog::write_binary(job_out, data.jobs);
    f.ras_bytes = ras_out.str();
    f.job_bytes = job_out.str();
    std::printf("%-9s %s: %zu RAS records (%zu KiB), %zu jobs (%zu KiB)\n",
                f.tenant, f.machine_name, data.ras.size(), f.ras_bytes.size() / 1024,
                data.jobs.size(), f.job_bytes.size() / 1024);
  }

  // Self-host unless pointed at a running coral_daemon.
  std::unique_ptr<fleet::Daemon> local;
  int port = argc > 1 ? std::atoi(argv[1]) : 0;
  if (port == 0) {
    local = std::make_unique<fleet::Daemon>();
    local->start();
    port = local->wire_port();
    std::printf("self-hosted daemon: wire port %d, metrics port %d\n", port,
                local->metrics_port());
  }

  // Feed both tenants concurrently in 64 KiB chunks — the daemon keeps the
  // two sessions independent, so interleaving cannot change either result.
  std::thread feeders[2];
  for (int i = 0; i < 2; ++i) {
    feeders[i] = std::thread([&, i] {
      Feed& f = feeds[i];
      fleet::WireClient client("127.0.0.1", port);
      client.handshake({f.tenant, f.machine_name, ParseMode::Strict, false});
      client.send_data(stream::Source::Ras, f.ras_bytes, 64 << 10);
      client.send_data(stream::Source::Jobs, f.job_bytes, 64 << 10);
      const fleet::ReplyFields live = client.flush();  // mid-run: not finalized
      std::printf("%-9s live: decoded=%s bytes, ras=%s jobs=%s finalized=%s\n",
                  f.tenant, live.at("bytes_decoded").c_str(),
                  live.at("ras_records").c_str(), live.at("job_records").c_str(),
                  live.at("finalized").c_str());
      // Hold the live (decoded, not finalized) state open on request, so a
      // harness can scrape /metrics mid-run deterministically (CI does).
      if (const char* hold = std::getenv("FLEET_FEEDER_HOLD_MS")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(std::atoi(hold)));
      }
      f.reply = client.finalize();
    });
  }
  for (std::thread& t : feeders) t.join();

  // Parity: offline read + analysis over the same bytes, same machine.
  int failures = 0;
  for (Feed& f : feeds) {
    std::istringstream ras_in(f.ras_bytes), job_in(f.job_bytes);
    const ras::RasLog ras_log =
        ras::read_binary(ras_in, ras::default_catalog(), ParseMode::Strict, nullptr,
                         nullptr, nullptr, *f.machine);
    const joblog::JobLog job_log = joblog::read_binary(
        job_in, ParseMode::Strict, nullptr, nullptr, *f.machine);
    Context ctx;
    ctx.with_machine(*f.machine);
    const core::CoAnalysisResult offline =
        core::run_coanalysis(ras_log, job_log, {}, ctx);
    char offline_fp[17];
    std::snprintf(offline_fp, sizeof offline_fp, "%016llx",
                  static_cast<unsigned long long>(fleet::result_fingerprint(offline)));
    const std::string& daemon_fp = f.reply.at("result_fp");
    const bool ok = daemon_fp == offline_fp;
    failures += ok ? 0 : 1;
    std::printf("%-9s daemon fp=%s offline fp=%s  %s  (%s system + %s app "
                "interruptions)\n",
                f.tenant, daemon_fp.c_str(), offline_fp, ok ? "PARITY" : "MISMATCH",
                f.reply.at("system_interruptions").c_str(),
                f.reply.at("application_interruptions").c_str());
  }

  if (local) local->stop();
  return failures == 0 ? 0 : 1;
}
