// Checkpoint advisor: turns the co-analysis outputs into checkpoint-interval
// recommendations, applying the paper's §VII guidance:
//   - use the *interruption* distribution (MTTI), not the raw failure rate,
//     because failures on idle nodes don't hurt jobs (Obs. 7);
//   - size the interval per job width (wider jobs fail more; Obs. 10);
//   - don't checkpoint during the first hour of a job whose history shows
//     application errors — most app errors fire early (Obs. 9/11).
#include <cmath>
#include <cstdio>

#include "coral/core/pipeline.hpp"
#include "coral/synth/intrepid.hpp"

namespace {

// Young's first-order optimal checkpoint interval [13]: sqrt(2 * C * MTTI).
double young_interval_sec(double checkpoint_cost_sec, double mtti_sec) {
  return std::sqrt(2.0 * checkpoint_cost_sec * mtti_sec);
}

}  // namespace

int main() {
  using namespace coral;
  const synth::SynthResult data = synth::generate(synth::small_scenario(5, 60));
  const core::CoAnalysisResult r = core::run_coanalysis(data.ras, data.jobs);

  const double mtti = r.interruptions_system.weibull.mean();
  const double mtbf = r.fatal_before_jobfilter.weibull.mean();
  std::printf("Fitted from the logs: MTBF(all fatal events) = %.1f h, "
              "MTTI(system interruptions) = %.1f h\n\n",
              mtbf / 3600, mtti / 3600);
  std::printf("A planner using raw MTBF would checkpoint %.1fx too often — "
              "most fatal events never touch a job (Obs. 7).\n\n",
              std::sqrt(mtti / mtbf));

  // Per-size MTTI: scale the systemwide MTTI by each size class's share of
  // interruptions per job-hour (from the Table VI grid).
  const auto& grid = r.vulnerability.grid;
  std::printf("%-14s %14s %18s %22s\n", "job size", "interruptions",
              "per-1000-jobs rate", "Young interval (C=5min)");
  static const int kSizes[9] = {1, 2, 4, 8, 16, 32, 48, 64, 80};
  for (int row = 0; row < 9; ++row) {
    const auto& cell = grid.row_sums[static_cast<std::size_t>(row)];
    if (cell.total == 0) continue;
    const double rate = cell.proportion();
    // Size-conditional MTTI: systemwide MTTI scaled by the relative risk of
    // this size class vs the overall rate.
    const double overall = grid.total.proportion();
    const double mtti_size = rate > 0 ? mtti * overall / rate : mtti * 10;
    const double interval = young_interval_sec(300.0, mtti_size);
    std::printf("%3d midplanes  %8zu/%-6zu %16.2f%% %18.0f s (%.1f h)\n", kSizes[row],
                cell.interrupted, cell.total, 100.0 * rate, interval, interval / 3600);
  }

  std::printf("\nHistory rule (Obs. 9/11): %.0f%% of application-error interruptions "
              "strike within the first hour,\n",
              100.0 * r.vulnerability.app_interruptions_within_hour);
  const auto& app_k = r.vulnerability.resubmission[1];
  std::printf("and a job that already failed once on an application error fails again "
              "with P=%.0f%% (k=1) / %.0f%% (k=2).\n",
              100.0 * app_k.by_k[0].probability(), 100.0 * app_k.by_k[1].probability());
  std::printf("=> For resubmissions with app-error history, start checkpointing only "
              "after the first hour survives;\n   the checkpoint written earlier would "
              "almost always be wasted on a deterministic early crash.\n");
  return 0;
}
