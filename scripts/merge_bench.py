#!/usr/bin/env python3
"""Merge benchmark runs into BENCH_coanalysis.json and gate regressions.

Reads google-benchmark JSON files (--gbench) and the perf_streaming
self-main JSON (--streaming), normalizes everything to milliseconds of
real time, and merges the result into the committed trajectory file:

    {
      "schema": 1,
      "units": "ms (gbench: cpu_time; perf_streaming: wall)",
      "baseline": { "<bench>": ms, ... },   # pre-columnar-hot-path numbers
      "current":  { "<bench>": ms, ... }    # latest run, updated here
    }

"baseline" is historical (written once, before the columnar rewrite) and
never touched; "current" is the regression reference: any bench that got
more than --max-regression slower than the committed "current" entry
fails the run. Only gbench cpu_time entries are gated. Bench names are
keyed by function name with gbench's '/'-joined argument suffixes
(min_time:, threads:, Args) stripped, and a committed cpu_time entry
with no fresh counterpart fails the gate rather than being skipped.
Benches faster than --gate-floor-ms are reported but not gated — at
microsecond scale, scheduler noise on a shared CI box easily exceeds
any sane threshold.

The perf_streaming per-mode wall numbers are recorded but never gated:
they are fork-based wall measurements of a few-ms run, observed swinging
2x best-of-7 on shared CI VMs. The streaming engine's gated regression
coverage is the CPU-time BM_FullCoAnalysis / BM_EndToEndCoAnalysis
series (run_coanalysis defaults to the streaming engine).
"""

import argparse
import json
import sys

GBENCH_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def normalize_gbench(name):
    """Strip google-benchmark's '/'-joined run arguments from a bench name.

    gbench appends ->Arg()/->MinTime()/->Threads() settings to the reported
    name ("BM_Foo/min_time:0.500"), so tuning a bench silently forks its
    trajectory key: the suffixed fresh name never matches the committed
    entry, both sides print as "new", and the regression gate stops
    comparing that series. Key everything by the function name instead.
    """
    return name.split("/")[0]


def load_gbench(path):
    """google-benchmark entries, in ms of *CPU* time.

    CPU time, not real time: CI runs on small shared VMs where wall clock
    measures the noisy neighbors (observed 2x swings on identical binaries
    run minutes apart, while CPU time held a ~5% cv). Every gbench suite
    here is CPU-bound single-threaded, so on a quiet box the two agree and
    the committed trajectory stays comparable. perf_streaming keeps wall
    time — its fork-based modes are measured as wall by design.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = normalize_gbench(bench["name"])
        if name in out:
            sys.exit(f"merge_bench.py: {path}: duplicate bench key {name!r} "
                     "after argument-suffix normalization")
        out[name] = bench["cpu_time"] * GBENCH_TO_MS[bench["time_unit"]]
    return out


def load_streaming(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        "perf_streaming/" + mode["name"]: mode["seconds"] * 1e3
        for mode in doc.get("modes", [])
    }


def obs_stage_totals(path):
    """Per-stage wall-ms totals from each mode's obs snapshot.

    Informational only (never gated): stage splits from a single
    instrumented rep are too noisy to gate on, but their trajectory is
    worth recording next to the gated end-to-end numbers.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for mode in doc.get("modes", []):
        snap = mode.get("obs") or {}
        totals = {}
        for span in snap.get("spans", []):
            totals[span["name"]] = totals.get(span["name"], 0.0) + span["dur_us"] / 1e3
        for stage, ms in totals.items():
            out[f"{mode['name']}/{stage}"] = round(ms, 4)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", required=True, help="trajectory JSON to merge into")
    ap.add_argument("--gbench", nargs="*", default=[], help="google-benchmark JSON files")
    ap.add_argument("--streaming", help="perf_streaming self-main JSON file")
    ap.add_argument("--obs", help="obs snapshot JSON (the BENCH_streaming.json "
                    "artifact) for the informational per-stage totals; defaults "
                    "to the --streaming file")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="fail when current/committed - 1 exceeds this (default 0.10)")
    ap.add_argument("--gate-floor-ms", type=float, default=0.5,
                    help="skip the gate for benches faster than this (default 0.5 ms)")
    args = ap.parse_args()

    fresh = {}
    stage_totals = {}
    ungated = set()
    for path in args.gbench:
        fresh.update(load_gbench(path))
    if args.streaming:
        streaming = load_streaming(args.streaming)
        fresh.update(streaming)
        ungated.update(streaming)  # wall time on shared VMs: trajectory only
        stage_totals = obs_stage_totals(args.obs or args.streaming)
    if not fresh:
        sys.exit("merge_bench.py: no benchmark results given")

    for name in sorted(stage_totals):
        print(f"  obs   {name}: {stage_totals[name]:.3f} ms (informational)")

    try:
        with open(args.out) as f:
            doc = json.load(f)
    except FileNotFoundError:
        doc = {}
    # Normalize the committed keys the same way as the fresh gbench keys, so
    # a trajectory recorded before the normalization (or with a different
    # MinTime) still lines up. perf_streaming/<mode> keys are this script's
    # own naming, not gbench's — the '/' is load-bearing there.
    committed = {}
    for name, ms in doc.get("current", {}).items():
        key = name if name.startswith("perf_streaming/") else normalize_gbench(name)
        committed[key] = ms

    failures = []
    # A committed cpu_time entry with no fresh counterpart means the gate
    # silently stopped covering that series (bench renamed or dropped, or a
    # suite not passed to --gbench). That is exactly how the suffix bug hid:
    # fail loudly instead. Streaming wall entries are trajectory-only, so a
    # run without --streaming legitimately leaves them untouched.
    if args.gbench:
        stale = [name for name in sorted(committed)
                 if not name.startswith("perf_streaming/") and name not in fresh]
        for name in stale:
            print(f"  GONE  {name}: committed {committed[name]:.3f} ms has no "
                  "fresh result")
        failures.extend(stale)
    for name in sorted(fresh):
        now = fresh[name]
        ref = committed.get(name)
        if ref is None:
            print(f"  new   {name}: {now:.3f} ms")
            continue
        delta = (now - ref) / ref if ref > 0 else 0.0
        gated = ref >= args.gate_floor_ms and name not in ungated
        tag = "" if gated else (
            " (wall, informational)" if name in ungated else " (below gate floor)")
        print(f"  {'ok ' if delta <= args.max_regression or not gated else 'REG'}   "
              f"{name}: {now:.3f} ms vs {ref:.3f} ms ({delta:+.1%}){tag}")
        if gated and delta > args.max_regression:
            failures.append(name)

    if failures:
        sys.exit(f"merge_bench.py: gate failed (regression over "
                 f"{args.max_regression:.0%}, or committed entry without a "
                 "fresh result) in: " + ", ".join(failures))

    merged = dict(committed)
    merged.update(fresh)
    out_doc = {
        "schema": 1,
        "units": "ms (gbench: cpu_time; perf_streaming: wall)",
        "baseline": doc.get("baseline", {}),
        "current": {k: round(v, 4) for k, v in sorted(merged.items())},
    }
    # "resets" documents deliberate reference changes (bench rewrites,
    # renamed series) so a jump in "current" is auditable; carry it through.
    if "resets" in doc:
        out_doc["resets"] = doc["resets"]
    if stage_totals:
        out_doc["obs_stages"] = dict(sorted(stage_totals.items()))
    elif "obs_stages" in doc:
        out_doc["obs_stages"] = doc["obs_stages"]
    with open(args.out, "w") as f:
        json.dump(out_doc, f, indent=2)
        f.write("\n")
    print(f"merge_bench.py: wrote {len(merged)} entries to {args.out}")


if __name__ == "__main__":
    main()
