#!/usr/bin/env python3
"""Aggregate gcov line coverage for the coral library and gate on a minimum.

gcovr is deliberately not a dependency: this walks a --coverage build tree,
invokes plain `gcov --json-format --stdout` on every .gcda, unions the
per-translation-unit line data (a line counts as covered if any TU executed
it), and reports line coverage restricted to files under --source-prefix.

Branch coverage is gated separately and only on the decision-heavy kernels
(--branch-prefix, repeatable; default the filter and matching layers):
line coverage on glue code is a fine proxy, but the coalescing windows,
CSR group walks and match rules are condition soup where a hit line says
little about which way the condition went. Exception-only edges ("throw"
branches in the gcov JSON) are excluded, as conventional.

Usage:
  python3 scripts/coverage.py --build-dir build/coverage \
      --source-prefix src/coral --min-percent 80 \
      --branch-prefix src/coral/filter --branch-prefix src/coral/core/matching \
      --min-branch-percent 70
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir: str) -> list[str]:
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.join(root, name))
    return sorted(out)


def run_gcov(gcda: str) -> list[dict]:
    """Run gcov on one .gcda and return the parsed JSON documents."""
    # -b: without it gcov omits the per-line "branches" arrays even in JSON.
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", "-b", gcda],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}", file=sys.stderr)
        return []
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            print(f"warning: unparseable gcov output for {gcda}", file=sys.stderr)
    return docs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument(
        "--source-prefix",
        default="src/coral",
        help="only count source files whose path contains this prefix",
    )
    parser.add_argument("--min-percent", type=float, default=80.0)
    parser.add_argument(
        "--branch-prefix",
        action="append",
        default=None,
        help="gate branch coverage on files whose path contains one of these "
        "prefixes (repeatable; default: src/coral/filter, src/coral/core/matching)",
    )
    parser.add_argument("--min-branch-percent", type=float, default=70.0)
    args = parser.parse_args()
    branch_prefixes = args.branch_prefix or ["src/coral/filter", "src/coral/core/matching"]

    gcda_files = find_gcda(args.build_dir)
    if not gcda_files:
        print(f"error: no .gcda files under {args.build_dir}; "
              "build with --coverage and run the tests first", file=sys.stderr)
        return 2

    # file path -> {line number -> hit anywhere?}
    lines_by_file: dict[str, dict[int, bool]] = {}
    # file path -> {(line number, branch index) -> taken anywhere?}
    branches_by_file: dict[str, dict[tuple[int, int], bool]] = {}
    for gcda in gcda_files:
        for doc in run_gcov(gcda):
            for f in doc.get("files", []):
                path = os.path.normpath(f.get("file", ""))
                if args.source_prefix not in path:
                    continue
                table = lines_by_file.setdefault(path, {})
                btable = branches_by_file.setdefault(path, {})
                for ln in f.get("lines", []):
                    number = ln.get("line_number")
                    if number is None:
                        continue
                    hit = ln.get("count", 0) > 0
                    table[number] = table.get(number, False) or hit
                    for idx, br in enumerate(ln.get("branches", [])):
                        if br.get("throw"):
                            continue  # exception edges: conventionally excluded
                        key = (number, idx)
                        taken = br.get("count", 0) > 0
                        btable[key] = btable.get(key, False) or taken

    if not lines_by_file:
        print(f"error: no coverage data matched prefix {args.source_prefix!r}",
              file=sys.stderr)
        return 2

    total_lines = 0
    total_hit = 0
    rows = []
    for path in sorted(lines_by_file):
        table = lines_by_file[path]
        n = len(table)
        hit = sum(1 for covered in table.values() if covered)
        total_lines += n
        total_hit += hit
        rows.append((path, hit, n))

    for path, hit, n in rows:
        pct = 100.0 * hit / n if n else 100.0
        print(f"{pct:6.1f}%  {hit:5d}/{n:<5d}  {path}")

    overall = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"\nTOTAL {overall:.2f}% line coverage "
          f"({total_hit}/{total_lines} lines, {len(rows)} files, "
          f"{len(gcda_files)} object files)")

    # Branch coverage, gated only on the decision-heavy kernels.
    branch_total = 0
    branch_taken = 0
    print("\nBranch coverage (gated kernels):")
    for path in sorted(branches_by_file):
        if not any(prefix in path for prefix in branch_prefixes):
            continue
        btable = branches_by_file[path]
        n = len(btable)
        taken = sum(1 for t in btable.values() if t)
        branch_total += n
        branch_taken += taken
        pct = 100.0 * taken / n if n else 100.0
        print(f"{pct:6.1f}%  {taken:5d}/{n:<5d}  {path}")
    branch_overall = 100.0 * branch_taken / branch_total if branch_total else 0.0
    print(f"\nTOTAL {branch_overall:.2f}% branch coverage on "
          f"{'/'.join(branch_prefixes)} ({branch_taken}/{branch_total} branches)")

    failed = False
    if overall < args.min_percent:
        print(f"FAIL: line coverage {overall:.2f}% is below the "
              f"{args.min_percent:.0f}% floor", file=sys.stderr)
        failed = True
    if branch_total == 0:
        print(f"FAIL: no branch data matched prefixes {branch_prefixes!r}",
              file=sys.stderr)
        failed = True
    elif branch_overall < args.min_branch_percent:
        print(f"FAIL: kernel branch coverage {branch_overall:.2f}% is below "
              f"the {args.min_branch_percent:.0f}% floor", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: above the {args.min_percent:.0f}% line and "
          f"{args.min_branch_percent:.0f}% branch floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
