#!/usr/bin/env python3
"""Aggregate gcov line coverage for the coral library and gate on a minimum.

gcovr is deliberately not a dependency: this walks a --coverage build tree,
invokes plain `gcov --json-format --stdout` on every .gcda, unions the
per-translation-unit line data (a line counts as covered if any TU executed
it), and reports line coverage restricted to files under --source-prefix.

Usage:
  python3 scripts/coverage.py --build-dir build/coverage \
      --source-prefix src/coral --min-percent 80
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir: str) -> list[str]:
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.join(root, name))
    return sorted(out)


def run_gcov(gcda: str) -> list[dict]:
    """Run gcov on one .gcda and return the parsed JSON documents."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}", file=sys.stderr)
        return []
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            print(f"warning: unparseable gcov output for {gcda}", file=sys.stderr)
    return docs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument(
        "--source-prefix",
        default="src/coral",
        help="only count source files whose path contains this prefix",
    )
    parser.add_argument("--min-percent", type=float, default=80.0)
    args = parser.parse_args()

    gcda_files = find_gcda(args.build_dir)
    if not gcda_files:
        print(f"error: no .gcda files under {args.build_dir}; "
              "build with --coverage and run the tests first", file=sys.stderr)
        return 2

    # file path -> {line number -> hit anywhere?}
    lines_by_file: dict[str, dict[int, bool]] = {}
    for gcda in gcda_files:
        for doc in run_gcov(gcda):
            for f in doc.get("files", []):
                path = os.path.normpath(f.get("file", ""))
                if args.source_prefix not in path:
                    continue
                table = lines_by_file.setdefault(path, {})
                for ln in f.get("lines", []):
                    number = ln.get("line_number")
                    if number is None:
                        continue
                    hit = ln.get("count", 0) > 0
                    table[number] = table.get(number, False) or hit

    if not lines_by_file:
        print(f"error: no coverage data matched prefix {args.source_prefix!r}",
              file=sys.stderr)
        return 2

    total_lines = 0
    total_hit = 0
    rows = []
    for path in sorted(lines_by_file):
        table = lines_by_file[path]
        n = len(table)
        hit = sum(1 for covered in table.values() if covered)
        total_lines += n
        total_hit += hit
        rows.append((path, hit, n))

    for path, hit, n in rows:
        pct = 100.0 * hit / n if n else 100.0
        print(f"{pct:6.1f}%  {hit:5d}/{n:<5d}  {path}")

    overall = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"\nTOTAL {overall:.2f}% line coverage "
          f"({total_hit}/{total_lines} lines, {len(rows)} files, "
          f"{len(gcda_files)} object files)")

    if overall < args.min_percent:
        print(f"FAIL: line coverage {overall:.2f}% is below the "
              f"{args.min_percent:.0f}% floor", file=sys.stderr)
        return 1
    print(f"OK: above the {args.min_percent:.0f}% floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
