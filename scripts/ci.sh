#!/usr/bin/env bash
# CI entry point: build every preset (release, asan-ubsan, tsan) and run the
# test suite under each. Usage: scripts/ci.sh [preset...] (default: all).
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(release asan-ubsan tsan)
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS"
done

# Corpus fuzz-smoke: the lenient-ingest corruption corpus (tests/corrupt.hpp
# mutators over CSV and framed-binary logs) must always run under
# ASan/UBSan, even when the caller asked for a subset of presets — the whole
# point of the harness is catching out-of-bounds reads and UB on damaged
# input, which the release build cannot see.
case " ${PRESETS[*]} " in
  *" asan-ubsan "*) ;;  # full asan-ubsan suite already ran above
  *)
    echo "==== [asan-ubsan] fuzz-smoke corpus ===="
    cmake --preset asan-ubsan
    cmake --build --preset asan-ubsan -j "$JOBS" --target test_ingest
    ctest --preset asan-ubsan -R 'FuzzSmoke' -j "$JOBS"
    ;;
esac

# The concurrent multi-catalog tests must always run under ThreadSanitizer,
# even when the caller asked for a subset of presets: they are the only
# coverage of two Contexts racing through the full pipeline.
case " ${PRESETS[*]} " in
  *" tsan "*) ;;  # full tsan suite already ran above
  *)
    echo "==== [tsan] focused Context race check ===="
    cmake --preset tsan
    cmake --build --preset tsan -j "$JOBS" --target test_context
    ctest --preset tsan -R 'Context' -j "$JOBS"
    ;;
esac

echo "==== all presets green ===="
