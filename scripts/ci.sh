#!/usr/bin/env bash
# CI entry point: build every preset (release, asan-ubsan, tsan) and run the
# test suite under each, then run the perf benches and gate regressions.
# Usage: scripts/ci.sh [stage...] (default: all presets + smoke + bench +
# coverage).
# Stages are preset names plus:
#   smoke    — scenario-matrix smoke: every registered machine model runs
#              every calibrated scenario pack through both co-analysis
#              engines at a short horizon (perf_scenarios --smoke; whole
#              matrix is well under a second, tier-1 budget).
#   bench    — runs the perf_* suites on the release build and merges the
#              results into BENCH_coanalysis.json at the repo root, failing
#              on a >25% regression versus the committed numbers.
#   coverage — rebuilds with gcc --coverage, runs the full suite, and gates
#              line coverage on src/coral at 80% plus branch coverage on the
#              filter/matching kernels at 70% via scripts/coverage.py
#              (plain gcov + python3; no gcovr dependency).
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_COVERAGE=0
RUN_SMOKE=0
PRESETS=()
for stage in "$@"; do
  if [ "$stage" = bench ]; then
    RUN_BENCH=1
  elif [ "$stage" = coverage ]; then
    RUN_COVERAGE=1
  elif [ "$stage" = smoke ]; then
    RUN_SMOKE=1
  else
    PRESETS+=("$stage")
  fi
done
if [ $# -eq 0 ]; then
  PRESETS=(release asan-ubsan tsan)
  RUN_BENCH=1
  RUN_COVERAGE=1
  RUN_SMOKE=1
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS"
done

# Corpus fuzz-smoke: the lenient-ingest corruption corpus (tests/corrupt.hpp
# mutators over CSV and framed-binary logs) must always run under
# ASan/UBSan, even when the caller asked for a subset of presets — the whole
# point of the harness is catching out-of-bounds reads and UB on damaged
# input, which the release build cannot see.
case " ${PRESETS[*]} " in
  *" asan-ubsan "*) ;;  # full asan-ubsan suite already ran above
  *)
    echo "==== [asan-ubsan] fuzz-smoke corpus ===="
    cmake --preset asan-ubsan
    cmake --build --preset asan-ubsan -j "$JOBS" --target test_ingest
    ctest --preset asan-ubsan -L fuzz -j "$JOBS"
    ;;
esac

# The concurrent multi-catalog tests must always run under ThreadSanitizer,
# even when the caller asked for a subset of presets: they are the only
# coverage of two Contexts racing through the full pipeline.
case " ${PRESETS[*]} " in
  *" tsan "*) ;;  # full tsan suite already ran above
  *)
    echo "==== [tsan] focused Context race check ===="
    cmake --preset tsan
    cmake --build --preset tsan -j "$JOBS" --target test_context
    ctest --preset tsan -R 'Context' -j "$JOBS"
    ;;
esac

if [ "$RUN_SMOKE" -eq 1 ]; then
  echo "==== [smoke] scenario matrix (machines x packs x engines) ===="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" --target perf_scenarios
  build/release/bench/perf_scenarios --smoke
fi

if [ "$RUN_BENCH" -eq 1 ]; then
  echo "==== [bench] build (release) ===="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target perf_filtering perf_matching perf_pipeline perf_streaming
  BENCH_DIR=build/release/bench
  BENCH_OUT=$(mktemp -d)
  trap 'rm -rf "$BENCH_OUT"' EXIT
  echo "==== [bench] run ===="
  # The installed google-benchmark wants a plain double for min_time (no
  # "0.1s" duration suffix).
  for b in perf_filtering perf_matching perf_pipeline; do
    "$BENCH_DIR/$b" --benchmark_min_time=0.1 --benchmark_format=json \
      > "$BENCH_OUT/$b.json"
  done
  # Run from the bench dir: perf_streaming drops its BENCH_streaming.json
  # stage-timing artifact in cwd, which should stay out of the repo root.
  # Best-of-7 reps (seed/shards at defaults): the per-mode wall numbers are
  # only a few ms, and on shared CI VMs best-of-3 leaves enough scheduler
  # noise to trip the regression gate spuriously.
  (cd "$BENCH_DIR" && ./perf_streaming 42 8 7) > "$BENCH_OUT/perf_streaming.json"
  echo "==== [bench] merge + regression gate ===="
  python3 scripts/merge_bench.py --out BENCH_coanalysis.json \
    --gbench "$BENCH_OUT"/perf_filtering.json "$BENCH_OUT"/perf_matching.json \
             "$BENCH_OUT"/perf_pipeline.json \
    --streaming "$BENCH_OUT"/perf_streaming.json \
    --obs "$BENCH_DIR"/BENCH_streaming.json \
    --max-regression 0.25
fi

if [ "$RUN_COVERAGE" -eq 1 ]; then
  echo "==== [coverage] build (gcc --coverage) ===="
  cmake -B build/coverage -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS=--coverage \
    -DCMAKE_EXE_LINKER_FLAGS=--coverage
  cmake --build build/coverage -j "$JOBS"
  echo "==== [coverage] test ===="
  # Stale counters from a previous run would double-count; start clean.
  find build/coverage -name '*.gcda' -delete
  (cd build/coverage && ctest -j "$JOBS" --output-on-failure)
  echo "==== [coverage] aggregate + gate (>=80% line on src/coral, >=70% branch on filter/matching kernels) ===="
  python3 scripts/coverage.py --build-dir build/coverage \
    --source-prefix src/coral --min-percent 80 \
    --branch-prefix src/coral/filter --branch-prefix src/coral/core/matching \
    --min-branch-percent 70
fi

echo "==== all stages green ===="
