#!/usr/bin/env bash
# CI entry point: build every preset (release, asan-ubsan, tsan) and run the
# test suite under each, then run the perf benches and gate regressions.
# Usage: scripts/ci.sh [stage...] (default: all presets + smoke + daemon +
# predict + bench + coverage).
# Stages are preset names plus:
#   smoke    — scenario-matrix smoke: every registered machine model runs
#              every calibrated scenario pack through both co-analysis
#              engines at a short horizon (perf_scenarios --smoke; whole
#              matrix is well under a second, tier-1 budget).
#   daemon   — fleet-daemon smoke: start coral_daemon, feed two tenants
#              (bgp + bgq) concurrently over the wire protocol, scrape
#              /metrics mid-run (live, non-final per-tenant counters), and
#              assert end-state parity against the offline batch engine.
#   predict  — prediction-eval gate: mine correlation rules on the seeded
#              injector scenario, score the online predictor against ground
#              truth, and fail unless precision/recall/lead-time/saved
#              node-hours clear the floors (example_predict_eval), plus a
#              logtool mine -> predict round trip on generated logs.
#   bench    — runs the perf_* suites on the release build and merges the
#              results into BENCH_coanalysis.json at the repo root, failing
#              on a >10% cpu_time regression versus the committed numbers.
#   coverage — rebuilds with gcc --coverage, runs the full suite, and gates
#              line coverage on src/coral at 80% plus branch coverage on the
#              filter/matching kernels at 92% via scripts/coverage.py
#              (plain gcov + python3; no gcovr dependency).
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_COVERAGE=0
RUN_SMOKE=0
RUN_DAEMON=0
RUN_PREDICT=0
PRESETS=()
for stage in "$@"; do
  if [ "$stage" = bench ]; then
    RUN_BENCH=1
  elif [ "$stage" = coverage ]; then
    RUN_COVERAGE=1
  elif [ "$stage" = smoke ]; then
    RUN_SMOKE=1
  elif [ "$stage" = daemon ]; then
    RUN_DAEMON=1
  elif [ "$stage" = predict ]; then
    RUN_PREDICT=1
  else
    PRESETS+=("$stage")
  fi
done
if [ $# -eq 0 ]; then
  PRESETS=(release asan-ubsan tsan)
  RUN_BENCH=1
  RUN_COVERAGE=1
  RUN_SMOKE=1
  RUN_DAEMON=1
  RUN_PREDICT=1
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS"
done

# Corpus fuzz-smoke: the lenient-ingest corruption corpus (tests/corrupt.hpp
# mutators over CSV and framed-binary logs) must always run under
# ASan/UBSan, even when the caller asked for a subset of presets — the whole
# point of the harness is catching out-of-bounds reads and UB on damaged
# input, which the release build cannot see. test_fleet replays the same
# corpus over the wire-protocol socket path (FuzzSmokeWire), so it rides in
# the same stage.
case " ${PRESETS[*]} " in
  *" asan-ubsan "*) ;;  # full asan-ubsan suite already ran above
  *)
    echo "==== [asan-ubsan] fuzz-smoke corpus ===="
    cmake --preset asan-ubsan
    cmake --build --preset asan-ubsan -j "$JOBS" \
      --target test_ingest test_fleet test_predict
    ctest --preset asan-ubsan -L fuzz -j "$JOBS"
    ;;
esac

# The concurrent multi-catalog tests must always run under ThreadSanitizer,
# even when the caller asked for a subset of presets: they are the only
# coverage of two Contexts racing through the full pipeline.
case " ${PRESETS[*]} " in
  *" tsan "*) ;;  # full tsan suite already ran above
  *)
    echo "==== [tsan] focused Context race check ===="
    cmake --preset tsan
    cmake --build --preset tsan -j "$JOBS" --target test_context
    ctest --preset tsan -R 'Context' -j "$JOBS"
    ;;
esac

if [ "$RUN_SMOKE" -eq 1 ]; then
  echo "==== [smoke] scenario matrix (machines x packs x engines) ===="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" --target perf_scenarios coral_logtool
  build/release/bench/perf_scenarios --smoke

  echo "==== [smoke] logtool v2 -> v3 convert + verify round trip ===="
  LOGTOOL_OUT=$(mktemp -d)
  trap 'rm -rf "$LOGTOOL_OUT"' EXIT
  LOGTOOL=build/release/tools/coral_logtool
  "$LOGTOOL" gen "$LOGTOOL_OUT/ras.v2" "$LOGTOOL_OUT/jobs.v2" --v2
  "$LOGTOOL" convert "$LOGTOOL_OUT/ras.v2" "$LOGTOOL_OUT/ras.v3" --v3
  "$LOGTOOL" convert "$LOGTOOL_OUT/jobs.v2" "$LOGTOOL_OUT/jobs.v3" --v3
  "$LOGTOOL" verify "$LOGTOOL_OUT/ras.v2" "$LOGTOOL_OUT/ras.v3"
  "$LOGTOOL" verify "$LOGTOOL_OUT/jobs.v2" "$LOGTOOL_OUT/jobs.v3"
  "$LOGTOOL" info "$LOGTOOL_OUT/ras.v3"
  rm -rf "$LOGTOOL_OUT"
  trap - EXIT
fi

if [ "$RUN_DAEMON" -eq 1 ]; then
  echo "==== [daemon] fleet smoke: two tenants + live /metrics scrape ===="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" --target coral_daemon example_fleet_feeder
  DAEMON_OUT=$(mktemp -d)
  DAEMON_PID=
  FEEDER_PID=
  cleanup_daemon() {
    [ -n "$FEEDER_PID" ] && kill "$FEEDER_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$FEEDER_PID" ] && wait "$FEEDER_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$DAEMON_OUT"
  }
  trap cleanup_daemon EXIT
  build/release/tools/coral_daemon > "$DAEMON_OUT/daemon.log" &
  DAEMON_PID=$!
  for _ in $(seq 50); do
    grep -q 'coral_daemon listening' "$DAEMON_OUT/daemon.log" 2>/dev/null && break
    sleep 0.1
  done
  WIRE_PORT=$(sed -n 's/.*wire=[^:]*:\([0-9]*\).*/\1/p' "$DAEMON_OUT/daemon.log")
  METRICS_PORT=$(sed -n 's/.*metrics=[^:]*:\([0-9]*\).*/\1/p' "$DAEMON_OUT/daemon.log")
  [ -n "$WIRE_PORT" ] && [ -n "$METRICS_PORT" ] || {
    echo "daemon never printed its ports:"; cat "$DAEMON_OUT/daemon.log"; exit 1;
  }
  # The feeder holds its sessions open (decoded, not finalized) for 3 s after
  # flush, which gives the scrape below a deterministic mid-run window. It
  # exits non-zero itself if the daemon fingerprints diverge from the offline
  # engine, so `wait` is the parity gate.
  FLEET_FEEDER_HOLD_MS=3000 build/release/examples/example_fleet_feeder \
    "$WIRE_PORT" > "$DAEMON_OUT/feeder.log" &
  FEEDER_PID=$!
  python3 - "$METRICS_PORT" <<'PY'
import sys, time, urllib.request

# Mid-run liveness: poll /metrics until some tenant shows decoded records
# while still not finalized. Both families carry per-tenant labels.
port = sys.argv[1]
for _ in range(100):
    try:
        text = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=2).read().decode()
    except OSError:
        time.sleep(0.1)
        continue
    lines = text.splitlines()
    live = [l for l in lines
            if l.startswith('coral_session_ras_records{tenant="')
            and not l.endswith(" 0")]
    finalized = [l for l in lines
                 if l.startswith('coral_session_finalized{tenant="')
                 and l.endswith(" 1")]
    if live and not finalized:
        print("mid-run /metrics scrape is live and labeled:")
        for l in live:
            print("  " + l)
        sys.exit(0)
    time.sleep(0.1)
sys.exit("never observed live, non-finalized per-tenant counters on /metrics")
PY
  wait "$FEEDER_PID"
  FEEDER_PID=
  cat "$DAEMON_OUT/feeder.log"
  ! grep -q MISMATCH "$DAEMON_OUT/feeder.log"
  kill "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=
  trap - EXIT
  rm -rf "$DAEMON_OUT"
fi

if [ "$RUN_PREDICT" -eq 1 ]; then
  echo "==== [predict] build (release) ===="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target example_predict_eval coral_logtool
  echo "==== [predict] evaluation floors on the seeded scenario ===="
  # Mines rules on the calibrated injector scenario, replays them online,
  # scores against ground truth, and re-runs with fault-aware placement.
  # Exits non-zero unless precision >= 0.7, recall >= 0.5, lead time > 0
  # and saved node-hours > 0.
  build/release/examples/example_predict_eval 42 21
  echo "==== [predict] logtool mine -> predict round trip ===="
  PREDICT_OUT=$(mktemp -d)
  trap 'rm -rf "$PREDICT_OUT"' EXIT
  LOGTOOL=build/release/tools/coral_logtool
  "$LOGTOOL" gen "$PREDICT_OUT/ras.v2" "$PREDICT_OUT/jobs.v2" --v2
  "$LOGTOOL" mine "$PREDICT_OUT/ras.v2" "$PREDICT_OUT/jobs.v2" \
    "$PREDICT_OUT/rules.crul"
  "$LOGTOOL" predict "$PREDICT_OUT/rules.crul" "$PREDICT_OUT/ras.v2"
  rm -rf "$PREDICT_OUT"
  trap - EXIT
fi

if [ "$RUN_BENCH" -eq 1 ]; then
  echo "==== [bench] build (release) ===="
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target perf_filtering perf_matching perf_pipeline perf_predict perf_streaming
  BENCH_DIR=build/release/bench
  BENCH_OUT=$(mktemp -d)
  trap 'rm -rf "$BENCH_OUT"' EXIT
  echo "==== [bench] run ===="
  # The installed google-benchmark wants a plain double for min_time (no
  # "0.1s" duration suffix).
  for b in perf_filtering perf_matching perf_pipeline perf_predict; do
    "$BENCH_DIR/$b" --benchmark_min_time=0.1 --benchmark_format=json \
      > "$BENCH_OUT/$b.json"
  done
  # Run from the bench dir: perf_streaming drops its BENCH_streaming.json
  # stage-timing artifact in cwd, which should stay out of the repo root.
  # Best-of-7 reps (seed/shards at defaults): the per-mode wall numbers are
  # only a few ms, and on shared CI VMs best-of-3 leaves enough scheduler
  # noise to trip the regression gate spuriously.
  (cd "$BENCH_DIR" && ./perf_streaming 42 8 7) > "$BENCH_OUT/perf_streaming.json"
  echo "==== [bench] merge + regression gate ===="
  python3 scripts/merge_bench.py --out BENCH_coanalysis.json \
    --gbench "$BENCH_OUT"/perf_filtering.json "$BENCH_OUT"/perf_matching.json \
             "$BENCH_OUT"/perf_pipeline.json "$BENCH_OUT"/perf_predict.json \
    --streaming "$BENCH_OUT"/perf_streaming.json \
    --obs "$BENCH_DIR"/BENCH_streaming.json \
    --max-regression 0.10
fi

if [ "$RUN_COVERAGE" -eq 1 ]; then
  echo "==== [coverage] build (gcc --coverage) ===="
  cmake -B build/coverage -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS=--coverage \
    -DCMAKE_EXE_LINKER_FLAGS=--coverage
  cmake --build build/coverage -j "$JOBS"
  echo "==== [coverage] test ===="
  # Stale counters from a previous run would double-count; start clean.
  find build/coverage -name '*.gcda' -delete
  (cd build/coverage && ctest -j "$JOBS" --output-on-failure)
  echo "==== [coverage] aggregate + gate (>=80% line on src/coral, >=92% branch on filter/matching kernels) ===="
  python3 scripts/coverage.py --build-dir build/coverage \
    --source-prefix src/coral --min-percent 80 \
    --branch-prefix src/coral/filter --branch-prefix src/coral/core/matching \
    --min-branch-percent 92
fi

echo "==== all stages green ===="
