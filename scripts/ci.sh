#!/usr/bin/env bash
# CI entry point: build every preset (release, asan-ubsan, tsan) and run the
# test suite under each. Usage: scripts/ci.sh [preset...] (default: all).
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(release asan-ubsan tsan)
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS"
done

# The concurrent multi-catalog tests must always run under ThreadSanitizer,
# even when the caller asked for a subset of presets: they are the only
# coverage of two Contexts racing through the full pipeline.
case " ${PRESETS[*]} " in
  *" tsan "*) ;;  # full tsan suite already ran above
  *)
    echo "==== [tsan] focused Context race check ===="
    cmake --preset tsan
    cmake --build --preset tsan -j "$JOBS" --target test_context
    ctest --preset tsan -R 'Context' -j "$JOBS"
    ;;
esac

echo "==== all presets green ===="
