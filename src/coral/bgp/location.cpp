#include "coral/bgp/location.hpp"

#include <array>
#include <cstdio>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral::bgp {

const char* to_string(LocationKind kind) {
  switch (kind) {
    case LocationKind::Rack: return "rack";
    case LocationKind::Midplane: return "midplane";
    case LocationKind::NodeCard: return "node card";
    case LocationKind::ComputeCard: return "compute card";
    case LocationKind::ServiceCard: return "service card";
    case LocationKind::LinkCard: return "link card";
    case LocationKind::IoNode: return "I/O node";
  }
  return "?";
}

Location Location::rack(int rack) {
  CORAL_EXPECTS(rack >= 0 && rack < Topology::kRacks);
  Location loc;
  loc.kind_ = LocationKind::Rack;
  loc.rack_ = static_cast<std::int16_t>(rack);
  return loc;
}

Location Location::midplane(MidplaneId mid) {
  CORAL_EXPECTS(mid >= 0 && mid < Topology::kMidplanes);
  Location loc;
  loc.kind_ = LocationKind::Midplane;
  loc.rack_ = static_cast<std::int16_t>(rack_of(mid));
  loc.midplane_ = static_cast<std::int8_t>(midplane_in_rack_of(mid));
  return loc;
}

Location Location::node_card(MidplaneId mid, int card) {
  CORAL_EXPECTS(card >= 0 && card < Topology::kNodeCardsPerMidplane);
  Location loc = midplane(mid);
  loc.kind_ = LocationKind::NodeCard;
  loc.card_ = static_cast<std::int8_t>(card);
  return loc;
}

Location Location::compute_card(MidplaneId mid, int card, int jslot) {
  CORAL_EXPECTS(jslot >= 4 && jslot < 4 + Topology::kComputeCardsPerNodeCard);
  Location loc = node_card(mid, card);
  loc.kind_ = LocationKind::ComputeCard;
  loc.sub_ = static_cast<std::int8_t>(jslot);
  return loc;
}

Location Location::service_card(MidplaneId mid) {
  Location loc = midplane(mid);
  loc.kind_ = LocationKind::ServiceCard;
  return loc;
}

Location Location::link_card(MidplaneId mid, int slot) {
  CORAL_EXPECTS(slot >= 0 && slot < Topology::kLinkCardsPerMidplane);
  Location loc = midplane(mid);
  loc.kind_ = LocationKind::LinkCard;
  loc.card_ = static_cast<std::int8_t>(slot);
  return loc;
}

Location Location::io_node(MidplaneId mid, int card, int slot) {
  CORAL_EXPECTS(slot >= 0 && slot < 2);
  Location loc = node_card(mid, card);
  loc.kind_ = LocationKind::IoNode;
  loc.sub_ = static_cast<std::int8_t>(slot);
  return loc;
}

Location Location::make(LocationKind kind, int rack, int midplane_in_rack, int card, int sub) {
  // Encoding bounds only (see packed()): rack has 8 bits, the midplane
  // nibble and the two 6-bit slots reserve their all-ones value as the
  // "absent" sentinel.
  if (rack < 0 || rack > 0xFF) throw InvalidArgument("location rack does not fit encoding");
  if (midplane_in_rack < -1 || midplane_in_rack >= 0xF) {
    throw InvalidArgument("location midplane does not fit encoding");
  }
  if (card < -1 || card >= 0x3F) throw InvalidArgument("location card does not fit encoding");
  if (sub < -1 || sub >= 0x3F) throw InvalidArgument("location sub-slot does not fit encoding");

  const bool needs_mid = kind != LocationKind::Rack;
  const bool needs_card = kind == LocationKind::NodeCard || kind == LocationKind::ComputeCard ||
                          kind == LocationKind::LinkCard || kind == LocationKind::IoNode;
  const bool needs_sub = kind == LocationKind::ComputeCard || kind == LocationKind::IoNode;
  if (needs_mid != (midplane_in_rack >= 0) || needs_card != (card >= 0) ||
      needs_sub != (sub >= 0)) {
    throw InvalidArgument(std::string("location fields do not match kind '") +
                          bgp::to_string(kind) + "'");
  }
  Location loc;
  loc.kind_ = kind;
  loc.rack_ = static_cast<std::int16_t>(rack);
  loc.midplane_ = static_cast<std::int8_t>(midplane_in_rack);
  loc.card_ = static_cast<std::int8_t>(card);
  loc.sub_ = static_cast<std::int8_t>(sub);
  return loc;
}

namespace {

int parse_num_after(std::string_view part, char prefix, std::string_view whole) {
  if (part.size() < 2 || part[0] != prefix) {
    throw ParseError("bad location segment '" + std::string(part) + "' in '" +
                     std::string(whole) + "'");
  }
  for (std::size_t i = 1; i < part.size(); ++i) {
    if (part[i] < '0' || part[i] > '9') {
      throw ParseError("bad location segment '" + std::string(part) + "' in '" +
                       std::string(whole) + "'");
    }
  }
  return static_cast<int>(parse_int(part.substr(1)));
}

}  // namespace

Location Location::parse(std::string_view text) {
  // Segment the view in place (location codes have at most 4 segments; keep
  // two spares so malformed 5/6-part strings reach the specific diagnostics
  // below instead of a generic one).
  std::array<std::string_view, 6> parts;
  std::size_t nparts = 0;
  std::size_t seg_begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '-') {
      if (nparts == parts.size()) throw ParseError("too many segments: '" + std::string(text) + "'");
      parts[nparts++] = text.substr(seg_begin, i - seg_begin);
      seg_begin = i + 1;
    }
  }
  if (parts[0].empty()) throw ParseError("empty location");

  const int rk = parse_num_after(parts[0], 'R', text);
  if (rk < 0 || rk >= Topology::kRacks) {
    throw ParseError("rack out of range: '" + std::string(text) + "'");
  }
  if (nparts == 1) return rack(rk);

  const std::string_view p1 = parts[1];
  if (p1 == "S") {
    // Some logs write "R04-M0-S"; rack-level "R04-S" is not a thing — require
    // a midplane segment first.
    throw ParseError("service card requires a midplane: '" + std::string(text) + "'");
  }
  const int mp = parse_num_after(p1, 'M', text);
  if (mp < 0 || mp >= Topology::kMidplanesPerRack) {
    throw ParseError("midplane out of range: '" + std::string(text) + "'");
  }
  const MidplaneId mid = bgp::midplane_id(rk, mp);
  if (nparts == 2) return midplane(mid);

  const std::string_view p2 = parts[2];
  if (p2 == "S") {
    if (nparts != 3) {
      throw ParseError("trailing segments after service card: '" + std::string(text) + "'");
    }
    return service_card(mid);
  }
  if (!p2.empty() && p2[0] == 'L') {
    if (nparts != 3) {
      throw ParseError("trailing segments after link card: '" + std::string(text) + "'");
    }
    const int slot = parse_num_after(p2, 'L', text);
    if (slot < 0 || slot >= Topology::kLinkCardsPerMidplane) {
      throw ParseError("link card out of range: '" + std::string(text) + "'");
    }
    return link_card(mid, slot);
  }
  const int card = parse_num_after(p2, 'N', text);
  if (card < 0 || card >= Topology::kNodeCardsPerMidplane) {
    throw ParseError("node card out of range: '" + std::string(text) + "'");
  }
  if (nparts == 3) return node_card(mid, card);

  const std::string_view p3 = parts[3];
  if (nparts != 4) throw ParseError("too many segments: '" + std::string(text) + "'");
  if (!p3.empty() && p3[0] == 'I') {
    const int slot = parse_num_after(p3, 'I', text);
    if (slot < 0 || slot >= 2) throw ParseError("I/O node out of range: '" + std::string(text) + "'");
    return io_node(mid, card, slot);
  }
  const int jslot = parse_num_after(p3, 'J', text);
  if (jslot < 4 || jslot >= 4 + Topology::kComputeCardsPerNodeCard) {
    throw ParseError("compute card out of range: '" + std::string(text) + "'");
  }
  return compute_card(mid, card, jslot);
}

Location Location::from_packed(std::uint32_t key) {
  const auto kind = static_cast<LocationKind>((key >> 24) & 0xFF);
  const int rack = static_cast<int>((key >> 16) & 0xFF);
  const int mid_in_rack =
      static_cast<int>((key >> 12) & 0xF) == 0xF ? -1 : static_cast<int>((key >> 12) & 0xF);
  const int card =
      static_cast<int>((key >> 6) & 0x3F) == 0x3F ? -1 : static_cast<int>((key >> 6) & 0x3F);
  const int sub = static_cast<int>(key & 0x3F) == 0x3F ? -1 : static_cast<int>(key & 0x3F);
  switch (kind) {
    case LocationKind::Rack:
      return Location::rack(rack);
    case LocationKind::Midplane:
      return Location::midplane(bgp::midplane_id(rack, mid_in_rack));
    case LocationKind::NodeCard:
      return Location::node_card(bgp::midplane_id(rack, mid_in_rack), card);
    case LocationKind::ComputeCard:
      return Location::compute_card(bgp::midplane_id(rack, mid_in_rack), card, sub);
    case LocationKind::ServiceCard:
      return Location::service_card(bgp::midplane_id(rack, mid_in_rack));
    case LocationKind::LinkCard:
      return Location::link_card(bgp::midplane_id(rack, mid_in_rack), card);
    case LocationKind::IoNode:
      return Location::io_node(bgp::midplane_id(rack, mid_in_rack), card, sub);
  }
  throw ParseError("bad location kind in packed key");
}

std::optional<MidplaneId> Location::midplane_id() const {
  if (kind_ == LocationKind::Rack) return std::nullopt;
  return bgp::midplane_id(rack_, midplane_);
}

bool Location::is_within(const Location& other) const {
  if (other.rack_ != rack_) return false;
  switch (other.kind_) {
    case LocationKind::Rack:
      return true;
    case LocationKind::Midplane:
      return kind_ != LocationKind::Rack && midplane_ == other.midplane_;
    case LocationKind::NodeCard:
      return (kind_ == LocationKind::NodeCard || kind_ == LocationKind::ComputeCard ||
              kind_ == LocationKind::IoNode) &&
             midplane_ == other.midplane_ && card_ == other.card_;
    default:
      return *this == other;
  }
}

bool Location::touches_midplane(MidplaneId mid) const {
  if (kind_ == LocationKind::Rack) return rack_of(mid) == rack_;
  return bgp::midplane_id(rack_, midplane_) == mid;
}

std::string Location::to_string() const {
  char buf[32];
  switch (kind_) {
    case LocationKind::Rack:
      std::snprintf(buf, sizeof buf, "R%02d", rack_);
      break;
    case LocationKind::Midplane:
      std::snprintf(buf, sizeof buf, "R%02d-M%d", rack_, midplane_);
      break;
    case LocationKind::NodeCard:
      std::snprintf(buf, sizeof buf, "R%02d-M%d-N%02d", rack_, midplane_, card_);
      break;
    case LocationKind::ComputeCard:
      std::snprintf(buf, sizeof buf, "R%02d-M%d-N%02d-J%02d", rack_, midplane_, card_, sub_);
      break;
    case LocationKind::ServiceCard:
      std::snprintf(buf, sizeof buf, "R%02d-M%d-S", rack_, midplane_);
      break;
    case LocationKind::LinkCard:
      std::snprintf(buf, sizeof buf, "R%02d-M%d-L%d", rack_, midplane_, card_);
      break;
    case LocationKind::IoNode:
      std::snprintf(buf, sizeof buf, "R%02d-M%d-N%02d-I%02d", rack_, midplane_, card_, sub_);
      break;
  }
  return buf;
}

}  // namespace coral::bgp
