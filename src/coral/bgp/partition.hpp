#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "coral/bgp/location.hpp"
#include "coral/bgp/topology.hpp"
#include "coral/machine/codec.hpp"

namespace coral::bgp {

/// A schedulable partition: a contiguous, aligned range of midplanes.
///
/// The midplane is the minimum scheduling unit on Intrepid (§III-A); larger
/// partitions are whole racks joined with adjacent racks. Legal sizes (in
/// midplanes) are 1, 2, 4, 8, 16, 32, 48, 64 and 80 — exactly the job sizes
/// of Table VI. Sizes >= 2 are rack-aligned; rack counts are aligned to
/// their own size (24-rack and 32-rack partitions align to 8 racks; the
/// 80-midplane partition is the full machine).
class Partition {
 public:
  /// Legal partition sizes in midplanes, ascending.
  static const std::vector<int>& legal_sizes();

  /// Construct from first midplane and size. Throws InvalidArgument if the
  /// (first, size) pair is not a legal aligned partition.
  Partition(MidplaneId first, int midplane_count);

  /// True if (first, size) is a legal aligned BG/P partition — the
  /// constructor's acceptance predicate, exposed so machine::BgpModel can
  /// answer legality without the throw/catch round-trip.
  static bool is_legal(MidplaneId first, int midplane_count);

  /// Construct without the BG/P legality check (bounds only: first >= 0,
  /// count > 0). machine::MachineModel implementations use this for
  /// machines with their own partition ladders; everything else should go
  /// through the validating constructor or a model's parse_partition.
  static Partition unchecked(MidplaneId first, int midplane_count);

  /// Parse a job-log location string: "R04-M0" (one midplane), "R04" (one
  /// rack = 2 midplanes), "R08-R11" (rack range). Throws ParseError.
  /// Takes a string_view so CSV ingest parses fields without allocating.
  static Partition parse(std::string_view text);

  /// All legal partitions of a given size on the machine, in address order.
  static std::vector<Partition> all_of_size(int midplane_count);

  MidplaneId first_midplane() const { return first_; }
  int midplane_count() const { return count_; }
  MidplaneId end_midplane() const { return first_ + count_; }

  bool contains(MidplaneId mid) const { return mid >= first_ && mid < first_ + count_; }
  bool overlaps(const Partition& other) const {
    return first_ < other.end_midplane() && other.first_ < end_midplane();
  }
  /// True if `loc` denotes hardware on one of this partition's midplanes.
  bool covers(const Location& loc) const;

  /// covers() on a Location::packed() key without materializing a Location —
  /// the matching hot loops test millions of (job, event) pairs. Rack-level
  /// keys touch both midplanes of the rack, same as Location::touches_midplane.
  bool covers_key(std::uint32_t key) const {
    if (packed_kind(key) == LocationKind::Rack) {
      const MidplaneId lo = midplane_id(packed_rack(key), 0);
      return lo < end_midplane() && first_ <= lo + 1;
    }
    return contains(packed_midplane(key));
  }

  /// covers_key against a machine-provided codec, for machines whose
  /// midplanes-per-rack differs from the Blue Gene family's 2. With the
  /// default codec this computes exactly the overload above.
  bool covers_key(std::uint32_t key, const machine::LocCodec& codec) const {
    if (codec.is_rack(key)) {
      const MidplaneId lo = codec.rack_first_midplane(key);
      return lo < end_midplane() && first_ <= lo + codec.midplanes_per_rack - 1;
    }
    return contains(codec.midplane_of(key));
  }

  /// Midplane ids of this partition, ascending.
  std::vector<MidplaneId> midplanes() const;

  /// Canonical job-log name ("R04-M0", "R04", "R08-R11").
  std::string name() const;

  friend bool operator==(const Partition& a, const Partition& b) = default;

 private:
  Partition() = default;  // for unchecked(); fields assigned there

  MidplaneId first_ = 0;
  int count_ = 1;
};

}  // namespace coral::bgp
