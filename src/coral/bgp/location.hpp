#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "coral/bgp/topology.hpp"

namespace coral::bgp {

/// Hardware element kinds that appear in the RAS LOCATION field.
enum class LocationKind : std::uint8_t {
  Rack,         ///< "R04"
  Midplane,     ///< "R04-M0"
  NodeCard,     ///< "R04-M0-N08"
  ComputeCard,  ///< "R04-M0-N08-J12"
  ServiceCard,  ///< "R04-M0-S"
  LinkCard,     ///< "R04-M0-L1"
  IoNode,       ///< "R04-M0-N08-I00" (I/O node on a node card)
};

/// Short human-readable name of a kind ("midplane", "node card", ...).
const char* to_string(LocationKind kind);

/// A parsed Blue Gene/P location code.
///
/// Location strings are hierarchical: rack > midplane > node card > card.
/// The co-analysis only needs two operations beyond round-tripping —
/// which midplane an event touches, and rack-level fan-out — both provided
/// here. Invalid strings throw ParseError.
class Location {
 public:
  /// Default-constructs as rack R00 (a placeholder; prefer the factories).
  Location() = default;

  /// Rack-level location, rack in [0, 40).
  static Location rack(int rack);
  /// Midplane-level location.
  static Location midplane(MidplaneId mid);
  /// Node card on a midplane, card in [0, 16).
  static Location node_card(MidplaneId mid, int card);
  /// Compute card: card in [0,16), jslot in [4, 36) (J04..J35 on BG/P).
  static Location compute_card(MidplaneId mid, int card, int jslot);
  /// Service card of a midplane.
  static Location service_card(MidplaneId mid);
  /// Link card of a midplane, slot in [0, 4).
  static Location link_card(MidplaneId mid, int slot);
  /// I/O node on a node card, slot in [0, 2).
  static Location io_node(MidplaneId mid, int card, int slot);

  /// Parse a location string such as "R04-M0-N08-J12". Throws ParseError.
  /// Takes a string_view so per-record CSV ingest parses in place without
  /// materializing a temporary std::string per field.
  static Location parse(std::string_view text);

  /// Assemble a location from raw fields (-1 = absent), validating only
  /// what the packed() encoding can represent plus which fields the kind
  /// requires — NOT the BG/P index ranges. This is the factory for
  /// machine::MachineModel implementations whose racks/slots exceed BG/P's;
  /// the named factories above stay the BG/P-validating path. Throws
  /// InvalidArgument on a field the encoding cannot hold.
  static Location make(LocationKind kind, int rack, int midplane_in_rack, int card, int sub);

  /// Rebuild a Location from its packed() key, validating every field (the
  /// key may come from an untrusted binary log). Throws ParseError on an
  /// impossible encoding.
  static Location from_packed(std::uint32_t key);

  LocationKind kind() const { return kind_; }
  int rack_index() const { return rack_; }

  /// The midplane this location lives on; nullopt for rack-level locations.
  std::optional<MidplaneId> midplane_id() const;

  /// True if this location is `other` or contained within it (e.g. a compute
  /// card is within its midplane and its rack).
  bool is_within(const Location& other) const;

  /// True if the location denotes hardware on (or containing) midplane `mid`.
  /// Rack-level locations touch both midplanes of the rack.
  bool touches_midplane(MidplaneId mid) const;

  /// Canonical string form ("R04-M0-N08-J12").
  std::string to_string() const;

  /// Dense integer encoding, unique per location — a cheap hash-map key for
  /// the filtering hot paths (2M-record logs).
  std::uint32_t packed() const {
    return (static_cast<std::uint32_t>(kind_) << 24) |
           (static_cast<std::uint32_t>(static_cast<std::uint8_t>(rack_)) << 16) |
           ((static_cast<std::uint32_t>(static_cast<std::uint8_t>(midplane_)) & 0xF) << 12) |
           ((static_cast<std::uint32_t>(static_cast<std::uint8_t>(card_)) & 0x3F) << 6) |
           (static_cast<std::uint32_t>(static_cast<std::uint8_t>(sub_)) & 0x3F);
  }

  friend bool operator==(const Location& a, const Location& b) = default;

 private:
  LocationKind kind_ = LocationKind::Rack;
  std::int16_t rack_ = 0;      ///< [0, 40)
  std::int8_t midplane_ = -1;  ///< within rack, [0, 2); -1 when rack-level
  std::int8_t card_ = -1;      ///< node-card or link-card slot
  std::int8_t sub_ = -1;       ///< compute-card J-slot or I/O-node slot
};

/// Field accessors for packed() keys, so the columnar hot paths can reason
/// about a location without materializing a Location. These assume a key
/// produced by Location::packed() (use Location::from_packed to validate an
/// untrusted key).
constexpr LocationKind packed_kind(std::uint32_t key) {
  return static_cast<LocationKind>(key >> 24);
}
constexpr int packed_rack(std::uint32_t key) { return static_cast<int>((key >> 16) & 0xFF); }
/// Machine midplane id of a sub-rack key; meaningless for rack-level keys.
constexpr MidplaneId packed_midplane(std::uint32_t key) {
  return midplane_id(packed_rack(key), static_cast<int>((key >> 12) & 0xF));
}

}  // namespace coral::bgp
