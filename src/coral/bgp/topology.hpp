#pragma once

#include <cstdint>

namespace coral::bgp {

/// Intrepid machine constants (ANL 40-rack Blue Gene/P; §III-A of the paper).
struct Topology {
  static constexpr int kRacks = 40;            ///< R00..R39
  static constexpr int kRows = 5;              ///< rows R0..R4, 8 racks each
  static constexpr int kRacksPerRow = 8;
  static constexpr int kMidplanesPerRack = 2;  ///< M0 (bottom), M1 (top)
  static constexpr int kMidplanes = kRacks * kMidplanesPerRack;  ///< 80
  static constexpr int kNodeCardsPerMidplane = 16;               ///< N00..N15
  static constexpr int kComputeCardsPerNodeCard = 32;            ///< J04..J35
  static constexpr int kNodesPerMidplane = 512;
  static constexpr int kCoresPerNode = 4;
  static constexpr int kLinkCardsPerMidplane = 4;                ///< L0..L3
  static constexpr int kIoNodesPerMidplane = 8;                  ///< 1 per 64 nodes
  static constexpr int kTotalNodes = kMidplanes * kNodesPerMidplane;  ///< 40960
  static constexpr int kTotalCores = kTotalNodes * kCoresPerNode;     ///< 163840
};

/// Global midplane index in [0, 80): rack*2 + midplane-within-rack.
using MidplaneId = std::int32_t;

constexpr MidplaneId midplane_id(int rack, int midplane_in_rack) {
  return rack * Topology::kMidplanesPerRack + midplane_in_rack;
}
constexpr int rack_of(MidplaneId m) { return m / Topology::kMidplanesPerRack; }
constexpr int midplane_in_rack_of(MidplaneId m) { return m % Topology::kMidplanesPerRack; }
constexpr int row_of_rack(int rack) { return rack / Topology::kRacksPerRow; }

}  // namespace coral::bgp
