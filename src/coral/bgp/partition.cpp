#include "coral/bgp/partition.hpp"

#include <cstdio>
#include <string>

#include "coral/common/error.hpp"

namespace coral::bgp {

namespace {

// Rack alignment for a rack-count: powers of two align to themselves,
// 24 and 32 racks align to 8, 40 racks (full machine) to 40.
int rack_alignment(int racks) {
  switch (racks) {
    case 1: return 1;
    case 2: return 2;
    case 4: return 4;
    case 8: return 8;
    case 16: return 16;
    case 24: return 8;
    case 32: return 8;
    case 40: return 40;
    default: return 0;  // illegal
  }
}

bool is_legal(MidplaneId first, int count) {
  if (first < 0 || count <= 0 || first + count > Topology::kMidplanes) return false;
  if (count == 1) return true;
  if (count % 2 != 0 || first % 2 != 0) return false;  // >=2 means whole racks
  const int racks = count / 2;
  const int first_rack = first / 2;
  const int align = rack_alignment(racks);
  return align > 0 && first_rack % align == 0;
}

}  // namespace

bool Partition::is_legal(MidplaneId first, int midplane_count) {
  return bgp::is_legal(first, midplane_count);
}

Partition Partition::unchecked(MidplaneId first, int midplane_count) {
  if (first < 0 || midplane_count <= 0) {
    throw InvalidArgument("partition bounds: first midplane " + std::to_string(first) +
                          ", size " + std::to_string(midplane_count));
  }
  Partition p;
  p.first_ = first;
  p.count_ = midplane_count;
  return p;
}

const std::vector<int>& Partition::legal_sizes() {
  static const std::vector<int> sizes = {1, 2, 4, 8, 16, 32, 48, 64, 80};
  return sizes;
}

Partition::Partition(MidplaneId first, int midplane_count)
    : first_(first), count_(midplane_count) {
  if (!is_legal(first, midplane_count)) {
    throw InvalidArgument("illegal partition: first midplane " + std::to_string(first) +
                          ", size " + std::to_string(midplane_count));
  }
}

Partition Partition::parse(std::string_view text) {
  // A partition name has at most two '-'-separated segments; find the split
  // point without allocating.
  const std::size_t dash = text.find('-');
  const std::string_view head = text.substr(0, dash);
  const std::string_view tail =
      dash == std::string_view::npos ? std::string_view{} : text.substr(dash + 1);
  try {
    if (dash == std::string_view::npos) {
      // "R04": one rack.
      const Location loc = Location::parse(text);
      if (loc.kind() != LocationKind::Rack) {
        throw ParseError("not a partition: '" + std::string(text) + "'");
      }
      return Partition(midplane_id(loc.rack_index(), 0), 2);
    }
    if (!tail.empty() && tail[0] == 'M' && tail.find('-') == std::string_view::npos) {
      // "R04-M0": one midplane.
      const Location loc = Location::parse(text);
      return Partition(*loc.midplane_id(), 1);
    }
    if (!tail.empty() && tail[0] == 'R' && tail.find('-') == std::string_view::npos) {
      // "R08-R11": inclusive rack range.
      const Location a = Location::parse(head);
      const Location b = Location::parse(tail);
      if (a.kind() != LocationKind::Rack || b.kind() != LocationKind::Rack ||
          b.rack_index() < a.rack_index()) {
        throw ParseError("bad rack range: '" + std::string(text) + "'");
      }
      const int racks = b.rack_index() - a.rack_index() + 1;
      return Partition(midplane_id(a.rack_index(), 0), racks * 2);
    }
  } catch (const InvalidArgument& e) {
    throw ParseError("illegal partition '" + std::string(text) + "': " + e.what());
  }
  throw ParseError("unrecognized partition: '" + std::string(text) + "'");
}

std::vector<Partition> Partition::all_of_size(int midplane_count) {
  std::vector<Partition> out;
  for (MidplaneId first = 0; first + midplane_count <= Topology::kMidplanes; ++first) {
    if (is_legal(first, midplane_count)) out.emplace_back(first, midplane_count);
  }
  return out;
}

bool Partition::covers(const Location& loc) const {
  for (MidplaneId m = first_; m < first_ + count_; ++m) {
    if (loc.touches_midplane(m)) return true;
  }
  return false;
}

std::vector<MidplaneId> Partition::midplanes() const {
  std::vector<MidplaneId> out;
  out.reserve(static_cast<std::size_t>(count_));
  for (MidplaneId m = first_; m < first_ + count_; ++m) out.push_back(m);
  return out;
}

std::string Partition::name() const {
  char buf[32];
  if (count_ == 1) {
    std::snprintf(buf, sizeof buf, "R%02d-M%d", rack_of(first_), midplane_in_rack_of(first_));
  } else if (count_ == 2) {
    std::snprintf(buf, sizeof buf, "R%02d", rack_of(first_));
  } else {
    std::snprintf(buf, sizeof buf, "R%02d-R%02d", rack_of(first_),
                  rack_of(first_ + count_ - 1));
  }
  return buf;
}

}  // namespace coral::bgp
