#include "coral/bgp/location.hpp"
#include "coral/bgp/partition.hpp"
#include "coral/bgp/topology.hpp"
#include "coral/machine/model.hpp"

namespace coral::machine {

namespace {

/// The paper's machine. Every virtual that has a pre-MachineModel
/// implementation in bgp/ delegates to it, so analyses through this model
/// are byte-identical to the original hard-wired code — diagnostics
/// included. The generic defaults (location_on_midplane, placement_zones)
/// already reproduce the BG/P behaviour exactly at these dimensions, as the
/// differential golden test pins.
class BgpModel final : public MachineModel {
 public:
  BgpModel()
      : MachineModel(Topology{
            .name = "bgp",
            .description = "40-rack Blue Gene/P (Intrepid)",
            .interconnect = "3-D torus",
            .racks = bgp::Topology::kRacks,
            .midplanes_per_rack = bgp::Topology::kMidplanesPerRack,
            .racks_per_row = bgp::Topology::kRacksPerRow,
            .node_cards_per_midplane = bgp::Topology::kNodeCardsPerMidplane,
            .compute_cards_per_node_card = bgp::Topology::kComputeCardsPerNodeCard,
            .jslot_base = 4,
            .link_cards_per_midplane = bgp::Topology::kLinkCardsPerMidplane,
            .io_nodes_per_node_card = 2,
            .nodes_per_midplane = bgp::Topology::kNodesPerMidplane,
            .cores_per_node = bgp::Topology::kCoresPerNode,
        }) {}

  Location parse_location(std::string_view text) const override {
    return bgp::Location::parse(text);
  }
  Location location_from_packed(std::uint32_t key) const override {
    return bgp::Location::from_packed(key);
  }
  const std::vector<int>& legal_partition_sizes() const override {
    return bgp::Partition::legal_sizes();
  }
  bool is_legal_partition(MidplaneId first, int count) const override {
    return bgp::Partition::is_legal(first, count);
  }
  Partition parse_partition(std::string_view text) const override {
    return bgp::Partition::parse(text);
  }
  std::string partition_name(const Partition& part) const override { return part.name(); }
};

}  // namespace

const MachineModel& bgp_model() {
  static const BgpModel model;
  return model;
}

}  // namespace coral::machine
