#pragma once

#include <cstdint>

namespace coral::machine {

using MidplaneId = std::int32_t;

/// The packed loc_key codec contract.
///
/// Every MachineModel encodes locations into the same 32-bit layout that
/// `bgp::Location::packed()` established for the columnar hot paths:
///
///     [31..24] kind   (LocationKind; Rack == 0)
///     [23..16] rack   index, [0, 256)
///     [15..12] midplane within rack, [0, 15); 0xF = absent (rack-level)
///     [11..6]  card slot, [0, 63); 0x3F = absent
///     [5..0]   sub slot (J-slot / I/O slot), [0, 63); 0x3F = absent
///
/// The only machine-dependent step in decoding a key is mapping
/// (rack, midplane-within-rack) to a flat machine midplane id, which needs
/// the machine's midplanes-per-rack. LocCodec carries exactly that one
/// number, so hot loops grab the codec once per run and decode keys with
/// two shifts and a multiply — no virtual call per event, no Location
/// materialization. A default-constructed LocCodec is the Blue Gene
/// family codec (2 midplanes per rack) and decodes identically to the
/// constexpr `bgp::packed_*` helpers.
struct LocCodec {
  int midplanes_per_rack = 2;

  int rack_of(std::uint32_t key) const { return static_cast<int>((key >> 16) & 0xFF); }

  /// True when the key encodes a whole rack (LocationKind::Rack == 0).
  bool is_rack(std::uint32_t key) const { return (key >> 24) == 0; }

  /// Flat midplane id of a sub-rack key; meaningless for rack-level keys.
  MidplaneId midplane_of(std::uint32_t key) const {
    return static_cast<MidplaneId>(static_cast<int>((key >> 16) & 0xFF) * midplanes_per_rack +
                                   static_cast<int>((key >> 12) & 0xF));
  }

  /// First midplane of the rack a (rack-level) key denotes.
  MidplaneId rack_first_midplane(std::uint32_t key) const {
    return static_cast<MidplaneId>(static_cast<int>((key >> 16) & 0xFF) * midplanes_per_rack);
  }
};

}  // namespace coral::machine
