#include "coral/machine/model.hpp"

namespace coral::machine {

namespace {

// Rack alignment ladder for the 48-rack machine: powers of two align to
// themselves, 32 racks align to 16, 48 racks (the full machine) to 48.
int bgq_rack_alignment(int racks) {
  switch (racks) {
    case 1: return 1;
    case 2: return 2;
    case 4: return 4;
    case 8: return 8;
    case 16: return 16;
    case 32: return 16;
    case 48: return 48;
    default: return 0;  // illegal
  }
}

/// A Mira-scale Blue Gene/Q: 48 racks / 96 midplanes on a 5-D torus, with
/// BG/Q's J00..J31 compute-card numbering (BG/P starts at J04). The string
/// grammar shapes are shared with BG/P; the ranges, the legal-partition
/// ladder and the placement zones are this machine's own. 96 midplanes is
/// deliberately more than BG/P's 80: any surviving compile-time
/// kMidplanes-sized buffer overflows loudly instead of silently truncating.
class BgqModel final : public MachineModel {
 public:
  BgqModel()
      : MachineModel(Topology{
            .name = "bgq",
            .description = "48-rack Blue Gene/Q (Mira)",
            .interconnect = "5-D torus",
            .racks = 48,
            .midplanes_per_rack = 2,
            .racks_per_row = 16,
            .node_cards_per_midplane = 16,
            .compute_cards_per_node_card = 32,
            .jslot_base = 0,
            .link_cards_per_midplane = 4,
            .io_nodes_per_node_card = 2,
            .nodes_per_midplane = 512,
            .cores_per_node = 16,
        }) {}

  const std::vector<int>& legal_partition_sizes() const override {
    static const std::vector<int> sizes = {1, 2, 4, 8, 16, 32, 64, 96};
    return sizes;
  }

  bool is_legal_partition(MidplaneId first, int count) const override {
    if (first < 0 || count <= 0 || first + count > midplane_count()) return false;
    if (count == 1) return true;
    if (count % 2 != 0 || first % 2 != 0) return false;  // >= 2 means whole racks
    const int racks = count / 2;
    const int first_rack = first / 2;
    const int align = bgq_rack_alignment(racks);
    return align > 0 && first_rack % align == 0;
  }

  PlacementZones placement_zones() const override {
    // Mira keeps Intrepid's zone structure but gives the wide band the extra
    // 16 midplanes: debug head 0-1, long narrow jobs 80-95, small jobs 2-31,
    // wide (>= 32 midplane) reservation 32-79.
    PlacementZones z;
    z.head_first = 0;
    z.head_count = 2;
    z.tail_first = 80;
    z.tail_count = 16;
    z.small_first = 2;
    z.small_count = 30;
    z.wide_first = 32;
    z.wide_count = 48;
    z.wide_threshold = 32;
    return z;
  }
};

}  // namespace

const MachineModel& bgq_model() {
  static const BgqModel model;
  return model;
}

}  // namespace coral::machine
