#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "coral/bgp/location.hpp"
#include "coral/bgp/partition.hpp"
#include "coral/common/rng.hpp"
#include "coral/machine/codec.hpp"

namespace coral::machine {

// The shared hardware-address value types. They started life in bgp/ and
// keep their layout and packed() encoding there; the machine layer owns the
// *grammar* (which strings are valid, which partitions are legal) while the
// value types stay machine-neutral containers for (kind, rack, midplane,
// card, sub) tuples.
using Location = bgp::Location;
using LocationKind = bgp::LocationKind;
using Partition = bgp::Partition;

/// Runtime machine dimensions. Where `bgp::Topology` is the compile-time
/// description of the one 40-rack Intrepid, this is the same vocabulary as
/// data, so every layer that used to read a kFoo constant can size itself
/// off whichever machine the analysis targets.
struct Topology {
  const char* name = "bgp";
  const char* description = "40-rack Blue Gene/P (Intrepid)";
  const char* interconnect = "3-D torus";
  int racks = 40;
  int midplanes_per_rack = 2;
  int racks_per_row = 8;
  int node_cards_per_midplane = 16;
  int compute_cards_per_node_card = 32;
  /// First J-slot index on a node card (BG/P numbers J04..J35; BG/Q J00..).
  int jslot_base = 4;
  int link_cards_per_midplane = 4;
  int io_nodes_per_node_card = 2;
  int nodes_per_midplane = 512;
  int cores_per_node = 4;

  int midplanes() const { return racks * midplanes_per_rack; }
};

/// Scheduler placement zones: where `sched::placement_rank` steers each job
/// class. The BG/P values reproduce Intrepid's observed layout (§VI-B);
/// other machines scale the same structure to their midplane count.
struct PlacementZones {
  /// Short single-midplane jobs (debug runs): lowest-address midplanes.
  MidplaneId head_first = 0;
  int head_count = 2;
  /// Long single-midplane jobs: the high end of the machine.
  MidplaneId tail_first = 64;
  int tail_count = 16;
  /// Small multi-midplane jobs (< wide_threshold).
  MidplaneId small_first = 2;
  int small_count = 30;
  /// Reservation band for wide jobs (>= wide_threshold midplanes).
  MidplaneId wide_first = 32;
  int wide_count = 32;
  /// Jobs at least this many midplanes wide count as "wide" — for placement,
  /// for the wear model, and for the Fig. 4 wide-workload series.
  int wide_threshold = 32;
};

/// A machine model: everything the co-analysis knows about one machine
/// family — dimensions, the location-string grammar and its packed-key
/// codec, the partition algebra, and the scheduler's placement policy.
///
/// Models are stateless and immutable; the process-lifetime singletons
/// returned by bgp_model()/bgq_model() are shared freely. Analyses resolve
/// the model through coral::Context (default: BG/P), and logs remember the
/// model they were parsed against, the same way they remember their
/// errcode catalog.
class MachineModel {
 public:
  virtual ~MachineModel() = default;

  const Topology& topology() const { return topo_; }
  const LocCodec& codec() const { return codec_; }
  std::string_view name() const { return topo_.name; }
  int midplane_count() const { return topo_.midplanes(); }

  // --- location grammar ------------------------------------------------
  /// Parse a RAS LOCATION string ("R04-M0-N08-J12"). Throws ParseError.
  virtual Location parse_location(std::string_view text) const;
  /// Rebuild a Location from a packed key, validating every field against
  /// this machine (the key may come from an untrusted binary log).
  virtual Location location_from_packed(std::uint32_t key) const;
  /// Canonical string form of a location on this machine.
  virtual std::string location_string(const Location& loc) const;
  /// Uniformly sample a concrete location of `kind` on midplane `mid`
  /// (used by fault injection). Draws the same RNG sequence on every
  /// machine: one uniform per free slot, card before sub-slot.
  virtual Location location_on_midplane(LocationKind kind, MidplaneId mid, Rng& rng) const;
  /// The midplane-kind Location for a flat midplane id on this machine.
  Location midplane_location(MidplaneId mid) const;

  // --- partition algebra ------------------------------------------------
  /// Legal partition sizes in midplanes, ascending.
  virtual const std::vector<int>& legal_partition_sizes() const = 0;
  /// True if [first, first+count) is a legal aligned partition here.
  virtual bool is_legal_partition(MidplaneId first, int count) const = 0;
  /// Parse a job-log partition name ("R04-M0", "R04", "R08-R11").
  virtual Partition parse_partition(std::string_view text) const;
  /// Canonical job-log name of a partition on this machine.
  virtual std::string partition_name(const Partition& part) const;
  /// All legal partitions of a given size, in address order.
  std::vector<Partition> partitions_of_size(int midplane_count) const;

  // --- scheduler placement ---------------------------------------------
  virtual PlacementZones placement_zones() const;

 protected:
  explicit MachineModel(const Topology& topo)
      : topo_(topo), codec_{topo.midplanes_per_rack} {}

  Topology topo_;
  LocCodec codec_;
};

/// The reference machine: the paper's 40-rack Blue Gene/P. Grammar,
/// partition algebra and placement delegate to the original bgp/ routines,
/// so every analysis through this model is byte-identical to the
/// pre-MachineModel code.
const MachineModel& bgp_model();

/// A 48-rack Blue Gene/Q (Mira-scale, per Sîrbu & Babaoglu's BG/Q study):
/// 96 midplanes, J00..J31 compute cards, a 5-D torus, and its own legal
/// partition ladder. Deliberately bigger than BG/P's 80 midplanes so any
/// leftover compile-time sizing assumption trips immediately.
const MachineModel& bgq_model();

/// A machine model declared entirely from data: the generic Blue Gene
/// grammar and placement scaling over an arbitrary Topology, with a
/// power-of-two legal-partition ladder (plus the full machine) aligned to
/// partition size. This is what a fleet tenant registers at connect time
/// when its machine is neither of the built-ins — no subclass required.
class DataModel : public MachineModel {
 public:
  /// `topo.name`/`.description`/`.interconnect` may point at transient
  /// storage (a parsed handshake, a config file): the strings are copied
  /// and the stored Topology re-pointed at the copies.
  explicit DataModel(const Topology& topo);

  const std::vector<int>& legal_partition_sizes() const override;
  bool is_legal_partition(MidplaneId first, int count) const override;

 private:
  std::string name_, description_, interconnect_;
  std::vector<int> sizes_;
};

/// Look up a model by name ("bgp", "bgq", or anything registered at
/// runtime); nullptr when unknown.
const MachineModel* find_model(std::string_view name);

/// All known models: the built-ins (bgp first), then runtime registrations
/// in registration order.
std::vector<const MachineModel*> all_models();

/// Register `model` under model.name() so find_model() resolves it — the
/// hook that lets a fleet tenant's machine arrive at connect time instead
/// of compile time. The caller keeps ownership and must keep the model
/// alive until it is unregistered (or process exit). Returns false without
/// registering when the name is already taken (built-in or registered).
/// Thread-safe, as is lookup.
bool register_model(const MachineModel& model);

/// Remove a runtime registration by name. Returns false when no such
/// runtime model exists; built-ins cannot be unregistered.
bool unregister_model(std::string_view name);

}  // namespace coral::machine
