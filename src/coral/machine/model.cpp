#include "coral/machine/model.hpp"

#include <array>
#include <cstdio>
#include <mutex>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral::machine {

// ---------------------------------------------------------------------------
// Generic location grammar, parameterized by Topology. The string shapes are
// the Blue Gene family's ("R04-M0-N08-J12"); the machine decides the index
// ranges. BgpModel overrides these with the original bgp/ routines so the
// reference machine keeps its exact diagnostics.

namespace {

int parse_num_after(std::string_view part, char prefix, std::string_view whole) {
  if (part.size() < 2 || part[0] != prefix) {
    throw ParseError("bad location segment '" + std::string(part) + "' in '" +
                     std::string(whole) + "'");
  }
  for (std::size_t i = 1; i < part.size(); ++i) {
    if (part[i] < '0' || part[i] > '9') {
      throw ParseError("bad location segment '" + std::string(part) + "' in '" +
                       std::string(whole) + "'");
    }
  }
  return static_cast<int>(parse_int(part.substr(1)));
}

}  // namespace

Location MachineModel::parse_location(std::string_view text) const {
  std::array<std::string_view, 6> parts;
  std::size_t nparts = 0;
  std::size_t seg_begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '-') {
      if (nparts == parts.size()) throw ParseError("too many segments: '" + std::string(text) + "'");
      parts[nparts++] = text.substr(seg_begin, i - seg_begin);
      seg_begin = i + 1;
    }
  }
  if (parts[0].empty()) throw ParseError("empty location");

  const int rk = parse_num_after(parts[0], 'R', text);
  if (rk < 0 || rk >= topo_.racks) {
    throw ParseError("rack out of range: '" + std::string(text) + "'");
  }
  if (nparts == 1) return Location::make(LocationKind::Rack, rk, -1, -1, -1);

  const std::string_view p1 = parts[1];
  if (p1 == "S") {
    throw ParseError("service card requires a midplane: '" + std::string(text) + "'");
  }
  const int mp = parse_num_after(p1, 'M', text);
  if (mp < 0 || mp >= topo_.midplanes_per_rack) {
    throw ParseError("midplane out of range: '" + std::string(text) + "'");
  }
  if (nparts == 2) return Location::make(LocationKind::Midplane, rk, mp, -1, -1);

  const std::string_view p2 = parts[2];
  if (p2 == "S") {
    if (nparts != 3) {
      throw ParseError("trailing segments after service card: '" + std::string(text) + "'");
    }
    return Location::make(LocationKind::ServiceCard, rk, mp, -1, -1);
  }
  if (!p2.empty() && p2[0] == 'L') {
    if (nparts != 3) {
      throw ParseError("trailing segments after link card: '" + std::string(text) + "'");
    }
    const int slot = parse_num_after(p2, 'L', text);
    if (slot < 0 || slot >= topo_.link_cards_per_midplane) {
      throw ParseError("link card out of range: '" + std::string(text) + "'");
    }
    return Location::make(LocationKind::LinkCard, rk, mp, slot, -1);
  }
  const int card = parse_num_after(p2, 'N', text);
  if (card < 0 || card >= topo_.node_cards_per_midplane) {
    throw ParseError("node card out of range: '" + std::string(text) + "'");
  }
  if (nparts == 3) return Location::make(LocationKind::NodeCard, rk, mp, card, -1);

  const std::string_view p3 = parts[3];
  if (nparts != 4) throw ParseError("too many segments: '" + std::string(text) + "'");
  if (!p3.empty() && p3[0] == 'I') {
    const int slot = parse_num_after(p3, 'I', text);
    if (slot < 0 || slot >= topo_.io_nodes_per_node_card) {
      throw ParseError("I/O node out of range: '" + std::string(text) + "'");
    }
    return Location::make(LocationKind::IoNode, rk, mp, card, slot);
  }
  const int jslot = parse_num_after(p3, 'J', text);
  if (jslot < topo_.jslot_base || jslot >= topo_.jslot_base + topo_.compute_cards_per_node_card) {
    throw ParseError("compute card out of range: '" + std::string(text) + "'");
  }
  return Location::make(LocationKind::ComputeCard, rk, mp, card, jslot);
}

Location MachineModel::location_from_packed(std::uint32_t key) const {
  const auto kind_raw = (key >> 24) & 0xFF;
  if (kind_raw > static_cast<std::uint32_t>(LocationKind::IoNode)) {
    throw ParseError("bad location kind in packed key");
  }
  const auto kind = static_cast<LocationKind>(kind_raw);
  const int rack = static_cast<int>((key >> 16) & 0xFF);
  const int mp = static_cast<int>((key >> 12) & 0xF) == 0xF ? -1 : static_cast<int>((key >> 12) & 0xF);
  const int card = static_cast<int>((key >> 6) & 0x3F) == 0x3F ? -1 : static_cast<int>((key >> 6) & 0x3F);
  const int sub = static_cast<int>(key & 0x3F) == 0x3F ? -1 : static_cast<int>(key & 0x3F);

  const auto check = [&](bool ok, const char* what) {
    if (!ok) throw ParseError(std::string(what) + " out of range in packed key");
  };
  check(rack >= 0 && rack < topo_.racks, "rack");
  if (kind != LocationKind::Rack) {
    check(mp >= 0 && mp < topo_.midplanes_per_rack, "midplane");
  }
  switch (kind) {
    case LocationKind::NodeCard:
      check(card >= 0 && card < topo_.node_cards_per_midplane, "node card");
      break;
    case LocationKind::ComputeCard:
      check(card >= 0 && card < topo_.node_cards_per_midplane, "node card");
      check(sub >= topo_.jslot_base && sub < topo_.jslot_base + topo_.compute_cards_per_node_card,
            "compute card");
      break;
    case LocationKind::LinkCard:
      check(card >= 0 && card < topo_.link_cards_per_midplane, "link card");
      break;
    case LocationKind::IoNode:
      check(card >= 0 && card < topo_.node_cards_per_midplane, "node card");
      check(sub >= 0 && sub < topo_.io_nodes_per_node_card, "I/O node");
      break;
    default:
      break;
  }
  return Location::make(kind, rack, kind == LocationKind::Rack ? -1 : mp, card, sub);
}

std::string MachineModel::location_string(const Location& loc) const { return loc.to_string(); }

Location MachineModel::location_on_midplane(LocationKind kind, MidplaneId mid, Rng& rng) const {
  const int rack = mid / topo_.midplanes_per_rack;
  const int mp = mid % topo_.midplanes_per_rack;
  switch (kind) {
    case LocationKind::Rack:
      return Location::make(LocationKind::Rack, rack, -1, -1, -1);
    case LocationKind::Midplane:
      return Location::make(LocationKind::Midplane, rack, mp, -1, -1);
    case LocationKind::NodeCard:
      return Location::make(
          LocationKind::NodeCard, rack, mp,
          static_cast<int>(rng.uniform_index(static_cast<std::size_t>(topo_.node_cards_per_midplane))), -1);
    case LocationKind::ComputeCard:
      return Location::make(
          LocationKind::ComputeCard, rack, mp,
          static_cast<int>(rng.uniform_index(static_cast<std::size_t>(topo_.node_cards_per_midplane))),
          topo_.jslot_base +
              static_cast<int>(rng.uniform_index(static_cast<std::size_t>(topo_.compute_cards_per_node_card))));
    case LocationKind::ServiceCard:
      return Location::make(LocationKind::ServiceCard, rack, mp, -1, -1);
    case LocationKind::LinkCard:
      return Location::make(
          LocationKind::LinkCard, rack, mp,
          static_cast<int>(rng.uniform_index(static_cast<std::size_t>(topo_.link_cards_per_midplane))), -1);
    case LocationKind::IoNode:
      return Location::make(
          LocationKind::IoNode, rack, mp,
          static_cast<int>(rng.uniform_index(static_cast<std::size_t>(topo_.node_cards_per_midplane))),
          static_cast<int>(rng.uniform_index(static_cast<std::size_t>(topo_.io_nodes_per_node_card))));
  }
  return Location::make(LocationKind::Midplane, rack, mp, -1, -1);
}

Location MachineModel::midplane_location(MidplaneId mid) const {
  return Location::make(LocationKind::Midplane, mid / topo_.midplanes_per_rack,
                        mid % topo_.midplanes_per_rack, -1, -1);
}

// ---------------------------------------------------------------------------
// Generic partition algebra.

Partition MachineModel::parse_partition(std::string_view text) const {
  const int mpr = topo_.midplanes_per_rack;
  const std::size_t dash = text.find('-');
  const std::string_view head = text.substr(0, dash);
  const std::string_view tail =
      dash == std::string_view::npos ? std::string_view{} : text.substr(dash + 1);
  const auto checked = [&](MidplaneId first, int count) {
    if (!is_legal_partition(first, count)) {
      throw ParseError("illegal partition '" + std::string(text) + "': illegal partition: first midplane " +
                       std::to_string(first) + ", size " + std::to_string(count));
    }
    return Partition::unchecked(first, count);
  };
  if (dash == std::string_view::npos) {
    const Location loc = parse_location(text);
    if (loc.kind() != LocationKind::Rack) {
      throw ParseError("not a partition: '" + std::string(text) + "'");
    }
    return checked(static_cast<MidplaneId>(loc.rack_index() * mpr), mpr);
  }
  if (!tail.empty() && tail[0] == 'M' && tail.find('-') == std::string_view::npos) {
    const Location loc = parse_location(text);
    return checked(codec_.midplane_of(loc.packed()), 1);
  }
  if (!tail.empty() && tail[0] == 'R' && tail.find('-') == std::string_view::npos) {
    const Location a = parse_location(head);
    const Location b = parse_location(tail);
    if (a.kind() != LocationKind::Rack || b.kind() != LocationKind::Rack ||
        b.rack_index() < a.rack_index()) {
      throw ParseError("bad rack range: '" + std::string(text) + "'");
    }
    const int racks = b.rack_index() - a.rack_index() + 1;
    return checked(static_cast<MidplaneId>(a.rack_index() * mpr), racks * mpr);
  }
  throw ParseError("unrecognized partition: '" + std::string(text) + "'");
}

std::string MachineModel::partition_name(const Partition& part) const {
  const int mpr = topo_.midplanes_per_rack;
  char buf[32];
  if (part.midplane_count() == 1) {
    std::snprintf(buf, sizeof buf, "R%02d-M%d", part.first_midplane() / mpr,
                  part.first_midplane() % mpr);
  } else if (part.midplane_count() == mpr) {
    std::snprintf(buf, sizeof buf, "R%02d", part.first_midplane() / mpr);
  } else {
    std::snprintf(buf, sizeof buf, "R%02d-R%02d", part.first_midplane() / mpr,
                  (part.end_midplane() - 1) / mpr);
  }
  return buf;
}

std::vector<Partition> MachineModel::partitions_of_size(int midplane_count) const {
  std::vector<Partition> out;
  for (MidplaneId first = 0; first + midplane_count <= this->midplane_count(); ++first) {
    if (is_legal_partition(first, midplane_count)) {
      out.push_back(Partition::unchecked(first, midplane_count));
    }
  }
  return out;
}

PlacementZones MachineModel::placement_zones() const {
  // The BG/P proportions (§VI-B) scaled to this machine: a 2-midplane debug
  // head, the top fifth for long narrow jobs, a two-fifths reservation band
  // for wide jobs, and the remainder for small multi-midplane jobs. At
  // N = 80 this reproduces Intrepid's zones exactly (0-1 / 64-79 / 2-31 /
  // 32-63, wide >= 32).
  const int n = midplane_count();
  const int fifth = n / 5;
  PlacementZones z;
  z.head_first = 0;
  z.head_count = 2;
  z.tail_first = n - fifth;
  z.tail_count = fifth;
  z.wide_first = 2 * fifth;
  z.wide_count = z.tail_first - z.wide_first;
  z.small_first = 2;
  z.small_count = z.wide_first - 2;
  z.wide_threshold = z.wide_first;
  return z;
}

// ---------------------------------------------------------------------------
// Data-declared models.

DataModel::DataModel(const Topology& topo)
    : MachineModel(topo),
      name_(topo.name),
      description_(topo.description),
      interconnect_(topo.interconnect) {
  // The Topology passed in may point at transient strings; re-point the
  // stored copy at storage that lives as long as the model.
  topo_.name = name_.c_str();
  topo_.description = description_.c_str();
  topo_.interconnect = interconnect_.c_str();
  const int n = midplane_count();
  for (int s = 1; s <= n; s *= 2) sizes_.push_back(s);
  if (sizes_.empty() || sizes_.back() != n) sizes_.push_back(n);
}

const std::vector<int>& DataModel::legal_partition_sizes() const { return sizes_; }

bool DataModel::is_legal_partition(MidplaneId first, int count) const {
  if (first < 0 || count <= 0 || first + count > midplane_count()) return false;
  if (count == midplane_count()) return first == 0;
  // Power-of-two sizes aligned to their own size — the standard torus
  //-partitioning rule both built-ins specialize.
  if ((count & (count - 1)) != 0) return false;
  return first % count == 0;
}

// ---------------------------------------------------------------------------
// Registry. The built-ins are compile-time fixtures; runtime registrations
// (fleet tenants bringing their own machines) live behind a mutex.

namespace {

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<const MachineModel*>& registered_models() {
  static std::vector<const MachineModel*> models;
  return models;
}

const std::vector<const MachineModel*>& builtin_models() {
  static const std::vector<const MachineModel*> models = {&bgp_model(), &bgq_model()};
  return models;
}

}  // namespace

const MachineModel* find_model(std::string_view name) {
  for (const MachineModel* m : builtin_models()) {
    if (m->name() == name) return m;
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const MachineModel* m : registered_models()) {
    if (m->name() == name) return m;
  }
  return nullptr;
}

std::vector<const MachineModel*> all_models() {
  std::vector<const MachineModel*> out = builtin_models();
  std::lock_guard<std::mutex> lock(registry_mutex());
  out.insert(out.end(), registered_models().begin(), registered_models().end());
  return out;
}

bool register_model(const MachineModel& model) {
  for (const MachineModel* m : builtin_models()) {
    if (m->name() == model.name()) return false;
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const MachineModel* m : registered_models()) {
    if (m->name() == model.name()) return false;
  }
  registered_models().push_back(&model);
  return true;
}

bool unregister_model(std::string_view name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& models = registered_models();
  for (auto it = models.begin(); it != models.end(); ++it) {
    if ((*it)->name() == name) {
      models.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace coral::machine
