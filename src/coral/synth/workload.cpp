#include "coral/synth/workload.hpp"

#include <algorithm>
#include <cmath>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral::synth {

namespace {

using ras::Catalog;
using ras::ErrcodeId;
using ras::FaultNature;

// Log-uniform runtime within a Table VI bucket. The open-ended >=6400 s
// bucket is dominated by few-hour runs with a thin tail out to the paper's
// 113.5 h maximum; sampling it log-uniformly to the max would overload the
// machine (the paper's Intrepid ran at moderate utilization).
Usec sample_bucket_runtime(int bucket, Rng& rng) {
  double lo = kRuntimeEdges[static_cast<std::size_t>(bucket)];
  double hi = kRuntimeEdges[static_cast<std::size_t>(bucket) + 1];
  if (bucket == 3) {
    if (rng.bernoulli(0.97)) {
      hi = 18000;
    } else {
      lo = 18000;
    }
  }
  const double sec = std::exp(rng.uniform(std::log(lo), std::log(hi)));
  return static_cast<Usec>(sec * kUsecPerSec);
}

std::vector<ErrcodeId> application_error_codes(const Catalog& catalog) {
  std::vector<ErrcodeId> out;
  for (ErrcodeId id : catalog.fatal_ids()) {
    if (catalog.info(id).nature == FaultNature::ApplicationError) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace

Workload generate_workload(const WorkloadConfig& config, TimePoint start, int days,
                           Rng& rng, const Catalog& catalog) {
  CORAL_EXPECTS(days > 0);
  CORAL_EXPECTS(config.distinct_apps > 0);
  CORAL_EXPECTS(config.job_sizes.size() == config.size_weights.size());
  CORAL_EXPECTS(config.job_sizes.size() == config.runtime_weights.size());
  Workload w;
  w.apps.reserve(config.distinct_apps);

  const auto app_codes = application_error_codes(catalog);
  std::vector<double> bug_weights;
  for (ErrcodeId id : app_codes) bug_weights.push_back(catalog.info(id).weight);
  const DiscreteSampler bug_sampler(bug_weights);
  const DiscreteSampler size_sampler(config.size_weights);

  // Build the app table.
  for (std::size_t i = 0; i < config.distinct_apps; ++i) {
    App app;
    app.user = static_cast<int>(rng.zipf(static_cast<std::size_t>(config.users), 0.9));
    app.project = app.user % config.projects;
    app.exec_file = strformat("/gpfs/home/u%03d/app_%05zu", app.user, i);
    const auto size_idx = size_sampler.sample(rng);
    app.size_midplanes = config.job_sizes[size_idx];
    const auto bucket = static_cast<int>(rng.categorical(config.runtime_weights[size_idx]));
    app.base_runtime = sample_bucket_runtime(bucket, rng);
    if (!app_codes.empty() && app.size_midplanes < config.buggy_max_size &&
        rng.bernoulli(config.buggy_app_prob)) {
      app.buggy = true;
      app.bug_code = app_codes[bug_sampler.sample(rng)];
      app.bug_difficulty =
          rng.uniform(config.bug_difficulty_min, config.bug_difficulty_max);
    }
    w.apps.push_back(std::move(app));
  }

  // Submission counts per app: 1, or 1 + lognormal tail for multi-run apps,
  // scaled so the expected total hits target_submissions.
  std::vector<int> counts(config.distinct_apps, 1);
  double expected = 0;
  for (std::size_t i = 0; i < config.distinct_apps; ++i) {
    if (rng.bernoulli(config.multi_submit_prob)) {
      const double mu = std::log(config.extra_submits_mean) -
                        config.extra_submits_sigma * config.extra_submits_sigma / 2.0;
      const double extra = rng.lognormal(mu, config.extra_submits_sigma);
      counts[i] = 2 + static_cast<int>(extra);
    }
    expected += counts[i];
  }
  // Proportional trim/inflate toward the target (keeps every app >= 1 run;
  // multi-run apps stay multi-run).
  const double scale = static_cast<double>(config.target_submissions) / expected;
  for (int& c : counts) {
    if (c > 1) {
      c = std::max(2, static_cast<int>(std::lround(c * scale)));
    }
  }

  // Campaigns: each app's submissions cluster in time.
  const TimePoint end = start + static_cast<Usec>(days) * kUsecPerDay;
  for (std::size_t i = 0; i < config.distinct_apps; ++i) {
    const Usec horizon = end - start;
    TimePoint t = start + static_cast<Usec>(rng.uniform() * static_cast<double>(horizon));
    for (int k = 0; k < counts[i]; ++k) {
      if (t >= end) break;
      w.schedule.push_back({t, static_cast<std::int32_t>(i)});
      t = t + static_cast<Usec>(rng.exponential(config.campaign_spacing_hours) *
                                static_cast<double>(kUsecPerHour));
    }
  }
  std::sort(w.schedule.begin(), w.schedule.end(),
            [](const Submission& a, const Submission& b) { return a.arrival < b.arrival; });
  return w;
}

Usec sample_runtime(const App& app, Rng& rng) {
  const double jitter = rng.uniform(0.75, 1.35);
  const auto rt = static_cast<Usec>(static_cast<double>(app.base_runtime) * jitter);
  return std::max<Usec>(rt, 10 * kUsecPerSec);
}

Usec sample_bug_manifest(const WorkloadConfig& config, Rng& rng) {
  const double sigma = config.bug_manifest_sigma;
  const double mu = std::log(config.bug_manifest_mean_minutes) - sigma * sigma / 2.0;
  return static_cast<Usec>(rng.lognormal(mu, sigma) * static_cast<double>(kUsecPerMin));
}

}  // namespace coral::synth
