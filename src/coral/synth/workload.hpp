#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "coral/common/rng.hpp"
#include "coral/common/time.hpp"
#include "coral/ras/catalog.hpp"

namespace coral::synth {

/// Workload-generation knobs, calibrated against §III-B and Table VI.
struct WorkloadConfig {
  std::size_t target_submissions = 66500;  ///< initial submissions (resubmits add more)
  std::size_t distinct_apps = 9664;        ///< distinct execution files
  int users = 236;
  int projects = 91;

  /// Probability that an app is submitted more than once (paper: 5547/9664).
  double multi_submit_prob = 0.574;
  /// Lognormal sigma and mean of the extra submissions for multi-run apps.
  double extra_submits_mean = 9.2;
  double extra_submits_sigma = 1.1;

  /// Job sizes (midplanes) this workload draws from. Must be legal partition
  /// sizes on the scenario's machine; defaults are the Intrepid sizes.
  std::vector<int> job_sizes = {1, 2, 4, 8, 16, 32, 48, 64, 80};

  /// Job-size weights aligned with `job_sizes` (Table VI row sums).
  std::vector<double> size_weights = {46413, 11911, 4822, 2618, 1854, 656, 28, 341, 73};

  /// Runtime-bucket weights per size over {10–400, 400–1600, 1600–6400,
  /// >=6400} seconds (Table VI cells, successful-job denominators), aligned
  /// with `job_sizes`.
  std::vector<std::array<double, 4>> runtime_weights = {
      {12282, 7300, 17339, 9492},  // 1 midplane
      {1146, 2601, 6052, 2112},    // 2
      {881, 901, 1026, 2014},      // 4
      {611, 563, 636, 748},        // 8
      {288, 685, 466, 415},        // 16
      {20, 362, 195, 79},          // 32
      {3, 1, 1, 1},                // 48 (only 4 jobs in the paper)
      {12, 147, 143, 39},          // 64
      {11, 33, 27, 2},             // 80
  };

  /// Mean spacing between submissions within one app's campaign (hours).
  double campaign_spacing_hours = 20.0;

  /// Fraction of apps that carry a bug (application error, §IV-B). Applied
  /// only to apps of < `buggy_max_size` midplanes; users request big long
  /// runs only for well-debugged codes (§VI-D).
  double buggy_app_prob = 0.0052;
  int buggy_max_size = 48;  ///< strictly below this size may be buggy
  /// Bug difficulty range: P(still broken after a failed run) ~ difficulty.
  double bug_difficulty_min = 0.40;
  double bug_difficulty_max = 0.90;
  /// Bug manifestation time: lognormal minutes (mostly < 1 h, Obs. 11).
  double bug_manifest_mean_minutes = 14.0;
  double bug_manifest_sigma = 1.0;
};

/// A distinct application (execution file).
struct App {
  std::string exec_file;
  int user = 0;
  int project = 0;
  int size_midplanes = 1;
  Usec base_runtime = 0;
  // Bug model (ground truth; never read by the analysis side).
  bool buggy = false;
  ras::ErrcodeId bug_code = 0;
  double bug_difficulty = 0;
};

/// One planned job submission.
struct Submission {
  TimePoint arrival;
  std::int32_t app = 0;
};

/// The generated workload: the app table plus the time-ordered submission
/// schedule.
struct Workload {
  std::vector<App> apps;
  std::vector<Submission> schedule;  ///< sorted by arrival
};

/// Generate a workload over [start, start + days). Deterministic in `rng`.
/// Buggy apps draw their bug codes from `catalog`'s application-error codes
/// (a catalog without any simply yields a bug-free workload).
Workload generate_workload(const WorkloadConfig& config, TimePoint start, int days,
                           Rng& rng, const ras::Catalog& catalog = ras::default_catalog());

/// Sample an actual runtime for one run of `app` (per-run jitter).
Usec sample_runtime(const App& app, Rng& rng);

/// Sample a bug-manifestation delay for one run of a buggy app.
Usec sample_bug_manifest(const WorkloadConfig& config, Rng& rng);

/// The default (Intrepid) job-size ladder, aligned with the default
/// WorkloadConfig::size_weights. Kept for existing callers; configurable
/// workloads read WorkloadConfig::job_sizes instead.
inline constexpr std::array<int, 9> kJobSizes = {1, 2, 4, 8, 16, 32, 48, 64, 80};

/// Runtime-bucket edges in seconds, aligned with runtime_weights
/// ({10–400, 400–1600, 1600–6400, >=6400}; the last bucket tops out at the
/// paper's max observed runtime, 113.5 h).
inline constexpr std::array<double, 5> kRuntimeEdges = {10, 400, 1600, 6400, 113.5 * 3600};

}  // namespace coral::synth
