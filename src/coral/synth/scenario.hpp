#pragma once

#include <cstdint>
#include <vector>

#include "coral/context.hpp"
#include "coral/fault/process.hpp"
#include "coral/fault/storm.hpp"
#include "coral/joblog/log.hpp"
#include "coral/ras/log.hpp"
#include "coral/sched/policy.hpp"
#include "coral/synth/workload.hpp"

namespace coral::synth {

/// Non-fatal background record generation.
struct NoiseConfig {
  bool enabled = true;
  /// Background (activity-independent) non-fatal records per day.
  double background_per_day = 4500.0;
  /// Reboot-before-execution INFO records per midplane per job start.
  int boot_records_per_midplane = 5;
};

/// Periodic maintenance windows: while a window is open the scheduler stops
/// starting jobs (a drain — running jobs finish, faults still fire on the
/// increasingly idle machine). Models the maintenance-heavy stretches the
/// paper's Fig. 5 shows as quiet days. Disabled (the default) leaves the
/// simulation — including every RNG stream — untouched.
struct MaintenanceConfig {
  bool enabled = false;
  /// Start of the first window (typically scenario start + a few days).
  TimePoint first;
  Usec period = 7 * kUsecPerDay;
  Usec duration = 8 * kUsecPerHour;
};

/// User resubmission behaviour after an interruption.
struct ResubmitConfig {
  double prob_after_system = 0.85;
  double prob_after_app = 0.92;
  double delay_mean_hours_system = 0.3;
  double delay_mean_hours_app = 1.0;
  /// Extra concurrently running victim jobs hit by a propagating
  /// application error (Poisson mean; §VI-C).
  double propagate_extra_jobs_mean = 1.2;
  /// After a job is interrupted, the control system holds its partition for
  /// cleanup/reboot before anything else can boot there. This is what lets
  /// a promptly resubmitted job reclaim its old partition (the paper's
  /// 57.44% same-partition placements) on an otherwise backlogged machine.
  Usec failure_hold = 25 * kUsecPerMin;
};

/// Everything needed to generate one synthetic log pair.
struct ScenarioConfig {
  std::uint64_t seed = 42;
  TimePoint start = TimePoint::from_calendar(2009, 1, 5);
  int days = 237;
  /// The machine the scenario runs on. Sizes the scheduler pool, the fault
  /// process's location weights, and every partition/location drawn; the
  /// workload's job_sizes must be legal partition sizes here.
  const machine::MachineModel* machine = &machine::bgp_model();
  WorkloadConfig workload;
  fault::FaultConfig faults;
  fault::StormConfig storm;
  sched::SchedulerConfig sched;
  NoiseConfig noise;
  ResubmitConfig resubmit;
  MaintenanceConfig maintenance;
  /// Optional live placement advisor (non-owning; must outlive generate()).
  /// The simulation feeds it every RAS record as emitted and steers
  /// placements away from midplanes it advises against — the predictive
  /// counterpart of `sched.avoid_failed_window`. Null leaves the simulation
  /// (including every RNG stream) bit-identical to pre-advisor behaviour.
  sched::PlacementAdvisor* advisor = nullptr;

  TimePoint end() const { return start + static_cast<Usec>(days) * kUsecPerDay; }
};

/// One ground-truth fault instance (a real underlying fault, not a record).
struct FaultInstanceTruth {
  std::int32_t id = -1;
  TimePoint time;
  ras::ErrcodeId code = 0;
  bgp::Location location;
  ras::FaultNature nature = ras::FaultNature::SystemFailure;
  bool persistent = false;
  /// For persistent faults: id of the original instance when this entry is
  /// a re-manifestation (job-related redundancy); -1 for originals.
  std::int32_t redundant_of = -1;
};

/// Ground-truth record of one job interruption.
struct InterruptionTruth {
  std::int64_t job_id = 0;
  std::int32_t fault_instance = -1;
  ras::ErrcodeId code = 0;
  TimePoint time;
};

/// Generator-side truth, used only to *score* the analysis pipeline.
struct GroundTruth {
  std::vector<FaultInstanceTruth> faults;
  /// Per-RAS-record fault instance id, aligned with the finalized RasLog
  /// (index = recid - 1); -1 marks background noise records.
  std::vector<std::int32_t> record_tags;
  std::vector<InterruptionTruth> interruptions;
};

/// A generated log pair plus its ground truth.
struct SynthResult {
  ras::RasLog ras;
  joblog::JobLog jobs;
  GroundTruth truth;
};

/// Run the full machine simulation and emit the log pair. Deterministic in
/// `config.seed` folded through `ctx`'s seed policy; the context's catalog
/// is the machine description (the default context generates Intrepid).
SynthResult generate(const ScenarioConfig& config, const Context& ctx = {});

}  // namespace coral::synth
