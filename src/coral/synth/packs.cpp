#include "coral/synth/packs.hpp"

#include <algorithm>
#include <cmath>

#include "coral/common/error.hpp"
#include "coral/synth/intrepid.hpp"

namespace coral::synth {

namespace {

double clamp_prob(double p) { return std::clamp(p, 0.0, 0.99); }

}  // namespace

const std::vector<ScenarioPack>& scenario_packs() {
  static const std::vector<ScenarioPack> packs = {
      {
          .name = "failure_storm",
          .description = "A bad fortnight: fault rates several times the "
                         "calibrated baseline with bigger, cascade-prone storms "
                         "(the paper's Fig. 5 peak days as a regime).",
          .interrupting_rate_mult = 4.0,
          .persistent_rate_mult = 1.5,
          .idle_rate_mult = 2.0,
          .spatial_nodes_mult = 2.0,
          .cascade_prob = 0.55,
      },
      {
          .name = "maintenance_window",
          .description = "Weekly eight-hour drains: the scheduler stops "
                         "starting jobs while hardware keeps faulting, "
                         "reproducing the quiet stretches of Fig. 5.",
          .maintenance = true,
          .maintenance_first_day = 3,
          .maintenance_period_days = 7,
          .maintenance_duration_hours = 8,
      },
      {
          .name = "correlated_cascade",
          .description = "Persistent-fault heavy with aggressive degraded "
                         "windows: one broken component keeps re-hitting jobs "
                         "until repaired (job-related redundancy, §IV-C).",
          .persistent_rate_mult = 3.0,
          .cascade_prob = 0.7,
          .degraded_multiplier = 60.0,
          .mean_days_between_degraded = 4.0,
      },
      {
          .name = "resubmission_burst",
          .description = "Impatient users on a flaky machine: doubled "
                         "interruption rate, near-certain immediate "
                         "resubmission (stresses the Obs. 10 same-partition "
                         "statistic).",
          .interrupting_rate_mult = 2.0,
          .resubmit_prob_mult = 1.15,
          .resubmit_delay_mult = 0.25,
      },
      {
          .name = "multi_year_drift",
          .description = "A two-year run with fault rates growing 50% per "
                         "year as the hardware ages (long-horizon MTBF "
                         "drift); shrink `days` after applying for smoke "
                         "runs.",
          .rate_drift_per_year = 0.5,
          .days = 730,
      },
  };
  return packs;
}

const ScenarioPack* find_pack(std::string_view name) {
  for (const ScenarioPack& p : scenario_packs()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

ScenarioConfig base_scenario(const machine::MachineModel& machine,
                             std::uint64_t seed, int days) {
  ScenarioConfig config = small_scenario(seed, days);
  config.machine = &machine;

  // Fault and noise volume scale with machine size (per-component rates are
  // what the Intrepid calibration actually measured).
  const double scale = static_cast<double>(machine.midplane_count()) /
                       static_cast<double>(machine::bgp_model().midplane_count());
  config.faults.interrupting_rate_per_day *= scale;
  config.faults.persistent_rate_per_day *= scale;
  config.faults.idle_rate_per_day *= scale;
  config.faults.benign_rate_per_day *= scale;
  config.noise.background_per_day *= scale;

  // Remap the Intrepid size ladder onto the machine's legal partition
  // sizes: each legal size inherits the calibration of the nearest Intrepid
  // size, so the overall small/medium/wide mix survives the translation.
  WorkloadConfig& w = config.workload;
  std::vector<int> sizes;
  std::vector<double> weights;
  std::vector<std::array<double, 4>> runtimes;
  for (const int s : machine.legal_partition_sizes()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < w.job_sizes.size(); ++i) {
      if (std::abs(w.job_sizes[i] - s) < std::abs(w.job_sizes[best] - s)) best = i;
    }
    sizes.push_back(s);
    weights.push_back(w.size_weights[best]);
    runtimes.push_back(w.runtime_weights[best]);
  }
  w.job_sizes = std::move(sizes);
  w.size_weights = std::move(weights);
  w.runtime_weights = std::move(runtimes);
  return config;
}

void apply_pack(ScenarioConfig& config, const ScenarioPack& pack) {
  config.faults.interrupting_rate_per_day *= pack.interrupting_rate_mult;
  config.faults.persistent_rate_per_day *= pack.persistent_rate_mult;
  config.faults.idle_rate_per_day *= pack.idle_rate_mult;
  config.faults.benign_rate_per_day *= pack.benign_rate_mult;

  config.storm.spatial_nodes_mean *= pack.spatial_nodes_mult;
  if (pack.cascade_prob >= 0) config.storm.cascade_prob = pack.cascade_prob;

  if (pack.degraded_multiplier >= 0) {
    config.faults.degraded_multiplier = pack.degraded_multiplier;
  }
  if (pack.mean_days_between_degraded >= 0) {
    config.faults.mean_days_between_degraded = pack.mean_days_between_degraded;
  }

  config.resubmit.prob_after_system =
      clamp_prob(config.resubmit.prob_after_system * pack.resubmit_prob_mult);
  config.resubmit.prob_after_app =
      clamp_prob(config.resubmit.prob_after_app * pack.resubmit_prob_mult);
  config.resubmit.delay_mean_hours_system *= pack.resubmit_delay_mult;
  config.resubmit.delay_mean_hours_app *= pack.resubmit_delay_mult;

  if (pack.maintenance) {
    config.maintenance.enabled = true;
    config.maintenance.first =
        config.start + static_cast<Usec>(pack.maintenance_first_day) * kUsecPerDay;
    config.maintenance.period =
        static_cast<Usec>(pack.maintenance_period_days) * kUsecPerDay;
    config.maintenance.duration =
        static_cast<Usec>(pack.maintenance_duration_hours) * kUsecPerHour;
  }

  config.faults.rate_drift_per_year = pack.rate_drift_per_year;
  if (pack.days > 0) config.days = pack.days;
}

ScenarioConfig pack_scenario(const machine::MachineModel& machine,
                             std::string_view pack_name, std::uint64_t seed,
                             int days) {
  const ScenarioPack* pack = find_pack(pack_name);
  if (pack == nullptr) {
    throw InvalidArgument("unknown scenario pack: " + std::string(pack_name));
  }
  ScenarioConfig config = base_scenario(machine, seed, days);
  apply_pack(config, *pack);
  return config;
}

}  // namespace coral::synth
