#include "coral/synth/intrepid.hpp"

namespace coral::synth {

ScenarioConfig intrepid_scenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.start = TimePoint::from_calendar(2009, 1, 5);
  config.days = 237;

  // Workload: §III-B. Defaults in WorkloadConfig already carry the Table VI
  // calibration; restated here so the preset is self-documenting.
  config.workload.target_submissions = 80000;
  config.workload.distinct_apps = 9664;
  config.workload.users = 236;
  config.workload.projects = 91;
  config.workload.multi_submit_prob = 0.574;
  config.workload.buggy_app_prob = 0.0052;

  // Fault rates tuned against the paper's post-filter census:
  // ~549 independent fatal events over 237 days, ~45% on idle hardware,
  // ~21% benign, 308 job interruptions (206 system / 102 application).
  config.faults.interrupting_rate_per_day = 0.36;
  config.faults.persistent_rate_per_day = 0.06;
  config.faults.idle_rate_per_day = 0.46;
  config.faults.benign_rate_per_day = 0.27;
  config.faults.wide_boost_per_hour = 0.55;
  config.faults.degraded_multiplier = 30.0;
  config.faults.mean_days_between_degraded = 9.0;
  config.faults.degraded_mean_hours = 10.0;
  config.faults.repair_mean_hours = 4.0;

  // Storm sizes tuned to land near 33,370 raw FATAL records.
  config.storm.temporal_extra_mean = 8.0;
  config.storm.spatial_nodes_mean = 34.0;
  config.storm.max_records_per_node = 3;
  config.storm.cascade_prob = 0.35;
  config.storm.idle_extra_mean = 13.0;

  // Scheduler: §V-B placement and the 57.44% same-partition resubmission.
  config.sched.resubmit_same_partition_prob = 0.80;

  // Noise tuned to land near the 2,084,392-record raw log total.
  config.noise.enabled = true;
  config.noise.background_per_day = 4350.0;
  config.noise.boot_records_per_midplane = 5;

  return config;
}

ScenarioConfig small_scenario(std::uint64_t seed, int days) {
  ScenarioConfig config = intrepid_scenario(seed);
  config.days = days;
  const double scale = static_cast<double>(days) / 237.0;
  config.workload.target_submissions =
      static_cast<std::size_t>(66500.0 * scale);
  config.workload.distinct_apps = static_cast<std::size_t>(9664.0 * scale);
  config.workload.users = 60;
  config.workload.projects = 24;
  // More faults per day so short runs still see every mechanism.
  config.faults.interrupting_rate_per_day *= 3.0;
  config.faults.persistent_rate_per_day *= 3.0;
  config.faults.idle_rate_per_day *= 3.0;
  config.faults.benign_rate_per_day *= 3.0;
  config.workload.buggy_app_prob *= 3.0;
  // Keep record volume small for fast tests.
  config.noise.background_per_day = 400.0;
  config.noise.boot_records_per_midplane = 1;
  return config;
}

}  // namespace coral::synth
