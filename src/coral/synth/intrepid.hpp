#pragma once

#include "coral/synth/scenario.hpp"

namespace coral::synth {

/// Calibrated full-scale scenario: 237 days of Intrepid (2009-01-05 to
/// 2009-08-31), tuned so the generated log pair reproduces the paper's
/// headline statistics (Table I counts, §IV filter/interruption counts,
/// Table IV/V Weibull regimes, Fig. 4 midplane profile, Table VI grid).
ScenarioConfig intrepid_scenario(std::uint64_t seed = 42);

/// A scaled-down scenario (default 21 days, ~1/10 of the workload) that
/// preserves the full-scale scenario's *structure* while running in well
/// under a second — the workhorse for unit and integration tests.
ScenarioConfig small_scenario(std::uint64_t seed = 7, int days = 21);

}  // namespace coral::synth
