#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"
#include "coral/obs/obs.hpp"
#include "coral/sched/pool.hpp"
#include "coral/synth/scenario.hpp"

namespace coral::synth {

namespace {

using bgp::MidplaneId;
using bgp::Partition;
using fault::Manifestation;
using fault::OccupancyView;
using fault::StormModel;
using fault::SystemFaultProcess;
using fault::TaggedEvent;
using fault::Trigger;
using fault::TriggerClass;
using ras::Catalog;
using ras::ErrcodeId;
using ras::ErrcodeInfo;
using ras::FaultNature;
using ras::JobImpact;

/// A job waiting in the Cobalt queue.
struct QueuedJob {
  std::int64_t job_id = 0;
  std::int32_t app = 0;
  TimePoint queue_time;
  int consec_fails = 0;                     ///< consecutive prior interruptions
  std::optional<Partition> prev_partition;  ///< resubmission affinity
};

/// A job currently running on the machine.
struct ActiveJob {
  bool active = false;
  std::int64_t job_id = 0;
  std::int32_t app = 0;
  TimePoint queue_time;
  TimePoint start;
  TimePoint planned_end;
  Partition part{0, 1};
  std::uint32_t version = 0;  ///< invalidates stale JobEnd events
  int consec_fails = 0;
};

/// An unrepaired persistent system fault.
struct ActivePersistentFault {
  bgp::Location location;
  ErrcodeId code = 0;
  TimePoint until;  ///< repair completion time
  std::int32_t truth_id = -1;
};

enum class EventKind : std::uint8_t {
  JobEnd,       ///< natural completion (versioned)
  Interrupt,    ///< scheduled interruption of a running job (versioned)
  Resubmit,     ///< user resubmits an interrupted app
  FaultTrigger, ///< next system-fault candidate
  DiagRelease,  ///< release a diagnostics hold
};

struct SimEvent {
  TimePoint t;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::JobEnd;
  // JobEnd / Interrupt:
  std::size_t slot = 0;
  std::uint32_t version = 0;
  ErrcodeId code = 0;
  std::int32_t truth_id = -1;
  bool count_new_manifestation = false;  ///< emit a new storm at this time
  // FaultTrigger:
  TriggerClass trigger_class = TriggerClass::Interrupting;
  // Resubmit:
  std::int32_t app = -1;
  int consec_fails = 0;
  std::optional<Partition> prev_partition;
  // DiagRelease:
  std::optional<Partition> hold;
};

struct EventOrder {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.t != b.t) return a.t > b.t;  // min-heap
    return a.seq > b.seq;
  }
};

class Simulation {
 public:
  Simulation(const ScenarioConfig& config, const Context& ctx)
      : config_(config),
        obs_(ctx.obs()),
        catalog_(&ctx.catalog()),
        machine_(config.machine),
        n_midplanes_(machine_->midplane_count()),
        mpr_(machine_->codec().midplanes_per_rack),
        zones_(machine_->placement_zones()),
        master_rng_(ctx.derive_seed(config.seed)),
        sim_rng_(master_rng_.split()),
        storm_rng_(master_rng_.split()),
        noise_rng_(master_rng_.split()),
        process_(config.faults, master_rng_.split(), *catalog_, *machine_),
        storm_(config.storm, *catalog_, *machine_),
        pool_(*machine_),
        job_at_(static_cast<std::size_t>(n_midplanes_), kNoJob),
        wear_hours_(static_cast<std::size_t>(n_midplanes_), 0.0),
        wear_updated_(static_cast<std::size_t>(n_midplanes_)),
        last_fatal_at_(static_cast<std::size_t>(n_midplanes_)),
        job_log_(*machine_) {}

  SynthResult run() {
    {
      obs::Span span(obs_, "synth.workload");
      Rng workload_rng = master_rng_.split();
      workload_ = generate_workload(config_.workload, config_.start, config_.days,
                                    workload_rng, *catalog_);
      span.counts(workload_.apps.size(), workload_.schedule.size());
    }
    bug_alive_.assign(workload_.apps.size(), true);

    // Prime the fault process.
    push_next_fault(config_.start);

    // Maintenance windows gate try_schedule(); a wake-up event at each window
    // close restarts the drained queue (hold-free DiagRelease).
    if (config_.maintenance.enabled && config_.maintenance.period > 0) {
      for (TimePoint w = config_.maintenance.first; w < config_.end();
           w = w + config_.maintenance.period) {
        const TimePoint close = w + config_.maintenance.duration;
        if (close < config_.end()) {
          push(SimEvent{.t = close, .kind = EventKind::DiagRelease});
        }
      }
    }

    obs::Span sim_span(obs_, "synth.simulate");
    std::size_t next_arrival = 0;
    while (true) {
      const bool have_arrival = next_arrival < workload_.schedule.size();
      const bool have_event = !events_.empty();
      if (!have_arrival && !have_event) break;
      const TimePoint ta =
          have_arrival ? workload_.schedule[next_arrival].arrival : TimePoint::from_calendar(9999, 1, 1);
      if (have_event && events_.top().t <= ta) {
        const SimEvent ev = events_.top();
        events_.pop();
        handle(ev);
      } else if (have_arrival) {
        const Submission& sub = workload_.schedule[next_arrival++];
        enqueue_job(sub.app, sub.arrival, 0, std::nullopt);
        try_schedule(sub.arrival);
      }
    }

    finalize_running_jobs();
    if (config_.noise.enabled) emit_noise();
    sim_span.counts(workload_.schedule.size(), records_.size());
    sim_span.end();

    obs::Span span(obs_, "synth.assemble");
    SynthResult result = assemble();
    span.counts(records_.size(), result.ras.size());
    return result;
  }

 private:
  static constexpr std::int32_t kNoJob = -1;

  // ---- queue & placement -------------------------------------------------

  void enqueue_job(std::int32_t app, TimePoint t, int consec_fails,
                   std::optional<Partition> prev, bool priority = false) {
    QueuedJob q;
    q.job_id = next_job_id_++;
    q.app = app;
    q.queue_time = t;
    q.consec_fails = consec_fails;
    q.prev_partition = prev;
    // Resubmissions of interrupted jobs are requeued ahead of the backlog
    // (Cobalt restores the original queue position on a failed run).
    if (priority) {
      queue_.push_front(std::move(q));
    } else {
      queue_.push_back(std::move(q));
    }
  }

  bool in_maintenance(TimePoint t) const {
    const MaintenanceConfig& mw = config_.maintenance;
    if (!mw.enabled || mw.period <= 0 || t < mw.first) return false;
    return (t - mw.first) % mw.period < mw.duration;
  }

  void try_schedule(TimePoint now) {
    if (now >= config_.end()) return;
    if (in_maintenance(now)) return;  // drain: nothing new starts
    sched::PartitionPool view = pool_;  // overlay with head-of-queue reservation
    bool reserved = false;
    // Cobalt-like bounded backfill: look at most this deep into the queue.
    int depth = 0;
    for (auto it = queue_.begin(); it != queue_.end() && depth < 256 &&
                                   view.busy_count() < static_cast<std::size_t>(n_midplanes_);
         ++depth) {
      const App& app = workload_.apps[static_cast<std::size_t>(it->app)];
      const Usec runtime_hint = app.base_runtime;
      // A fresh resubmission waits briefly for its previous partition
      // (held for post-failure cleanup) instead of scattering elsewhere.
      if (it->prev_partition &&
          now - it->queue_time < config_.sched.resubmit_affinity_window &&
          !fault_aware_view(view, now).is_free(*it->prev_partition)) {
        ++it;
        continue;
      }
      auto part = sched::choose_partition(config_.sched, fault_aware_view(view, now),
                                          app.size_midplanes, runtime_hint,
                                          it->prev_partition, sim_rng_);
      if (!part) {
        // Fall back to ignoring the blacklist rather than idling the queue —
        // but never via the resubmission-affinity shortcut: a fault-aware
        // scheduler deliberately refuses to re-place a job on failed nodes.
        part = sched::choose_partition(config_.sched, view, app.size_midplanes,
                                       runtime_hint,
                                       config_.sched.avoid_failed_window > 0 ||
                                               config_.advisor != nullptr
                                           ? std::nullopt
                                           : it->prev_partition,
                                       sim_rng_);
      }
      if (part) {
        view.acquire(*part);
        start_job(*it, *part, now);
        it = queue_.erase(it);
      } else {
        if (!reserved) {
          // Reserve the policy-preferred partition for the blocked head so
          // later (smaller) jobs cannot starve it forever.
          reserved = true;
          auto cands = machine_->partitions_of_size(app.size_midplanes);
          std::stable_sort(cands.begin(), cands.end(),
                           [&](const Partition& a, const Partition& b) {
                             return sched::placement_rank(config_.sched, zones_, a, runtime_hint) <
                                    sched::placement_rank(config_.sched, zones_, b, runtime_hint);
                           });
          view.force_acquire(cands.front());
        }
        ++it;
      }
    }
  }

  void start_job(const QueuedJob& q, const Partition& part, TimePoint now) {
    CORAL_OBS_COUNT(obs_, "sched.jobs_started", 1);
    if (q.prev_partition) {
      // Mirrors the paper's Obs. 10 statistic: where do resubmissions land?
      CORAL_OBS_COUNT(obs_, part == *q.prev_partition ? "sched.resubmit_same_partition"
                                                      : "sched.resubmit_other_partition",
                      1);
    }
    pool_.acquire(part);
    const std::size_t slot = alloc_slot();
    ActiveJob& j = slots_[slot];
    const App& app = workload_.apps[static_cast<std::size_t>(q.app)];
    j.active = true;
    j.job_id = q.job_id;
    j.app = q.app;
    j.queue_time = q.queue_time;
    j.start = now;
    j.planned_end = now + sample_runtime(app, sim_rng_);
    j.part = part;
    j.version += 1;
    j.consec_fails = q.consec_fails;
    for (MidplaneId m : part.midplanes()) job_at_[static_cast<std::size_t>(m)] = static_cast<std::int32_t>(slot);

    push(SimEvent{.t = j.planned_end, .kind = EventKind::JobEnd, .slot = slot,
                  .version = j.version});

    // Persistent faults re-hit newly started jobs (job-related redundancy).
    for (const ActivePersistentFault& f : persistent_) {
      if (f.until <= now) continue;
      if (!part.covers(f.location)) continue;
      const TimePoint hit = now + process_.sample_rehit_delay();
      if (hit >= j.planned_end || hit >= f.until) continue;
      push(SimEvent{.t = hit, .kind = EventKind::Interrupt, .slot = slot,
                    .version = j.version, .code = f.code, .truth_id = f.truth_id,
                    .count_new_manifestation = true});
      break;  // first active fault is enough to kill the job
    }

    // Application bug: manifests early in the run (Obs. 11).
    if (app.buggy && bug_alive_[static_cast<std::size_t>(q.app)]) {
      const TimePoint hit = now + sample_bug_manifest(config_.workload, sim_rng_);
      if (hit < j.planned_end) {
        push(SimEvent{.t = hit, .kind = EventKind::Interrupt, .slot = slot,
                      .version = j.version, .code = app.bug_code, .truth_id = -2,
                      .count_new_manifestation = true});
      }
    }
  }

  std::size_t alloc_slot() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].active) return i;
    }
    slots_.emplace_back();
    return slots_.size() - 1;
  }

  // ---- event handling ----------------------------------------------------

  void push(SimEvent ev) {
    ev.seq = next_seq_++;
    events_.push(std::move(ev));
  }

  void handle(const SimEvent& ev) {
    switch (ev.kind) {
      case EventKind::JobEnd: {
        const ActiveJob& j = slots_[ev.slot];
        if (!j.active || j.version != ev.version) return;  // stale
        end_job(ev.slot, std::min(ev.t, config_.end()), /*interrupted=*/false, 0, -1);
        break;
      }
      case EventKind::Interrupt:
        handle_interrupt(ev);
        break;
      case EventKind::Resubmit:
        if (ev.t < config_.end()) {
          enqueue_job(ev.app, ev.t, ev.consec_fails, ev.prev_partition,
                      /*priority=*/true);
          try_schedule(ev.t);
        }
        break;
      case EventKind::FaultTrigger:
        handle_fault_trigger(Trigger{ev.t, ev.trigger_class, ev.code});
        break;
      case EventKind::DiagRelease:
        if (ev.hold) pool_.release(*ev.hold);
        try_schedule(ev.t);
        break;
    }
  }

  void handle_interrupt(const SimEvent& ev) {
    ActiveJob& j = slots_[ev.slot];
    if (!j.active || j.version != ev.version) return;  // stale (job already gone)
    if (ev.t >= config_.end()) return;

    std::int32_t truth_id = ev.truth_id;
    const ErrcodeInfo& info = catalog_->info(ev.code);

    if (truth_id == -2) {
      // Application bug manifestation: a fresh ground-truth instance.
      const bgp::Location loc =
          machine_->location_on_midplane(info.loc_kind, pick_midplane(j.part), storm_rng_);
      truth_id = add_truth(ev.t, ev.code, loc, FaultNature::ApplicationError, false, -1);
      emit_storm(ev.t, ev.code, loc, j.part, truth_id);

      // Shared-file-system errors hit other running jobs too (§VI-C).
      if (info.propagates) propagate_to_victims(ev, truth_id);

      // The user may fix the bug after seeing the failure.
      if (!sim_rng_.bernoulli(
              workload_.apps[static_cast<std::size_t>(j.app)].bug_difficulty)) {
        bug_alive_[static_cast<std::size_t>(j.app)] = false;
      }
    } else if (ev.count_new_manifestation) {
      // Persistent-fault re-hit: new records, same underlying fault. Copy the
      // original's fields: add_truth appends to truth_.faults, so a reference
      // into it would dangle across the call.
      const bgp::Location orig_loc = truth_.faults[static_cast<std::size_t>(truth_id)].location;
      const FaultNature orig_nature = truth_.faults[static_cast<std::size_t>(truth_id)].nature;
      const std::int32_t rehit_id =
          add_truth(ev.t, ev.code, orig_loc, orig_nature, true, truth_id);
      emit_storm(ev.t, ev.code, orig_loc, j.part, rehit_id);
      truth_id = rehit_id;
    }

    end_job(ev.slot, ev.t, /*interrupted=*/true, ev.code, truth_id);
  }

  void propagate_to_victims(const SimEvent& ev, std::int32_t truth_id) {
    const auto extra = sim_rng_.poisson(config_.resubmit.propagate_extra_jobs_mean);
    if (extra == 0) return;
    std::vector<std::size_t> victims;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (s == ev.slot || !slots_[s].active) continue;
      // Large partitions use dedicated I/O resources; shared-file-system
      // victims are the small jobs (keeps Obs. 11's "no app-error
      // interruption above 32 midplanes" intact).
      if (slots_[s].part.midplane_count() > zones_.wide_threshold) continue;
      victims.push_back(s);
    }
    for (std::uint64_t k = 0; k < extra && !victims.empty(); ++k) {
      const std::size_t pick = sim_rng_.uniform_index(victims.size());
      const std::size_t vslot = victims[pick];
      victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(pick));
      ActiveJob& v = slots_[vslot];
      const ErrcodeInfo& info = catalog_->info(ev.code);
      const TimePoint vt = ev.t + 3 * kUsecPerSec + static_cast<Usec>(k) * kUsecPerSec;
      if (vt >= v.planned_end || vt >= config_.end()) continue;
      const bgp::Location vloc =
          machine_->location_on_midplane(info.loc_kind, pick_midplane(v.part), storm_rng_);
      emit_storm(vt, ev.code, vloc, v.part, truth_id);
      end_job(vslot, vt, /*interrupted=*/true, ev.code, truth_id);
    }
  }

  void handle_fault_trigger(const Trigger& trig) {
    const TimePoint t = trig.time;
    push_next_fault(t);
    if (t >= config_.end()) return;

    // Find the location given current occupancy.
    const OccupancyView view{
        .busy = [this](MidplaneId m) {
          return pool_.midplane_busy(m);
        },
        .wide_exposure_hours = [this, t](MidplaneId m) {
          double hours = wide_exposure(m, t);
          const std::int32_t s = job_at_[static_cast<std::size_t>(m)];
          if (s != kNoJob &&
              slots_[static_cast<std::size_t>(s)].part.midplane_count() >=
                  zones_.wide_threshold) {
            hours += config_.faults.wide_running_bonus_hours;
          }
          return hours;
        },
    };
    const auto loc = process_.choose_location(trig, view);
    if (!loc) return;  // no feasible footprint (e.g. machine fully busy)

    const ErrcodeInfo& info = catalog_->info(trig.code);
    const auto mid = loc->midplane_id();
    const std::int32_t slot_at =
        mid ? job_at_[static_cast<std::size_t>(*mid)]
            : job_at_[static_cast<std::size_t>(loc->rack_index() * mpr_)];

    const std::int32_t truth_id =
        add_truth(t, trig.code, *loc, FaultNature::SystemFailure,
                  trig.cls == TriggerClass::Persistent, -1);

    switch (trig.cls) {
      case TriggerClass::IdleHardware: {
        emit_storm(t, trig.code, *loc, std::nullopt, truth_id);
        // Take the hardware out for diagnostics briefly so no job lands on
        // the faulted midplane mid-storm (rack-level faults hold the rack).
        const Partition hold =
            mid ? Partition::unchecked(*mid, 1)
                : Partition::unchecked(loc->rack_index() * mpr_, mpr_);
        pool_.force_acquire(hold);
        push(SimEvent{.t = t + 15 * kUsecPerMin, .kind = EventKind::DiagRelease,
                      .hold = hold});
        break;
      }
      case TriggerClass::Benign: {
        const std::optional<Partition> part =
            slot_at != kNoJob ? std::optional(slots_[static_cast<std::size_t>(slot_at)].part)
                              : std::nullopt;
        emit_storm(t, trig.code, *loc, part, truth_id);
        break;
      }
      case TriggerClass::Interrupting:
      case TriggerClass::Persistent: {
        if (trig.cls == TriggerClass::Persistent) {
          persistent_.push_back({*loc, trig.code, t + process_.sample_repair_time(),
                                 truth_id});
        }
        if (slot_at != kNoJob) {
          ActiveJob& j = slots_[static_cast<std::size_t>(slot_at)];
          emit_storm(t, trig.code, *loc, j.part, truth_id);
          end_job(static_cast<std::size_t>(slot_at), t, /*interrupted=*/true, trig.code,
                  truth_id);
        } else {
          emit_storm(t, trig.code, *loc, std::nullopt, truth_id);
        }
        break;
      }
    }
    (void)info;
  }

  void push_next_fault(TimePoint after) {
    const auto trig = process_.next(after, config_.end());
    if (!trig) return;
    push(SimEvent{.t = trig->time, .kind = EventKind::FaultTrigger, .code = trig->code,
                  .trigger_class = trig->cls});
  }

  // ---- job completion ----------------------------------------------------

  void end_job(std::size_t slot, TimePoint t, bool interrupted, ErrcodeId code,
               std::int32_t truth_id) {
    ActiveJob& j = slots_[slot];
    CORAL_EXPECTS(j.active);
    j.version += 1;  // invalidate pending events
    pool_.release(j.part);
    for (MidplaneId m : j.part.midplanes()) {
      job_at_[static_cast<std::size_t>(m)] = kNoJob;
      if (j.part.midplane_count() >= zones_.wide_threshold) {
        // Accumulate residual wear: decayed exposure plus this run's hours.
        const auto i = static_cast<std::size_t>(m);
        wear_hours_[i] = wide_exposure(m, t) +
                         static_cast<double>(t - j.start) /
                             static_cast<double>(kUsecPerHour);
        wear_updated_[i] = t;
      }
    }

    if (interrupted && config_.resubmit.failure_hold > 0) {
      // Post-failure cleanup: the control system holds the partition before
      // anything else boots there, so a prompt resubmission can reclaim it.
      pool_.force_acquire(j.part);
      push(SimEvent{.t = t + config_.resubmit.failure_hold,
                    .kind = EventKind::DiagRelease, .hold = j.part});
    }

    write_job_record(j, std::max(t, j.start + 1), interrupted);

    if (interrupted) {
      CORAL_OBS_COUNT(obs_, "synth.interruptions", 1);
      truth_.interruptions.push_back({j.job_id, truth_id, code, t});
      const ErrcodeInfo& info = catalog_->info(code);
      const bool app_error = info.nature == FaultNature::ApplicationError;
      const double prob = app_error ? config_.resubmit.prob_after_app
                                    : config_.resubmit.prob_after_system;
      if (sim_rng_.bernoulli(prob)) {
        const double mean_h = app_error ? config_.resubmit.delay_mean_hours_app
                                        : config_.resubmit.delay_mean_hours_system;
        const TimePoint when =
            t + static_cast<Usec>(sim_rng_.exponential(mean_h) * kUsecPerHour);
        CORAL_OBS_COUNT(obs_, "synth.resubmits", 1);
        push(SimEvent{.t = when, .kind = EventKind::Resubmit, .app = j.app,
                      .consec_fails = j.consec_fails + 1, .prev_partition = j.part});
      }
    }

    j.active = false;
    try_schedule(t);
  }

  void write_job_record(const ActiveJob& j, TimePoint end, bool interrupted) {
    const App& app = workload_.apps[static_cast<std::size_t>(j.app)];
    joblog::JobRecord rec;
    rec.job_id = j.job_id;
    rec.exec_id = job_log_.intern_exec(app.exec_file);
    rec.user_id = job_log_.intern_user(strformat("user%03d", app.user));
    rec.project_id = job_log_.intern_project(strformat("project%02d", app.project));
    rec.queue_time = j.queue_time;
    rec.start_time = j.start;
    rec.end_time = end;
    rec.partition = j.part;
    rec.exit_code = interrupted ? 137 : 0;
    job_log_.append(rec);
  }

  void finalize_running_jobs() {
    for (ActiveJob& j : slots_) {
      if (!j.active) continue;
      write_job_record(j, std::min(j.planned_end, config_.end()), false);
      j.active = false;
    }
    queue_.clear();
  }

  // ---- record emission ---------------------------------------------------

  std::int32_t add_truth(TimePoint t, ErrcodeId code, const bgp::Location& loc,
                         FaultNature nature, bool persistent, std::int32_t redundant_of) {
    FaultInstanceTruth f;
    f.id = static_cast<std::int32_t>(truth_.faults.size());
    f.time = t;
    f.code = code;
    f.location = loc;
    f.nature = nature;
    f.persistent = persistent;
    f.redundant_of = redundant_of;
    truth_.faults.push_back(f);
    return f.id;
  }

  void emit_storm(TimePoint t, ErrcodeId code, const bgp::Location& loc,
                  std::optional<Partition> part, std::int32_t truth_id) {
    Manifestation m;
    m.time = t;
    m.code = code;
    m.location = loc;
    m.job_partition = part;
    m.truth_tag = truth_id;
    const std::size_t before = records_.size();
    storm_.expand(m, storm_rng_, records_);
    CORAL_OBS_COUNT(obs_, "synth.storm_records", records_.size() - before);

    // The placement advisor (if attached) sees the primary record of each
    // manifestation live — the control system knows the originating
    // hardware location (§VII's "failure information" feed). The storm's
    // temporal/spatial echo records are reporting redundancy the paper's
    // filters undo; feeding them here would fan a midplane-scoped alarm
    // across every midplane of the dying job's partition.
    if (config_.advisor != nullptr && records_.size() > before) {
      config_.advisor->on_record(records_[before].event);
    }

    // The fault-aware scheduler (if enabled) observes this FATAL location.
    if (config_.sched.avoid_failed_window > 0) {
      if (const auto mid = loc.midplane_id()) {
        last_fatal_at_[static_cast<std::size_t>(*mid)] = t;
      } else {
        const MidplaneId first = loc.rack_index() * mpr_;
        for (int k = 0; k < mpr_; ++k) {
          last_fatal_at_[static_cast<std::size_t>(first + k)] = t;
        }
      }
    }
  }

  MidplaneId pick_midplane(const Partition& part) {
    return part.first_midplane() +
           static_cast<MidplaneId>(storm_rng_.uniform_index(
               static_cast<std::uint64_t>(part.midplane_count())));
  }

  // ---- noise -------------------------------------------------------------

  void emit_noise() {
    const Catalog& catalog = *catalog_;
    const auto noise_ids = catalog.nonfatal_ids();
    if (noise_ids.empty()) return;  // fatal-only catalog: nothing to emit
    std::vector<double> weights;
    for (ErrcodeId id : noise_ids) weights.push_back(catalog.info(id).weight);
    const DiscreteSampler sampler(weights);

    // Background records, uniformly spread across time and the machine.
    const double days = static_cast<double>(config_.days);
    const auto n_background =
        noise_rng_.poisson(config_.noise.background_per_day * days);
    for (std::uint64_t i = 0; i < n_background; ++i) {
      const ErrcodeId code = noise_ids[sampler.sample(noise_rng_)];
      const ErrcodeInfo& info = catalog.info(code);
      const TimePoint t =
          config_.start +
          static_cast<Usec>(noise_rng_.uniform() *
                            static_cast<double>(config_.end() - config_.start));
      const auto mid = static_cast<MidplaneId>(
          noise_rng_.uniform_index(static_cast<std::uint64_t>(n_midplanes_)));
      TaggedEvent te;
      te.event.errcode = code;
      te.event.severity = info.severity;
      te.event.event_time = t;
      te.event.location = machine_->location_on_midplane(info.loc_kind, mid, noise_rng_);
      te.event.serial = static_cast<std::uint32_t>(noise_rng_.next() & 0xFFFFFF);
      te.truth_tag = -1;
      records_.push_back(te);
    }

    // Reboot-before-execution: boot INFO records per midplane at job start
    // (skipped for catalogs without a boot code).
    const auto boot_code = catalog.find("boot_progress");
    if (!boot_code) return;
    for (const joblog::JobRecord& job : job_log_) {
      for (MidplaneId m : job.partition.midplanes()) {
        for (int r = 0; r < config_.noise.boot_records_per_midplane; ++r) {
          TaggedEvent te;
          te.event.errcode = *boot_code;
          te.event.severity = ras::Severity::Info;
          te.event.event_time =
              job.start_time - 60 * kUsecPerSec +
              static_cast<Usec>(noise_rng_.uniform() * 50.0 * kUsecPerSec);
          te.event.location = machine_->midplane_location(m);
          te.event.serial = static_cast<std::uint32_t>(noise_rng_.next() & 0xFFFFFF);
          te.truth_tag = -1;
          records_.push_back(te);
        }
      }
    }
  }

  // ---- assembly ----------------------------------------------------------

  SynthResult assemble() {
    // Sort records and tags together so record_tags aligns with recids.
    std::vector<std::size_t> order(records_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return records_[a].event.event_time < records_[b].event.event_time;
    });

    std::vector<ras::RasEvent> events;
    events.reserve(records_.size());
    std::vector<std::int32_t> tags;
    tags.reserve(records_.size());
    for (std::size_t i : order) {
      events.push_back(records_[i].event);
      tags.push_back(records_[i].truth_tag);
    }

    SynthResult result;
    result.ras = ras::RasLog(std::move(events), *catalog_,
                             *machine_);  // stable re-sort keeps order
    result.truth = std::move(truth_);
    result.truth.record_tags = std::move(tags);
    job_log_.finalize();
    result.jobs = std::move(job_log_);
    return result;
  }

  // ---- members -----------------------------------------------------------

  ScenarioConfig config_;
  obs::Collector* obs_;
  const Catalog* catalog_;
  const machine::MachineModel* machine_;
  int n_midplanes_;
  int mpr_;  ///< midplanes per rack
  machine::PlacementZones zones_;
  Rng master_rng_;
  Rng sim_rng_;
  Rng storm_rng_;
  Rng noise_rng_;
  SystemFaultProcess process_;
  StormModel storm_;

  Workload workload_;
  std::vector<bool> bug_alive_;

  /// Overlay marking recently-failed and advised-against midplanes busy
  /// (fault-aware placement, §VII; predictive avoidance via the advisor).
  /// Returns `view` unchanged when both policies are disabled.
  sched::PartitionPool fault_aware_view(const sched::PartitionPool& view,
                                        TimePoint now) const {
    const bool reactive = config_.sched.avoid_failed_window > 0;
    if (!reactive && config_.advisor == nullptr) return view;
    sched::PartitionPool out = view;
    for (MidplaneId m = 0; m < n_midplanes_; ++m) {
      if (out.midplane_busy(m)) continue;
      bool bad = false;
      if (reactive) {
        const TimePoint last = last_fatal_at_[static_cast<std::size_t>(m)];
        bad = last.usec() != 0 && now - last <= config_.sched.avoid_failed_window;
      }
      if (!bad && config_.advisor != nullptr) bad = config_.advisor->avoid(m, now);
      if (bad) out.force_acquire(Partition::unchecked(m, 1));
    }
    return out;
  }

  /// Decayed wide-job exposure (hours) per midplane; see FaultConfig.
  double wide_exposure(MidplaneId m, TimePoint t) const {
    const auto i = static_cast<std::size_t>(m);
    if (wear_hours_[i] <= 0) return 0.0;
    const double dt_h =
        static_cast<double>(t - wear_updated_[i]) / static_cast<double>(kUsecPerHour);
    return wear_hours_[i] * std::exp(-dt_h / config_.faults.wide_wear_tau_hours);
  }

  sched::PartitionPool pool_;
  std::vector<std::int32_t> job_at_;
  std::vector<double> wear_hours_;
  std::vector<TimePoint> wear_updated_;
  std::vector<TimePoint> last_fatal_at_;
  std::vector<ActiveJob> slots_;
  std::deque<QueuedJob> queue_;
  std::vector<ActivePersistentFault> persistent_;

  std::priority_queue<SimEvent, std::vector<SimEvent>, EventOrder> events_;
  std::uint64_t next_seq_ = 0;
  std::int64_t next_job_id_ = 1;

  std::vector<TaggedEvent> records_;
  joblog::JobLog job_log_;
  GroundTruth truth_;
};

}  // namespace

SynthResult generate(const ScenarioConfig& config, const Context& ctx) {
  Simulation sim(config, ctx);
  return sim.run();
}

}  // namespace coral::synth
