#pragma once

#include <string_view>
#include <vector>

#include "coral/machine/model.hpp"
#include "coral/synth/scenario.hpp"

namespace coral::synth {

/// A calibrated scenario pack: one named regime, declared as data, applied
/// on top of a machine-sized base scenario. Packs are machine-agnostic —
/// they express *ratios* against the base calibration (or absolute knobs
/// where a ratio makes no sense), so the same pack runs on any
/// machine::MachineModel.
struct ScenarioPack {
  std::string_view name;
  std::string_view description;

  // Fault-rate multipliers on the base per-day rates.
  double interrupting_rate_mult = 1.0;
  double persistent_rate_mult = 1.0;
  double idle_rate_mult = 1.0;
  double benign_rate_mult = 1.0;

  // Storm shape. Negative = keep the base value.
  double spatial_nodes_mult = 1.0;
  double cascade_prob = -1.0;

  // Degraded-mode cadence. Negative = keep the base value.
  double degraded_multiplier = -1.0;
  double mean_days_between_degraded = -1.0;

  // Resubmission behaviour. Probabilities are clamped to [0, 0.99].
  double resubmit_prob_mult = 1.0;
  double resubmit_delay_mult = 1.0;

  // Maintenance windows (drains; see MaintenanceConfig).
  bool maintenance = false;
  int maintenance_first_day = 3;
  int maintenance_period_days = 7;
  int maintenance_duration_hours = 8;

  // Slow change of all fault rates over the run (fraction per year; see
  // FaultConfig::rate_drift_per_year).
  double rate_drift_per_year = 0.0;
  /// Pack-specific horizon in days; negative keeps the base scenario's.
  int days = -1;
};

/// The built-in calibrated packs: failure_storm, maintenance_window,
/// correlated_cascade, resubmission_burst, multi_year_drift.
const std::vector<ScenarioPack>& scenario_packs();

/// Look up a built-in pack by name; nullptr when unknown.
const ScenarioPack* find_pack(std::string_view name);

/// The Intrepid calibration rescaled to `machine`: fault rates and noise
/// volume proportional to midplane count, the workload's size ladder
/// remapped onto the machine's legal partition sizes (each legal size
/// inherits the weight of the nearest Intrepid size).
ScenarioConfig base_scenario(const machine::MachineModel& machine,
                             std::uint64_t seed = 42, int days = 21);

/// Apply `pack` on top of `config` in place.
void apply_pack(ScenarioConfig& config, const ScenarioPack& pack);

/// base_scenario(machine) + the named pack. Throws InvalidArgument for an
/// unknown pack name.
ScenarioConfig pack_scenario(const machine::MachineModel& machine,
                             std::string_view pack_name, std::uint64_t seed = 42,
                             int days = 21);

}  // namespace coral::synth
