#include "coral/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "coral/common/error.hpp"
#include "coral/stats/special.hpp"

namespace coral::stats {

namespace {

constexpr double kTinySample = 1e-9;

// Copy samples, clamping non-positive values to a tiny epsilon so that
// log-based likelihoods stay finite (interarrival data can contain exact
// zeros when two records carry the same timestamp).
std::vector<double> positive_copy(std::span<const double> samples) {
  CORAL_EXPECTS(!samples.empty());
  std::vector<double> xs(samples.begin(), samples.end());
  for (double& x : xs) {
    CORAL_EXPECTS(x >= 0);
    if (x < kTinySample) x = kTinySample;
  }
  return xs;
}

}  // namespace

Exponential::Exponential(double mean) : mean_(mean) { CORAL_EXPECTS(mean > 0); }

double Exponential::pdf(double x) const {
  if (x < 0) return 0;
  return std::exp(-x / mean_) / mean_;
}

double Exponential::log_pdf(double x) const {
  CORAL_EXPECTS(x >= 0);
  return -std::log(mean_) - x / mean_;
}

double Exponential::cdf(double x) const {
  if (x <= 0) return 0;
  return 1.0 - std::exp(-x / mean_);
}

double Exponential::quantile(double p) const {
  CORAL_EXPECTS(p >= 0 && p < 1);
  return -mean_ * std::log1p(-p);
}

Exponential Exponential::fit_mle(std::span<const double> samples) {
  const auto xs = positive_copy(samples);
  double sum = 0;
  for (double x : xs) sum += x;
  return Exponential(sum / static_cast<double>(xs.size()));
}

double Exponential::log_likelihood(std::span<const double> samples) const {
  const auto xs = positive_copy(samples);
  double ll = 0;
  for (double x : xs) ll += log_pdf(x);
  return ll;
}

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  CORAL_EXPECTS(shape > 0 && scale > 0);
}

double Weibull::pdf(double x) const {
  if (x < 0) return 0;
  if (x == 0) return shape_ >= 1 ? (shape_ == 1 ? 1.0 / scale_ : 0.0)
                                 : std::numeric_limits<double>::infinity();
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) * std::exp(-std::pow(z, shape_));
}

double Weibull::log_pdf(double x) const {
  CORAL_EXPECTS(x > 0);
  const double z = x / scale_;
  return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) - std::pow(z, shape_);
}

double Weibull::cdf(double x) const {
  if (x <= 0) return 0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  CORAL_EXPECTS(p >= 0 && p < 1);
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const { return scale_ * gamma_fn(1.0 + 1.0 / shape_); }

double Weibull::variance() const {
  const double g1 = gamma_fn(1.0 + 1.0 / shape_);
  const double g2 = gamma_fn(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::hazard(double x) const {
  CORAL_EXPECTS(x > 0);
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0);
}

Weibull Weibull::fit_mle(std::span<const double> samples) {
  const auto xs = positive_copy(samples);
  const auto n = static_cast<double>(xs.size());
  double sum_log = 0;
  for (double x : xs) sum_log += std::log(x);
  const double mean_log = sum_log / n;

  // Profile-likelihood equation in the shape k:
  //   g(k) = sum(x^k log x)/sum(x^k) - 1/k - mean(log x) = 0,
  // g is increasing in k; bracket then refine with safeguarded Newton.
  const auto g = [&](double k) {
    double swx = 0, sw = 0;
    for (double x : xs) {
      const double w = std::pow(x, k);
      sw += w;
      swx += w * std::log(x);
    }
    return swx / sw - 1.0 / k - mean_log;
  };

  double lo = 1e-3, hi = 1.0;
  while (g(hi) < 0 && hi < 1e3) hi *= 2;
  while (g(lo) > 0 && lo > 1e-6) lo /= 2;

  double k = std::clamp(1.0, lo, hi);
  for (int iter = 0; iter < 200; ++iter) {
    const double gk = g(k);
    if (std::fabs(gk) < 1e-12) break;
    if (gk > 0) {
      hi = k;
    } else {
      lo = k;
    }
    // Numerical Newton step, safeguarded by the bracket.
    const double h = std::max(1e-8, 1e-6 * k);
    const double dg = (g(k + h) - gk) / h;
    double next = dg > 0 ? k - gk / dg : 0;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - k) < 1e-12 * k) {
      k = next;
      break;
    }
    k = next;
  }

  double swk = 0;
  for (double x : xs) swk += std::pow(x, k);
  const double scale = std::pow(swk / n, 1.0 / k);
  return Weibull(k, scale);
}

double Weibull::log_likelihood(std::span<const double> samples) const {
  const auto xs = positive_copy(samples);
  double ll = 0;
  for (double x : xs) ll += log_pdf(x);
  return ll;
}

LrtResult likelihood_ratio_test(std::span<const double> samples, double alpha) {
  LrtResult r;
  const Exponential e = Exponential::fit_mle(samples);
  const Weibull w = Weibull::fit_mle(samples);
  r.ll_exponential = e.log_likelihood(samples);
  r.ll_weibull = w.log_likelihood(samples);
  r.statistic = std::max(0.0, 2.0 * (r.ll_weibull - r.ll_exponential));
  r.p_value = chi2_sf(r.statistic, 1.0);
  r.weibull_preferred = r.p_value < alpha;
  return r;
}

}  // namespace coral::stats
