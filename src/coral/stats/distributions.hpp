#pragma once

#include <algorithm>
#include <span>

namespace coral::stats {

/// Exponential distribution with mean `mean` (rate 1/mean).
class Exponential {
 public:
  explicit Exponential(double mean);

  double mean() const { return mean_; }
  double rate() const { return 1.0 / mean_; }

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double variance() const { return mean_ * mean_; }

  /// Maximum-likelihood fit: the sample mean. Requires non-empty positive
  /// samples.
  static Exponential fit_mle(std::span<const double> samples);

  /// Total log-likelihood of `samples` under this distribution.
  double log_likelihood(std::span<const double> samples) const;

 private:
  double mean_;
};

/// Weibull distribution with shape k and scale λ:
/// F(x) = 1 - exp(-(x/λ)^k). Shape < 1 means decreasing hazard rate — the
/// regime the paper finds for both failures and interruptions.
class Weibull {
 public:
  Weibull(double shape, double scale);

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  /// E[X] = λ Γ(1 + 1/k).
  double mean() const;
  /// Var[X] = λ² [Γ(1+2/k) − Γ(1+1/k)²].
  double variance() const;
  /// Hazard rate h(x) = f(x)/S(x).
  double hazard(double x) const;

  /// Maximum-likelihood fit via Newton iteration on the profile-likelihood
  /// shape equation, with bisection fallback (always converges for positive
  /// samples with nonzero spread). Zero samples are clamped to a tiny
  /// positive value, matching standard practice for log-based MLE.
  static Weibull fit_mle(std::span<const double> samples);

  double log_likelihood(std::span<const double> samples) const;

 private:
  double shape_;
  double scale_;
};

/// Likelihood-ratio test of Weibull (alternative) against its nested
/// exponential special case (null, shape = 1); the statistic is
/// 2(llW − llE) ~ χ²(1) under the null.
struct LrtResult {
  double ll_exponential = 0;
  double ll_weibull = 0;
  double statistic = 0;
  double p_value = 1;
  /// True when the Weibull fit is a significantly better explanation
  /// (p < alpha).
  bool weibull_preferred = false;
};

LrtResult likelihood_ratio_test(std::span<const double> samples, double alpha = 0.05);

/// Kolmogorov–Smirnov distance between the sample ECDF and a fitted CDF.
template <typename Dist>
double ks_distance(std::span<const double> sorted_samples, const Dist& dist) {
  double d = 0;
  const auto n = static_cast<double>(sorted_samples.size());
  for (std::size_t i = 0; i < sorted_samples.size(); ++i) {
    const double f = dist.cdf(sorted_samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, f - lo, hi - f});
  }
  return d;
}

}  // namespace coral::stats
