#include "coral/stats/ecdf.hpp"

#include <algorithm>

#include "coral/common/error.hpp"

namespace coral::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  CORAL_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  CORAL_EXPECTS(q >= 0 && q <= 1);
  if (q >= 1.0) return sorted_.back();
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_.size()));
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::points(std::size_t max_points) const {
  CORAL_EXPECTS(max_points >= 2);
  std::vector<std::pair<double, double>> out;
  const std::size_t n = sorted_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != sorted_.back()) {
    out.emplace_back(sorted_.back(), 1.0);
  }
  return out;
}

}  // namespace coral::stats
