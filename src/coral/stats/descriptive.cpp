#include "coral/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "coral/common/error.hpp"

namespace coral::stats {

double mean(std::span<const double> xs) {
  CORAL_EXPECTS(!xs.empty());
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  CORAL_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  CORAL_EXPECTS(!xs.empty());
  CORAL_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  CORAL_EXPECTS(!xs.empty());
  Summary s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.q25 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q75 = quantile(xs, 0.75);
  return s;
}

}  // namespace coral::stats
