#pragma once

namespace coral::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
/// Series expansion for x < a+1, continued fraction otherwise (Numerical
/// Recipes style; relative error ~1e-12 on the ranges used here).
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Survival function of the chi-squared distribution with k d.o.f.:
/// P(X > x). Used for the likelihood-ratio test p-value.
double chi2_sf(double x, double k);

/// Complete gamma function Γ(x) for x > 0 (via std::lgamma).
double gamma_fn(double x);

}  // namespace coral::stats
