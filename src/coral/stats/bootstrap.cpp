#include "coral/stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "coral/common/error.hpp"
#include "coral/stats/distributions.hpp"

namespace coral::stats {

BootstrapCi bootstrap_ci(std::span<const double> samples,
                         const std::function<double(std::span<const double>)>& statistic,
                         const BootstrapConfig& config) {
  CORAL_EXPECTS(!samples.empty());
  CORAL_EXPECTS(config.resamples >= 10);
  CORAL_EXPECTS(config.confidence > 0 && config.confidence < 1);

  BootstrapCi ci;
  ci.point = statistic(samples);
  ci.resamples = config.resamples;

  Rng rng(config.seed);
  std::vector<double> resample(samples.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(config.resamples));
  for (int r = 0; r < config.resamples; ++r) {
    for (double& x : resample) {
      x = samples[rng.uniform_index(samples.size())];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - config.confidence) / 2.0;
  const auto idx = [&](double q) {
    const auto i = static_cast<std::size_t>(q * static_cast<double>(stats.size() - 1));
    return stats[i];
  };
  ci.lo = idx(alpha);
  ci.hi = idx(1.0 - alpha);
  return ci;
}

BootstrapCi bootstrap_weibull_shape(std::span<const double> samples,
                                    const BootstrapConfig& config) {
  return bootstrap_ci(
      samples,
      [](std::span<const double> xs) { return Weibull::fit_mle(xs).shape(); }, config);
}

}  // namespace coral::stats
