#include "coral/stats/special.hpp"

#include <cmath>
#include <limits>

#include "coral/common/error.hpp"

namespace coral::stats {

namespace {

// glibc's lgamma writes the process-global `signgam`, which is a data race
// when two analyses fit distributions concurrently; lgamma_r keeps the sign
// in a local. All arguments here are positive, so the sign is discarded.
double lgamma_threadsafe(double x) {
#if defined(__unix__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Series representation of P(a,x); converges quickly for x < a+1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

// Continued-fraction representation of Q(a,x); converges for x >= a+1.
double gamma_q_cf(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / 1e-15;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - lgamma_threadsafe(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  CORAL_EXPECTS(a > 0 && x >= 0);
  if (x == 0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  CORAL_EXPECTS(a > 0 && x >= 0);
  if (x == 0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi2_sf(double x, double k) {
  CORAL_EXPECTS(k > 0);
  if (x <= 0) return 1.0;
  return gamma_q(k / 2.0, x / 2.0);
}

double gamma_fn(double x) {
  CORAL_EXPECTS(x > 0);
  return std::exp(lgamma_threadsafe(x));
}

}  // namespace coral::stats
