#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace coral::stats {

/// Shannon entropy (bits) of a discrete label distribution given counts.
double entropy(std::span<const std::size_t> counts);

/// Feature data for information-gain evaluation: for each instance, a
/// categorical feature value (small int) and a binary class label.
struct FeatureColumn {
  std::string name;
  std::vector<int> values;  ///< categorical value per instance
};

/// Information-gain-ratio scores for one feature against binary labels
/// (the feature-ranking method of §VI-D / [26]).
struct GainScore {
  std::string name;
  double info_gain = 0;       ///< H(class) − H(class|feature)
  double split_info = 0;      ///< H(feature)
  double gain_ratio = 0;      ///< info_gain / split_info (0 if split_info==0)
};

/// Score one feature. `labels[i]` is the binary class of instance i.
GainScore gain_ratio(const FeatureColumn& feature, std::span<const std::uint8_t> labels);

/// Score and rank several features, highest gain ratio first.
std::vector<GainScore> rank_features(std::span<const FeatureColumn> features,
                                     std::span<const std::uint8_t> labels);

}  // namespace coral::stats
