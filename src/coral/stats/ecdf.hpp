#pragma once

#include <span>
#include <vector>

namespace coral::stats {

/// Empirical cumulative distribution function of a sample.
class EmpiricalCdf {
 public:
  /// Builds from (possibly unsorted) samples; keeps a sorted copy.
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Fraction of samples <= x.
  double operator()(double x) const;

  /// Empirical q-quantile (inverse CDF, lower interpolation).
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// (x, F(x)) step points suitable for plotting/printing, thinned to at
  /// most `max_points` evenly spaced steps.
  std::vector<std::pair<double, double>> points(std::size_t max_points = 64) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace coral::stats
