#pragma once

#include <span>
#include <string>
#include <vector>

namespace coral::stats {

/// Fixed-edge histogram: bin i covers [edges[i], edges[i+1]); values outside
/// the edge range are counted in underflow/overflow.
class Histogram {
 public:
  /// `edges` must be strictly increasing with at least two entries.
  explicit Histogram(std::vector<double> edges);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const;
  const std::vector<double>& edges() const { return edges_; }

  /// Render a fixed-width ASCII bar chart (used by the figure benches).
  std::string ascii(std::size_t width = 50) const;

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Render a labeled series as an ASCII bar chart, one row per element —
/// the common shape of the paper's per-midplane and per-day figures.
std::string ascii_bars(std::span<const double> values, std::span<const std::string> labels,
                       std::size_t width = 50);

}  // namespace coral::stats
