#pragma once

#include <span>
#include <vector>

namespace coral::stats {

/// Arithmetic mean; throws InvalidArgument on empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); requires n >= 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// q-quantile (0 <= q <= 1) with linear interpolation on the sorted copy.
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// Five-number-plus summary used in reports.
struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double q25 = 0;
  double median = 0;
  double q75 = 0;
  double max = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace coral::stats
