#include "coral/stats/correlation.hpp"

#include <cmath>

#include "coral/common/error.hpp"

namespace coral::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  CORAL_EXPECTS(x.size() == y.size());
  CORAL_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double event_time_correlation(std::span<const TimePoint> a, std::span<const TimePoint> b,
                              TimePoint begin, TimePoint end, Usec window) {
  CORAL_EXPECTS(window > 0);
  CORAL_EXPECTS(end > begin);
  const auto buckets = static_cast<std::size_t>((end - begin + window - 1) / window);
  if (buckets < 2) return 0.0;
  std::vector<double> ca(buckets, 0.0), cb(buckets, 0.0);
  const auto bucket_of = [&](TimePoint t) -> std::size_t {
    const Usec off = t - begin;
    if (off < 0) return 0;
    return std::min(buckets - 1, static_cast<std::size_t>(off / window));
  };
  for (TimePoint t : a) ca[bucket_of(t)] += 1.0;
  for (TimePoint t : b) cb[bucket_of(t)] += 1.0;
  return pearson(ca, cb);
}

}  // namespace coral::stats
