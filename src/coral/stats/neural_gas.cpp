#include "coral/stats/neural_gas.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "coral/common/error.hpp"

namespace coral::stats {

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

NeuralGas NeuralGas::train(std::span<const std::vector<double>> points,
                           const NeuralGasConfig& config) {
  CORAL_EXPECTS(!points.empty());
  CORAL_EXPECTS(config.units >= 1);
  const std::size_t dim = points[0].size();
  CORAL_EXPECTS(dim >= 1);
  for (const auto& p : points) CORAL_EXPECTS(p.size() == dim);

  NeuralGas ng;
  Rng rng(config.seed);

  // Initialize units on random data points.
  const std::size_t k = std::min(config.units, points.size());
  ng.units_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    ng.units_.push_back(points[rng.uniform_index(points.size())]);
  }

  const auto total_steps =
      static_cast<double>(config.epochs) * static_cast<double>(points.size());
  double step = 0;
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::pair<double, std::size_t>> ranked(k);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Shuffle presentation order (Fisher–Yates with our deterministic rng).
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    for (std::size_t idx : order) {
      const double t = step / total_steps;
      const double lambda =
          config.lambda_start * std::pow(config.lambda_end / config.lambda_start, t);
      const double eps =
          config.eps_start * std::pow(config.eps_end / config.eps_start, t);

      const auto& x = points[idx];
      for (std::size_t u = 0; u < k; ++u) {
        ranked[u] = {sq_dist(x, ng.units_[u]), u};
      }
      std::sort(ranked.begin(), ranked.end());
      for (std::size_t rank = 0; rank < k; ++rank) {
        const double h = std::exp(-static_cast<double>(rank) / lambda);
        auto& unit = ng.units_[ranked[rank].second];
        for (std::size_t d = 0; d < dim; ++d) {
          unit[d] += eps * h * (x[d] - unit[d]);
        }
      }
      step += 1;
    }
  }
  return ng;
}

std::size_t NeuralGas::nearest(std::span<const double> point) const {
  CORAL_EXPECTS(!units_.empty());
  std::size_t best = 0;
  double best_d = sq_dist(point, units_[0]);
  for (std::size_t u = 1; u < units_.size(); ++u) {
    const double d = sq_dist(point, units_[u]);
    if (d < best_d) {
      best_d = d;
      best = u;
    }
  }
  return best;
}

std::vector<std::size_t> NeuralGas::assign(
    std::span<const std::vector<double>> points) const {
  std::vector<std::size_t> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(nearest(p));
  return out;
}

double NeuralGas::quantization_error(std::span<const std::vector<double>> points) const {
  CORAL_EXPECTS(!points.empty());
  double total = 0;
  for (const auto& p : points) total += sq_dist(p, units_[nearest(p)]);
  return total / static_cast<double>(points.size());
}

}  // namespace coral::stats
