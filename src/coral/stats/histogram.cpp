#include "coral/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"

namespace coral::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  CORAL_EXPECTS(edges_.size() >= 2);
  CORAL_EXPECTS(std::is_sorted(edges_.begin(), edges_.end()));
  for (std::size_t i = 1; i < edges_.size(); ++i) CORAL_EXPECTS(edges_[i] > edges_[i - 1]);
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double x) {
  if (x < edges_.front()) {
    ++underflow_;
    return;
  }
  if (x >= edges_.back()) {
    ++overflow_;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  counts_[static_cast<std::size_t>(it - edges_.begin()) - 1] += 1;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::total() const {
  std::size_t t = underflow_ + overflow_;
  for (std::size_t c : counts_) t += c;
  return t;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) * static_cast<double>(width) /
                     static_cast<double>(max_count)));
    out += strformat("[%12.1f, %12.1f) %8zu |", edges_[i], edges_[i + 1], counts_[i]);
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::string ascii_bars(std::span<const double> values, std::span<const std::string> labels,
                       std::size_t width) {
  CORAL_EXPECTS(values.size() == labels.size());
  double max_value = 1e-12;
  for (double v : values) max_value = std::max(max_value, v);
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(values[i] * static_cast<double>(width) / max_value));
    out += strformat("%-12s %12.2f |", labels[i].c_str(), values[i]);
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace coral::stats
