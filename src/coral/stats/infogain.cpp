#include "coral/stats/infogain.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "coral/common/error.hpp"

namespace coral::stats {

double entropy(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

GainScore gain_ratio(const FeatureColumn& feature, std::span<const std::uint8_t> labels) {
  CORAL_EXPECTS(feature.values.size() == labels.size());
  CORAL_EXPECTS(!labels.empty());
  GainScore score;
  score.name = feature.name;

  const auto n = labels.size();
  std::size_t pos = 0;
  for (std::uint8_t l : labels) pos += l ? 1 : 0;
  const std::size_t class_counts[2] = {n - pos, pos};
  const double h_class = entropy(class_counts);

  // Per-feature-value class counts. Feature values are tiny enumerations
  // (bucket/row/flag indices), so a flat array indexed by value replaces the
  // per-instance ordered-map lookup; iterating it ascending accumulates
  // h_cond in exactly the map's key order, keeping the doubles bit-identical.
  // Values outside [0, 256) (or negative) fall back to the map.
  double h_cond = 0;
  std::vector<std::size_t> value_counts;
  constexpr int kFlatLimit = 256;
  bool flat = true;
  for (std::size_t i = 0; i < n; ++i) {
    const int v = feature.values[i];
    if (v < 0 || v >= kFlatLimit) {
      flat = false;
      break;
    }
  }
  if (flat) {
    std::array<std::array<std::size_t, 2>, kFlatLimit> counts{};
    int max_v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const int v = feature.values[i];
      counts[static_cast<std::size_t>(v)][labels[i] ? 1 : 0] += 1;
      max_v = std::max(max_v, v);
    }
    for (int v = 0; v <= max_v; ++v) {
      const auto& c = counts[static_cast<std::size_t>(v)];
      const std::size_t group_n = c[0] + c[1];
      if (group_n == 0) continue;
      value_counts.push_back(group_n);
      const double w = static_cast<double>(group_n) / static_cast<double>(n);
      h_cond += w * entropy(c);
    }
  } else {
    std::map<int, std::array<std::size_t, 2>> groups;
    for (std::size_t i = 0; i < n; ++i) {
      groups[feature.values[i]][labels[i] ? 1 : 0] += 1;
    }
    value_counts.reserve(groups.size());
    for (const auto& [value, counts] : groups) {
      (void)value;
      const std::size_t group_n = counts[0] + counts[1];
      value_counts.push_back(group_n);
      const double w = static_cast<double>(group_n) / static_cast<double>(n);
      h_cond += w * entropy(counts);
    }
  }

  score.info_gain = h_class - h_cond;
  score.split_info = entropy(value_counts);
  score.gain_ratio = score.split_info > 0 ? score.info_gain / score.split_info : 0.0;
  return score;
}

std::vector<GainScore> rank_features(std::span<const FeatureColumn> features,
                                     std::span<const std::uint8_t> labels) {
  std::vector<GainScore> out;
  out.reserve(features.size());
  for (const auto& f : features) out.push_back(gain_ratio(f, labels));
  std::stable_sort(out.begin(), out.end(),
                   [](const GainScore& a, const GainScore& b) {
                     return a.gain_ratio > b.gain_ratio;
                   });
  return out;
}

}  // namespace coral::stats
