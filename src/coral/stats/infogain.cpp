#include "coral/stats/infogain.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "coral/common/error.hpp"

namespace coral::stats {

double entropy(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

GainScore gain_ratio(const FeatureColumn& feature, std::span<const std::uint8_t> labels) {
  CORAL_EXPECTS(feature.values.size() == labels.size());
  CORAL_EXPECTS(!labels.empty());
  GainScore score;
  score.name = feature.name;

  const auto n = labels.size();
  std::size_t pos = 0;
  for (std::uint8_t l : labels) pos += l ? 1 : 0;
  const std::size_t class_counts[2] = {n - pos, pos};
  const double h_class = entropy(class_counts);

  // Per-feature-value class counts.
  std::map<int, std::array<std::size_t, 2>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    groups[feature.values[i]][labels[i] ? 1 : 0] += 1;
  }

  double h_cond = 0;
  std::vector<std::size_t> value_counts;
  value_counts.reserve(groups.size());
  for (const auto& [value, counts] : groups) {
    (void)value;
    const std::size_t group_n = counts[0] + counts[1];
    value_counts.push_back(group_n);
    const double w = static_cast<double>(group_n) / static_cast<double>(n);
    h_cond += w * entropy(counts);
  }

  score.info_gain = h_class - h_cond;
  score.split_info = entropy(value_counts);
  score.gain_ratio = score.split_info > 0 ? score.info_gain / score.split_info : 0.0;
  return score;
}

std::vector<GainScore> rank_features(std::span<const FeatureColumn> features,
                                     std::span<const std::uint8_t> labels) {
  std::vector<GainScore> out;
  out.reserve(features.size());
  for (const auto& f : features) out.push_back(gain_ratio(f, labels));
  std::stable_sort(out.begin(), out.end(),
                   [](const GainScore& a, const GainScore& b) {
                     return a.gain_ratio > b.gain_ratio;
                   });
  return out;
}

}  // namespace coral::stats
