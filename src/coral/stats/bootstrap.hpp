#pragma once

#include <functional>
#include <span>

#include "coral/common/rng.hpp"

namespace coral::stats {

/// A percentile bootstrap confidence interval for any scalar statistic.
struct BootstrapCi {
  double point = 0;  ///< statistic on the original sample
  double lo = 0;     ///< lower percentile bound
  double hi = 0;     ///< upper percentile bound
  int resamples = 0;

  bool contains(double value) const { return value >= lo && value <= hi; }
};

struct BootstrapConfig {
  int resamples = 400;
  double confidence = 0.95;
  std::uint64_t seed = 0xB007;
};

/// Percentile bootstrap of `statistic` over `samples`. The statistic is
/// called with resampled (with replacement) copies of the data; it must be
/// a pure function of its input.
BootstrapCi bootstrap_ci(std::span<const double> samples,
                         const std::function<double(std::span<const double>)>& statistic,
                         const BootstrapConfig& config = {});

/// Convenience: bootstrap CI of the fitted Weibull shape parameter — used
/// to put error bars on the Table IV/V claims (shape < 1, and the
/// before/after filtering difference).
BootstrapCi bootstrap_weibull_shape(std::span<const double> samples,
                                    const BootstrapConfig& config = {});

}  // namespace coral::stats
