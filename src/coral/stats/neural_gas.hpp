#pragma once

#include <span>
#include <vector>

#include "coral/common/rng.hpp"

namespace coral::stats {

/// A small classic neural-gas vector quantizer (Martinetz & Schulten).
///
/// Hacker, Romero and Carothers [10] — one of the paper's two comparator
/// filtering approaches — identify independent fatal events by clustering
/// RAS records in the temporal/spatial/severity domain with neural gas and
/// treating each cluster as one event. This is the quantizer that backs the
/// `filter::neural_gas_filter` baseline.
struct NeuralGasConfig {
  std::size_t units = 32;      ///< codebook size
  int epochs = 5;              ///< passes over the data
  double lambda_start = 10.0;  ///< neighborhood range, annealed
  double lambda_end = 0.5;
  double eps_start = 0.5;      ///< learning rate, annealed
  double eps_end = 0.01;
  std::uint64_t seed = 0x6A5;
};

/// The trained codebook: `units[k]` is a centroid in feature space.
class NeuralGas {
 public:
  /// Train on `points` (all rows must share the same dimension, >= 1).
  /// Throws InvalidArgument on empty/ragged input.
  static NeuralGas train(std::span<const std::vector<double>> points,
                         const NeuralGasConfig& config = {});

  const std::vector<std::vector<double>>& units() const { return units_; }

  /// Index of the unit closest to `point` (Euclidean).
  std::size_t nearest(std::span<const double> point) const;

  /// Assign every point to its nearest unit.
  std::vector<std::size_t> assign(std::span<const std::vector<double>> points) const;

  /// Mean squared quantization error over `points`.
  double quantization_error(std::span<const std::vector<double>> points) const;

 private:
  std::vector<std::vector<double>> units_;
};

}  // namespace coral::stats
