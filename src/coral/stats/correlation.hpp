#pragma once

#include <span>
#include <vector>

#include "coral/common/time.hpp"

namespace coral::stats {

/// Pearson's correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance.
double pearson(std::span<const double> x, std::span<const double> y);

/// Correlation between two event-time sequences, computed the way the
/// paper's classifier needs it (§IV-B): bucket both sequences into fixed
/// windows over [begin, end), count events per window, and correlate the
/// two count vectors.
double event_time_correlation(std::span<const TimePoint> a, std::span<const TimePoint> b,
                              TimePoint begin, TimePoint end, Usec window);

}  // namespace coral::stats
