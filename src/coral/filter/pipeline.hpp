#pragma once

#include <string>

#include "coral/filter/causality.hpp"
#include "coral/filter/spatial.hpp"
#include "coral/filter/temporal.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/log.hpp"

namespace coral::filter {

/// Per-stage bookkeeping for the filtering pipeline of Fig. 1.
struct StageStats {
  std::string name;
  std::size_t input = 0;
  std::size_t output = 0;
  double compression() const { return compression_ratio(input, output); }
};

/// Output of the RAS-only filtering stages (temporal → spatial →
/// causality), applied to the FATAL records of a log. The job-related
/// filter (§IV-C) is applied later by the co-analysis core because it needs
/// the job log.
struct FilterPipelineResult {
  std::vector<ras::RasEvent> fatal_events;  ///< time-sorted FATAL records
  std::vector<EventGroup> groups;           ///< indices into fatal_events
  std::vector<CausalPair> causal_pairs;     ///< mined by the causality stage
  std::vector<StageStats> stages;

  /// Overall records→groups compression (paper: 33,370 → 549 = 98.35%).
  double total_compression() const {
    return compression_ratio(fatal_events.size(), groups.size());
  }
};

struct FilterPipelineConfig {
  TemporalFilterConfig temporal;
  SpatialFilterConfig spatial;
  CausalityFilterConfig causality;
  bool enable_causality = true;
  /// Optional observability: one trace span per filter stage plus
  /// group-compression counters. Never changes results.
  obs::Collector* obs = nullptr;
};

/// Run temporal-spatial + causality filtering on the FATAL records of
/// `log`.
FilterPipelineResult run_filter_pipeline(const ras::RasLog& log,
                                         const FilterPipelineConfig& config = {});

}  // namespace coral::filter
