#pragma once

#include "coral/filter/columns.hpp"
#include "coral/filter/groups.hpp"

namespace coral::filter {

/// Temporal filtering [12]: records of the same ERRCODE at the same
/// LOCATION within `threshold` of the previous record are redundant
/// re-reports of one event. The chain extends: each absorbed record renews
/// the window (a 10-minute storm of 5-second repeats is one event).
struct TemporalFilterConfig {
  Usec threshold = 300 * kUsecPerSec;
};

/// Columnar hot path: merge groups per the temporal rule, scanning the SoA
/// columns and re-scattering the CSR member column once. `events` must be
/// time-sorted and `groups` ordered by representative time (as produced by
/// GroupSet::singletons or an earlier filter stage).
GroupSet temporal_filter(const EventColumns& events, GroupSet groups,
                         const TemporalFilterConfig& config);

/// Compatibility wrapper over the columnar kernel (gathers columns from the
/// AoS span, converts the group vectors); same semantics as ever.
std::vector<EventGroup> temporal_filter(std::span<const ras::RasEvent> events,
                                        std::vector<EventGroup> groups,
                                        const TemporalFilterConfig& config);

}  // namespace coral::filter
