#pragma once

#include "coral/filter/groups.hpp"

namespace coral::filter {

/// Temporal filtering [12]: records of the same ERRCODE at the same
/// LOCATION within `threshold` of the previous record are redundant
/// re-reports of one event. The chain extends: each absorbed record renews
/// the window (a 10-minute storm of 5-second repeats is one event).
struct TemporalFilterConfig {
  Usec threshold = 300 * kUsecPerSec;
};

/// Merge groups per the temporal rule. `events` must be time-sorted and
/// `groups` ordered by representative time (as produced by
/// singleton_groups or an earlier filter stage).
std::vector<EventGroup> temporal_filter(std::span<const ras::RasEvent> events,
                                        std::vector<EventGroup> groups,
                                        const TemporalFilterConfig& config);

}  // namespace coral::filter
