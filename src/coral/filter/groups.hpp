#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "coral/ras/event.hpp"

namespace coral::filter {

/// A set of raw RAS records that the filters decided describe one
/// independent event. `rep` is the representative (earliest) record; the
/// members keep their own times and locations so downstream analysis (job
/// matching, propagation) can still see the full footprint of the event.
struct EventGroup {
  std::size_t rep = 0;               ///< index into the filtered event span
  std::vector<std::size_t> members;  ///< all record indices, rep first
};

/// One group per record: the state before any filtering.
std::vector<EventGroup> singleton_groups(std::size_t count);

/// Merge `src` into `dst` (keeps dst.rep; members concatenated).
void merge_groups(EventGroup& dst, EventGroup&& src);

/// Compression ratio 1 - out/in, as the paper reports it (98.35% etc.).
double compression_ratio(std::size_t input_records, std::size_t output_groups);

}  // namespace coral::filter
