#include "coral/filter/neuralgas.hpp"

#include <algorithm>
#include <map>

namespace coral::filter {

std::vector<EventGroup> neural_gas_filter(std::span<const ras::RasEvent> events,
                                          const NeuralGasFilterConfig& config,
                                          const ras::Catalog& catalog) {
  if (events.empty()) return {};

  // Feature embedding. Time is normalized over the log span; location is
  // the midplane index; the errcode axis keeps different codes apart.
  const TimePoint t0 = events.front().event_time;
  const TimePoint t1 = events.back().event_time;
  const double span = std::max<double>(1.0, static_cast<double>(t1 - t0));
  const double n_codes = static_cast<double>(catalog.fatal_ids().size());

  std::vector<std::vector<double>> points;
  points.reserve(events.size());
  for (const ras::RasEvent& ev : events) {
    const auto mid = ev.location.midplane_id();
    const double midplane =
        mid ? static_cast<double>(*mid)
            : static_cast<double>(bgp::midplane_id(ev.location.rack_index(), 0));
    points.push_back({
        config.time_weight * static_cast<double>(ev.event_time - t0) / span,
        config.space_weight * midplane / config.midplane_count,
        config.code_weight * static_cast<double>(ev.errcode) / n_codes,
    });
  }

  stats::NeuralGasConfig gas = config.gas;
  if (gas.units == 0) {
    gas.units = std::clamp<std::size_t>(events.size() / 64, 16, 512);
  }
  const stats::NeuralGas ng = stats::NeuralGas::train(points, gas);
  const std::vector<std::size_t> assignment = ng.assign(points);

  // Records in one cluster, chained in time with a gap limit, form one
  // group (events are already time-sorted, so per-cluster order is too).
  std::map<std::size_t, std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < events.size(); ++i) {
    clusters[assignment[i]].push_back(i);
  }

  std::vector<EventGroup> groups;
  for (const auto& [unit, members] : clusters) {
    (void)unit;
    EventGroup current;
    for (std::size_t idx : members) {
      if (!current.members.empty() &&
          events[idx].event_time - events[current.members.back()].event_time >
              config.chain_gap) {
        groups.push_back(std::move(current));
        current = EventGroup{};
      }
      if (current.members.empty()) current.rep = idx;
      current.members.push_back(idx);
    }
    if (!current.members.empty()) groups.push_back(std::move(current));
  }

  // Present groups in representative-time order like the other filters.
  std::sort(groups.begin(), groups.end(), [&events](const EventGroup& a, const EventGroup& b) {
    return events[a.rep].event_time < events[b.rep].event_time;
  });
  return groups;
}

}  // namespace coral::filter
