#include "coral/filter/pipeline.hpp"

#include "coral/filter/columns.hpp"

namespace coral::filter {

FilterPipelineResult run_filter_pipeline(const ras::RasLog& log,
                                         const FilterPipelineConfig& config) {
  FilterPipelineResult result;
  // The stages themselves run on the log's SoA fatal view; the AoS copy is
  // materialized once, only because downstream consumers (matching,
  // classification, reports) index into it.
  result.fatal_events = log.fatal_events();
  const EventColumns events = columns_of(log.fatal_columns());

  GroupSet groups = GroupSet::singletons(events.size());
  result.stages.push_back({"raw FATAL records", events.size(), groups.size()});

  {
    obs::Span span(config.obs, "filter.temporal");
    const std::size_t before = groups.size();
    groups = temporal_filter(events, std::move(groups), config.temporal);
    result.stages.push_back({"temporal", before, groups.size()});
    span.counts(before, groups.size());
  }

  {
    obs::Span span(config.obs, "filter.spatial");
    const std::size_t before = groups.size();
    groups = spatial_filter(events, std::move(groups), config.spatial);
    result.stages.push_back({"spatial", before, groups.size()});
    span.counts(before, groups.size());
  }

  if (config.enable_causality) {
    obs::Span span(config.obs, "filter.causality");
    const std::size_t before = groups.size();
    result.causal_pairs = mine_causal_pairs(events, groups, config.causality);
    groups = causality_filter(events, std::move(groups), result.causal_pairs,
                              config.causality);
    result.stages.push_back({"causality", before, groups.size()});
    span.counts(before, groups.size());
    CORAL_OBS_COUNT(config.obs, "filter.causal_pairs", result.causal_pairs.size());
  }
  CORAL_OBS_COUNT(config.obs, "filter.groups_out", groups.size());

  result.groups = groups.to_groups();
  return result;
}

}  // namespace coral::filter
