#pragma once

#include "coral/filter/groups.hpp"
#include "coral/stats/neural_gas.hpp"

namespace coral::filter {

/// Neural-gas filtering baseline, after Hacker et al. [10]: embed each
/// FATAL record in a (time, location, errcode) feature space, cluster with
/// neural gas, and treat each cluster — split at long temporal gaps — as
/// one independent event. The paper contrasts its temporal-spatial +
/// causality + job-related pipeline against exactly this family of
/// clustering filters.
struct NeuralGasFilterConfig {
  stats::NeuralGasConfig gas;   ///< `gas.units == 0` → auto (#records/64)
  double time_weight = 4.0;     ///< feature scaling: time dominates
  double space_weight = 1.0;    ///< midplane axis
  double code_weight = 2.0;     ///< errcode identity axis
  Usec chain_gap = kUsecPerHour;  ///< split same-cluster chains at this gap
  /// Midplanes on the machine the events came from; normalizes the spatial
  /// feature axis to [0, 1). Default: the reference BG/P.
  int midplane_count = bgp::Topology::kMidplanes;

  NeuralGasFilterConfig() { gas.units = 0; }
};

/// Cluster the (time-sorted) events into groups. Deterministic in
/// `config.gas.seed`. The catalog scales the errcode feature axis.
std::vector<EventGroup> neural_gas_filter(
    std::span<const ras::RasEvent> events, const NeuralGasFilterConfig& config = {},
    const ras::Catalog& catalog = ras::default_catalog());

}  // namespace coral::filter
