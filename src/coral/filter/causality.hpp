#pragma once

#include <utility>

#include "coral/common/parallel.hpp"
#include "coral/filter/columns.hpp"
#include "coral/filter/groups.hpp"

namespace coral::filter {

/// Causality-related filtering [7]: different ERRCODEs that co-occur
/// frequently within a short window are causally coupled (e.g. an L1 cache
/// parity error dragging a kernel panic). The filter first *mines* the
/// frequently co-occurring code pairs from the data, then merges each
/// follower group into the leader group it trails.
struct CausalityFilterConfig {
  Usec window = 120 * kUsecPerSec;  ///< co-occurrence window
  int min_support = 5;              ///< occurrences needed to accept a pair
  /// Optional worker pool for the mining pass (the only O(n·w) step in the
  /// filter chain). Results are identical with or without it.
  par::ThreadPool* pool = nullptr;
};

/// An accepted causally-coupled pair (leader first by convention of first
/// observation order).
using CausalPair = std::pair<ras::ErrcodeId, ras::ErrcodeId>;

/// Mine frequently co-occurring errcode pairs from grouped events. Counting
/// is done on group representatives (post temporal/spatial), so storms do
/// not inflate support. Columnar hot path: rep times/codes are gathered into
/// contiguous arrays and counted in a dense code-pair matrix.
std::vector<CausalPair> mine_causal_pairs(const EventColumns& events, const GroupSet& groups,
                                          const CausalityFilterConfig& config);

/// Compatibility wrapper over the columnar kernel.
std::vector<CausalPair> mine_causal_pairs(std::span<const ras::RasEvent> events,
                                          std::span<const EventGroup> groups,
                                          const CausalityFilterConfig& config);

/// Merge each group whose code is causally paired with a group seen within
/// the window into that earlier group (columnar hot path).
GroupSet causality_filter(const EventColumns& events, GroupSet groups,
                          std::span<const CausalPair> pairs,
                          const CausalityFilterConfig& config);

/// Compatibility wrapper over the columnar kernel.
std::vector<EventGroup> causality_filter(std::span<const ras::RasEvent> events,
                                         std::vector<EventGroup> groups,
                                         std::span<const CausalPair> pairs,
                                         const CausalityFilterConfig& config);

}  // namespace coral::filter
