#include "coral/filter/columns.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "coral/common/error.hpp"

namespace coral::filter {

OwnedColumns::OwnedColumns(std::span<const ras::RasEvent> events) {
  time.reserve(events.size());
  errcode.reserve(events.size());
  loc_key.reserve(events.size());
  for (const ras::RasEvent& ev : events) {
    time.push_back(ev.event_time);
    errcode.push_back(ev.errcode);
    loc_key.push_back(ev.location.packed());
  }
}

GroupSet GroupSet::singletons(std::size_t count) {
  CORAL_EXPECTS(count <= std::numeric_limits<std::uint32_t>::max());
  GroupSet out;
  out.rep_.resize(count);
  std::iota(out.rep_.begin(), out.rep_.end(), 0u);
  out.offset_.resize(count + 1);
  std::iota(out.offset_.begin(), out.offset_.end(), 0u);
  out.member_ = out.rep_;
  return out;
}

GroupSet GroupSet::from_groups(std::span<const EventGroup> groups) {
  GroupSet out;
  out.rep_.reserve(groups.size());
  out.offset_.reserve(groups.size() + 1);
  out.offset_.push_back(0);
  std::size_t total = 0;
  for (const EventGroup& g : groups) total += g.members.size();
  CORAL_EXPECTS(total <= std::numeric_limits<std::uint32_t>::max());
  out.member_.reserve(total);
  for (const EventGroup& g : groups) {
    out.rep_.push_back(static_cast<std::uint32_t>(g.rep));
    for (const std::size_t m : g.members) out.member_.push_back(static_cast<std::uint32_t>(m));
    out.offset_.push_back(static_cast<std::uint32_t>(out.member_.size()));
  }
  return out;
}

std::vector<EventGroup> GroupSet::to_groups() const {
  std::vector<EventGroup> out(size());
  for (std::size_t g = 0; g < size(); ++g) {
    out[g].rep = rep_[g];
    const auto m = members(g);
    out[g].members.assign(m.begin(), m.end());
  }
  return out;
}

GroupSet GroupSet::merged(std::span<const std::uint32_t> target, std::size_t out_count) const {
  GroupSet out;
  out.rep_.assign(out_count, std::numeric_limits<std::uint32_t>::max());
  out.offset_.assign(out_count + 1, 0);
  for (std::size_t i = 0; i < size(); ++i) {
    out.offset_[target[i] + 1] += offset_[i + 1] - offset_[i];
  }
  for (std::size_t s = 0; s < out_count; ++s) out.offset_[s + 1] += out.offset_[s];
  out.member_.resize(member_.size());
  std::vector<std::uint32_t> cursor(out.offset_.begin(), out.offset_.end() - 1);
  for (std::size_t i = 0; i < size(); ++i) {
    const std::uint32_t slot = target[i];
    if (out.rep_[slot] == std::numeric_limits<std::uint32_t>::max()) out.rep_[slot] = rep_[i];
    const auto m = members(i);
    std::copy(m.begin(), m.end(), out.member_.begin() + cursor[slot]);
    cursor[slot] += static_cast<std::uint32_t>(m.size());
  }
  return out;
}

}  // namespace coral::filter
