#include "coral/filter/spatial.hpp"

#include <unordered_map>

namespace coral::filter {

GroupSet spatial_filter(const EventColumns& events, GroupSet groups,
                        const SpatialFilterConfig& config) {
  // Errcodes are catalog indices (a few dozen distinct values), so remap
  // them to dense ids once and run the merge loop over a flat array instead
  // of a per-group hash lookup.
  std::unordered_map<ras::ErrcodeId, std::uint32_t> dense;
  std::vector<std::uint32_t> code_of(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto [it, _] =
        dense.try_emplace(events.errcode[groups.rep(i)], static_cast<std::uint32_t>(dense.size()));
    code_of[i] = it->second;
  }

  struct Open {
    std::uint32_t out_index = 0;
    TimePoint last;
    bool valid = false;
  };
  std::vector<Open> open(dense.size());
  std::vector<std::uint32_t> target(groups.size());
  std::uint32_t out_count = 0;

  for (std::size_t i = 0; i < groups.size(); ++i) {
    const TimePoint t = events.time[groups.rep(i)];
    Open& slot = open[code_of[i]];
    if (slot.valid && t - slot.last <= config.threshold) {
      slot.last = t;
      target[i] = slot.out_index;
      continue;
    }
    slot = {out_count, t, true};
    target[i] = out_count++;
  }
  return groups.merged(target, out_count);
}

std::vector<EventGroup> spatial_filter(std::span<const ras::RasEvent> events,
                                       std::vector<EventGroup> groups,
                                       const SpatialFilterConfig& config) {
  const OwnedColumns cols(events);
  return spatial_filter(cols.view(), GroupSet::from_groups(groups), config).to_groups();
}

}  // namespace coral::filter
