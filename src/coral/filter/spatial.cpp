#include "coral/filter/spatial.hpp"

#include <unordered_map>

namespace coral::filter {

std::vector<EventGroup> spatial_filter(std::span<const ras::RasEvent> events,
                                       std::vector<EventGroup> groups,
                                       const SpatialFilterConfig& config) {
  struct Open {
    std::size_t out_index;
    TimePoint last;
  };
  std::unordered_map<std::int32_t, Open> open;  // keyed by errcode
  std::vector<EventGroup> out;
  out.reserve(groups.size());

  for (EventGroup& g : groups) {
    const ras::RasEvent& rep = events[g.rep];
    const auto it = open.find(rep.errcode);
    if (it != open.end() && rep.event_time - it->second.last <= config.threshold) {
      it->second.last = rep.event_time;
      merge_groups(out[it->second.out_index], std::move(g));
      continue;
    }
    open[rep.errcode] = Open{out.size(), rep.event_time};
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace coral::filter
