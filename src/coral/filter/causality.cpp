#include "coral/filter/causality.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace coral::filter {

namespace {

// Gathered per-group rep fields plus a dense renumbering of the errcodes
// seen. Errcodes are catalog indices, so the dense universe is small (tens
// of codes) and pair counts fit a flat d*d matrix.
struct RepColumns {
  std::vector<TimePoint> time;
  std::vector<std::uint32_t> dense;  ///< dense code id per group
  std::vector<ras::ErrcodeId> code;  ///< dense id -> original errcode

  RepColumns(const EventColumns& events, const GroupSet& groups) {
    time.reserve(groups.size());
    dense.reserve(groups.size());
    std::unordered_map<ras::ErrcodeId, std::uint32_t> ids;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const std::size_t rep = groups.rep(i);
      time.push_back(events.time[rep]);
      const auto [it, fresh] =
          ids.try_emplace(events.errcode[rep], static_cast<std::uint32_t>(code.size()));
      if (fresh) code.push_back(events.errcode[rep]);
      dense.push_back(it->second);
    }
  }

  std::size_t codes() const { return code.size(); }
};

}  // namespace

std::vector<CausalPair> mine_causal_pairs(const EventColumns& events, const GroupSet& groups,
                                          const CausalityFilterConfig& config) {
  const RepColumns reps(events, groups);
  const std::size_t d = reps.codes();

  // counts[min*d + max] over dense id pairs; each pair of groups counted
  // once. The outer loop is embarrassingly parallel: each chunk owns
  // disjoint left-endpoints i and accumulates into a local matrix; matrices
  // are summed afterwards, so the result is independent of the chunking.
  const auto count_range = [&](std::size_t begin, std::size_t end,
                               std::vector<std::int64_t>& counts) {
    for (std::size_t i = begin; i < end; ++i) {
      const TimePoint ta = reps.time[i];
      const std::uint32_t da = reps.dense[i];
      for (std::size_t j = i + 1; j < reps.time.size(); ++j) {
        if (reps.time[j] - ta > config.window) break;
        const std::uint32_t db = reps.dense[j];
        if (da == db) continue;
        const std::uint32_t lo = std::min(da, db);
        const std::uint32_t hi = std::max(da, db);
        counts[lo * d + hi] += 1;
      }
    }
  };

  std::vector<std::int64_t> counts(d * d, 0);
  if (config.pool != nullptr && config.pool->thread_count() > 1 && !groups.empty()) {
    std::vector<std::vector<std::int64_t>> partial(config.pool->thread_count() * 4);
    std::atomic<std::size_t> slot{0};
    par::parallel_for_chunks(
        groups.size(), 256,
        [&](std::size_t begin, std::size_t end) {
          auto& mine = partial[slot.fetch_add(1) % partial.size()];
          if (mine.empty()) mine.assign(d * d, 0);
          count_range(begin, end, mine);
        },
        config.pool);
    for (const auto& p : partial) {
      for (std::size_t k = 0; k < p.size(); ++k) counts[k] += p[k];
    }
  } else {
    count_range(0, groups.size(), counts);
  }

  std::vector<CausalPair> pairs;
  for (std::uint32_t a = 0; a < d; ++a) {
    for (std::uint32_t b = a + 1; b < d; ++b) {
      if (counts[a * d + b] < config.min_support) continue;
      const ras::ErrcodeId ca = reps.code[a];
      const ras::ErrcodeId cb = reps.code[b];
      pairs.push_back(ca < cb ? CausalPair{ca, cb} : CausalPair{cb, ca});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

GroupSet causality_filter(const EventColumns& events, GroupSet groups,
                          std::span<const CausalPair> pairs,
                          const CausalityFilterConfig& config) {
  // Dense-renumber every code mentioned by a pair or a group rep, then run
  // the merge loop against flat partner/open arrays. Partner lists are kept
  // in ascending code order, matching the set iteration the tie-break rule
  // ("first best wins") depends on.
  std::unordered_map<ras::ErrcodeId, std::uint32_t> ids;
  std::vector<ras::ErrcodeId> code_of_dense;
  const auto dense_of = [&](ras::ErrcodeId c) {
    const auto [it, fresh] = ids.try_emplace(c, static_cast<std::uint32_t>(code_of_dense.size()));
    if (fresh) code_of_dense.push_back(c);
    return it->second;
  };
  std::vector<std::uint32_t> rep_dense(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    rep_dense[i] = dense_of(events.errcode[groups.rep(i)]);
  }
  struct Partner {
    ras::ErrcodeId code;
    std::uint32_t dense;
  };
  std::vector<std::vector<Partner>> partner(code_of_dense.size());
  for (const auto& [a, b] : pairs) {
    const std::uint32_t da = dense_of(a);
    const std::uint32_t db = dense_of(b);
    partner.resize(code_of_dense.size());
    partner[da].push_back({b, db});
    partner[db].push_back({a, da});
  }
  for (auto& list : partner) {
    std::sort(list.begin(), list.end(),
              [](const Partner& x, const Partner& y) { return x.code < y.code; });
    list.erase(std::unique(list.begin(), list.end(),
                           [](const Partner& x, const Partner& y) { return x.code == y.code; }),
               list.end());
  }

  struct Open {
    std::uint32_t out_index = 0;
    TimePoint last;
    bool valid = false;
  };
  std::vector<Open> open(code_of_dense.size());
  std::vector<std::uint32_t> target(groups.size());
  std::uint32_t out_count = 0;

  for (std::size_t i = 0; i < groups.size(); ++i) {
    const TimePoint t = events.time[groups.rep(i)];
    const std::uint32_t dc = rep_dense[i];
    // Merge into the most recent partner group within the window.
    bool found = false;
    std::uint32_t best_out = 0;
    TimePoint best_time;
    for (const Partner& p : partner[dc]) {
      const Open& o = open[p.dense];
      if (!o.valid || t - o.last > config.window) continue;
      if (!found || o.last > best_time) {
        found = true;
        best_time = o.last;
        best_out = o.out_index;
      }
    }
    if (found) {
      target[i] = best_out;
      continue;
    }
    open[dc] = {out_count, t, true};
    target[i] = out_count++;
  }
  return groups.merged(target, out_count);
}

std::vector<CausalPair> mine_causal_pairs(std::span<const ras::RasEvent> events,
                                          std::span<const EventGroup> groups,
                                          const CausalityFilterConfig& config) {
  const OwnedColumns cols(events);
  return mine_causal_pairs(cols.view(), GroupSet::from_groups(groups), config);
}

std::vector<EventGroup> causality_filter(std::span<const ras::RasEvent> events,
                                         std::vector<EventGroup> groups,
                                         std::span<const CausalPair> pairs,
                                         const CausalityFilterConfig& config) {
  const OwnedColumns cols(events);
  return causality_filter(cols.view(), GroupSet::from_groups(groups), pairs, config)
      .to_groups();
}

}  // namespace coral::filter
