#include "coral/filter/causality.hpp"

#include <atomic>
#include <map>
#include <set>
#include <unordered_map>

namespace coral::filter {

std::vector<CausalPair> mine_causal_pairs(std::span<const ras::RasEvent> events,
                                          std::span<const EventGroup> groups,
                                          const CausalityFilterConfig& config) {
  // Count unordered co-occurrences of distinct codes among group reps
  // within the window (each pair of groups counted once). The outer loop is
  // embarrassingly parallel: each chunk owns disjoint left-endpoints i and
  // accumulates into a local map; maps are merged afterwards, so the result
  // is independent of the chunking.
  using Counts = std::map<std::pair<ras::ErrcodeId, ras::ErrcodeId>, int>;
  const auto count_range = [&](std::size_t begin, std::size_t end, Counts& counts) {
    for (std::size_t i = begin; i < end; ++i) {
      const ras::RasEvent& a = events[groups[i].rep];
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        const ras::RasEvent& b = events[groups[j].rep];
        if (b.event_time - a.event_time > config.window) break;
        if (a.errcode == b.errcode) continue;
        const auto key = a.errcode < b.errcode ? std::pair{a.errcode, b.errcode}
                                               : std::pair{b.errcode, a.errcode};
        counts[key] += 1;
      }
    }
  };

  Counts counts;
  if (config.pool != nullptr && config.pool->thread_count() > 1) {
    std::vector<Counts> partial(config.pool->thread_count() * 4);
    std::atomic<std::size_t> slot{0};
    par::parallel_for_chunks(
        groups.size(), 256,
        [&](std::size_t begin, std::size_t end) {
          count_range(begin, end, partial[slot.fetch_add(1) % partial.size()]);
        },
        config.pool);
    for (const Counts& p : partial) {
      for (const auto& [key, n] : p) counts[key] += n;
    }
  } else {
    count_range(0, groups.size(), counts);
  }

  std::vector<CausalPair> pairs;
  for (const auto& [key, n] : counts) {
    if (n >= config.min_support) pairs.push_back(key);
  }
  return pairs;
}

std::vector<EventGroup> causality_filter(std::span<const ras::RasEvent> events,
                                         std::vector<EventGroup> groups,
                                         std::span<const CausalPair> pairs,
                                         const CausalityFilterConfig& config) {
  // partner[c] = set of codes causally coupled with c.
  std::unordered_map<ras::ErrcodeId, std::set<ras::ErrcodeId>> partner;
  for (const auto& [a, b] : pairs) {
    partner[a].insert(b);
    partner[b].insert(a);
  }

  struct Open {
    std::size_t out_index;
    TimePoint last;
  };
  std::unordered_map<ras::ErrcodeId, Open> open;  // last group per code
  std::vector<EventGroup> out;
  out.reserve(groups.size());

  for (EventGroup& g : groups) {
    const ras::RasEvent& rep = events[g.rep];
    bool merged = false;
    if (const auto pit = partner.find(rep.errcode); pit != partner.end()) {
      // Merge into the most recent partner group within the window.
      std::size_t best_out = 0;
      TimePoint best_time;
      bool found = false;
      for (ras::ErrcodeId p : pit->second) {
        const auto oit = open.find(p);
        if (oit == open.end()) continue;
        if (rep.event_time - oit->second.last > config.window) continue;
        if (!found || oit->second.last > best_time) {
          found = true;
          best_time = oit->second.last;
          best_out = oit->second.out_index;
        }
      }
      if (found) {
        merge_groups(out[best_out], std::move(g));
        merged = true;
      }
    }
    if (!merged) {
      open[rep.errcode] = Open{out.size(), rep.event_time};
      out.push_back(std::move(g));
    }
  }
  return out;
}

}  // namespace coral::filter
