#pragma once

#include "coral/filter/columns.hpp"
#include "coral/filter/groups.hpp"

namespace coral::filter {

/// Spatial filtering [12], [9]: the same ERRCODE reported from *different*
/// locations within `threshold` is one event seen from many vantage points
/// (a parallel job's interrupt is reported by every allocated node).
struct SpatialFilterConfig {
  Usec threshold = 300 * kUsecPerSec;
};

/// Columnar hot path: merge groups per the spatial rule (same errcode, any
/// location, within the renewing window). Input ordering as for
/// temporal_filter.
GroupSet spatial_filter(const EventColumns& events, GroupSet groups,
                        const SpatialFilterConfig& config);

/// Compatibility wrapper over the columnar kernel.
std::vector<EventGroup> spatial_filter(std::span<const ras::RasEvent> events,
                                       std::vector<EventGroup> groups,
                                       const SpatialFilterConfig& config);

}  // namespace coral::filter
