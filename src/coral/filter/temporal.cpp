#include "coral/filter/temporal.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace coral::filter {

namespace {

// Open-addressed (errcode << 32 | loc_key) -> open-chain map. The merge loop
// does one lookup per group; a flat power-of-two table with linear probing
// avoids unordered_map's per-node allocations and pointer chases. The
// all-ones key is unreachable: errcode is a non-negative catalog index and
// loc_key's kind byte never reaches 0xFF.
class OpenChains {
 public:
  struct Slot {
    std::uint32_t out_index;
    TimePoint last;
  };

  explicit OpenChains(std::size_t expected) {
    const std::size_t cap = std::bit_ceil(std::max<std::size_t>(16, expected * 2));
    mask_ = cap - 1;
    keys_.assign(cap, kEmpty);
    slots_.resize(cap);
  }

  /// Returns the slot for `key`; `fresh` is true when the key was absent.
  Slot& find_or_insert(std::uint64_t key, bool& fresh) {
    std::size_t i = (key * 0x9E3779B97F4A7C15ull) & mask_;
    while (keys_[i] != key) {
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        fresh = true;
        return slots_[i];
      }
      i = (i + 1) & mask_;
    }
    fresh = false;
    return slots_[i];
  }

 private:
  static constexpr std::uint64_t kEmpty = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> keys_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

}  // namespace

GroupSet temporal_filter(const EventColumns& events, GroupSet groups,
                         const TemporalFilterConfig& config) {
  OpenChains open(groups.size());
  std::vector<std::uint32_t> target(groups.size());
  std::uint32_t out_count = 0;

  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t rep = groups.rep(i);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(events.errcode[rep])) << 32) |
        events.loc_key[rep];
    const TimePoint t = events.time[rep];
    bool fresh = false;
    auto& slot = open.find_or_insert(key, fresh);
    if (!fresh && t - slot.last <= config.threshold) {
      slot.last = t;  // chain renews the window
      target[i] = slot.out_index;
      continue;
    }
    slot = {out_count, t};
    target[i] = out_count++;
  }
  return groups.merged(target, out_count);
}

std::vector<EventGroup> temporal_filter(std::span<const ras::RasEvent> events,
                                        std::vector<EventGroup> groups,
                                        const TemporalFilterConfig& config) {
  const OwnedColumns cols(events);
  return temporal_filter(cols.view(), GroupSet::from_groups(groups), config).to_groups();
}

}  // namespace coral::filter
