#include "coral/filter/temporal.hpp"

#include <unordered_map>

namespace coral::filter {

namespace {

std::uint64_t key_of(const ras::RasEvent& ev) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.errcode)) << 32) |
         ev.location.packed();
}

}  // namespace

std::vector<EventGroup> temporal_filter(std::span<const ras::RasEvent> events,
                                        std::vector<EventGroup> groups,
                                        const TemporalFilterConfig& config) {
  struct Open {
    std::size_t out_index;
    TimePoint last;
  };
  std::unordered_map<std::uint64_t, Open> open;
  open.reserve(groups.size());
  std::vector<EventGroup> out;
  out.reserve(groups.size());

  for (EventGroup& g : groups) {
    const ras::RasEvent& rep = events[g.rep];
    const std::uint64_t key = key_of(rep);
    const auto it = open.find(key);
    if (it != open.end() && rep.event_time - it->second.last <= config.threshold) {
      it->second.last = rep.event_time;  // chain renews the window
      merge_groups(out[it->second.out_index], std::move(g));
      continue;
    }
    open[key] = Open{out.size(), rep.event_time};
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace coral::filter
