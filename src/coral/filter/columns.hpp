#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coral/filter/groups.hpp"
#include "coral/ras/log.hpp"

namespace coral::filter {

/// Borrowed SoA columns over the records being filtered. The filter stages
/// only ever touch three fields per record — time, errcode and location —
/// so the hot loops scan three contiguous columns instead of striding over
/// whole RasEvents. Spans borrow from a RasLog's FatalColumns (columns_of)
/// or from an OwnedColumns gather.
struct EventColumns {
  std::span<const TimePoint> time;
  std::span<const ras::ErrcodeId> errcode;
  std::span<const std::uint32_t> loc_key;  ///< Location::packed() keys

  std::size_t size() const { return time.size(); }
};

/// Borrow the SoA view a finalized RasLog already maintains.
inline EventColumns columns_of(const ras::FatalColumns& c) {
  return {c.event_time, c.errcode, c.loc_key};
}

/// Columns gathered from an AoS event span — the compatibility path behind
/// the span-based filter overloads, and the only copy those wrappers make.
struct OwnedColumns {
  std::vector<TimePoint> time;
  std::vector<ras::ErrcodeId> errcode;
  std::vector<std::uint32_t> loc_key;

  explicit OwnedColumns(std::span<const ras::RasEvent> events);
  EventColumns view() const { return {time, errcode, loc_key}; }
};

/// A whole group partition in one flat CSR layout: group g owns
/// members()[offset(g)..offset(g+1)) and keeps its representative record in
/// rep(g). This replaces std::vector<EventGroup> in the pipeline hot path —
/// merging stages build a target map and re-scatter the member column once,
/// instead of concatenating thousands of little heap vectors.
///
/// Invariants (matching the EventGroup form): members are listed with the
/// group's own record first and absorbed records appended in merge order;
/// groups are ordered by representative time.
class GroupSet {
 public:
  GroupSet() = default;

  /// One group per record, the pre-filtering state (singleton_groups).
  static GroupSet singletons(std::size_t count);
  /// Flatten an EventGroup vector (compatibility ingress).
  static GroupSet from_groups(std::span<const EventGroup> groups);
  /// Materialize the EventGroup form (compatibility egress).
  std::vector<EventGroup> to_groups() const;

  std::size_t size() const { return rep_.size(); }
  bool empty() const { return rep_.empty(); }
  std::size_t total_members() const { return member_.size(); }
  std::size_t rep(std::size_t g) const { return rep_[g]; }
  std::span<const std::uint32_t> members(std::size_t g) const {
    return {member_.data() + offset_[g], offset_[g + 1] - offset_[g]};
  }

  /// Apply a merge plan: input group i lands in output slot target[i], with
  /// slots numbered in first-appearance order. Groups sharing a slot are
  /// concatenated in input order — the first group's members lead and its
  /// rep is kept — which reproduces a sequence of merge_groups calls
  /// exactly, in two passes over the member column.
  GroupSet merged(std::span<const std::uint32_t> target, std::size_t out_count) const;

 private:
  std::vector<std::uint32_t> rep_;     ///< representative record per group
  std::vector<std::uint32_t> offset_;  ///< size()+1 prefix offsets into member_
  std::vector<std::uint32_t> member_;  ///< concatenated member record indices
};

}  // namespace coral::filter
