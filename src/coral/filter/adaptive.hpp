#pragma once

#include <map>

#include "coral/filter/temporal.hpp"

namespace coral::filter {

/// Adaptive temporal filtering, after Liang et al.'s adaptive semantic
/// filter [4] (cited as the more flexible alternative to the constant
/// thresholds of [12]/[9] that this repo uses by default): instead of one
/// global threshold, each ERRCODE gets its own, learned from the gap
/// statistics of its *own* record stream. Records of one underlying event
/// re-report at second-to-minute gaps while independent events are hours
/// apart, so the sorted same-code-same-location gap sequence has a sharp
/// knee; the filter places the threshold at the largest multiplicative
/// jump.
struct AdaptiveFilterConfig {
  /// Thresholds are clamped to this range (a code with too few samples or
  /// no clear knee falls back to `fallback`).
  Usec min_threshold = 10 * kUsecPerSec;
  Usec max_threshold = 2 * kUsecPerHour;
  Usec fallback = 300 * kUsecPerSec;
  /// Minimum same-key gap samples needed to fit a per-code threshold.
  std::size_t min_samples = 8;
};

/// The learned per-errcode thresholds plus bookkeeping for inspection.
struct AdaptiveThresholds {
  std::map<ras::ErrcodeId, Usec> by_code;
  Usec fallback = 300 * kUsecPerSec;

  Usec threshold_for(ras::ErrcodeId code) const {
    const auto it = by_code.find(code);
    return it == by_code.end() ? fallback : it->second;
  }
};

/// Learn per-errcode thresholds from the (time-sorted) event stream.
AdaptiveThresholds learn_adaptive_thresholds(std::span<const ras::RasEvent> events,
                                             const AdaptiveFilterConfig& config = {});

/// Temporal filtering with per-errcode thresholds (same grouping semantics
/// as temporal_filter).
std::vector<EventGroup> adaptive_temporal_filter(std::span<const ras::RasEvent> events,
                                                 std::vector<EventGroup> groups,
                                                 const AdaptiveThresholds& thresholds);

}  // namespace coral::filter
