#include "coral/filter/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace coral::filter {

namespace {

std::uint64_t key_of(const ras::RasEvent& ev) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.errcode)) << 32) |
         ev.location.packed();
}

}  // namespace

AdaptiveThresholds learn_adaptive_thresholds(std::span<const ras::RasEvent> events,
                                             const AdaptiveFilterConfig& config) {
  // Collect successive same-(code, location) gaps per errcode.
  std::unordered_map<std::uint64_t, TimePoint> last_at_key;
  std::unordered_map<ras::ErrcodeId, std::vector<double>> gaps_sec;
  for (const ras::RasEvent& ev : events) {
    const std::uint64_t key = key_of(ev);
    const auto it = last_at_key.find(key);
    if (it != last_at_key.end()) {
      gaps_sec[ev.errcode].push_back(static_cast<double>(ev.event_time - it->second) /
                                     static_cast<double>(kUsecPerSec));
      it->second = ev.event_time;
    } else {
      last_at_key.emplace(key, ev.event_time);
    }
  }

  AdaptiveThresholds out;
  out.fallback = config.fallback;
  const double lo = static_cast<double>(config.min_threshold) / kUsecPerSec;
  const double hi = static_cast<double>(config.max_threshold) / kUsecPerSec;

  for (auto& [code, gaps] : gaps_sec) {
    if (gaps.size() < config.min_samples) continue;
    std::sort(gaps.begin(), gaps.end());
    // Find the largest multiplicative jump between consecutive sorted gaps
    // inside the clamp range; the threshold lands in the middle of that
    // jump (geometric mean).
    double best_ratio = 0;
    double best_threshold = -1;
    for (std::size_t i = 1; i < gaps.size(); ++i) {
      const double a = std::max(gaps[i - 1], 0.5);
      const double b = std::max(gaps[i], 0.5);
      if (b < lo || a > hi) continue;
      const double ratio = b / a;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_threshold = std::sqrt(a * b);
      }
    }
    // Require a clear knee (an order of magnitude) to trust the fit.
    if (best_ratio >= 8.0 && best_threshold > 0) {
      const double clamped = std::clamp(best_threshold, lo, hi);
      out.by_code[code] = static_cast<Usec>(clamped * kUsecPerSec);
    }
  }
  return out;
}

std::vector<EventGroup> adaptive_temporal_filter(std::span<const ras::RasEvent> events,
                                                 std::vector<EventGroup> groups,
                                                 const AdaptiveThresholds& thresholds) {
  struct Open {
    std::size_t out_index;
    TimePoint last;
  };
  std::unordered_map<std::uint64_t, Open> open;
  open.reserve(groups.size());
  std::vector<EventGroup> out;
  out.reserve(groups.size());

  for (EventGroup& g : groups) {
    const ras::RasEvent& rep = events[g.rep];
    const std::uint64_t key = key_of(rep);
    const Usec threshold = thresholds.threshold_for(rep.errcode);
    const auto it = open.find(key);
    if (it != open.end() && rep.event_time - it->second.last <= threshold) {
      it->second.last = rep.event_time;
      merge_groups(out[it->second.out_index], std::move(g));
      continue;
    }
    open[key] = Open{out.size(), rep.event_time};
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace coral::filter
