#include "coral/filter/groups.hpp"

namespace coral::filter {

std::vector<EventGroup> singleton_groups(std::size_t count) {
  std::vector<EventGroup> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].rep = i;
    out[i].members = {i};
  }
  return out;
}

void merge_groups(EventGroup& dst, EventGroup&& src) {
  dst.members.insert(dst.members.end(), src.members.begin(), src.members.end());
  src.members.clear();
}

double compression_ratio(std::size_t input_records, std::size_t output_groups) {
  if (input_records == 0) return 0.0;
  return 1.0 - static_cast<double>(output_groups) / static_cast<double>(input_records);
}

}  // namespace coral::filter
