#include "coral/joblog/log.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>

#include "coral/common/csv.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/common/strings.hpp"

namespace coral::joblog {

namespace {

std::int32_t intern(const std::string& value, std::vector<std::string>& table,
                    std::unordered_map<std::string, std::int32_t>& index) {
  const auto it = index.find(value);
  if (it != index.end()) return it->second;
  const auto id = static_cast<std::int32_t>(table.size());
  table.push_back(value);
  index.emplace(value, id);
  return id;
}

}  // namespace

ExecId JobLog::intern_exec(const std::string& path) {
  return intern(path, exec_files_, exec_index_);
}
UserId JobLog::intern_user(const std::string& name) {
  return intern(name, users_, user_index_);
}
ProjectId JobLog::intern_project(const std::string& name) {
  return intern(name, projects_, project_index_);
}

void JobLog::append(JobRecord job) {
  CORAL_EXPECTS(job.end_time >= job.start_time);
  CORAL_EXPECTS(job.exec_id >= 0 &&
                static_cast<std::size_t>(job.exec_id) < exec_files_.size());
  finalized_ = false;
  jobs_.push_back(job);
}

void JobLog::finalize() {
  std::stable_sort(jobs_.begin(), jobs_.end(), [](const JobRecord& a, const JobRecord& b) {
    return a.start_time < b.start_time;
  });
  max_end_prefix_.resize(jobs_.size());
  TimePoint running_max;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (i == 0 || jobs_[i].end_time > running_max) running_max = jobs_[i].end_time;
    max_end_prefix_[i] = running_max;
  }
  by_end_.resize(jobs_.size());
  std::iota(by_end_.begin(), by_end_.end(), std::size_t{0});
  std::sort(by_end_.begin(), by_end_.end(), [this](std::size_t a, std::size_t b) {
    if (jobs_[a].end_time != jobs_[b].end_time) {
      return jobs_[a].end_time < jobs_[b].end_time;
    }
    return a < b;
  });
  interval_ = IntervalIndex(jobs_, by_end_, machine_->midplane_count());
  finalized_ = true;
}

const std::vector<std::size_t>& JobLog::by_end_time() const {
  CORAL_EXPECTS(finalized_);
  return by_end_;
}

const IntervalIndex& JobLog::interval_index() const {
  CORAL_EXPECTS(finalized_ || jobs_.empty());
  return interval_;
}

template <typename Pred>
std::vector<std::size_t> JobLog::running_matching(TimePoint t, Pred pred) const {
  CORAL_EXPECTS(finalized_);
  std::vector<std::size_t> out;
  // First job with start_time > t.
  const auto it = std::upper_bound(jobs_.begin(), jobs_.end(), t,
                                   [](TimePoint tp, const JobRecord& j) {
                                     return tp < j.start_time;
                                   });
  for (auto i = static_cast<std::ptrdiff_t>(it - jobs_.begin()) - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (max_end_prefix_[idx] <= t) break;  // nothing earlier can still be running
    const JobRecord& j = jobs_[idx];
    if (j.end_time > t && pred(j)) out.push_back(idx);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

// Jobs in one interval-index bucket that are running at `t`, descending job
// index (the caller reverses or merges). Same bounded backward scan as the
// whole-log running_matching, but confined to the jobs that can cover the
// queried midplane.
void bucket_running_at(const IntervalIndex::StartSlice& s, TimePoint t,
                       std::vector<std::size_t>& out) {
  const auto it = std::upper_bound(s.start_time.begin(), s.start_time.end(), t);
  for (auto i = static_cast<std::ptrdiff_t>(it - s.start_time.begin()) - 1; i >= 0; --i) {
    const auto k = static_cast<std::size_t>(i);
    if (s.max_end[k] <= t) break;  // nothing earlier in the bucket can still run
    if (s.end_time[k] > t) out.push_back(s.job[k]);
  }
}

}  // namespace

std::vector<std::size_t> JobLog::running_at(TimePoint t, const bgp::Location& loc) const {
  CORAL_EXPECTS(finalized_);
  if (jobs_.empty()) return {};
  std::vector<std::size_t> out;
  const machine::LocCodec& codec = machine_->codec();
  if (loc.kind() == bgp::LocationKind::Rack) {
    // Rack-level locations touch every midplane of the rack; a multi-midplane
    // partition can sit in several buckets, so merge and dedupe.
    const auto lo = static_cast<bgp::MidplaneId>(loc.rack_index() * codec.midplanes_per_rack);
    for (int i = 0; i < codec.midplanes_per_rack; ++i) {
      bucket_running_at(interval_.starts(lo + i), t, out);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  bucket_running_at(interval_.starts(codec.midplane_of(loc.packed())), t, out);
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> JobLog::running_at(TimePoint t, const bgp::Partition& part) const {
  return running_matching(t,
                          [&part](const JobRecord& j) { return j.partition.overlaps(part); });
}

std::vector<std::size_t> JobLog::overlapping(TimePoint begin, TimePoint end) const {
  CORAL_EXPECTS(finalized_);
  // Binary-search both edges of the candidate slice: jobs starting at or
  // after `end` cannot intersect, and neither can any prefix whose running
  // max end time is still <= `begin`.
  const auto lo = std::partition_point(max_end_prefix_.begin(), max_end_prefix_.end(),
                                       [&](TimePoint m) { return m <= begin; });
  const auto hi = std::partition_point(jobs_.begin(), jobs_.end(),
                                       [&](const JobRecord& j) { return j.start_time < end; });
  std::vector<std::size_t> out;
  const auto first = static_cast<std::size_t>(lo - max_end_prefix_.begin());
  const auto last = static_cast<std::size_t>(hi - jobs_.begin());
  for (std::size_t i = first; i < last; ++i) {
    if (jobs_[i].end_time > begin) out.push_back(i);
  }
  return out;
}

JobLogSummary JobLog::summary() const {
  JobLogSummary s;
  s.total_jobs = jobs_.size();
  s.users = users_.size();
  s.projects = projects_.size();
  std::vector<int> submits(exec_files_.size(), 0);
  for (const auto& j : jobs_) submits[static_cast<std::size_t>(j.exec_id)] += 1;
  for (int n : submits) {
    if (n > 0) s.distinct_jobs += 1;
    if (n > 1) s.resubmitted_jobs += 1;
  }
  if (!jobs_.empty()) {
    s.first_submit = jobs_.front().queue_time;
    s.last_end = jobs_.front().end_time;
    for (const auto& j : jobs_) {
      if (j.queue_time < s.first_submit) s.first_submit = j.queue_time;
      if (j.end_time > s.last_end) s.last_end = j.end_time;
    }
  }
  return s;
}

void JobLog::write_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.write_row({"JOB_ID", "EXEC_FILE", "USER", "PROJECT", "QUEUE_TIME", "START_TIME",
               "END_TIME", "LOCATION", "EXIT"});
  for (const auto& j : jobs_) {
    w.write_row({std::to_string(j.job_id), exec_files_[static_cast<std::size_t>(j.exec_id)],
                 users_[static_cast<std::size_t>(j.user_id)],
                 projects_[static_cast<std::size_t>(j.project_id)],
                 strformat("%.2f", j.queue_time.unix_seconds()),
                 strformat("%.2f", j.start_time.unix_seconds()),
                 strformat("%.2f", j.end_time.unix_seconds()), machine_->partition_name(j.partition),
                 std::to_string(j.exit_code)});
  }
}

namespace {

std::string row_snippet(const std::vector<std::string>& row) {
  std::string s;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) s += ',';
    s += row[i];
    if (s.size() > 64) break;
  }
  return s;
}

// Unix-second fields far outside the plausible log range would make llround
// in from_unix_seconds implementation-defined; reject them as unparseable.
TimePoint parse_job_time(const std::string& field) {
  const double sec = parse_double(field);
  if (!(sec > -1e12 && sec < 1e13)) {
    throw ParseError("job time out of range: '" + field + "'");
  }
  return TimePoint::from_unix_seconds(sec);
}

}  // namespace

JobLog JobLog::read_csv(std::istream& in, ParseMode mode, IngestReport* report,
                        InstrumentationSink* sink, const machine::MachineModel& machine) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.job_csv");

  CsvReader r(in, ',', mode, &rep);
  std::vector<std::string> row;
  if (!r.read_row(row)) throw ParseError("empty job CSV");
  if (row.size() != 9 || row[0] != "JOB_ID") throw ParseError("bad job CSV header");
  JobLog log(machine);
  while (r.read_row(row)) {
    if (row.size() == 1 && row[0].empty()) continue;
    const std::uint64_t offset = r.row_offset();
    if (row.size() != 9) {
      if (mode == ParseMode::Strict) throw ParseError("bad job CSV row width");
      rep.add_malformed(IngestReason::RowWidth, offset, row_snippet(row),
                        "expected 9 fields, got " + std::to_string(row.size()));
      continue;
    }
    // Parse every throwing field before interning, so a rejected row leaves
    // no stray entries in the string tables.
    JobRecord j;
    IngestReason reason = IngestReason::BadRecord;
    try {
      reason = IngestReason::BadNumber;
      j.job_id = parse_int(row[0]);
      reason = IngestReason::BadTimestamp;
      j.queue_time = parse_job_time(row[4]);
      j.start_time = parse_job_time(row[5]);
      j.end_time = parse_job_time(row[6]);
      reason = IngestReason::BadLocation;
      j.partition = machine.parse_partition(row[7]);
      reason = IngestReason::BadNumber;
      j.exit_code = static_cast<int>(parse_int(row[8]));
    } catch (const Error& e) {
      if (mode == ParseMode::Strict) throw;
      rep.add_malformed(reason, offset, row_snippet(row), e.what());
      continue;
    }
    if (mode == ParseMode::Lenient && j.end_time < j.start_time) {
      rep.add_malformed(IngestReason::BadRecord, offset, row_snippet(row),
                        "job ends before it starts");
      continue;
    }
    j.exec_id = log.intern_exec(row[1]);
    j.user_id = log.intern_user(row[2]);
    j.project_id = log.intern_project(row[3]);
    log.append(j);
    rep.add_ok();
  }
  log.finalize();
  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.job_csv");
  return log;
}

}  // namespace coral::joblog
