#include "coral/joblog/interval_index.hpp"

#include <limits>

#include "coral/bgp/topology.hpp"
#include "coral/common/error.hpp"

namespace coral::joblog {

IntervalIndex::IntervalIndex(std::span<const JobRecord> jobs,
                             std::span<const std::size_t> by_end, int midplane_count) {
  CORAL_EXPECTS(jobs.size() <= std::numeric_limits<std::uint32_t>::max());
  CORAL_EXPECTS(jobs.size() == by_end.size());
  CORAL_EXPECTS(midplane_count >= 0);
  offset_.assign(static_cast<std::size_t>(midplane_count) + 1, 0);
  for (const JobRecord& j : jobs) {
    for (auto m = j.partition.first_midplane(); m < j.partition.end_midplane(); ++m) {
      offset_[static_cast<std::size_t>(m) + 1] += 1;
    }
  }
  for (std::size_t m = 0; m + 1 < offset_.size(); ++m) {
    offset_[m + 1] += offset_[m];
  }
  const std::size_t total = offset_.back();
  end_job_.resize(total);
  end_time_.resize(total);
  end_start_.resize(total);
  start_job_.resize(total);
  start_time_.resize(total);
  start_end_.resize(total);
  start_max_end_.resize(total);

  std::vector<std::uint32_t> cursor(offset_.begin(), offset_.end() - 1);
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const JobRecord& j = jobs[idx];
    for (auto m = j.partition.first_midplane(); m < j.partition.end_midplane(); ++m) {
      const std::size_t pos = cursor[static_cast<std::size_t>(m)]++;
      start_job_[pos] = static_cast<std::uint32_t>(idx);
      start_time_[pos] = j.start_time;
      start_end_[pos] = j.end_time;
      start_max_end_[pos] =
          pos > offset_[static_cast<std::size_t>(m)] && start_max_end_[pos - 1] > j.end_time
              ? start_max_end_[pos - 1]
              : j.end_time;
    }
  }
  cursor.assign(offset_.begin(), offset_.end() - 1);
  for (const std::size_t idx : by_end) {
    const JobRecord& j = jobs[idx];
    for (auto m = j.partition.first_midplane(); m < j.partition.end_midplane(); ++m) {
      const std::size_t pos = cursor[static_cast<std::size_t>(m)]++;
      end_job_[pos] = static_cast<std::uint32_t>(idx);
      end_time_[pos] = j.end_time;
      end_start_[pos] = j.start_time;
    }
  }
}

}  // namespace coral::joblog
