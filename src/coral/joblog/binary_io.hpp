#pragma once

#include <iosfwd>

#include "coral/common/ingest.hpp"
#include "coral/common/zonemap.hpp"
#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Compact binary serialization of a JobLog (v2 row-packed, v3 columnar).
///
/// Both versions share the container: a raw 8-byte file header (magic
/// "CJOB" | u32 version) followed by CRC32-framed blocks (see
/// coral/common/binary_frame.hpp). Block payloads carry a one-byte tag:
///
///   'H' header: u64 total record count. Written twice.
///   'X' / 'U' / 'P' string table (exec files / users / projects):
///       u32 count, then u16 length + bytes each. Each written twice so a
///       single damaged block cannot orphan the records.
///   'R' v2 records: u32 count | count x { i64 job_id, i32 exec, i32 user,
///       i32 project, i32 first_midplane, i64 queue, i64 start, i64 end
///       (usec), i32 midplane_count, i32 exit_code }, at most 64 records
///       per block.
///
/// v3 replaces 'R' with the self-describing store layer shared with the
/// RAS log (common/storev3.hpp):
///
///   'M' meta: machine name, schema "job.columnar.v3", records per block,
///       flags. Written twice.
///   'C' columnar records: u32 count | 32-byte zone map | u8 codec |
///       u32 raw size | column body, at most 64 records per block. The
///       zone map's time range covers [min start, max end] of the block's
///       jobs, the midplane bitmap folds every midplane of every job's
///       partition, and the key range carries [min first-midplane,
///       max last-midplane] as plain midplane ids. The body is the block
///       transposed into columns, in order: job_id (delta + zigzag
///       varint), exec / user / project (varint), start (delta + zigzag
///       varint), wait = start - queue (zigzag varint), duration =
///       end - start (zigzag varint), first_midplane (varint),
///       midplane_count (varint), exit_code (zigzag varint). The body is
///       LZ-compressed when that is smaller (codec byte 1), else raw (0).
///   'S' segment footer: offsets, counts, and zone maps of the preceding
///       'C' blocks, so an appender can rebuild the block directory and a
///       seeking reader can skip segments without touching them.
///
/// The v2 and v3 tag sets are disjoint, so the one decoder reads both.

/// v3 write options. The zero-initialized default writes the current
/// format with per-block compression.
struct WriteOptions {
  std::uint32_t version = 3;  ///< 2 or 3
  /// v3: try the in-repo LZ codec per block, keeping whichever of
  /// raw/compressed is smaller.
  bool compress = true;
  /// v3: 'C' blocks per 'S' footer (the append/flush granularity).
  std::size_t blocks_per_segment = 256;
};

/// Write `log` in v2 format — the layout every fleet peer understands.
/// Equivalent to write_binary(out, log, {.version = 2}).
void write_binary(std::ostream& out, const JobLog& log);
void write_binary(std::ostream& out, const JobLog& log, const WriteOptions& opts);

/// Read-side options; the zero-initialized default is a strict, unfiltered
/// read against the reference BG/P model.
struct ReadOptions {
  ParseMode mode = ParseMode::Strict;
  IngestReport* report = nullptr;
  InstrumentationSink* sink = nullptr;
  const machine::MachineModel* machine = nullptr;  ///< null = bgp_model()
  /// Predicate pushdown: v3 blocks whose zone map cannot match are skipped
  /// without decompression, and decoded jobs are exact-filtered (the job's
  /// lifetime overlaps the time range AND its partition touches a listed
  /// midplane), so the result equals a full read followed by the same
  /// filter. v2 files decode fully and exact-filter. Skipped blocks still
  /// feed the record accounting, so strict totals and lenient damage
  /// counts are query-independent.
  bin::ReadPredicate predicate;
};

/// Load a binary JobLog (v2 or v3, auto-detected per block tag). Strict
/// mode throws ParseError (with the byte offset) on any damage; lenient
/// mode drops damaged blocks, resynchronizes at the next block marker, and
/// skips-and-counts undecodable records into `report` — the BinaryFrame
/// counter ends up holding exactly the number of records lost to frame
/// damage, at most one block of records per damaged frame in either
/// version. With a `sink`, an "ingest.job_binary" stage sample, per-reason
/// malformed counters, and blocks_total/blocks_decoded/blocks_skipped
/// pushdown counters are recorded. Partition extents are validated against
/// the machine model; the returned log is stamped with it.
JobLog read_binary(std::istream& in, const ReadOptions& opts);
JobLog read_binary(std::istream& in, ParseMode mode = ParseMode::Strict,
                   IngestReport* report = nullptr, InstrumentationSink* sink = nullptr,
                   const machine::MachineModel& machine = machine::bgp_model());

}  // namespace coral::joblog
