#pragma once

#include <iosfwd>

#include "coral/common/ingest.hpp"
#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Compact binary serialization of a JobLog (format v2, block-framed).
///
/// v2 layout: a raw 8-byte file header (magic "CJOB" | u32 version = 2)
/// followed by CRC32-framed blocks (see coral/common/binary_frame.hpp).
/// Block payloads carry a one-byte tag:
///
///   'H' header: u64 total record count. Written twice.
///   'X' / 'U' / 'P' string table (exec files / users / projects):
///       u32 count, then u16 length + bytes each. Each written twice so a
///       single damaged block cannot orphan the records.
///   'R' records: u32 count | count x { i64 job_id, i32 exec, i32 user,
///       i32 project, i32 first_midplane, i64 queue, i64 start, i64 end
///       (usec), i32 midplane_count, i32 exit_code }, at most 64 records
///       per block.
void write_binary(std::ostream& out, const JobLog& log);

/// Load a binary JobLog. Strict mode throws ParseError (with the byte
/// offset) on any damage; lenient mode drops damaged blocks, resynchronizes
/// at the next block marker, and skips-and-counts undecodable records into
/// `report` — the BinaryFrame counter ends up holding exactly the number of
/// records lost to frame damage. With a `sink`, an "ingest.job_binary"
/// stage sample plus per-reason malformed counters are recorded.
/// Partition extents are validated against `machine`'s partition algebra;
/// the returned log is stamped with that model.
JobLog read_binary(std::istream& in, ParseMode mode = ParseMode::Strict,
                   IngestReport* report = nullptr, InstrumentationSink* sink = nullptr,
                   const machine::MachineModel& machine = machine::bgp_model());

}  // namespace coral::joblog
