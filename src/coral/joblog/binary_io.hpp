#pragma once

#include <iosfwd>

#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Compact binary serialization of a JobLog. Format (little-endian):
///
///   magic "CJOB" | u32 version | three string tables (exec files, users,
///   projects: u32 count, then u16 length + bytes each) | u64 record count
///   | records { i64 job_id, i32 exec, i32 user, i32 project, i64 queue,
///   i64 start, i64 end (usec), i32 first_midplane, i32 midplane_count,
///   i32 exit_code }
void write_binary(std::ostream& out, const JobLog& log);

/// Load a binary JobLog. Throws ParseError on malformed input.
JobLog read_binary(std::istream& in);

}  // namespace coral::joblog
