#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/ingest.hpp"
#include "coral/common/storev3.hpp"
#include "coral/common/zonemap.hpp"
#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Format internals of the binary v2/v3 job log (layout contract in
/// binary_io.hpp). Exposed for the same reason as ras/binary_stream.hpp:
/// the one-shot file reader and the incremental wire/session path must
/// decode through the same routines for the fleet parity guarantee to hold.
/// As with RAS, the v3 tags extend the v2 tag set, so one decoder reads
/// both versions and the session/daemon wire path inherits v3 for free.

inline constexpr char kJobMagic[4] = {'C', 'J', 'O', 'B'};
inline constexpr std::uint32_t kJobVersion = 2;
inline constexpr std::uint32_t kJobVersion3 = 3;
inline constexpr char kJobHeaderTag = 'H';
inline constexpr char kJobExecTag = 'X';
inline constexpr char kJobUserTag = 'U';
inline constexpr char kJobProjectTag = 'P';
inline constexpr char kJobRecordTag = 'R';
/// v3 tags (shared payload shapes in common/storev3.hpp).
inline constexpr char kJobMetaTag = 'M';
inline constexpr char kJobColumnTag = 'C';
inline constexpr char kJobSegmentTag = 'S';
inline constexpr std::string_view kJobSchemaV3 = "job.columnar.v3";
inline constexpr std::size_t kJobRecordsPerBlock = 64;

/// The fixed 56-byte on-disk record (golden byte layout pinned in
/// tests/test_binary_io.cpp).
struct PackedJob {
  std::int64_t job_id = 0;
  std::int32_t exec = 0;
  std::int32_t user = 0;
  std::int32_t project = 0;
  std::int32_t first_midplane = 0;
  std::int64_t queue_usec = 0;
  std::int64_t start_usec = 0;
  std::int64_t end_usec = 0;
  std::int32_t midplane_count = 0;
  std::int32_t exit_code = 0;
};
static_assert(sizeof(PackedJob) == 56);

/// Parse one string-table payload body ('X'/'U'/'P', cursor past the tag).
std::vector<std::string> parse_job_table(bin::PayloadCursor& cur);

/// Build one complete v3 'C' payload (tag through body) for jobs
/// [base, base + n) of `log`. The body is the block transposed into varint
/// columns (see binary_io.hpp for the exact layout); the zone map covers
/// [min start, max end] with every partition midplane folded in and the
/// key range carrying [min first-midplane, max last-midplane].
void encode_job_column_block(std::string& payload, const JobLog& log, std::size_t base,
                             std::size_t n, bool compress, std::string& raw);

/// Incremental binary v2/v3 job decoder: feed block payloads as they arrive,
/// finish() runs the lost-record top-up and finalizes the log. Feeding a
/// file's payload sequence reproduces the one-shot reader exactly —
/// read_binary is itself implemented on this class. The v2 and v3 tag sets
/// are disjoint, so no version switch is needed.
class JobStreamDecoder {
 public:
  JobStreamDecoder(ParseMode mode, const machine::MachineModel& machine)
      : machine_(&machine), mode_(mode), log_(machine) {}

  /// Install a pushdown predicate: zone-rejected v3 blocks are skipped
  /// without decoding, and decoded jobs are exact-filtered (lifetime
  /// overlaps the time range, partition touches a listed midplane). Null
  /// (the default) decodes everything. Must outlive the decoder.
  void set_filter(const bin::ZoneFilter* filter) { filter_ = filter; }

  /// Decode one block payload (tag byte + body) whose first byte sat at
  /// absolute offset `payload_offset`. Lenient mode absorbs undecodable
  /// payloads; strict mode throws.
  void on_payload(std::string_view payload, std::uint64_t payload_offset);

  /// Records successfully decoded so far (live gauge for mid-run snapshots).
  std::uint64_t records_decoded() const { return log_.size(); }
  /// Records attempted (decoded or individually rejected) so far.
  std::uint64_t records_attempted() const { return attempted_; }
  /// The declared total from the header block, once one has been seen.
  std::optional<std::uint64_t> declared_total() const { return total_; }
  /// Record-block accounting (total / decoded / zone-skipped), the source
  /// of the ingest.job_binary.blocks_* obs counters.
  const bin::BlockCounters& block_counters() const { return blocks_; }
  /// The 'M' meta block, once one has been seen (v3 streams only).
  const std::optional<bin::StoreMeta>& meta() const { return meta_; }

  /// End of stream: verify counts (strict) or top-up the BinaryFrame ledger
  /// (lenient), fold per-record accounting into `rep`, adopt the framing
  /// layer's damage samples, and return the finalized log.
  JobLog finish(IngestReport& rep, const IngestReport& frame_damage);

 private:
  void decode_records(bin::PayloadCursor& cur);
  void decode_columns(bin::PayloadCursor& cur);
  void intern_tables();
  /// Validate and append one decoded job; shared by the v2 and v3 record
  /// paths so rejection reasons and filter semantics match across versions.
  void emit_job(std::int64_t job_id, std::int64_t exec, std::int64_t user,
                std::int64_t project, std::int64_t queue_usec, std::int64_t start_usec,
                std::int64_t end_usec, std::int64_t first_midplane,
                std::int64_t midplane_count, std::int64_t exit_code,
                std::uint64_t rec_offset);

  const machine::MachineModel* machine_;
  ParseMode mode_;
  JobLog log_;
  const bin::ZoneFilter* filter_ = nullptr;
  std::optional<std::uint64_t> total_;
  std::optional<bin::StoreMeta> meta_;
  std::optional<std::vector<std::string>> execs_, users_, projects_;
  bool interned_ = false;
  IngestReport record_rep_;  ///< per-record rejections, folded into finish()'s rep
  std::uint64_t attempted_ = 0;
  bin::BlockCounters blocks_;
  std::string scratch_;  ///< decompression buffer, reused across blocks
};

}  // namespace coral::joblog
