#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coral/common/binary_frame.hpp"
#include "coral/common/ingest.hpp"
#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Format internals of the binary-v2 job log (layout contract in
/// binary_io.hpp). Exposed for the same reason as ras/binary_stream.hpp:
/// the one-shot file reader and the incremental wire/session path must
/// decode through the same routines for the fleet parity guarantee to hold.

inline constexpr char kJobMagic[4] = {'C', 'J', 'O', 'B'};
inline constexpr std::uint32_t kJobVersion = 2;
inline constexpr char kJobHeaderTag = 'H';
inline constexpr char kJobExecTag = 'X';
inline constexpr char kJobUserTag = 'U';
inline constexpr char kJobProjectTag = 'P';
inline constexpr char kJobRecordTag = 'R';
inline constexpr std::size_t kJobRecordsPerBlock = 64;

/// The fixed 56-byte on-disk record (golden byte layout pinned in
/// tests/test_binary_io.cpp).
struct PackedJob {
  std::int64_t job_id = 0;
  std::int32_t exec = 0;
  std::int32_t user = 0;
  std::int32_t project = 0;
  std::int32_t first_midplane = 0;
  std::int64_t queue_usec = 0;
  std::int64_t start_usec = 0;
  std::int64_t end_usec = 0;
  std::int32_t midplane_count = 0;
  std::int32_t exit_code = 0;
};
static_assert(sizeof(PackedJob) == 56);

/// Parse one string-table payload body ('X'/'U'/'P', cursor past the tag).
std::vector<std::string> parse_job_table(bin::PayloadCursor& cur);

/// Incremental binary-v2 job decoder: feed block payloads as they arrive,
/// finish() runs the lost-record top-up and finalizes the log. Feeding a
/// file's payload sequence reproduces the one-shot reader exactly —
/// read_binary is itself implemented on this class.
class JobStreamDecoder {
 public:
  JobStreamDecoder(ParseMode mode, const machine::MachineModel& machine)
      : machine_(&machine), mode_(mode), log_(machine) {}

  /// Decode one block payload (tag byte + body) whose first byte sat at
  /// absolute offset `payload_offset`. Lenient mode absorbs undecodable
  /// payloads; strict mode throws.
  void on_payload(std::string_view payload, std::uint64_t payload_offset);

  /// Records successfully decoded so far (live gauge for mid-run snapshots).
  std::uint64_t records_decoded() const { return log_.size(); }
  /// Records attempted (decoded or individually rejected) so far.
  std::uint64_t records_attempted() const { return attempted_; }
  /// The declared total from the header block, once one has been seen.
  std::optional<std::uint64_t> declared_total() const { return total_; }

  /// End of stream: verify counts (strict) or top-up the BinaryFrame ledger
  /// (lenient), fold per-record accounting into `rep`, adopt the framing
  /// layer's damage samples, and return the finalized log.
  JobLog finish(IngestReport& rep, const IngestReport& frame_damage);

 private:
  void decode_records(bin::PayloadCursor& cur);

  const machine::MachineModel* machine_;
  ParseMode mode_;
  JobLog log_;
  std::optional<std::uint64_t> total_;
  std::optional<std::vector<std::string>> execs_, users_, projects_;
  bool interned_ = false;
  IngestReport record_rep_;  ///< per-record rejections, folded into finish()'s rep
  std::uint64_t attempted_ = 0;
};

}  // namespace coral::joblog
