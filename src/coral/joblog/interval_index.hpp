#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coral/joblog/job.hpp"

namespace coral::joblog {

/// Per-midplane job interval index, built once by JobLog::finalize().
///
/// Job j appears in bucket m exactly when j.partition contains midplane m,
/// so a query about an event at location L only ever touches the buckets of
/// L's footprint (one midplane, or two for a rack-level location) instead of
/// testing Partition::covers() against every job in a time window. Each
/// bucket is stored twice in one CSR layout (both orderings have identical
/// membership, so they share the offsets):
///
///  - end order: (end_time, job index) ascending, with parallel end/start
///    time columns — the matcher's "which jobs ended inside [lo, hi]" scan
///    becomes one binary search plus a contiguous walk;
///  - start order: ascending job index (= ascending start time, the JobLog
///    sort order), with parallel start/end time columns and a running
///    max-end prefix — running_at()'s bounded backward scan, per bucket.
class IntervalIndex {
 public:
  /// Default: a valid index over zero jobs (every bucket empty).
  IntervalIndex() : IntervalIndex({}, {}) {}
  /// `jobs` must be sorted by start time; `by_end` is the (end_time, index)
  /// ordering JobLog::finalize() already computes. `midplane_count` sizes
  /// the bucket table (default: the reference BG/P's 80).
  IntervalIndex(std::span<const JobRecord> jobs, std::span<const std::size_t> by_end,
                int midplane_count = bgp::Topology::kMidplanes);

  /// A bucket in (end_time, job index) order.
  struct EndSlice {
    std::span<const std::uint32_t> job;
    std::span<const TimePoint> end_time;    ///< ascending
    std::span<const TimePoint> start_time;  ///< parallel, unordered
  };
  /// A bucket in ascending job-index (= start time) order.
  struct StartSlice {
    std::span<const std::uint32_t> job;
    std::span<const TimePoint> start_time;  ///< ascending
    std::span<const TimePoint> end_time;    ///< parallel, unordered
    std::span<const TimePoint> max_end;     ///< running max of end_time
  };

  EndSlice ends(bgp::MidplaneId m) const {
    const std::size_t b = offset_[static_cast<std::size_t>(m)];
    const std::size_t e = offset_[static_cast<std::size_t>(m) + 1];
    return {{end_job_.data() + b, e - b},
            {end_time_.data() + b, e - b},
            {end_start_.data() + b, e - b}};
  }
  StartSlice starts(bgp::MidplaneId m) const {
    const std::size_t b = offset_[static_cast<std::size_t>(m)];
    const std::size_t e = offset_[static_cast<std::size_t>(m) + 1];
    return {{start_job_.data() + b, e - b},
            {start_time_.data() + b, e - b},
            {start_end_.data() + b, e - b},
            {start_max_end_.data() + b, e - b}};
  }

  bool empty() const { return end_job_.empty(); }

 private:
  std::vector<std::uint32_t> offset_;  ///< midplane_count + 1 bucket offsets

  std::vector<std::uint32_t> end_job_;
  std::vector<TimePoint> end_time_;
  std::vector<TimePoint> end_start_;

  std::vector<std::uint32_t> start_job_;
  std::vector<TimePoint> start_time_;
  std::vector<TimePoint> start_end_;
  std::vector<TimePoint> start_max_end_;
};

}  // namespace coral::joblog
