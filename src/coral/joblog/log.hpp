#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "coral/common/ingest.hpp"
#include "coral/joblog/interval_index.hpp"
#include "coral/joblog/job.hpp"
#include "coral/machine/model.hpp"

namespace coral::joblog {

/// Summary counts for a job log (Table I / §III-B material).
struct JobLogSummary {
  std::size_t total_jobs = 0;
  std::size_t distinct_jobs = 0;       ///< distinct execution files
  std::size_t resubmitted_jobs = 0;    ///< exec files submitted more than once
  std::size_t users = 0;
  std::size_t projects = 0;
  TimePoint first_submit;
  TimePoint last_end;
};

/// An in-memory job log: records sorted by start time, plus the string
/// tables for execution files, users and projects. A log remembers the
/// machine its partitions were parsed against (default: reference BG/P).
class JobLog {
 public:
  JobLog() = default;
  explicit JobLog(const machine::MachineModel& machine) : machine_(&machine) {}

  /// The machine this log's partitions belong to.
  const machine::MachineModel& machine() const { return *machine_; }

  /// Intern an execution-file path, returning its ExecId.
  ExecId intern_exec(const std::string& path);
  /// Intern a user name.
  UserId intern_user(const std::string& name);
  /// Intern a project name.
  ProjectId intern_project(const std::string& name);

  void append(JobRecord job);

  /// Sort by start time; must be called before queries.
  void finalize();

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const JobRecord& operator[](std::size_t i) const { return jobs_[i]; }
  const std::vector<JobRecord>& jobs() const { return jobs_; }
  auto begin() const { return jobs_.begin(); }
  auto end() const { return jobs_.end(); }

  const std::vector<std::string>& exec_files() const { return exec_files_; }
  const std::vector<std::string>& users() const { return users_; }
  const std::vector<std::string>& projects() const { return projects_; }

  /// Indices of jobs running at time `t` whose partition covers `loc`.
  /// O(log n + k) using the start-time ordering and a max-end prefix.
  std::vector<std::size_t> running_at(TimePoint t, const bgp::Location& loc) const;

  /// Indices of jobs running at `t` on any midplane of `part`.
  std::vector<std::size_t> running_at(TimePoint t, const bgp::Partition& part) const;

  /// Indices of all jobs whose [start, end) intersects [begin, end), in
  /// start order.
  std::vector<std::size_t> overlapping(TimePoint begin, TimePoint end) const;

  /// Job indices ordered by (end_time, index). Maintained by finalize() so
  /// streaming consumers can walk terminations without re-sorting per run.
  const std::vector<std::size_t>& by_end_time() const;

  /// Per-midplane interval index over the jobs, maintained by finalize().
  /// The matching hot loop slices it instead of scanning every in-window job.
  const IntervalIndex& interval_index() const;

  JobLogSummary summary() const;

  /// CSV with the Table III column set:
  /// JOB_ID,EXEC_FILE,USER,PROJECT,QUEUE_TIME,START_TIME,END_TIME,LOCATION,EXIT
  void write_csv(std::ostream& out) const;

  /// Load a job CSV. Strict mode (the default) throws ParseError on the
  /// first malformed byte; lenient mode skips-and-counts malformed rows into
  /// `report` and resynchronizes at the next row boundary. With a `sink`,
  /// an "ingest.job_csv" stage sample plus per-reason malformed counters are
  /// recorded.
  /// Partition names are validated against `machine`'s partition algebra;
  /// the returned log is stamped with that model.
  static JobLog read_csv(std::istream& in, ParseMode mode = ParseMode::Strict,
                         IngestReport* report = nullptr,
                         InstrumentationSink* sink = nullptr,
                         const machine::MachineModel& machine = machine::bgp_model());

 private:
  template <typename Pred>
  std::vector<std::size_t> running_matching(TimePoint t, Pred pred) const;

  const machine::MachineModel* machine_ = &machine::bgp_model();
  std::vector<JobRecord> jobs_;
  std::vector<std::string> exec_files_;
  std::vector<std::string> users_;
  std::vector<std::string> projects_;
  std::unordered_map<std::string, std::int32_t> exec_index_;
  std::unordered_map<std::string, std::int32_t> user_index_;
  std::unordered_map<std::string, std::int32_t> project_index_;
  std::vector<TimePoint> max_end_prefix_;  ///< running max of end_time by start order
  std::vector<std::size_t> by_end_;        ///< indices sorted by (end_time, index)
  IntervalIndex interval_;                 ///< per-midplane buckets over jobs_
  bool finalized_ = false;
};

}  // namespace coral::joblog
