#pragma once

#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Anonymize a job log for public release (the paper released the Intrepid
/// logs through the Parallel Workloads Archive / USENIX CFDR with exactly
/// this kind of scrubbing): execution-file paths, user names and project
/// names are replaced by stable pseudonyms ("app_0001", "user_0001",
/// "project_0001"), keyed by first appearance in *submission order* so
/// repeated releases of the same log anonymize identically. Times,
/// locations, sizes and exit codes — everything the co-analysis uses — are
/// preserved bit-for-bit.
JobLog anonymize(const JobLog& log);

}  // namespace coral::joblog
