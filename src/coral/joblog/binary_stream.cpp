#include "coral/joblog/binary_stream.hpp"

#include <cstring>

#include "coral/common/error.hpp"
#include "coral/common/lz.hpp"
#include "coral/common/varint.hpp"

namespace coral::joblog {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

}  // namespace

std::vector<std::string> parse_job_table(bin::PayloadCursor& cur) {
  const auto count = cur.get<std::uint32_t>();
  if (count > 10'000'000) throw ParseError("implausible table size in binary job log");
  std::vector<std::string> table;
  table.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto len = cur.get<std::uint16_t>();
    table.push_back(cur.get_string(len));
  }
  return table;
}

void encode_job_column_block(std::string& payload, const JobLog& log, std::size_t base,
                             std::size_t n, bool compress, std::string& raw) {
  bin::ZoneMap zm;
  raw.clear();
  // Column order is the decode order below. Job ids and start times are
  // near-monotone, so both delta-code; queue and end are stored relative to
  // the record's own start (wait and duration — small, dense varints).
  std::int64_t prev = 0;
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint_signed(raw, log[i].job_id - prev);
    prev = log[i].job_id;
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint(raw, static_cast<std::uint64_t>(log[i].exec_id));
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint(raw, static_cast<std::uint64_t>(log[i].user_id));
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint(raw, static_cast<std::uint64_t>(log[i].project_id));
  }
  prev = 0;
  for (std::size_t i = base; i < base + n; ++i) {
    const std::int64_t start = log[i].start_time.usec();
    bin::put_varint_signed(raw, start - prev);
    prev = start;
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint_signed(raw, log[i].start_time.usec() - log[i].queue_time.usec());
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint_signed(raw, log[i].end_time.usec() - log[i].start_time.usec());
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint(raw, static_cast<std::uint64_t>(log[i].partition.first_midplane()));
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint(raw, static_cast<std::uint64_t>(log[i].partition.midplane_count()));
  }
  for (std::size_t i = base; i < base + n; ++i) {
    bin::put_varint_signed(raw, log[i].exit_code);
  }
  // Zone map: time covers the whole job lifetime, the bitmap folds every
  // midplane of the partition, and the key range carries the plain
  // [min first, max last] midplane ids (see zonemap.hpp).
  for (std::size_t i = base; i < base + n; ++i) {
    const JobRecord& j = log[i];
    zm.add_time(j.start_time.usec());
    zm.add_time(j.end_time.usec());
    const int first = j.partition.first_midplane();
    const int count = j.partition.midplane_count();
    zm.add_key(static_cast<std::uint32_t>(first));
    zm.add_key(static_cast<std::uint32_t>(first + count - 1));
    for (int k = 0; k < count; ++k) zm.add_midplane(first + k);
  }
  payload.push_back(kJobColumnTag);
  append_u32(payload, static_cast<std::uint32_t>(n));
  bin::append_zone_map(payload, zm);
  bin::append_column_body(payload, raw, compress);
}

void JobStreamDecoder::intern_tables() {
  // First record block: freeze whatever metadata survived. In an intact
  // file every table precedes the records, so strict mode can insist on
  // all three.
  if (mode_ == ParseMode::Strict && (!execs_ || !users_ || !projects_)) {
    throw ParseError("records before string tables in binary job log");
  }
  if (execs_) {
    for (const auto& s : *execs_) log_.intern_exec(s);
  }
  if (users_) {
    for (const auto& s : *users_) log_.intern_user(s);
  }
  if (projects_) {
    for (const auto& s : *projects_) log_.intern_project(s);
  }
  interned_ = true;
}

void JobStreamDecoder::emit_job(std::int64_t job_id, std::int64_t exec,
                                std::int64_t user, std::int64_t project,
                                std::int64_t queue_usec, std::int64_t start_usec,
                                std::int64_t end_usec, std::int64_t first_midplane,
                                std::int64_t midplane_count, std::int64_t exit_code,
                                std::uint64_t rec_offset) {
  const std::size_t n_execs = execs_ ? execs_->size() : 0;
  const std::size_t n_users = users_ ? users_->size() : 0;
  const std::size_t n_projects = projects_ ? projects_->size() : 0;
  if (exec < 0 || static_cast<std::uint64_t>(exec) >= n_execs || user < 0 ||
      static_cast<std::uint64_t>(user) >= n_users || project < 0 ||
      static_cast<std::uint64_t>(project) >= n_projects) {
    if (mode_ == ParseMode::Strict) {
      throw ParseError("bad table index in binary job log at byte offset " +
                       std::to_string(rec_offset));
    }
    record_rep_.add_malformed(IngestReason::BadRecord, rec_offset, "",
                              "string-table index out of range");
    return;
  }
  if (mode_ == ParseMode::Lenient && end_usec < start_usec) {
    record_rep_.add_malformed(IngestReason::BadRecord, rec_offset, "",
                              "job ends before it starts");
    return;
  }
  if (first_midplane != static_cast<int>(first_midplane) ||
      midplane_count != static_cast<int>(midplane_count) ||
      !machine_->is_legal_partition(static_cast<int>(first_midplane),
                                    static_cast<int>(midplane_count))) {
    // Same diagnostic the validating bgp::Partition constructor threw
    // before partition legality became a model question.
    const std::string what = "illegal partition: first midplane " +
                             std::to_string(first_midplane) + ", size " +
                             std::to_string(midplane_count);
    if (mode_ == ParseMode::Strict) throw InvalidArgument(what);
    record_rep_.add_malformed(IngestReason::BadLocation, rec_offset, "", what);
    return;
  }
  if (filter_ != nullptr && !(filter_->match_span(start_usec, end_usec) &&
                              filter_->match_midplane_range(
                                  static_cast<int>(first_midplane),
                                  static_cast<int>(midplane_count)))) {
    // Exact-filtered jobs are valid — they count as ok so accounting is
    // query-independent; they just do not land in the log.
    record_rep_.add_ok();
    return;
  }
  JobRecord j;
  j.job_id = job_id;
  j.exec_id = static_cast<ExecId>(exec);
  j.user_id = static_cast<UserId>(user);
  j.project_id = static_cast<ProjectId>(project);
  j.queue_time = TimePoint(queue_usec);
  j.start_time = TimePoint(start_usec);
  j.end_time = TimePoint(end_usec);
  j.exit_code = static_cast<int>(exit_code);
  j.partition = bgp::Partition::unchecked(static_cast<int>(first_midplane),
                                          static_cast<int>(midplane_count));
  log_.append(j);
  record_rep_.add_ok();
}

void JobStreamDecoder::decode_records(bin::PayloadCursor& cur) {
  if (!interned_) intern_tables();
  const auto n = cur.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t rec_offset = cur.offset();
    PackedJob rec;
    cur.read(&rec, sizeof rec);
    ++attempted_;
    emit_job(rec.job_id, rec.exec, rec.user, rec.project, rec.queue_usec,
             rec.start_usec, rec.end_usec, rec.first_midplane, rec.midplane_count,
             rec.exit_code, rec_offset);
  }
}

void JobStreamDecoder::decode_columns(bin::PayloadCursor& cur) {
  const std::uint64_t block_at = cur.offset();
  const auto n = cur.get<std::uint32_t>();
  bin::ZoneMap zm;
  {
    const std::string_view zb = cur.take(bin::kZoneMapBytes);
    std::size_t pos = 0;
    bin::read_zone_map(zb, pos, zm);
  }
  ++blocks_.total;
  if (filter_ != nullptr && !filter_->may_match(zm)) {
    // Zone-rejected: the CRC already vouched for the count field, so the
    // declared records feed `attempted` without decoding — the strict total
    // check and the lenient top-up stay exact under pushdown.
    attempted_ += n;
    ++blocks_.skipped;
    return;
  }
  const auto codec = cur.get<std::uint8_t>();
  const auto raw_size = cur.get<std::uint32_t>();
  if (raw_size > bin::kMaxBlockPayload) {
    throw ParseError("implausible column block size in binary job log at byte offset " +
                     std::to_string(block_at));
  }
  std::string_view body;
  if (codec == bin::kCodecRaw) {
    if (cur.remaining() != raw_size) {
      throw ParseError("column block size mismatch in binary job log at byte offset " +
                       std::to_string(block_at));
    }
    body = cur.take(raw_size);
  } else if (codec == bin::kCodecLz) {
    scratch_.resize(raw_size);
    const std::string_view comp = cur.take(cur.remaining());
    if (!bin::lz::decompress(comp, scratch_.data(), raw_size)) {
      throw ParseError("corrupt compressed block in binary job log at byte offset " +
                       std::to_string(block_at));
    }
    body = scratch_;
  } else {
    throw ParseError("unknown codec in binary job log at byte offset " +
                     std::to_string(block_at));
  }
  // All-or-nothing column decode, like the RAS blocks: a damaged body loses
  // the whole block to the top-up, never a prefix of it. Ten varint columns
  // of at least one byte each bound the count.
  if (std::uint64_t{n} * 10 > body.size()) {
    throw ParseError("corrupt column block in binary job log at byte offset " +
                     std::to_string(block_at));
  }
  const auto bad_block = [&]() -> ParseError {
    return ParseError("corrupt column block in binary job log at byte offset " +
                      std::to_string(block_at));
  };
  std::vector<std::int64_t> ids(n), starts(n), waits(n), durs(n);
  std::vector<std::uint64_t> execs(n), users(n), projs(n), firsts(n), counts(n);
  std::vector<std::int64_t> exits(n);
  std::size_t pos = 0;
  std::int64_t prev = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t d = 0;
    if (!bin::get_varint_signed(body, pos, d)) throw bad_block();
    prev += d;
    ids[i] = prev;
  }
  const auto read_u32_column = [&](std::vector<std::uint64_t>& col) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t v = 0;
      if (!bin::get_varint(body, pos, v) || v > UINT32_MAX) throw bad_block();
      col[i] = v;
    }
  };
  read_u32_column(execs);
  read_u32_column(users);
  read_u32_column(projs);
  prev = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t d = 0;
    if (!bin::get_varint_signed(body, pos, d)) throw bad_block();
    prev += d;
    starts[i] = prev;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!bin::get_varint_signed(body, pos, waits[i])) throw bad_block();
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!bin::get_varint_signed(body, pos, durs[i])) throw bad_block();
  }
  read_u32_column(firsts);
  read_u32_column(counts);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!bin::get_varint_signed(body, pos, exits[i])) throw bad_block();
  }
  // Writer-canonical shape: the columns end exactly at the body's end.
  if (pos != body.size()) throw bad_block();
  ++blocks_.decoded;

  if (!interned_) intern_tables();
  attempted_ += n;
  for (std::uint32_t i = 0; i < n; ++i) {
    emit_job(ids[i], static_cast<std::int64_t>(execs[i]),
             static_cast<std::int64_t>(users[i]), static_cast<std::int64_t>(projs[i]),
             starts[i] - waits[i], starts[i], starts[i] + durs[i],
             static_cast<std::int64_t>(firsts[i]), static_cast<std::int64_t>(counts[i]),
             exits[i], block_at);
  }
}

void JobStreamDecoder::on_payload(std::string_view payload,
                                  std::uint64_t payload_offset) {
  bin::PayloadCursor cur(payload, payload_offset, "binary job log");
  try {
    const char tag = cur.get<char>();
    if (tag == kJobHeaderTag) {
      const auto n = cur.get<std::uint64_t>();
      if (!total_) total_ = n;
      return;
    }
    if (tag == kJobExecTag || tag == kJobUserTag || tag == kJobProjectTag) {
      auto& slot = tag == kJobExecTag ? execs_ : tag == kJobUserTag ? users_ : projects_;
      if (!slot) slot = parse_job_table(cur);
      return;
    }
    if (tag == kJobMetaTag) {
      bin::StoreMeta m = bin::parse_store_meta(cur);
      if (m.machine != machine_->name() && mode_ == ParseMode::Strict) {
        throw ParseError("binary job log written for machine '" + m.machine +
                         "' but read with model '" + std::string(machine_->name()) + "'");
      }
      if (!meta_) meta_ = std::move(m);
      return;
    }
    if (tag == kJobSegmentTag) {
      // Footers index blocks the stream delivers anyway; validate the shape
      // and move on (the one-shot readers use them for zero-touch skips).
      std::vector<bin::SegmentEntry> entries;
      bin::parse_segment_footer(cur, entries);
      return;
    }
    if (tag == kJobColumnTag) {
      decode_columns(cur);
      return;
    }
    if (tag != kJobRecordTag) {
      if (mode_ == ParseMode::Strict) {
        throw ParseError("unknown block tag in binary job log at byte offset " +
                         std::to_string(payload_offset - bin::kBlockHeaderBytes));
      }
      return;
    }
    ++blocks_.total;
    decode_records(cur);
    ++blocks_.decoded;
  } catch (const Error&) {
    if (mode_ == ParseMode::Strict) throw;
    // CRC-valid but unparseable payload: skip; the lost-record top-up in
    // finish() accounts for its records.
  }
}

JobLog JobStreamDecoder::finish(IngestReport& rep, const IngestReport& frame_damage) {
  rep.merge(record_rep_);
  record_rep_ = IngestReport{};
  if (!interned_) {
    // No record blocks (empty log): still preserve the string tables so a
    // round trip keeps interned names.
    if (execs_) {
      for (const auto& s : *execs_) log_.intern_exec(s);
    }
    if (users_) {
      for (const auto& s : *users_) log_.intern_user(s);
    }
    if (projects_) {
      for (const auto& s : *projects_) log_.intern_project(s);
    }
  }

  if (mode_ == ParseMode::Strict) {
    if (!total_) throw ParseError("missing header block in binary job log");
    if (attempted_ != *total_) {
      throw ParseError("binary job log record count mismatch: expected " +
                       std::to_string(*total_) + ", got " + std::to_string(attempted_));
    }
  } else {
    const std::uint64_t expected = total_ ? *total_ : attempted_;
    if (expected > attempted_) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted_);
    }
    rep.adopt_samples(frame_damage);
  }

  log_.finalize();
  return std::move(log_);
}

}  // namespace coral::joblog
