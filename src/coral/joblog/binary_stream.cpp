#include "coral/joblog/binary_stream.hpp"

#include "coral/common/error.hpp"

namespace coral::joblog {

std::vector<std::string> parse_job_table(bin::PayloadCursor& cur) {
  const auto count = cur.get<std::uint32_t>();
  if (count > 10'000'000) throw ParseError("implausible table size in binary job log");
  std::vector<std::string> table;
  table.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto len = cur.get<std::uint16_t>();
    table.push_back(cur.get_string(len));
  }
  return table;
}

void JobStreamDecoder::decode_records(bin::PayloadCursor& cur) {
  if (!interned_) {
    // First record block: freeze whatever metadata survived. In an intact
    // file every table precedes the records, so strict mode can insist on
    // all three.
    if (mode_ == ParseMode::Strict && (!execs_ || !users_ || !projects_)) {
      throw ParseError("records before string tables in binary job log");
    }
    if (execs_) {
      for (const auto& s : *execs_) log_.intern_exec(s);
    }
    if (users_) {
      for (const auto& s : *users_) log_.intern_user(s);
    }
    if (projects_) {
      for (const auto& s : *projects_) log_.intern_project(s);
    }
    interned_ = true;
  }
  const auto n = cur.get<std::uint32_t>();
  const std::size_t n_execs = execs_ ? execs_->size() : 0;
  const std::size_t n_users = users_ ? users_->size() : 0;
  const std::size_t n_projects = projects_ ? projects_->size() : 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t rec_offset = cur.offset();
    PackedJob rec;
    cur.read(&rec, sizeof rec);
    ++attempted_;
    if (rec.exec < 0 || static_cast<std::size_t>(rec.exec) >= n_execs ||
        rec.user < 0 || static_cast<std::size_t>(rec.user) >= n_users ||
        rec.project < 0 || static_cast<std::size_t>(rec.project) >= n_projects) {
      if (mode_ == ParseMode::Strict) {
        throw ParseError("bad table index in binary job log at byte offset " +
                         std::to_string(rec_offset));
      }
      record_rep_.add_malformed(IngestReason::BadRecord, rec_offset, "",
                                "string-table index out of range");
      continue;
    }
    if (mode_ == ParseMode::Lenient && rec.end_usec < rec.start_usec) {
      record_rep_.add_malformed(IngestReason::BadRecord, rec_offset, "",
                                "job ends before it starts");
      continue;
    }
    JobRecord j;
    j.job_id = rec.job_id;
    j.exec_id = rec.exec;
    j.user_id = rec.user;
    j.project_id = rec.project;
    j.queue_time = TimePoint(rec.queue_usec);
    j.start_time = TimePoint(rec.start_usec);
    j.end_time = TimePoint(rec.end_usec);
    j.exit_code = rec.exit_code;
    if (!machine_->is_legal_partition(rec.first_midplane, rec.midplane_count)) {
      // Same diagnostic the validating bgp::Partition constructor threw
      // before partition legality became a model question.
      const std::string what = "illegal partition: first midplane " +
                               std::to_string(rec.first_midplane) + ", size " +
                               std::to_string(rec.midplane_count);
      if (mode_ == ParseMode::Strict) throw InvalidArgument(what);
      record_rep_.add_malformed(IngestReason::BadLocation, rec_offset, "", what);
      continue;
    }
    j.partition = bgp::Partition::unchecked(rec.first_midplane, rec.midplane_count);
    log_.append(j);
    record_rep_.add_ok();
  }
}

void JobStreamDecoder::on_payload(std::string_view payload,
                                  std::uint64_t payload_offset) {
  bin::PayloadCursor cur(payload, payload_offset, "binary job log");
  try {
    const char tag = cur.get<char>();
    if (tag == kJobHeaderTag) {
      const auto n = cur.get<std::uint64_t>();
      if (!total_) total_ = n;
      return;
    }
    if (tag == kJobExecTag || tag == kJobUserTag || tag == kJobProjectTag) {
      auto& slot = tag == kJobExecTag ? execs_ : tag == kJobUserTag ? users_ : projects_;
      if (!slot) slot = parse_job_table(cur);
      return;
    }
    if (tag != kJobRecordTag) {
      if (mode_ == ParseMode::Strict) {
        throw ParseError("unknown block tag in binary job log at byte offset " +
                         std::to_string(payload_offset - bin::kBlockHeaderBytes));
      }
      return;
    }
    decode_records(cur);
  } catch (const Error&) {
    if (mode_ == ParseMode::Strict) throw;
    // CRC-valid but unparseable payload: skip; the lost-record top-up in
    // finish() accounts for its records.
  }
}

JobLog JobStreamDecoder::finish(IngestReport& rep, const IngestReport& frame_damage) {
  rep.merge(record_rep_);
  record_rep_ = IngestReport{};
  if (!interned_) {
    // No record blocks (empty log): still preserve the string tables so a
    // round trip keeps interned names.
    if (execs_) {
      for (const auto& s : *execs_) log_.intern_exec(s);
    }
    if (users_) {
      for (const auto& s : *users_) log_.intern_user(s);
    }
    if (projects_) {
      for (const auto& s : *projects_) log_.intern_project(s);
    }
  }

  if (mode_ == ParseMode::Strict) {
    if (!total_) throw ParseError("missing header block in binary job log");
    if (attempted_ != *total_) {
      throw ParseError("binary job log record count mismatch: expected " +
                       std::to_string(*total_) + ", got " + std::to_string(attempted_));
    }
  } else {
    const std::uint64_t expected = total_ ? *total_ : attempted_;
    if (expected > attempted_) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted_);
    }
    rep.adopt_samples(frame_damage);
  }

  log_.finalize();
  return std::move(log_);
}

}  // namespace coral::joblog
