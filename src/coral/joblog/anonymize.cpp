#include "coral/joblog/anonymize.hpp"

#include <unordered_map>

#include "coral/common/strings.hpp"

namespace coral::joblog {

JobLog anonymize(const JobLog& log) {
  JobLog out;
  std::unordered_map<std::int32_t, std::int32_t> exec_map, user_map, project_map;

  for (const JobRecord& job : log) {
    JobRecord copy = job;

    auto remap = [&out](std::unordered_map<std::int32_t, std::int32_t>& map,
                        std::int32_t old_id, const char* prefix,
                        auto intern) -> std::int32_t {
      const auto it = map.find(old_id);
      if (it != map.end()) return it->second;
      const auto fresh = static_cast<std::int32_t>(map.size() + 1);
      const std::int32_t id = (out.*intern)(strformat("%s_%04d", prefix, fresh));
      map.emplace(old_id, id);
      return id;
    };

    copy.exec_id = remap(exec_map, job.exec_id, "app", &JobLog::intern_exec);
    copy.user_id = remap(user_map, job.user_id, "user", &JobLog::intern_user);
    copy.project_id = remap(project_map, job.project_id, "project", &JobLog::intern_project);
    out.append(copy);
  }
  out.finalize();
  return out;
}

}  // namespace coral::joblog
