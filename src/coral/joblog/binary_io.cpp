#include "coral/joblog/binary_io.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "coral/common/error.hpp"

namespace coral::joblog {

namespace {

constexpr char kMagic[4] = {'C', 'J', 'O', 'B'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw ParseError("truncated binary job log");
  return value;
}

void write_table(std::ostream& out, const std::vector<std::string>& table) {
  put(out, static_cast<std::uint32_t>(table.size()));
  for (const std::string& s : table) {
    put(out, static_cast<std::uint16_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
}

std::vector<std::string> read_table(std::istream& in) {
  const auto count = get<std::uint32_t>(in);
  if (count > 10'000'000) throw ParseError("implausible table size in binary job log");
  std::vector<std::string> table(count);
  for (auto& s : table) {
    const auto len = get<std::uint16_t>(in);
    s.resize(len);
    in.read(s.data(), len);
    if (!in) throw ParseError("truncated string table in binary job log");
  }
  return table;
}

struct PackedJob {
  std::int64_t job_id;
  std::int32_t exec;
  std::int32_t user;
  std::int32_t project;
  std::int32_t first_midplane;
  std::int64_t queue_usec;
  std::int64_t start_usec;
  std::int64_t end_usec;
  std::int32_t midplane_count;
  std::int32_t exit_code;
};
static_assert(sizeof(PackedJob) == 56);

}  // namespace

void write_binary(std::ostream& out, const JobLog& log) {
  out.write(kMagic, sizeof kMagic);
  put(out, kVersion);
  write_table(out, log.exec_files());
  write_table(out, log.users());
  write_table(out, log.projects());
  put(out, static_cast<std::uint64_t>(log.size()));
  for (const JobRecord& j : log) {
    PackedJob rec{};
    rec.job_id = j.job_id;
    rec.exec = j.exec_id;
    rec.user = j.user_id;
    rec.project = j.project_id;
    rec.queue_usec = j.queue_time.usec();
    rec.start_usec = j.start_time.usec();
    rec.end_usec = j.end_time.usec();
    rec.first_midplane = j.partition.first_midplane();
    rec.midplane_count = j.partition.midplane_count();
    rec.exit_code = j.exit_code;
    out.write(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
}

JobLog read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("not a binary job log (bad magic)");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kVersion) {
    throw ParseError("unsupported binary job log version " + std::to_string(version));
  }
  const auto execs = read_table(in);
  const auto users = read_table(in);
  const auto projects = read_table(in);

  JobLog log;
  for (const auto& s : execs) log.intern_exec(s);
  for (const auto& s : users) log.intern_user(s);
  for (const auto& s : projects) log.intern_project(s);

  const auto count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedJob rec{};
    in.read(reinterpret_cast<char*>(&rec), sizeof rec);
    if (!in) throw ParseError("truncated records in binary job log");
    if (rec.exec < 0 || static_cast<std::size_t>(rec.exec) >= execs.size() ||
        rec.user < 0 || static_cast<std::size_t>(rec.user) >= users.size() ||
        rec.project < 0 || static_cast<std::size_t>(rec.project) >= projects.size()) {
      throw ParseError("bad table index in binary job log");
    }
    JobRecord j;
    j.job_id = rec.job_id;
    j.exec_id = rec.exec;
    j.user_id = rec.user;
    j.project_id = rec.project;
    j.queue_time = TimePoint(rec.queue_usec);
    j.start_time = TimePoint(rec.start_usec);
    j.end_time = TimePoint(rec.end_usec);
    j.partition = bgp::Partition(rec.first_midplane, rec.midplane_count);
    j.exit_code = rec.exit_code;
    log.append(j);
  }
  log.finalize();
  return log;
}

}  // namespace coral::joblog
