#include "coral/joblog/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/common/storev3.hpp"
#include "coral/joblog/binary_stream.hpp"
#include "coral/obs/obs.hpp"

namespace coral::joblog {

namespace {

template <class T>
void append_raw(std::string& out, T v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof buf);
}

void write_table(bin::BlockWriter& w, char tag, const std::vector<std::string>& table) {
  w.put(tag);
  w.put(static_cast<std::uint32_t>(table.size()));
  for (const std::string& s : table) w.put_string(s);
  w.flush();
}

/// The same bytes write_table frames, as a payload string — the v3 head is
/// assembled in memory so segment-footer offsets can be tracked.
std::string table_payload(char tag, const std::vector<std::string>& table) {
  std::string payload;
  payload.push_back(tag);
  append_raw(payload, static_cast<std::uint32_t>(table.size()));
  for (const std::string& s : table) {
    append_raw(payload, static_cast<std::uint16_t>(s.size()));
    payload.append(s);
  }
  return payload;
}

void write_v2(std::ostream& out, const JobLog& log) {
  out.write(kJobMagic, sizeof kJobMagic);
  out.write(reinterpret_cast<const char*>(&kJobVersion), sizeof kJobVersion);

  bin::BlockWriter w(out);
  // Metadata blocks are all written twice: losing any single frame must not
  // orphan the record blocks that follow.
  for (int copy = 0; copy < 2; ++copy) {
    w.put(kJobHeaderTag);
    w.put(static_cast<std::uint64_t>(log.size()));
    w.flush();
    write_table(w, kJobExecTag, log.exec_files());
    write_table(w, kJobUserTag, log.users());
    write_table(w, kJobProjectTag, log.projects());
  }

  for (std::size_t base = 0; base < log.size(); base += kJobRecordsPerBlock) {
    const std::size_t n = std::min(kJobRecordsPerBlock, log.size() - base);
    w.put(kJobRecordTag);
    w.put(static_cast<std::uint32_t>(n));
    for (std::size_t i = base; i < base + n; ++i) {
      const JobRecord& j = log[i];
      PackedJob rec;
      rec.job_id = j.job_id;
      rec.exec = j.exec_id;
      rec.user = j.user_id;
      rec.project = j.project_id;
      rec.queue_usec = j.queue_time.usec();
      rec.start_usec = j.start_time.usec();
      rec.end_usec = j.end_time.usec();
      rec.first_midplane = j.partition.first_midplane();
      rec.midplane_count = j.partition.midplane_count();
      rec.exit_code = j.exit_code;
      w.append(&rec, sizeof rec);
    }
    w.flush();
  }
}

void write_v3(std::ostream& out, const JobLog& log, const WriteOptions& opts) {
  const machine::MachineModel& machine = log.machine();
  out.write(kJobMagic, sizeof kJobMagic);
  out.write(reinterpret_cast<const char*>(&kJobVersion3), sizeof kJobVersion3);

  std::string meta_payload;
  meta_payload.push_back(kJobMetaTag);
  bin::append_store_meta(
      meta_payload,
      bin::StoreMeta{std::string(machine.name()), std::string(kJobSchemaV3),
                     static_cast<std::uint32_t>(kJobRecordsPerBlock),
                     opts.compress ? bin::kStoreFlagCompressed : std::uint8_t{0}});
  std::string header_payload;
  header_payload.push_back(kJobHeaderTag);
  append_raw(header_payload, static_cast<std::uint64_t>(log.size()));

  // Metadata blocks are all written twice, exactly as in v2: losing any
  // single frame must not orphan the record blocks that follow.
  std::string head;
  bin::append_frame(head, meta_payload);
  bin::append_frame(head, meta_payload);
  bin::append_frame(head, header_payload);
  bin::append_frame(head, header_payload);
  for (const auto& [tag, table] :
       {std::pair<char, const std::vector<std::string>&>{kJobExecTag, log.exec_files()},
        {kJobUserTag, log.users()},
        {kJobProjectTag, log.projects()}}) {
    const std::string payload = table_payload(tag, table);
    bin::append_frame(head, payload);
    bin::append_frame(head, payload);
  }
  out.write(head.data(), static_cast<std::streamsize>(head.size()));

  // Offsets in segment footers count from the end of the 8-byte file
  // header, like every other offset the readers report.
  std::uint64_t offset = head.size();
  const std::size_t bps = std::max<std::size_t>(1, opts.blocks_per_segment);
  std::vector<bin::SegmentEntry> seg;
  seg.reserve(bps);
  const auto flush_segment = [&] {
    std::string footer;
    footer.push_back(kJobSegmentTag);
    bin::append_segment_footer(footer, seg);
    std::string framed_footer;
    bin::append_frame(framed_footer, footer);
    out.write(framed_footer.data(), static_cast<std::streamsize>(framed_footer.size()));
    offset += framed_footer.size();
    seg.clear();
  };

  std::string payload, raw, framed;
  for (std::size_t base = 0; base < log.size(); base += kJobRecordsPerBlock) {
    const std::size_t n = std::min(kJobRecordsPerBlock, log.size() - base);
    payload.clear();
    encode_job_column_block(payload, log, base, n, opts.compress, raw);
    framed.clear();
    bin::append_frame(framed, payload);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    // The footer repeats the block's count and zone map; both sit at fixed
    // offsets in the payload just framed.
    bin::SegmentEntry entry;
    entry.offset = offset;
    std::uint32_t count = 0;
    std::memcpy(&count, framed.data() + bin::kBlockHeaderBytes + 1, sizeof count);
    entry.count = count;
    std::size_t pos = 0;
    bin::read_zone_map(
        std::string_view(framed).substr(bin::kBlockHeaderBytes + 1 + sizeof count), pos,
        entry.zone);
    seg.push_back(entry);
    offset += framed.size();
    if (seg.size() >= bps) flush_segment();
  }
  if (!seg.empty()) flush_segment();
}

}  // namespace

void write_binary(std::ostream& out, const JobLog& log) { write_v2(out, log); }

void write_binary(std::ostream& out, const JobLog& log, const WriteOptions& opts) {
  if (opts.version == kJobVersion) {
    write_v2(out, log);
  } else if (opts.version == kJobVersion3) {
    write_v3(out, log, opts);
  } else {
    throw InvalidArgument("unsupported binary job log version " +
                          std::to_string(opts.version));
  }
}

JobLog read_binary(std::istream& in, const ReadOptions& opts) {
  IngestReport local;
  IngestReport& rep = opts.report != nullptr ? *opts.report : local;
  const machine::MachineModel& machine =
      opts.machine != nullptr ? *opts.machine : machine::bgp_model();
  StageTimer timer(opts.sink, "ingest.job_binary");

  char header[8];
  in.read(header, sizeof header);
  if (opts.mode == ParseMode::Strict) {
    if (!in || std::memcmp(header, kJobMagic, sizeof kJobMagic) != 0) {
      throw ParseError("not a binary job log (bad magic)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, header + sizeof kJobMagic, sizeof version);
    if (version != kJobVersion && version != kJobVersion3) {
      throw ParseError("unsupported binary job log version " + std::to_string(version));
    }
  }

  std::optional<bin::ZoneFilter> filter_store;
  if (!opts.predicate.unconstrained()) {
    filter_store.emplace(opts.predicate, machine.codec(), machine.midplane_count());
  }

  // The recovering BlockReader feeds the shared incremental decoder — the
  // same class the fleet session/wire path runs, so network ingest is
  // byte-identical to this offline read by construction.
  IngestReport frames;
  bin::BlockReader blocks(in, opts.mode, &frames, "binary job log");
  JobStreamDecoder decoder(opts.mode, machine);
  if (filter_store) decoder.set_filter(&*filter_store);
  std::string payload;
  while (blocks.next(payload)) {
    decoder.on_payload(payload, blocks.block_offset() + bin::kBlockHeaderBytes);
  }
  const bin::BlockCounters counters = decoder.block_counters();
  JobLog log = decoder.finish(rep, frames);

  obs::Collector* col = obs::as_collector(opts.sink);
  CORAL_OBS_COUNT(col, "ingest.job_binary.blocks_total", counters.total);
  CORAL_OBS_COUNT(col, "ingest.job_binary.blocks_decoded", counters.decoded);
  CORAL_OBS_COUNT(col, "ingest.job_binary.blocks_skipped", counters.skipped);

  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(opts.sink, "ingest.job_binary");
  return log;
}

JobLog read_binary(std::istream& in, ParseMode mode, IngestReport* report,
                   InstrumentationSink* sink, const machine::MachineModel& machine) {
  ReadOptions opts;
  opts.mode = mode;
  opts.report = report;
  opts.sink = sink;
  opts.machine = &machine;
  return read_binary(in, opts);
}

}  // namespace coral::joblog
