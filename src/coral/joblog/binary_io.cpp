#include "coral/joblog/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"
#include "coral/joblog/binary_stream.hpp"

namespace coral::joblog {

namespace {

void write_table(bin::BlockWriter& w, char tag, const std::vector<std::string>& table) {
  w.put(tag);
  w.put(static_cast<std::uint32_t>(table.size()));
  for (const std::string& s : table) w.put_string(s);
  w.flush();
}

}  // namespace

void write_binary(std::ostream& out, const JobLog& log) {
  out.write(kJobMagic, sizeof kJobMagic);
  out.write(reinterpret_cast<const char*>(&kJobVersion), sizeof kJobVersion);

  bin::BlockWriter w(out);
  // Metadata blocks are all written twice: losing any single frame must not
  // orphan the record blocks that follow.
  for (int copy = 0; copy < 2; ++copy) {
    w.put(kJobHeaderTag);
    w.put(static_cast<std::uint64_t>(log.size()));
    w.flush();
    write_table(w, kJobExecTag, log.exec_files());
    write_table(w, kJobUserTag, log.users());
    write_table(w, kJobProjectTag, log.projects());
  }

  for (std::size_t base = 0; base < log.size(); base += kJobRecordsPerBlock) {
    const std::size_t n = std::min(kJobRecordsPerBlock, log.size() - base);
    w.put(kJobRecordTag);
    w.put(static_cast<std::uint32_t>(n));
    for (std::size_t i = base; i < base + n; ++i) {
      const JobRecord& j = log[i];
      PackedJob rec;
      rec.job_id = j.job_id;
      rec.exec = j.exec_id;
      rec.user = j.user_id;
      rec.project = j.project_id;
      rec.queue_usec = j.queue_time.usec();
      rec.start_usec = j.start_time.usec();
      rec.end_usec = j.end_time.usec();
      rec.first_midplane = j.partition.first_midplane();
      rec.midplane_count = j.partition.midplane_count();
      rec.exit_code = j.exit_code;
      w.append(&rec, sizeof rec);
    }
    w.flush();
  }
}

JobLog read_binary(std::istream& in, ParseMode mode, IngestReport* report,
                   InstrumentationSink* sink, const machine::MachineModel& machine) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.job_binary");

  char header[8];
  in.read(header, sizeof header);
  if (mode == ParseMode::Strict) {
    if (!in || std::memcmp(header, kJobMagic, sizeof kJobMagic) != 0) {
      throw ParseError("not a binary job log (bad magic)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, header + sizeof kJobMagic, sizeof version);
    if (version != kJobVersion) {
      throw ParseError("unsupported binary job log version " + std::to_string(version));
    }
  }

  // The recovering BlockReader feeds the shared incremental decoder — the
  // same class the fleet session/wire path runs, so network ingest is
  // byte-identical to this offline read by construction.
  IngestReport frames;
  bin::BlockReader blocks(in, mode, &frames, "binary job log");
  JobStreamDecoder decoder(mode, machine);
  std::string payload;
  while (blocks.next(payload)) {
    decoder.on_payload(payload, blocks.block_offset() + bin::kBlockHeaderBytes);
  }
  JobLog log = decoder.finish(rep, frames);

  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.job_binary");
  return log;
}

}  // namespace coral::joblog
