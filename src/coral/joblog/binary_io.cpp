#include "coral/joblog/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>

#include "coral/common/binary_frame.hpp"
#include "coral/common/error.hpp"
#include "coral/common/instrument.hpp"

namespace coral::joblog {

namespace {

constexpr char kMagic[4] = {'C', 'J', 'O', 'B'};
constexpr std::uint32_t kVersion = 2;
constexpr char kHeaderTag = 'H';
constexpr char kExecTag = 'X';
constexpr char kUserTag = 'U';
constexpr char kProjectTag = 'P';
constexpr char kRecordTag = 'R';
constexpr std::size_t kRecordsPerBlock = 64;

struct PackedJob {
  std::int64_t job_id = 0;
  std::int32_t exec = 0;
  std::int32_t user = 0;
  std::int32_t project = 0;
  std::int32_t first_midplane = 0;
  std::int64_t queue_usec = 0;
  std::int64_t start_usec = 0;
  std::int64_t end_usec = 0;
  std::int32_t midplane_count = 0;
  std::int32_t exit_code = 0;
};
static_assert(sizeof(PackedJob) == 56);

void write_table(bin::BlockWriter& w, char tag, const std::vector<std::string>& table) {
  w.put(tag);
  w.put(static_cast<std::uint32_t>(table.size()));
  for (const std::string& s : table) w.put_string(s);
  w.flush();
}

std::vector<std::string> parse_table(bin::PayloadCursor& cur) {
  const auto count = cur.get<std::uint32_t>();
  if (count > 10'000'000) throw ParseError("implausible table size in binary job log");
  std::vector<std::string> table;
  table.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto len = cur.get<std::uint16_t>();
    table.push_back(cur.get_string(len));
  }
  return table;
}

}  // namespace

void write_binary(std::ostream& out, const JobLog& log) {
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);

  bin::BlockWriter w(out);
  // Metadata blocks are all written twice: losing any single frame must not
  // orphan the record blocks that follow.
  for (int copy = 0; copy < 2; ++copy) {
    w.put(kHeaderTag);
    w.put(static_cast<std::uint64_t>(log.size()));
    w.flush();
    write_table(w, kExecTag, log.exec_files());
    write_table(w, kUserTag, log.users());
    write_table(w, kProjectTag, log.projects());
  }

  for (std::size_t base = 0; base < log.size(); base += kRecordsPerBlock) {
    const std::size_t n = std::min(kRecordsPerBlock, log.size() - base);
    w.put(kRecordTag);
    w.put(static_cast<std::uint32_t>(n));
    for (std::size_t i = base; i < base + n; ++i) {
      const JobRecord& j = log[i];
      PackedJob rec;
      rec.job_id = j.job_id;
      rec.exec = j.exec_id;
      rec.user = j.user_id;
      rec.project = j.project_id;
      rec.queue_usec = j.queue_time.usec();
      rec.start_usec = j.start_time.usec();
      rec.end_usec = j.end_time.usec();
      rec.first_midplane = j.partition.first_midplane();
      rec.midplane_count = j.partition.midplane_count();
      rec.exit_code = j.exit_code;
      w.append(&rec, sizeof rec);
    }
    w.flush();
  }
}

JobLog read_binary(std::istream& in, ParseMode mode, IngestReport* report,
                   InstrumentationSink* sink, const machine::MachineModel& machine) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  StageTimer timer(sink, "ingest.job_binary");

  char header[8];
  in.read(header, sizeof header);
  if (mode == ParseMode::Strict) {
    if (!in || std::memcmp(header, kMagic, sizeof kMagic) != 0) {
      throw ParseError("not a binary job log (bad magic)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, header + sizeof kMagic, sizeof version);
    if (version != kVersion) {
      throw ParseError("unsupported binary job log version " + std::to_string(version));
    }
  }

  IngestReport frames;
  bin::BlockReader blocks(in, mode, &frames, "binary job log");

  std::optional<std::uint64_t> total;
  std::optional<std::vector<std::string>> execs, users, projects;
  JobLog log(machine);
  bool interned = false;
  std::uint64_t attempted = 0;  // records decoded or individually rejected
  std::string payload;
  while (blocks.next(payload)) {
    bin::PayloadCursor cur(payload, blocks.block_offset() + bin::kBlockHeaderBytes,
                           "binary job log");
    try {
      const char tag = cur.get<char>();
      if (tag == kHeaderTag) {
        const auto n = cur.get<std::uint64_t>();
        if (!total) total = n;
        continue;
      }
      if (tag == kExecTag || tag == kUserTag || tag == kProjectTag) {
        auto& slot = tag == kExecTag ? execs : tag == kUserTag ? users : projects;
        if (!slot) slot = parse_table(cur);
        continue;
      }
      if (tag != kRecordTag) {
        if (mode == ParseMode::Strict) {
          throw ParseError("unknown block tag in binary job log at byte offset " +
                           std::to_string(blocks.block_offset()));
        }
        continue;
      }
      if (!interned) {
        // First record block: freeze whatever metadata survived. In an
        // intact file every table precedes the records, so strict mode can
        // insist on all three.
        if (mode == ParseMode::Strict && (!execs || !users || !projects)) {
          throw ParseError("records before string tables in binary job log");
        }
        if (execs) {
          for (const auto& s : *execs) log.intern_exec(s);
        }
        if (users) {
          for (const auto& s : *users) log.intern_user(s);
        }
        if (projects) {
          for (const auto& s : *projects) log.intern_project(s);
        }
        interned = true;
      }
      const auto n = cur.get<std::uint32_t>();
      const std::size_t n_execs = execs ? execs->size() : 0;
      const std::size_t n_users = users ? users->size() : 0;
      const std::size_t n_projects = projects ? projects->size() : 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t rec_offset = cur.offset();
        PackedJob rec;
        cur.read(&rec, sizeof rec);
        ++attempted;
        if (rec.exec < 0 || static_cast<std::size_t>(rec.exec) >= n_execs ||
            rec.user < 0 || static_cast<std::size_t>(rec.user) >= n_users ||
            rec.project < 0 || static_cast<std::size_t>(rec.project) >= n_projects) {
          if (mode == ParseMode::Strict) {
            throw ParseError("bad table index in binary job log at byte offset " +
                             std::to_string(rec_offset));
          }
          rep.add_malformed(IngestReason::BadRecord, rec_offset, "",
                            "string-table index out of range");
          continue;
        }
        if (mode == ParseMode::Lenient && rec.end_usec < rec.start_usec) {
          rep.add_malformed(IngestReason::BadRecord, rec_offset, "",
                            "job ends before it starts");
          continue;
        }
        JobRecord j;
        j.job_id = rec.job_id;
        j.exec_id = rec.exec;
        j.user_id = rec.user;
        j.project_id = rec.project;
        j.queue_time = TimePoint(rec.queue_usec);
        j.start_time = TimePoint(rec.start_usec);
        j.end_time = TimePoint(rec.end_usec);
        j.exit_code = rec.exit_code;
        if (!machine.is_legal_partition(rec.first_midplane, rec.midplane_count)) {
          // Same diagnostic the validating bgp::Partition constructor threw
          // before partition legality became a model question.
          const std::string what = "illegal partition: first midplane " +
                                   std::to_string(rec.first_midplane) + ", size " +
                                   std::to_string(rec.midplane_count);
          if (mode == ParseMode::Strict) throw InvalidArgument(what);
          rep.add_malformed(IngestReason::BadLocation, rec_offset, "", what);
          continue;
        }
        j.partition = bgp::Partition::unchecked(rec.first_midplane, rec.midplane_count);
        log.append(j);
        rep.add_ok();
      }
    } catch (const Error&) {
      if (mode == ParseMode::Strict) throw;
      // CRC-valid but unparseable payload: skip; the lost-record top-up
      // below accounts for its records.
    }
  }

  if (!interned) {
    // No record blocks (empty log): still preserve the string tables so a
    // round trip keeps interned names.
    if (execs) {
      for (const auto& s : *execs) log.intern_exec(s);
    }
    if (users) {
      for (const auto& s : *users) log.intern_user(s);
    }
    if (projects) {
      for (const auto& s : *projects) log.intern_project(s);
    }
  }

  if (mode == ParseMode::Strict) {
    if (!total) throw ParseError("missing header block in binary job log");
    if (attempted != *total) {
      throw ParseError("binary job log record count mismatch: expected " +
                       std::to_string(*total) + ", got " + std::to_string(attempted));
    }
  } else {
    const std::uint64_t expected = total ? *total : attempted;
    if (expected > attempted) {
      rep.add_malformed_bulk(IngestReason::BinaryFrame, expected - attempted);
    }
    rep.adopt_samples(frames);
  }

  log.finalize();
  timer.counts(rep.records_seen(), rep.records_ok());
  rep.report_malformed(sink, "ingest.job_binary");
  return log;
}

}  // namespace coral::joblog
