#pragma once

#include <cstdint>

#include "coral/bgp/partition.hpp"
#include "coral/common/time.hpp"

namespace coral::joblog {

/// Identifier of a *distinct job* (§III-B): jobs sharing an execution file
/// are one distinct job. Index into JobLog::exec_files().
using ExecId = std::int32_t;
using UserId = std::int32_t;
using ProjectId = std::int32_t;

/// One Cobalt job-log record (Table III of the paper).
///
/// The analysis side treats `end_time` + `partition` as the interruption
/// matching key; it never trusts `exit_code` (real job logs are unreliable
/// there), mirroring the paper's matching-by-time-and-location approach.
struct JobRecord {
  std::int64_t job_id = 0;
  ExecId exec_id = 0;
  UserId user_id = 0;
  ProjectId project_id = 0;
  TimePoint queue_time;  ///< when the job entered the wait queue
  TimePoint start_time;  ///< when it started running
  TimePoint end_time;    ///< when it exited (finished or interrupted)
  bgp::Partition partition{0, 1};
  int exit_code = 0;  ///< 0 = clean exit; informational only

  Usec runtime() const { return end_time - start_time; }
  int size_midplanes() const { return partition.midplane_count(); }
  bool running_at(TimePoint t) const { return start_time <= t && t < end_time; }
};

}  // namespace coral::joblog
