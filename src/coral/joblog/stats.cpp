#include "coral/joblog/stats.hpp"

#include <algorithm>

#include "coral/common/error.hpp"

namespace coral::joblog {

namespace {

std::size_t size_class(const std::vector<int>& sizes, int midplanes) {
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == midplanes) return i;
  }
  throw InvalidArgument("unexpected job size: " + std::to_string(midplanes));
}

}  // namespace

WorkloadStats workload_stats(const JobLog& jobs, int wide_threshold) {
  const machine::MachineModel& machine = jobs.machine();
  const std::vector<int>& sizes = machine.legal_partition_sizes();
  WorkloadStats s;
  s.midplane_busy_sec.assign(static_cast<std::size_t>(machine.midplane_count()), 0.0);
  s.midplane_wide_sec.assign(static_cast<std::size_t>(machine.midplane_count()), 0.0);
  s.jobs_per_size.assign(sizes.size(), 0);
  s.wide_threshold = wide_threshold;
  if (jobs.empty()) return s;

  TimePoint first = jobs[0].start_time;
  TimePoint last = jobs[0].end_time;
  double wait_sum = 0;
  for (const JobRecord& job : jobs) {
    const double sec =
        static_cast<double>(job.runtime()) / static_cast<double>(kUsecPerSec);
    for (bgp::MidplaneId m : job.partition.midplanes()) {
      s.midplane_busy_sec[static_cast<std::size_t>(m)] += sec;
      if (job.size_midplanes() >= wide_threshold) {
        s.midplane_wide_sec[static_cast<std::size_t>(m)] += sec;
      }
    }
    s.jobs_per_size[size_class(sizes, job.size_midplanes())] += 1;
    wait_sum += static_cast<double>(job.start_time - job.queue_time) /
                static_cast<double>(kUsecPerSec);
    first = std::min(first, job.start_time);
    last = std::max(last, job.end_time);
  }
  double busy = 0;
  for (double b : s.midplane_busy_sec) busy += b;
  const double wall = static_cast<double>(last - first) / static_cast<double>(kUsecPerSec);
  if (wall > 0) {
    s.utilization = busy / (wall * machine.midplane_count());
  }
  s.mean_wait_sec = wait_sum / static_cast<double>(jobs.size());
  return s;
}

std::map<UserId, PartyStats> stats_by_user(const JobLog& jobs) {
  std::map<UserId, PartyStats> out;
  for (const JobRecord& job : jobs) {
    PartyStats& p = out[job.user_id];
    p.jobs += 1;
    p.node_seconds += static_cast<double>(job.runtime()) /
                      static_cast<double>(kUsecPerSec) * job.size_midplanes();
  }
  return out;
}

std::map<ProjectId, PartyStats> stats_by_project(const JobLog& jobs) {
  std::map<ProjectId, PartyStats> out;
  for (const JobRecord& job : jobs) {
    PartyStats& p = out[job.project_id];
    p.jobs += 1;
    p.node_seconds += static_cast<double>(job.runtime()) /
                      static_cast<double>(kUsecPerSec) * job.size_midplanes();
  }
  return out;
}

std::vector<double> utilization_timeline(const JobLog& jobs, TimePoint begin,
                                         TimePoint end, Usec step) {
  CORAL_EXPECTS(step > 0);
  CORAL_EXPECTS(end > begin);
  const auto n = static_cast<std::size_t>((end - begin + step - 1) / step);
  // Time-weighted busy midplanes per bucket.
  std::vector<double> busy(n, 0.0);
  for (const JobRecord& job : jobs) {
    if (job.end_time <= begin || job.start_time >= end) continue;
    const Usec s0 = std::max<Usec>(0, job.start_time - begin);
    const Usec e0 = std::min<Usec>(end - begin, job.end_time - begin);
    const auto b0 = static_cast<std::size_t>(s0 / step);
    const auto b1 = std::min(n - 1, static_cast<std::size_t>((e0 - 1) / step));
    for (std::size_t b = b0; b <= b1; ++b) {
      const Usec bucket_begin = static_cast<Usec>(b) * step;
      const Usec bucket_end = std::min<Usec>(end - begin, bucket_begin + step);
      const Usec overlap = std::min(e0, bucket_end) - std::max(s0, bucket_begin);
      busy[b] += static_cast<double>(job.size_midplanes()) *
                 static_cast<double>(overlap) / static_cast<double>(bucket_end - bucket_begin);
    }
  }
  for (double& b : busy) b /= jobs.machine().midplane_count();
  return busy;
}

}  // namespace coral::joblog
