#pragma once

#include <map>
#include <vector>

#include "coral/joblog/log.hpp"

namespace coral::joblog {

/// Machine-utilization and workload statistics over a job log — the §V-B
/// inputs (Fig. 4b/4c) plus the per-user/per-project aggregates that the
/// suspicious-user analysis (§VI-D) builds on.
struct WorkloadStats {
  /// Busy midplane-seconds per midplane (Fig. 4b), indexed by MidplaneId,
  /// sized to the log's machine.
  std::vector<double> midplane_busy_sec;
  /// Busy midplane-seconds from jobs >= `wide_threshold` midplanes (Fig. 4c).
  std::vector<double> midplane_wide_sec;
  /// Jobs per size class, aligned with the machine's
  /// legal_partition_sizes() (Table VI's {1,2,4,8,16,32,48,64,80} on BG/P).
  std::vector<std::size_t> jobs_per_size;
  /// Machine-wide utilization in [0, 1] (busy midplane-seconds over
  /// midplane-count * wall-clock).
  double utilization = 0;
  /// Average queue wait in seconds.
  double mean_wait_sec = 0;

  int wide_threshold = 32;
};

/// Aggregates for one user or project.
struct PartyStats {
  std::size_t jobs = 0;
  double node_seconds = 0;  ///< midplane-seconds submitted
};

/// Compute workload statistics. `wide_threshold` is in midplanes.
WorkloadStats workload_stats(const JobLog& jobs, int wide_threshold = 32);

/// Per-user aggregates, keyed by UserId.
std::map<UserId, PartyStats> stats_by_user(const JobLog& jobs);

/// Per-project aggregates, keyed by ProjectId.
std::map<ProjectId, PartyStats> stats_by_project(const JobLog& jobs);

/// Machine utilization sampled on a fixed grid: fraction of midplanes busy
/// at each sample point. Useful for plotting load over time.
std::vector<double> utilization_timeline(const JobLog& jobs, TimePoint begin,
                                         TimePoint end, Usec step);

}  // namespace coral::joblog
