#pragma once

#include <optional>

#include "coral/core/interarrival.hpp"

namespace coral::core {

/// Midplane-level failure characteristics (§V-B): the paper reports that
/// Weibull still fits the per-midplane interarrival distributions even
/// though the failure *rates* differ strongly across midplanes.
struct MidplaneFits {
  /// Fit per midplane; nullopt when fewer than `min_events` events landed
  /// there.
  std::array<std::optional<InterarrivalFit>, bgp::Topology::kMidplanes> fits;
  std::size_t fitted_count = 0;
  std::size_t weibull_preferred_count = 0;  ///< LRT favors Weibull
  std::size_t shape_below_one_count = 0;

  double weibull_preferred_fraction() const {
    return fitted_count == 0 ? 0.0
                             : static_cast<double>(weibull_preferred_count) /
                                   static_cast<double>(fitted_count);
  }
};

struct MidplaneFitConfig {
  std::size_t min_events = 12;  ///< events needed to attempt a fit
};

/// Fit per-midplane fatal-event interarrival distributions from the
/// filtered groups (rack-level events count toward both midplanes of the
/// rack).
MidplaneFits fit_midplane_interarrivals(const filter::FilterPipelineResult& filtered,
                                        const MidplaneFitConfig& config = {});

}  // namespace coral::core
