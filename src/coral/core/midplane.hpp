#pragma once

#include <optional>
#include <vector>

#include "coral/core/interarrival.hpp"
#include "coral/machine/model.hpp"

namespace coral::core {

/// Midplane-level failure characteristics (§V-B): the paper reports that
/// Weibull still fits the per-midplane interarrival distributions even
/// though the failure *rates* differ strongly across midplanes.
struct MidplaneFits {
  /// Fit per midplane (vector sized by the machine's midplane count);
  /// nullopt when fewer than `min_events` events landed there.
  std::vector<std::optional<InterarrivalFit>> fits;
  std::size_t fitted_count = 0;
  std::size_t weibull_preferred_count = 0;  ///< LRT favors Weibull
  std::size_t shape_below_one_count = 0;

  double weibull_preferred_fraction() const {
    return fitted_count == 0 ? 0.0
                             : static_cast<double>(weibull_preferred_count) /
                                   static_cast<double>(fitted_count);
  }
};

struct MidplaneFitConfig {
  std::size_t min_events = 12;  ///< events needed to attempt a fit
};

/// Fit per-midplane fatal-event interarrival distributions from the
/// filtered groups (rack-level events count toward every midplane of the
/// rack). The machine sizes the per-midplane buckets.
MidplaneFits fit_midplane_interarrivals(const filter::FilterPipelineResult& filtered,
                                        const MidplaneFitConfig& config = {},
                                        const machine::MachineModel& machine =
                                            machine::bgp_model());

}  // namespace coral::core
