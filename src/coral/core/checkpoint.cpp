#include "coral/core/checkpoint.hpp"

#include <cmath>
#include <set>

#include "coral/common/error.hpp"

namespace coral::core {

Usec young_interval(Usec overhead, double mtti_sec) {
  CORAL_EXPECTS(overhead > 0 && mtti_sec > 0);
  const double sec = std::sqrt(2.0 * static_cast<double>(overhead) /
                               static_cast<double>(kUsecPerSec) * mtti_sec);
  return static_cast<Usec>(sec * static_cast<double>(kUsecPerSec));
}

CheckpointOutcome simulate_checkpointing(const CoAnalysisResult& analysis,
                                         const joblog::JobLog& jobs,
                                         const CheckpointPlan& plan) {
  CheckpointOutcome out;

  // Machine-wide system MTTI; per-job intervals scale it by width.
  const bool young_mode = plan.mode == CheckpointMode::YoungFromMtti ||
                          plan.mode == CheckpointMode::YoungSkipFirstHour;
  const double machine_mtti_sec =
      analysis.interruptions_system.samples_sec.size() >= 2
          ? analysis.interruptions_system.weibull.mean()
          : 24.0 * 3600.0;

  // Executables with an application-error interruption history, and when
  // that history started (the Obs.-9/11 rule is causal: it only applies to
  // runs *after* the first observed application error of that executable).
  std::map<joblog::ExecId, TimePoint> app_error_since;
  for (const Interruption& in : analysis.matches.interruptions) {
    const auto code =
        analysis.filtered.fatal_events[analysis.filtered.groups[in.group].rep].errcode;
    const auto it = analysis.classification.by_code.find(code);
    if (it == analysis.classification.by_code.end() ||
        it->second.cause != Cause::ApplicationError) {
      continue;
    }
    const joblog::ExecId exec = jobs[in.job].exec_id;
    const auto existing = app_error_since.find(exec);
    if (existing == app_error_since.end() || in.time < existing->second) {
      app_error_since[exec] = in.time;
    }
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const joblog::JobRecord& job = jobs[j];
    const double width = job.size_midplanes();
    const auto runtime = job.runtime();
    const bool interrupted = analysis.matches.group_by_job[j].has_value();

    // Per-job interval: a W-midplane job on an N-midplane machine intercepts
    // roughly W/N of the machine's interruptions, so its MTTI is the machine
    // MTTI scaled up by N/W (wider jobs checkpoint more often; narrow short
    // jobs often not at all).
    Usec interval = plan.interval;
    if (young_mode) {
      const double job_mtti =
          machine_mtti_sec * jobs.machine().midplane_count() / width;
      interval = young_interval(plan.overhead, job_mtti);
    }

    if (plan.mode == CheckpointMode::None) {
      if (interrupted) {
        out.lost_node_hours +=
            width * static_cast<double>(runtime) / static_cast<double>(kUsecPerHour);
      }
      continue;
    }

    // First checkpoint offset: the skip-first-hour rule delays the schedule
    // for flagged executables (most application errors strike early, so the
    // early checkpoints would be pure overhead).
    Usec first = interval;
    if (plan.mode == CheckpointMode::YoungSkipFirstHour) {
      const auto flag = app_error_since.find(job.exec_id);
      if (flag != app_error_since.end() && job.start_time > flag->second) {
        first = std::max<Usec>(interval, kUsecPerHour);
        ++out.skipped_first_hour_jobs;
      }
    }

    // Completed checkpoints strictly before the job ended.
    std::size_t n_ckpt = 0;
    if (runtime > first) {
      n_ckpt = 1 + static_cast<std::size_t>((runtime - first - 1) / interval);
    }
    out.checkpoints += n_ckpt;
    out.overhead_node_hours += width * static_cast<double>(n_ckpt) *
                               static_cast<double>(plan.overhead) /
                               static_cast<double>(kUsecPerHour);

    if (interrupted) {
      const Usec last_ckpt = n_ckpt == 0
                                 ? 0
                                 : first + static_cast<Usec>(n_ckpt - 1) * interval;
      out.lost_node_hours += width * static_cast<double>(runtime - last_ckpt) /
                             static_cast<double>(kUsecPerHour);
    }
  }
  return out;
}

}  // namespace coral::core
