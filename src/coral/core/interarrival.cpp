#include "coral/core/interarrival.hpp"

#include <algorithm>

#include "coral/common/error.hpp"

namespace coral::core {

std::vector<double> interarrival_seconds(std::span<const TimePoint> times) {
  CORAL_EXPECTS(times.size() >= 3);
  std::vector<TimePoint> sorted(times.begin(), times.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(sorted.size() - 1);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    out.push_back(static_cast<double>(sorted[i] - sorted[i - 1]) /
                  static_cast<double>(kUsecPerSec));
  }
  return out;
}

InterarrivalFit fit_interarrivals(std::vector<double> samples_sec) {
  CORAL_EXPECTS(samples_sec.size() >= 2);
  InterarrivalFit fit;
  fit.samples_sec = std::move(samples_sec);
  fit.weibull = stats::Weibull::fit_mle(fit.samples_sec);
  fit.exponential = stats::Exponential::fit_mle(fit.samples_sec);
  fit.lrt = stats::likelihood_ratio_test(fit.samples_sec);
  std::vector<double> sorted = fit.samples_sec;
  std::sort(sorted.begin(), sorted.end());
  // Clamp zeros like the MLE does so KS sees the same data.
  for (double& x : sorted) x = std::max(x, 1e-9);
  fit.ks_weibull = stats::ks_distance(sorted, fit.weibull);
  fit.ks_exponential = stats::ks_distance(sorted, fit.exponential);
  return fit;
}

std::vector<TimePoint> group_times(const filter::FilterPipelineResult& filtered,
                                   std::span<const std::size_t> group_indices) {
  std::vector<TimePoint> out;
  out.reserve(group_indices.size());
  for (std::size_t g : group_indices) {
    out.push_back(filtered.fatal_events[filtered.groups[g].rep].event_time);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> all_groups(const filter::FilterPipelineResult& filtered) {
  std::vector<std::size_t> out(filtered.groups.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

}  // namespace coral::core
