#include "coral/core/feed.hpp"

#include <algorithm>
#include <limits>

namespace coral::core {

namespace {

enum class Kind : std::uint8_t { JobStart = 0, Ras = 1, JobEnd = 2 };

struct Entry {
  TimePoint time;
  Kind kind;
  std::size_t index;

  friend bool operator<(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return static_cast<std::uint8_t>(a.kind) < static_cast<std::uint8_t>(b.kind);
  }
};

}  // namespace

EventFeed::EventFeed(const ras::RasLog& ras, const joblog::JobLog& jobs)
    : ras_(ras), jobs_(jobs) {}

std::size_t EventFeed::replay() {
  TimePoint lo(std::numeric_limits<Usec>::min());
  TimePoint hi(std::numeric_limits<Usec>::max());
  return replay(lo, hi);
}

std::size_t EventFeed::replay(TimePoint begin, TimePoint end) {
  std::vector<Entry> entries;
  entries.reserve(ras_.size() + 2 * jobs_.size());
  if (ras_handler_) {
    for (std::size_t i = 0; i < ras_.size(); ++i) {
      if (ras_[i].severity < min_severity_) continue;
      if (ras_[i].event_time < begin || ras_[i].event_time >= end) continue;
      entries.push_back({ras_[i].event_time, Kind::Ras, i});
    }
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (job_start_ && jobs_[i].start_time >= begin && jobs_[i].start_time < end) {
      entries.push_back({jobs_[i].start_time, Kind::JobStart, i});
    }
    if (job_end_ && jobs_[i].end_time >= begin && jobs_[i].end_time < end) {
      entries.push_back({jobs_[i].end_time, Kind::JobEnd, i});
    }
  }
  std::stable_sort(entries.begin(), entries.end());

  for (const Entry& e : entries) {
    switch (e.kind) {
      case Kind::JobStart:
        job_start_(e.time, JobStart{&jobs_[e.index]});
        break;
      case Kind::Ras:
        ras_handler_(e.time, RasRecord{&ras_[e.index]});
        break;
      case Kind::JobEnd:
        job_end_(e.time, JobEnd{&jobs_[e.index]});
        break;
    }
  }
  return entries.size();
}

}  // namespace coral::core
