#include "coral/core/identification.hpp"

namespace coral::core {

const char* to_string(EventCase c) {
  switch (c) {
    case EventCase::InterruptsJob: return "interrupts job";
    case EventCase::NoJobAtLocation: return "no job at location";
    case EventCase::JobSurvives: return "job survives";
  }
  return "?";
}

const char* to_string(ErrcodeVerdict v) {
  switch (v) {
    case ErrcodeVerdict::InterruptionRelated: return "interruption-related";
    case ErrcodeVerdict::NonFatalToJobs: return "non-fatal to jobs";
    case ErrcodeVerdict::Undetermined: return "undetermined";
  }
  return "?";
}

int IdentificationResult::count(ErrcodeVerdict v) const {
  int n = 0;
  for (const auto& [code, verdict] : verdicts) {
    if (verdict == v) ++n;
  }
  return n;
}

IdentificationResult identify_interruption_related(
    const filter::FilterPipelineResult& filtered, const MatchResult& matches,
    const joblog::JobLog& jobs, const IdentificationConfig& config) {
  IdentificationResult result;
  result.event_cases.reserve(filtered.groups.size());

  struct CaseCount {
    int c1 = 0, c2 = 0, c3 = 0;
  };
  std::map<ras::ErrcodeId, CaseCount> counts;

  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[g].rep];
    EventCase ec;
    if (!matches.jobs_by_group[g].empty()) {
      ec = EventCase::InterruptsJob;
    } else {
      // Does any job run atop any member location at the event time?
      bool any_job = false;
      for (std::size_t member : filtered.groups[g].members) {
        const ras::RasEvent& ev = filtered.fatal_events[member];
        if (!jobs.running_at(rep.event_time, ev.location).empty()) {
          any_job = true;
          break;
        }
      }
      ec = any_job ? EventCase::JobSurvives : EventCase::NoJobAtLocation;
    }
    result.event_cases.push_back(ec);
    CaseCount& c = counts[rep.errcode];
    if (ec == EventCase::InterruptsJob) ++c.c1;
    if (ec == EventCase::NoJobAtLocation) ++c.c2;
    if (ec == EventCase::JobSurvives) ++c.c3;
  }

  // Rules of §IV-A (with a small noise tolerance; see config).
  for (const auto& [code, c] : counts) {
    const double with_jobs = c.c1 + c.c3;
    ErrcodeVerdict verdict;
    if (with_jobs == 0) {
      // Only case 2: undetermined; the paper treats these pessimistically
      // as interruption-related downstream.
      verdict = ErrcodeVerdict::Undetermined;
    } else if (c.c3 <= config.noise_tolerance * with_jobs && c.c1 > 0) {
      verdict = ErrcodeVerdict::InterruptionRelated;
    } else if (c.c1 <= config.noise_tolerance * with_jobs && c.c3 > 0) {
      verdict = ErrcodeVerdict::NonFatalToJobs;
    } else {
      verdict = ErrcodeVerdict::Undetermined;
    }
    result.verdicts[code] = verdict;
  }

  // Event-level fractions for Observations 1 and 7.
  std::size_t nonfatal_events = 0, idle_events = 0;
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[g].rep];
    if (result.verdicts.at(rep.errcode) == ErrcodeVerdict::NonFatalToJobs) {
      ++nonfatal_events;
    }
    if (result.event_cases[g] == EventCase::NoJobAtLocation) ++idle_events;
  }
  if (!filtered.groups.empty()) {
    const auto n = static_cast<double>(filtered.groups.size());
    result.nonfatal_event_fraction = static_cast<double>(nonfatal_events) / n;
    result.idle_event_fraction = static_cast<double>(idle_events) / n;
  }
  return result;
}

}  // namespace coral::core
