#pragma once

#include <map>
#include <set>

#include "coral/core/characterization.hpp"
#include "coral/core/identification.hpp"

namespace coral::core {

/// Cause assigned to an ERRCODE by the §IV-B rules.
enum class Cause : std::uint8_t { SystemFailure, ApplicationError };

/// Which rule produced the verdict (for explainability and tests).
enum class CauseRule : std::uint8_t {
  NeverWithJob,        ///< rule 1: events only on idle hardware → system
  RepeatSameLocation,  ///< rule 2: consecutive jobs killed at one location → system
  FollowsResubmission, ///< rule 3: error follows the exec file, not the nodes → application
  CorrelationFallback, ///< rule 4: Pearson correlation with labeled codes
};

const char* to_string(Cause c);
const char* to_string(CauseRule r);

struct ClassificationConfig {
  /// Two interruptions by the same code on overlapping partitions within
  /// this horizon count as "the scheduler reassigned the failed nodes".
  Usec same_location_horizon = 7 * kUsecPerDay;
  /// Bucket width for the Pearson-correlation fallback.
  Usec correlation_window = 6 * kUsecPerHour;
  /// Independent follows-the-executable observations required before a code
  /// is labeled an application error (guards against coincidences).
  int min_follow_evidence = 2;
  /// The re-interruption of the executable must happen within this gap of
  /// the original interruption to count as the Fig.-2 resubmission pattern
  /// (two kills of a popular binary months apart are coincidence).
  Usec follow_gap = 3 * kUsecPerDay;
};

struct CodeCause {
  Cause cause = Cause::SystemFailure;
  CauseRule rule = CauseRule::NeverWithJob;
  double correlation = 0;  ///< only for CorrelationFallback
};

/// Classification output (§IV-B; Observation 2).
struct ClassificationResult {
  std::map<ras::ErrcodeId, CodeCause> by_code;

  int system_type_count() const;
  int application_type_count() const;
  /// Fraction of fatal events attributed to application errors (paper:
  /// 17.73%).
  double application_event_fraction = 0;

  Cause cause_of(ras::ErrcodeId code) const { return by_code.at(code).cause; }
};

/// Distinguish system failures from application errors. The columnar
/// overload runs the rules over CharColumns (per-code CSR interruption
/// buckets, survivor binary search) with independent codes fanned over
/// `pool`; the convenience overload gathers the columns itself. Results are
/// identical.
ClassificationResult classify_causes(const filter::FilterPipelineResult& filtered,
                                     const MatchResult& matches,
                                     const IdentificationResult& identification,
                                     const joblog::JobLog& jobs,
                                     const CharColumns& cols,
                                     const ClassificationConfig& config = {},
                                     par::ThreadPool* pool = nullptr);

ClassificationResult classify_causes(const filter::FilterPipelineResult& filtered,
                                     const MatchResult& matches,
                                     const IdentificationResult& identification,
                                     const joblog::JobLog& jobs,
                                     const ClassificationConfig& config = {});

}  // namespace coral::core
