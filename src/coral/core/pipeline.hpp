#pragma once

#include <iosfwd>

#include "coral/common/ingest.hpp"
#include "coral/context.hpp"
#include "coral/core/interarrival.hpp"
#include "coral/core/propagation.hpp"
#include "coral/core/vulnerability.hpp"

namespace coral::core {

/// A log pair loaded through the hardened ingest layer, with the per-log
/// ingest-health ledgers. In strict mode the reports are trivially clean
/// (the load would have thrown otherwise); in lenient mode they say exactly
/// how many records were skipped and why.
struct IngestedLogs {
  ras::RasLog ras;
  joblog::JobLog jobs;
  IngestReport ras_report;
  IngestReport jobs_report;

  bool clean() const { return ras_report.clean() && jobs_report.clean(); }
};

/// Load a RAS CSV + job CSV pair under one parse mode, resolving errcodes
/// against the context's catalog and reporting ingest stage timings plus
/// malformed-record counters to the context's instrumentation sink.
IngestedLogs ingest_csv_logs(std::istream& ras_in, std::istream& jobs_in,
                             ParseMode mode = ParseMode::Strict,
                             const Context& ctx = {});

/// Which front-end (filtering + matching) implementation drives the
/// methodology. Both produce byte-identical results; they differ in how
/// they traverse the logs.
enum class Engine {
  /// Single-pass streaming stages with window-bounded state, optionally
  /// sharded over the time axis (see stream/coanalysis.hpp). The default.
  Streaming,
  /// The original whole-log batch passes (filter::run_filter_pipeline +
  /// match_interruptions).
  Batch,
};

struct ExecutionConfig {
  Engine engine = Engine::Streaming;
  /// Target time-axis shard count for the streaming engine (cut only at
  /// quiesce gaps, so any value is exact). Ignored by the batch engine.
  int shards = 1;
};

/// Every knob of the co-analysis, in one place. The worker pool is not a
/// config knob: select it via coral::Context::with_pool (the deprecated
/// `pool` member was removed after its one-cycle grace period).
struct CoAnalysisConfig {
  filter::FilterPipelineConfig filters;
  MatchConfig matching;
  IdentificationConfig identification;
  ClassificationConfig classification;
  JobFilterConfig job_filter;
  PropagationConfig propagation;
  VulnerabilityConfig vulnerability;
  ExecutionConfig execution;
};

/// Complete output of the paper's methodology (Fig. 1) over one log pair.
struct CoAnalysisResult {
  filter::FilterPipelineResult filtered;     ///< temporal+spatial+causality
  MatchResult matches;                       ///< RAS ↔ job interruptions
  IdentificationResult identification;       ///< §IV-A
  ClassificationResult classification;       ///< §IV-B
  JobFilterResult job_filter;                ///< §IV-C
  PropagationResult propagation;             ///< §VI-C
  VulnerabilityResult vulnerability;         ///< §VI-D

  // Interarrival fits (Fig. 3 / Table IV): fatal events before and after
  // job-related filtering.
  InterarrivalFit fatal_before_jobfilter;
  InterarrivalFit fatal_after_jobfilter;
  // Interruption interarrival fits by cause (Fig. 6 / Table V).
  InterarrivalFit interruptions_system;
  InterarrivalFit interruptions_application;

  // Fig. 5: interruptions per day (index = day since log start).
  std::vector<int> interruptions_per_day;
  // Fig. 4 inputs, per midplane (vectors sized machine().midplane_count()):
  // fatal-event count, total workload (midplane-seconds of jobs), and
  // wide-job workload (>= the machine's wide threshold; 32 on BG/P).
  std::vector<double> fatal_events_per_midplane;
  std::vector<double> workload_per_midplane;
  std::vector<double> wide_workload_per_midplane;

  /// The machine the analyzed logs belong to (taken from the job log).
  const machine::MachineModel& machine() const { return *machine_; }
  const machine::MachineModel* machine_ = &machine::bgp_model();

  // Convenience census.
  std::size_t interruption_count() const { return matches.interruptions.size(); }
  std::size_t system_interruptions = 0;
  std::size_t application_interruptions = 0;
  std::size_t distinct_interrupted_jobs = 0;  ///< distinct executables

  // Execution trace of the front-end that produced `filtered`/`matches`.
  Engine engine_used = Engine::Batch;
  std::size_t shards_used = 1;
  /// Streaming engine only: largest simultaneously buffered stage state —
  /// bounded by the coalescing/matching windows, not the log length.
  std::size_t peak_stage_state = 0;
};

/// Run the identification / classification / job-filter steps and the §V/§VI
/// characterization analyses on an already filtered + matched log pair. This
/// is the engine-independent back half of run_coanalysis, exposed so
/// streaming callers can complete a front-end they drove themselves.
CoAnalysisResult complete_coanalysis(filter::FilterPipelineResult filtered,
                                     MatchResult matches, const joblog::JobLog& jobs,
                                     const CoAnalysisConfig& config = {},
                                     const Context& ctx = {});

/// Run the full co-analysis (all three methodology steps plus the §V/§VI
/// characterization analyses) on a RAS log + job log pair. A thin
/// composition: the configured engine produces the filtered groups and the
/// RAS↔job matches, then complete_coanalysis derives everything else.
/// The context supplies the worker pool for the data-parallel stages and
/// the instrumentation sink for per-stage timings; results are identical
/// with or without either.
CoAnalysisResult run_coanalysis(const ras::RasLog& ras, const joblog::JobLog& jobs,
                                const CoAnalysisConfig& config = {},
                                const Context& ctx = {});

}  // namespace coral::core
