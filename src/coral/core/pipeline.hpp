#pragma once

#include "coral/core/interarrival.hpp"
#include "coral/core/propagation.hpp"
#include "coral/core/vulnerability.hpp"

namespace coral::core {

/// Every knob of the co-analysis, in one place.
struct CoAnalysisConfig {
  filter::FilterPipelineConfig filters;
  MatchConfig matching;
  IdentificationConfig identification;
  ClassificationConfig classification;
  JobFilterConfig job_filter;
  PropagationConfig propagation;
  VulnerabilityConfig vulnerability;
  /// Optional worker pool, forwarded to the data-parallel stages (causality
  /// mining, RAS↔job matching). Results are identical either way.
  par::ThreadPool* pool = nullptr;
};

/// Complete output of the paper's methodology (Fig. 1) over one log pair.
struct CoAnalysisResult {
  filter::FilterPipelineResult filtered;     ///< temporal+spatial+causality
  MatchResult matches;                       ///< RAS ↔ job interruptions
  IdentificationResult identification;       ///< §IV-A
  ClassificationResult classification;       ///< §IV-B
  JobFilterResult job_filter;                ///< §IV-C
  PropagationResult propagation;             ///< §VI-C
  VulnerabilityResult vulnerability;         ///< §VI-D

  // Interarrival fits (Fig. 3 / Table IV): fatal events before and after
  // job-related filtering.
  InterarrivalFit fatal_before_jobfilter;
  InterarrivalFit fatal_after_jobfilter;
  // Interruption interarrival fits by cause (Fig. 6 / Table V).
  InterarrivalFit interruptions_system;
  InterarrivalFit interruptions_application;

  // Fig. 5: interruptions per day (index = day since log start).
  std::vector<int> interruptions_per_day;
  // Fig. 4 inputs, per midplane: fatal-event count, total workload
  // (midplane-seconds of jobs), and wide-job (>= 32 midplanes) workload.
  std::array<double, bgp::Topology::kMidplanes> fatal_events_per_midplane{};
  std::array<double, bgp::Topology::kMidplanes> workload_per_midplane{};
  std::array<double, bgp::Topology::kMidplanes> wide_workload_per_midplane{};

  // Convenience census.
  std::size_t interruption_count() const { return matches.interruptions.size(); }
  std::size_t system_interruptions = 0;
  std::size_t application_interruptions = 0;
  std::size_t distinct_interrupted_jobs = 0;  ///< distinct executables
};

/// Run the full co-analysis (all three methodology steps plus the §V/§VI
/// characterization analyses) on a RAS log + job log pair.
CoAnalysisResult run_coanalysis(const ras::RasLog& ras, const joblog::JobLog& jobs,
                                const CoAnalysisConfig& config = {});

}  // namespace coral::core
