#pragma once

#include <string>

#include "coral/core/pipeline.hpp"
#include "coral/joblog/log.hpp"
#include "coral/ras/log.hpp"

namespace coral::core {

/// Render the 12-observation co-analysis report (the paper's highlighted
/// observations, §IV–§VI) with the metric behind each observation.
std::string render_observations(const CoAnalysisResult& r, const ras::RasLogSummary& ras,
                                const joblog::JobLogSummary& jobs,
                                const ras::Catalog& catalog = ras::default_catalog());

/// Render the filtering pipeline stage table (Fig. 1 flow with counts).
std::string render_filter_stages(const CoAnalysisResult& r);

/// Render an interarrival fit as a one-line summary (shape/scale/mean/var +
/// LRT verdict).
std::string render_fit(const char* name, const InterarrivalFit& fit);

}  // namespace coral::core
