#include "coral/core/midplane.hpp"

#include <algorithm>

namespace coral::core {

MidplaneFits fit_midplane_interarrivals(const filter::FilterPipelineResult& filtered,
                                        const MidplaneFitConfig& config,
                                        const machine::MachineModel& machine) {
  MidplaneFits out;
  const machine::LocCodec codec = machine.codec();
  out.fits.resize(static_cast<std::size_t>(machine.midplane_count()));
  std::vector<std::vector<TimePoint>> times(static_cast<std::size_t>(machine.midplane_count()));
  for (const filter::EventGroup& g : filtered.groups) {
    const ras::RasEvent& rep = filtered.fatal_events[g.rep];
    if (const auto mid = rep.location.midplane_id()) {
      times[static_cast<std::size_t>(*mid)].push_back(rep.event_time);
    } else {
      const int first = rep.location.rack_index() * codec.midplanes_per_rack;
      for (int i = 0; i < codec.midplanes_per_rack; ++i) {
        times[static_cast<std::size_t>(first + i)].push_back(rep.event_time);
      }
    }
  }
  for (std::size_t m = 0; m < times.size(); ++m) {
    if (times[m].size() < config.min_events) continue;
    std::sort(times[m].begin(), times[m].end());
    out.fits[m] = fit_interarrivals(interarrival_seconds(times[m]));
    out.fitted_count += 1;
    if (out.fits[m]->lrt.weibull_preferred) out.weibull_preferred_count += 1;
    if (out.fits[m]->weibull.shape() < 1.0) out.shape_below_one_count += 1;
  }
  return out;
}

}  // namespace coral::core
