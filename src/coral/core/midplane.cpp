#include "coral/core/midplane.hpp"

#include <algorithm>

namespace coral::core {

MidplaneFits fit_midplane_interarrivals(const filter::FilterPipelineResult& filtered,
                                        const MidplaneFitConfig& config) {
  MidplaneFits out;
  std::array<std::vector<TimePoint>, bgp::Topology::kMidplanes> times;
  for (const filter::EventGroup& g : filtered.groups) {
    const ras::RasEvent& rep = filtered.fatal_events[g.rep];
    if (const auto mid = rep.location.midplane_id()) {
      times[static_cast<std::size_t>(*mid)].push_back(rep.event_time);
    } else {
      const int rack = rep.location.rack_index();
      times[static_cast<std::size_t>(bgp::midplane_id(rack, 0))].push_back(rep.event_time);
      times[static_cast<std::size_t>(bgp::midplane_id(rack, 1))].push_back(rep.event_time);
    }
  }
  for (std::size_t m = 0; m < times.size(); ++m) {
    if (times[m].size() < config.min_events) continue;
    std::sort(times[m].begin(), times[m].end());
    out.fits[m] = fit_interarrivals(interarrival_seconds(times[m]));
    out.fitted_count += 1;
    if (out.fits[m]->lrt.weibull_preferred) out.weibull_preferred_count += 1;
    if (out.fits[m]->weibull.shape() < 1.0) out.shape_below_one_count += 1;
  }
  return out;
}

}  // namespace coral::core
