#pragma once

#include <functional>

#include "coral/joblog/log.hpp"
#include "coral/ras/log.hpp"

namespace coral::core {

/// A time-ordered replay of a log pair as one merged event stream — the
/// CiFTS-style "subscribe to failure-related information" interface the
/// paper's §VII proposes for schedulers and checkpointing libraries.
///
/// Subscribers receive three kinds of events, strictly ordered by time
/// (ties broken as: job starts, then RAS records, then job ends, so a
/// consumer tracking machine occupancy sees a kill *while* the job is still
/// known to be running).
class EventFeed {
 public:
  struct JobStart {
    const joblog::JobRecord* job;
  };
  struct JobEnd {
    const joblog::JobRecord* job;
  };
  struct RasRecord {
    const ras::RasEvent* event;
  };

  using JobStartHandler = std::function<void(TimePoint, const JobStart&)>;
  using JobEndHandler = std::function<void(TimePoint, const JobEnd&)>;
  using RasHandler = std::function<void(TimePoint, const RasRecord&)>;

  /// Both logs must stay alive for the lifetime of the feed.
  EventFeed(const ras::RasLog& ras, const joblog::JobLog& jobs);

  void on_job_start(JobStartHandler handler) { job_start_ = std::move(handler); }
  void on_job_end(JobEndHandler handler) { job_end_ = std::move(handler); }
  /// Only records at or above `min_severity` are delivered.
  void on_ras(RasHandler handler, ras::Severity min_severity = ras::Severity::Info) {
    ras_handler_ = std::move(handler);
    min_severity_ = min_severity;
  }

  /// Replay everything in [begin, end); with no arguments, the whole pair.
  /// Returns the number of delivered events.
  std::size_t replay();
  std::size_t replay(TimePoint begin, TimePoint end);

 private:
  const ras::RasLog& ras_;
  const joblog::JobLog& jobs_;
  JobStartHandler job_start_;
  JobEndHandler job_end_;
  RasHandler ras_handler_;
  ras::Severity min_severity_ = ras::Severity::Info;
};

}  // namespace coral::core
