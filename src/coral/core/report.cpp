#include "coral/core/report.hpp"

#include "coral/common/strings.hpp"

namespace coral::core {

std::string render_fit(const char* name, const InterarrivalFit& fit) {
  return strformat(
      "%-28s n=%-5zu Weibull(shape=%.3f, scale=%.1f) mean=%.0f var=%.3e  "
      "LRT p=%.2e -> %s (KS %.3f vs %.3f)",
      name, fit.samples_sec.size(), fit.weibull.shape(), fit.weibull.scale(),
      fit.weibull.mean(), fit.weibull.variance(), fit.lrt.p_value,
      fit.lrt.weibull_preferred ? "Weibull" : "exponential", fit.ks_weibull,
      fit.ks_exponential);
}

std::string render_filter_stages(const CoAnalysisResult& r) {
  std::string out = "Filtering pipeline (Fig. 1):\n";
  for (const auto& s : r.filtered.stages) {
    out += strformat("  %-20s %8zu -> %8zu  (compression %.2f%%)\n", s.name.c_str(),
                     s.input, s.output, 100.0 * s.compression());
  }
  out += strformat("  %-20s %8zu -> %8zu  (compression %.2f%%)\n", "job-related",
                   r.filtered.groups.size(), r.job_filter.kept.size(),
                   100.0 *
                       filter::compression_ratio(r.filtered.groups.size(),
                                                 r.job_filter.kept.size()));
  return out;
}

std::string render_observations(const CoAnalysisResult& r, const ras::RasLogSummary& ras,
                                const joblog::JobLogSummary& jobs,
                                const ras::Catalog& catalog) {
  std::string out;
  const auto obs = [&out](int n, const std::string& text) {
    out += strformat("Observation %2d: %s\n", n, text.c_str());
  };

  obs(1, strformat("co-analysis finds FATAL-severity codes that never impact jobs: "
                   "%d code(s); %.2f%% of fatal events  [paper: 2 codes, 20.84%%]",
                   r.identification.count(ErrcodeVerdict::NonFatalToJobs),
                   100.0 * r.identification.nonfatal_event_fraction));

  obs(2, strformat("cause separation: %d system-failure vs %d application-error code "
                   "types; %.2f%% of fatal events are application errors  "
                   "[paper: 72 vs 8 types, 17.73%%]",
                   r.classification.system_type_count(),
                   r.classification.application_type_count(),
                   100.0 * r.classification.application_event_fraction));

  obs(3, strformat("job-related redundancy: %zu of %zu events removed (%.1f%%); "
                   "%.1f%% of resubmissions landed on the same partition  "
                   "[paper: 72 of 549 = 13.1%%; 57.4%%]",
                   r.job_filter.removed_count(), r.filtered.groups.size(),
                   100.0 *
                       filter::compression_ratio(r.filtered.groups.size(),
                                                 r.job_filter.kept.size()),
                   100.0 * r.propagation.same_partition_fraction()));

  obs(4, strformat("Weibull fits fatal interarrivals; job-related filtering changes the "
                   "parameters materially:\n    before: shape=%.3f scale=%.0f mean=%.0f\n"
                   "    after:  shape=%.3f scale=%.0f mean=%.0f  "
                   "[paper: 0.387/8117/29585 -> 0.573/68466/109718]",
                   r.fatal_before_jobfilter.weibull.shape(),
                   r.fatal_before_jobfilter.weibull.scale(),
                   r.fatal_before_jobfilter.weibull.mean(),
                   r.fatal_after_jobfilter.weibull.shape(),
                   r.fatal_after_jobfilter.weibull.scale(),
                   r.fatal_after_jobfilter.weibull.mean()));

  // Observation 5: wide-job load vs failure location.
  const machine::PlacementZones zones = r.machine().placement_zones();
  const int n_midplanes = r.machine().midplane_count();
  double fatal_wide_region = 0, fatal_total = 0;
  double work_wide_region = 0, work_total = 0;
  for (int m = 0; m < n_midplanes; ++m) {
    const auto i = static_cast<std::size_t>(m);
    fatal_total += r.fatal_events_per_midplane[i];
    work_total += r.workload_per_midplane[i];
    if (m >= zones.wide_first && m < zones.wide_first + zones.wide_count) {
      fatal_wide_region += r.fatal_events_per_midplane[i];
      work_wide_region += r.workload_per_midplane[i];
    }
  }
  obs(5, strformat("midplanes %d-%d (wide-job region, %.0f%% of machine) carry %.1f%% of "
                   "located fatal events but only %.1f%% of aggregate workload  "
                   "[paper: failure rate follows wide jobs, not total workload]",
                   zones.wide_first, zones.wide_first + zones.wide_count - 1,
                   100.0 * zones.wide_count / n_midplanes,
                   fatal_total > 0 ? 100.0 * fatal_wide_region / fatal_total : 0.0,
                   work_total > 0 ? 100.0 * work_wide_region / work_total : 0.0));

  // Observation 6: burstiness.
  int burst_days = 0, active_days = 0, max_per_day = 0;
  for (int n : r.interruptions_per_day) {
    if (n > 0) ++active_days;
    if (n >= 3) ++burst_days;
    max_per_day = std::max(max_per_day, n);
  }
  obs(6, strformat("interruptions are rare (%.2f%% of jobs; %zu of %zu days active) but "
                   "bursty: %d day(s) had >= 3 interruptions, max %d in one day",
                   jobs.total_jobs ? 100.0 * static_cast<double>(r.interruption_count()) /
                                         static_cast<double>(jobs.total_jobs)
                                   : 0.0,
                   static_cast<std::size_t>(active_days), r.interruptions_per_day.size(),
                   burst_days, max_per_day));

  const double mtbf = r.fatal_before_jobfilter.weibull.mean();
  const double mtti = r.interruptions_system.weibull.mean();
  obs(7, strformat("job interruption rate is much lower than failure rate: MTTI/MTBF = "
                   "%.2f; %.1f%% of fatal events hit idle hardware  "
                   "[paper: 4.07x, 45.45%%]",
                   mtbf > 0 ? mtti / mtbf : 0.0,
                   100.0 * r.identification.idle_event_fraction));

  std::string prop_codes;
  for (ras::ErrcodeId code : r.propagation.propagating_codes) {
    if (!prop_codes.empty()) prop_codes += ", ";
    prop_codes += catalog.info(code).name;
  }
  obs(8, strformat("spatial propagation is rare: %.2f%% of fatal events interrupt "
                   "multiple jobs (codes: %s)  [paper: 7.22%%; "
                   "bg_code_script_error, CiodHungProxy]",
                   100.0 * r.propagation.propagating_event_fraction,
                   prop_codes.empty() ? "none" : prop_codes.c_str()));

  const auto& rs_sys = r.vulnerability.resubmission[0];
  const auto& rs_app = r.vulnerability.resubmission[1];
  obs(9, strformat("interruption history predicts vulnerability: "
                   "P(fail|k=1,2,3) system = %.0f%%/%.0f%%/%.0f%%, application = "
                   "%.0f%%/%.0f%%/%.0f%%  [paper: cat1 peaks at k=2 (53%%), cat2 "
                   "monotone to 60%%]",
                   100.0 * rs_sys.by_k[0].probability(), 100.0 * rs_sys.by_k[1].probability(),
                   100.0 * rs_sys.by_k[2].probability(), 100.0 * rs_app.by_k[0].probability(),
                   100.0 * rs_app.by_k[1].probability(),
                   100.0 * rs_app.by_k[2].probability()));

  const auto& ranked_sys = r.vulnerability.features[0].ranked;
  std::string order;
  for (const auto& g : ranked_sys) {
    if (!order.empty()) order += " > ";
    order += g.name;
  }
  obs(10, strformat("for system-failure interruptions, feature ranking is: %s  "
                    "[paper: size and location dominate; execution time does not]",
                    order.c_str()));

  obs(11, strformat("%.1f%% of application-error interruptions occur within the first "
                    "hour; %zu hit jobs wider than 32 midplanes running > 1000 s  "
                    "[paper: 74.5%%; none]",
                    100.0 * r.vulnerability.app_interruptions_within_hour,
                    r.vulnerability.app_interruptions_wide_long));

  obs(12, strformat("suspicious users/projects: top %zu users cover %.1f%% and top %zu "
                    "projects cover %.1f%% of system-failure interruptions, yet even "
                    "their per-job failure fraction stays small  "
                    "[paper: 16 users 53.25%%, 19 projects >74%%]",
                    r.vulnerability.features[0].suspicious_users.size(),
                    100.0 * r.vulnerability.features[0].suspicious_user_coverage,
                    r.vulnerability.features[0].suspicious_projects.size(),
                    100.0 * r.vulnerability.features[0].suspicious_project_coverage));

  out += strformat("\nCensus: %zu filtered fatal events; %zu interruptions "
                   "(%zu system + %zu application) of %zu jobs; %zu distinct "
                   "executables interrupted  [paper: 549; 308 = 206 + 102; 167 distinct]\n",
                   r.filtered.groups.size(), r.interruption_count(),
                   r.system_interruptions, r.application_interruptions, jobs.total_jobs,
                   r.distinct_interrupted_jobs);
  (void)ras;
  return out;
}

}  // namespace coral::core
