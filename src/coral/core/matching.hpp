#pragma once

#include <optional>

#include "coral/common/parallel.hpp"
#include "coral/filter/pipeline.hpp"
#include "coral/joblog/log.hpp"

namespace coral::core {

/// RAS↔job matching knobs (§IV): a job is interrupted by an event when its
/// End Time lies within `window` of one of the event's member records and
/// its partition covers that record's location.
struct MatchConfig {
  Usec window = 120 * kUsecPerSec;
  /// Optional worker pool: groups are matched in parallel chunks and merged
  /// deterministically (results are identical with or without the pool).
  par::ThreadPool* pool = nullptr;
  /// Optional observability: phase spans plus interval-index scan counters
  /// (match.candidates_scanned / match.jobs_matched). Never changes results.
  obs::Collector* obs = nullptr;
};

/// One matched (event group, job) pair.
struct Interruption {
  std::size_t group = 0;  ///< index into the filter result's groups
  std::size_t job = 0;    ///< index into the JobLog
  TimePoint time;         ///< the job's end time
};

/// The complete matching between filtered fatal events and job
/// terminations.
struct MatchResult {
  std::vector<Interruption> interruptions;  ///< sorted by job end time
  /// Per group: indices of interrupted jobs (empty when none).
  std::vector<std::vector<std::size_t>> jobs_by_group;
  /// Per job: the matching group, if any.
  std::vector<std::optional<std::size_t>> group_by_job;

  std::size_t interrupted_job_count() const { return interruptions.size(); }
};

/// Match filtered fatal-event groups against the job log.
MatchResult match_interruptions(const filter::FilterPipelineResult& filtered,
                                const joblog::JobLog& jobs,
                                const MatchConfig& config = {});

}  // namespace coral::core
