#pragma once

#include "coral/core/pipeline.hpp"

namespace coral::core {

/// A replay-based evaluation of the failure-prediction recommendation in
/// §VII: a predictor should (a) alarm only on interruption-related fatal
/// events and (b) carry location information, so proactive actions are not
/// wasted on benign events or idle hardware (Observations 1 and 7).
///
/// The predictor replayed here is deliberately simple — every filtered
/// fatal event whose errcode is interruption-related (or undetermined,
/// pessimistically) raises an alarm for `horizon` at its location — because
/// the point of the experiment is to quantify what *location awareness* and
/// *interruption-relatedness* are worth, not to engineer a model.
struct PredictorConfig {
  Usec horizon = 4 * kUsecPerHour;  ///< how long an alarm stays active
  bool use_location = true;   ///< alarms cover the event location (vs whole machine)
  bool use_identification = true;  ///< skip codes identified as non-fatal-to-jobs
};

struct PredictionOutcome {
  std::size_t alarms = 0;
  std::size_t true_alarms = 0;   ///< alarms followed by a covered interruption
  std::size_t caught = 0;        ///< interruptions preceded by a covering alarm
  std::size_t total_interruptions = 0;
  /// Node-hours of healthy jobs that proactive actions would have touched
  /// (the cost of acting on an alarm).
  double disturbed_node_hours = 0;

  double precision() const {
    return alarms == 0 ? 0.0
                       : static_cast<double>(true_alarms) / static_cast<double>(alarms);
  }
  double recall() const {
    return total_interruptions == 0 ? 0.0
                                    : static_cast<double>(caught) /
                                          static_cast<double>(total_interruptions);
  }
};

/// Replay the log pair and score the predictor.
PredictionOutcome evaluate_predictor(const CoAnalysisResult& analysis,
                                     const joblog::JobLog& jobs,
                                     const PredictorConfig& config = {});

}  // namespace coral::core
