#include "coral/core/jobfilter.hpp"

#include <algorithm>

#include "coral/joblog/interval_index.hpp"

namespace coral::core {

namespace {

/// Interrupting groups bucketed by errcode (CSR). Groups are ordered by
/// representative time, so the stable scatter keeps every bucket
/// time-ordered — the order the redundancy chains are followed in.
struct GroupBuckets {
  std::vector<ras::ErrcodeId> codes;  ///< ascending, one per non-empty bucket
  std::vector<std::uint32_t> offset;
  std::vector<std::uint32_t> group;  ///< group indices, time-ordered per bucket
};

GroupBuckets bucket_interrupting_groups(const MatchResult& matches,
                                        const CharColumns& cols) {
  GroupBuckets b;
  const std::size_t n_groups = cols.group_count();
  std::vector<std::uint32_t> interrupting;
  ras::ErrcodeId max_code = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (matches.jobs_by_group[g].empty()) continue;
    interrupting.push_back(static_cast<std::uint32_t>(g));
    max_code = std::max(max_code, cols.group_code[g]);
  }
  if (interrupting.empty()) {
    b.offset.assign(1, 0);
    return b;
  }
  std::vector<std::int32_t> bucket_of(static_cast<std::size_t>(max_code) + 1, -1);
  for (const std::uint32_t g : interrupting) {
    bucket_of[static_cast<std::size_t>(cols.group_code[g])] = 0;
  }
  for (std::size_t c = 0; c < bucket_of.size(); ++c) {
    if (bucket_of[c] < 0) continue;
    bucket_of[c] = static_cast<std::int32_t>(b.codes.size());
    b.codes.push_back(static_cast<ras::ErrcodeId>(c));
  }
  b.offset.assign(b.codes.size() + 1, 0);
  for (const std::uint32_t g : interrupting) {
    b.offset[static_cast<std::size_t>(
        bucket_of[static_cast<std::size_t>(cols.group_code[g])]) + 1] += 1;
  }
  for (std::size_t i = 0; i < b.codes.size(); ++i) b.offset[i + 1] += b.offset[i];
  b.group.resize(interrupting.size());
  std::vector<std::uint32_t> cursor(b.offset.begin(), b.offset.end() - 1);
  for (const std::uint32_t g : interrupting) {
    b.group[cursor[static_cast<std::size_t>(
        bucket_of[static_cast<std::size_t>(cols.group_code[g])])]++] = g;
  }
  return b;
}

}  // namespace

JobFilterResult job_related_filter(const filter::FilterPipelineResult& filtered,
                                   const MatchResult& matches,
                                   const ClassificationResult& classification,
                                   const joblog::JobLog& jobs, const CharColumns& cols,
                                   const JobFilterConfig& config, par::ThreadPool* pool) {
  (void)filtered;
  JobFilterResult result;
  const std::size_t n_groups = cols.group_count();

  const GroupBuckets buckets = bucket_interrupting_groups(matches, cols);

  // Did any untroubled job run *on the failed hardware itself* between the
  // two reports? (The paper's "no job executed between these two events".)
  // The per-midplane interval index narrows the candidates to jobs whose
  // partition contains the location's midplane(s) — one bucket for sub-rack
  // locations, midplanes_per_rack buckets for rack-level ones — and the
  // start-ordered slice turns the time window into a binary search plus a
  // contiguous scan.
  const joblog::IntervalIndex& index = jobs.interval_index();
  const machine::LocCodec codec = jobs.machine().codec();
  const auto survivor_between = [&](std::uint32_t loc_key, TimePoint a, TimePoint b) {
    bgp::MidplaneId first = 0;
    int span = 1;
    if (codec.is_rack(loc_key)) {
      first = codec.rack_first_midplane(loc_key);
      span = codec.midplanes_per_rack;
    } else {
      first = codec.midplane_of(loc_key);
    }
    for (bgp::MidplaneId m = first; m < first + span; ++m) {
      const joblog::IntervalIndex::StartSlice s = index.starts(m);
      std::size_t i = static_cast<std::size_t>(
          std::upper_bound(s.start_time.begin(), s.start_time.end(), a) -
          s.start_time.begin());
      for (; i < s.start_time.size() && s.start_time[i] < b; ++i) {
        if (s.end_time[i] < b && cols.job_group[s.job[i]] < 0) return true;
      }
    }
    return false;
  };

  // Each errcode's redundancy chain is independent of every other code's
  // (a group belongs to exactly one bucket), so the buckets fan over the
  // pool; the (removed, anchor) pairs land in per-bucket vectors and merge
  // serially in ascending-code order.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> removed(buckets.codes.size());
  par::parallel_for_chunks(buckets.codes.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t bkt = lo; bkt < hi; ++bkt) {
      const std::uint32_t* v = buckets.group.data() + buckets.offset[bkt];
      const std::size_t len = buckets.offset[bkt + 1] - buckets.offset[bkt];
      const auto cit = classification.by_code.find(buckets.codes[bkt]);
      const bool app_error =
          cit != classification.by_code.end() && cit->second.cause == Cause::ApplicationError;

      // red[i] = observation i is redundant; transitivity: the anchor of a
      // redundant observation is the anchor of its predecessor.
      std::vector<std::uint8_t> red(len, 0);
      for (std::size_t i = 1; i < len; ++i) {
        for (std::size_t k = i; k-- > 0;) {
          if (cols.group_time[v[i]] - cols.group_time[v[k]] > config.horizon) break;
          if (red[k]) continue;  // compare against anchors only
          bool is_redundant = false;
          if (app_error) {
            // Same executable interrupted by the same code before.
            for (const std::size_t ji : matches.jobs_by_group[v[i]]) {
              for (const std::size_t jk : matches.jobs_by_group[v[k]]) {
                if (jobs[ji].exec_id == jobs[jk].exec_id) {
                  is_redundant = true;
                  break;
                }
              }
              if (is_redundant) break;
            }
          } else {
            // Same failed hardware, and no untroubled job ran on it in
            // between.
            if (cols.group_loc[v[i]] == cols.group_loc[v[k]] &&
                !survivor_between(cols.group_loc[v[k]], cols.group_time[v[k]],
                                  cols.group_time[v[i]])) {
              is_redundant = true;
            }
          }
          if (is_redundant) {
            red[i] = 1;
            removed[bkt].push_back({v[i], v[k]});
            break;
          }
        }
      }
    }
  }, pool);

  std::vector<std::uint8_t> redundant(n_groups, 0);
  for (const auto& pairs : removed) {
    for (const auto& [g, anchor] : pairs) {
      redundant[g] = 1;
      result.redundant_to[g] = anchor;
    }
  }
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (!redundant[g]) result.kept.push_back(g);
  }
  return result;
}

JobFilterResult job_related_filter(const filter::FilterPipelineResult& filtered,
                                   const MatchResult& matches,
                                   const ClassificationResult& classification,
                                   const joblog::JobLog& jobs,
                                   const JobFilterConfig& config) {
  return job_related_filter(filtered, matches, classification, jobs,
                            build_char_columns(filtered, matches, jobs), config);
}

}  // namespace coral::core
