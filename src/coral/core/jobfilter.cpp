#include "coral/core/jobfilter.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace coral::core {

namespace {

struct GroupObs {
  std::size_t group = 0;
  TimePoint time;
  bgp::Location location;         ///< representative (fault) location
  std::vector<std::size_t> jobs;  ///< interrupted job indices
};

}  // namespace

JobFilterResult job_related_filter(const filter::FilterPipelineResult& filtered,
                                   const MatchResult& matches,
                                   const ClassificationResult& classification,
                                   const joblog::JobLog& jobs,
                                   const JobFilterConfig& config) {
  JobFilterResult result;

  // Interrupting groups per errcode, in time order.
  std::map<ras::ErrcodeId, std::vector<GroupObs>> by_code;
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    if (matches.jobs_by_group[g].empty()) continue;
    const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[g].rep];
    by_code[rep.errcode].push_back(
        {g, rep.event_time, rep.location, matches.jobs_by_group[g]});
  }

  // Survivor jobs (not interrupted), used for the "no job executed in
  // between" test of the system-failure rule.
  std::vector<std::size_t> survivors;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!matches.group_by_job[j]) survivors.push_back(j);
  }

  // Did any untroubled job run *on the failed hardware itself* between the
  // two reports? (The paper's "no job executed between these two events".)
  const auto survivor_between = [&](const bgp::Location& where, TimePoint a, TimePoint b) {
    for (std::size_t s : survivors) {
      const joblog::JobRecord& job = jobs[s];
      if (job.start_time <= a || job.end_time >= b) continue;
      if (job.partition.covers(where)) return true;
    }
    return false;
  };

  std::set<std::size_t> redundant;
  for (auto& [code, v] : by_code) {
    std::sort(v.begin(), v.end(),
              [](const GroupObs& a, const GroupObs& b) { return a.time < b.time; });
    const bool app_error =
        classification.by_code.count(code) != 0 &&
        classification.by_code.at(code).cause == Cause::ApplicationError;

    // anchor[i] = the group each later observation may be redundant to;
    // transitivity: the anchor of a redundant observation is the anchor of
    // its predecessor.
    for (std::size_t i = 1; i < v.size(); ++i) {
      for (std::size_t k = i; k-- > 0;) {
        if (v[i].time - v[k].time > config.horizon) break;
        if (redundant.count(v[k].group)) continue;  // compare against anchors only
        bool is_redundant = false;
        if (app_error) {
          // Same executable interrupted by the same code before.
          for (std::size_t ji : v[i].jobs) {
            for (std::size_t jk : v[k].jobs) {
              if (jobs[ji].exec_id == jobs[jk].exec_id) {
                is_redundant = true;
                break;
              }
            }
            if (is_redundant) break;
          }
        } else {
          // Same failed hardware, and no untroubled job ran on it in
          // between.
          if (v[i].location == v[k].location &&
              !survivor_between(v[k].location, v[k].time, v[i].time)) {
            is_redundant = true;
          }
        }
        if (is_redundant) {
          redundant.insert(v[i].group);
          result.redundant_to[v[i].group] = v[k].group;
          break;
        }
      }
    }
  }

  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    if (!redundant.count(g)) result.kept.push_back(g);
  }
  return result;
}

}  // namespace coral::core
