#pragma once

#include <cstdint>

#include "coral/common/parallel.hpp"
#include "coral/core/matching.hpp"

namespace coral::core {

/// Shared columnar inputs of the characterization stages (§IV-B..§VI-D).
///
/// The four stages downstream of matching — classification, job-related
/// filtering, propagation and vulnerability — all re-derived the same
/// lookups from the AoS results: which group interrupted each job, each
/// group's representative (time, errcode, location), which jobs survived,
/// and the per-executable resubmission chains. This gathers every one of
/// them once, as flat sorted vectors and CSR buckets over packed ids, so
/// the stage hot loops scan contiguous columns instead of rebuilding
/// std::map/std::set accumulations per stage.
///
/// Invariants, all inherited from the producing layers:
///  - groups are ordered by representative event time (GroupSet invariant),
///    so any stable bucketing of groups stays time-ordered per bucket;
///  - jobs are ordered by start time (JobLog::finalize), so survivors and
///    chain buckets are start-ordered for free;
///  - matches.interruptions are ordered by job end time.
struct CharColumns {
  // --- per filtered group (gathered from the representative record) ------
  std::vector<TimePoint> group_time;        ///< rep event_time
  std::vector<ras::ErrcodeId> group_code;   ///< rep errcode
  std::vector<std::uint32_t> group_loc;     ///< rep Location::packed() key

  // --- per job -----------------------------------------------------------
  /// Interrupting group index, or -1 when the job completed cleanly
  /// (matches.group_by_job without the std::optional indirection).
  std::vector<std::int32_t> job_group;
  /// Partition footprint as a half-open midplane range [first, end).
  std::vector<std::int32_t> job_part_first;
  std::vector<std::int32_t> job_part_end;
  std::vector<TimePoint> job_queue;  ///< queue_time
  std::vector<TimePoint> job_start;  ///< start_time (ascending — JobLog order)
  std::vector<TimePoint> job_end;    ///< end_time
  std::vector<std::int32_t> job_user;
  std::vector<std::int32_t> job_project;

  // --- survivors (jobs with no interrupting group), in start order -------
  std::vector<std::uint32_t> survivor_job;
  std::vector<TimePoint> survivor_start;    ///< ascending
  std::vector<TimePoint> survivor_end;      ///< parallel, unordered
  std::vector<std::int32_t> survivor_first; ///< partition range begin
  std::vector<std::int32_t> survivor_last;  ///< partition range end (exclusive)

  // --- resubmission chains: jobs bucketed by ExecId, start order ---------
  /// CSR: exec e owns chain_job[chain_offset[e] .. chain_offset[e+1]).
  /// Buckets are built by a stable counting scatter over the start-ordered
  /// job list, so every chain is a contiguous start-ordered slice.
  std::vector<std::uint32_t> chain_offset;
  std::vector<std::uint32_t> chain_job;

  std::size_t group_count() const { return group_time.size(); }
  std::size_t job_count() const { return job_group.size(); }
  std::size_t exec_count() const {
    return chain_offset.empty() ? 0 : chain_offset.size() - 1;
  }
};

/// Gather the shared columns once per co-analysis. `pool` fans the per-job
/// fills over worker threads; results are identical with or without it.
CharColumns build_char_columns(const filter::FilterPipelineResult& filtered,
                               const MatchResult& matches, const joblog::JobLog& jobs,
                               par::ThreadPool* pool = nullptr);

}  // namespace coral::core
