#include "coral/core/export.hpp"

#include <fstream>
#include <ostream>

#include "coral/common/csv.hpp"
#include "coral/common/error.hpp"
#include "coral/common/strings.hpp"
#include "coral/stats/ecdf.hpp"

namespace coral::core {

void export_cdf_csv(std::ostream& out, const InterarrivalFit& fit,
                    std::size_t max_points) {
  CsvWriter w(out);
  w.write_row({"interarrival_s", "empirical", "weibull", "exponential"});
  if (fit.samples_sec.size() < 2) return;
  const stats::EmpiricalCdf ecdf(fit.samples_sec);
  for (const auto& [x, p] : ecdf.points(max_points)) {
    w.write_row({strformat("%.3f", x), strformat("%.6f", p),
                 strformat("%.6f", fit.weibull.cdf(x)),
                 strformat("%.6f", fit.exponential.cdf(x))});
  }
}

void export_midplane_csv(std::ostream& out, const CoAnalysisResult& r) {
  CsvWriter w(out);
  w.write_row({"midplane", "fatal_events", "workload_hours", "wide_workload_hours"});
  const machine::MachineModel& machine = r.machine();
  for (int m = 0; m < machine.midplane_count(); ++m) {
    const auto i = static_cast<std::size_t>(m);
    w.write_row({machine.location_string(machine.midplane_location(m)),
                 strformat("%.1f", r.fatal_events_per_midplane[i]),
                 strformat("%.2f", r.workload_per_midplane[i] / 3600.0),
                 strformat("%.2f", r.wide_workload_per_midplane[i] / 3600.0)});
  }
}

void export_daily_csv(std::ostream& out, const CoAnalysisResult& r) {
  CsvWriter w(out);
  w.write_row({"day", "interruptions"});
  for (std::size_t d = 0; d < r.interruptions_per_day.size(); ++d) {
    w.write_row({std::to_string(d), std::to_string(r.interruptions_per_day[d])});
  }
}

void export_resubmission_csv(std::ostream& out, const CoAnalysisResult& r) {
  CsvWriter w(out);
  w.write_row({"category", "k", "resubmissions", "interrupted", "probability"});
  const char* names[2] = {"system", "application"};
  for (int cat = 0; cat < 2; ++cat) {
    for (int k = 1; k <= 3; ++k) {
      const auto& p = r.vulnerability.resubmission[cat].by_k[static_cast<std::size_t>(k - 1)];
      w.write_row({names[cat], std::to_string(k), std::to_string(p.resubmissions),
                   std::to_string(p.interrupted), strformat("%.4f", p.probability())});
    }
  }
}

void export_grid_csv(std::ostream& out, const CoAnalysisResult& r) {
  CsvWriter w(out);
  w.write_row({"size_midplanes", "runtime_bucket", "interrupted", "total", "proportion"});
  static const int kSizes[9] = {1, 2, 4, 8, 16, 32, 48, 64, 80};
  static const char* kBuckets[4] = {"10-400s", "400-1600s", "1600-6400s", ">=6400s"};
  for (int row = 0; row < 9; ++row) {
    for (int col = 0; col < 4; ++col) {
      const auto& c =
          r.vulnerability.grid.cells[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      w.write_row({std::to_string(kSizes[row]), kBuckets[col],
                   std::to_string(c.interrupted), std::to_string(c.total),
                   strformat("%.5f", c.proportion())});
    }
  }
}

int export_all(const std::string& directory, const CoAnalysisResult& r) {
  int written = 0;
  const auto write_file = [&](const char* name, auto&& writer) {
    const std::string path = directory + "/" + name;
    std::ofstream out(path);
    if (!out) throw Error("cannot open for writing: " + path);
    writer(out);
    ++written;
  };
  write_file("fig3a_fatal_cdf_before.csv",
             [&](std::ostream& o) { export_cdf_csv(o, r.fatal_before_jobfilter); });
  write_file("fig3b_fatal_cdf_after.csv",
             [&](std::ostream& o) { export_cdf_csv(o, r.fatal_after_jobfilter); });
  write_file("fig4_midplanes.csv", [&](std::ostream& o) { export_midplane_csv(o, r); });
  write_file("fig5_daily.csv", [&](std::ostream& o) { export_daily_csv(o, r); });
  write_file("fig6a_interruption_cdf_system.csv",
             [&](std::ostream& o) { export_cdf_csv(o, r.interruptions_system); });
  write_file("fig6b_interruption_cdf_application.csv",
             [&](std::ostream& o) { export_cdf_csv(o, r.interruptions_application); });
  write_file("fig7_resubmissions.csv",
             [&](std::ostream& o) { export_resubmission_csv(o, r); });
  write_file("table6_grid.csv", [&](std::ostream& o) { export_grid_csv(o, r); });
  return written;
}

}  // namespace coral::core
