#pragma once

#include "coral/core/classification.hpp"

namespace coral::core {

/// Job-related filtering (§IV-C) — the paper's novel third preprocessing
/// step. Temporal-spatial filtering cannot remove redundancy caused by the
/// scheduler reallocating failed nodes or by users resubmitting buggy
/// codes, because the gap between re-reports is set by job arrival, not by
/// a fixed threshold.
struct JobFilterConfig {
  /// Redundancy chains are only followed within this horizon (a repeat of
  /// the same code at the same location months later is a new fault).
  Usec horizon = 14 * kUsecPerDay;
};

struct JobFilterResult {
  /// Groups that survive job-related filtering (indices into the original
  /// group vector of the filter pipeline).
  std::vector<std::size_t> kept;
  /// For each removed group: the earlier group it is redundant to.
  std::map<std::size_t, std::size_t> redundant_to;

  std::size_t removed_count() const { return redundant_to.size(); }
};

/// Identify job-related redundant event groups:
///   - system failures: a later interruption by the same code on the same
///     nodes with *no successfully completed job* on those nodes in between
///     is the same fault re-reported (transitively);
///   - application errors: a later interruption of the *same executable* by
///     the same code is the same bug re-reported.
JobFilterResult job_related_filter(const filter::FilterPipelineResult& filtered,
                                   const MatchResult& matches,
                                   const ClassificationResult& classification,
                                   const joblog::JobLog& jobs,
                                   const CharColumns& cols,
                                   const JobFilterConfig& config = {},
                                   par::ThreadPool* pool = nullptr);

JobFilterResult job_related_filter(const filter::FilterPipelineResult& filtered,
                                   const MatchResult& matches,
                                   const ClassificationResult& classification,
                                   const joblog::JobLog& jobs,
                                   const JobFilterConfig& config = {});

}  // namespace coral::core
