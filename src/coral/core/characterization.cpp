#include "coral/core/characterization.hpp"

#include <algorithm>

namespace coral::core {

CharColumns build_char_columns(const filter::FilterPipelineResult& filtered,
                               const MatchResult& matches, const joblog::JobLog& jobs,
                               par::ThreadPool* pool) {
  CharColumns c;
  const std::size_t n_groups = filtered.groups.size();
  const std::size_t n_jobs = jobs.size();

  c.group_time.resize(n_groups);
  c.group_code.resize(n_groups);
  c.group_loc.resize(n_groups);
  par::parallel_for_chunks(n_groups, 4096, [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[g].rep];
      c.group_time[g] = rep.event_time;
      c.group_code[g] = rep.errcode;
      c.group_loc[g] = rep.location.packed();
    }
  }, pool);

  c.job_group.resize(n_jobs);
  c.job_part_first.resize(n_jobs);
  c.job_part_end.resize(n_jobs);
  c.job_queue.resize(n_jobs);
  c.job_start.resize(n_jobs);
  c.job_end.resize(n_jobs);
  c.job_user.resize(n_jobs);
  c.job_project.resize(n_jobs);
  par::parallel_for_chunks(n_jobs, 8192, [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      const auto& g = matches.group_by_job[j];
      c.job_group[j] = g ? static_cast<std::int32_t>(*g) : -1;
      const joblog::JobRecord& job = jobs[j];
      c.job_part_first[j] = job.partition.first_midplane();
      c.job_part_end[j] = job.partition.end_midplane();
      c.job_queue[j] = job.queue_time;
      c.job_start[j] = job.start_time;
      c.job_end[j] = job.end_time;
      c.job_user[j] = job.user_id;
      c.job_project[j] = job.project_id;
    }
  }, pool);

  // Survivors, in start order (= ascending job index).
  for (std::size_t j = 0; j < n_jobs; ++j) {
    if (c.job_group[j] >= 0) continue;
    c.survivor_job.push_back(static_cast<std::uint32_t>(j));
    c.survivor_start.push_back(c.job_start[j]);
    c.survivor_end.push_back(c.job_end[j]);
    c.survivor_first.push_back(c.job_part_first[j]);
    c.survivor_last.push_back(c.job_part_end[j]);
  }

  // Chains: stable counting scatter by exec id. Exec ids are interned table
  // indices, hence dense; tolerate a log built with sparse ids anyway.
  std::int64_t max_exec = static_cast<std::int64_t>(jobs.exec_files().size()) - 1;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    max_exec = std::max<std::int64_t>(max_exec, jobs[j].exec_id);
  }
  const auto n_exec = static_cast<std::size_t>(max_exec + 1);
  c.chain_offset.assign(n_exec + 1, 0);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    c.chain_offset[static_cast<std::size_t>(jobs[j].exec_id) + 1] += 1;
  }
  for (std::size_t e = 0; e < n_exec; ++e) c.chain_offset[e + 1] += c.chain_offset[e];
  c.chain_job.resize(n_jobs);
  std::vector<std::uint32_t> cursor(c.chain_offset.begin(), c.chain_offset.end() - 1);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    c.chain_job[cursor[static_cast<std::size_t>(jobs[j].exec_id)]++] =
        static_cast<std::uint32_t>(j);
  }
  return c;
}

}  // namespace coral::core
