#pragma once

#include <map>
#include <set>

#include "coral/core/classification.hpp"

namespace coral::core {

/// Failure-propagation analysis (§VI-C; Observation 8).
struct PropagationResult {
  /// Groups that interrupted >= 2 jobs on non-overlapping partitions
  /// (spatial propagation across concurrently running jobs).
  std::vector<std::size_t> propagating_groups;
  /// Errcodes responsible for spatial propagation (paper:
  /// bg_code_script_error and CiodHungProxy).
  std::set<ras::ErrcodeId> propagating_codes;
  /// Fraction of fatal-event groups that propagate (paper: 7.22%).
  double propagating_event_fraction = 0;

  /// Temporal propagation: resubmissions placed on the same partition as
  /// the interrupted run (paper: 57.44%).
  std::size_t resubmissions_after_interruption = 0;
  std::size_t resubmissions_same_partition = 0;
  double same_partition_fraction() const {
    return resubmissions_after_interruption == 0
               ? 0.0
               : static_cast<double>(resubmissions_same_partition) /
                     static_cast<double>(resubmissions_after_interruption);
  }
};

struct PropagationConfig {
  /// A later run of the same executable within this gap of an interrupted
  /// run counts as the resubmission of that run.
  Usec resubmit_gap = 3 * kUsecPerDay;
};

/// The columnar overload drives the spatial pass from the per-job partition
/// ranges (a disjoint victim pair exists iff max(first) >= min(end)) and the
/// temporal pass from the exec-chain CSR, fanned over `pool`; the
/// convenience overload gathers the columns itself. Results are identical.
PropagationResult analyze_propagation(const filter::FilterPipelineResult& filtered,
                                      const MatchResult& matches,
                                      const joblog::JobLog& jobs,
                                      const CharColumns& cols,
                                      const PropagationConfig& config = {},
                                      par::ThreadPool* pool = nullptr);

PropagationResult analyze_propagation(const filter::FilterPipelineResult& filtered,
                                      const MatchResult& matches,
                                      const joblog::JobLog& jobs,
                                      const PropagationConfig& config = {});

}  // namespace coral::core
