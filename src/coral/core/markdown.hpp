#pragma once

#include <string>

#include "coral/core/pipeline.hpp"

namespace coral::core {

/// Render the whole co-analysis as a self-contained Markdown report —
/// filter stages, fitted distributions, the Table IV/V/VI equivalents and
/// all twelve observations — suitable for pasting into an issue tracker or
/// operations wiki.
std::string render_markdown_report(const CoAnalysisResult& r,
                                   const ras::RasLogSummary& ras,
                                   const joblog::JobLogSummary& jobs);

}  // namespace coral::core
