#pragma once

#include <iosfwd>
#include <string>

#include "coral/core/pipeline.hpp"

namespace coral::core {

/// CSV exporters for every figure's data series, so external plotting
/// tools (gnuplot, matplotlib, ...) can redraw the paper's plots from a
/// CoAnalysisResult. Each writer emits a header row and plain columns.

/// Fig. 3 / Fig. 6 panels: empirical CDF plus fitted Weibull/exponential
/// CDFs. Columns: interarrival_s, empirical, weibull, exponential.
void export_cdf_csv(std::ostream& out, const InterarrivalFit& fit,
                    std::size_t max_points = 256);

/// Fig. 4: per-midplane series. Columns: midplane, fatal_events,
/// workload_hours, wide_workload_hours.
void export_midplane_csv(std::ostream& out, const CoAnalysisResult& r);

/// Fig. 5: interruptions per day. Columns: day, interruptions.
void export_daily_csv(std::ostream& out, const CoAnalysisResult& r);

/// Fig. 7: resubmission statistics. Columns: category, k, resubmissions,
/// interrupted, probability.
void export_resubmission_csv(std::ostream& out, const CoAnalysisResult& r);

/// Table VI. Columns: size_midplanes, runtime_bucket, interrupted, total,
/// proportion.
void export_grid_csv(std::ostream& out, const CoAnalysisResult& r);

/// Write all of the above into `directory` with canonical file names
/// (fig3a/fig3b/fig4/fig5/fig6a/fig6b/fig7/table6 .csv). Returns the
/// number of files written. Throws coral::Error when the directory is not
/// writable.
int export_all(const std::string& directory, const CoAnalysisResult& r);

}  // namespace coral::core
