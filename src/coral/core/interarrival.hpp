#pragma once

#include "coral/core/jobfilter.hpp"
#include "coral/stats/distributions.hpp"
#include "coral/stats/ecdf.hpp"

namespace coral::core {

/// A fitted interarrival distribution: both candidate models plus the
/// likelihood-ratio verdict (the paper fits Weibull and exponential and
/// tests which explains the data; Fig. 3/6, Tables IV/V).
struct InterarrivalFit {
  std::vector<double> samples_sec;  ///< interarrival times in seconds
  stats::Weibull weibull{1.0, 1.0};
  stats::Exponential exponential{1.0};
  stats::LrtResult lrt;
  double ks_weibull = 0;
  double ks_exponential = 0;

  double mtbf_sec() const { return weibull.mean(); }
};

/// Interarrival samples (seconds) from a time-ordered series of event
/// times. Throws InvalidArgument when fewer than 3 points are given.
std::vector<double> interarrival_seconds(std::span<const TimePoint> times);

/// Fit both models to interarrival samples.
InterarrivalFit fit_interarrivals(std::vector<double> samples_sec);

/// Representative event times of the given groups, time-ordered.
std::vector<TimePoint> group_times(const filter::FilterPipelineResult& filtered,
                                   std::span<const std::size_t> group_indices);

/// All group indices [0, n) — the "before job-related filtering" series.
std::vector<std::size_t> all_groups(const filter::FilterPipelineResult& filtered);

}  // namespace coral::core
