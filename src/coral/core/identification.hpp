#pragma once

#include <map>

#include "coral/core/matching.hpp"

namespace coral::core {

/// The three cases of §IV-A for one fatal event.
enum class EventCase : std::uint8_t {
  InterruptsJob,    ///< case 1: one or more jobs terminated with the event
  NoJobAtLocation,  ///< case 2: the location was idle
  JobSurvives,      ///< case 3: a job ran atop and kept running
};

/// Per-ERRCODE verdict of the identification rules.
enum class ErrcodeVerdict : std::uint8_t {
  InterruptionRelated,  ///< truly interrupts user jobs
  NonFatalToJobs,       ///< FATAL severity but jobs survive
  Undetermined,         ///< never observed with a job atop (or conflicting)
};

const char* to_string(EventCase c);
const char* to_string(ErrcodeVerdict v);

struct IdentificationConfig {
  /// Case-noise tolerance: a code still counts as interruption-related
  /// (resp. non-fatal) when the conflicting case is at most this fraction
  /// of the case-1 + case-3 observations. The paper applies the rule
  /// strictly on hand-checked data; a real pipeline needs slack for
  /// coincidental matches.
  double noise_tolerance = 0.2;
};

/// Identification output: the per-event case census and per-errcode
/// verdicts (§IV-A; Observation 1).
struct IdentificationResult {
  std::vector<EventCase> event_cases;  ///< per filtered group
  std::map<ras::ErrcodeId, ErrcodeVerdict> verdicts;

  int count(ErrcodeVerdict v) const;
  /// Fraction of fatal events whose code is NonFatalToJobs (Obs. 1:
  /// 20.84%).
  double nonfatal_event_fraction = 0;
  /// Fraction of events with no job at the location (§VI-B: 45.45%).
  double idle_event_fraction = 0;
};

/// Apply the three-case rules to the filtered events and the matching.
IdentificationResult identify_interruption_related(
    const filter::FilterPipelineResult& filtered, const MatchResult& matches,
    const joblog::JobLog& jobs, const IdentificationConfig& config = {});

}  // namespace coral::core
