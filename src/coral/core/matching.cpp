#include "coral/core/matching.hpp"

#include <algorithm>

#include "coral/bgp/topology.hpp"
#include "coral/machine/codec.hpp"

namespace coral::core {

namespace {

/// Reusable footprint buffers, allocated once per worker chunk so the
/// per-group hot loop never touches the allocator regardless of machine
/// size.
struct FootprintScratch {
  std::vector<unsigned char> touched;
  std::vector<bgp::MidplaneId> footprint;
  explicit FootprintScratch(int midplane_count)
      : touched(static_cast<std::size_t>(midplane_count), 0),
        footprint(static_cast<std::size_t>(midplane_count)) {}
};

/// Jobs matched by one group: the per-group work item (independent of every
/// other group, hence trivially parallel).
std::vector<std::size_t> match_one_group(const filter::FilterPipelineResult& filtered,
                                         const joblog::IntervalIndex& index,
                                         const filter::EventGroup& group, Usec window,
                                         const machine::LocCodec& codec,
                                         FootprintScratch& scratch, std::size_t& scanned) {
  // The independent event happens at the representative record's time;
  // later member records are redundant re-reports. Jobs are therefore
  // matched against a window around the representative time, but the
  // location test runs over every member record (a shared-file-system
  // fault's records land inside each victim job's partition).
  //
  // With the per-midplane interval index the member loop collapses into a
  // footprint: a job in midplane bucket m has a partition containing m, and
  // m is only queried because some member record touches it — so bucket
  // membership *is* the coverage test, and only jobs that can possibly
  // match are ever examined.
  const TimePoint rep_time = filtered.fatal_events[group.rep].event_time;
  const TimePoint lo = rep_time - window;
  const TimePoint hi = rep_time + window;

  const std::size_t midplane_count = scratch.touched.size();
  unsigned char* touched = scratch.touched.data();
  bgp::MidplaneId* footprint = scratch.footprint.data();
  std::size_t footprint_size = 0;
  const auto touch = [&](bgp::MidplaneId m) {
    if (touched[m]) return;
    touched[m] = 1;
    footprint[footprint_size++] = m;
  };
  for (const std::size_t member : group.members) {
    const std::uint32_t key = filtered.fatal_events[member].location.packed();
    if (codec.is_rack(key)) {
      const bgp::MidplaneId first = codec.rack_first_midplane(key);
      for (int i = 0; i < codec.midplanes_per_rack; ++i) touch(first + i);
    } else {
      touch(codec.midplane_of(key));
    }
    if (footprint_size == midplane_count) break;  // whole machine reached
  }

  std::vector<std::size_t> matched;
  for (std::size_t f = 0; f < footprint_size; ++f) {
    const auto slice = index.ends(footprint[f]);
    const auto begin = slice.end_time.begin();
    auto it = std::lower_bound(begin, slice.end_time.end(), lo);
    // Every job in [lo, hi] by end time is a match: JobLog::append rejects
    // inverted intervals, so start <= end <= hi always holds and no
    // started-after-window check is needed here.
    for (; it != slice.end_time.end() && *it <= hi; ++it) {
      const auto k = static_cast<std::size_t>(it - begin);
      ++scanned;
      matched.push_back(slice.job[k]);
    }
  }
  // Reset only the touched entries so the scratch reset stays O(footprint).
  for (std::size_t f = 0; f < footprint_size; ++f) touched[footprint[f]] = 0;
  std::sort(matched.begin(), matched.end());
  matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
  return matched;
}

}  // namespace

MatchResult match_interruptions(const filter::FilterPipelineResult& filtered,
                                const joblog::JobLog& jobs, const MatchConfig& config) {
  MatchResult result;
  result.jobs_by_group.resize(filtered.groups.size());
  result.group_by_job.assign(jobs.size(), std::nullopt);

  const joblog::IntervalIndex& index = jobs.interval_index();

  // Phase 1 (parallel): per-group candidate lists. Writes go to disjoint
  // slots of jobs_by_group, so no synchronization is needed. Interval-index
  // scan work is tallied per chunk and published once per chunk, so the
  // hot loop stays lock-free even with a collector attached.
  obs::Span phase1(config.obs, "match.phase1");
  const machine::LocCodec codec = jobs.machine().codec();
  const int midplane_count = jobs.machine().midplane_count();
  par::parallel_for_chunks(
      filtered.groups.size(), 64,
      [&](std::size_t begin, std::size_t end) {
        std::size_t scanned = 0;
        std::size_t matched = 0;
        FootprintScratch scratch(midplane_count);
        for (std::size_t g = begin; g < end; ++g) {
          result.jobs_by_group[g] = match_one_group(filtered, index, filtered.groups[g],
                                                    config.window, codec, scratch, scanned);
          matched += result.jobs_by_group[g].size();
        }
        CORAL_OBS_COUNT(config.obs, "match.candidates_scanned", scanned);
        CORAL_OBS_COUNT(config.obs, "match.jobs_matched", matched);
      },
      config.pool);
  phase1.counts(filtered.groups.size(), filtered.groups.size());
  phase1.end();

  // Phase 2 (sequential, deterministic): a job belongs to its *first*
  // matching group (groups are ordered by representative time).
  obs::Span phase2(config.obs, "match.phase2");
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    for (std::size_t job_idx : result.jobs_by_group[g]) {
      if (!result.group_by_job[job_idx]) {
        result.group_by_job[job_idx] = g;
        result.interruptions.push_back({g, job_idx, jobs[job_idx].end_time});
      }
    }
  }
  phase2.counts(filtered.groups.size(), result.interruptions.size());

  std::sort(result.interruptions.begin(), result.interruptions.end(),
            [](const Interruption& a, const Interruption& b) { return a.time < b.time; });
  return result;
}

}  // namespace coral::core
