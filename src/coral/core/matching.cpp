#include "coral/core/matching.hpp"

#include <algorithm>
#include <set>

namespace coral::core {

namespace {

/// Sorted-by-end-time view of the job log for window queries.
struct EndIndex {
  std::vector<std::size_t> by_end;
  std::vector<TimePoint> end_times;

  explicit EndIndex(const joblog::JobLog& jobs) {
    by_end.resize(jobs.size());
    for (std::size_t i = 0; i < by_end.size(); ++i) by_end[i] = i;
    std::sort(by_end.begin(), by_end.end(), [&jobs](std::size_t a, std::size_t b) {
      return jobs[a].end_time < jobs[b].end_time;
    });
    end_times.resize(by_end.size());
    for (std::size_t i = 0; i < by_end.size(); ++i) end_times[i] = jobs[by_end[i]].end_time;
  }
};

/// Jobs matched by one group: the per-group work item (independent of every
/// other group, hence trivially parallel).
std::vector<std::size_t> match_one_group(const filter::FilterPipelineResult& filtered,
                                         const joblog::JobLog& jobs, const EndIndex& index,
                                         const filter::EventGroup& group, Usec window) {
  // The independent event happens at the representative record's time;
  // later member records are redundant re-reports. Jobs are therefore
  // matched against a window around the representative time, but the
  // location test runs over every member record (a shared-file-system
  // fault's records land inside each victim job's partition).
  const TimePoint rep_time = filtered.fatal_events[group.rep].event_time;
  const TimePoint lo = rep_time - window;
  const TimePoint hi = rep_time + window;

  std::set<std::size_t> matched;
  auto it = std::lower_bound(index.end_times.begin(), index.end_times.end(), lo);
  for (; it != index.end_times.end() && *it <= hi; ++it) {
    const std::size_t job_idx =
        index.by_end[static_cast<std::size_t>(it - index.end_times.begin())];
    const joblog::JobRecord& job = jobs[job_idx];
    if (job.start_time > rep_time + window) continue;  // not yet running
    for (std::size_t member : group.members) {
      if (job.partition.covers(filtered.fatal_events[member].location)) {
        matched.insert(job_idx);
        break;
      }
    }
  }
  return {matched.begin(), matched.end()};
}

}  // namespace

MatchResult match_interruptions(const filter::FilterPipelineResult& filtered,
                                const joblog::JobLog& jobs, const MatchConfig& config) {
  MatchResult result;
  result.jobs_by_group.resize(filtered.groups.size());
  result.group_by_job.assign(jobs.size(), std::nullopt);

  const EndIndex index(jobs);

  // Phase 1 (parallel): per-group candidate lists. Writes go to disjoint
  // slots of jobs_by_group, so no synchronization is needed.
  par::parallel_for_chunks(
      filtered.groups.size(), 64,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t g = begin; g < end; ++g) {
          result.jobs_by_group[g] =
              match_one_group(filtered, jobs, index, filtered.groups[g], config.window);
        }
      },
      config.pool);

  // Phase 2 (sequential, deterministic): a job belongs to its *first*
  // matching group (groups are ordered by representative time).
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    for (std::size_t job_idx : result.jobs_by_group[g]) {
      if (!result.group_by_job[job_idx]) {
        result.group_by_job[job_idx] = g;
        result.interruptions.push_back({g, job_idx, jobs[job_idx].end_time});
      }
    }
  }

  std::sort(result.interruptions.begin(), result.interruptions.end(),
            [](const Interruption& a, const Interruption& b) { return a.time < b.time; });
  return result;
}

}  // namespace coral::core
