#include "coral/core/classification.hpp"

#include <algorithm>
#include <span>

#include "coral/stats/correlation.hpp"

namespace coral::core {

const char* to_string(Cause c) {
  return c == Cause::SystemFailure ? "system failure" : "application error";
}

const char* to_string(CauseRule r) {
  switch (r) {
    case CauseRule::NeverWithJob: return "never observed with a job";
    case CauseRule::RepeatSameLocation: return "repeats at the same location";
    case CauseRule::FollowsResubmission: return "follows the resubmitted executable";
    case CauseRule::CorrelationFallback: return "correlation with labeled codes";
  }
  return "?";
}

int ClassificationResult::system_type_count() const {
  int n = 0;
  for (const auto& [code, cc] : by_code) n += cc.cause == Cause::SystemFailure ? 1 : 0;
  return n;
}

int ClassificationResult::application_type_count() const {
  int n = 0;
  for (const auto& [code, cc] : by_code) n += cc.cause == Cause::ApplicationError ? 1 : 0;
  return n;
}

namespace {

/// Interruptions bucketed by errcode, SoA. matches.interruptions are ordered
/// by job end time (= the observation time), so the stable counting scatter
/// leaves every bucket time-ordered — the order rules 2 and 3 scan in.
struct ObsBuckets {
  std::vector<ras::ErrcodeId> codes;  ///< ascending, one per non-empty bucket
  std::vector<std::uint32_t> offset;  ///< codes.size() + 1 CSR offsets
  std::vector<TimePoint> time;
  std::vector<joblog::ExecId> exec;
  std::vector<std::int32_t> part_first;
  std::vector<std::int32_t> part_end;
  std::vector<std::uint32_t> loc;  ///< representative (fault) location key

  std::ptrdiff_t find(ras::ErrcodeId code) const {
    const auto it = std::lower_bound(codes.begin(), codes.end(), code);
    return it != codes.end() && *it == code ? it - codes.begin() : -1;
  }
};

ObsBuckets bucket_interruptions(const MatchResult& matches, const joblog::JobLog& jobs,
                                const CharColumns& cols) {
  ObsBuckets b;
  const std::size_t n = matches.interruptions.size();
  if (n == 0) {
    b.offset.assign(1, 0);
    return b;
  }
  std::vector<ras::ErrcodeId> code_of(n);
  ras::ErrcodeId max_code = 0;
  for (std::size_t i = 0; i < n; ++i) {
    code_of[i] = cols.group_code[matches.interruptions[i].group];
    max_code = std::max(max_code, code_of[i]);
  }
  std::vector<std::int32_t> bucket_of(static_cast<std::size_t>(max_code) + 1, -1);
  for (const ras::ErrcodeId c : code_of) bucket_of[static_cast<std::size_t>(c)] = 0;
  for (std::size_t c = 0; c < bucket_of.size(); ++c) {
    if (bucket_of[c] < 0) continue;
    bucket_of[c] = static_cast<std::int32_t>(b.codes.size());
    b.codes.push_back(static_cast<ras::ErrcodeId>(c));
  }
  b.offset.assign(b.codes.size() + 1, 0);
  for (const ras::ErrcodeId c : code_of) {
    b.offset[static_cast<std::size_t>(bucket_of[static_cast<std::size_t>(c)]) + 1] += 1;
  }
  for (std::size_t i = 0; i < b.codes.size(); ++i) b.offset[i + 1] += b.offset[i];
  b.time.resize(n);
  b.exec.resize(n);
  b.part_first.resize(n);
  b.part_end.resize(n);
  b.loc.resize(n);
  std::vector<std::uint32_t> cursor(b.offset.begin(), b.offset.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Interruption& in = matches.interruptions[i];
    const std::uint32_t at = cursor[static_cast<std::size_t>(
        bucket_of[static_cast<std::size_t>(code_of[i])])]++;
    b.time[at] = in.time;
    b.exec[at] = jobs[in.job].exec_id;
    b.part_first[at] = cols.job_part_first[in.job];
    b.part_end[at] = cols.job_part_end[in.job];
    b.loc[at] = cols.group_loc[in.group];
  }
  return b;
}

/// Group representative times bucketed by errcode (CSR over *all* groups, in
/// group order = time order), for the rule-4 per-code series.
struct GroupTimeBuckets {
  std::vector<ras::ErrcodeId> codes;
  std::vector<std::uint32_t> offset;
  std::vector<TimePoint> time;

  std::span<const TimePoint> times_of(ras::ErrcodeId code) const {
    const auto it = std::lower_bound(codes.begin(), codes.end(), code);
    if (it == codes.end() || *it != code) return {};
    const std::size_t i = static_cast<std::size_t>(it - codes.begin());
    return {time.data() + offset[i], offset[i + 1] - offset[i]};
  }
};

GroupTimeBuckets bucket_group_times(const CharColumns& cols) {
  GroupTimeBuckets b;
  const std::size_t n = cols.group_count();
  if (n == 0) {
    b.offset.assign(1, 0);
    return b;
  }
  ras::ErrcodeId max_code = 0;
  for (const ras::ErrcodeId c : cols.group_code) max_code = std::max(max_code, c);
  std::vector<std::int32_t> bucket_of(static_cast<std::size_t>(max_code) + 1, -1);
  for (const ras::ErrcodeId c : cols.group_code) bucket_of[static_cast<std::size_t>(c)] = 0;
  for (std::size_t c = 0; c < bucket_of.size(); ++c) {
    if (bucket_of[c] < 0) continue;
    bucket_of[c] = static_cast<std::int32_t>(b.codes.size());
    b.codes.push_back(static_cast<ras::ErrcodeId>(c));
  }
  b.offset.assign(b.codes.size() + 1, 0);
  for (const ras::ErrcodeId c : cols.group_code) {
    b.offset[static_cast<std::size_t>(bucket_of[static_cast<std::size_t>(c)]) + 1] += 1;
  }
  for (std::size_t i = 0; i < b.codes.size(); ++i) b.offset[i + 1] += b.offset[i];
  b.time.resize(n);
  std::vector<std::uint32_t> cursor(b.offset.begin(), b.offset.end() - 1);
  for (std::size_t g = 0; g < n; ++g) {
    b.time[cursor[static_cast<std::size_t>(
        bucket_of[static_cast<std::size_t>(cols.group_code[g])])]++] = cols.group_time[g];
  }
  return b;
}

}  // namespace

ClassificationResult classify_causes(const filter::FilterPipelineResult& filtered,
                                     const MatchResult& matches,
                                     const IdentificationResult& identification,
                                     const joblog::JobLog& jobs, const CharColumns& cols,
                                     const ClassificationConfig& config,
                                     par::ThreadPool* pool) {
  ClassificationResult result;

  const ObsBuckets obs = bucket_interruptions(matches, jobs, cols);

  // --- Rules 1–3, one independent verdict per errcode --------------------
  // The codes are independent of each other, so they fan over the pool; the
  // outcomes land in an index-addressed array and merge serially in map
  // (ascending-code) order, keeping the result deterministic.
  std::vector<ras::ErrcodeId> vcode;
  std::vector<ErrcodeVerdict> vview;
  vcode.reserve(identification.verdicts.size());
  vview.reserve(identification.verdicts.size());
  for (const auto& [code, verdict] : identification.verdicts) {
    vcode.push_back(code);
    vview.push_back(verdict);
  }
  enum : std::uint8_t { kNone = 0, kRule1, kRule2, kRule3 };
  std::vector<std::uint8_t> outcome(vcode.size(), kNone);

  par::parallel_for_chunks(vcode.size(), 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const std::ptrdiff_t bi = obs.find(vcode[c]);
      if (bi < 0) {
        // Rule 1: only observed on idle hardware → system failure.
        if (vview[c] == ErrcodeVerdict::Undetermined) outcome[c] = kRule1;
        continue;  // non-fatal-to-jobs; resolved by the correlation pass
      }
      const std::size_t vb = obs.offset[static_cast<std::size_t>(bi)];
      const std::size_t ve = obs.offset[static_cast<std::size_t>(bi) + 1];

      // Rule 2: interruptions of different jobs of *different executables*
      // reported from the *same hardware location* → the scheduler kept
      // assigning the failed nodes → system. (Distinct executables separate
      // this from a user resubmitting a buggy code to the same partition;
      // comparing fault locations rather than job partitions keeps a
      // propagating shared-file-system error from looking like node repeats.)
      bool same_location_repeat = false;
      for (std::size_t i = vb; i + 1 < ve && !same_location_repeat; ++i) {
        for (std::size_t k = i + 1; k < ve; ++k) {
          if (obs.time[k] - obs.time[i] > config.same_location_horizon) break;
          if (obs.exec[k] != obs.exec[i] && obs.loc[k] == obs.loc[i]) {
            same_location_repeat = true;
            break;
          }
        }
      }

      // Rule 3 (Fig. 2): the same executable is interrupted by the same code
      // at a *different* location, while the original location later hosts an
      // untroubled job → the error travels with the code, not the nodes.
      int follow_evidence = 0;
      for (std::size_t i = vb; i < ve; ++i) {
        bool found_for_i = false;
        for (std::size_t k = i + 1; k < ve && !found_for_i; ++k) {
          if (obs.time[k] - obs.time[i] > config.follow_gap) break;
          if (obs.exec[k] != obs.exec[i]) continue;
          if (obs.part_first[i] < obs.part_end[k] && obs.part_first[k] < obs.part_end[i]) {
            continue;  // same nodes — not the travelling pattern
          }
          // (b) an untroubled job ran on the original partition in between
          // (it must start inside the gap; it may still be running at the
          // second interruption — Fig. 2's "job 2 has no interruption").
          // Survivors are start-ordered, so the window is one binary search
          // plus a contiguous scan.
          const std::size_t sb = static_cast<std::size_t>(
              std::upper_bound(cols.survivor_start.begin(), cols.survivor_start.end(),
                               obs.time[i]) -
              cols.survivor_start.begin());
          for (std::size_t s = sb;
               s < cols.survivor_start.size() && cols.survivor_start[s] < obs.time[k]; ++s) {
            if (cols.survivor_first[s] < obs.part_end[i] &&
                obs.part_first[i] < cols.survivor_last[s]) {
              found_for_i = true;
              break;
            }
          }
        }
        if (found_for_i) ++follow_evidence;
      }

      // The follows-the-executable evidence is the stronger signal: a code
      // that travels with a resubmitted binary while its old nodes stay
      // healthy cannot be a hardware fault, whereas a shared-resource
      // application error can coincidentally repeat at one location.
      if (follow_evidence >= config.min_follow_evidence) {
        outcome[c] = kRule3;
      } else if (same_location_repeat) {
        outcome[c] = kRule2;
      }
      // else: unlabeled, falls through to the correlation pass.
    }
  }, pool);

  for (std::size_t c = 0; c < vcode.size(); ++c) {
    switch (outcome[c]) {
      case kRule1:
        result.by_code[vcode[c]] = {Cause::SystemFailure, CauseRule::NeverWithJob, 0};
        break;
      case kRule2:
        result.by_code[vcode[c]] = {Cause::SystemFailure, CauseRule::RepeatSameLocation, 0};
        break;
      case kRule3:
        result.by_code[vcode[c]] = {Cause::ApplicationError, CauseRule::FollowsResubmission, 0};
        break;
      default: break;
    }
  }

  // --- Rule 4: Pearson-correlation fallback ------------------------------
  // Build aggregate time series of the already-labeled categories and
  // correlate each unlabeled code's event times against them.
  if (!filtered.fatal_events.empty()) {
    const TimePoint begin = filtered.fatal_events.front().event_time;
    const TimePoint end = filtered.fatal_events.back().event_time + 1;

    std::vector<TimePoint> sys_times, app_times;
    for (std::size_t g = 0; g < cols.group_count(); ++g) {
      const auto cit = result.by_code.find(cols.group_code[g]);
      if (cit == result.by_code.end()) continue;
      (cit->second.cause == Cause::SystemFailure ? sys_times : app_times)
          .push_back(cols.group_time[g]);
    }
    const GroupTimeBuckets series = bucket_group_times(cols);

    std::vector<std::size_t> todo;
    for (std::size_t c = 0; c < vcode.size(); ++c) {
      if (result.by_code.find(vcode[c]) == result.by_code.end()) todo.push_back(c);
    }
    std::vector<Cause> cause(todo.size(), Cause::SystemFailure);
    std::vector<double> corr(todo.size(), 0.0);
    par::parallel_for_chunks(todo.size(), 4, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t t = lo; t < hi; ++t) {
        const std::span<const TimePoint> times = series.times_of(vcode[todo[t]]);
        double r_sys = 0, r_app = 0;
        if (!times.empty() && end - begin > config.correlation_window) {
          if (!sys_times.empty()) {
            r_sys = stats::event_time_correlation(times, sys_times, begin, end,
                                                  config.correlation_window);
          }
          if (!app_times.empty()) {
            r_app = stats::event_time_correlation(times, app_times, begin, end,
                                                  config.correlation_window);
          }
        }
        cause[t] = r_app > r_sys ? Cause::ApplicationError : Cause::SystemFailure;
        corr[t] = std::max(r_sys, r_app);
      }
    }, pool);
    for (std::size_t t = 0; t < todo.size(); ++t) {
      result.by_code[vcode[todo[t]]] = {cause[t], CauseRule::CorrelationFallback, corr[t]};
    }
  }

  // Event-level application fraction (Observation 2: 17.73%).
  if (cols.group_count() != 0) {
    std::size_t app_events = 0;
    for (const ras::ErrcodeId code : cols.group_code) {
      const auto cit = result.by_code.find(code);
      if (cit != result.by_code.end() && cit->second.cause == Cause::ApplicationError) {
        ++app_events;
      }
    }
    result.application_event_fraction =
        static_cast<double>(app_events) / static_cast<double>(cols.group_count());
  }
  return result;
}

ClassificationResult classify_causes(const filter::FilterPipelineResult& filtered,
                                     const MatchResult& matches,
                                     const IdentificationResult& identification,
                                     const joblog::JobLog& jobs,
                                     const ClassificationConfig& config) {
  return classify_causes(filtered, matches, identification, jobs,
                         build_char_columns(filtered, matches, jobs), config);
}

}  // namespace coral::core
