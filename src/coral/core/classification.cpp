#include "coral/core/classification.hpp"

#include <algorithm>

#include "coral/stats/correlation.hpp"

namespace coral::core {

const char* to_string(Cause c) {
  return c == Cause::SystemFailure ? "system failure" : "application error";
}

const char* to_string(CauseRule r) {
  switch (r) {
    case CauseRule::NeverWithJob: return "never observed with a job";
    case CauseRule::RepeatSameLocation: return "repeats at the same location";
    case CauseRule::FollowsResubmission: return "follows the resubmitted executable";
    case CauseRule::CorrelationFallback: return "correlation with labeled codes";
  }
  return "?";
}

int ClassificationResult::system_type_count() const {
  int n = 0;
  for (const auto& [code, cc] : by_code) n += cc.cause == Cause::SystemFailure ? 1 : 0;
  return n;
}

int ClassificationResult::application_type_count() const {
  int n = 0;
  for (const auto& [code, cc] : by_code) n += cc.cause == Cause::ApplicationError ? 1 : 0;
  return n;
}

namespace {

/// One interruption enriched with the fields the rules inspect.
struct Obs {
  TimePoint time;
  std::size_t job = 0;
  joblog::ExecId exec = 0;
  bgp::Partition partition{0, 1};
  bgp::Location location;  ///< representative (fault) location of the event
};

}  // namespace

ClassificationResult classify_causes(const filter::FilterPipelineResult& filtered,
                                     const MatchResult& matches,
                                     const IdentificationResult& identification,
                                     const joblog::JobLog& jobs,
                                     const ClassificationConfig& config) {
  ClassificationResult result;

  // Collect the interruptions per errcode, time-ordered.
  std::map<ras::ErrcodeId, std::vector<Obs>> obs_by_code;
  for (const Interruption& in : matches.interruptions) {
    const ras::RasEvent& rep = filtered.fatal_events[filtered.groups[in.group].rep];
    const joblog::JobRecord& job = jobs[in.job];
    obs_by_code[rep.errcode].push_back(
        {in.time, in.job, job.exec_id, job.partition, rep.location});
  }
  for (auto& [code, v] : obs_by_code) {
    std::sort(v.begin(), v.end(), [](const Obs& a, const Obs& b) { return a.time < b.time; });
  }

  // Completed (non-interrupted) jobs, for rule 3(b): did the old nodes host
  // an untroubled job afterwards?
  std::vector<std::size_t> survivors;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!matches.group_by_job[j]) survivors.push_back(j);
  }

  // --- Rules 1–3 per errcode -------------------------------------------
  for (const auto& [code, verdict] : identification.verdicts) {
    // Rule 1: only observed on idle hardware → system failure.
    if (verdict == ErrcodeVerdict::Undetermined && obs_by_code.find(code) == obs_by_code.end()) {
      result.by_code[code] = {Cause::SystemFailure, CauseRule::NeverWithJob, 0};
      continue;
    }
    const auto oit = obs_by_code.find(code);
    if (oit == obs_by_code.end()) continue;  // non-fatal-to-jobs; resolved below
    const std::vector<Obs>& v = oit->second;

    // Rule 2: interruptions of different jobs of *different executables*
    // reported from the *same hardware location* → the scheduler kept
    // assigning the failed nodes → system. (Distinct executables separate
    // this from a user resubmitting a buggy code to the same partition;
    // comparing fault locations rather than job partitions keeps a
    // propagating shared-file-system error from looking like node repeats.)
    bool same_location_repeat = false;
    for (std::size_t i = 0; i + 1 < v.size() && !same_location_repeat; ++i) {
      for (std::size_t k = i + 1; k < v.size(); ++k) {
        if (v[k].time - v[i].time > config.same_location_horizon) break;
        if (v[k].exec != v[i].exec && v[k].location == v[i].location) {
          same_location_repeat = true;
          break;
        }
      }
    }

    // Rule 3 (Fig. 2): the same executable is interrupted by the same code
    // at a *different* location, while the original location later hosts an
    // untroubled job → the error travels with the code, not the nodes.
    int follow_evidence = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool found_for_i = false;
      for (std::size_t k = i + 1; k < v.size() && !found_for_i; ++k) {
        if (v[k].time - v[i].time > config.follow_gap) break;
        if (v[k].exec != v[i].exec) continue;
        if (v[k].partition.overlaps(v[i].partition)) continue;
        // (b) an untroubled job ran on the original partition in between
        // (it must start inside the gap; it may still be running at the
        // second interruption — Fig. 2's "job 2 has no interruption").
        for (std::size_t s : survivors) {
          const joblog::JobRecord& job = jobs[s];
          if (job.start_time <= v[i].time || job.start_time >= v[k].time) continue;
          if (job.partition.overlaps(v[i].partition)) {
            found_for_i = true;
            break;
          }
        }
      }
      if (found_for_i) ++follow_evidence;
    }
    const bool follows_exec = follow_evidence >= config.min_follow_evidence;

    // The follows-the-executable evidence is the stronger signal: a code
    // that travels with a resubmitted binary while its old nodes stay
    // healthy cannot be a hardware fault, whereas a shared-resource
    // application error can coincidentally repeat at one location.
    if (follows_exec) {
      result.by_code[code] = {Cause::ApplicationError, CauseRule::FollowsResubmission, 0};
    } else if (same_location_repeat) {
      result.by_code[code] = {Cause::SystemFailure, CauseRule::RepeatSameLocation, 0};
    }
    // else: unlabeled, falls through to the correlation pass.
  }

  // --- Rule 4: Pearson-correlation fallback ------------------------------
  // Build aggregate time series of the already-labeled categories and
  // correlate each unlabeled code's event times against them.
  if (!filtered.fatal_events.empty()) {
    const TimePoint begin = filtered.fatal_events.front().event_time;
    const TimePoint end = filtered.fatal_events.back().event_time + 1;

    std::vector<TimePoint> sys_times, app_times;
    std::map<ras::ErrcodeId, std::vector<TimePoint>> code_times;
    for (const filter::EventGroup& g : filtered.groups) {
      const ras::RasEvent& rep = filtered.fatal_events[g.rep];
      code_times[rep.errcode].push_back(rep.event_time);
      const auto cit = result.by_code.find(rep.errcode);
      if (cit == result.by_code.end()) continue;
      (cit->second.cause == Cause::SystemFailure ? sys_times : app_times)
          .push_back(rep.event_time);
    }

    for (const auto& [code, verdict] : identification.verdicts) {
      (void)verdict;
      if (result.by_code.find(code) != result.by_code.end()) continue;
      const auto& times = code_times[code];
      double r_sys = 0, r_app = 0;
      if (!times.empty() && end - begin > config.correlation_window) {
        if (!sys_times.empty()) {
          r_sys = stats::event_time_correlation(times, sys_times, begin, end,
                                                config.correlation_window);
        }
        if (!app_times.empty()) {
          r_app = stats::event_time_correlation(times, app_times, begin, end,
                                                config.correlation_window);
        }
      }
      const Cause cause = r_app > r_sys ? Cause::ApplicationError : Cause::SystemFailure;
      result.by_code[code] = {cause, CauseRule::CorrelationFallback, std::max(r_sys, r_app)};
    }
  }

  // Event-level application fraction (Observation 2: 17.73%).
  if (!filtered.groups.empty()) {
    std::size_t app_events = 0;
    for (const filter::EventGroup& g : filtered.groups) {
      const ras::RasEvent& rep = filtered.fatal_events[g.rep];
      const auto cit = result.by_code.find(rep.errcode);
      if (cit != result.by_code.end() && cit->second.cause == Cause::ApplicationError) {
        ++app_events;
      }
    }
    result.application_event_fraction =
        static_cast<double>(app_events) / static_cast<double>(filtered.groups.size());
  }
  return result;
}

}  // namespace coral::core
