#pragma once

#include "coral/core/pipeline.hpp"

namespace coral::core {

/// Checkpoint-policy simulation over a finished log pair — the §VII
/// discussion turned into an experiment. Each job checkpoints on a schedule;
/// an interrupted job loses the work since its last completed checkpoint,
/// while every job (interrupted or not) pays the checkpoint overhead.
enum class CheckpointMode {
  None,               ///< no checkpoints: interruptions lose the whole run
  FixedInterval,      ///< checkpoint every `interval`, all jobs alike
  YoungFromMtti,      ///< per-job Young interval from the fitted system MTTI
                      ///< scaled by job width (a W-midplane job sees W/80 of
                      ///< the machine's interruptions — Obs. 10) [13]
  YoungSkipFirstHour, ///< Young + Obs. 9/11: executables with an application-
                      ///< error history skip checkpoints in their first hour
};

struct CheckpointPlan {
  CheckpointMode mode = CheckpointMode::YoungFromMtti;
  Usec interval = kUsecPerHour;            ///< used by FixedInterval
  Usec overhead = 5 * kUsecPerMin;         ///< wall-clock cost per checkpoint
};

struct CheckpointOutcome {
  double lost_node_hours = 0;      ///< work lost to interruptions
  double overhead_node_hours = 0;  ///< checkpoint cost across all jobs
  std::size_t checkpoints = 0;
  std::size_t skipped_first_hour_jobs = 0;  ///< jobs the Obs.-11 rule applied to

  double total_waste() const { return lost_node_hours + overhead_node_hours; }
};

/// Young's first-order optimal interval: sqrt(2 * overhead * MTTI) [13].
Usec young_interval(Usec overhead, double mtti_sec);

/// Simulate a checkpoint plan against the analyzed log pair.
CheckpointOutcome simulate_checkpointing(const CoAnalysisResult& analysis,
                                         const joblog::JobLog& jobs,
                                         const CheckpointPlan& plan);

}  // namespace coral::core
