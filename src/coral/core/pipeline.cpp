#include "coral/core/pipeline.hpp"

#include <algorithm>
#include <set>

namespace coral::core {

CoAnalysisResult run_coanalysis(const ras::RasLog& ras, const joblog::JobLog& jobs,
                                const CoAnalysisConfig& config) {
  CoAnalysisResult r;

  // Step 0: temporal-spatial + causality filtering of FATAL records.
  filter::FilterPipelineConfig filter_config = config.filters;
  if (filter_config.causality.pool == nullptr) filter_config.causality.pool = config.pool;
  r.filtered = filter::run_filter_pipeline(ras, filter_config);

  // Step 1: match fatal events against job terminations, then identify the
  // interruption-related errcodes (§IV-A).
  MatchConfig match_config = config.matching;
  if (match_config.pool == nullptr) match_config.pool = config.pool;
  r.matches = match_interruptions(r.filtered, jobs, match_config);
  r.identification =
      identify_interruption_related(r.filtered, r.matches, jobs, config.identification);

  // Step 2: separate system failures from application errors (§IV-B).
  r.classification = classify_causes(r.filtered, r.matches, r.identification, jobs,
                                     config.classification);

  // Step 3: job-related filtering (§IV-C).
  r.job_filter =
      job_related_filter(r.filtered, r.matches, r.classification, jobs, config.job_filter);

  // Characterization: propagation and vulnerability (§VI-C, §VI-D).
  r.propagation = analyze_propagation(r.filtered, r.matches, jobs, config.propagation);
  r.vulnerability =
      analyze_vulnerability(r.filtered, r.matches, r.classification, jobs,
                            config.vulnerability);

  // Interarrival fits (§V-A, Table IV; Fig. 3).
  const auto all = all_groups(r.filtered);
  const auto times_before = group_times(r.filtered, all);
  if (times_before.size() >= 3) {
    r.fatal_before_jobfilter = fit_interarrivals(interarrival_seconds(times_before));
  }
  const auto times_after = group_times(r.filtered, r.job_filter.kept);
  if (times_after.size() >= 3) {
    r.fatal_after_jobfilter = fit_interarrivals(interarrival_seconds(times_after));
  }

  // Interruption interarrivals by cause (§VI-B, Table V; Fig. 6).
  std::vector<TimePoint> sys_times, app_times;
  for (const Interruption& in : r.matches.interruptions) {
    const ras::ErrcodeId code =
        r.filtered.fatal_events[r.filtered.groups[in.group].rep].errcode;
    const bool app = r.classification.by_code.count(code) != 0 &&
                     r.classification.by_code.at(code).cause == Cause::ApplicationError;
    (app ? app_times : sys_times).push_back(in.time);
  }
  r.system_interruptions = sys_times.size();
  r.application_interruptions = app_times.size();
  if (sys_times.size() >= 3) {
    r.interruptions_system = fit_interarrivals(interarrival_seconds(sys_times));
  }
  if (app_times.size() >= 3) {
    r.interruptions_application = fit_interarrivals(interarrival_seconds(app_times));
  }

  // Distinct interrupted executables (paper: 308 jobs, 167 distinct).
  std::set<joblog::ExecId> distinct;
  for (const Interruption& in : r.matches.interruptions) {
    distinct.insert(jobs[in.job].exec_id);
  }
  r.distinct_interrupted_jobs = distinct.size();

  // Fig. 5: interruptions per day.
  if (!jobs.empty()) {
    const TimePoint origin = jobs.summary().first_submit;
    std::int64_t max_day = 0;
    for (const Interruption& in : r.matches.interruptions) {
      max_day = std::max(max_day, in.time.days_since(origin));
    }
    r.interruptions_per_day.assign(static_cast<std::size_t>(max_day + 1), 0);
    for (const Interruption& in : r.matches.interruptions) {
      r.interruptions_per_day[static_cast<std::size_t>(in.time.days_since(origin))] += 1;
    }
  }

  // Fig. 4 series.
  for (const filter::EventGroup& g : r.filtered.groups) {
    const auto mid = r.filtered.fatal_events[g.rep].location.midplane_id();
    if (mid) {
      r.fatal_events_per_midplane[static_cast<std::size_t>(*mid)] += 1;
    } else {
      // Rack-level events touch both midplanes; split the count.
      const int rack = r.filtered.fatal_events[g.rep].location.rack_index();
      r.fatal_events_per_midplane[static_cast<std::size_t>(bgp::midplane_id(rack, 0))] += 0.5;
      r.fatal_events_per_midplane[static_cast<std::size_t>(bgp::midplane_id(rack, 1))] += 0.5;
    }
  }
  for (const joblog::JobRecord& job : jobs) {
    const double seconds =
        static_cast<double>(job.runtime()) / static_cast<double>(kUsecPerSec);
    for (bgp::MidplaneId m : job.partition.midplanes()) {
      r.workload_per_midplane[static_cast<std::size_t>(m)] += seconds;
      if (job.size_midplanes() >= 32) {
        r.wide_workload_per_midplane[static_cast<std::size_t>(m)] += seconds;
      }
    }
  }
  return r;
}

}  // namespace coral::core
