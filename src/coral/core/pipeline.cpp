#include "coral/core/pipeline.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "coral/stream/accumulators.hpp"
#include "coral/stream/coanalysis.hpp"

namespace coral::core {

IngestedLogs ingest_csv_logs(std::istream& ras_in, std::istream& jobs_in, ParseMode mode,
                             const Context& ctx) {
  IngestedLogs logs;
  logs.ras = ras::RasLog::read_csv(ras_in, ctx.catalog(), mode, &logs.ras_report,
                                   ctx.sink(), ctx.machine());
  logs.jobs = joblog::JobLog::read_csv(jobs_in, mode, &logs.jobs_report, ctx.sink(),
                                       ctx.machine());
  return logs;
}

CoAnalysisResult complete_coanalysis(filter::FilterPipelineResult filtered,
                                     MatchResult matches, const joblog::JobLog& jobs,
                                     const CoAnalysisConfig& config, const Context& ctx) {
  CoAnalysisResult r;
  r.machine_ = &jobs.machine();
  r.filtered = std::move(filtered);
  r.matches = std::move(matches);

  InstrumentationSink* sink = ctx.sink();
  par::ThreadPool* pool = ctx.pool();

  // Step 1 (continued): identify the interruption-related errcodes (§IV-A).
  {
    StageTimer timer(sink, "identification");
    r.identification =
        identify_interruption_related(r.filtered, r.matches, jobs, config.identification);
    timer.counts(r.filtered.groups.size(), r.identification.verdicts.size());
  }

  // Shared columnar inputs of the characterization stages: gathered once,
  // scanned by classification, job filter, propagation and vulnerability.
  CharColumns cols;
  {
    StageTimer timer(sink, "char.columns");
    cols = build_char_columns(r.filtered, r.matches, jobs, pool);
    timer.counts(jobs.size(), cols.survivor_job.size());
  }

  // Step 2: separate system failures from application errors (§IV-B).
  {
    StageTimer timer(sink, "classification");
    r.classification = classify_causes(r.filtered, r.matches, r.identification, jobs,
                                       cols, config.classification, pool);
    timer.counts(r.identification.verdicts.size(), r.classification.by_code.size());
  }

  // Step 3: job-related filtering (§IV-C).
  {
    StageTimer timer(sink, "job_filter");
    r.job_filter = job_related_filter(r.filtered, r.matches, r.classification, jobs,
                                      cols, config.job_filter, pool);
    timer.counts(r.filtered.groups.size(), r.job_filter.kept.size());
  }

  // Characterization: propagation and vulnerability (§VI-C, §VI-D).
  {
    StageTimer timer(sink, "propagation");
    r.propagation =
        analyze_propagation(r.filtered, r.matches, jobs, cols, config.propagation, pool);
    timer.counts(r.matches.interruptions.size(), r.propagation.propagating_codes.size());
  }
  {
    StageTimer timer(sink, "vulnerability");
    r.vulnerability =
        analyze_vulnerability(r.filtered, r.matches, r.classification, jobs, cols,
                              config.vulnerability, pool);
    timer.counts(r.matches.interruptions.size(), jobs.size());
  }

  // Interarrival fits (§V-A, Table IV; Fig. 3), via the incremental
  // accumulators. Feeding in group order reproduces the batch series.
  stream::InterarrivalAccumulator before_filter, after_filter;
  for (const filter::EventGroup& g : r.filtered.groups) {
    before_filter.add(r.filtered.fatal_events[g.rep].event_time);
  }
  for (const std::size_t idx : r.job_filter.kept) {
    after_filter.add(r.filtered.fatal_events[r.filtered.groups[idx].rep].event_time);
  }
  if (auto fit = before_filter.fit()) r.fatal_before_jobfilter = std::move(*fit);
  if (auto fit = after_filter.fit()) r.fatal_after_jobfilter = std::move(*fit);

  // Interruption interarrivals by cause (§VI-B, Table V; Fig. 6).
  stream::InterarrivalAccumulator sys_acc, app_acc;
  for (const Interruption& in : r.matches.interruptions) {
    const ras::ErrcodeId code =
        r.filtered.fatal_events[r.filtered.groups[in.group].rep].errcode;
    const bool app = r.classification.by_code.count(code) != 0 &&
                     r.classification.by_code.at(code).cause == Cause::ApplicationError;
    (app ? app_acc : sys_acc).add(in.time);
  }
  r.system_interruptions = sys_acc.count();
  r.application_interruptions = app_acc.count();
  if (auto fit = sys_acc.fit()) r.interruptions_system = std::move(*fit);
  if (auto fit = app_acc.fit()) r.interruptions_application = std::move(*fit);

  // Distinct interrupted executables (paper: 308 jobs, 167 distinct).
  std::set<joblog::ExecId> distinct;
  for (const Interruption& in : r.matches.interruptions) {
    distinct.insert(jobs[in.job].exec_id);
  }
  r.distinct_interrupted_jobs = distinct.size();

  // Fig. 5: interruptions per day. The job log's first submission anchors
  // day 0, and a non-empty job log always materializes at least one bucket.
  if (!jobs.empty()) {
    stream::DailyCounter daily(jobs.summary().first_submit);
    for (const Interruption& in : r.matches.interruptions) daily.add(in.time);
    daily.ensure_days(1);
    r.interruptions_per_day = daily.take();
  }

  // Fig. 4 series.
  stream::MidplaneTallies tallies(jobs.machine());
  for (const filter::EventGroup& g : r.filtered.groups) {
    tallies.add_group_rep(r.filtered.fatal_events[g.rep].location);
  }
  for (const joblog::JobRecord& job : jobs) tallies.add_job(job);
  r.fatal_events_per_midplane = tallies.fatal_events;
  r.workload_per_midplane = tallies.workload_sec;
  r.wide_workload_per_midplane = tallies.wide_workload_sec;
  return r;
}

CoAnalysisResult run_coanalysis(const ras::RasLog& ras, const joblog::JobLog& jobs,
                                const CoAnalysisConfig& config, const Context& ctx) {
  filter::FilterPipelineResult filtered;
  MatchResult matches;
  std::size_t shards_used = 1;
  std::size_t peak_state = 0;
  par::ThreadPool* pool = ctx.pool();

  if (config.execution.engine == Engine::Streaming) {
    stream::FrontEndConfig fe;
    fe.filters = config.filters;
    fe.match_window = config.matching.window;
    fe.shards = config.execution.shards;
    stream::FrontEndResult front =
        stream::run_streaming_frontend(ras, jobs, fe, Context(ctx).with_pool(pool));
    filtered = std::move(front.filtered);
    matches = std::move(front.matches);
    shards_used = front.shards_used;
    peak_state = front.peak_stage_state;
  } else {
    // Step 0: temporal-spatial + causality filtering of FATAL records.
    StageTimer filter_timer(ctx.sink(), "filter.batch");
    filter::FilterPipelineConfig filter_config = config.filters;
    if (filter_config.causality.pool == nullptr) filter_config.causality.pool = pool;
    if (filter_config.obs == nullptr) filter_config.obs = ctx.obs();
    filtered = filter::run_filter_pipeline(ras, filter_config);
    filter_timer.counts(ras.size(), filtered.groups.size());
    filter_timer.report();

    // Step 1: match fatal events against job terminations.
    StageTimer match_timer(ctx.sink(), "matching");
    MatchConfig match_config = config.matching;
    if (match_config.pool == nullptr) match_config.pool = pool;
    if (match_config.obs == nullptr) match_config.obs = ctx.obs();
    matches = match_interruptions(filtered, jobs, match_config);
    match_timer.counts(filtered.groups.size(), matches.interruptions.size());
  }

  CoAnalysisResult r =
      complete_coanalysis(std::move(filtered), std::move(matches), jobs, config, ctx);
  r.engine_used = config.execution.engine;
  r.shards_used = shards_used;
  r.peak_stage_state = peak_state;
  return r;
}

}  // namespace coral::core
