#include "coral/core/prediction.hpp"

namespace coral::core {

namespace {

/// Cost charged per proactively handled job: a preventive checkpoint of
/// roughly 15 minutes of node time per midplane.
constexpr double kProactiveHoursPerMidplane = 0.25;

}  // namespace

PredictionOutcome evaluate_predictor(const CoAnalysisResult& analysis,
                                     const joblog::JobLog& jobs,
                                     const PredictorConfig& config) {
  PredictionOutcome out;
  out.total_interruptions = analysis.matches.interruptions.size();

  struct Alarm {
    TimePoint time;
    bgp::Location location;
  };
  std::vector<Alarm> alarms;
  for (const filter::EventGroup& g : analysis.filtered.groups) {
    const ras::RasEvent& rep = analysis.filtered.fatal_events[g.rep];
    if (config.use_identification) {
      const auto it = analysis.identification.verdicts.find(rep.errcode);
      if (it != analysis.identification.verdicts.end() &&
          it->second == ErrcodeVerdict::NonFatalToJobs) {
        continue;  // known to be harmless; no proactive action
      }
    }
    alarms.push_back({rep.event_time, rep.location});
  }
  out.alarms = alarms.size();

  const bgp::Partition whole_machine =
      bgp::Partition::unchecked(0, jobs.machine().midplane_count());

  // Score alarms: did a *future* interruption occur within the horizon at a
  // location the alarm covers? (The kill at the alarm instant itself is not
  // a prediction.)
  for (const Alarm& alarm : alarms) {
    bool hit = false;
    for (const Interruption& in : analysis.matches.interruptions) {
      if (in.time <= alarm.time) continue;
      if (in.time - alarm.time > config.horizon) continue;
      if (config.use_location &&
          !jobs[in.job].partition.covers(alarm.location)) {
        continue;
      }
      hit = true;
      break;
    }
    if (hit) ++out.true_alarms;

    // Proactive-action cost: every healthy job the action touches.
    const auto running =
        config.use_location ? jobs.running_at(alarm.time, alarm.location)
                            : jobs.running_at(alarm.time, whole_machine);
    for (std::size_t j : running) {
      if (analysis.matches.group_by_job[j]) continue;  // it was doomed anyway
      out.disturbed_node_hours +=
          kProactiveHoursPerMidplane * jobs[j].size_midplanes();
    }
  }

  // Recall: interruptions preceded by a covering alarm.
  for (const Interruption& in : analysis.matches.interruptions) {
    for (const Alarm& alarm : alarms) {
      if (alarm.time >= in.time) break;  // alarms are time-ordered
      if (in.time - alarm.time > config.horizon) continue;
      if (config.use_location && !jobs[in.job].partition.covers(alarm.location)) {
        continue;
      }
      ++out.caught;
      break;
    }
  }
  return out;
}

}  // namespace coral::core
