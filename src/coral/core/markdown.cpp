#include "coral/core/markdown.hpp"

#include "coral/common/strings.hpp"
#include "coral/core/report.hpp"

namespace coral::core {

namespace {

std::string fit_row(const char* name, const InterarrivalFit& fit) {
  return strformat("| %s | %zu | %.3f | %.1f | %.0f | %.3e | %s |\n", name,
                   fit.samples_sec.size(), fit.weibull.shape(), fit.weibull.scale(),
                   fit.weibull.mean(), fit.weibull.variance(),
                   fit.lrt.weibull_preferred ? "Weibull" : "exponential");
}

}  // namespace

std::string render_markdown_report(const CoAnalysisResult& r,
                                   const ras::RasLogSummary& ras,
                                   const joblog::JobLogSummary& jobs) {
  std::string md;
  md += "# CORAL co-analysis report\n\n";

  md += "## Input logs\n\n";
  md += strformat("- RAS: %zu records (%zu FATAL, %zu errcode types), %s to %s\n",
                  ras.total_records, ras.fatal_records, ras.fatal_errcode_types,
                  ras.first_time.to_display_string().c_str(),
                  ras.last_time.to_display_string().c_str());
  md += strformat("- Jobs: %zu (%zu distinct executables, %zu resubmitted, %zu users, "
                  "%zu projects)\n\n",
                  jobs.total_jobs, jobs.distinct_jobs, jobs.resubmitted_jobs, jobs.users,
                  jobs.projects);

  md += "## Filtering pipeline\n\n";
  md += "| stage | input | output | compression |\n|---|---:|---:|---:|\n";
  for (const auto& s : r.filtered.stages) {
    md += strformat("| %s | %zu | %zu | %.2f%% |\n", s.name.c_str(), s.input, s.output,
                    100.0 * s.compression());
  }
  md += strformat("| job-related | %zu | %zu | %.2f%% |\n\n", r.filtered.groups.size(),
                  r.job_filter.kept.size(),
                  100.0 * filter::compression_ratio(r.filtered.groups.size(),
                                                    r.job_filter.kept.size()));

  md += "## Interarrival fits (Weibull MLE)\n\n";
  md += "| series | n | shape | scale | mean | variance | LRT prefers |\n";
  md += "|---|---:|---:|---:|---:|---:|---|\n";
  md += fit_row("fatal events (before job-filter)", r.fatal_before_jobfilter);
  md += fit_row("fatal events (after job-filter)", r.fatal_after_jobfilter);
  md += fit_row("interruptions (system)", r.interruptions_system);
  md += fit_row("interruptions (application)", r.interruptions_application);
  md += "\n";

  md += "## Interruption census\n\n";
  md += strformat("- %zu interruptions: %zu system + %zu application; %zu distinct "
                  "executables\n",
                  r.interruption_count(), r.system_interruptions,
                  r.application_interruptions, r.distinct_interrupted_jobs);
  md += strformat("- errcode verdicts: %d interruption-related, %d non-fatal-to-jobs, "
                  "%d undetermined\n",
                  r.identification.count(ErrcodeVerdict::InterruptionRelated),
                  r.identification.count(ErrcodeVerdict::NonFatalToJobs),
                  r.identification.count(ErrcodeVerdict::Undetermined));
  md += strformat("- cause split: %d system-failure vs %d application-error code types\n\n",
                  r.classification.system_type_count(),
                  r.classification.application_type_count());

  md += "## Vulnerability grid (system interruptions / jobs)\n\n";
  md += "| size | 10-400s | 400-1600s | 1600-6400s | >=6400s | total |\n";
  md += "|---|---|---|---|---|---|\n";
  static const int kSizes[9] = {1, 2, 4, 8, 16, 32, 48, 64, 80};
  for (int row = 0; row < 9; ++row) {
    const auto& sums = r.vulnerability.grid.row_sums[static_cast<std::size_t>(row)];
    if (sums.total == 0) continue;
    md += strformat("| %d |", kSizes[row]);
    for (int col = 0; col < 4; ++col) {
      const auto& c =
          r.vulnerability.grid.cells[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      md += strformat(" %zu/%zu |", c.interrupted, c.total);
    }
    md += strformat(" %.2f%% |\n", 100.0 * sums.proportion());
  }
  md += "\n## Observations\n\n```\n";
  md += render_observations(r, ras, jobs);
  md += "```\n";
  return md;
}

}  // namespace coral::core
