#include "coral/core/propagation.hpp"

#include <algorithm>

namespace coral::core {

PropagationResult analyze_propagation(const filter::FilterPipelineResult& filtered,
                                      const MatchResult& matches,
                                      const joblog::JobLog& jobs,
                                      const PropagationConfig& config) {
  PropagationResult result;

  // --- Spatial propagation: one event, several victim jobs elsewhere ----
  for (std::size_t g = 0; g < filtered.groups.size(); ++g) {
    const auto& victims = matches.jobs_by_group[g];
    if (victims.size() < 2) continue;
    bool disjoint = false;
    for (std::size_t i = 0; i + 1 < victims.size() && !disjoint; ++i) {
      for (std::size_t k = i + 1; k < victims.size(); ++k) {
        if (!jobs[victims[i]].partition.overlaps(jobs[victims[k]].partition)) {
          disjoint = true;
          break;
        }
      }
    }
    if (disjoint) {
      result.propagating_groups.push_back(g);
      result.propagating_codes.insert(
          filtered.fatal_events[filtered.groups[g].rep].errcode);
    }
  }
  if (!filtered.groups.empty()) {
    result.propagating_event_fraction =
        static_cast<double>(result.propagating_groups.size()) /
        static_cast<double>(filtered.groups.size());
  }

  // --- Temporal propagation: resubmission placement ----------------------
  // Jobs of each executable in start order; a run that follows an
  // interrupted run within the gap is its resubmission.
  std::map<joblog::ExecId, std::vector<std::size_t>> runs;
  for (std::size_t j = 0; j < jobs.size(); ++j) runs[jobs[j].exec_id].push_back(j);
  for (auto& [exec, v] : runs) {
    std::sort(v.begin(), v.end(), [&jobs](std::size_t a, std::size_t b) {
      return jobs[a].start_time < jobs[b].start_time;
    });
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      if (!matches.group_by_job[v[i]]) continue;  // prior run not interrupted
      const joblog::JobRecord& prev = jobs[v[i]];
      const joblog::JobRecord& next = jobs[v[i + 1]];
      if (next.queue_time - prev.end_time > config.resubmit_gap) continue;
      result.resubmissions_after_interruption += 1;
      if (next.partition == prev.partition) result.resubmissions_same_partition += 1;
    }
  }
  return result;
}

}  // namespace coral::core
