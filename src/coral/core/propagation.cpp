#include "coral/core/propagation.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

namespace coral::core {

PropagationResult analyze_propagation(const filter::FilterPipelineResult& filtered,
                                      const MatchResult& matches,
                                      const joblog::JobLog& jobs, const CharColumns& cols,
                                      const PropagationConfig& config,
                                      par::ThreadPool* pool) {
  (void)filtered;
  (void)jobs;
  PropagationResult result;
  const std::size_t n_groups = cols.group_count();

  // --- Spatial propagation: one event, several victim jobs elsewhere ----
  // A pair of victims with non-overlapping partitions exists iff the
  // largest range start is >= the smallest range end: if the extremes come
  // from two different victims they are that pair, and they cannot come
  // from one victim (its own start < its own end). One pass per group
  // instead of the pairwise scan.
  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto& victims = matches.jobs_by_group[g];
    if (victims.size() < 2) continue;
    std::int32_t max_first = std::numeric_limits<std::int32_t>::min();
    std::int32_t min_end = std::numeric_limits<std::int32_t>::max();
    for (const std::size_t j : victims) {
      max_first = std::max(max_first, cols.job_part_first[j]);
      min_end = std::min(min_end, cols.job_part_end[j]);
    }
    if (max_first >= min_end) {
      result.propagating_groups.push_back(g);
      result.propagating_codes.insert(cols.group_code[g]);
    }
  }
  if (n_groups != 0) {
    result.propagating_event_fraction =
        static_cast<double>(result.propagating_groups.size()) /
        static_cast<double>(n_groups);
  }

  // --- Temporal propagation: resubmission placement ----------------------
  // Each executable's runs are a contiguous start-ordered chain slice; a run
  // that follows an interrupted run within the gap is its resubmission. The
  // chains are independent and the tallies are integer sums, so the loop
  // fans over the pool and merges per-chunk partials deterministically.
  const std::size_t n_exec = cols.exec_count();
  std::mutex merge;
  par::parallel_for_chunks(n_exec, 256, [&](std::size_t lo, std::size_t hi) {
    std::size_t after = 0, same = 0;
    for (std::size_t e = lo; e < hi; ++e) {
      const std::uint32_t* chain = cols.chain_job.data() + cols.chain_offset[e];
      const std::size_t len = cols.chain_offset[e + 1] - cols.chain_offset[e];
      for (std::size_t i = 0; i + 1 < len; ++i) {
        const std::uint32_t prev = chain[i];
        if (cols.job_group[prev] < 0) continue;  // prior run not interrupted
        const std::uint32_t next = chain[i + 1];
        if (cols.job_queue[next] - cols.job_end[prev] > config.resubmit_gap) continue;
        after += 1;
        if (cols.job_part_first[next] == cols.job_part_first[prev] &&
            cols.job_part_end[next] == cols.job_part_end[prev]) {
          same += 1;
        }
      }
    }
    const std::lock_guard<std::mutex> lock(merge);
    result.resubmissions_after_interruption += after;
    result.resubmissions_same_partition += same;
  }, pool);
  return result;
}

PropagationResult analyze_propagation(const filter::FilterPipelineResult& filtered,
                                      const MatchResult& matches,
                                      const joblog::JobLog& jobs,
                                      const PropagationConfig& config) {
  return analyze_propagation(filtered, matches, jobs,
                             build_char_columns(filtered, matches, jobs), config);
}

}  // namespace coral::core
