#pragma once

#include <optional>
#include <vector>

#include "coral/bgp/partition.hpp"
#include "coral/machine/model.hpp"

namespace coral::sched {

/// Tracks which midplanes are occupied (by jobs or by diagnostics holds).
/// Sized by the machine it manages (default: the reference BG/P).
class PartitionPool {
 public:
  PartitionPool() : PartitionPool(machine::bgp_model()) {}
  explicit PartitionPool(const machine::MachineModel& machine)
      : machine_(&machine),
        busy_(static_cast<std::size_t>(machine.midplane_count()), 0) {}

  /// The machine whose midplanes this pool allocates.
  const machine::MachineModel& machine() const { return *machine_; }

  bool is_free(const bgp::Partition& part) const;
  bool midplane_busy(bgp::MidplaneId mid) const {
    return busy_[static_cast<std::size_t>(mid)] != 0;
  }

  /// Mark a partition's midplanes busy. Throws InvalidArgument if any is
  /// already busy (double allocation is a scheduler bug).
  void acquire(const bgp::Partition& part);

  /// Release a partition's midplanes. Throws InvalidArgument if any is
  /// already free.
  void release(const bgp::Partition& part);

  /// Mark midplanes busy regardless of current state (used for head-of-queue
  /// reservations and diagnostics holds over an overlay copy of the pool).
  void force_acquire(const bgp::Partition& part);

  /// Midplanes currently busy.
  std::size_t busy_count() const { return busy_count_; }

  /// All free partitions of the given size, in address order.
  std::vector<bgp::Partition> free_partitions(int midplane_count) const;

 private:
  const machine::MachineModel* machine_;
  std::vector<unsigned char> busy_;
  std::size_t busy_count_ = 0;
};

}  // namespace coral::sched
