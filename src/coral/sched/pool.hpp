#pragma once

#include <bitset>
#include <optional>
#include <vector>

#include "coral/bgp/partition.hpp"

namespace coral::sched {

/// Tracks which midplanes are occupied (by jobs or by diagnostics holds).
class PartitionPool {
 public:
  bool is_free(const bgp::Partition& part) const;
  bool midplane_busy(bgp::MidplaneId mid) const { return busy_.test(static_cast<std::size_t>(mid)); }

  /// Mark a partition's midplanes busy. Throws InvalidArgument if any is
  /// already busy (double allocation is a scheduler bug).
  void acquire(const bgp::Partition& part);

  /// Release a partition's midplanes. Throws InvalidArgument if any is
  /// already free.
  void release(const bgp::Partition& part);

  /// Mark midplanes busy regardless of current state (used for head-of-queue
  /// reservations and diagnostics holds over an overlay copy of the pool).
  void force_acquire(const bgp::Partition& part);

  /// Midplanes currently busy.
  std::size_t busy_count() const { return busy_.count(); }

  /// All free partitions of the given size, in address order.
  std::vector<bgp::Partition> free_partitions(int midplane_count) const;

 private:
  std::bitset<bgp::Topology::kMidplanes> busy_;
};

}  // namespace coral::sched
