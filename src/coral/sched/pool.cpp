#include "coral/sched/pool.hpp"

#include "coral/common/error.hpp"

namespace coral::sched {

bool PartitionPool::is_free(const bgp::Partition& part) const {
  for (bgp::MidplaneId m = part.first_midplane(); m < part.end_midplane(); ++m) {
    if (busy_[static_cast<std::size_t>(m)] != 0) return false;
  }
  return true;
}

void PartitionPool::acquire(const bgp::Partition& part) {
  CORAL_EXPECTS(is_free(part));
  for (bgp::MidplaneId m = part.first_midplane(); m < part.end_midplane(); ++m) {
    busy_[static_cast<std::size_t>(m)] = 1;
  }
  busy_count_ += static_cast<std::size_t>(part.midplane_count());
}

void PartitionPool::release(const bgp::Partition& part) {
  for (bgp::MidplaneId m = part.first_midplane(); m < part.end_midplane(); ++m) {
    CORAL_EXPECTS(busy_[static_cast<std::size_t>(m)] != 0);
    busy_[static_cast<std::size_t>(m)] = 0;
  }
  busy_count_ -= static_cast<std::size_t>(part.midplane_count());
}

void PartitionPool::force_acquire(const bgp::Partition& part) {
  for (bgp::MidplaneId m = part.first_midplane(); m < part.end_midplane(); ++m) {
    if (busy_[static_cast<std::size_t>(m)] == 0) {
      busy_[static_cast<std::size_t>(m)] = 1;
      busy_count_ += 1;
    }
  }
}

std::vector<bgp::Partition> PartitionPool::free_partitions(int midplane_count) const {
  std::vector<bgp::Partition> out;
  for (const bgp::Partition& p : machine_->partitions_of_size(midplane_count)) {
    if (is_free(p)) out.push_back(p);
  }
  return out;
}

}  // namespace coral::sched
