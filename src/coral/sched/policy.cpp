#include "coral/sched/policy.hpp"

#include <algorithm>

namespace coral::sched {

namespace {

bool within(const bgp::Partition& part, bgp::MidplaneId lo, bgp::MidplaneId hi) {
  return part.first_midplane() >= lo && part.end_midplane() <= hi + 1;
}

}  // namespace

int placement_rank(const SchedulerConfig& config, const bgp::Partition& part,
                   Usec runtime_hint) {
  const int size = part.midplane_count();
  if (size == 1) {
    const bool is_short = runtime_hint < config.short_job_threshold;
    if (is_short) {
      // Short narrow jobs: midplanes 0–1 first, then the high midplanes.
      if (within(part, 0, 1)) return 0;
      if (within(part, 64, 79)) return 1;
      if (within(part, 2, 31)) return 2;
      return 3;
    }
    // Other narrow jobs: high midplanes first, keep the wide-job region last.
    if (within(part, 64, 79)) return 0;
    if (within(part, 0, 1)) return 1;
    if (within(part, 2, 31)) return 2;
    return 3;
  }
  if (size < 32) {
    // Small multi-midplane jobs: the low-middle racks, then high midplanes,
    // keeping the wide-job reservation (32–63) as a last resort.
    if (within(part, 2, 31)) return 0;
    if (within(part, 64, 79)) return 1;
    if (within(part, 0, 1)) return 2;
    return 3;
  }
  // Wide jobs: steer into the reserved block (midplanes 32–63).
  if (within(part, 32, 63)) return 0;
  if (part.first_midplane() >= 16) return 1;  // overlaps the reservation
  return 2;
}

std::optional<bgp::Partition> choose_partition(const SchedulerConfig& config,
                                               const PartitionPool& pool,
                                               int midplane_count, Usec runtime_hint,
                                               const std::optional<bgp::Partition>& previous,
                                               Rng& rng) {
  // Resubmission affinity: reuse the previous partition when free.
  if (previous && previous->midplane_count() == midplane_count && pool.is_free(*previous) &&
      rng.bernoulli(config.resubmit_same_partition_prob)) {
    return *previous;
  }
  std::vector<bgp::Partition> candidates = pool.free_partitions(midplane_count);
  if (candidates.empty()) return std::nullopt;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const bgp::Partition& a, const bgp::Partition& b) {
                     return placement_rank(config, a, runtime_hint) <
                            placement_rank(config, b, runtime_hint);
                   });
  // Randomize among the equally best-ranked candidates so load spreads.
  const int best = placement_rank(config, candidates.front(), runtime_hint);
  std::size_t n_best = 0;
  while (n_best < candidates.size() &&
         placement_rank(config, candidates[n_best], runtime_hint) == best) {
    ++n_best;
  }
  return candidates[rng.uniform_index(n_best)];
}

}  // namespace coral::sched
