#include "coral/sched/policy.hpp"

#include <algorithm>

namespace coral::sched {

namespace {

bool in_zone(const bgp::Partition& part, int first, int count) {
  return part.first_midplane() >= first && part.end_midplane() <= first + count;
}

}  // namespace

int placement_rank(const SchedulerConfig& config, const machine::PlacementZones& zones,
                   const bgp::Partition& part, Usec runtime_hint) {
  const int size = part.midplane_count();
  if (size == 1) {
    const bool is_short = runtime_hint < config.short_job_threshold;
    if (is_short) {
      // Short narrow jobs: the head zone first, then the tail midplanes.
      if (in_zone(part, zones.head_first, zones.head_count)) return 0;
      if (in_zone(part, zones.tail_first, zones.tail_count)) return 1;
      if (in_zone(part, zones.small_first, zones.small_count)) return 2;
      return 3;
    }
    // Other narrow jobs: tail midplanes first, keep the wide-job region last.
    if (in_zone(part, zones.tail_first, zones.tail_count)) return 0;
    if (in_zone(part, zones.head_first, zones.head_count)) return 1;
    if (in_zone(part, zones.small_first, zones.small_count)) return 2;
    return 3;
  }
  if (size < zones.wide_threshold) {
    // Small multi-midplane jobs: the small-job zone, then the tail,
    // keeping the wide-job reservation as a last resort.
    if (in_zone(part, zones.small_first, zones.small_count)) return 0;
    if (in_zone(part, zones.tail_first, zones.tail_count)) return 1;
    if (in_zone(part, zones.head_first, zones.head_count)) return 2;
    return 3;
  }
  // Wide jobs: steer into the reserved block.
  if (in_zone(part, zones.wide_first, zones.wide_count)) return 0;
  if (part.first_midplane() * 2 >= zones.wide_first) return 1;  // overlaps the reservation
  return 2;
}

int placement_rank(const SchedulerConfig& config, const bgp::Partition& part,
                   Usec runtime_hint) {
  return placement_rank(config, machine::bgp_model().placement_zones(), part, runtime_hint);
}

std::optional<bgp::Partition> choose_partition(const SchedulerConfig& config,
                                               const PartitionPool& pool,
                                               int midplane_count, Usec runtime_hint,
                                               const std::optional<bgp::Partition>& previous,
                                               Rng& rng) {
  // Resubmission affinity: reuse the previous partition when free.
  if (previous && previous->midplane_count() == midplane_count && pool.is_free(*previous) &&
      rng.bernoulli(config.resubmit_same_partition_prob)) {
    return *previous;
  }
  std::vector<bgp::Partition> candidates = pool.free_partitions(midplane_count);
  if (candidates.empty()) return std::nullopt;
  const machine::PlacementZones zones = pool.machine().placement_zones();
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const bgp::Partition& a, const bgp::Partition& b) {
                     return placement_rank(config, zones, a, runtime_hint) <
                            placement_rank(config, zones, b, runtime_hint);
                   });
  // Randomize among the equally best-ranked candidates so load spreads.
  const int best = placement_rank(config, zones, candidates.front(), runtime_hint);
  std::size_t n_best = 0;
  while (n_best < candidates.size() &&
         placement_rank(config, zones, candidates[n_best], runtime_hint) == best) {
    ++n_best;
  }
  return candidates[rng.uniform_index(n_best)];
}

PartitionPool advised_view(const PartitionPool& pool, const PlacementAdvisor& advisor,
                           TimePoint now) {
  PartitionPool view = pool;
  const int midplanes = pool.machine().midplane_count();
  for (machine::MidplaneId m = 0; m < midplanes; ++m) {
    if (!view.midplane_busy(m) && advisor.avoid(m, now)) {
      view.force_acquire(bgp::Partition::unchecked(m, 1));
    }
  }
  return view;
}

}  // namespace coral::sched
