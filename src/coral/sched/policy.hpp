#pragma once

#include <optional>

#include "coral/common/rng.hpp"
#include "coral/common/time.hpp"
#include "coral/ras/event.hpp"
#include "coral/sched/pool.hpp"

namespace coral::sched {

/// Placement and resubmission policy of the Cobalt-like scheduler,
/// modelling the Intrepid behaviours the paper documents (§V-B, §VI-D):
///   - short narrow jobs concentrate on midplanes 0–1,
///   - other small jobs prefer the high midplanes (64–79),
///   - wide jobs (>= 32 midplanes) are steered into midplanes 32–63,
///   - a resubmitted job lands on its previous partition with high
///     probability (paper: 57.44%).
struct SchedulerConfig {
  /// Probability that a resubmission is placed on its previous partition
  /// when that partition is free.
  double resubmit_same_partition_prob = 0.80;
  /// Runtime below which 1-midplane jobs are steered to midplanes 0–1.
  Usec short_job_threshold = 400 * kUsecPerSec;
  /// Reboot-before-execution: number of boot INFO records emitted per
  /// midplane at each job start (0 disables).
  int boot_records_per_midplane = 5;
  /// How long a resubmitted job waits for its previous partition (held for
  /// post-failure cleanup) before accepting any other placement.
  Usec resubmit_affinity_window = 70 * kUsecPerMin;
  /// Fault-aware placement (§VII what-if): avoid partitions containing a
  /// midplane that reported a FATAL event within this window, unless no
  /// other partition of the requested size is free. 0 disables.
  Usec avoid_failed_window = 0;
};

/// Choose a free partition for a job of `midplane_count` midplanes.
///
/// `previous` is the partition of the job's previous run, if this is a
/// resubmission; `runtime_hint` is the requested runtime. Returns nullopt
/// when no partition of that size is free. Placement zones are resolved
/// from the pool's machine model.
std::optional<bgp::Partition> choose_partition(const SchedulerConfig& config,
                                               const PartitionPool& pool,
                                               int midplane_count, Usec runtime_hint,
                                               const std::optional<bgp::Partition>& previous,
                                               Rng& rng);

/// The placement preference score used by choose_partition: lower is more
/// preferred. Exposed for tests and ablation benches.
int placement_rank(const SchedulerConfig& config, const machine::PlacementZones& zones,
                   const bgp::Partition& part, Usec runtime_hint);

/// BG/P-zone shorthand: ranks against the reference machine's zones
/// (midplanes 0–1 / 64–79 / 2–31 / 32–63).
int placement_rank(const SchedulerConfig& config, const bgp::Partition& part,
                   Usec runtime_hint);

/// Live placement advice from an external failure model (the prediction
/// layer). The scheduler feeds it every RAS record as it is emitted and
/// consults it before each placement: a midplane with avoid(m, now) == true
/// is treated as busy unless no other partition of the requested size is
/// free — the same soft-avoidance contract as `avoid_failed_window`, driven
/// by predictions instead of past failures.
class PlacementAdvisor {
 public:
  virtual ~PlacementAdvisor() = default;
  virtual void on_record(const ras::RasEvent& event) = 0;
  virtual bool avoid(machine::MidplaneId midplane, TimePoint now) const = 0;
};

/// Overlay copy of `pool` with every advised-against idle midplane marked
/// busy, so choose_partition simply never sees them. Busy midplanes are left
/// alone (running jobs are not migrated; they drain naturally).
PartitionPool advised_view(const PartitionPool& pool, const PlacementAdvisor& advisor,
                           TimePoint now);

}  // namespace coral::sched
