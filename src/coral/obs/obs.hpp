#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "coral/common/instrument.hpp"

namespace coral::obs {

/// Steady clock shared by every obs time measurement; span timestamps are
/// microseconds relative to the owning Collector's construction.
using Clock = std::chrono::steady_clock;

/// One finished trace span. Spans form a forest per thread: `parent` is the
/// index (into Collector::snapshot().spans) of the span that was open on the
/// same collector when this one started, or -1 for a root.
struct SpanRecord {
  std::string name;         ///< stable stage identifier ("filter.coalesce", ...)
  std::int64_t start_us = 0;  ///< relative to the collector epoch
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;    ///< dense per-collector thread number (0 = first seen)
  std::int32_t parent = -1;
  std::uint64_t in = 0;     ///< optional flow counts, StageTimer-compatible
  std::uint64_t out = 0;
};

/// A monotonically increasing named total.
struct CounterRecord {
  std::string name;
  std::uint64_t value = 0;
};

inline constexpr std::size_t kHistogramBuckets = 40;

/// Power-of-two histogram: bucket b counts values in (2^(b-1), 2^b] (bucket
/// 0 is (-inf, 1]; the last bucket is unbounded). One shape serves both
/// latencies (ms) and sizes (records, bytes): log-scale is the right
/// resolution for either.
struct HistogramRecord {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Bucket index for a value (see HistogramRecord).
std::size_t histogram_bucket(double value);
/// Inclusive upper bound of bucket `b` (+inf for the last one).
double histogram_bound(std::size_t b);

/// Typed hot-path counter handle: resolve once with Collector::counter(),
/// then add() without any lock or lookup. Pointers stay valid for the
/// collector's lifetime.
class Counter {
 public:
  void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Collector;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Typed latency/size histogram handle; record() takes one short lock (adds
/// happen per stage/task/block, never per record).
class Histogram {
 public:
  void record(double value);
  HistogramRecord snapshot() const;

 private:
  friend class Collector;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  std::string name_;
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets_{};
};

/// Everything a Collector has gathered, in one copy-out: the input to the
/// exporters (chrome_trace_json, prometheus_text, snapshot_json) and to the
/// BENCH_*.json emission.
struct Snapshot {
  std::vector<SpanRecord> spans;
  std::vector<CounterRecord> counters;
  std::vector<HistogramRecord> histograms;
  /// Closed spans evicted from a bounded collector before this snapshot
  /// (see Collector::set_span_capacity); 0 for unbounded collectors.
  std::uint64_t spans_dropped = 0;

  /// Total wall-ms across every span with this name (a sharded stage records
  /// one span per shard).
  double total_ms(std::string_view name) const;
  /// Sum of a counter by name (0 when absent).
  std::uint64_t counter_value(std::string_view name) const;
};

/// The observability hub: hierarchical trace spans, typed counters and
/// histograms, gathered thread-safely and exported as Chrome trace_event
/// JSON or Prometheus text.
///
/// A Collector *is* an InstrumentationSink: every legacy StageTimer sample
/// lands here as a real span (the timer reports from the thread that ran the
/// stage, at the moment the interval ends, so start/end/tid are exact) plus
/// a latency histogram entry — Context::with_obs() routes both the old and
/// the new instrumentation through one object.
///
/// The null collector (a nullptr everywhere one is accepted) is the
/// zero-overhead default: the Span constructor and the CORAL_OBS_* macros
/// never read a clock, take a lock or evaluate their value arguments when
/// the collector pointer is null.
class Collector final : public InstrumentationSink {
 public:
  Collector() : epoch_(Clock::now()) {}
  ~Collector() override = default;
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Legacy StageTimer/IngestReport entry point. Samples with a duration
  /// become spans (start = now - wall_ms) plus a duration histogram; the
  /// duration-free counter samples (ingest malformed ledgers) become plain
  /// counters valued at `sample.in`.
  void record(const StageSample& sample) override;

  /// Named counter handle; stable address, created on first use.
  Counter& counter(std::string_view name);
  /// Named histogram handle; stable address, created on first use.
  Histogram& histogram(std::string_view name);

  /// Convenience single-shot forms (one lookup per call — fine off the hot
  /// path; hot paths hold a Counter&/Histogram& or batch locally).
  void add_counter(std::string_view name, std::uint64_t delta) { counter(name).add(delta); }
  void record_value(std::string_view name, double value) { histogram(name).record(value); }

  /// Bound the span buffer: once more than `cap` spans are held, the oldest
  /// *closed* spans are evicted (open spans are never evicted — their
  /// handles are live) and counted in Snapshot::spans_dropped. 0 restores
  /// the unbounded default. A resident daemon sets this so week-long
  /// sessions cannot grow span memory without limit; one-shot analyses keep
  /// every span as before.
  void set_span_capacity(std::size_t cap);
  /// Closed spans evicted so far.
  std::uint64_t spans_dropped() const;

  Snapshot snapshot() const;
  Clock::time_point epoch() const { return epoch_; }

 private:
  friend class Span;

  /// Span bookkeeping: a slot is allocated when the span opens (so children
  /// that close first can reference their parent) and filled when it closes.
  std::int32_t open_span(const char* name, std::int64_t start_us, std::uint32_t tid,
                         std::int32_t parent);
  void close_span(std::int32_t index, std::int64_t end_us, std::uint64_t in,
                  std::uint64_t out);

  std::uint32_t thread_number();
  /// Evict closed front spans down to capacity (span_mu_ held).
  void evict_locked();

  const Clock::time_point epoch_;

  // Span indices handed to open_span callers are *absolute* (monotonic since
  // construction); the deque holds [first_index_, first_index_ + size).
  // Eviction advances first_index_ without invalidating open-span indices.
  mutable std::mutex span_mu_;
  std::deque<SpanRecord> spans_;
  std::int64_t first_index_ = 0;
  std::size_t span_capacity_ = 0;  ///< 0 = unbounded
  std::uint64_t spans_dropped_ = 0;

  mutable std::mutex reg_mu_;
  // Deques-of-nodes via unique_ptr keep handle addresses stable across
  // rehashes; names are owned by the handles themselves.
  std::unordered_map<std::string_view, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string_view, std::unique_ptr<Histogram>> histograms_;

  mutable std::mutex tid_mu_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII trace span. With a null collector the constructor is two pointer
/// stores; with a live one it captures the thread id, links to the innermost
/// open span of the same collector on this thread, and records on
/// destruction (or an explicit end()).
class Span {
 public:
  Span(Collector* collector, const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attach StageTimer-style flow counts, reported with the span.
  void counts(std::uint64_t in, std::uint64_t out) {
    in_ = in;
    out_ = out;
  }

  /// Close the span now instead of at scope exit (idempotent).
  void end();

 private:
  Collector* collector_;
  std::int32_t index_ = -1;
  std::uint64_t in_ = 0;
  std::uint64_t out_ = 0;
};

/// Downcast helper for layers that only hold the legacy sink pointer: the
/// collector behind it, if that is what the caller attached.
inline Collector* as_collector(InstrumentationSink* sink) {
  return dynamic_cast<Collector*>(sink);
}

// --- Exporters -------------------------------------------------------------

/// Chrome trace_event JSON (the "JSON Object Format": {"traceEvents": [...]})
/// loadable in chrome://tracing or https://ui.perfetto.dev. Spans become
/// complete ("ph":"X") events with microsecond timestamps; counters become
/// one final "C" sample so totals show up in the viewer.
std::string chrome_trace_json(const Snapshot& snap);

/// Prometheus text exposition (version 0.0.4): counters as `counter`,
/// histograms as cumulative-bucket `histogram` families. Names are prefixed
/// with `coral_` and sanitized to the Prometheus charset.
std::string prometheus_text(const Snapshot& snap);

/// Same exposition with a pre-rendered label set (e.g. `tenant="bgp0"`)
/// attached to every sample. `labels` is spliced verbatim inside the braces,
/// so it must already be escaped per the exposition format.
std::string prometheus_text(const Snapshot& snap, std::string_view labels);

/// One tenant's snapshot plus its label set, for the merged exposition.
struct LabeledSnapshot {
  std::string labels;  ///< e.g. `tenant="bgp0"`, pre-escaped
  Snapshot snap;
};

/// Merged multi-tenant exposition: one `# TYPE` header per metric family
/// (Prometheus rejects duplicates), then every tenant's samples under its
/// labels — what a daemon's /metrics endpoint serves.
std::string prometheus_text(const std::vector<LabeledSnapshot>& snaps);

/// Machine-readable snapshot JSON for the BENCH_*.json artifacts:
/// {"spans": [...], "counters": {...}, "histograms": [...]}.
std::string snapshot_json(const Snapshot& snap);

}  // namespace coral::obs

/// Hot-path guards: no argument evaluation, clocks or locks when the
/// collector is null.
#define CORAL_OBS_COUNT(collector, name, delta)                                      \
  do {                                                                               \
    if (auto* coral_obs_c_ = (collector)) coral_obs_c_->add_counter((name), (delta)); \
  } while (0)

#define CORAL_OBS_VALUE(collector, name, value)                                        \
  do {                                                                                 \
    if (auto* coral_obs_c_ = (collector)) coral_obs_c_->record_value((name), (value)); \
  } while (0)
