#include "coral/obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace coral::obs {

namespace {

std::int64_t us_since(Clock::time_point epoch, Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch).count();
}

/// Innermost open span per (thread, collector). Frames from different
/// collectors may interleave on one thread (two Contexts sharing a pool), so
/// each frame remembers its owner and parents are matched by owner.
struct ActiveFrame {
  const Collector* collector;
  std::int32_t index;
};

thread_local std::vector<ActiveFrame> t_active_spans;

std::int32_t innermost_open(const Collector* collector) {
  for (auto it = t_active_spans.rbegin(); it != t_active_spans.rend(); ++it) {
    if (it->collector == collector) return it->index;
  }
  return -1;
}

void pop_frame(const Collector* collector, std::int32_t index) {
  for (auto it = t_active_spans.rbegin(); it != t_active_spans.rend(); ++it) {
    if (it->collector == collector && it->index == index) {
      t_active_spans.erase(std::next(it).base());
      return;
    }
  }
}

void append(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n <= 0) return;
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  // Rare long line (a pathological stage name): retry with the exact size.
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  va_start(args, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  big.resize(static_cast<std::size_t>(n));
  out += big;
}

/// JSON string escaping for stage names (quotes, backslashes, control
/// characters; names are ASCII identifiers in practice).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; everything else maps to
/// '_' (dots in stage names most of all).
std::string prometheus_name(std::string_view name) {
  std::string out = "coral_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::size_t histogram_bucket(double value) {
  if (!(value > 1.0)) return 0;
  const double lg = std::ceil(std::log2(value));
  const auto b = static_cast<std::size_t>(std::max(0.0, lg));
  return std::min(b, kHistogramBuckets - 1);
}

double histogram_bound(std::size_t b) {
  if (b + 1 >= kHistogramBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(b));
}

void Histogram::record(double value) {
  std::lock_guard lock(mu_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += 1;
  sum_ += value;
  buckets_[histogram_bucket(value)] += 1;
}

HistogramRecord Histogram::snapshot() const {
  std::lock_guard lock(mu_);
  HistogramRecord r;
  r.name = name_;
  r.count = count_;
  r.sum = sum_;
  r.min = min_;
  r.max = max_;
  r.buckets = buckets_;
  return r;
}

double Snapshot::total_ms(std::string_view name) const {
  double total = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == name) total += static_cast<double>(s.dur_us) / 1e3;
  }
  return total;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  for (const CounterRecord& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

void Collector::record(const StageSample& sample) {
  if (sample.wall_ms <= 0 && sample.out == 0) {
    // Duration-free ledger sample (ingest malformed counters): a counter.
    counter(sample.stage).add(sample.in);
    return;
  }
  // A StageTimer reports from the stage's own thread at the moment the
  // interval ends, so reconstructing start = now - wall gives the true span.
  const std::int64_t end_us = us_since(epoch_, Clock::now());
  const auto dur_us = static_cast<std::int64_t>(sample.wall_ms * 1e3);
  const std::uint32_t tid = thread_number();
  const std::int32_t parent = innermost_open(this);
  {
    std::lock_guard lock(span_mu_);
    spans_.push_back({sample.stage, end_us - dur_us, dur_us, tid, parent, sample.in,
                      sample.out});
    evict_locked();
  }
  histogram(sample.stage).record(sample.wall_ms);
}

Counter& Collector::counter(std::string_view name) {
  std::lock_guard lock(reg_mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  std::unique_ptr<Counter> node(new Counter(std::string(name)));
  Counter& ref = *node;
  counters_.emplace(std::string_view(ref.name_), std::move(node));
  return ref;
}

Histogram& Collector::histogram(std::string_view name) {
  std::lock_guard lock(reg_mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  std::unique_ptr<Histogram> node(new Histogram(std::string(name)));
  Histogram& ref = *node;
  histograms_.emplace(std::string_view(ref.name_), std::move(node));
  return ref;
}

void Collector::set_span_capacity(std::size_t cap) {
  std::lock_guard lock(span_mu_);
  span_capacity_ = cap;
  evict_locked();
}

std::uint64_t Collector::spans_dropped() const {
  std::lock_guard lock(span_mu_);
  return spans_dropped_;
}

void Collector::evict_locked() {
  if (span_capacity_ == 0) return;
  // Open spans (dur_us < 0) pin the front: their absolute indices are held
  // by live Span handles, so eviction stops at the oldest one still open.
  while (spans_.size() > span_capacity_ && !spans_.empty() &&
         spans_.front().dur_us >= 0) {
    spans_.pop_front();
    ++first_index_;
    ++spans_dropped_;
  }
}

Snapshot Collector::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard lock(span_mu_);
    // Open spans have dur_us == -1 placeholders; export only finished ones,
    // preserving indices' meaning by keeping order and remapping parents.
    // Parents evicted from a bounded buffer export as roots (-1).
    snap.spans_dropped = spans_dropped_;
    snap.spans.reserve(spans_.size());
    std::vector<std::int32_t> remap(spans_.size(), -1);
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      if (spans_[i].dur_us < 0) continue;
      remap[i] = static_cast<std::int32_t>(snap.spans.size());
      snap.spans.push_back(spans_[i]);
    }
    for (SpanRecord& s : snap.spans) {
      if (s.parent < 0) continue;
      const std::int64_t rel = s.parent - first_index_;
      s.parent = rel < 0 ? -1 : remap[static_cast<std::size_t>(rel)];
    }
  }
  {
    std::lock_guard lock(reg_mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.push_back({c->name_, c->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) snap.histograms.push_back(h->snapshot());
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::int32_t Collector::open_span(const char* name, std::int64_t start_us,
                                  std::uint32_t tid, std::int32_t parent) {
  std::lock_guard lock(span_mu_);
  const auto index = static_cast<std::int32_t>(first_index_ +
                                               static_cast<std::int64_t>(spans_.size()));
  spans_.push_back({name, start_us, /*dur_us=*/-1, tid, parent, 0, 0});
  evict_locked();
  return index;
}

void Collector::close_span(std::int32_t index, std::int64_t end_us, std::uint64_t in,
                           std::uint64_t out) {
  std::lock_guard lock(span_mu_);
  // Open spans are never evicted, so the absolute index is still in range.
  SpanRecord& s = spans_[static_cast<std::size_t>(index - first_index_)];
  s.dur_us = std::max<std::int64_t>(0, end_us - s.start_us);
  s.in = in;
  s.out = out;
  evict_locked();
}

std::uint32_t Collector::thread_number() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard lock(tid_mu_);
  const auto [it, inserted] = tids_.emplace(self, static_cast<std::uint32_t>(tids_.size()));
  return it->second;
}

Span::Span(Collector* collector, const char* name) : collector_(collector) {
  if (collector_ == nullptr) return;
  const std::int64_t start = us_since(collector_->epoch(), Clock::now());
  index_ = collector_->open_span(name, start, collector_->thread_number(),
                                 innermost_open(collector_));
  t_active_spans.push_back({collector_, index_});
}

void Span::end() {
  if (collector_ == nullptr) return;
  const std::int64_t end_us = us_since(collector_->epoch(), Clock::now());
  collector_->close_span(index_, end_us, in_, out_);
  pop_frame(collector_, index_);
  collector_ = nullptr;
}

std::string chrome_trace_json(const Snapshot& snap) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const SpanRecord& s : snap.spans) {
    sep();
    append(out,
           "{\"name\": \"%s\", \"cat\": \"coral\", \"ph\": \"X\", \"ts\": %lld, "
           "\"dur\": %lld, \"pid\": 1, \"tid\": %u, \"args\": {\"in\": %llu, "
           "\"out\": %llu}}",
           json_escape(s.name).c_str(), static_cast<long long>(s.start_us),
           static_cast<long long>(s.dur_us), s.tid,
           static_cast<unsigned long long>(s.in), static_cast<unsigned long long>(s.out));
  }
  // Final counter totals as one "C" sample each, so chrome://tracing shows
  // them in the counters track.
  std::int64_t last_ts = 0;
  for (const SpanRecord& s : snap.spans) {
    last_ts = std::max(last_ts, s.start_us + s.dur_us);
  }
  for (const CounterRecord& c : snap.counters) {
    sep();
    append(out,
           "{\"name\": \"%s\", \"cat\": \"coral\", \"ph\": \"C\", \"ts\": %lld, "
           "\"pid\": 1, \"args\": {\"value\": %llu}}",
           json_escape(c.name).c_str(), static_cast<long long>(last_ts),
           static_cast<unsigned long long>(c.value));
  }
  out += "\n]}\n";
  return out;
}

namespace {

/// `{tenant="x"}` / `{tenant="x",le="1"}` / `{le="1"}` / `` — brace joinery
/// shared by every sample line.
std::string label_block(std::string_view labels, std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

void counter_samples(std::string& out, const CounterRecord& c, std::string_view labels) {
  const std::string name = prometheus_name(c.name) + "_total";
  append(out, "%s%s %llu\n", name.c_str(), label_block(labels).c_str(),
         static_cast<unsigned long long>(c.value));
}

void histogram_samples(std::string& out, const HistogramRecord& h,
                       std::string_view labels) {
  const std::string name = prometheus_name(h.name);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += h.buckets[b];
    // Skip interior empty buckets to keep the exposition small; always
    // keep +Inf, which Prometheus requires.
    if (h.buckets[b] == 0 && b + 1 < kHistogramBuckets) continue;
    const double bound = histogram_bound(b);
    std::string le;
    if (std::isinf(bound)) {
      le = "le=\"+Inf\"";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "le=\"%g\"", bound);
      le = buf;
    }
    append(out, "%s_bucket%s %llu\n", name.c_str(), label_block(labels, le).c_str(),
           static_cast<unsigned long long>(cumulative));
  }
  append(out, "%s_sum%s %g\n", name.c_str(), label_block(labels).c_str(), h.sum);
  append(out, "%s_count%s %llu\n", name.c_str(), label_block(labels).c_str(),
         static_cast<unsigned long long>(h.count));
}

}  // namespace

std::string prometheus_text(const Snapshot& snap, std::string_view labels) {
  std::string out;
  for (const CounterRecord& c : snap.counters) {
    append(out, "# TYPE %s counter\n", (prometheus_name(c.name) + "_total").c_str());
    counter_samples(out, c, labels);
  }
  for (const HistogramRecord& h : snap.histograms) {
    append(out, "# TYPE %s histogram\n", prometheus_name(h.name).c_str());
    histogram_samples(out, h, labels);
  }
  return out;
}

std::string prometheus_text(const Snapshot& snap) { return prometheus_text(snap, {}); }

std::string prometheus_text(const std::vector<LabeledSnapshot>& snaps) {
  // One TYPE header per family across every tenant, then each tenant's
  // samples under its labels. Families are walked in sorted-name order
  // (snapshots arrive sorted), counters before histograms.
  std::string out;
  std::vector<std::string> seen;
  const auto first_time = [&seen](const std::string& name) {
    for (const std::string& s : seen) {
      if (s == name) return false;
    }
    seen.push_back(name);
    return true;
  };
  for (const LabeledSnapshot& ls : snaps) {
    for (const CounterRecord& c : ls.snap.counters) {
      const std::string name = prometheus_name(c.name) + "_total";
      if (first_time(name)) append(out, "# TYPE %s counter\n", name.c_str());
    }
  }
  for (const LabeledSnapshot& ls : snaps) {
    for (const CounterRecord& c : ls.snap.counters) counter_samples(out, c, ls.labels);
  }
  for (const LabeledSnapshot& ls : snaps) {
    for (const HistogramRecord& h : ls.snap.histograms) {
      const std::string name = prometheus_name(h.name);
      if (first_time(name)) append(out, "# TYPE %s histogram\n", name.c_str());
    }
  }
  for (const LabeledSnapshot& ls : snaps) {
    for (const HistogramRecord& h : ls.snap.histograms) histogram_samples(out, h, ls.labels);
  }
  return out;
}

std::string snapshot_json(const Snapshot& snap) {
  std::string out = "{\"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    append(out,
           "%s{\"name\": \"%s\", \"start_us\": %lld, \"dur_us\": %lld, \"tid\": %u, "
           "\"parent\": %d, \"in\": %llu, \"out\": %llu}",
           i == 0 ? "" : ", ", json_escape(s.name).c_str(),
           static_cast<long long>(s.start_us), static_cast<long long>(s.dur_us), s.tid,
           s.parent, static_cast<unsigned long long>(s.in),
           static_cast<unsigned long long>(s.out));
  }
  out += "], \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    append(out, "%s\"%s\": %llu", i == 0 ? "" : ", ",
           json_escape(snap.counters[i].name).c_str(),
           static_cast<unsigned long long>(snap.counters[i].value));
  }
  out += "}, \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramRecord& h = snap.histograms[i];
    append(out,
           "%s{\"name\": \"%s\", \"count\": %llu, \"sum\": %g, \"min\": %g, \"max\": %g}",
           i == 0 ? "" : ", ", json_escape(h.name).c_str(),
           static_cast<unsigned long long>(h.count), h.sum, h.min, h.max);
  }
  out += "]}";
  return out;
}

}  // namespace coral::obs
