#pragma once

#include <cstdint>

#include "coral/common/instrument.hpp"
#include "coral/common/parallel.hpp"
#include "coral/common/rng.hpp"
#include "coral/machine/model.hpp"
#include "coral/obs/obs.hpp"
#include "coral/ras/catalog.hpp"

namespace coral {

/// The explicit per-analysis runtime handle: which machine catalog to
/// generate/analyze against, which worker pool to run on, a base RNG seed
/// policy, and where stage instrumentation goes.
///
/// A Context is a cheap-to-copy bundle of non-owning handles; the caller
/// keeps the catalog, pool and sink alive for as long as any analysis using
/// the context runs (for the default catalog that is the whole process).
/// Every layer that used to consult process-global state — fault injection,
/// the synthetic workload, RAS ingest/serialization, filtering, the core
/// reports and both co-analysis engines — takes a Context (or the relevant
/// member) instead, so two analyses over *different* catalogs can run
/// concurrently in one process.
///
/// A default-constructed Context reproduces the old global behaviour
/// exactly: the built-in Intrepid catalog on the reference BG/P machine,
/// serial execution, seed offset 0 and no instrumentation.
class Context {
 public:
  Context() : catalog_(&ras::default_catalog()) {}
  explicit Context(const ras::Catalog& catalog) : catalog_(&catalog) {}

  const ras::Catalog& catalog() const { return *catalog_; }
  const machine::MachineModel& machine() const { return *machine_; }
  par::ThreadPool* pool() const { return pool_; }
  InstrumentationSink* sink() const { return sink_; }
  obs::Collector* obs() const { return obs_; }
  std::uint64_t seed() const { return seed_; }

  Context& with_catalog(const ras::Catalog& catalog) {
    catalog_ = &catalog;
    return *this;
  }
  /// Target machine: topology, location grammar, partition algebra and
  /// placement policy all resolve through this model (default: the
  /// reference 40-rack BG/P). Models are process-lifetime singletons.
  Context& with_machine(const machine::MachineModel& machine) {
    machine_ = &machine;
    return *this;
  }
  /// Worker pool for the data-parallel stages; nullptr (the default) runs
  /// everything serially. Results are identical either way.
  Context& with_pool(par::ThreadPool* pool) {
    pool_ = pool;
    return *this;
  }
  /// Instrumentation sink for stage timings and ingest health: the hardened
  /// log readers report "ingest.*" stage samples and per-reason
  /// "ingest.*.malformed.*" counters here, alongside the engine stages.
  Context& with_sink(InstrumentationSink* sink) {
    sink_ = sink;
    return *this;
  }
  /// Full observability: trace spans, typed counters and histograms land in
  /// `collector`, and — because a Collector is an InstrumentationSink — so
  /// do all legacy StageTimer stage samples and ingest-health counters. One
  /// object, one snapshot, every layer.
  Context& with_obs(obs::Collector* collector) {
    obs_ = collector;
    sink_ = collector;
    return *this;
  }
  /// Seed policy: this offset is folded into every generator seed derived
  /// through the context, so a whole analysis can be re-randomized (or two
  /// contexts decorrelated) without touching per-config seeds. 0 leaves
  /// config seeds untouched.
  Context& with_seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  /// Fold a config-level seed through the context's seed policy.
  std::uint64_t derive_seed(std::uint64_t config_seed) const { return config_seed ^ seed_; }

  /// Deterministic RNG for a numbered stream under the context's policy.
  Rng make_rng(std::uint64_t stream) const {
    return Rng(seed_ ^ (0x9E3779B97F4A7C15ull * (stream + 1)));
  }

 private:
  const ras::Catalog* catalog_;
  const machine::MachineModel* machine_ = &machine::bgp_model();
  par::ThreadPool* pool_ = nullptr;
  InstrumentationSink* sink_ = nullptr;
  obs::Collector* obs_ = nullptr;
  std::uint64_t seed_ = 0;
};

}  // namespace coral
